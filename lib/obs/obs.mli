(** Unified observability: one metrics registry and one bounded trace ring
    per instrumented instance.

    The paper leans on observability as correctness tooling — coverage
    counters are its remedy for the missed cache-miss bug (section 8.3),
    and every experiment reduces to counting events across layers. This
    module replaces the five ad-hoc mechanisms that grew out of that
    ([Io_sched.stats], [Cache.stats], [Chunk_store.stats],
    [Disk.injected_failures] and the global [Util.Coverage] table) with a
    single instrument:

    - a {e metrics registry}: named, optionally labelled counters, gauges
      and histograms. Handles are resolved once at component-creation time,
      so the hot-path update is a single mutable-field store. Registries
      are per-instance — two stores in a fleet never collide — and support
      snapshotting and JSONL export.
    - a {e trace ring}: bounded buffer of structured events with monotone
      sequence numbers. Emission is a couple of array stores when enabled
      and one branch when disabled; checkers drain it to attach a causal
      event log to counterexamples.

    Counters registered with [~coverage:true] additionally feed the global
    {!Coverage} table (the blind-spot report of paper section 4.2), which
    {!Util.Coverage} re-exports for compatibility.

    {b Constructor convention}: every component constructor that accepts a
    registry takes it as [?obs], and [?obs] is the {e first} optional
    argument ([Store.create ?obs], [Rpc.Node.create ?obs ?disks],
    [Fleet.create ?obs], [Io_sched.create ?obs ?seed], ...). Omitting
    [?obs] always means "a fresh per-instance registry (or the parent
    layer's)", never "no metrics". *)

type t

(** {2 Metric handles}

    Handles are cheap mutable cells; resolve them once ({!counter},
    {!gauge}, {!histogram}) and update through them on the hot path.

    {b Thread safety.} Handle {e updates} are safe from any number of
    domains: counters are atomic (increments are never lost), gauges are
    atomic last-writer-wins sets, and a histogram keeps its
    bucket/count/sum triple consistent under a mutex. Registration
    ({!counter}/{!gauge}/{!histogram}) and registry-level operations
    ({!snapshot}, {!reset}, {!merge_into}) are {e not} synchronized —
    resolve every handle before spawning domains (the constructor
    convention already does this) and snapshot after joining them, or
    from a single coordinator. The trace ring ({!emit}) is single-domain
    by design; multi-domain components must use a registry with
    [trace_capacity = 0]. *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val set_int : t -> int -> unit
  val value : t -> float
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  (** Per-bucket (inclusive upper bound, count) pairs; the final bucket's
      bound is [infinity]. Counts are not cumulative. *)
  val buckets : t -> (float * int) list
end

(** {2 Registry} *)

(** [create ?scope ?trace_capacity ()] — a fresh registry plus trace ring.
    [scope] names the instance in exports; [trace_capacity] (default 0 =
    tracing disabled) bounds the ring. *)
val create : ?scope:string -> ?trace_capacity:int -> unit -> t

val scope : t -> string

(** [counter ?labels ?coverage t name] resolves (registering on first use)
    the counter [name] with [labels]. With [~coverage:true] every increment
    also feeds the global {!Coverage} counter of the same name. Raises
    [Invalid_argument] if [name]+[labels] is already registered as another
    metric kind.

    Names are dot-separated, layer first ([disk.write], [cache.hit],
    [chunk.put], ...). The [sanitize.*] namespace is reserved for the
    dynamic-analysis detectors: [Sanitize.Page_shadow] reports one
    [sanitize.page.<kind>] counter per report kind plus the
    [sanitize.page.reports] total, and [chunk.leaked_extent] counts
    extents the close-time audit found leaked. *)
val counter : ?labels:(string * string) list -> ?coverage:bool -> t -> string -> Counter.t

val gauge : ?labels:(string * string) list -> t -> string -> Gauge.t

(** [histogram ?labels ?buckets t name] — [buckets] are inclusive upper
    bounds (sorted ascending; an implicit overflow bucket is appended). *)
val histogram :
  ?labels:(string * string) list -> ?buckets:float list -> t -> string -> Histogram.t

(** {2 Snapshots and export} *)

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { buckets : (float * int) list; count : int; sum : float }

type sample = {
  name : string;
  labels : (string * string) list;
  value : value;
}

(** All registered metrics, sorted by name then labels. *)
val snapshot : t -> sample list

(** [find t ?labels name] — the current value, if registered. *)
val find : ?labels:(string * string) list -> t -> string -> value option

(** [counter_value t ?labels name] — 0 if absent or not a counter. *)
val counter_value : ?labels:(string * string) list -> t -> string -> int

(** Zero every metric and clear the trace ring. Global {!Coverage}
    counters are left alone; reset those with {!Coverage.reset}. *)
val reset : t -> unit

(** [merge_into ~into src] folds [src]'s {e metrics} into [into], the
    aggregation step of a per-domain-registry parallel sweep
    ([lib/par]): counters add, histograms add element-wise (raises
    [Invalid_argument] if two histograms of the same name disagree on
    bucket bounds), gauges adopt [src]'s value — merging registries in
    ascending seed order therefore leaves exactly the value a sequential
    run's last update would, and because every histogram observation in
    this codebase is an integer-valued [float], the float sums stay
    exact, so merged snapshots are byte-identical to sequential ones.
    Raises [Invalid_argument] on a metric registered with different
    kinds in the two registries. Merged counters do {e not} re-feed the
    global {!Coverage} table (the source's increments already did).
    Trace rings are per-instance diagnostics and are not merged. [src]
    is left unchanged. *)
val merge_into : into:t -> t -> unit

(** One metric per line: [name{labels}  value]. *)
val pp_snapshot : Format.formatter -> t -> unit

(** One JSON object per line (JSONL), e.g.
    [{"scope":"store","metric":"cache.hit","labels":{},"type":"counter","value":3}].
    Histograms export their buckets, count and sum. *)
val to_jsonl : t -> string

(** JSON string-content escaping as used by {!to_jsonl}, shared so every
    JSONL surface in the repo (metrics, wire traces) escapes
    identically. Escapes double quotes, backslashes and control
    characters; does not add the surrounding quotes. *)
val json_escape : string -> string

(** Shortest round-trip JSON float encoding as used by {!to_jsonl}
    (integral floats print without an exponent or trailing dot). *)
val json_float : float -> string

(** {2 Trace ring} *)

type event = {
  seq : int;  (** monotone within the instance *)
  layer : string;  (** emitting layer, e.g. ["iosched"] *)
  event : string;  (** event name, e.g. ["io_issue"] *)
  attrs : (string * string) list;
}

(** True when events are being recorded. Hot paths with non-trivial
    attribute lists should guard on this before building them. *)
val tracing : t -> bool

(** [set_tracing t on] — pauses/resumes recording (capacity permitting). *)
val set_tracing : t -> bool -> unit

(** [emit t ~layer name attrs] appends an event, overwriting the oldest
    once the ring is full. No-op (one branch) when disabled. *)
val emit : t -> layer:string -> string -> (string * string) list -> unit

(** [recent ?n t] — the last [n] (default: ring capacity) surviving
    events, oldest first. *)
val recent : ?n:int -> t -> event list

(** Total events emitted (monotone; survives ring wraparound). *)
val events_emitted : t -> int

val pp_event : Format.formatter -> event -> unit

(** {2 Global coverage counters}

    The process-wide blind-spot table (paper section 4.2). Instance
    counters registered with [~coverage:true] feed it automatically;
    {!hit} bumps it directly. [Util.Coverage] re-exports this module. *)
module Coverage : sig
  val hit : string -> unit
  val count : string -> int

  (** All counters with non-zero values, sorted by name. *)
  val snapshot : unit -> (string * int) list

  val reset : unit -> unit
  val pp_snapshot : Format.formatter -> unit -> unit

  (** [blind_spots ~expected ()] — the subset of [expected] counter names
      never hit: the blind-spot report. *)
  val blind_spots : expected:string list -> unit -> string list
end
