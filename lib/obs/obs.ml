module Coverage = struct
  (* Process-wide so blind spots are visible across every instance a
     validation run creates — including instances living on other domains
     during a Par sweep, which is why cells are atomics (totals must be
     exact, not lossy, for parallel sweeps to report the same coverage as
     sequential ones) and the table itself is mutex-guarded (two domains
     may register the same counter name at once). Cells are handed out by
     reference and zeroed (not removed) on reset, so handles cached inside
     instance counters stay live across resets. *)
  let table : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 64
  let table_mutex = Mutex.create ()

  let locked f =
    Mutex.lock table_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock table_mutex) f

  let cell name =
    locked (fun () ->
        match Hashtbl.find_opt table name with
        | Some r -> r
        | None ->
          let r = Atomic.make 0 in
          Hashtbl.add table name r;
          r)

  let hit name = Atomic.incr (cell name)

  let count name =
    match locked (fun () -> Hashtbl.find_opt table name) with
    | Some r -> Atomic.get r
    | None -> 0

  let snapshot () =
    locked (fun () ->
        Hashtbl.fold
          (fun name r acc ->
            let n = Atomic.get r in
            if n > 0 then (name, n) :: acc else acc)
          table [])
    |> List.sort compare

  let reset () = locked (fun () -> Hashtbl.iter (fun _ r -> Atomic.set r 0) table)

  let pp_snapshot fmt () =
    List.iter (fun (name, n) -> Format.fprintf fmt "%-40s %d@." name n) (snapshot ())

  let blind_spots ~expected () = List.filter (fun name -> count name = 0) expected
end

module Counter = struct
  (* Updates come from any domain (the shared store's hot path bumps
     counters from every worker), so the cell is atomic. *)
  type t = {
    v : int Atomic.t;
    coverage : int Atomic.t option;  (** global {!Coverage} cell, when linked *)
  }

  let incr c =
    Atomic.incr c.v;
    match c.coverage with Some r -> Atomic.incr r | None -> ()

  let add c n =
    ignore (Atomic.fetch_and_add c.v n);
    match c.coverage with Some r -> ignore (Atomic.fetch_and_add r n) | None -> ()

  let value c = Atomic.get c.v
end

module Gauge = struct
  (* Plain atomic set/get — last writer wins, no read-modify-write, so no
     CAS loop (a CAS on a boxed float can spin forever when the compiler
     reboxes the compare value). *)
  type t = { g : float Atomic.t }

  let set g v = Atomic.set g.g v
  let set_int g v = Atomic.set g.g (float_of_int v)
  let value g = Atomic.get g.g
end

module Histogram = struct
  (* A histogram observation touches a bucket, the count and the sum
     together; a mutex keeps the triple consistent under multi-domain
     writers (and keeps float sums exact — no lossy racy accumulate). *)
  type t = {
    bounds : float array;  (** inclusive upper bounds, ascending *)
    counts : int array;  (** length [bounds]+1; last is overflow *)
    mutable count : int;
    mutable sum : float;
    m : Mutex.t;
  }

  let locked h f =
    Mutex.lock h.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock h.m) f

  let observe h v =
    let n = Array.length h.bounds in
    let i = ref 0 in
    while !i < n && v > h.bounds.(!i) do
      Stdlib.incr i
    done;
    locked h (fun () ->
        h.counts.(!i) <- h.counts.(!i) + 1;
        h.count <- h.count + 1;
        h.sum <- h.sum +. v)

  let count h = locked h (fun () -> h.count)
  let sum h = locked h (fun () -> h.sum)

  let buckets h =
    locked h (fun () ->
        List.init (Array.length h.counts) (fun i ->
            ((if i < Array.length h.bounds then h.bounds.(i) else infinity), h.counts.(i))))

  (* Consistent (count, sum, buckets) triple under one lock acquisition. *)
  let summary h =
    locked h (fun () ->
        ( h.count,
          h.sum,
          List.init (Array.length h.counts) (fun i ->
              ((if i < Array.length h.bounds then h.bounds.(i) else infinity), h.counts.(i))) ))
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

type event = {
  seq : int;
  layer : string;
  event : string;
  attrs : (string * string) list;
}

type t = {
  scope : string;
  metrics : (string * (string * string) list, metric) Hashtbl.t;
  ring : event array;  (** empty array = tracing unavailable *)
  mutable trace_on : bool;
  mutable next_seq : int;
}

let dummy_event = { seq = -1; layer = ""; event = ""; attrs = [] }

let create ?(scope = "obs") ?(trace_capacity = 0) () =
  {
    scope;
    metrics = Hashtbl.create 32;
    ring = Array.make (max 0 trace_capacity) dummy_event;
    trace_on = trace_capacity > 0;
    next_seq = 0;
  }

let scope t = t.scope

(* Label order must not matter for identity. *)
let norm_labels = List.sort compare

let kind_mismatch name =
  invalid_arg (Printf.sprintf "Obs: metric %S already registered with another kind" name)

let counter ?(labels = []) ?(coverage = false) t name =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.metrics (name, labels) with
  | Some (Counter_m c) -> c
  | Some _ -> kind_mismatch name
  | None ->
    let c =
      {
        Counter.v = Atomic.make 0;
        coverage = (if coverage then Some (Coverage.cell name) else None);
      }
    in
    Hashtbl.add t.metrics (name, labels) (Counter_m c);
    c

let gauge ?(labels = []) t name =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.metrics (name, labels) with
  | Some (Gauge_m g) -> g
  | Some _ -> kind_mismatch name
  | None ->
    let g = { Gauge.g = Atomic.make 0.0 } in
    Hashtbl.add t.metrics (name, labels) (Gauge_m g);
    g

let default_buckets = [ 64.; 256.; 1024.; 4096.; 16384.; 65536. ]

let histogram ?(labels = []) ?(buckets = default_buckets) t name =
  let labels = norm_labels labels in
  match Hashtbl.find_opt t.metrics (name, labels) with
  | Some (Histogram_m h) -> h
  | Some _ -> kind_mismatch name
  | None ->
    let bounds = Array.of_list buckets in
    Array.sort compare bounds;
    let h =
      {
        Histogram.bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        count = 0;
        sum = 0.0;
        m = Mutex.create ();
      }
    in
    Hashtbl.add t.metrics (name, labels) (Histogram_m h);
    h

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of { buckets : (float * int) list; count : int; sum : float }

type sample = {
  name : string;
  labels : (string * string) list;
  value : value;
}

let value_of_metric = function
  | Counter_m c -> Counter_v (Counter.value c)
  | Gauge_m g -> Gauge_v (Gauge.value g)
  | Histogram_m h ->
    let count, sum, buckets = Histogram.summary h in
    Histogram_v { buckets; count; sum }

let snapshot t =
  Hashtbl.fold
    (fun (name, labels) m acc -> { name; labels; value = value_of_metric m } :: acc)
    t.metrics []
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let find ?(labels = []) t name =
  Option.map value_of_metric (Hashtbl.find_opt t.metrics (name, norm_labels labels))

let counter_value ?labels t name =
  match find ?labels t name with Some (Counter_v n) -> n | _ -> 0

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter_m c -> Atomic.set c.Counter.v 0
      | Gauge_m g -> Atomic.set g.Gauge.g 0.0
      | Histogram_m h ->
        Histogram.locked h (fun () ->
            Array.fill h.Histogram.counts 0 (Array.length h.Histogram.counts) 0;
            h.Histogram.count <- 0;
            h.Histogram.sum <- 0.0))
    t.metrics;
  t.next_seq <- 0

(* Merging feeds [into] directly at the record level, on purpose: a merged
   counter must NOT re-feed the global Coverage table (the source counter's
   increments already did at update time — merging is aggregation of what
   happened, not new happenings). *)
let merge_into ~into src =
  Hashtbl.iter
    (fun key m ->
      match m, Hashtbl.find_opt into.metrics key with
      | Counter_m c, None ->
        Hashtbl.add into.metrics key
          (Counter_m { Counter.v = Atomic.make (Counter.value c); coverage = None })
      | Counter_m c, Some (Counter_m d) ->
        ignore (Atomic.fetch_and_add d.Counter.v (Counter.value c))
      | Gauge_m g, None ->
        Hashtbl.add into.metrics key (Gauge_m { Gauge.g = Atomic.make (Gauge.value g) })
      | Gauge_m g, Some (Gauge_m d) ->
        (* adopt: merging registries in seed order leaves the last-merged
           instance's value, exactly what a sequential aggregation sees *)
        Atomic.set d.Gauge.g (Gauge.value g)
      | Histogram_m h, None ->
        (* snapshot [h] under its own lock, then build the copy lock-free:
           never two histogram locks held at once, so merge cannot deadlock *)
        let counts, count, sum =
          Histogram.locked h (fun () ->
              (Array.copy h.Histogram.counts, h.Histogram.count, h.Histogram.sum))
        in
        Hashtbl.add into.metrics key
          (Histogram_m
             {
               Histogram.bounds = Array.copy h.Histogram.bounds;
               counts;
               count;
               sum;
               m = Mutex.create ();
             })
      | Histogram_m h, Some (Histogram_m d) ->
        if h.Histogram.bounds <> d.Histogram.bounds then
          invalid_arg
            (Printf.sprintf "Obs.merge_into: histogram %S bucket bounds differ" (fst key));
        let counts, count, sum =
          Histogram.locked h (fun () ->
              (Array.copy h.Histogram.counts, h.Histogram.count, h.Histogram.sum))
        in
        Histogram.locked d (fun () ->
            Array.iteri (fun i n -> d.Histogram.counts.(i) <- d.Histogram.counts.(i) + n) counts;
            d.Histogram.count <- d.Histogram.count + count;
            d.Histogram.sum <- d.Histogram.sum +. sum)
      | (Counter_m _ | Gauge_m _ | Histogram_m _), Some _ -> kind_mismatch (fst key))
    src.metrics

let pp_labels fmt = function
  | [] -> ()
  | labels ->
    Format.fprintf fmt "{%s}"
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let pp_value fmt = function
  | Counter_v n -> Format.pp_print_int fmt n
  | Gauge_v v -> Format.fprintf fmt "%g" v
  | Histogram_v { count; sum; _ } -> Format.fprintf fmt "count=%d sum=%g" count sum

let pp_snapshot fmt t =
  List.iter
    (fun s -> Format.fprintf fmt "%-38s%a %a@." s.name pp_labels s.labels pp_value s.value)
    (snapshot t)

(* {2 JSONL export} *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else if v = infinity then "\"+inf\""
  else Printf.sprintf "%g" v

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "{\"scope\":\"%s\",\"metric\":\"%s\",\"labels\":{%s}"
           (json_escape t.scope) (json_escape s.name)
           (String.concat ","
              (List.map
                 (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                 s.labels)));
      (match s.value with
      | Counter_v n -> Buffer.add_string buf (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" n)
      | Gauge_v v ->
        Buffer.add_string buf (Printf.sprintf ",\"type\":\"gauge\",\"value\":%s" (json_float v))
      | Histogram_v { buckets; count; sum } ->
        Buffer.add_string buf
          (Printf.sprintf ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]" count
             (json_float sum)
             (String.concat ","
                (List.map
                   (fun (le, n) ->
                     Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float le) n)
                   buckets))));
      Buffer.add_string buf "}\n")
    (snapshot t);
  Buffer.contents buf

(* {2 Trace ring} *)

let tracing t = t.trace_on && Array.length t.ring > 0
let set_tracing t on = t.trace_on <- on

let emit t ~layer event attrs =
  if tracing t then begin
    let cap = Array.length t.ring in
    t.ring.(t.next_seq mod cap) <- { seq = t.next_seq; layer; event; attrs };
    t.next_seq <- t.next_seq + 1
  end

let events_emitted t = t.next_seq

let recent ?n t =
  let cap = Array.length t.ring in
  if cap = 0 then []
  else begin
    let available = min t.next_seq cap in
    let wanted = match n with Some n -> min n available | None -> available in
    List.init wanted (fun i ->
        let seq = t.next_seq - wanted + i in
        t.ring.(seq mod cap))
  end

let pp_event fmt e =
  Format.fprintf fmt "#%d %s.%s%s" e.seq e.layer e.event
    (match e.attrs with
    | [] -> ""
    | attrs ->
      " " ^ String.concat " " (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) attrs))
