(** Stateless model checking of concurrent code (paper section 6).

    The paper validates concurrency with two tools: Loom, which soundly
    enumerates all interleavings of small tests, and Shuttle, which
    randomly samples interleavings of large ones (probabilistic
    concurrency testing). This module reproduces both over a cooperative
    runtime built on OCaml effects:

    - test code runs inside {!explore} and uses {!spawn}, {!Cell},
      {!Mutex} and {!Semaphore} instead of real threads and atomics; every
      primitive access is a scheduling point;
    - the scheduler repeatedly executes the test, one interleaving per
      {e schedule}: exhaustive DFS over the schedule tree ({!Dfs}, the
      Loom analogue), uniform random ({!Random_walk}), or PCT with
      priority change points ({!Pct}, the Shuttle analogue);
    - assertion failures, uncaught exceptions and deadlocks (all threads
      blocked) are reported with a replayable schedule.

    Checking is sound for programs whose only inter-thread communication
    goes through these primitives: the scheduler is the only source of
    non-determinism, and a single domain executes everything, so there are
    no data races outside the modelled scheduling points.

    {b Sanitizers.} Pass [~sanitize] to {!explore}/{!replay} to run the
    {!Sanitize} detectors alongside checking. The memory model they assume:
    [Cell.get]/[Cell.set] are {e plain} accesses (race-checked), while
    [Cell.update] is an atomic read-modify-write and a pure
    synchronization point (it orders, like a mutex, and is never itself
    reported as racing). Publish shared state with [update] (or under a
    lock) and the vector-clock detector stays quiet; publish with [set]
    against a concurrent [get] and it reports a {!Race} on every schedule
    that reorders the pair — even schedules where the final state is
    correct. Instrumentation events are delivered through a
    non-scheduling effect, so enabling sanitizers never changes the
    schedule tree: schedule ids stay valid with sanitizers on or off. *)

(** {2 Primitives (valid only inside a running exploration)} *)

(** [spawn f] starts a new thread; a scheduling point. *)
val spawn : (unit -> unit) -> unit

(** [yield ()] — pure scheduling point. *)
val yield : unit -> unit

(** Id of the running thread (0 = the test body). *)
val thread_id : unit -> int

(** [wait_until pred] blocks the thread until [pred ()] holds. Use this
    instead of busy-waiting on a {!Cell}: a spin loop gives the scheduler
    an unbounded number of pointless interleavings, blowing up DFS, while
    a blocked thread is simply not runnable. [pred] must be monotone (once
    true, stays true until the waiter runs). *)
val wait_until : (unit -> bool) -> unit

(** Atomic cells; every access is a scheduling point.

    For the race detector, [get]/[set] are plain accesses and [update] is
    an atomic RMW (a synchronization point). Cells are numbered in
    creation order, restarting at 0 for every schedule, so a
    deterministic body gives each cell the same {!Cell.id} on every
    schedule and on replay — the [loc] in a {!Race} report. *)
module Cell : sig
  type 'a t

  val make : 'a -> 'a t

  (** Location id used in {!Race} reports (creation order within the
      current run). *)
  val id : 'a t -> int

  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  (** [update t f] — atomic read-modify-write; returns the old value. *)
  val update : 'a t -> ('a -> 'a) -> 'a

  (** [peek t] — read without a scheduling point (assertions only). *)
  val peek : 'a t -> 'a
end

module Mutex : sig
  type t

  (** [?name] labels the lock's class for the {!outcome.lock_names}
      export ("shard", "stack", "cache", ...); ids stay deterministic
      per schedule, so the same lock gets the same name on every run. *)
  val create : ?name:string -> unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool

  (** A scheduling point (so waiters can be explored waking between the
      release and the releaser's next access). *)
  val release : t -> unit
end

(** {2 Exploration} *)

type strategy =
  | Dfs of { max_schedules : int }
      (** exhaustive enumeration (sound up to the budget); the Loom analogue *)
  | Random_walk of { seed : int; schedules : int }
      (** uniform random choice at every scheduling point *)
  | Pct of { seed : int; schedules : int; depth : int }
      (** probabilistic concurrency testing with [depth - 1] priority
          change points; the Shuttle analogue *)

type violation_kind =
  | Assertion of string  (** [Assert_failure] or [Failure] inside a thread *)
  | Exception of string
  | Deadlock of { blocked : int }
  | Race of {
      loc : int;  (** {!Cell.id} of the racing cell *)
      tids : int * int;  (** the two racing threads, earlier access first *)
      access : string;
          (** ["write/write"], ["read/write"], ["write/read"] or ["lockset"] *)
    }
      (** flagged by the sanitizer ([~sanitize]) even on schedules where
          the race does not corrupt state *)

type violation = {
  kind : violation_kind;
  schedule : int list;  (** replayable choice sequence *)
  steps : int;  (** scheduling points executed in the failing run *)
}

val pp_violation : Format.formatter -> violation -> unit

type outcome = {
  schedules_run : int;
  total_steps : int;
  exhausted : bool;  (** DFS explored the entire tree within budget *)
  violation : violation option;
  lock_cycles : int list list;
      (** potential-deadlock cycles in the lock-acquisition graph
          accumulated across {e all} explored schedules (empty unless
          [~sanitize] enables lock-order analysis); reported even when no
          schedule deadlocked *)
  lock_edges : (int * int) list;
      (** every [(held, acquired)] acquisition edge accumulated across all
          explored schedules, sorted (empty unless [~sanitize] enables
          lock-order analysis) *)
  lock_names : (int * string) list;
      (** names for the lock ids appearing in [lock_edges], for locks
          created with [Mutex.create ~name]. Feeds the
          [validate --lint-graph] export that [lib/lint] cross-checks
          against the static acquisition graph. *)
  sanitize_accesses : int;
      (** plain accesses checked by the race monitors, summed over every
          explored schedule (0 with sanitizers off). Coverage evidence: a
          "no races" verdict over zero checked accesses proves nothing, so
          gates should assert this is positive. *)
}

val pp_outcome : Format.formatter -> outcome -> unit

(** [explore ?sanitize strategy body] — runs [body] under many schedules.
    [body] is re-executed from scratch per schedule and must be
    deterministic apart from scheduling. Returns on the first violation
    (including sanitizer-flagged {!Race}s). [sanitize] defaults to
    {!Sanitize.off}; existing harnesses behave identically without it. *)
val explore : ?sanitize:Sanitize.config -> strategy -> (unit -> unit) -> outcome

(** [replay body schedule] re-executes one schedule (for debugging).
    Returns the violation it reproduces, if any. Pass the same [sanitize]
    config used during exploration to reproduce {!Race} violations. *)
val replay : ?sanitize:Sanitize.config -> (unit -> unit) -> int list -> violation option
