(** Stateless model checking of concurrent code (paper section 6).

    The paper validates concurrency with two tools: Loom, which soundly
    enumerates all interleavings of small tests, and Shuttle, which
    randomly samples interleavings of large ones (probabilistic
    concurrency testing). This module reproduces both over a cooperative
    runtime built on OCaml effects:

    - test code runs inside {!explore} and uses {!spawn}, {!Cell},
      {!Mutex} and {!Semaphore} instead of real threads and atomics; every
      primitive access is a scheduling point;
    - the scheduler repeatedly executes the test, one interleaving per
      {e schedule}: exhaustive DFS over the schedule tree ({!Dfs}, the
      Loom analogue), uniform random ({!Random_walk}), or PCT with
      priority change points ({!Pct}, the Shuttle analogue);
    - assertion failures, uncaught exceptions and deadlocks (all threads
      blocked) are reported with a replayable schedule.

    Checking is sound for programs whose only inter-thread communication
    goes through these primitives: the scheduler is the only source of
    non-determinism, and a single domain executes everything, so there are
    no data races outside the modelled scheduling points. *)

(** {2 Primitives (valid only inside a running exploration)} *)

(** [spawn f] starts a new thread; a scheduling point. *)
val spawn : (unit -> unit) -> unit

(** [yield ()] — pure scheduling point. *)
val yield : unit -> unit

(** Id of the running thread (0 = the test body). *)
val thread_id : unit -> int

(** [wait_until pred] blocks the thread until [pred ()] holds. Use this
    instead of busy-waiting on a {!Cell}: a spin loop gives the scheduler
    an unbounded number of pointless interleavings, blowing up DFS, while
    a blocked thread is simply not runnable. [pred] must be monotone (once
    true, stays true until the waiter runs). *)
val wait_until : (unit -> bool) -> unit

(** Atomic cells; every access is a scheduling point. *)
module Cell : sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit

  (** [update t f] — atomic read-modify-write; returns the old value. *)
  val update : 'a t -> ('a -> 'a) -> 'a

  (** [peek t] — read without a scheduling point (assertions only). *)
  val peek : 'a t -> 'a
end

module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
  val with_lock : t -> (unit -> 'a) -> 'a
end

module Semaphore : sig
  type t

  val create : int -> t
  val acquire : t -> unit
  val try_acquire : t -> bool
  val release : t -> unit
end

(** {2 Exploration} *)

type strategy =
  | Dfs of { max_schedules : int }
      (** exhaustive enumeration (sound up to the budget); the Loom analogue *)
  | Random_walk of { seed : int; schedules : int }
      (** uniform random choice at every scheduling point *)
  | Pct of { seed : int; schedules : int; depth : int }
      (** probabilistic concurrency testing with [depth - 1] priority
          change points; the Shuttle analogue *)

type violation_kind =
  | Assertion of string  (** [Assert_failure] or [Failure] inside a thread *)
  | Exception of string
  | Deadlock of { blocked : int }

type violation = {
  kind : violation_kind;
  schedule : int list;  (** replayable choice sequence *)
  steps : int;  (** scheduling points executed in the failing run *)
}

val pp_violation : Format.formatter -> violation -> unit

type outcome = {
  schedules_run : int;
  total_steps : int;
  exhausted : bool;  (** DFS explored the entire tree within budget *)
  violation : violation option;
}

val pp_outcome : Format.formatter -> outcome -> unit

(** [explore strategy body] — runs [body] under many schedules. [body] is
    re-executed from scratch per schedule and must be deterministic apart
    from scheduling. Returns on the first violation. *)
val explore : strategy -> (unit -> unit) -> outcome

(** [replay body schedule] re-executes one schedule (for debugging).
    Returns the violation it reproduces, if any. *)
val replay : (unit -> unit) -> int list -> violation option
