open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t
  | Block : (unit -> bool) -> unit Effect.t
  | Tid : int Effect.t
  | Note : Sanitize.event -> unit Effect.t
      (** instrumentation event; handled without a scheduling point, so
          sanitizers never change the schedule tree *)

(* {2 Primitives} *)

let yield () = try perform Yield with Effect.Unhandled _ -> ()
let spawn f = try perform (Spawn f) with Effect.Unhandled _ -> f ()
let thread_id () = try perform Tid with Effect.Unhandled _ -> 0
let block pred = try perform (Block pred) with Effect.Unhandled _ -> assert (pred ())
let note ev = try perform (Note ev) with Effect.Unhandled _ -> ()

let wait_until pred =
  let rec go () =
    yield ();
    if not (pred ()) then begin
      block pred;
      go ()
    end
  in
  go ();
  (* The predicate was observed true: a barrier for the race detector,
     which cannot rely on a wake (the predicate may hold on first check,
     with no block ever issued). Non-scheduling. *)
  note Sanitize.Barrier

(* Location and lock ids, minted in creation order. [run_one] rewinds the
   counters at the start of every schedule, so a deterministic body gives
   every cell and lock the same id on every schedule and on replay. *)
let next_cell_id = ref 0
let next_lock_id = ref 0
let next_sem_id = ref 0

module Cell = struct
  type 'a t = {
    id : int;
    mutable v : 'a;
  }

  let make v =
    let id = !next_cell_id in
    incr next_cell_id;
    { id; v }

  let id t = t.id

  let get t =
    yield ();
    note (Sanitize.Read t.id);
    t.v

  let set t v =
    yield ();
    note (Sanitize.Write t.id);
    t.v <- v

  let update t f =
    yield ();
    note (Sanitize.Rmw t.id);
    let old = t.v in
    t.v <- f old;
    old

  let peek t = t.v
end

(* Lock id -> user-facing name, for the lock-graph export. Ids rewind per
   schedule and per exploration, so [Hashtbl.replace] keeps the registry
   consistent: within one exploration a given id always names the same
   lock (deterministic body), and a new exploration overwrites the ids it
   actually mints. Cleared in [sanitize_setup]; outcomes only export names
   for ids that appear in their own edges. *)
let lock_name_registry : (int, string) Hashtbl.t = Hashtbl.create 16

module Mutex = struct
  type t = {
    id : int;
    mutable held_by : int option;
  }

  let create ?name () =
    let id = !next_lock_id in
    incr next_lock_id;
    (match name with Some n -> Hashtbl.replace lock_name_registry id n | None -> ());
    { id; held_by = None }

  let rec lock t =
    yield ();
    match t.held_by with
    | None ->
      t.held_by <- Some (thread_id ());
      note (Sanitize.Lock_acquire t.id)
    | Some owner ->
      if owner = thread_id () then failwith "Smc.Mutex: recursive lock";
      block (fun () -> t.held_by = None);
      lock t

  let unlock t =
    match t.held_by with
    | Some owner when owner = thread_id () ->
      t.held_by <- None;
      note (Sanitize.Lock_release t.id)
    | Some _ -> failwith "Smc.Mutex: unlock by non-owner"
    | None -> failwith "Smc.Mutex: unlock of free mutex"

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Semaphore = struct
  type t = {
    id : int;
    mutable count : int;
  }

  let create count =
    assert (count >= 0);
    let id = !next_sem_id in
    incr next_sem_id;
    { id; count }

  let rec acquire t =
    yield ();
    if t.count > 0 then begin
      t.count <- t.count - 1;
      note (Sanitize.Sem_acquire t.id)
    end
    else begin
      block (fun () -> t.count > 0);
      acquire t
    end

  let try_acquire t =
    yield ();
    if t.count > 0 then begin
      t.count <- t.count - 1;
      note (Sanitize.Sem_acquire t.id);
      true
    end
    else false

  let release t =
    (* The release is a scheduling point: without the yield, DFS never
       explores interleavings where a waiter wakes between the release and
       the releaser's next access. *)
    yield ();
    t.count <- t.count + 1;
    note (Sanitize.Sem_release t.id)
end

(* {2 The scheduler} *)

type slice_result =
  | Done
  | Yielded of resumption
  | Blocked_on of (unit -> bool) * resumption
  | Spawned of (unit -> unit) * resumption
  | Raised of exn

and resumption = unit -> slice_result

let current_tid = ref 0

(* Where [Note] events land; [run_one] points this at the active monitor.
   The sink runs with [current_tid] set to the emitting thread. *)
let note_sink : (Sanitize.event -> unit) ref = ref (fun _ -> ())

let start_thread (body : unit -> unit) : resumption =
 fun () ->
  match_with body ()
    {
      retc = (fun () -> Done);
      exnc = (fun e -> Raised e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some (fun (k : (a, slice_result) continuation) -> Yielded (fun () -> continue k ()))
          | Block pred -> Some (fun k -> Blocked_on (pred, fun () -> continue k ()))
          | Spawn g -> Some (fun k -> Spawned (g, fun () -> continue k ()))
          | Tid -> Some (fun k -> continue k !current_tid)
          | Note ev ->
            Some
              (fun k ->
                !note_sink ev;
                continue k ())
          | _ -> None);
    }

type strategy =
  | Dfs of { max_schedules : int }
  | Random_walk of { seed : int; schedules : int }
  | Pct of { seed : int; schedules : int; depth : int }

type violation_kind =
  | Assertion of string
  | Exception of string
  | Deadlock of { blocked : int }
  | Race of {
      loc : int;
      tids : int * int;
      access : string;
    }

type violation = {
  kind : violation_kind;
  schedule : int list;
  steps : int;
}

let pp_violation fmt v =
  let kind =
    match v.kind with
    | Assertion msg -> Printf.sprintf "assertion failed: %s" msg
    | Exception msg -> Printf.sprintf "exception: %s" msg
    | Deadlock { blocked } -> Printf.sprintf "deadlock: %d threads blocked" blocked
    | Race { loc; tids = (a, b); access } ->
      Printf.sprintf "data race (%s) on cell #%d between threads %d and %d" access loc a b
  in
  Format.fprintf fmt "%s after %d steps (schedule [%s])" kind v.steps
    (String.concat ";" (List.map string_of_int v.schedule))

type outcome = {
  schedules_run : int;
  total_steps : int;
  exhausted : bool;
  violation : violation option;
  lock_cycles : int list list;
  lock_edges : (int * int) list;
  lock_names : (int * string) list;
  sanitize_accesses : int;
}

let pp_outcome fmt o =
  (match o.violation with
  | None ->
    Format.fprintf fmt "no violation in %d schedules (%d steps%s)" o.schedules_run o.total_steps
      (if o.exhausted then ", exhaustive" else "")
  | Some v -> Format.fprintf fmt "%a [%d schedules explored]" pp_violation v o.schedules_run);
  if o.sanitize_accesses > 0 then
    Format.fprintf fmt "; %d accesses race-checked" o.sanitize_accesses;
  match o.lock_cycles with
  | [] -> ()
  | cycles ->
    Format.fprintf fmt "; %d potential lock-order cycle(s):" (List.length cycles);
    List.iter (fun c -> Format.fprintf fmt " %a" Sanitize.Lock_order.pp_cycle c) cycles

type thread = {
  id : int;
  mutable res : resumption;
}

(* Runnable set: an array kept sorted by thread id — same order the old
   sort-per-step list bookkeeping produced, without the O(n^2) step cost of
   [List.nth]/[List.sort]/[List.filter]. *)
module Runq = struct
  type t = {
    mutable a : thread array;
    mutable n : int;
  }

  let dummy = { id = -1; res = (fun () -> Done) }
  let create () = { a = Array.make 8 dummy; n = 0 }
  let size t = t.n

  let insert t th =
    if t.n = Array.length t.a then begin
      let b = Array.make (2 * t.n) dummy in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    let i = ref t.n in
    while !i > 0 && t.a.(!i - 1).id > th.id do
      t.a.(!i) <- t.a.(!i - 1);
      decr i
    done;
    t.a.(!i) <- th;
    t.n <- t.n + 1

  let remove t i =
    let th = t.a.(i) in
    Array.blit t.a (i + 1) t.a i (t.n - i - 1);
    t.n <- t.n - 1;
    t.a.(t.n) <- dummy;
    th

  let ids t = List.init t.n (fun i -> t.a.(i).id)
end

exception Too_many_steps

(* Run one schedule. [choose ~step ~runnable:ids] receives the ids of the
   runnable threads (sorted) and returns the position of the one to
   execute. Returns the recorded choices (with arity, for DFS), the step
   count, and the violation if any. [monitor] receives instrumentation
   events in execution order and may flag a race, which becomes the
   schedule's violation. *)
let run_one ?monitor ~choose body =
  next_cell_id := 0;
  next_lock_id := 0;
  next_sem_id := 0;
  let runq = Runq.create () in
  Runq.insert runq { id = 0; res = start_thread body };
  let blocked : (thread * (unit -> bool)) list ref = ref [] in
  let next_id = ref 1 in
  let trace = ref [] in
  let step = ref 0 in
  let violation = ref None in
  let max_steps = 1_000_000 in
  let saved_sink = !note_sink in
  (match monitor with
  | Some m -> note_sink := (fun ev -> Sanitize.Monitor.on_event m ~tid:!current_tid ev)
  | None -> ());
  Fun.protect
    ~finally:(fun () -> note_sink := saved_sink)
    (fun () ->
      (try
         while !violation = None && (Runq.size runq > 0 || !blocked <> []) do
           (* Wake blocked threads whose predicate holds. *)
           let wake, still = List.partition (fun (_, pred) -> pred ()) !blocked in
           blocked := still;
           List.iter
             (fun (th, _) ->
               (match monitor with
               | Some m -> Sanitize.Monitor.on_wake m ~tid:th.id
               | None -> ());
               Runq.insert runq th)
             wake;
           if Runq.size runq = 0 then
             violation := Some (Deadlock { blocked = List.length !blocked })
           else begin
             let n = Runq.size runq in
             let idx = if n = 1 then 0 else choose ~step:!step ~runnable:(Runq.ids runq) in
             let idx = if idx < 0 || idx >= n then 0 else idx in
             trace := (idx, n) :: !trace;
             incr step;
             if !step > max_steps then raise Too_many_steps;
             let t = Runq.remove runq idx in
             current_tid := t.id;
             (match t.res () with
             | Done -> ()
             | Yielded r ->
               t.res <- r;
               Runq.insert runq t
             | Blocked_on (pred, r) ->
               t.res <- r;
               blocked := (t, pred) :: !blocked
             | Spawned (g, r) ->
               t.res <- r;
               let child = { id = !next_id; res = start_thread g } in
               incr next_id;
               (match monitor with
               | Some m -> Sanitize.Monitor.on_spawn m ~parent:t.id ~child:child.id
               | None -> ());
               Runq.insert runq t;
               Runq.insert runq child
             | Raised (Assert_failure (file, line, _)) ->
               violation := Some (Assertion (Printf.sprintf "%s:%d" file line))
             | Raised (Failure msg) -> violation := Some (Assertion msg)
             | Raised e -> violation := Some (Exception (Printexc.to_string e)));
             match monitor with
             | Some m -> (
               match Sanitize.Monitor.race m with
               | Some r when !violation = None ->
                 violation :=
                   Some (Race { loc = r.Sanitize.loc; tids = r.Sanitize.tids; access = r.Sanitize.access })
               | _ -> ())
             | None -> ()
           end
         done
       with Too_many_steps -> violation := Some (Exception "step budget exhausted (livelock?)"));
      (List.rev !trace, !step, !violation))

(* Per-exploration sanitizer state: a monitor factory (fresh per schedule),
   the lock-order graph accumulated across every schedule, and the running
   total of plain accesses the monitors checked (coverage evidence for
   "sanitizer clean" gates). *)
let lock_names_for edges =
  let ids = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  List.filter_map
    (fun id ->
      Option.map (fun n -> (id, n)) (Hashtbl.find_opt lock_name_registry id))
    ids

let sanitize_setup sanitize =
  Hashtbl.reset lock_name_registry;
  match sanitize with
  | Some cfg when Sanitize.enabled cfg ->
    let graph =
      if cfg.Sanitize.lock_order then Some (Sanitize.Lock_order.create ()) else None
    in
    let drained = ref 0 in
    let last = ref None in
    let drain () =
      match !last with
      | Some m ->
        drained := !drained + Sanitize.Monitor.access_count m;
        last := None
      | None -> ()
    in
    let mk () =
      drain ();
      let m = Sanitize.Monitor.create ?lock_order:graph ~mode:cfg.Sanitize.races () in
      last := Some m;
      Some m
    in
    let cycles () = match graph with Some g -> Sanitize.Lock_order.cycles g | None -> [] in
    let edges () = match graph with Some g -> Sanitize.Lock_order.edges g | None -> [] in
    let accesses () =
      !drained + match !last with Some m -> Sanitize.Monitor.access_count m | None -> 0
    in
    (mk, cycles, accesses, edges)
  | _ -> ((fun () -> None), (fun () -> []), (fun () -> 0), fun () -> [])

let finish ~schedules_run ~total_steps ~exhausted ~lock_cycles ~lock_edges ~sanitize_accesses
    trace steps kind =
  {
    schedules_run;
    total_steps;
    exhausted;
    violation = Some { kind; schedule = List.map fst trace; steps };
    lock_cycles;
    lock_edges;
    lock_names = lock_names_for lock_edges;
    sanitize_accesses;
  }

let explore_dfs ?sanitize ~max_schedules body =
  (* Iterative DFS over the schedule tree: re-execute with a forced prefix,
     then advance the deepest branch point with unexplored siblings. *)
  let mk_monitor, cycles, accesses, edges = sanitize_setup sanitize in
  let prefix = ref [||] in
  let schedules = ref 0 in
  let total_steps = ref 0 in
  let result = ref None in
  let exhausted = ref false in
  while !result = None && not !exhausted && !schedules < max_schedules do
    let p = !prefix in
    let choose ~step ~runnable:(_ : int list) = if step < Array.length p then p.(step) else 0 in
    let trace, steps, violation = run_one ?monitor:(mk_monitor ()) ~choose body in
    incr schedules;
    total_steps := !total_steps + steps;
    match violation with
    | Some kind ->
      result :=
        Some
          (finish ~schedules_run:!schedules ~total_steps:!total_steps ~exhausted:false
             ~lock_cycles:(cycles ()) ~lock_edges:(edges ()) ~sanitize_accesses:(accesses ())
             trace steps kind)
    | None ->
      (* Find the deepest choice with an unexplored sibling. *)
      let arr = Array.of_list trace in
      let rec advance i =
        if i < 0 then exhausted := true
        else begin
          let choice, arity = arr.(i) in
          if choice + 1 < arity then begin
            let next = Array.make (i + 1) 0 in
            Array.blit (Array.map fst arr) 0 next 0 i;
            next.(i) <- choice + 1;
            prefix := next
          end
          else advance (i - 1)
        end
      in
      advance (Array.length arr - 1)
  done;
  match !result with
  | Some r -> r
  | None ->
    {
      schedules_run = !schedules;
      total_steps = !total_steps;
      exhausted = !exhausted;
      violation = None;
      lock_cycles = cycles ();
      lock_edges = edges ();
      lock_names = lock_names_for (edges ());
      sanitize_accesses = accesses ();
    }

let explore_random ?sanitize ~seed ~schedules body =
  let mk_monitor, cycles, accesses, edges = sanitize_setup sanitize in
  let rng = Util.Rng.of_int seed in
  let total_steps = ref 0 in
  let result = ref None in
  let run = ref 0 in
  while !result = None && !run < schedules do
    let choose ~step:_ ~runnable:ids = Util.Rng.int rng (List.length ids) in
    let trace, steps, violation = run_one ?monitor:(mk_monitor ()) ~choose body in
    incr run;
    total_steps := !total_steps + steps;
    match violation with
    | Some kind ->
      result :=
        Some
          (finish ~schedules_run:!run ~total_steps:!total_steps ~exhausted:false
             ~lock_cycles:(cycles ()) ~lock_edges:(edges ()) ~sanitize_accesses:(accesses ())
             trace steps kind)
    | None -> ()
  done;
  match !result with
  | Some r -> r
  | None ->
    {
      schedules_run = !run;
      total_steps = !total_steps;
      exhausted = false;
      violation = None;
      lock_cycles = cycles ();
      lock_edges = edges ();
      lock_names = lock_names_for (edges ());
      sanitize_accesses = accesses ();
    }

(* PCT (Burckhardt et al., ASPLOS 2010): each thread gets a random
   priority on first appearance; the highest-priority runnable thread runs;
   at [depth - 1] randomly chosen steps the running thread's priority is
   demoted below every other, forcing a context switch. Few random
   decisions per run give the O(1/(n k^(d-1))) bug-finding guarantee. *)
let explore_pct ?sanitize ~seed ~schedules ~depth body =
  let mk_monitor, cycles, accesses, edges = sanitize_setup sanitize in
  let rng = Util.Rng.of_int seed in
  let total_steps = ref 0 in
  let result = ref None in
  let run = ref 0 in
  let estimated_len = ref 256 in
  while !result = None && !run < schedules do
    let priorities : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let lowest = ref 0.0 in
    let change_points : (int, unit) Hashtbl.t = Hashtbl.create 4 in
    for _ = 1 to max 0 (depth - 1) do
      Hashtbl.replace change_points (Util.Rng.int rng (max 1 !estimated_len)) ()
    done;
    let prio_of id =
      match Hashtbl.find_opt priorities id with
      | Some p -> p
      | None ->
        let p = 1.0 +. Util.Rng.float rng 1.0 in
        Hashtbl.replace priorities id p;
        p
    in
    let choose ~step ~runnable:ids =
      let best_pos = ref 0 and best_p = ref neg_infinity in
      List.iteri
        (fun pos id ->
          let p = prio_of id in
          if p > !best_p then begin
            best_p := p;
            best_pos := pos
          end)
        ids;
      if Hashtbl.mem change_points step then begin
        (* demote the thread we are about to run below everything *)
        lowest := !lowest -. 1.0;
        Hashtbl.replace priorities (List.nth ids !best_pos) !lowest
      end;
      !best_pos
    in
    let trace, steps, violation = run_one ?monitor:(mk_monitor ()) ~choose body in
    incr run;
    total_steps := !total_steps + steps;
    estimated_len := max 16 steps;
    match violation with
    | Some kind ->
      result :=
        Some
          (finish ~schedules_run:!run ~total_steps:!total_steps ~exhausted:false
             ~lock_cycles:(cycles ()) ~lock_edges:(edges ()) ~sanitize_accesses:(accesses ())
             trace steps kind)
    | None -> ()
  done;
  match !result with
  | Some r -> r
  | None ->
    {
      schedules_run = !run;
      total_steps = !total_steps;
      exhausted = false;
      violation = None;
      lock_cycles = cycles ();
      lock_edges = edges ();
      lock_names = lock_names_for (edges ());
      sanitize_accesses = accesses ();
    }

let explore ?sanitize strategy body =
  match strategy with
  | Dfs { max_schedules } -> explore_dfs ?sanitize ~max_schedules body
  | Random_walk { seed; schedules } -> explore_random ?sanitize ~seed ~schedules body
  | Pct { seed; schedules; depth } -> explore_pct ?sanitize ~seed ~schedules ~depth body

let replay ?sanitize body schedule =
  let mk_monitor, _cycles, _accesses, _edges = sanitize_setup sanitize in
  let p = Array.of_list schedule in
  let choose ~step ~runnable:(_ : int list) = if step < Array.length p then p.(step) else 0 in
  let _, steps, violation = run_one ?monitor:(mk_monitor ()) ~choose body in
  Option.map (fun kind -> { kind; schedule; steps }) violation
