open Effect
open Effect.Deep

type _ Effect.t +=
  | Yield : unit Effect.t
  | Spawn : (unit -> unit) -> unit Effect.t
  | Block : (unit -> bool) -> unit Effect.t
  | Tid : int Effect.t

(* {2 Primitives} *)

let yield () = try perform Yield with Effect.Unhandled _ -> ()
let spawn f = try perform (Spawn f) with Effect.Unhandled _ -> f ()
let thread_id () = try perform Tid with Effect.Unhandled _ -> 0
let block pred = try perform (Block pred) with Effect.Unhandled _ -> assert (pred ())

let rec wait_until pred =
  yield ();
  if not (pred ()) then begin
    block pred;
    wait_until pred
  end

module Cell = struct
  type 'a t = { mutable v : 'a }

  let make v = { v }

  let get t =
    yield ();
    t.v

  let set t v =
    yield ();
    t.v <- v

  let update t f =
    yield ();
    let old = t.v in
    t.v <- f old;
    old

  let peek t = t.v
end

module Mutex = struct
  type t = { mutable held_by : int option }

  let create () = { held_by = None }

  let rec lock t =
    yield ();
    match t.held_by with
    | None -> t.held_by <- Some (thread_id ())
    | Some owner ->
      if owner = thread_id () then failwith "Smc.Mutex: recursive lock";
      block (fun () -> t.held_by = None);
      lock t

  let unlock t =
    match t.held_by with
    | Some owner when owner = thread_id () -> t.held_by <- None
    | Some _ -> failwith "Smc.Mutex: unlock by non-owner"
    | None -> failwith "Smc.Mutex: unlock of free mutex"

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f
end

module Semaphore = struct
  type t = { mutable count : int }

  let create count =
    assert (count >= 0);
    { count }

  let rec acquire t =
    yield ();
    if t.count > 0 then t.count <- t.count - 1
    else begin
      block (fun () -> t.count > 0);
      acquire t
    end

  let try_acquire t =
    yield ();
    if t.count > 0 then begin
      t.count <- t.count - 1;
      true
    end
    else false

  let release t = t.count <- t.count + 1
end

(* {2 The scheduler} *)

type slice_result =
  | Done
  | Yielded of resumption
  | Blocked_on of (unit -> bool) * resumption
  | Spawned of (unit -> unit) * resumption
  | Raised of exn

and resumption = unit -> slice_result

let current_tid = ref 0

let start_thread (body : unit -> unit) : resumption =
 fun () ->
  match_with body ()
    {
      retc = (fun () -> Done);
      exnc = (fun e -> Raised e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some (fun (k : (a, slice_result) continuation) -> Yielded (fun () -> continue k ()))
          | Block pred -> Some (fun k -> Blocked_on (pred, fun () -> continue k ()))
          | Spawn g -> Some (fun k -> Spawned (g, fun () -> continue k ()))
          | Tid -> Some (fun k -> continue k !current_tid)
          | _ -> None);
    }

type strategy =
  | Dfs of { max_schedules : int }
  | Random_walk of { seed : int; schedules : int }
  | Pct of { seed : int; schedules : int; depth : int }

type violation_kind =
  | Assertion of string
  | Exception of string
  | Deadlock of { blocked : int }

type violation = {
  kind : violation_kind;
  schedule : int list;
  steps : int;
}

let pp_violation fmt v =
  let kind =
    match v.kind with
    | Assertion msg -> Printf.sprintf "assertion failed: %s" msg
    | Exception msg -> Printf.sprintf "exception: %s" msg
    | Deadlock { blocked } -> Printf.sprintf "deadlock: %d threads blocked" blocked
  in
  Format.fprintf fmt "%s after %d steps (schedule [%s])" kind v.steps
    (String.concat ";" (List.map string_of_int v.schedule))

type outcome = {
  schedules_run : int;
  total_steps : int;
  exhausted : bool;
  violation : violation option;
}

let pp_outcome fmt o =
  match o.violation with
  | None ->
    Format.fprintf fmt "no violation in %d schedules (%d steps%s)" o.schedules_run o.total_steps
      (if o.exhausted then ", exhaustive" else "")
  | Some v -> Format.fprintf fmt "%a [%d schedules explored]" pp_violation v o.schedules_run

type thread = {
  id : int;
  mutable res : resumption;
}

exception Too_many_steps

(* Run one schedule. [choose ~step ~runnable:ids] receives the ids of the
   runnable threads (sorted) and returns the position of the one to
   execute. Returns the recorded choices (with arity, for DFS), the step
   count, and the violation if any. *)
let run_one ~choose body =
  let runnable : thread list ref = ref [ { id = 0; res = start_thread body } ] in
  let blocked : (thread * (unit -> bool)) list ref = ref [] in
  let next_id = ref 1 in
  let trace = ref [] in
  let step = ref 0 in
  let violation = ref None in
  let max_steps = 1_000_000 in
  (try
     while !violation = None && (!runnable <> [] || !blocked <> []) do
       (* Wake blocked threads whose predicate holds. *)
       let wake, still = List.partition (fun (_, pred) -> pred ()) !blocked in
       blocked := still;
       runnable := !runnable @ List.map fst wake;
       runnable := List.sort (fun a b -> compare a.id b.id) !runnable;
       match !runnable with
       | [] ->
         violation := Some (Deadlock { blocked = List.length !blocked })
       | threads ->
         let n = List.length threads in
         let ids = List.map (fun t -> t.id) threads in
         let idx = if n = 1 then 0 else choose ~step:!step ~runnable:ids in
         let idx = if idx < 0 || idx >= n then 0 else idx in
         trace := (idx, n) :: !trace;
         incr step;
         if !step > max_steps then raise Too_many_steps;
         let t = List.nth threads idx in
         runnable := List.filter (fun t' -> t'.id <> t.id) threads;
         current_tid := t.id;
         (match t.res () with
         | Done -> ()
         | Yielded r ->
           t.res <- r;
           runnable := t :: !runnable
         | Blocked_on (pred, r) ->
           t.res <- r;
           blocked := (t, pred) :: !blocked
         | Spawned (g, r) ->
           t.res <- r;
           let child = { id = !next_id; res = start_thread g } in
           incr next_id;
           runnable := t :: child :: !runnable
         | Raised (Assert_failure (file, line, _)) ->
           violation := Some (Assertion (Printf.sprintf "%s:%d" file line))
         | Raised (Failure msg) -> violation := Some (Assertion msg)
         | Raised e -> violation := Some (Exception (Printexc.to_string e)))
     done
   with Too_many_steps -> violation := Some (Exception "step budget exhausted (livelock?)"));
  (List.rev !trace, !step, !violation)

let finish ~schedules_run ~total_steps ~exhausted trace steps kind =
  {
    schedules_run;
    total_steps;
    exhausted;
    violation = Some { kind; schedule = List.map fst trace; steps };
  }

let explore_dfs ~max_schedules body =
  (* Iterative DFS over the schedule tree: re-execute with a forced prefix,
     then advance the deepest branch point with unexplored siblings. *)
  let prefix = ref [||] in
  let schedules = ref 0 in
  let total_steps = ref 0 in
  let result = ref None in
  let exhausted = ref false in
  while !result = None && not !exhausted && !schedules < max_schedules do
    let p = !prefix in
    let choose ~step ~runnable:(_ : int list) = if step < Array.length p then p.(step) else 0 in
    let trace, steps, violation = run_one ~choose body in
    incr schedules;
    total_steps := !total_steps + steps;
    match violation with
    | Some kind ->
      result :=
        Some
          (finish ~schedules_run:!schedules ~total_steps:!total_steps ~exhausted:false trace
             steps kind)
    | None ->
      (* Find the deepest choice with an unexplored sibling. *)
      let arr = Array.of_list trace in
      let rec advance i =
        if i < 0 then exhausted := true
        else begin
          let choice, arity = arr.(i) in
          if choice + 1 < arity then begin
            let next = Array.make (i + 1) 0 in
            Array.blit (Array.map fst arr) 0 next 0 i;
            next.(i) <- choice + 1;
            prefix := next
          end
          else advance (i - 1)
        end
      in
      advance (Array.length arr - 1)
  done;
  match !result with
  | Some r -> r
  | None ->
    {
      schedules_run = !schedules;
      total_steps = !total_steps;
      exhausted = !exhausted;
      violation = None;
    }

let explore_random ~seed ~schedules body =
  let rng = Util.Rng.of_int seed in
  let total_steps = ref 0 in
  let result = ref None in
  let run = ref 0 in
  while !result = None && !run < schedules do
    let choose ~step:_ ~runnable:ids = Util.Rng.int rng (List.length ids) in
    let trace, steps, violation = run_one ~choose body in
    incr run;
    total_steps := !total_steps + steps;
    match violation with
    | Some kind ->
      result :=
        Some (finish ~schedules_run:!run ~total_steps:!total_steps ~exhausted:false trace steps kind)
    | None -> ()
  done;
  match !result with
  | Some r -> r
  | None ->
    { schedules_run = !run; total_steps = !total_steps; exhausted = false; violation = None }

(* PCT (Burckhardt et al., ASPLOS 2010): each thread gets a random
   priority on first appearance; the highest-priority runnable thread runs;
   at [depth - 1] randomly chosen steps the running thread's priority is
   demoted below every other, forcing a context switch. Few random
   decisions per run give the O(1/(n k^(d-1))) bug-finding guarantee. *)
let explore_pct ~seed ~schedules ~depth body =
  let rng = Util.Rng.of_int seed in
  let total_steps = ref 0 in
  let result = ref None in
  let run = ref 0 in
  let estimated_len = ref 256 in
  while !result = None && !run < schedules do
    let priorities : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let lowest = ref 0.0 in
    let change_points : (int, unit) Hashtbl.t = Hashtbl.create 4 in
    for _ = 1 to max 0 (depth - 1) do
      Hashtbl.replace change_points (Util.Rng.int rng (max 1 !estimated_len)) ()
    done;
    let prio_of id =
      match Hashtbl.find_opt priorities id with
      | Some p -> p
      | None ->
        let p = 1.0 +. Util.Rng.float rng 1.0 in
        Hashtbl.replace priorities id p;
        p
    in
    let choose ~step ~runnable:ids =
      let best_pos = ref 0 and best_p = ref neg_infinity in
      List.iteri
        (fun pos id ->
          let p = prio_of id in
          if p > !best_p then begin
            best_p := p;
            best_pos := pos
          end)
        ids;
      if Hashtbl.mem change_points step then begin
        (* demote the thread we are about to run below everything *)
        lowest := !lowest -. 1.0;
        Hashtbl.replace priorities (List.nth ids !best_pos) !lowest
      end;
      !best_pos
    in
    let trace, steps, violation = run_one ~choose body in
    incr run;
    total_steps := !total_steps + steps;
    estimated_len := max 16 steps;
    match violation with
    | Some kind ->
      result :=
        Some (finish ~schedules_run:!run ~total_steps:!total_steps ~exhausted:false trace steps kind)
    | None -> ()
  done;
  match !result with
  | Some r -> r
  | None ->
    { schedules_run = !run; total_steps = !total_steps; exhausted = false; violation = None }

let explore strategy body =
  match strategy with
  | Dfs { max_schedules } -> explore_dfs ~max_schedules body
  | Random_walk { seed; schedules } -> explore_random ~seed ~schedules body
  | Pct { seed; schedules; depth } -> explore_pct ~seed ~schedules ~depth body

let replay body schedule =
  let p = Array.of_list schedule in
  let choose ~step ~runnable:(_ : int list) = if step < Array.length p then p.(step) else 0 in
  let _, steps, violation = run_one ~choose body in
  Option.map (fun kind -> { kind; schedule; steps }) violation
