(** Linearizability checking against a sequential model (paper section 6:
    "concurrent executions of ShardStore are linearizable with respect to
    the sequential reference models").

    Concurrent test threads record their operations with {!Recorder};
    {!check} then searches (Wing–Gong style) for a linearization: a total
    order of the operations consistent with real-time precedence whose
    results the sequential reference model reproduces. Exponential in
    history length — use short histories (≤ 10 operations). *)

type ('op, 'res) event = {
  thread : int;
  op : 'op;
  result : 'res;
  invoked : int;  (** logical time at invocation *)
  returned : int;  (** logical time at response *)
}

module Recorder : sig
  type ('op, 'res) t

  val create : unit -> ('op, 'res) t

  (** [record t op run] executes [run ()] (which may hit scheduling
      points), capturing invocation/response times. *)
  val record : ('op, 'res) t -> 'op -> (unit -> 'res) -> 'res

  (** Events in invocation order. *)
  val history : ('op, 'res) t -> ('op, 'res) event list
end

(** [check ~init ~apply ~equal_res history] — true iff a linearization
    exists. [apply state op] is the sequential reference model. *)
val check :
  init:'state ->
  apply:('state -> 'op -> 'state * 'res) ->
  equal_res:('res -> 'res -> bool) ->
  ('op, 'res) event list ->
  bool

(** [find] is {!check} returning the witness: the events in a linearization
    order (consistent with real-time precedence, results reproduced by the
    model), or [None] when no linearization exists. Histories may also be
    built by hand — the {!event} record is public — timestamping with any
    monotone logical clock (e.g. an [Atomic] counter shared by real
    domains), which is how the real {!Conc.Rwlock} implementation is
    cross-checked against its model. *)
val find :
  init:'state ->
  apply:('state -> 'op -> 'state * 'res) ->
  equal_res:('res -> 'res -> bool) ->
  ('op, 'res) event list ->
  ('op, 'res) event list option
