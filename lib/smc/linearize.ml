type ('op, 'res) event = {
  thread : int;
  op : 'op;
  result : 'res;
  invoked : int;
  returned : int;
}

module Recorder = struct
  type ('op, 'res) t = {
    mutable clock : int;
    mutable events : ('op, 'res) event list;
  }

  let create () = { clock = 0; events = [] }

  let tick t =
    let now = t.clock in
    t.clock <- now + 1;
    now

  let record t op run =
    let thread = Smc.thread_id () in
    let invoked = tick t in
    let result = run () in
    let returned = tick t in
    t.events <- { thread; op; result; invoked; returned } :: t.events;
    result

  let history t = List.sort (fun a b -> compare a.invoked b.invoked) t.events
end

(* An event is minimal among [pending] when no other pending event returned
   before it was invoked (nothing strictly precedes it in real time). *)
let minimal pending e =
  List.for_all (fun e' -> e' == e || e'.returned >= e.invoked) pending

let find ~init ~apply ~equal_res history =
  let rec go state pending acc =
    match pending with
    | [] -> Some (List.rev acc)
    | _ ->
      List.fold_left
        (fun found e ->
          match found with
          | Some _ -> found
          | None ->
            if not (minimal pending e) then None
            else begin
              let state', res = apply state e.op in
              if equal_res res e.result then
                go state' (List.filter (fun e' -> e' != e) pending) (e :: acc)
              else None
            end)
        None pending
  in
  go init history []

let check ~init ~apply ~equal_res history =
  Option.is_some (find ~init ~apply ~equal_res history)
