(** Seeded-defect registry reproducing the paper's Figure 5 catalog.

    Each value of {!t} names one of the sixteen issues the paper's validation
    effort prevented from reaching production. The implementation consults
    {!enabled} at the exact code site the paper describes; enabling a fault
    re-introduces the defect so the checkers (property-based conformance,
    crash consistency, stateless model checking) can demonstrate detection.

    The registry is global mutable state. That is deliberate: the checkers
    run single-threaded (the concurrency checkers use the cooperative {!Smc}
    runtime, also single-domain), and a global toggle keeps the injection
    sites a one-line [if Faults.enabled F14 then ...].

    {b Domain-safety} (for parallel sweeps, [lib/par]): toggles
    ({!enable}/{!disable}/{!disable_all}/{!with_fault}) must only be flipped
    {e between} sweeps — parallel tasks may read [enabled] but never change
    it; the sweep's spawn/join publishes the settings to every worker.
    Firing counters ({!fired}/{!record_fired}) are atomics and may be bumped
    from concurrent tasks; their totals are exact. *)

type t =
  (* Functional correctness (paper Fig. 5, #1-#5) *)
  | F1_reclaim_off_by_one  (** Chunk store: off-by-one in reclamation for near-page-size chunks *)
  | F2_cache_not_drained  (** Buffer cache: not drained after extent reset *)
  | F3_shutdown_skips_metadata  (** Index: metadata not flushed at shutdown after an extent reset *)
  | F4_disk_return_loses_shards  (** API: shards lost when a disk leaves and rejoins service *)
  | F5_reclaim_forgets_on_read_error  (** Chunk store: reclamation forgets chunks after transient read error *)
  (* Crash consistency (#6-#10) *)
  | F6_superblock_ownership_dep  (** Superblock: wrong dependency for extent ownership after reboot *)
  | F7_soft_hard_pointer_mismatch  (** Superblock: extent reused after reset before pointer update durable *)
  | F8_missing_pointer_dep  (** Write path: append dependency omits the soft-write-pointer update *)
  | F9_model_crash_reconcile  (** Chunk store reference model mishandles crash during reclamation *)
  | F10_uuid_magic_collision  (** Chunk store: reclamation miscounts after crash + UUID/magic collision *)
  (* Concurrency (#11-#16) *)
  | F11_locator_race  (** Chunk store: locator published before flush *)
  | F12_buffer_pool_deadlock  (** Superblock: buffer pool exhaustion deadlock *)
  | F13_list_remove_race  (** API: control-plane list/remove race *)
  | F14_compaction_reclaim_race  (** Index: reclamation vs. LSM compaction race loses entries *)
  | F15_model_locator_reuse  (** Chunk store reference model reuses locators *)
  | F16_bulk_create_remove_race  (** API: bulk create/remove race *)
  | F17_cache_miss_path
      (** Extra (paper section 8.3): a defect on the buffer cache's miss
          path — unreachable by the test harness while the cache is
          configured too large, the paper's one known missed bug. Not part
          of the Figure 5 catalog. *)
  | F18_quorum_ack_volatile
      (** Extra: the fleet acknowledges a quorum write without the durable
          flush on each acking replica — the intentionally broken variant
          the chaos campaign must catch (its teeth check). Not part of the
          Figure 5 catalog. *)

(** The Figure 5 catalog (#1..#16), excluding extras. *)
val all : t list

(** Extra seeded defects for experience-report experiments (#17, #18). *)
val extras : t list

(** Paper catalog number (1..16). *)
val number : t -> int

val of_number : int -> t option

(** Component column of Figure 5. *)
val component : t -> string

(** Description column of Figure 5. *)
val description : t -> string

type property_class = Functional_correctness | Crash_consistency | Concurrency

val property_class : t -> property_class
val property_class_name : property_class -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [enabled f] is true when the defect is currently injected. *)
val enabled : t -> bool

val enable : t -> unit
val disable : t -> unit
val disable_all : unit -> unit

(** [with_fault f thunk] enables [f] for the duration of [thunk], restoring
    the previous setting afterwards (also on exception). *)
val with_fault : t -> (unit -> 'a) -> 'a

(** [fired f] counts how many times the injection site executed its buggy
    branch since the last {!reset_counters}; used by tests to confirm a
    scenario actually reached the defect. *)
val fired : t -> int

(** Called by injection sites when the buggy branch runs. *)
val record_fired : t -> unit

val reset_counters : unit -> unit
