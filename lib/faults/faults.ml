type t =
  | F1_reclaim_off_by_one
  | F2_cache_not_drained
  | F3_shutdown_skips_metadata
  | F4_disk_return_loses_shards
  | F5_reclaim_forgets_on_read_error
  | F6_superblock_ownership_dep
  | F7_soft_hard_pointer_mismatch
  | F8_missing_pointer_dep
  | F9_model_crash_reconcile
  | F10_uuid_magic_collision
  | F11_locator_race
  | F12_buffer_pool_deadlock
  | F13_list_remove_race
  | F14_compaction_reclaim_race
  | F15_model_locator_reuse
  | F16_bulk_create_remove_race
  | F17_cache_miss_path
  | F18_quorum_ack_volatile

let all =
  [ F1_reclaim_off_by_one; F2_cache_not_drained; F3_shutdown_skips_metadata;
    F4_disk_return_loses_shards; F5_reclaim_forgets_on_read_error;
    F6_superblock_ownership_dep; F7_soft_hard_pointer_mismatch;
    F8_missing_pointer_dep; F9_model_crash_reconcile; F10_uuid_magic_collision;
    F11_locator_race; F12_buffer_pool_deadlock; F13_list_remove_race;
    F14_compaction_reclaim_race; F15_model_locator_reuse;
    F16_bulk_create_remove_race ]

let extras = [ F17_cache_miss_path; F18_quorum_ack_volatile ]

let number = function
  | F1_reclaim_off_by_one -> 1
  | F2_cache_not_drained -> 2
  | F3_shutdown_skips_metadata -> 3
  | F4_disk_return_loses_shards -> 4
  | F5_reclaim_forgets_on_read_error -> 5
  | F6_superblock_ownership_dep -> 6
  | F7_soft_hard_pointer_mismatch -> 7
  | F8_missing_pointer_dep -> 8
  | F9_model_crash_reconcile -> 9
  | F10_uuid_magic_collision -> 10
  | F11_locator_race -> 11
  | F12_buffer_pool_deadlock -> 12
  | F13_list_remove_race -> 13
  | F14_compaction_reclaim_race -> 14
  | F15_model_locator_reuse -> 15
  | F16_bulk_create_remove_race -> 16
  | F17_cache_miss_path -> 17
  | F18_quorum_ack_volatile -> 18

let of_number n = List.find_opt (fun f -> number f = n) (all @ extras)

let component = function
  | F1_reclaim_off_by_one | F5_reclaim_forgets_on_read_error
  | F9_model_crash_reconcile | F10_uuid_magic_collision | F11_locator_race
  | F15_model_locator_reuse -> "Chunk store"
  | F2_cache_not_drained | F8_missing_pointer_dep | F17_cache_miss_path -> "Buffer cache"
  | F3_shutdown_skips_metadata | F14_compaction_reclaim_race -> "Index"
  | F4_disk_return_loses_shards | F13_list_remove_race
  | F16_bulk_create_remove_race -> "API"
  | F6_superblock_ownership_dep | F7_soft_hard_pointer_mismatch
  | F12_buffer_pool_deadlock -> "Superblock"
  | F18_quorum_ack_volatile -> "Fleet"

let description = function
  | F1_reclaim_off_by_one ->
    "Off-by-one error in reclamation for chunks of size close to PAGE_SIZE"
  | F2_cache_not_drained -> "Cache was not correctly drained after resetting an extent"
  | F3_shutdown_skips_metadata ->
    "Metadata was not flushed correctly during shutdown if an extent was reset"
  | F4_disk_return_loses_shards ->
    "Shards could be lost if a disk was removed from service and then later returned"
  | F5_reclaim_forgets_on_read_error ->
    "Reclamation could forget chunks after a transient read IO error"
  | F6_superblock_ownership_dep ->
    "Superblock Dependency for extent ownership was incorrect after a reboot"
  | F7_soft_hard_pointer_mismatch ->
    "Mismatch between soft and hard write pointers in a crash after an extent reset"
  | F8_missing_pointer_dep ->
    "Writes did not include a dependency on the soft write pointer update"
  | F9_model_crash_reconcile ->
    "Reference model was not updated correctly after a crash during reclamation"
  | F10_uuid_magic_collision ->
    "Reclamation could forget chunks after a crash and UUID collision"
  | F11_locator_race ->
    "Chunk locators could become invalid after a race between write and flush"
  | F12_buffer_pool_deadlock ->
    "Buffer pool exhaustion could cause threads waiting for a superblock update to deadlock"
  | F13_list_remove_race ->
    "Race between control plane operations for listing and removal of shards"
  | F14_compaction_reclaim_race ->
    "Race between reclamation and LSM compaction could lose recent index entries"
  | F15_model_locator_reuse ->
    "Reference model could re-use chunk locators, which other code assumed were unique"
  | F16_bulk_create_remove_race ->
    "Race between control plane bulk operations for creating and removing shards"
  | F17_cache_miss_path ->
    "Bug in the cache-miss path, unreachable while the cache was configured too large (S8.3)"
  | F18_quorum_ack_volatile ->
    "Fleet acknowledged a quorum write before the replicas durably flushed it"

type property_class = Functional_correctness | Crash_consistency | Concurrency

let property_class f =
  match f with
  | F17_cache_miss_path -> Functional_correctness
  | F18_quorum_ack_volatile -> Crash_consistency
  | _ -> (
    match number f with
    | n when n <= 5 -> Functional_correctness
    | n when n <= 10 -> Crash_consistency
    | _ -> Concurrency)

let property_class_name = function
  | Functional_correctness -> "Functional Correctness"
  | Crash_consistency -> "Crash Consistency"
  | Concurrency -> "Concurrency"

let pp fmt f = Format.fprintf fmt "#%d" (number f)
let to_string f = Format.asprintf "%a" pp f

(* [state] stays a plain bool array: toggles are only legal between
   sweeps (see faults.mli), so parallel tasks only ever read it, and the
   spawn/join of each sweep publishes the toggles to every worker.
   Firing counters, by contrast, are bumped from inside tasks running on
   concurrent domains, so they are atomics — exact totals, not
   best-effort. *)
let state = Array.make 19 false
let counters = Array.init 19 (fun _ -> Atomic.make 0)

let enabled f = state.(number f)
let enable f = state.(number f) <- true
let disable f = state.(number f) <- false
let disable_all () = Array.fill state 0 (Array.length state) false

let with_fault f thunk =
  let prev = enabled f in
  enable f;
  Fun.protect ~finally:(fun () -> if not prev then disable f) thunk

let fired f = Atomic.get counters.(number f)
let record_fired f = Atomic.incr counters.(number f)
let reset_counters () = Array.iter (fun c -> Atomic.set c 0) counters
