type op =
  | Put of { key : string; value : string }
  | Delete of { key : string }
  | Get of { key : string }
  | Batch of (string * string option) list
  | Scan of { lo : string option; hi : string option }

type outcome =
  | Acked
  | Failed
  | Got of string option
  | Batch_done of bool list
  | Scanned of { items : (string * string) list; complete : bool }
  | Unavailable

type marker =
  | Crash
  | Restart
  | Destroy
  | Heal
  | Fault_armed
  | Fault_cleared
  | Extent_failed
  | Repair_start
  | Repair_done
  | Flush

type event =
  | Invoke of { id : int; client : int; op : op }
  | Respond of { id : int; outcome : outcome }
  | Mark of { kind : marker; node : int }

type entry = { ts : int; src : string; ev : event }

let marker_name = function
  | Crash -> "crash"
  | Restart -> "restart"
  | Destroy -> "destroy"
  | Heal -> "heal"
  | Fault_armed -> "fault-armed"
  | Fault_cleared -> "fault-cleared"
  | Extent_failed -> "extent-failed"
  | Repair_start -> "repair-start"
  | Repair_done -> "repair-done"
  | Flush -> "flush"

let pp_bound fmt = function
  | None -> Format.pp_print_string fmt "-"
  | Some k -> Format.pp_print_string fmt k

let pp_op fmt = function
  | Put { key; value } -> Format.fprintf fmt "put %s=%S" key value
  | Delete { key } -> Format.fprintf fmt "delete %s" key
  | Get { key } -> Format.fprintf fmt "get %s" key
  | Batch ops ->
    Format.fprintf fmt "batch [%s]"
      (String.concat "; "
         (List.map
            (function
              | k, Some v -> Printf.sprintf "%s=%S" k v
              | k, None -> Printf.sprintf "-%s" k)
            ops))
  | Scan { lo; hi } -> Format.fprintf fmt "scan [%a, %a]" pp_bound lo pp_bound hi

let pp_outcome fmt = function
  | Acked -> Format.pp_print_string fmt "acked"
  | Failed -> Format.pp_print_string fmt "failed"
  | Got None -> Format.pp_print_string fmt "got none"
  | Got (Some v) -> Format.fprintf fmt "got %S" v
  | Batch_done flags ->
    Format.fprintf fmt "batch-done [%s]"
      (String.concat "" (List.map (fun b -> if b then "+" else "-") flags))
  | Scanned { items; complete } ->
    Format.fprintf fmt "scanned %d item(s)%s" (List.length items)
      (if complete then "" else " (partial)")
  | Unavailable -> Format.pp_print_string fmt "unavailable"

let pp_entry fmt e =
  match e.ev with
  | Invoke { id; client; op } ->
    Format.fprintf fmt "%6d %-8s invoke  #%d c%d %a" e.ts e.src id client pp_op op
  | Respond { id; outcome } ->
    Format.fprintf fmt "%6d %-8s respond #%d %a" e.ts e.src id pp_outcome outcome
  | Mark { kind; node } ->
    if node < 0 then Format.fprintf fmt "%6d %-8s mark    %s" e.ts e.src (marker_name kind)
    else Format.fprintf fmt "%6d %-8s mark    %s node %d" e.ts e.src (marker_name kind) node

(* {2 JSON encoding}

   One object per entry; the schema is documented in README "Wire-trace
   validation". String escaping is shared with the Obs JSONL export so
   every JSONL surface in the repo escapes identically. *)

let jstr s = Printf.sprintf "\"%s\"" (Obs.json_escape s)

let jopt = function None -> "null" | Some s -> jstr s

let op_to_json = function
  | Put { key; value } -> Printf.sprintf "\"op\":\"put\",\"key\":%s,\"value\":%s" (jstr key) (jstr value)
  | Delete { key } -> Printf.sprintf "\"op\":\"delete\",\"key\":%s" (jstr key)
  | Get { key } -> Printf.sprintf "\"op\":\"get\",\"key\":%s" (jstr key)
  | Batch ops ->
    Printf.sprintf "\"op\":\"batch\",\"ops\":[%s]"
      (String.concat ","
         (List.map
            (function
              | k, Some v -> Printf.sprintf "{\"key\":%s,\"value\":%s}" (jstr k) (jstr v)
              | k, None -> Printf.sprintf "{\"key\":%s,\"delete\":true}" (jstr k))
            ops))
  | Scan { lo; hi } -> Printf.sprintf "\"op\":\"scan\",\"lo\":%s,\"hi\":%s" (jopt lo) (jopt hi)

let outcome_to_json = function
  | Acked -> "\"outcome\":\"acked\""
  | Failed -> "\"outcome\":\"failed\""
  | Got v -> Printf.sprintf "\"outcome\":\"got\",\"value\":%s" (jopt v)
  | Batch_done flags ->
    Printf.sprintf "\"outcome\":\"batch\",\"acked\":[%s]"
      (String.concat "," (List.map string_of_bool flags))
  | Scanned { items; complete } ->
    Printf.sprintf "\"outcome\":\"scanned\",\"complete\":%b,\"items\":[%s]" complete
      (String.concat ","
         (List.map
            (fun (k, v) -> Printf.sprintf "{\"key\":%s,\"value\":%s}" (jstr k) (jstr v))
            items))
  | Unavailable -> "\"outcome\":\"unavailable\""

let entry_to_json e =
  let body =
    match e.ev with
    | Invoke { id; client; op } ->
      Printf.sprintf "\"kind\":\"invoke\",\"id\":%d,\"client\":%d,%s" id client (op_to_json op)
    | Respond { id; outcome } ->
      Printf.sprintf "\"kind\":\"respond\",\"id\":%d,%s" id (outcome_to_json outcome)
    | Mark { kind; node } ->
      Printf.sprintf "\"kind\":\"mark\",\"marker\":\"%s\",\"node\":%d" (marker_name kind) node
  in
  Printf.sprintf "{\"ts\":%d,\"src\":%s,%s}" e.ts (jstr e.src) body

(* {2 The recorder} *)

module Recorder = struct
  type t = {
    clock : Conc.Domains.Clock.t;  (** logical timestamps, ticked under the lock *)
    next_id : Conc.Domains.Clock.t;  (** operation ids, claimed before the lock *)
    trace_lock : Conc.Rwlock.t;
    mutable log : entry list;  (** newest first; strictly ts-descending *)
    mutable bytes : int;
    budget : int;
    mutable dropped : int;
    dropped_ids : (int, unit) Hashtbl.t;
        (** invokes the budget refused: their responds drop too, so the
            surviving log has no response without an invocation *)
    obs : Obs.t;
    m_events : Obs.Counter.t;
    m_dropped : Obs.Counter.t;
  }

  let create ?obs ?(byte_budget = 1024 * 1024) () =
    let obs = match obs with Some o -> o | None -> Obs.create ~scope:"trace" () in
    {
      clock = Conc.Domains.Clock.create ();
      next_id = Conc.Domains.Clock.create ();
      trace_lock = Conc.Rwlock.create ();
      log = [];
      bytes = 0;
      budget = byte_budget;
      dropped = 0;
      dropped_ids = Hashtbl.create 16;
      obs;
      m_events = Obs.counter obs "obs.trace_events";
      m_dropped = Obs.counter obs "obs.trace_dropped";
    }

  (* Serialized-size estimate, without building the JSON on the hot path:
     a fixed envelope plus the payload strings. Deliberately >= the real
     encoding's payload share, so the budget errs toward dropping. *)
  let cost ev =
    let opt = function None -> 4 | Some s -> String.length s + 12 in
    let base = 64 in
    match ev with
    | Invoke { op; _ } -> (
      base
      +
      match op with
      | Put { key; value } -> String.length key + String.length value + 24
      | Delete { key } | Get { key } -> String.length key + 12
      | Batch ops ->
        List.fold_left (fun acc (k, v) -> acc + String.length k + opt v + 24) 8 ops
      | Scan { lo; hi } -> opt lo + opt hi)
    | Respond { outcome; _ } -> (
      base
      +
      match outcome with
      | Acked | Failed | Unavailable -> 0
      | Got v -> opt v
      | Batch_done flags -> (List.length flags * 6) + 8
      | Scanned { items; _ } ->
        List.fold_left
          (fun acc (k, v) -> acc + String.length k + String.length v + 24)
          16 items)
    | Mark _ -> base

  (* Tick the clock inside the write lock: mutual exclusion makes the log
     strictly ts-ascending by construction, and the entry's timestamp is
     the operation's recording point. *)
  let record t ~src ev =
    let c = cost ev in
    let kept =
      Conc.Rwlock.with_write t.trace_lock (fun () ->
          if t.bytes + c > t.budget then begin
            t.dropped <- t.dropped + 1;
            (match ev with
            | Invoke { id; _ } -> Hashtbl.replace t.dropped_ids id ()
            | Respond _ | Mark _ -> ());
            false
          end
          else begin
            let ts = Conc.Domains.Clock.tick t.clock in
            t.log <- { ts; src; ev } :: t.log;
            t.bytes <- t.bytes + c;
            true
          end)
    in
    if kept then Obs.Counter.incr t.m_events else Obs.Counter.incr t.m_dropped

  let invoke t ~src ?(client = 0) op =
    let id = Conc.Domains.Clock.tick t.next_id in
    record t ~src (Invoke { id; client; op });
    id

  let respond t ~src ~id outcome =
    (* A respond for a dropped invoke is dropped too (already counted on
       the invoke side as one refused operation; count the respond as
       well — both events are missing from the log). *)
    let invoke_dropped =
      Conc.Rwlock.with_read t.trace_lock (fun () -> Hashtbl.mem t.dropped_ids id)
    in
    if invoke_dropped then begin
      Conc.Rwlock.with_write t.trace_lock (fun () -> t.dropped <- t.dropped + 1);
      Obs.Counter.incr t.m_dropped
    end
    else record t ~src (Respond { id; outcome })

  let mark t ~src ?(node = -1) kind = record t ~src (Mark { kind; node })

  let entries t = Conc.Rwlock.with_read t.trace_lock (fun () -> List.rev t.log)
  let events_recorded t = Conc.Rwlock.with_read t.trace_lock (fun () -> List.length t.log)
  let dropped t = Conc.Rwlock.with_read t.trace_lock (fun () -> t.dropped)
  let bytes_used t = Conc.Rwlock.with_read t.trace_lock (fun () -> t.bytes)
  let byte_budget t = t.budget
  let obs t = t.obs

  let to_jsonl t =
    let buf = Buffer.create 4096 in
    List.iter
      (fun e ->
        Buffer.add_string buf (entry_to_json e);
        Buffer.add_char buf '\n')
      (entries t);
    Buffer.contents buf
end
