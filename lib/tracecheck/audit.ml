(* Offline audit of a recorded wire trace against the chaos campaign's
   per-key model, lifted to interval histories (see audit.mli).

   Pipeline: wire-level well-formedness -> per-key interval histories
   (mutations from puts/deletes/batches, observations from gets and from
   each scan's per-key answers) -> one budgeted Wing-Gong search per key
   -> a sound cross-key snapshot test per completed scan -> ddmin of any
   offending subhistory. *)

type verdict = Valid | Rejected | Truncated | Gave_up

type rejection = {
  r_key : string;
  r_reason : string;
  r_entries : Trace.entry list;
}

type report = {
  entries : int;
  ops : int;
  completed : int;
  pending : int;
  markers : int;
  keys : int;
  scans : int;
  dropped : int;
  search_nodes : int;
  verdict : verdict;
  rejections : rejection list;
}

let verdict_name = function
  | Valid -> "valid"
  | Rejected -> "REJECTED"
  | Truncated -> "truncated"
  | Gave_up -> "gave-up"

(* {2 Wire-level well-formedness} *)

type orec = {
  o_id : int;
  o_op : Trace.op;
  o_invoked : int;
  mutable o_returned : int;  (* max_int while pending *)
  mutable o_outcome : Trace.outcome option;
  o_inv_entry : Trace.entry;
  mutable o_resp_entry : Trace.entry option;
}

let compatible (op : Trace.op) (outcome : Trace.outcome) =
  match (op, outcome) with
  | (Trace.Put _ | Trace.Delete _), (Trace.Acked | Trace.Failed) -> Ok ()
  | Trace.Get _, (Trace.Got _ | Trace.Unavailable) -> Ok ()
  | Trace.Batch ops, Trace.Batch_done flags ->
    if List.length flags = List.length ops then Ok ()
    else
      Error
        (Printf.sprintf "batch response arity %d does not match request arity %d"
           (List.length flags) (List.length ops))
  | Trace.Batch _, Trace.Failed -> Ok ()
  | Trace.Scan _, (Trace.Scanned _ | Trace.Unavailable) -> Ok ()
  | _, _ -> Error "response kind does not match the invoked operation"

(* One ordered pass: strictly increasing timestamps, every response after
   its (unique) invocation, at most one response per id, response kinds
   matching the operation. The response-before-invocation forgery lands
   here whichever way it is serialized: in emission order it breaks ts
   monotonicity, in ts order the response precedes its invocation. *)
let wire_check entries =
  let rejections = ref [] in
  let reject reason ents =
    rejections := { r_key = ""; r_reason = reason; r_entries = ents } :: !rejections
  in
  let by_id : (int, orec) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let markers = ref 0 in
  let last_ts = ref min_int in
  List.iter
    (fun (e : Trace.entry) ->
      if e.Trace.ts <= !last_ts then
        reject
          (Printf.sprintf "timestamps not strictly increasing (ts %d after ts %d)" e.Trace.ts
             !last_ts)
          [ e ];
      last_ts := e.Trace.ts;
      match e.Trace.ev with
      | Trace.Invoke { id; op; _ } ->
        if Hashtbl.mem by_id id then reject (Printf.sprintf "duplicate invocation id %d" id) [ e ]
        else begin
          let r =
            {
              o_id = id;
              o_op = op;
              o_invoked = e.Trace.ts;
              o_returned = max_int;
              o_outcome = None;
              o_inv_entry = e;
              o_resp_entry = None;
            }
          in
          Hashtbl.replace by_id id r;
          order := r :: !order
        end
      | Trace.Respond { id; outcome } -> (
        match Hashtbl.find_opt by_id id with
        | None -> reject (Printf.sprintf "response for id %d with no invocation" id) [ e ]
        | Some r ->
          if r.o_outcome <> None then reject (Printf.sprintf "second response for id %d" id) [ e ]
          else if e.Trace.ts <= r.o_invoked then
            reject
              (Printf.sprintf "response at ts %d not after its invocation at ts %d (id %d)"
                 e.Trace.ts r.o_invoked id)
              [ r.o_inv_entry; e ]
          else begin
            (match compatible r.o_op outcome with
            | Ok () -> ()
            | Error msg -> reject (Printf.sprintf "id %d: %s" r.o_id msg) [ r.o_inv_entry; e ]);
            r.o_returned <- e.Trace.ts;
            r.o_outcome <- Some outcome;
            r.o_resp_entry <- Some e
          end)
      | Trace.Mark _ -> incr markers)
    entries;
  (List.rev !rejections, List.rev !order, !markers)

(* {2 Per-key interval histories} *)

(* The sequential model is the chaos campaign's per-key entry: an acked
   mutation commits and clears the indeterminate set, a failed (or
   pending) one joins it, an observation must be admissible and leaves
   the state alone. [maybe] is kept sorted so states memoize well. *)
type state = { committed : string option; maybe : string option list }

let init_state = { committed = None; maybe = [] }

type act =
  | Mutate of { value : string option; acked : bool }
  | Observe of string option

type kev = {
  k_invoked : int;
  k_returned : int;  (* max_int for pending mutations *)
  k_act : act;
  k_origin : Trace.entry list;
}

let apply st = function
  | Mutate { value; acked = true } -> Some { committed = value; maybe = [] }
  | Mutate { value; acked = false } ->
    if List.mem value st.maybe then Some st
    else Some { st with maybe = List.sort compare (value :: st.maybe) }
  | Observe v ->
    let admissible =
      (match v with None -> st.committed = None | Some _ -> v = st.committed)
      || List.mem v st.maybe
    in
    if admissible then Some st else None

let in_range ~lo ~hi k =
  (match lo with None -> true | Some l -> String.compare l k <= 0)
  && match hi with None -> true | Some h -> String.compare k h <= 0

(* A completed scan, for the cross-key snapshot test: the interval and
   what it claimed about every judged key. *)
type scan_rec = {
  s_invoked : int;
  s_returned : int;
  s_judged : (string * string option) list;
  s_origin : Trace.entry list;
}

let origin_of r = r.o_inv_entry :: Option.to_list r.o_resp_entry

(* Judge a scan's payload before the model does: a snapshot that is not
   strictly ascending, de-duplicated and inside its own bounds is broken
   wire-level, whatever values it carries. *)
let scan_structure r ~lo ~hi items =
  let rec go = function
    | [] | [ _ ] -> None
    | (a, _) :: (((b, _) :: _) as rest) ->
      if String.compare a b >= 0 then
        Some
          {
            r_key = a;
            r_reason =
              Printf.sprintf "scan items not strictly ascending (%S then %S)" a b;
            r_entries = origin_of r;
          }
      else go rest
  in
  match List.find_opt (fun (k, _) -> not (in_range ~lo ~hi k)) items with
  | Some (k, _) ->
    Some
      {
        r_key = k;
        r_reason = Printf.sprintf "scan yielded %S outside its bounds" k;
        r_entries = origin_of r;
      }
  | None -> go items

(* Fold the operation records into per-key histories plus scan records.
   Batches collapse to one mutation per distinct key (the last op on a
   key wins, as in every batched apply path); a complete scan judges
   every trace-known key in range, a partial page only the keys it
   yielded. *)
let collect ops =
  let per_key : (string, kev list) Hashtbl.t = Hashtbl.create 64 in
  let add k kev =
    Hashtbl.replace per_key k
      (kev :: Option.value (Hashtbl.find_opt per_key k) ~default:[])
  in
  let universe : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  let touch k = Hashtbl.replace universe k () in
  List.iter
    (fun r ->
      match r.o_op with
      | Trace.Put { key; _ } | Trace.Delete { key } | Trace.Get { key } -> touch key
      | Trace.Batch ops -> List.iter (fun (k, _) -> touch k) ops
      | Trace.Scan _ -> (
        match r.o_outcome with
        | Some (Trace.Scanned { items; _ }) -> List.iter (fun (k, _) -> touch k) items
        | _ -> ()))
    ops;
  let scans = ref [] in
  let struct_rejections = ref [] in
  List.iter
    (fun r ->
      let interval_act act =
        { k_invoked = r.o_invoked; k_returned = r.o_returned; k_act = act; k_origin = origin_of r }
      in
      match (r.o_op, r.o_outcome) with
      | Trace.Put { key; value }, outcome ->
        add key (interval_act (Mutate { value = Some value; acked = outcome = Some Trace.Acked }))
      | Trace.Delete { key }, outcome ->
        add key (interval_act (Mutate { value = None; acked = outcome = Some Trace.Acked }))
      | Trace.Get { key }, Some (Trace.Got v) -> add key (interval_act (Observe v))
      | Trace.Get _, _ -> ()
      | Trace.Batch bops, outcome ->
        let flags =
          match outcome with
          | Some (Trace.Batch_done flags) when List.length flags = List.length bops -> flags
          | _ -> List.map (fun _ -> false) bops
        in
        let last : (string, string option * bool) Hashtbl.t = Hashtbl.create 8 in
        List.iter2 (fun (k, v) acked -> Hashtbl.replace last k (v, acked)) bops flags;
        Util.Tbl.iter_sorted
          (fun k (value, acked) -> add k (interval_act (Mutate { value; acked })))
          last
      | Trace.Scan { lo; hi }, Some (Trace.Scanned { items; complete }) ->
        (match scan_structure r ~lo ~hi items with
        | Some rej -> struct_rejections := rej :: !struct_rejections
        | None -> ());
        let judged =
          if complete then
            List.filter_map
              (fun k -> if in_range ~lo ~hi k then Some (k, List.assoc_opt k items) else None)
              (Util.Tbl.sorted_keys ~compare:String.compare universe)
          else List.map (fun (k, v) -> (k, Some v)) items
        in
        List.iter (fun (k, v) -> add k (interval_act (Observe v))) judged;
        scans :=
          {
            s_invoked = r.o_invoked;
            s_returned = r.o_returned;
            s_judged = judged;
            s_origin = origin_of r;
          }
          :: !scans
      | Trace.Scan _, _ -> ())
    ops;
  (per_key, List.rev !scans, List.rev !struct_rejections)

(* {2 The per-key search}

   Wing-Gong over the interval history: repeatedly linearize one minimal
   pending event (no other pending event returns before it is invoked),
   backtracking on inadmissible observations. Memoized on the (chosen
   set, model state) pair when the history fits a bitmask; budgeted
   always, with budget exhaustion reported as its own outcome. *)

exception Out_of_budget

let search ~budget kevs0 =
  let kevs =
    Array.of_list (List.stable_sort (fun a b -> compare a.k_invoked b.k_invoked) kevs0)
  in
  let n = Array.length kevs in
  let taken = Array.make n false in
  let memo : (int * state, unit) Hashtbl.t option =
    if n <= 61 then Some (Hashtbl.create 256) else None
  in
  let mask = ref 0 in
  let nodes = ref 0 in
  let rec go remaining st =
    incr nodes;
    if !nodes > budget then raise Out_of_budget;
    if remaining = 0 then true
    else if match memo with Some m -> Hashtbl.mem m (!mask, st) | None -> false then false
    else begin
      let min_ret = ref max_int in
      for i = 0 to n - 1 do
        if (not taken.(i)) && kevs.(i).k_returned < !min_ret then
          min_ret := kevs.(i).k_returned
      done;
      let ok = ref false in
      let i = ref 0 in
      while (not !ok) && !i < n do
        let e = kevs.(!i) in
        if (not taken.(!i)) && e.k_invoked <= !min_ret then begin
          match apply st e.k_act with
          | Some st' ->
            let j = !i in
            taken.(j) <- true;
            if memo <> None then mask := !mask lor (1 lsl j);
            if go (remaining - 1) st' then ok := true
            else begin
              taken.(j) <- false;
              if memo <> None then mask := !mask land lnot (1 lsl j)
            end
          | None -> ()
        end;
        incr i
      done;
      if not !ok then Option.iter (fun m -> Hashtbl.add m (!mask, st) ()) memo;
      !ok
    end
  in
  match go n init_state with
  | ok -> ((if ok then `Linearizable else `Rejected), !nodes)
  | exception Out_of_budget -> (`Gave_up, !nodes)

(* {2 Minimization}

   Span-removal ddmin over the per-key history, keeping only subsets the
   search still rejects outright (a gave-up candidate is treated as
   passing, so minimization can only shrink, never mislabel). *)
let minimize ~budget kevs =
  let still_fails kevs =
    kevs <> [] && match search ~budget kevs with `Rejected, _ -> true | _ -> false
  in
  let current = ref kevs in
  let chunk = ref (max 1 (List.length kevs / 2)) in
  let continue_ = ref true in
  while !continue_ do
    let i = ref 0 in
    while !i < List.length !current do
      let candidate = List.filteri (fun j _ -> j < !i || j >= !i + !chunk) !current in
      if List.length candidate < List.length !current && still_fails candidate then
        current := candidate
      else i := !i + !chunk
    done;
    if !chunk = 1 then continue_ := false else chunk := !chunk / 2
  done;
  !current

let entries_of_kevs kevs =
  List.concat_map (fun k -> k.k_origin) kevs
  |> List.sort_uniq (fun (a : Trace.entry) b -> compare a.Trace.ts b.Trace.ts)

(* {2 The cross-key snapshot test}

   For each judged key, bracket when its observed value could have been
   the key's current answer: not before every writer of that value was
   invoked ([lo]), and not after an acked overwrite certainly completed
   with no chance of the value being restored ([hi] — an acked mutation
   to a different value, where every writer of the observed value had
   already returned by the overwrite's invocation). The scan needs one
   point inside its own interval meeting every key's bracket; an empty
   intersection is a snapshot violation no per-key history can explain.
   Both bounds are conservative, so a rejection here is sound. *)
let cross_check per_key s =
  let muts_of k =
    List.filter_map
      (fun e ->
        match e.k_act with
        | Mutate { value; acked } -> Some (value, acked, e.k_invoked, e.k_returned)
        | Observe _ -> None)
      (List.rev (Option.value (Hashtbl.find_opt per_key k) ~default:[]))
  in
  let bracket (k, v) =
    let muts = muts_of k in
    let writer_invokes =
      List.filter_map (fun (value, _, inv, _) -> if value = v then Some inv else None) muts
    in
    let lo =
      match (v, writer_invokes) with
      | None, _ -> min_int
      | Some _, [] -> min_int (* no writer at all: the per-key search rejects it *)
      | Some _, l -> List.fold_left min max_int l
    in
    (* some mutation of [v] could still linearize after a point at or
       past [inv] *)
    let value_may_follow inv =
      List.exists (fun (value, _, _, ret) -> value = v && ret > inv) muts
    in
    let hi =
      List.fold_left
        (fun hi (value, acked, inv, ret) ->
          if acked && value <> v && ret < hi && not (value_may_follow inv) then ret else hi)
        max_int muts
    in
    (k, lo, hi)
  in
  let brackets = List.map bracket s.s_judged in
  let lo_k, lo =
    List.fold_left (fun (bk, b) (k, l, _) -> if l > b then (k, l) else (bk, b)) ("", min_int)
      brackets
  in
  let hi_k, hi =
    List.fold_left (fun (bk, b) (k, _, h) -> if h < b then (k, h) else (bk, b)) ("", max_int)
      brackets
  in
  let low = max s.s_invoked lo and high = min s.s_returned hi in
  if low <= high then None
  else
    let constraining k =
      List.concat_map (fun e -> e.k_origin)
        (Option.value (Hashtbl.find_opt per_key k) ~default:[])
    in
    Some
      {
        r_key = (if lo_k <> "" then lo_k else hi_k);
        r_reason =
          Printf.sprintf
            "scan snapshot violation: %S requires a linearization point >= %d but %S allows \
             none past %d (scan interval [%d, %d])"
            lo_k lo hi_k hi s.s_invoked s.s_returned;
        r_entries =
          (s.s_origin @ constraining lo_k @ constraining hi_k)
          |> List.sort_uniq (fun (a : Trace.entry) b -> compare a.Trace.ts b.Trace.ts);
      }

(* {2 The audit} *)

let run ?(budget_per_key = 200_000) ?(dropped = 0) entries =
  let wf_rejections, ops, markers = wire_check entries in
  let completed = List.length (List.filter (fun r -> r.o_outcome <> None) ops) in
  let base =
    {
      entries = List.length entries;
      ops = List.length ops;
      completed;
      pending = List.length ops - completed;
      markers;
      keys = 0;
      scans = 0;
      dropped;
      search_nodes = 0;
      verdict = Valid;
      rejections = [];
    }
  in
  if wf_rejections <> [] then
    { base with verdict = (if dropped > 0 then Truncated else Rejected); rejections = wf_rejections }
  else begin
    let per_key, scans, struct_rejections = collect ops in
    let nodes_total = ref 0 in
    let gave_up = ref false in
    let rejections = ref (List.rev struct_rejections) in
    Util.Tbl.iter_sorted
      (fun key kevs ->
        let kevs = List.rev kevs in
        let outcome, nodes = search ~budget:budget_per_key kevs in
        nodes_total := !nodes_total + nodes;
        match outcome with
        | `Linearizable -> ()
        | `Gave_up -> gave_up := true
        | `Rejected ->
          let minimized = minimize ~budget:budget_per_key kevs in
          rejections :=
            {
              r_key = key;
              r_reason =
                Printf.sprintf
                  "per-key history not linearizable against the committed/indeterminate model \
                   (%d event(s), minimized to %d)"
                  (List.length kevs) (List.length minimized);
              r_entries = entries_of_kevs minimized;
            }
            :: !rejections)
      per_key;
    List.iter
      (fun s ->
        match cross_check per_key s with
        | Some rej -> rejections := rej :: !rejections
        | None -> ())
      scans;
    let rejections = List.rev !rejections in
    let verdict =
      if dropped > 0 then Truncated
      else if rejections <> [] then Rejected
      else if !gave_up then Gave_up
      else Valid
    in
    {
      base with
      keys = Hashtbl.length per_key;
      scans = List.length scans;
      search_nodes = !nodes_total;
      verdict;
      rejections;
    }
  end

let audit ?budget_per_key recorder =
  run ?budget_per_key ~dropped:(Trace.Recorder.dropped recorder)
    (Trace.Recorder.entries recorder)

let ok r = r.verdict = Valid

let pp_report fmt r =
  Format.fprintf fmt
    "%s: %d entries (%d ops: %d completed, %d pending; %d markers), %d keys, %d scans, %d \
     dropped, %d search nodes"
    (verdict_name r.verdict) r.entries r.ops r.completed r.pending r.markers r.keys r.scans
    r.dropped r.search_nodes;
  List.iter
    (fun rej ->
      if rej.r_key = "" then Format.fprintf fmt "@.  wire: %s" rej.r_reason
      else Format.fprintf fmt "@.  key %s: %s" rej.r_key rej.r_reason;
      List.iter (fun e -> Format.fprintf fmt "@.    %a" Trace.pp_entry e) rej.r_entries)
    r.rejections
