(** Wire-trace capture for non-deterministic runs (OmniLink-style: record
    timestamped invocation/response events from the running system, audit
    them offline — see {!Audit}).

    Every checker below this layer replays a deterministic schedule; the
    recorder is the bridge to executions that do not replay — racing
    [Store.Shared] domains, bench runs, chaos campaigns with faults armed.
    [Rpc.Node], [Fleet] and [Store.Shared] accept a shared {!Recorder.t}
    ([?trace], right after [?obs] in their constructors) and emit:

    - an {!event.Invoke} when a request-plane operation begins and a
      matching {!event.Respond} when it completes, so each operation is an
      interval on the recorder's monotone logical clock;
    - {!event.Mark} markers for the control plane (crash/restart, node
      loss, heal, fault arming, repair, flush), which the audit reports
      alongside counterexamples but never judges.

    The log is bounded by a byte budget (satellite: trace capture must
    have a measured, bounded cost): past the budget an invocation is
    dropped {e together with} its response — the surviving log stays
    well-formed — and the drop is counted ([obs.trace_dropped]), which the
    audit turns into a [Truncated] verdict rather than a false rejection.

    Thread safety: timestamps come from a validated atomic clock
    ({!Conc.Domains.Clock}) ticked under the recorder's {!Conc.Rwlock}
    write lock, so entries are strictly ts-ascending and any number of
    domains may record concurrently. The trace lock is a leaf in the
    global lock order: recording callers must not (and do not) hold it
    around any other acquisition, and instrumented components emit
    strictly outside their own lock closures. *)

type op =
  | Put of { key : string; value : string }
  | Delete of { key : string }
  | Get of { key : string }
  | Batch of (string * string option) list
      (** per-op [Some v] = put, [None] = delete; request order preserved *)
  | Scan of { lo : string option; hi : string option }
      (** inclusive bounds, [None] = unbounded; paginated callers record
          the {e effective} lower bound (continuation tokens folded in) *)

type outcome =
  | Acked  (** mutation durably acknowledged *)
  | Failed  (** mutation failed — its effect is indeterminate *)
  | Got of string option  (** point read: value, or absence *)
  | Batch_done of bool list  (** per-op acknowledgement flags, request order *)
  | Scanned of { items : (string * string) list; complete : bool }
      (** [complete] = the whole range, not one page of it *)
  | Unavailable  (** read error: no answer, nothing to judge *)

type marker =
  | Crash  (** node power loss; recovery follows *)
  | Restart  (** node back up after a crash *)
  | Destroy  (** node replaced with empty hardware *)
  | Heal  (** operator heal: medium fixed, breaker re-closed *)
  | Fault_armed  (** random disk-fault arming switched on *)
  | Fault_cleared  (** random disk-fault arming switched off *)
  | Extent_failed  (** one extent forced to fail (once or permanently) *)
  | Repair_start
  | Repair_done
  | Flush  (** shared-store staging drain *)

type event =
  | Invoke of { id : int; client : int; op : op }
  | Respond of { id : int; outcome : outcome }
  | Mark of { kind : marker; node : int }  (** [node = -1]: whole fleet *)

type entry = { ts : int; src : string; ev : event }

val marker_name : marker -> string
val pp_op : Format.formatter -> op -> unit
val pp_entry : Format.formatter -> entry -> unit

(** One JSON object, no trailing newline — the JSONL schema documented in
    README "Wire-trace validation". *)
val entry_to_json : entry -> string

(** {2 The recorder} *)

module Recorder : sig
  type t

  (** [create ?obs ?byte_budget ()] — a fresh recorder. Registers the
      [obs.trace_events] / [obs.trace_dropped] counters in [obs] (or a
      private registry). [byte_budget] (default 1 MiB) bounds the
      {e serialized} size of the kept log. *)
  val create : ?obs:Obs.t -> ?byte_budget:int -> unit -> t

  (** [invoke t ~src ?client op] — record the start of an operation and
      return its id (recorded or not; {!respond} of a dropped id is
      dropped silently, keeping the log well-formed). *)
  val invoke : t -> src:string -> ?client:int -> op -> int

  val respond : t -> src:string -> id:int -> outcome -> unit
  val mark : t -> src:string -> ?node:int -> marker -> unit

  (** The kept log, ts-ascending. *)
  val entries : t -> entry list

  val events_recorded : t -> int

  (** Events refused by the byte budget (invokes, their responses, marks). *)
  val dropped : t -> int

  val bytes_used : t -> int
  val byte_budget : t -> int
  val obs : t -> Obs.t

  (** One JSON object per line, ts-ascending. *)
  val to_jsonl : t -> string
end
