(** Offline linearizability audit of a recorded wire trace.

    The specification is the chaos campaign's per-key model lifted from a
    sequential schedule to interval histories (paper section 3.2 gives the
    reference-model method; OmniLink the trace-validation one):

    - each completed operation is an interval [[invoke, respond]] on the
      recorder's logical clock; operations whose intervals overlap may
      linearize in either order, non-overlapping ones in trace order
      (Wing–Gong);
    - an {e acked} mutation sets the key's committed value and clears the
      indeterminate set; a {e failed} (or still-pending) mutation joins
      the indeterminate set — the client was told "error", not "didn't
      happen", so its value may surface later;
    - a read must observe an admissible value at its linearization point:
      the committed value or an indeterminate one;
    - a scan must observe a {e consistent snapshot}: per key its answer
      (value or absence) must be admissible within the scan's interval,
      and one linearization point inside the interval must satisfy every
      key at once (the cross-key check below rejects a scan that pairs a
      value only writable late with one already overwritten early).

    Per-key histories are searched exhaustively (budgeted, memoized DFS
    over the minimal-event frontier, as in {!Smc}'s [Linearize]); the
    cross-key scan check is a sound interval test: for each judged key the
    audit brackets when its observed value could have been current —
    after every writer of the value was invoked, before any acked
    overwrite certainly completed — and requires the brackets to
    intersect inside the scan's interval. A trace that drops events
    (recorder byte budget) is {!verdict.Truncated}, never falsely
    rejected; a search that exhausts its budget is {!verdict.Gave_up}.

    On rejection the offending per-key subhistory is ddmin-minimized and
    reported as trace entries, so a counterexample from a
    non-deterministic run is still a small, readable artifact. *)

type verdict =
  | Valid
  | Rejected  (** at least one {!rejection} *)
  | Truncated  (** events were dropped; the audit refuses to certify *)
  | Gave_up  (** a per-key search exhausted its node budget *)

type rejection = {
  r_key : string;  (** [""] for wire-level (well-formedness) findings *)
  r_reason : string;
  r_entries : Trace.entry list;
      (** minimized offending subhistory, ts-ascending *)
}

type report = {
  entries : int;
  ops : int;  (** invocations (completed or pending) *)
  completed : int;
  pending : int;  (** invocations with no response — judged indeterminate *)
  markers : int;
  keys : int;  (** distinct keys judged *)
  scans : int;  (** completed scans judged *)
  dropped : int;
  search_nodes : int;  (** DFS nodes across every per-key search *)
  verdict : verdict;
  rejections : rejection list;
}

val verdict_name : verdict -> string

(** [run ?budget_per_key ?dropped entries] — audit a ts-ascending trace.
    [dropped] (default 0) is the recorder's refused-event count;
    [budget_per_key] (default 200_000) bounds each per-key DFS. *)
val run : ?budget_per_key:int -> ?dropped:int -> Trace.entry list -> report

(** [audit recorder] = [run] over {!Trace.Recorder.entries} with the
    recorder's own drop count. *)
val audit : ?budget_per_key:int -> Trace.Recorder.t -> report

(** [Valid] — and nothing less: truncated or given-up audits are not ok. *)
val ok : report -> bool

val pp_report : Format.formatter -> report -> unit
