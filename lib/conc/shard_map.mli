(** Concurrent model of the control plane's shard map — issues #13 and
    #16.

    The RPC control plane lists, creates and removes shards concurrently.
    Issue #13: listing iterated the map by position while a removal
    shifted entries, so the listing could skip a shard that was present
    the whole time. Issue #16: bulk creation and bulk removal updated the
    map with non-atomic read-modify-writes, losing concurrent updates.
    The fixes: snapshot listings and atomic per-element updates. *)

type t

val create : unit -> t

(** [add t shard] — atomic unless fault #16, which uses a racy
    read-modify-write. *)
val add : t -> int -> unit

(** [remove t shard] — atomic unless fault #16. *)
val remove : t -> int -> unit

(** [bulk_create t shards] / [bulk_remove t shards] — element at a time. *)
val bulk_create : t -> int list -> unit

val bulk_remove : t -> int list -> unit

(** [list t] — a consistent snapshot unless fault #13, which iterates by
    position with scheduling points in between. *)
val list : t -> int list

val mem : t -> int -> bool
