(* Validated wrappers for racing real domains. Everything outside
   lib/{conc,par,smc,obs} that wants raw Domain.spawn/join or an Atomic
   event counter goes through here instead (enforced by lib/lint), so the
   repo has one auditable place where real parallelism starts. *)

let spawn_join ~domains f =
  if domains < 1 then invalid_arg "Conc.Domains.spawn_join: domains < 1";
  let handles = List.init (domains - 1) (fun d -> Domain.spawn (fun () -> f (d + 1))) in
  let first = f 0 in
  first :: List.map Domain.join handles

module Clock = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let tick t = Atomic.fetch_and_add t 1
  let now t = Atomic.get t
end
