(* Validated wrappers for racing real domains. Everything outside
   lib/{conc,par,smc,obs} that wants raw Domain.spawn/join or an Atomic
   event counter goes through here instead (enforced by lib/lint), so the
   repo has one auditable place where real parallelism starts. *)

let spawn_join ~domains f =
  if domains < 1 then invalid_arg "Conc.Domains.spawn_join: domains < 1";
  let handles = List.init (domains - 1) (fun d -> Domain.spawn (fun () -> f (d + 1))) in
  let first = f 0 in
  first :: List.map Domain.join handles

(* Spin-wait hint for code outside the primitive-confinement allowlist:
   polling loops (e.g. "wait until the maintenance worker drains") call
   this instead of raw Domain.cpu_relax. *)
let relax = Domain.cpu_relax

module Clock = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let tick t = Atomic.fetch_and_add t 1
  let now t = Atomic.get t
end

(* A long-lived background domain driven by a stop flag, for maintenance
   loops that must race foreground work for an unbounded stretch rather
   than a fixed fork/join range. The step counter is owned by the worker
   domain; [stop]'s join publishes it to the caller. *)
module Worker = struct
  type t = { stop : bool Atomic.t; handle : int Domain.t }

  let start step =
    let stop = Atomic.make false in
    let handle =
      Domain.spawn (fun () ->
          let rec go n =
            if Atomic.get stop then n
            else begin
              step n;
              Domain.cpu_relax ();
              go (n + 1)
            end
          in
          go 0)
    in
    { stop; handle }

  let stop w =
    Atomic.set w.stop true;
    Domain.join w.handle
end
