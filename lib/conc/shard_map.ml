type t = { shards : int list Smc.Cell.t }

let create () = { shards = Smc.Cell.make [] }

let add t shard =
  if Faults.enabled Faults.F16_bulk_create_remove_race then begin
    Faults.record_fired Faults.F16_bulk_create_remove_race;
    (* racy read-modify-write: a concurrent update in the window is lost *)
    let cur = Smc.Cell.get t.shards in
    Smc.Cell.set t.shards (if List.mem shard cur then cur else shard :: cur)
  end
  else
    ignore
      (Smc.Cell.update t.shards (fun cur -> if List.mem shard cur then cur else shard :: cur))

let remove t shard =
  if Faults.enabled Faults.F16_bulk_create_remove_race then begin
    Faults.record_fired Faults.F16_bulk_create_remove_race;
    let cur = Smc.Cell.get t.shards in
    Smc.Cell.set t.shards (List.filter (fun s -> s <> shard) cur)
  end
  else ignore (Smc.Cell.update t.shards (List.filter (fun s -> s <> shard)))

let bulk_create t shards = List.iter (add t) shards
let bulk_remove t shards = List.iter (remove t) shards

let list t =
  if Faults.enabled Faults.F13_list_remove_race then begin
    Faults.record_fired Faults.F13_list_remove_race;
    (* positional iteration: concurrent removals shift later entries under
       the cursor, skipping shards that were never removed *)
    let rec go i acc =
      let cur = Smc.Cell.get t.shards in
      if i >= List.length cur then List.rev acc else go (i + 1) (List.nth cur i :: acc)
    in
    go 0 []
  end
  else Smc.Cell.get t.shards

let mem t shard = List.mem shard (Smc.Cell.get t.shards)
