(** Concurrent model of the LSM index with background maintenance — the
    paper's Fig. 4 harness.

    The index tracks an in-memory metadata set of the chunks currently
    storing LSM data (on a mock chunk store, "as a conceit to
    scalability"). Two background tasks mutate it concurrently:

    - {!compact} flushes the in-memory section into a new chunk, then
      updates the metadata to point at it;
    - {!reclaim} scans an extent, evacuates chunks the metadata still
      references, drops the rest and resets the extent.

    Issue #14: compaction writes the new chunk and is then preempted
    {e before} updating the metadata; reclamation scans that extent, does
    not find the chunk in the metadata, and drops it — losing the recently
    flushed index entries. The fix locks the extent compaction writes into
    until the metadata points at the new chunk; fault #14 removes the
    lock. *)

type t

val extent_count : int

(** [create ()] — build inside an {!Smc.explore} body. *)
val create : unit -> t

(** [put t ~key ~value] — into the in-memory section. *)
val put : t -> key:int -> value:int -> unit

(** [get t ~key] — in-memory section first, then chunks via metadata. *)
val get : t -> key:int -> int option

(** [compact t] — flush the in-memory section to a new chunk on the open
    extent (extent 0) and repoint the metadata. *)
val compact : t -> unit

(** [reclaim t ~extent] — evacuate referenced chunks, drop the rest,
    reset. *)
val reclaim : t -> extent:int -> unit

(** Number of chunks currently on an extent (assertions). *)
val chunks_on : t -> extent:int -> int
