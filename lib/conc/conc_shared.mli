(** Smc model of the [Store.Shared] hot path — the checked version of the
    sharded store's race-freedom argument.

    The real shared store keeps per-shard staging tables behind per-shard
    {!Rwlock}s, the underlying sequential store behind a stack lock, and
    the block cache behind its own lock with a {!Cache_sm} lifecycle per
    entry. This module rebuilds exactly that locking discipline over
    {!Smc} primitives (plain [Cell] accesses protected only by the model
    rwlocks) and explores it with the FastTrack race monitor and
    lock-order analysis attached:

    - {e shared/cross} — writers on distinct shards race a reader:
      isolation, no cross-shard interference;
    - {e shared/flush} — writer, flusher and reader on one shard: a get
      holds its shard read lock across the staged probe {e and} the base
      read, so it is atomic against the flush;
    - {e shared/cache} — miss-fill with the IO window open ([Reading]),
      concurrent dirtying and writeback: every entry transition is
      checked against {!Cache_sm.legal};
    - {e shared/order} — batch staging (nested shard write locks,
      ascending) races flushes (shard before stack): the accumulated
      lock graph must stay acyclic;
    - {e shared/maint} — the {e narrowed} maintenance flush (maint lock,
      shard write lock across the drain, stack lock re-taken per applied
      entry) races foreground readers on both shards: an acked staged
      value must stay observable through every chunk boundary, and the
      foreground read on the other shard must keep flowing;
    - {e shared/maint-order} — the maintenance domain (maint < shard <
      stack via the narrowed flush, maint < stack via compact) races a
      foreground flusher and a cross-shard batch: the lock graph over
      all four acquisition paths must stay acyclic.

    The [maint]/[shard]/[stack]/[cache] class names on the model locks
    feed [validate --shared --lint-graph]'s dynamic edge export, which
    [bin/lint.exe] checks is a subset of the statically extracted
    acquisition graph.

    Three-thread harnesses are not exhaustible within a realistic budget
    (unlike the two-thread {!Rwlock.Check} harnesses), so the gate is:
    no violation, no lock cycles, and a positive race-checked access
    count on every harness. *)

type report = { name : string; property : string; outcome : Smc.outcome }

val pp_report : Format.formatter -> report -> unit

(** [run ?budget ()] — explore all six harnesses under
    [Sanitize.default] with a DFS budget of [budget] schedules each
    (default 20_000). *)
val run : ?budget:int -> unit -> report list

(** No violation, no lock cycles, and [sanitize_accesses > 0] for every
    report. *)
val ok : report list -> bool
