(* The Fig. 4 harness: read-after-write consistency for a fixed history
   under concurrent chunk reclamation and LSM compaction. *)
let fig4_harness () =
  let index = Conc_index.create () in
  (* Set up some initial state in the index. *)
  Conc_index.put index ~key:1 ~value:10;
  Conc_index.put index ~key:2 ~value:20;
  Conc_index.compact index;
  Conc_index.put index ~key:3 ~value:30;
  let done_ = Smc.Cell.make 0 in
  let finished () = ignore (Smc.Cell.update done_ (fun d -> d + 1)) in
  (* Spawn concurrent operations. *)
  Smc.spawn (fun () ->
      Conc_index.reclaim index ~extent:0;
      finished ());
  Smc.spawn (fun () ->
      Conc_index.compact index;
      finished ());
  Smc.spawn (fun () ->
      (* Overwrite keys and check the new value sticks. *)
      Conc_index.put index ~key:1 ~value:11;
      (match Conc_index.get index ~key:1 with
      | Some 11 -> ()
      | Some v -> failwith (Printf.sprintf "read-after-write: got %d" v)
      | None -> failwith "read-after-write: entry lost");
      finished ());
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 3);
  (* After everything settles the overwrite must still be visible. *)
  match Conc_index.get index ~key:1 with
  | Some 11 -> ()
  | Some v -> failwith (Printf.sprintf "final read: got %d" v)
  | None -> failwith "final read: entry lost"

let locator_harness () =
  let store = Conc_chunks.create () in
  let done_ = Smc.Cell.make 0 in
  Smc.spawn (fun () ->
      Conc_chunks.put store ~payload:42;
      Conc_chunks.put store ~payload:43;
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.spawn (fun () ->
      (* A published locator must always resolve to valid data. *)
      List.iter
        (fun locator ->
          match Conc_chunks.read store ~locator with
          | Some _ -> ()
          | None -> failwith "published locator points at unwritten slot")
        (Conc_chunks.published store);
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2)

let buffer_pool_harness () =
  let pool = Buffer_pool.create ~buffers:2 in
  let done_ = Smc.Cell.make 0 in
  let writer () =
    Buffer_pool.write_shard pool;
    ignore (Smc.Cell.update done_ (fun d -> d + 1))
  in
  Smc.spawn writer;
  Smc.spawn writer;
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2)

let list_remove_harness () =
  let map = Shard_map.create () in
  Shard_map.add map 1;
  Shard_map.add map 2;
  Shard_map.add map 3;
  let done_ = Smc.Cell.make 0 in
  Smc.spawn (fun () ->
      (* Shard 2 is never removed: every listing must contain it. *)
      let listing = Shard_map.list map in
      if not (List.mem 2 listing) then failwith "listing skipped a live shard";
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.spawn (fun () ->
      Shard_map.remove map 1;
      Shard_map.remove map 3;
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2)

let bulk_harness () =
  let map = Shard_map.create () in
  Shard_map.add map 3;
  let done_ = Smc.Cell.make 0 in
  Smc.spawn (fun () ->
      Shard_map.bulk_create map [ 1; 2 ];
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.spawn (fun () ->
      Shard_map.bulk_remove map [ 3 ];
      ignore (Smc.Cell.update done_ (fun d -> d + 1)));
  Smc.wait_until (fun () -> Smc.Cell.peek done_ = 2);
  if not (Shard_map.mem map 1) then failwith "created shard 1 lost";
  if not (Shard_map.mem map 2) then failwith "created shard 2 lost";
  if Shard_map.mem map 3 then failwith "removed shard 3 still present"

let harness fault =
  match fault with
  | Faults.F11_locator_race -> Some locator_harness
  | Faults.F12_buffer_pool_deadlock -> Some buffer_pool_harness
  | Faults.F13_list_remove_race -> Some list_remove_harness
  | Faults.F14_compaction_reclaim_race -> Some fig4_harness
  | Faults.F16_bulk_create_remove_race -> Some bulk_harness
  | _ -> None

let get_harness fault =
  match harness fault with
  | Some h -> h
  | None ->
    invalid_arg
      (Printf.sprintf "Conc_detect: fault #%d is not a concurrency fault" (Faults.number fault))

let detect ?sanitize strategy fault =
  let h = get_harness fault in
  Faults.disable_all ();
  Faults.reset_counters ();
  Faults.enable fault;
  Fun.protect ~finally:(fun () -> Faults.disable fault) (fun () -> Smc.explore ?sanitize strategy h)

let check_correct ?sanitize strategy fault =
  let h = get_harness fault in
  Faults.disable_all ();
  Smc.explore ?sanitize strategy h
