(** Concurrent model of the chunk-store write/flush path — issue #11.

    A put allocates a locator (slot) and writes the chunk's data; a flush
    publishes completed locators to readers. The issue: locators published
    before the data write completes can be observed pointing at invalid
    (unwritten) slots. The fix orders the publish after the write; fault
    #11 publishes at allocation time. *)

type t

val create : unit -> t

(** [put t ~payload] — allocate, write, publish. *)
val put : t -> payload:int -> unit

(** Locators visible to readers. *)
val published : t -> int list

(** [read t ~locator] — [None] when the slot holds no valid data. *)
val read : t -> locator:int -> int option
