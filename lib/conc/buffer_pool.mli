(** Concurrent model of the IO buffer pool — issue #12.

    Writing a shard requires a data buffer; completing it also requires a
    buffer for the superblock (soft write pointer) update. The fix reserves
    a dedicated buffer for superblock updates so they can always complete;
    fault #12 takes both buffers from the shared pool, and with the pool
    exhausted every writer waits for a superblock update that can never
    get a buffer — deadlock. *)

type t

(** [create ~buffers] — shared pool size (the fix reserves one more,
    dedicated to the superblock). *)
val create : buffers:int -> t

(** One full shard write: data buffer, then superblock update. *)
val write_shard : t -> unit
