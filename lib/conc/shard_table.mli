(** Hash-sharded mutable table with one {!Rwlock} per shard — the shared
    memtable/staging structure behind [Store.Shared].

    Keys hash to a shard ([Hashtbl.hash key mod shards]); each shard is a
    plain [Hashtbl] protected by its own writer-preferring {!Rwlock}, so
    operations on different shards never contend. The race-freedom
    argument is structural: a shard's table is touched only inside
    [with_*] sections on that shard's lock, and whole-table sections
    acquire every shard lock in ascending index order — the global lock
    order, which makes cross-shard deadlock impossible by construction
    (see the {!Conc_shared} model for the checked version of this
    argument). *)

type 'a t

(** [create ?shards ()] — [shards] defaults to 8; must be >= 1. *)
val create : ?shards:int -> unit -> 'a t

val shards : 'a t -> int

(** The shard [key] hashes to (exposed for tests and introspection). *)
val shard_of : 'a t -> string -> int

(** [with_key_read t key f] — run [f] on [key]'s shard table under that
    shard's read lock. [f] must not mutate the table. *)
val with_key_read : 'a t -> string -> ((string, 'a) Hashtbl.t -> 'b) -> 'b

(** [with_key_write t key f] — same shard table under the write lock. *)
val with_key_write : 'a t -> string -> ((string, 'a) Hashtbl.t -> 'b) -> 'b

(** [with_shard_read t i f] — shard [i] by index under the read lock
    ([f] must not mutate). The maintenance plane's cheap emptiness probe:
    a reader-side peek never blocks other readers of the shard. *)
val with_shard_read : 'a t -> int -> ((string, 'a) Hashtbl.t -> 'b) -> 'b

(** [with_shard_write t i f] — shard [i] by index, write-locked. *)
val with_shard_write : 'a t -> int -> ((string, 'a) Hashtbl.t -> 'b) -> 'b

(** Whole-table sections: every shard lock acquired in ascending index
    order, released descending. While one is active no per-key section
    can run anywhere in the table. *)
val with_all_read : 'a t -> ((string, 'a) Hashtbl.t array -> 'b) -> 'b

val with_all_write : 'a t -> ((string, 'a) Hashtbl.t array -> 'b) -> 'b

(** Total bindings across shards (takes all read locks). *)
val size : 'a t -> int
