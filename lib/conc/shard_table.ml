type 'a t = {
  shards : int;
  locks : Rwlock.t array;
  tables : (string, 'a) Hashtbl.t array;
}

let create ?(shards = 8) () =
  if shards < 1 then invalid_arg "Shard_table.create: shards must be >= 1";
  {
    shards;
    locks = Array.init shards (fun _ -> Rwlock.create ());
    tables = Array.init shards (fun _ -> Hashtbl.create 64);
  }

let shards t = t.shards
let shard_of t key = Hashtbl.hash key mod t.shards

let with_key_read t key f =
  let i = shard_of t key in
  Rwlock.with_read t.locks.(i) (fun () -> f t.tables.(i))

let with_key_write t key f =
  let i = shard_of t key in
  Rwlock.with_write t.locks.(i) (fun () -> f t.tables.(i))

let with_shard_read t i f =
  if i < 0 || i >= t.shards then invalid_arg "Shard_table.with_shard_read: bad shard";
  Rwlock.with_read t.locks.(i) (fun () -> f t.tables.(i))

let with_shard_write t i f =
  if i < 0 || i >= t.shards then invalid_arg "Shard_table.with_shard_write: bad shard";
  Rwlock.with_write t.locks.(i) (fun () -> f t.tables.(i))

(* All-shard sections acquire in ascending shard order (the global lock
   order) and release in descending order. *)
let with_all ~acquire ~release t f =
  for i = 0 to t.shards - 1 do
    acquire t.locks.(i)
  done;
  Fun.protect
    ~finally:(fun () ->
      for i = t.shards - 1 downto 0 do
        release t.locks.(i)
      done)
    (fun () -> f t.tables)

let with_all_read t f = with_all ~acquire:Rwlock.acquire_read ~release:Rwlock.release_read t f

let with_all_write t f =
  with_all ~acquire:Rwlock.acquire_write ~release:Rwlock.release_write t f

let size t =
  with_all_read t (fun tables -> Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 tables)
