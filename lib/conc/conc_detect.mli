(** Stateless-model-checking harnesses for the concurrency issues of the
    paper's Fig. 5 (#11-#14, #16), and the detection driver the Fig. 5
    experiment uses for them.

    Each harness is a closed test body for {!Smc.explore}: it builds the
    component, spawns the racing threads (background maintenance plus a
    foreground read-after-write checker, exactly like the paper's Fig. 4
    harness) and asserts the expected outcome. With the fault disabled the
    bodies pass under exhaustive DFS; with it enabled some interleaving
    violates the assertion or deadlocks. *)

(** [harness fault] — the test body, or [None] for non-concurrency
    faults. *)
val harness : Faults.t -> (unit -> unit) option

(** [detect strategy fault] enables [fault], explores the harness,
    disables it. Raises [Invalid_argument] for non-concurrency faults.
    [sanitize] runs the {!Sanitize} detectors alongside. *)
val detect : ?sanitize:Sanitize.config -> Smc.strategy -> Faults.t -> Smc.outcome

(** [check_correct strategy fault] runs the same harness with no fault
    enabled (expected: no violation, and — the harnesses synchronize all
    shared state through locks and atomic RMW cells — no sanitizer race
    either). *)
val check_correct : ?sanitize:Sanitize.config -> Smc.strategy -> Faults.t -> Smc.outcome
