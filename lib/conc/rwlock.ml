(* Writer-preferring reader-writer lock: one protocol (Spec), one Smc model
   checked by exhaustive schedules, one Atomic implementation whose
   single-word CAS transitions are audited against the same Spec and whose
   concurrent histories are checked linearizable. *)

module Spec = struct
  type state = {
    readers : int;
    pending : int;
    writer : bool;
  }

  let initial = { readers = 0; pending = 0; writer = false }
  let invariant s = s.readers >= 0 && s.pending >= 0 && not (s.writer && s.readers > 0)

  type label =
    | Reader_enter
    | Reader_exit
    | Writer_declare
    | Writer_enter
    | Writer_exit

  let label_name = function
    | Reader_enter -> "reader_enter"
    | Reader_exit -> "reader_exit"
    | Writer_declare -> "writer_declare"
    | Writer_enter -> "writer_enter"
    | Writer_exit -> "writer_exit"

  let labels = [ Reader_enter; Reader_exit; Writer_declare; Writer_enter; Writer_exit ]

  let step s = function
    | Reader_enter ->
      if s.writer || s.pending > 0 then None else Some { s with readers = s.readers + 1 }
    | Reader_exit -> if s.readers = 0 then None else Some { s with readers = s.readers - 1 }
    | Writer_declare -> Some { s with pending = s.pending + 1 }
    | Writer_enter ->
      if s.writer || s.readers > 0 || s.pending = 0 then None
      else Some { readers = 0; pending = s.pending - 1; writer = true }
    | Writer_exit -> if s.writer then Some { s with writer = false } else None

  let classify ~old_s ~new_s = List.find_opt (fun l -> step old_s l = Some new_s) labels
end

(* {2 The real lock}

   The whole state lives in one word so every transition is a single
   compare-and-set: readers in bits 0-19, pending writers in bits 20-39,
   the writer flag in bit 40. Blocking is a bounded cpu_relax spin that
   falls back to a microsleep: acquisitions here protect short critical
   sections (memtable staging, cache probes), so the lock usually frees
   within the spin phase — but when domains outnumber cores the holder
   may need this very core, and cpu_relax alone would burn the blocked
   acquirer's whole scheduler quantum. The sleep yields the timeslice. *)

let reader_one = 1
let pending_one = 1 lsl 20
let writer_bit = 1 lsl 40
let count_mask = 0xF_FFFF
let readers_of s = s land count_mask
let pending_of s = (s lsr 20) land count_mask
let writer_of s = s land writer_bit <> 0

let unpack s = { Spec.readers = readers_of s; pending = pending_of s; writer = writer_of s }

type t = {
  cell : int Atomic.t;
  trace_old : int array;
  trace_new : int array;
  trace_next : int Atomic.t;  (** transitions taken; slot = claim via fetch-and-add *)
}

let create ?(trace_capacity = 0) () =
  let cap = max 0 trace_capacity in
  {
    cell = Atomic.make 0;
    trace_old = Array.make cap 0;
    trace_new = Array.make cap 0;
    trace_next = Atomic.make 0;
  }

let record t ~old_s ~new_s =
  let i = Atomic.fetch_and_add t.trace_next 1 in
  if i < Array.length t.trace_old then begin
    t.trace_old.(i) <- old_s;
    t.trace_new.(i) <- new_s
  end

let state t = unpack (Atomic.get t.cell)

(* Spin briefly, then give up the timeslice. *)
let backoff spins = if spins < 512 then Domain.cpu_relax () else Unix.sleepf 1e-6

let acquire_read t =
  let rec go spins =
    let s = Atomic.get t.cell in
    if writer_of s || pending_of s > 0 then begin
      (* Writer preference: a pending writer bars new readers. *)
      backoff spins;
      go (spins + 1)
    end
    else if Atomic.compare_and_set t.cell s (s + reader_one) then
      record t ~old_s:s ~new_s:(s + reader_one)
    else go spins
  in
  go 0

let rec release_read t =
  let s = Atomic.get t.cell in
  if readers_of s = 0 then invalid_arg "Rwlock.release_read: no reader holds the lock";
  if Atomic.compare_and_set t.cell s (s - reader_one) then
    record t ~old_s:s ~new_s:(s - reader_one)
  else release_read t

let rec declare t =
  let s = Atomic.get t.cell in
  if Atomic.compare_and_set t.cell s (s + pending_one) then
    record t ~old_s:s ~new_s:(s + pending_one)
  else declare t

let enter t =
  let rec go spins =
    let s = Atomic.get t.cell in
    if writer_of s || readers_of s > 0 then begin
      backoff spins;
      go (spins + 1)
    end
    else begin
      let s' = s - pending_one + writer_bit in
      if Atomic.compare_and_set t.cell s s' then record t ~old_s:s ~new_s:s' else go spins
    end
  in
  go 0

let acquire_write t =
  declare t;
  enter t

let rec release_write t =
  let s = Atomic.get t.cell in
  if not (writer_of s) then invalid_arg "Rwlock.release_write: no writer holds the lock";
  if Atomic.compare_and_set t.cell s (s - writer_bit) then
    record t ~old_s:s ~new_s:(s - writer_bit)
  else release_write t

let with_read t f =
  acquire_read t;
  Fun.protect ~finally:(fun () -> release_read t) f

let with_write t f =
  acquire_write t;
  Fun.protect ~finally:(fun () -> release_write t) f

module Trace = struct
  type violation = {
    index : int;
    old_s : Spec.state;
    new_s : Spec.state;
  }

  let pp_state fmt (s : Spec.state) =
    Format.fprintf fmt "{readers=%d pending=%d writer=%b}" s.readers s.pending s.writer

  let pp_violation fmt v =
    Format.fprintf fmt "transition %d: %a -> %a matches no Spec label" v.index pp_state v.old_s
      pp_state v.new_s

  let transitions t = Atomic.get t.trace_next

  let validate t =
    let checked = min (Atomic.get t.trace_next) (Array.length t.trace_old) in
    let violations = ref [] in
    for i = checked - 1 downto 0 do
      let old_s = unpack t.trace_old.(i) and new_s = unpack t.trace_new.(i) in
      let legal =
        Spec.invariant old_s && Spec.invariant new_s
        && Spec.classify ~old_s ~new_s <> None
      in
      if not legal then violations := { index = i; old_s; new_s } :: !violations
    done;
    (checked, !violations)
end

(* {2 The Smc model} *)

module Model = struct
  type t = {
    m : Smc.Mutex.t;
    readers : int Smc.Cell.t;
    pending : int Smc.Cell.t;
  }

  let create ?name () =
    { m = Smc.Mutex.create ?name (); readers = Smc.Cell.make 0; pending = Smc.Cell.make 0 }

  (* Reader admission: wait out pending writers (preference), then hold the
     mutex just long enough to bump the reader count. The reader's critical
     section runs without the mutex; writers are excluded by the count. *)
  let acquire_read t =
    Smc.wait_until (fun () -> Smc.Cell.peek t.pending = 0);
    Smc.Mutex.lock t.m;
    ignore (Smc.Cell.update t.readers (fun r -> r + 1));
    Smc.Mutex.unlock t.m

  let release_read t = ignore (Smc.Cell.update t.readers (fun r -> r - 1))
  let declare_write t = ignore (Smc.Cell.update t.pending (fun p -> p + 1))

  (* The writer holds the mutex for its whole critical section: no reader
     can be admitted, no other writer can enter, and writer-held nesting
     shows up as edges in the lock-order graph. *)
  let complete_write t =
    Smc.Mutex.lock t.m;
    ignore (Smc.Cell.update t.pending (fun p -> p - 1));
    Smc.wait_until (fun () -> Smc.Cell.peek t.readers = 0)

  let acquire_write t =
    declare_write t;
    complete_write t

  let release_write t = Smc.Mutex.unlock t.m

  let with_read t f =
    acquire_read t;
    Fun.protect ~finally:(fun () -> release_read t) f

  let with_write t f =
    acquire_write t;
    Fun.protect ~finally:(fun () -> release_write t) f
end

(* {2 Validation entry points} *)

module Check = struct
  type model_report = {
    name : string;
    property : string;
    outcome : Smc.outcome;
    require_exhaustive : bool;
  }

  let pp_model_report fmt r =
    Format.fprintf fmt "%-12s %s: %a" r.name r.property Smc.pp_outcome r.outcome

  (* Mutual exclusion, writer/writer: two locked increments through plain
     accesses. Overlap loses an update (caught logically) and races the
     plain cells (caught by FastTrack). *)
  let h_excl_writers () =
    let l = Model.create () in
    let data = Smc.Cell.make 0 in
    let finished = Smc.Cell.make 0 in
    let writer () =
      Model.with_write l (fun () ->
          let v = Smc.Cell.get data in
          Smc.Cell.set data (v + 1));
      ignore (Smc.Cell.update finished (fun n -> n + 1))
    in
    Smc.spawn writer;
    Smc.spawn writer;
    Smc.wait_until (fun () -> Smc.Cell.peek finished = 2);
    if Smc.Cell.peek data <> 2 then failwith "lost update: writers overlapped"

  (* Mutual exclusion, writer/reader: the reader must never observe the
     writer's half-done state. *)
  let h_excl_writer_reader () =
    let l = Model.create () in
    let data = Smc.Cell.make 0 in
    let writer () =
      Model.with_write l (fun () ->
          Smc.Cell.set data 1;
          Smc.Cell.set data 2)
    in
    let reader () =
      let v = Model.with_read l (fun () -> Smc.Cell.get data) in
      if v = 1 then failwith "reader observed a half-done write"
    in
    Smc.spawn writer;
    Smc.spawn reader

  (* Writer preference: a reader whose acquisition starts after the writer
     declared intent must observe the writer's effect — on every schedule.
     [declared] is set after [declare_write], so once the reader sees it
     the pending count (or the held mutex) already bars the reader. *)
  let h_writer_preference () =
    let l = Model.create () in
    let x = Smc.Cell.make 0 in
    let declared = Smc.Cell.make false in
    let writer () =
      Model.declare_write l;
      Smc.Cell.set declared true;
      Model.complete_write l;
      Smc.Cell.set x 1;
      Model.release_write l
    in
    let reader () =
      Smc.wait_until (fun () -> Smc.Cell.peek declared);
      Model.acquire_read l;
      let v = Smc.Cell.get x in
      Model.release_read l;
      if v <> 1 then failwith "writer preference violated: reader overtook a pending writer"
    in
    Smc.spawn writer;
    Smc.spawn reader

  (* No lost wakeups: balanced acquire/release must terminate on every
     schedule; a waiter never woken surfaces as a Deadlock violation. *)
  let wakeup_body ~writers ~readers () =
    let l = Model.create () in
    let finished = Smc.Cell.make 0 in
    let total = writers + readers in
    let writer () =
      Model.acquire_write l;
      Model.release_write l;
      ignore (Smc.Cell.update finished (fun n -> n + 1))
    in
    let reader () =
      Model.acquire_read l;
      Smc.yield ();
      Model.release_read l;
      ignore (Smc.Cell.update finished (fun n -> n + 1))
    in
    for _ = 1 to writers do
      Smc.spawn writer
    done;
    for _ = 1 to readers do
      Smc.spawn reader
    done;
    Smc.wait_until (fun () -> Smc.Cell.peek finished = total)

  let model ?(budget = 1_500_000) () =
    let sanitize = Sanitize.default in
    let mk name property strategy require_exhaustive body =
      { name; property; outcome = Smc.explore ~sanitize strategy body; require_exhaustive }
    in
    let dfs = Smc.Dfs { max_schedules = budget } in
    [
      mk "excl/ww" "writers mutually exclude (no lost update)" dfs true h_excl_writers;
      mk "excl/wr" "reader never sees a half-done write" dfs true h_excl_writer_reader;
      mk "pref/wr" "pending writer bars later readers" dfs true h_writer_preference;
      mk "wakeup/wr" "1 writer + 1 reader always terminate" dfs true (wakeup_body ~writers:1 ~readers:1);
      mk "wakeup/2w2r" "2 writers + 2 readers always terminate (sampled)"
        (Smc.Pct { seed = 7; schedules = 4_000; depth = 3 })
        false
        (wakeup_body ~writers:2 ~readers:2);
    ]

  let model_ok reports =
    (* The wakeup harnesses have no plain accesses (pure lock traffic), so
       access coverage is asserted over the suite, not per harness. *)
    List.exists (fun r -> r.outcome.Smc.sanitize_accesses > 0) reports
    && List.for_all
         (fun r ->
           r.outcome.Smc.violation = None
           && r.outcome.Smc.lock_cycles = []
           && ((not r.require_exhaustive) || r.outcome.Smc.exhausted))
         reports

  type impl_report = {
    transitions : int;
    trace_checked : int;
    trace_violations : Trace.violation list;
    history_len : int;
    linearizable : bool;
  }

  let pp_impl_report fmt r =
    Format.fprintf fmt
      "%d transitions (%d audited, %d illegal); %d-event register history %s" r.transitions
      r.trace_checked
      (List.length r.trace_violations)
      r.history_len
      (if r.linearizable then "linearizable" else "NOT LINEARIZABLE");
    List.iter (fun v -> Format.fprintf fmt "@.  %a" Trace.pp_violation v) r.trace_violations

  type reg_op = W of int | R
  type reg_res = Wrote | Read_back of int

  (* Real domains hammer one lock-protected register. The register is a
     plain ref on purpose: the lock is the only thing making this
     well-defined, which is exactly the claim under test. *)
  let impl ?(domains = 3) ?(ops_per_domain = 4) ?(seed = 0) () =
    let domains = max 1 domains in
    let lock = create ~trace_capacity:((8 * domains * ops_per_domain) + 64) () in
    let reg = ref 0 in
    let clock = Atomic.make 0 in
    let run d =
      let rng = Util.Rng.of_int (seed + (31 * d)) in
      List.init ops_per_domain (fun i ->
          if Util.Rng.bool rng then begin
            let v = ((d + 1) * 1000) + i in
            let invoked = Atomic.fetch_and_add clock 1 in
            with_write lock (fun () -> reg := v);
            let returned = Atomic.fetch_and_add clock 1 in
            { Linearize.thread = d; op = W v; result = Wrote; invoked; returned }
          end
          else begin
            let invoked = Atomic.fetch_and_add clock 1 in
            let v = with_read lock (fun () -> !reg) in
            let returned = Atomic.fetch_and_add clock 1 in
            { Linearize.thread = d; op = R; result = Read_back v; invoked; returned }
          end)
    in
    let helpers =
      Array.init (domains - 1) (fun d -> Domain.spawn (fun () -> run (d + 1)))
    in
    let events = Array.fold_left (fun acc dom -> acc @ Domain.join dom) (run 0) helpers in
    let history =
      List.sort (fun a b -> compare a.Linearize.invoked b.Linearize.invoked) events
    in
    let apply s = function W v -> (v, Wrote) | R -> (s, Read_back s) in
    let linearizable = Linearize.check ~init:0 ~apply ~equal_res:( = ) history in
    let trace_checked, trace_violations = Trace.validate lock in
    {
      transitions = Trace.transitions lock;
      trace_checked;
      trace_violations;
      history_len = List.length history;
      linearizable;
    }

  let impl_ok r =
    r.trace_violations = [] && r.linearizable && r.transitions > 0 && r.trace_checked > 0
end
