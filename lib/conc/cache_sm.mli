(** SimpleCacheSM — the block-cache entry lifecycle as an explicit state
    machine, in the style of the splinter-runtime cache state machines:
    the legal per-entry transitions are written down once and every
    implementation transition is audited against them.

    Two users:

    - the real {!Cache} drives each page entry through the
      [Empty]/[Reading]/[Clean] subset (it is a read cache with
      invalidate-on-write, so [Dirty]/[Writeback] never occur there) and
      audits every transition via {!record};
    - the {!Conc_shared} Smc model exercises the {e full} machine,
      including the [Dirty] -> [Writeback] -> [Clean]/[Dirty] flush
      window, under exhaustive/sampled schedules with the race monitor
      attached. *)

type state =
  | Empty  (** no data for this page *)
  | Reading  (** a miss claimed the entry; the fetch runs outside the lock *)
  | Clean  (** cached data matches the backing store *)
  | Dirty  (** buffered write not yet flushed *)
  | Writeback  (** a flush claimed the entry; the write IO is in flight *)

val state_name : state -> string
val pp_state : Format.formatter -> state -> unit

(** [legal old_s new_s] — is [old_s -> new_s] an edge of the lifecycle?
    Self-loops are not legal: a transition must change state. *)
val legal : state -> state -> bool

type violation = { page : int; old_s : state; new_s : state }

val pp_violation : Format.formatter -> violation -> unit

(** Transition auditor: implementations call {!record} on every state
    change; gates read {!checked} (coverage evidence) and {!violations}.
    Not thread-safe on its own — callers record under the lock that
    already protects the entry. *)
type audit

val auditor : unit -> audit
val record : audit -> page:int -> old_s:state -> new_s:state -> unit
val checked : audit -> int
val violations : audit -> violation list
