(** Validated wrappers for racing real domains.

    The static analyzer ([lib/lint]) confines raw [Domain.*]/[Atomic.*]
    to [lib/{conc,par,smc,obs}]; workloads that need free-form racing
    workers (rather than [Par]'s deterministic range sweeps) use this
    module, so real parallelism has one auditable entry point. *)

(** [spawn_join ~domains f] — run [f 0 .. f (domains-1)] concurrently,
    [f 0] on the calling domain, and return the results in worker order
    once every domain has joined. Raises [Invalid_argument] when
    [domains < 1]. *)
val spawn_join : domains:int -> (int -> 'a) -> 'a list

(** [Domain.cpu_relax], re-exported for spin-wait loops outside the
    primitive-confinement allowlist. A scheduling hint only — it
    provides no ordering or visibility guarantees. *)
val relax : unit -> unit

(** A shared monotone event counter, for linearizability-harness
    invocation/return timestamps. *)
module Clock : sig
  type t

  val create : unit -> t

  (** Atomically increment and return the pre-increment value. *)
  val tick : t -> int

  val now : t -> int
end

(** A long-lived background domain — the maintenance-plane driver shape.

    Where {!spawn_join} races a {e fixed} set of workers to completion,
    a [Worker] runs an open-ended step loop on its own domain until the
    owner asks it to stop. [Store.Shared.Maint] drives flush/compact/
    reclaim from one of these while foreground domains keep serving
    requests.

    Domain-safety contract: [step] runs entirely on the worker domain
    and must itself be safe to race against the owner (in practice: it
    only calls lock-protected operations). The step index is owned by
    the worker; {!stop}'s join is the happens-before edge that makes the
    final count (and anything [step] wrote) visible to the caller. *)
module Worker : sig
  type t

  (** [start step] spawns a domain running [step 0; step 1; ...] (with a
      [Domain.cpu_relax] between iterations so a 1-core box still
      interleaves) until {!stop} is called. Exceptions escaping [step]
      kill the worker and re-raise at {!stop} — steps that may fail
      should catch and count, not throw. *)
  val start : (int -> unit) -> t

  (** Signal the loop and join the domain; returns the number of
      completed steps. Idempotent calls are not supported: call exactly
      once, from the owning domain. *)
  val stop : t -> int
end
