(** Validated wrappers for racing real domains.

    The static analyzer ([lib/lint]) confines raw [Domain.*]/[Atomic.*]
    to [lib/{conc,par,smc,obs}]; workloads that need free-form racing
    workers (rather than [Par]'s deterministic range sweeps) use this
    module, so real parallelism has one auditable entry point. *)

(** [spawn_join ~domains f] — run [f 0 .. f (domains-1)] concurrently,
    [f 0] on the calling domain, and return the results in worker order
    once every domain has joined. Raises [Invalid_argument] when
    [domains < 1]. *)
val spawn_join : domains:int -> (int -> 'a) -> 'a list

(** A shared monotone event counter, for linearizability-harness
    invocation/return timestamps. *)
module Clock : sig
  type t

  val create : unit -> t

  (** Atomically increment and return the pre-increment value. *)
  val tick : t -> int

  val now : t -> int
end
