(* The sharded hot path of [Store.Shared], rebuilt over Smc primitives so
   its locking discipline can be schedule-checked with the race monitor
   and lock-order analysis attached. Structures mirror the real ones:
   per-shard staging lists behind per-shard model rwlocks, a base map
   behind the stack rwlock, and a cache entry behind the cache rwlock.
   Plain [Cell.get]/[Cell.set] accesses are deliberate — protection must
   come from the locks, and the FastTrack monitor verifies that it does. *)

module M = struct
  type shard = {
    lock : Rwlock.Model.t;
    staged : (string * string option) list Smc.Cell.t;
  }

  type t = {
    shards : shard array;
    stack_lock : Rwlock.Model.t;
    maint_lock : Rwlock.Model.t;
    base : (string * string) list Smc.Cell.t;
  }

  let create ?(shards = 2) ?(base = []) () =
    {
      shards =
        Array.init shards (fun _ ->
            { lock = Rwlock.Model.create ~name:"shard" (); staged = Smc.Cell.make [] });
      stack_lock = Rwlock.Model.create ~name:"stack" ();
      maint_lock = Rwlock.Model.create ~name:"maint" ();
      base = Smc.Cell.make base;
    }

  let stage t i k v =
    Rwlock.Model.with_write t.shards.(i).lock (fun () ->
        let l = Smc.Cell.get t.shards.(i).staged in
        Smc.Cell.set t.shards.(i).staged ((k, v) :: List.remove_assoc k l))

  let put t i k v = stage t i k (Some v)
  let delete t i k = stage t i k None

  (* The shard read lock is held across both the staged probe and the
     base read: a concurrent flush cannot slide between them, which is
     what makes a get atomic at its single linearization point. *)
  let get t i k =
    Rwlock.Model.with_read t.shards.(i).lock (fun () ->
        match List.assoc_opt k (Smc.Cell.get t.shards.(i).staged) with
        | Some v -> v
        | None ->
            Rwlock.Model.with_read t.stack_lock (fun () ->
                List.assoc_opt k (Smc.Cell.get t.base)))

  (* Lock order: shard (ascending) before stack. *)
  let flush_shard t i =
    Rwlock.Model.with_write t.shards.(i).lock (fun () ->
        Rwlock.Model.with_write t.stack_lock (fun () ->
            let staged = Smc.Cell.get t.shards.(i).staged in
            let apply base (k, v) =
              let base = List.remove_assoc k base in
              match v with Some v -> (k, v) :: base | None -> base
            in
            Smc.Cell.set t.base (List.fold_left apply (Smc.Cell.get t.base) (List.rev staged));
            Smc.Cell.set t.shards.(i).staged []))

  (* The narrowed maintenance flush (Store.Shared.flush_shard with
     [flush_chunk = 1]): the maint lock serializes maintenance, the
     shard write lock covers the whole drain, but the stack lock is
     taken per applied entry — between entries, foreground reads on
     other shards slide into the base. The FastTrack monitor checks that
     those interleaved base accesses are still race-free, and the
     harness asserts that releasing the stack lock mid-drain never makes
     an acked staged value unobservable. *)
  let maint_flush_shard t i =
    Rwlock.Model.with_write t.maint_lock (fun () ->
        Rwlock.Model.with_write t.shards.(i).lock (fun () ->
            let staged = List.rev (Smc.Cell.get t.shards.(i).staged) in
            List.iter
              (fun (k, v) ->
                Rwlock.Model.with_write t.stack_lock (fun () ->
                    let base = List.remove_assoc k (Smc.Cell.get t.base) in
                    Smc.Cell.set t.base
                      (match v with Some v -> (k, v) :: base | None -> base)))
              staged;
            Smc.Cell.set t.shards.(i).staged []))

  (* Structural maintenance: maint then stack, no shard lock. The base
     rewrite preserves contents (reversal), as compaction does. *)
  let maint_compact t =
    Rwlock.Model.with_write t.maint_lock (fun () ->
        Rwlock.Model.with_write t.stack_lock (fun () ->
            Smc.Cell.set t.base (List.rev (Smc.Cell.get t.base))))

  (* A batch staging into several shards nests shard write locks in
     ascending index order — the discipline under test in h_batch_order. *)
  let put_batch_ordered t kvs =
    let is = List.sort_uniq compare (List.map (fun (i, _, _) -> i) kvs) in
    let rec go = function
      | [] ->
          List.iter
            (fun (i, k, v) ->
              let l = Smc.Cell.get t.shards.(i).staged in
              Smc.Cell.set t.shards.(i).staged ((k, Some v) :: List.remove_assoc k l))
            kvs
      | i :: rest -> Rwlock.Model.with_write t.shards.(i).lock (fun () -> go rest)
    in
    go is
end

(* The cache entry lifecycle (Cache_sm) behind the cache model rwlock.
   The miss path releases the lock during the "IO" window — the entry is
   parked in [Reading]/[Writeback] so concurrent threads can see the
   window and must handle it. *)
module C = struct
  type t = {
    lock : Rwlock.Model.t;
    state : Cache_sm.state Smc.Cell.t;
    data : int Smc.Cell.t;
  }

  let create () =
    {
      lock = Rwlock.Model.create ~name:"cache" ();
      state = Smc.Cell.make Cache_sm.Empty;
      data = Smc.Cell.make 0;
    }

  let transition t ~new_s =
    let old_s = Smc.Cell.get t.state in
    if not (Cache_sm.legal old_s new_s) then
      failwith
        (Printf.sprintf "illegal cache transition %s -> %s" (Cache_sm.state_name old_s)
           (Cache_sm.state_name new_s));
    Smc.Cell.set t.state new_s

  (* Read through the cache; on a miss, claim the entry ([Reading]),
     fetch outside the lock, publish ([Clean]). A reader that finds the
     entry mid-fetch waits for the window to close and retries. *)
  let rec read t ~fetch =
    let claimed =
      Rwlock.Model.with_write t.lock (fun () ->
          match Smc.Cell.get t.state with
          | Cache_sm.Empty ->
              transition t ~new_s:Cache_sm.Reading;
              `Claimed
          | Cache_sm.Reading -> `In_flight
          | Cache_sm.Clean | Cache_sm.Dirty | Cache_sm.Writeback -> `Hit (Smc.Cell.get t.data))
    in
    match claimed with
    | `Hit v -> v
    | `Claimed ->
        let v = fetch () in
        Rwlock.Model.with_write t.lock (fun () ->
            transition t ~new_s:Cache_sm.Clean;
            Smc.Cell.set t.data v);
        v
    | `In_flight ->
        Smc.wait_until (fun () -> Smc.Cell.peek t.state <> Cache_sm.Reading);
        read t ~fetch

  let write t v =
    Rwlock.Model.with_write t.lock (fun () ->
        (match Smc.Cell.get t.state with
        | Cache_sm.Empty -> transition t ~new_s:Cache_sm.Clean
        | Cache_sm.Clean -> transition t ~new_s:Cache_sm.Dirty
        | Cache_sm.Writeback -> transition t ~new_s:Cache_sm.Dirty
        | Cache_sm.Dirty | Cache_sm.Reading -> ());
        Smc.Cell.set t.data v)

  (* Flush: claim ([Writeback]), "write IO" outside the lock, then close
     the window — unless a concurrent write re-dirtied the entry. *)
  let flush t =
    let claimed =
      Rwlock.Model.with_write t.lock (fun () ->
          match Smc.Cell.get t.state with
          | Cache_sm.Dirty ->
              transition t ~new_s:Cache_sm.Writeback;
              true
          | _ -> false)
    in
    if claimed then (
      Smc.yield ();
      Rwlock.Model.with_write t.lock (fun () ->
          match Smc.Cell.get t.state with
          | Cache_sm.Writeback -> transition t ~new_s:Cache_sm.Clean
          | _ -> (* re-dirtied during the IO window: stays Dirty *) ()))
end

type report = { name : string; property : string; outcome : Smc.outcome }

let pp_report fmt r =
  Format.fprintf fmt "%-16s %s: %a" r.name r.property Smc.pp_outcome r.outcome

let explore budget body = Smc.explore ~sanitize:Sanitize.default (Smc.Dfs { max_schedules = budget }) body

(* Two writers on different shards plus a reader: shard isolation means
   the reader sees exactly its own shard's history. *)
let h_cross_shard budget =
  let outcome =
    explore budget (fun () ->
        let t = M.create ~shards:2 ~base:[ ("a", "old") ] () in
        Smc.spawn (fun () -> M.put t 0 "a" "new");
        Smc.spawn (fun () ->
            M.put t 1 "b" "other";
            M.delete t 1 "b");
        Smc.spawn (fun () ->
            (match M.get t 0 "a" with
            | Some "old" | Some "new" -> ()
            | v ->
                failwith
                  (Printf.sprintf "shard 0 read saw %s" (Option.value v ~default:"(absent)")));
            match M.get t 1 "b" with
            | None | Some "other" -> ()
            | Some v -> failwith (Printf.sprintf "shard 1 read saw %s" v)))
  in
  {
    name = "shared/cross";
    property = "racing writers on distinct shards stay isolated";
    outcome;
  }

(* Writer, flusher and reader on ONE shard: the get must return the old
   base value or the staged value, never a torn intermediate, and the
   staged probe + base read must be atomic against the flush. *)
let h_same_shard budget =
  let outcome =
    explore budget (fun () ->
        let t = M.create ~shards:1 ~base:[ ("k", "v1") ] () in
        Smc.spawn (fun () -> M.put t 0 "k" "v2");
        Smc.spawn (fun () -> M.flush_shard t 0);
        Smc.spawn (fun () ->
            match M.get t 0 "k" with
            | Some "v1" | Some "v2" -> ()
            | v ->
                failwith
                  (Printf.sprintf "same-shard read saw %s" (Option.value v ~default:"(absent)"))))
  in
  {
    name = "shared/flush";
    property = "get is atomic against a concurrent flush of its shard";
    outcome;
  }

(* The full SimpleCacheSM lifecycle under contention: a miss-fill with
   the IO window open, a writer dirtying the entry, a flusher driving
   Dirty -> Writeback -> Clean/Dirty. Every transition is checked
   against Cache_sm.legal inside the harness. *)
let h_cache_lifecycle budget =
  let outcome =
    explore budget (fun () ->
        let c = C.create () in
        Smc.spawn (fun () -> ignore (C.read c ~fetch:(fun () -> 7)));
        Smc.spawn (fun () ->
            C.write c 8;
            C.flush c);
        Smc.spawn (fun () ->
            match C.read c ~fetch:(fun () -> 7) with
            | 7 | 8 -> ()
            | v -> failwith (Printf.sprintf "cache read saw %d" v)))
  in
  {
    name = "shared/cache";
    property = "cache entries only take legal SimpleCacheSM transitions";
    outcome;
  }

(* A batch staging across two shards (nested write locks, ascending)
   races a flusher taking shard-then-stack: the global order
   shard 0 < shard 1 < stack must leave the lock graph acyclic. *)
let h_batch_order budget =
  let outcome =
    explore budget (fun () ->
        let t = M.create ~shards:2 () in
        Smc.spawn (fun () -> M.put_batch_ordered t [ (0, "a", "x"); (1, "b", "y") ]);
        Smc.spawn (fun () ->
            M.flush_shard t 1;
            M.flush_shard t 0))
  in
  {
    name = "shared/order";
    property = "batch staging and flush agree on the global lock order";
    outcome;
  }

(* Maintenance flusher vs foreground reads: with "a" -> "v2" staged on
   shard 0 before the race, a narrowed maintenance flush of shard 0 runs
   against a reader of shard 0 (must see the acked v2, staged or
   flushed, through every chunk boundary) and a reader of shard 1 (must
   keep seeing its own staged value — the foreground traffic a narrowed
   flush is supposed to let through). *)
let h_maint_flush budget =
  let outcome =
    explore budget (fun () ->
        let t = M.create ~shards:2 ~base:[ ("a", "v1") ] () in
        M.put t 0 "a" "v2";
        M.put t 1 "b" "w";
        Smc.spawn (fun () -> M.maint_flush_shard t 0);
        Smc.spawn (fun () ->
            match M.get t 0 "a" with
            | Some "v2" -> ()
            | v ->
                failwith
                  (Printf.sprintf "maint-racing read lost the ack: saw %s"
                     (Option.value v ~default:"(absent)")));
        Smc.spawn (fun () ->
            match M.get t 1 "b" with
            | Some "w" -> ()
            | v ->
                failwith
                  (Printf.sprintf "other-shard read saw %s"
                     (Option.value v ~default:"(absent)"))))
  in
  {
    name = "shared/maint";
    property = "acked values stay visible through a narrowed maintenance flush";
    outcome;
  }

(* The maintenance domain (maint < shard < stack via the narrowed flush,
   maint < stack via compact) races a foreground flusher (shard < stack)
   and a cross-shard batch (shard 0 < shard 1): the accumulated lock
   graph over all four acquisition paths must stay acyclic. *)
let h_maint_order budget =
  let outcome =
    explore budget (fun () ->
        let t = M.create ~shards:2 ~base:[ ("c", "z") ] () in
        Smc.spawn (fun () ->
            M.maint_flush_shard t 1;
            M.maint_compact t);
        Smc.spawn (fun () -> M.put_batch_ordered t [ (0, "a", "x"); (1, "b", "y") ]);
        Smc.spawn (fun () -> M.flush_shard t 0))
  in
  {
    name = "shared/maint-order";
    property = "maintenance and foreground agree on the order maint < shard < stack";
    outcome;
  }

let run ?(budget = 20_000) () =
  [
    h_cross_shard budget;
    h_same_shard budget;
    h_cache_lifecycle budget;
    h_batch_order budget;
    h_maint_flush budget;
    h_maint_order budget;
  ]

let ok reports =
  reports <> []
  && List.for_all
       (fun r ->
         r.outcome.Smc.violation = None
         && r.outcome.Smc.lock_cycles = []
         && r.outcome.Smc.sanitize_accesses > 0)
       reports
