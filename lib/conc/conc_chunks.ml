type t = {
  slots : int option Smc.Cell.t array;
  next : int Smc.Cell.t;
  visible : int list Smc.Cell.t;
}

let slot_count = 16

let create () =
  {
    slots = Array.init slot_count (fun _ -> Smc.Cell.make None);
    next = Smc.Cell.make 0;
    visible = Smc.Cell.make [];
  }

let publish t locator = ignore (Smc.Cell.update t.visible (fun ls -> locator :: ls))

let put t ~payload =
  let locator = Smc.Cell.update t.next (fun n -> n + 1) in
  if locator < slot_count then begin
    (* Fault #11: the locator becomes visible before the data write —
       "chunk locators could become invalid after a race between write and
       flush". *)
    if Faults.enabled Faults.F11_locator_race then begin
      Faults.record_fired Faults.F11_locator_race;
      publish t locator;
      Smc.Cell.set t.slots.(locator) (Some payload)
    end
    else begin
      Smc.Cell.set t.slots.(locator) (Some payload);
      publish t locator
    end
  end

(* Atomic snapshot: consuming the publication with an RMW gives readers
   the happens-before edge from [publish], so slot reads that follow are
   ordered after the writer's slot store. *)
let published t = Smc.Cell.update t.visible Fun.id
let read t ~locator = if locator < slot_count then Smc.Cell.get t.slots.(locator) else None
