(** Writer-preferring reader-writer lock, specified once and validated
    twice (ROADMAP item 1; modelled on the RWLock state machine of
    verified-betrfs).

    The protocol is an explicit state machine ({!Spec}): Free / Readers n /
    WriterPending / Writer, encoded as [{readers; pending; writer}] with
    five transition labels. Two artifacts claim to implement it:

    - {!Model} — an {!Smc} program (cooperative, single-domain) whose
      exhaustive schedules check mutual exclusion, writer preference and
      the absence of lost wakeups ({!Check.model}); explored under the
      FastTrack race monitor, so data protected by the lock is also shown
      race-free, which is the paper's SC-for-race-free obligation
      (section 5.2) re-established per structure;
    - the real [Atomic]-based implementation ({!t}) — every successful CAS
      packs one {!Spec} transition into a single word, an optional
      transition trace is replayed against {!Spec.classify}
      ({!Trace.validate}), and racing real domains hammering a
      lock-protected register are checked linearizable against the
      sequential register model via {!Linearize.find} ({!Check.impl}).

    Writer preference: a reader may enter only when no writer is pending,
    so a continuous stream of readers cannot starve a writer. Neither lock
    is reentrant; acquiring while holding (either mode) deadlocks.

    Blocking is a bounded spin ([Domain.cpu_relax]) that falls back to a
    microsleep, so a blocked acquirer yields its timeslice when domains
    outnumber cores instead of burning a scheduler quantum against the
    holder. Critical sections should stay short (staging drains, cache
    probes) — this is a spin lock, not a parking lock. *)

(** The protocol state machine, shared by the model checks and the
    implementation's trace validation. *)
module Spec : sig
  type state = {
    readers : int;  (** readers inside the critical section *)
    pending : int;  (** writers that declared intent and have not entered *)
    writer : bool;  (** a writer is inside the critical section *)
  }

  val initial : state

  (** [writer] excludes readers, and counts are non-negative. *)
  val invariant : state -> bool

  type label =
    | Reader_enter  (** guard: no writer inside, no writer pending *)
    | Reader_exit
    | Writer_declare
    | Writer_enter  (** guard: pending > 0, no readers, no writer *)
    | Writer_exit

  val label_name : label -> string

  (** [step s l] — the successor state, or [None] when [l]'s guard fails
      in [s]. *)
  val step : state -> label -> state option

  (** [classify ~old_s ~new_s] — the unique label stepping [old_s] to
      [new_s], if any. Used to audit observed transitions. *)
  val classify : old_s:state -> new_s:state -> label option
end

(** {2 The real lock} *)

type t

(** [create ?trace_capacity ()] — a free lock. With [trace_capacity > 0],
    the first [trace_capacity] successful state transitions are recorded
    (old and new packed state, claimed per slot with a fetch-and-add, so
    recording is safe from any number of domains) for {!Trace.validate}. *)
val create : ?trace_capacity:int -> unit -> t

(** Block until no writer is inside or pending, then enter as a reader.
    Not reentrant — acquiring while already holding this lock (either
    mode) deadlocks. *)
val acquire_read : t -> unit

(** Raises [Invalid_argument] when no reader holds the lock. *)
val release_read : t -> unit

(** Declare intent (barring new readers at once — writer preference),
    then block until the section is empty and enter as the writer. Not
    reentrant. *)
val acquire_write : t -> unit

val release_write : t -> unit

(** Current state (racy snapshot; introspection and assertions only). *)
val state : t -> Spec.state

(** [with_read t f] / [with_write t f] — acquire, run [f], release on
    any exit including exceptions. Prefer these closure forms: the
    static lock-order linter ([bin/lint.exe]) recognizes only [with_*]
    acquisitions when building its class graph, so a paired
    acquire/release is invisible to that analysis. *)
val with_read : t -> (unit -> 'a) -> 'a

val with_write : t -> (unit -> 'a) -> 'a

module Trace : sig
  type violation = {
    index : int;  (** position in the recorded trace *)
    old_s : Spec.state;
    new_s : Spec.state;
  }

  val pp_violation : Format.formatter -> violation -> unit

  (** Total transitions taken (may exceed the recorded capacity). *)
  val transitions : t -> int

  (** [validate t] — replay the recorded transitions against
      {!Spec.classify}: every edge must be a legal step and both endpoints
      must satisfy {!Spec.invariant}. Returns [(checked, violations)].
      Slots are claimed per-transition, so under real contention the trace
      is not globally ordered — each edge is validated on its own, which
      is exactly what single-word CAS transitions guarantee. *)
  val validate : t -> int * violation list
end

(** {2 The Smc model}

    The same protocol over {!Smc} primitives, for exhaustive schedule
    checking. The internal mutex is held for a writer's whole critical
    section (so writer-held nesting shows up in the lock-order graph);
    reader admission takes it only transiently. Valid only inside
    {!Smc.explore}. *)
module Model : sig
  type t

  (** [?name] labels the internal {!Smc.Mutex} for the lock-graph
      export ({!Smc.outcome.lock_names}). *)
  val create : ?name:string -> unit -> t
  val acquire_read : t -> unit
  val release_read : t -> unit

  (** [declare_write] then [complete_write] = [acquire_write], split so
      harnesses can observe the WriterPending state between the two. *)
  val declare_write : t -> unit

  val complete_write : t -> unit
  val acquire_write : t -> unit
  val release_write : t -> unit
  val with_read : t -> (unit -> 'a) -> 'a
  val with_write : t -> (unit -> 'a) -> 'a
end

(** {2 Validation entry points} *)

module Check : sig
  type model_report = {
    name : string;
    property : string;
    outcome : Smc.outcome;
    require_exhaustive : bool;
        (** two-thread harnesses must exhaust their schedule tree; the
            four-thread wakeup harness is sampled (PCT) *)
  }

  val pp_model_report : Format.formatter -> model_report -> unit

  (** Explore every model harness under [Sanitize.default]: mutual
      exclusion (writer/writer and writer/reader, exhaustive), writer
      preference (exhaustive), no lost wakeups (exhaustive two-thread +
      sampled four-thread). [budget] bounds DFS schedules per harness. *)
  val model : ?budget:int -> unit -> model_report list

  (** No violation, no lock cycles, accesses actually race-checked, and
      every [require_exhaustive] harness exhausted. *)
  val model_ok : model_report list -> bool

  type impl_report = {
    transitions : int;  (** CAS transitions the lock took *)
    trace_checked : int;
    trace_violations : Trace.violation list;
    history_len : int;
    linearizable : bool;  (** register history admits a linearization *)
  }

  val pp_impl_report : Format.formatter -> impl_report -> unit

  (** Cross-check the real lock on real domains: [domains] domains each
      perform [ops_per_domain] reads/writes of a register protected by one
      lock, timestamped with a shared atomic clock; the history must
      linearize against the sequential register model ({!Linearize.find})
      and the transition trace must validate. Keep the history small —
      linearizability checking is exponential. *)
  val impl : ?domains:int -> ?ops_per_domain:int -> ?seed:int -> unit -> impl_report

  val impl_ok : impl_report -> bool
end
