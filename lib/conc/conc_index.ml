type chunk = {
  id : int;
  entries : (int * int) list;
}

let extent_count = 3

type t = {
  extents : chunk list Smc.Cell.t array;
  metadata : int list Smc.Cell.t;  (** ids of chunks storing LSM data, newest first *)
  memtable : (int * int) list Smc.Cell.t;
  next_id : int Smc.Cell.t;
  locks : Smc.Mutex.t array;
}

let create () =
  {
    extents = Array.init extent_count (fun _ -> Smc.Cell.make []);
    metadata = Smc.Cell.make [];
    memtable = Smc.Cell.make [];
    next_id = Smc.Cell.make 0;
    locks = Array.init extent_count (fun _ -> Smc.Mutex.create ());
  }

let put t ~key ~value =
  ignore (Smc.Cell.update t.memtable (fun mem -> (key, value) :: List.remove_assoc key mem))

let find_chunk t id =
  let rec go e =
    if e = extent_count then None
    else
      match List.find_opt (fun c -> c.id = id) (Smc.Cell.get t.extents.(e)) with
      | Some c -> Some c
      | None -> go (e + 1)
  in
  go 0

let get t ~key =
  match List.assoc_opt key (Smc.Cell.get t.memtable) with
  | Some v -> Some v
  | None ->
    let rec search = function
      | [] -> None
      | id :: rest -> (
        match find_chunk t id with
        | None -> search rest  (* dangling pointer: chunk was dropped *)
        | Some c -> (
          match List.assoc_opt key c.entries with
          | Some v -> Some v
          | None -> search rest))
    in
    search (Smc.Cell.get t.metadata)

let compact t =
  let mem = Smc.Cell.get t.memtable in
  if mem <> [] then begin
    (* Like the real allocator, compaction prefers the currently open
       extent — in the paper's scenario the new chunk "was small enough to
       write into extent 0", the same extent reclamation then scanned. *)
    let extent = 0 in
    (* The fix for issue #14: hold the extent's lock from writing the new
       chunk until the metadata references it, so reclamation cannot scan
       the extent in between. The injected fault skips the lock. *)
    let locked = not (Faults.enabled Faults.F14_compaction_reclaim_race) in
    if Faults.enabled Faults.F14_compaction_reclaim_race then
      Faults.record_fired Faults.F14_compaction_reclaim_race;
    if locked then Smc.Mutex.lock t.locks.(extent);
    Fun.protect
      ~finally:(fun () -> if locked then Smc.Mutex.unlock t.locks.(extent))
      (fun () ->
        let id = Smc.Cell.update t.next_id (fun n -> n + 1) in
        let chunk = { id; entries = mem } in
        ignore (Smc.Cell.update t.extents.(extent) (fun cs -> chunk :: cs));
        (* preemption window: chunk on disk, metadata not yet updated *)
        ignore (Smc.Cell.update t.metadata (fun ids -> id :: ids));
        (* Drop exactly the flushed entries: a blind clear would destroy
           puts that raced in after the snapshot. *)
        ignore
          (Smc.Cell.update t.memtable
             (List.filter (fun entry -> not (List.mem entry mem)))))
  end

let reclaim t ~extent =
  Smc.Mutex.lock t.locks.(extent);
  Fun.protect
    ~finally:(fun () -> Smc.Mutex.unlock t.locks.(extent))
    (fun () ->
      let chunks = Smc.Cell.get t.extents.(extent) in
      let referenced = Smc.Cell.get t.metadata in
      let target = (extent + 1) mod extent_count in
      List.iter
        (fun c ->
          if List.mem c.id referenced then
            (* evacuate: relocate the chunk; pointers are by id, so the
               metadata needs no update *)
            ignore (Smc.Cell.update t.extents.(target) (fun cs -> c :: cs))
          (* else: unreferenced, dropped *))
        chunks;
      (* reset the extent — atomically, like every other mutation of the
         shared extent lists *)
      ignore (Smc.Cell.update t.extents.(extent) (fun _ -> [])))

let chunks_on t ~extent = List.length (Smc.Cell.peek t.extents.(extent))
