type t = {
  pool : Smc.Semaphore.t;
  superblock_reserve : Smc.Semaphore.t;
}

let create ~buffers =
  { pool = Smc.Semaphore.create buffers; superblock_reserve = Smc.Semaphore.create 1 }

let write_shard t =
  (* data buffer from the shared pool *)
  Smc.Semaphore.acquire t.pool;
  (* superblock update needs its own buffer. Fault #12 takes it from the
     shared pool while still holding the data buffer: with every writer
     doing the same, the pool drains and all of them wait forever. *)
  if Faults.enabled Faults.F12_buffer_pool_deadlock then begin
    Faults.record_fired Faults.F12_buffer_pool_deadlock;
    Smc.Semaphore.acquire t.pool;
    (* superblock IO *)
    Smc.Semaphore.release t.pool
  end
  else begin
    Smc.Semaphore.acquire t.superblock_reserve;
    Smc.Semaphore.release t.superblock_reserve
  end;
  Smc.Semaphore.release t.pool
