type state = Empty | Reading | Clean | Dirty | Writeback

let state_name = function
  | Empty -> "Empty"
  | Reading -> "Reading"
  | Clean -> "Clean"
  | Dirty -> "Dirty"
  | Writeback -> "Writeback"

let pp_state fmt s = Format.pp_print_string fmt (state_name s)

let legal old_s new_s =
  match (old_s, new_s) with
  | Empty, Reading (* miss: claim the entry, fetch outside the lock *)
  | Reading, Clean (* fetch completed *)
  | Reading, Empty (* fetch failed / aborted *)
  | Empty, Clean (* fill without an IO window (write-allocate) *)
  | Clean, Empty (* eviction / invalidation *)
  | Clean, Dirty (* buffered write *)
  | Dirty, Writeback (* flush claims the entry *)
  | Writeback, Clean (* flush completed *)
  | Writeback, Dirty (* written again while flushing: still dirty *) ->
      true
  | _ -> false

type violation = { page : int; old_s : state; new_s : state }

let pp_violation fmt v =
  Format.fprintf fmt "illegal cache transition on page %d: %a -> %a" v.page pp_state v.old_s
    pp_state v.new_s

type audit = { mutable checked : int; mutable violations : violation list }

let auditor () = { checked = 0; violations = [] }

let record a ~page ~old_s ~new_s =
  a.checked <- a.checked + 1;
  if not (legal old_s new_s) then a.violations <- { page; old_s; new_s } :: a.violations

let checked a = a.checked
let violations a = List.rev a.violations
