type key = Full of Chunk.Locator.t | Position of int * int

type t = {
  live : (key, string) Hashtbl.t;
  seen : (Chunk.Locator.t, unit) Hashtbl.t;
  mutable next_slot : int;
}

type key_clash = { locator : Chunk.Locator.t; existing_payload : string }

let create () = { live = Hashtbl.create 64; seen = Hashtbl.create 64; next_slot = 0 }

let key_of locator =
  (* Fault #15: the model conflates locators that differ only in epoch,
     re-using map slots across extent resets. *)
  if Faults.enabled Faults.F15_model_locator_reuse then begin
    Faults.record_fired Faults.F15_model_locator_reuse;
    Position (locator.Chunk.Locator.extent, locator.Chunk.Locator.off)
  end
  else Full locator

let track t ~locator ~payload =
  match Hashtbl.find_opt t.seen locator with
  | Some () -> (
    match Hashtbl.find_opt t.live (key_of locator) with
    | Some existing_payload -> Error { locator; existing_payload }
    | None -> Error { locator; existing_payload = "" })
  | None ->
    Hashtbl.replace t.seen locator ();
    Hashtbl.replace t.live (key_of locator) payload;
    Ok ()

let expected t ~locator = Hashtbl.find_opt t.live (key_of locator)

let mock_put t ~payload =
  let slot =
    (* Fault #15: the reference model re-uses chunk locators. *)
    if Faults.enabled Faults.F15_model_locator_reuse then begin
      Faults.record_fired Faults.F15_model_locator_reuse;
      t.next_slot mod 8
    end
    else t.next_slot
  in
  t.next_slot <- t.next_slot + 1;
  let locator = { Chunk.Locator.extent = slot / 64; epoch = 0; off = slot mod 64; frame_len = String.length payload } in
  Hashtbl.replace t.live (Full locator) payload;
  locator

let mock_is_live t ~locator = Hashtbl.mem t.live (Full locator)
let drop t ~locator = Hashtbl.remove t.live (key_of locator)
let size t = Hashtbl.length t.live
