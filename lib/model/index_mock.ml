type error = unit

let pp_error fmt () = Format.pp_print_string fmt "index mock error"
let error_is_no_space () = false
let error_class () = `Fatal

type t = {
  table : (string, Chunk.Locator.t list * Dep.t) Hashtbl.t;
  mutable resets : int;
}

let create ?obs:_ _chunks ~metadata_extents:_ = { table = Hashtbl.create 64; resets = 0 }

let put t ~key ~locators ~value_dep =
  Hashtbl.replace t.table key (locators, value_dep);
  value_dep

let delete t ~key =
  Hashtbl.remove t.table key;
  Dep.trivial

let get t ~key =
  match Hashtbl.find_opt t.table key with
  | Some (locs, _) -> Ok (Some locs)
  | None -> Ok None

let keys t =
  Ok (Util.Tbl.sorted_keys ~compare:String.compare t.table)

type cursor = { mutable remaining : (string * Chunk.Locator.t list) list }

let scan t ~lo ~hi =
  let in_range k =
    (match lo with None -> true | Some l -> String.compare l k <= 0)
    && match hi with None -> true | Some h -> String.compare k h <= 0
  in
  let remaining =
    Util.Tbl.fold_sorted
      (fun k (locs, _) acc -> if in_range k then (k, locs) :: acc else acc)
      t.table []
    |> List.rev
  in
  Ok { remaining }

let cursor_next c =
  match c.remaining with
  | [] -> None
  | pair :: rest ->
    c.remaining <- rest;
    Some pair

let configure_levels _t ~l0_trigger:_ ~level_ratio:_ = ()
let compaction_due _t = false
let level_runs _t = []
let level_invariants _t = Ok ()
let flush _t ~for_shutdown:_ = Ok Dep.trivial
let compact _t = Ok Dep.trivial
let compact_major _t = Ok Dep.trivial

let update_locator t ~key ~old_loc ~new_loc ~new_dep =
  match Hashtbl.find_opt t.table key with
  | Some (locs, dep) when List.exists (Chunk.Locator.equal old_loc) locs ->
    let locs =
      List.map (fun l -> if Chunk.Locator.equal l old_loc then new_loc else l) locs
    in
    Hashtbl.replace t.table key (locs, Dep.and_ dep new_dep);
    new_dep
  | Some _ | None -> Dep.trivial

let run_locators _t = []
let relocate_run _t ~run_id:_ ~new_loc:_ ~new_dep:_ = Ok Dep.trivial
let basis_dep _t = Dep.trivial
let note_extent_reset t = t.resets <- t.resets + 1

let recover t =
  Hashtbl.reset t.table;
  Ok ()

let memtable_size t = Hashtbl.length t.table
let run_count _t = 0
