(** Composed per-level reference model of the levelled LSM index.

    A pure value model of {!Lsm.Index}'s levelled compaction discipline:
    a memtable map on top of a list of levels, level 0 newest-first and
    possibly overlapping, every level [i >= 1] sorted by min key with
    pairwise-disjoint ranges. Flush, partial compaction (victim into the
    overlapping runs of the next level), monolithic compaction and the
    tombstone-dropping rule (only when merging into the deepest populated
    level) mirror the real index's policy, so observations — [get],
    [scan], [keys] — must agree with it after any operation sequence.

    Run {e boundaries} are not modelled bit-for-bit (the real index splits
    flushes by payload budget); only observable equality and the per-level
    invariants are contractual. The conformance properties in
    [test/test_lsm.ml] and [test/test_store.ml] drive both sides with the
    same operations and compare. *)

type t

(** [create ?l0_trigger ?level_ratio ()] — an empty model.
    [l0_trigger = 0] selects monolithic full-merge compaction;
    [level_ratio] is clamped to [>= 2]. Defaults match
    {!Lsm.Index.create}. *)
val create : ?l0_trigger:int -> ?level_ratio:int -> unit -> t

val configure_levels : t -> l0_trigger:int -> level_ratio:int -> unit

(** {2 Mutations} *)

val put : t -> key:string -> value:string -> unit
val delete : t -> key:string -> unit

(** Move the memtable (if non-empty) into a fresh level-0 run. *)
val flush : t -> unit

(** One maintenance round, mirroring {!Lsm.Index.compact}: drain trigger
    violations with partial steps; when quiescent, push the lowest
    populated level's next victim down one level; no-op at [<= 1] run. *)
val compact : t -> unit

(** {2 Observations} *)

val get : t -> key:string -> string option

(** Live [(key, value)] pairs with [lo <= key <= hi] ([None] unbounded),
    ascending. *)
val scan : t -> lo:string option -> hi:string option -> (string * string) list

val keys : t -> string list
val memtable_size : t -> int
val run_count : t -> int

(** Run count per level, trailing empty levels trimmed. *)
val level_runs : t -> int list

val compaction_due : t -> bool

(** The composed per-level discipline on the model's own state. *)
val invariants : t -> (unit, string) result
