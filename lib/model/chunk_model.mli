(** Reference model of the chunk store: an in-memory locator → payload map.

    Used by the chunk-level conformance harness: every implementation PUT
    is mirrored here under the locator the implementation returned, every
    GET is compared, and the harness checks the uniqueness invariant that
    other code relies on — a locator handed out once is never handed out
    again (locators embed the extent epoch, so evacuation + reset produces
    fresh ones).

    Fault site #15: the paper's issue where the reference model re-used
    chunk locators; the injected defect keys the model's map by
    (extent, offset) only, conflating epochs. *)

type t

type key_clash = { locator : Chunk.Locator.t; existing_payload : string }

val create : unit -> t

(** [track t ~locator ~payload] mirrors an implementation put. Returns
    [Error] when the locator was already live (uniqueness violation). *)
val track : t -> locator:Chunk.Locator.t -> payload:string -> (unit, key_clash) result

(** [expected t ~locator] — the payload the implementation must return. *)
val expected : t -> locator:Chunk.Locator.t -> string option

(** [drop t ~locator] mirrors a chunk becoming dead (delete/evacuate). *)
val drop : t -> locator:Chunk.Locator.t -> unit

val size : t -> int

(** {2 Model as mock}

    When the chunk-store model stands in for the real chunk store in unit
    tests, it must {e generate} locators itself. Other code assumes these
    are unique while live — the assumption issue #15 violated. *)

(** [mock_put t ~payload] stores [payload] under a freshly generated
    locator and returns it. Under fault #15 the generator re-uses a small
    window of slots, so a busy test eventually receives a locator that is
    still live. *)
val mock_put : t -> payload:string -> Chunk.Locator.t

(** [mock_is_live t ~locator] — the mock's liveness view. *)
val mock_is_live : t -> locator:Chunk.Locator.t -> bool
