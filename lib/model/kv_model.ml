type t = (string, string) Hashtbl.t

let create () = Hashtbl.create 64
let put t ~key ~value = Hashtbl.replace t key value
let get t ~key = Hashtbl.find_opt t key
let delete t ~key = Hashtbl.remove t key
let mem t ~key = Hashtbl.mem t key
let list t = Util.Tbl.sorted_keys ~compare:String.compare t
let size t = Hashtbl.length t

let copy = Hashtbl.copy

let equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold (fun k v acc -> acc && Hashtbl.find_opt b k = Some v) a true

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.pp_print_string f "; ")
       (fun f k -> Format.fprintf f "%S" k))
    (list t)
