(** The sequential crash-free reference model of the store (paper
    section 3.2): "for the index component ... a simple hash table".

    The conformance checker (section 4) runs every operation against both
    this model and the implementation and compares results; the model is
    the specification of the allowed sequential behaviours. *)

type t

val create : unit -> t
val put : t -> key:string -> value:string -> unit
val get : t -> key:string -> string option
val delete : t -> key:string -> unit
val mem : t -> key:string -> bool

(** Live keys, sorted. *)
val list : t -> string list

val size : t -> int
val copy : t -> t

(** Structural equality of the key-value mapping. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
