module Smap = Map.Make (String)

type entry = Value of string | Tomb

type run = { lo : string; hi : string; entries : (string * entry) list }

type t = {
  mutable memtable : entry Smap.t;
  mutable levels : run list list;
  mutable l0_trigger : int;
  mutable level_ratio : int;
}

let create ?(l0_trigger = 4) ?(level_ratio = 4) () =
  { memtable = Smap.empty; levels = [ [] ]; l0_trigger = max 0 l0_trigger;
    level_ratio = max 2 level_ratio }

let configure_levels t ~l0_trigger ~level_ratio =
  t.l0_trigger <- max 0 l0_trigger;
  t.level_ratio <- max 2 level_ratio

let put t ~key ~value = t.memtable <- Smap.add key (Value value) t.memtable
let delete t ~key = t.memtable <- Smap.add key Tomb t.memtable

let all_runs t = List.concat t.levels
let run_count t = List.length (all_runs t)
let memtable_size t = Smap.cardinal t.memtable

let level_runs t =
  let rec trim = function 0 :: rest -> trim rest | l -> List.rev l in
  trim (List.rev (List.map List.length t.levels))

let run_of_map m =
  match (Smap.min_binding_opt m, Smap.max_binding_opt m) with
  | Some (lo, _), Some (hi, _) -> Some { lo; hi; entries = Smap.bindings m }
  | _ -> None

let flush t =
  match run_of_map t.memtable with
  | None -> ()
  | Some run ->
    t.levels <- (match t.levels with l0 :: deeper -> (run :: l0) :: deeper | [] -> [ [ run ] ]);
    t.memtable <- Smap.empty

(* Newest-first merge, mirroring {!Run.merge}: fold oldest-first so newer
   bindings overwrite; tombstones dropped only on the deepest level. *)
let merge ~drop_tombstones runs =
  let m =
    List.fold_left
      (fun m run -> List.fold_left (fun m (k, e) -> Smap.add k e m) m run.entries)
      Smap.empty (List.rev runs)
  in
  if drop_tombstones then Smap.filter (fun _ e -> e <> Tomb) m else m

let nth_level t i = match List.nth_opt t.levels i with Some l -> l | None -> []

let set_level t i runs =
  let n = List.length t.levels in
  let padded = if i < n then t.levels else t.levels @ List.init (i + 1 - n) (fun _ -> []) in
  t.levels <- List.mapi (fun j l -> if j = i then runs else l) padded

let capacity t i =
  if i = 0 then max 1 t.l0_trigger
  else begin
    let rec go acc j =
      if j = 0 then acc
      else if acc > max_int / t.level_ratio then max_int
      else go (acc * t.level_ratio) (j - 1)
    in
    go 1 i
  end

let overfull t i =
  let n = List.length (nth_level t i) in
  if i = 0 then t.l0_trigger > 0 && n >= t.l0_trigger else n > capacity t i

let first_overfull t =
  let rec go i =
    if i >= List.length t.levels then None else if overfull t i then Some i else go (i + 1)
  in
  go 0

let compaction_due t = t.l0_trigger > 0 && first_overfull t <> None

let populated_levels t =
  List.mapi (fun i l -> (i, l)) t.levels
  |> List.filter_map (fun (i, l) -> if l = [] then None else Some i)

let deepest_populated t = match List.rev (populated_levels t) with d :: _ -> Some d | [] -> None
let lowest_populated t = match populated_levels t with l :: _ -> Some l | [] -> None

let compact_step t ~level =
  let victim, remaining =
    if level = 0 then
      match List.rev (nth_level t 0) with
      | v :: rest_rev -> (v, List.rev rest_rev)
      | [] -> invalid_arg "Level_model.compact_step: empty level"
    else
      match nth_level t level with
      | v :: rest -> (v, rest)
      | [] -> invalid_arg "Level_model.compact_step: empty level"
  in
  let target = level + 1 in
  let overlapping, keep =
    List.partition
      (fun r -> not (String.compare r.hi victim.lo < 0 || String.compare r.lo victim.hi > 0))
      (nth_level t target)
  in
  let drop_tombstones =
    match deepest_populated t with Some d -> d <= target | None -> true
  in
  let merged = merge ~drop_tombstones (victim :: overlapping) in
  set_level t level remaining;
  (match run_of_map merged with
  | None -> set_level t target keep
  | Some run ->
    set_level t target
      (List.sort (fun a b -> String.compare a.lo b.lo) (run :: keep)))

let compact t =
  if run_count t <= 1 then ()
  else if t.l0_trigger = 0 then begin
    (* Monolithic: everything into one generation, tombstones dropped. *)
    let merged = merge ~drop_tombstones:true (all_runs t) in
    t.levels <- [ (match run_of_map merged with None -> [] | Some r -> [ r ]) ]
  end
  else begin
    let rec drain steps =
      if steps >= 64 then ()
      else
        match first_overfull t with
        | Some level ->
          compact_step t ~level;
          drain (steps + 1)
        | None -> ()
    in
    if compaction_due t then drain 0
    else
      match (lowest_populated t, deepest_populated t) with
      | Some lo, Some hi when lo < hi -> compact_step t ~level:lo
      | Some 0, Some 0 -> compact_step t ~level:0
      | _ -> ()
  end

(* {2 Observations} *)

let find_run run key =
  if String.compare key run.lo < 0 || String.compare run.hi key < 0 then None
  else List.assoc_opt key run.entries

let get t ~key =
  let entry =
    match Smap.find_opt key t.memtable with
    | Some e -> Some e
    | None ->
      let rec search = function
        | [] -> None
        | r :: rest -> ( match find_run r key with Some e -> Some e | None -> search rest)
      in
      search (all_runs t)
  in
  match entry with Some (Value v) -> Some v | Some Tomb | None -> None

let scan t ~lo ~hi =
  let in_range k =
    (match lo with None -> true | Some l -> String.compare l k <= 0)
    && match hi with None -> true | Some h -> String.compare k h <= 0
  in
  (* Compose: fold the levels oldest-first (deepest up), then the memtable
     newest, so newer bindings overwrite — the per-level composition. *)
  let m =
    List.fold_left
      (fun m run ->
        List.fold_left
          (fun m (k, e) -> if in_range k then Smap.add k e m else m)
          m run.entries)
      Smap.empty
      (List.rev (all_runs t))
  in
  let m = Smap.fold (fun k e m -> if in_range k then Smap.add k e m else m) t.memtable m in
  Smap.fold (fun k e acc -> match e with Value v -> (k, v) :: acc | Tomb -> acc) m []
  |> List.rev

let keys t = List.map fst (scan t ~lo:None ~hi:None)

let invariants t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec check_runs = function
    | [] -> Ok ()
    | r :: rest ->
      if String.compare r.lo r.hi > 0 then err "run with lo > hi"
      else if r.entries = [] then err "empty run"
      else check_runs rest
  in
  let rec check_level i = function
    | [] -> Ok ()
    | runs :: deeper -> (
      match check_runs runs with
      | Error _ as e -> e
      | Ok () ->
        let rec disjoint = function
          | a :: (b :: _ as rest) ->
            if String.compare a.hi b.lo >= 0 then err "level %d: overlapping runs" i
            else disjoint rest
          | _ -> Ok ()
        in
        (match if i = 0 then Ok () else disjoint runs with
        | Error _ as e -> e
        | Ok () -> check_level (i + 1) deeper))
  in
  check_level 0 t.levels
