type version = {
  value : string option;
  dep : Dep.t;
}

type record = {
  mutable baseline : string option;  (** survivor adopted at last reconcile *)
  mutable history : version list;  (** staged since, newest first *)
  mutable needs_reconcile : bool;  (** crashed and not yet observed *)
}

type t = (string, record) Hashtbl.t

type violation = {
  key : string;
  observed : string option;
  allowed : string option list;
}

let pp_value fmt = function
  | None -> Format.pp_print_string fmt "<absent>"
  | Some v -> Format.fprintf fmt "%S" v

let pp_violation fmt v =
  Format.fprintf fmt "persistence violation on %S: observed %a, allowed {%a}" v.key pp_value
    v.observed
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp_value)
    v.allowed

let create () = Hashtbl.create 64

let record t key =
  match Hashtbl.find_opt t key with
  | Some r -> r
  | None ->
    let r = { baseline = None; history = []; needs_reconcile = false } in
    Hashtbl.add t key r;
    r

let stage t ~key ~value ~dep =
  let r = record t key in
  r.history <- { value; dep } :: r.history

let put t ~key ~value ~dep = stage t ~key ~value:(Some value) ~dep
let delete t ~key ~dep = stage t ~key ~value:None ~dep

let current r =
  match r.history with
  | v :: _ -> v.value
  | [] -> r.baseline

let get t ~key =
  match Hashtbl.find_opt t key with
  | None -> None
  | Some r -> current r

let sorted_keys t = Util.Tbl.sorted_keys ~compare:String.compare t

let list t =
  List.filter (fun key -> Option.is_some (get t ~key)) (sorted_keys t)

let tracked_keys t = sorted_keys t

(* Versions at least as new as the newest persistent one are allowed
   survivors; if nothing persisted, the baseline is allowed too. *)
let allowed_of_record_under pred r =
  let rec go acc = function
    | [] -> List.rev (r.baseline :: acc)
    | v :: rest ->
      if Dep.persistent_under pred v.dep then List.rev (v.value :: acc)
      else go (v.value :: acc) rest
  in
  go [] r.history

let allowed_of_record r = allowed_of_record_under (fun _ -> false) r

let allowed_after_crash t ~key =
  match Hashtbl.find_opt t key with
  | None -> [ None ]
  | Some r -> allowed_of_record r

let allowed_after_crash_under ~pred t ~key =
  match Hashtbl.find_opt t key with
  | None -> [ None ]
  | Some r -> allowed_of_record_under pred r

let reconcile t ~key ~observed =
  let r = record t key in
  let allowed = allowed_of_record r in
  if List.mem observed allowed then begin
    (* Fault #9: the reference model is not updated correctly after a
       crash — it keeps its own newest staged value rather than adopting
       the observed survivor. *)
    if Faults.enabled Faults.F9_model_crash_reconcile then begin
      Faults.record_fired Faults.F9_model_crash_reconcile;
      r.baseline <- current r
    end
    else r.baseline <- observed;
    r.history <- [];
    r.needs_reconcile <- false;
    Ok ()
  end
  else Error { key; observed; allowed }

let mark_crashed t = Util.Tbl.iter_sorted (fun _ r -> r.needs_reconcile <- true) t

let needs_reconcile t ~key =
  match Hashtbl.find_opt t key with Some r -> r.needs_reconcile | None -> false

let resolve_read t ~key ~observed =
  let r = record t key in
  if observed = current r then begin
    r.needs_reconcile <- false;
    Ok ()
  end
  else reconcile t ~key ~observed

let staged_deps t =
  Util.Tbl.fold_sorted
    (fun key r acc -> List.fold_left (fun acc v -> (key, v.dep) :: acc) acc r.history)
    t []
