(** The index reference model as a mock (paper section 3.2, "Mocking").

    Implements {!Store_intf.INDEX} with a plain hash table so unit tests of
    the store's API layer can run against the model instead of the real
    LSM tree — the reuse that keeps models maintained as the code evolves.
    Volatile only: recovery empties it, so crash tests must use the real
    index. *)

include Store_intf.INDEX
