(** The crash extension of the reference model (paper section 5).

    For sequential crashing executions the plain model is too strong: soft
    updates allow recent, not-yet-persistent mutations to be lost. This
    model tracks, per key, the history of staged versions with their
    dependencies, and defines exactly which post-crash states are allowed:

    - {e persistence}: the value observed after a crash must be some staged
      version at least as new as the newest version whose dependency
      reported persistent before the crash (or the pre-history baseline if
      no version was persistent);
    - {e forward progress} is checked separately by the harness (every
      dependency persistent after a clean shutdown).

    After checking, {!reconcile} adopts the surviving state so checking can
    continue across the reboot.

    Fault site #9: the paper's issue where the {e reference model itself}
    was not updated correctly after a crash during reclamation — the
    injected defect makes reconciliation keep the newest staged value
    instead of the observed survivor. *)

type t

type version = {
  value : string option;  (** [None] = delete *)
  dep : Dep.t;
}

type violation = {
  key : string;
  observed : string option;
  allowed : string option list;  (** allowed survivors, newest first *)
}

val pp_violation : Format.formatter -> violation -> unit

val create : unit -> t

val put : t -> key:string -> value:string -> dep:Dep.t -> unit
val delete : t -> key:string -> dep:Dep.t -> unit

(** Current (newest staged) value — the crash-free semantics. *)
val get : t -> key:string -> string option

(** Live keys under crash-free semantics, sorted. *)
val list : t -> string list

(** Keys that have ever been touched (staged or baseline), sorted — the
    set a post-crash check must examine. *)
val tracked_keys : t -> string list

(** [allowed_after_crash t ~key] — survivors permitted by the persistence
    property, newest first. *)
val allowed_after_crash : t -> key:string -> string option list

(** [allowed_after_crash_under ~pred t ~key] — like
    {!allowed_after_crash}, but a pending write counts as persistent when
    [pred] holds; the crash-state enumerator asks "what would be allowed if
    subset S persisted?" without mutating anything. *)
val allowed_after_crash_under :
  pred:(Dep.write -> bool) -> t -> key:string -> string option list

(** [reconcile t ~key ~observed] validates [observed] against the allowed
    survivors and adopts it as the new baseline. *)
val reconcile : t -> key:string -> observed:string option -> (unit, violation) result

(** [mark_crashed t] flags every tracked key as awaiting reconciliation.
    The harness calls it when a crash happens; keys it cannot read back
    (injected failures) stay flagged, and the next successful read resolves
    them via {!resolve_read}. *)
val mark_crashed : t -> unit

val needs_reconcile : t -> key:string -> bool

(** [resolve_read t ~key ~observed] — validate a read of a key still
    awaiting post-crash reconciliation. If the observation matches the
    newest staged value, only the flag is cleared (dependency tracking
    continues); otherwise the model reconciles to the observed survivor. *)
val resolve_read : t -> key:string -> observed:string option -> (unit, violation) result

(** All dependencies staged since the last reconciliation, newest first
    (for the forward-progress check). *)
val staged_deps : t -> (string * Dep.t) list
