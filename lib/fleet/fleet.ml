module S = Store.Default

type config = {
  nodes : int;
  replication : int;
  store : S.config;
}

let default_config = { nodes = 6; replication = 3; store = S.default_config }

type ft_config = {
  write_quorum : int option;
  max_retries : int;
  down_after : int;
  backoff_base : int;
  backoff_max : int;
}

let default_ft =
  { write_quorum = None; max_retries = 2; down_after = 3; backoff_base = 4; backoff_max = 64 }

type health = Healthy | Suspect | Down

let health_name = function Healthy -> "healthy" | Suspect -> "suspect" | Down -> "down"
let health_code = function Healthy -> 0 | Suspect -> 1 | Down -> 2

type error =
  | Node_failed of { node : int; error : S.error }
  | No_live_replica of string
  | Quorum_not_met of { key : string; acked : int; needed : int }

let pp_error fmt = function
  | Node_failed { node; error } ->
    Format.fprintf fmt "node %d failed: %a" node S.pp_error error
  | No_live_replica key -> Format.fprintf fmt "no live replica of %S" key
  | Quorum_not_met { key; acked; needed } ->
    Format.fprintf fmt "quorum not met for %S: %d of %d replicas acknowledged" key acked
      needed

type ack = { replicas : int; lagging : int list }

type metrics = {
  m_puts : Obs.Counter.t;
  m_gets : Obs.Counter.t;
  m_scans : Obs.Counter.t;
  m_deletes : Obs.Counter.t;
  m_put_manys : Obs.Counter.t;
  m_batch_size : Obs.Histogram.t;
  m_crashes : Obs.Counter.t;
  m_destroys : Obs.Counter.t;
  m_repairs : Obs.Counter.t;
  m_repaired : Obs.Counter.t;
  m_retries : Obs.Counter.t;
  m_breaker_open : Obs.Counter.t;
  m_quorum_ack : Obs.Counter.t;
  m_read_repair : Obs.Counter.t;
  m_partial_write : Obs.Counter.t;
  m_failover : Obs.Counter.t;
  m_crash_fail : Obs.Counter.t;
}

type node_state = {
  mutable health : health;
  mutable fails : int;  (** consecutive failures since the last success *)
  mutable probe_at : int;  (** clock tick at which a Suspect node is re-probed *)
}

type t = {
  config : config;
  ft : ft_config;
  quorum : int;
  stores : S.t array;
  state : node_state array;
  health_gauges : Obs.Gauge.t array;
  mutable clock : int;  (** logical time: one tick per request-plane attempt *)
  rng : Util.Rng.t;  (** backoff jitter; seeded from the store seed, deterministic *)
  dirty : (string, string option) Hashtbl.t;
      (** under-replicated keys awaiting repair, with the authoritative
          value when one was quorum-acknowledged ([Some v]: a degraded ack,
          repair must converge on [v]; [None]: replicas may diverge, repair
          spreads the best copy it finds) *)
  trace : Tracecheck.Trace.Recorder.t option;
  obs : Obs.t;
  m : metrics;
}

let create ?obs ?trace ?(ft = default_ft) config =
  if config.nodes < config.replication then
    invalid_arg "Fleet.create: fewer nodes than the replication factor";
  if ft.max_retries < 0 then invalid_arg "Fleet.create: negative max_retries";
  if ft.down_after < 1 then invalid_arg "Fleet.create: down_after must be at least 1";
  if ft.backoff_base < 1 || ft.backoff_max < ft.backoff_base then
    invalid_arg "Fleet.create: need 1 <= backoff_base <= backoff_max";
  let quorum =
    match ft.write_quorum with
    | None -> (config.replication / 2) + 1
    | Some q ->
      if q < 1 || q > config.replication then
        invalid_arg "Fleet.create: write_quorum outside [1, replication]";
      q
  in
  (* Fleet-level counters get their own registry; each store keeps a
     private per-instance one, so two nodes' series never collide. *)
  let obs = match obs with Some o -> o | None -> Obs.create ~scope:"fleet" () in
  {
    config;
    ft;
    quorum;
    stores =
      Array.init config.nodes (fun i ->
          S.create
            { config.store with S.seed = Int64.add config.store.S.seed (Int64.of_int (i * 131)) });
    state = Array.init config.nodes (fun _ -> { health = Healthy; fails = 0; probe_at = 0 });
    health_gauges =
      Array.init config.nodes (fun i ->
          Obs.gauge ~labels:[ ("node", string_of_int i) ] obs "fleet.node_health");
    clock = 0;
    rng = Util.Rng.create (Int64.add config.store.S.seed 0xF1EE7L);
    dirty = Hashtbl.create 16;
    trace;
    obs;
    m =
      {
        m_puts = Obs.counter obs "fleet.put";
        m_gets = Obs.counter obs "fleet.get";
        m_scans = Obs.counter obs "fleet.scan";
        m_deletes = Obs.counter obs "fleet.delete";
        m_put_manys = Obs.counter obs "fleet.put_many";
        m_batch_size =
          Obs.histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64. ] obs "fleet.batch_size";
        m_crashes = Obs.counter obs "fleet.node_crash";
        m_destroys = Obs.counter obs "fleet.node_destroy";
        m_repairs = Obs.counter obs "fleet.repair";
        m_repaired = Obs.counter obs "fleet.shards_repaired";
        m_retries = Obs.counter ~coverage:true obs "fleet.retry";
        m_breaker_open = Obs.counter ~coverage:true obs "fleet.breaker_open";
        m_quorum_ack = Obs.counter ~coverage:true obs "fleet.quorum_ack";
        m_read_repair = Obs.counter ~coverage:true obs "fleet.read_repair";
        m_partial_write = Obs.counter ~coverage:true obs "fleet.partial_write";
        m_failover = Obs.counter obs "fleet.get_failover";
        m_crash_fail = Obs.counter obs "fleet.crash_recovery_failed";
      };
  }

let node_count t = Array.length t.stores
let obs t = t.obs
let node_obs t ~node = S.obs t.stores.(node)
let node_disk t ~node = S.disk t.stores.(node)
let node_store t ~node = t.stores.(node)
let write_quorum t = t.quorum
let health t ~node = t.state.(node).health
let tick t = t.clock <- t.clock + 1

(* Wire-trace hooks. Recorder calls sit strictly outside every store and
   disk operation (the trace lock is a leaf): the recorded interval
   brackets the whole fleet-level operation, retries and failover
   included. *)
let trace_invoke t op =
  match t.trace with
  | None -> -1
  | Some r -> Tracecheck.Trace.Recorder.invoke r ~src:"fleet" op

let trace_respond t id outcome =
  match t.trace with
  | None -> ()
  | Some r -> Tracecheck.Trace.Recorder.respond r ~src:"fleet" ~id outcome

let trace_mark ?node t kind =
  match t.trace with
  | None -> ()
  | Some r -> Tracecheck.Trace.Recorder.mark r ~src:"fleet" ?node kind

(* {2 Health tracking}

   Per-node failure detector driven by observed request outcomes, on the
   fleet's logical clock (one tick per attempt, so backoff is deterministic
   under a fixed seed). Healthy nodes are always routed to; Suspect nodes
   only once their exponential backoff expires (a probe); Down nodes never —
   the circuit breaker — until {!repair} or {!heal_node} re-closes it. *)

let set_health t node h =
  let st = t.state.(node) in
  if st.health <> h then begin
    st.health <- h;
    Obs.Gauge.set_int t.health_gauges.(node) (health_code h);
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"fleet" "health"
        [ ("node", string_of_int node); ("state", health_name h) ]
  end

let trip_breaker t node =
  if t.state.(node).health <> Down then begin
    Obs.Counter.incr t.m.m_breaker_open;
    set_health t node Down
  end

let available t node =
  match t.state.(node).health with
  | Healthy -> true
  | Suspect -> t.clock >= t.state.(node).probe_at
  | Down -> false

let node_available = available
let node_available t ~node = node_available t node

let note_success t node =
  let st = t.state.(node) in
  st.fails <- 0;
  st.probe_at <- 0;
  set_health t node Healthy

let note_failure t node ~permanent =
  let st = t.state.(node) in
  st.fails <- st.fails + 1;
  if permanent || st.fails >= t.ft.down_after then trip_breaker t node
  else begin
    let backoff = min (t.ft.backoff_base lsl min (st.fails - 1) 16) t.ft.backoff_max in
    let jitter = Util.Rng.int t.rng (1 + (backoff / 4)) in
    st.probe_at <- t.clock + backoff + jitter;
    set_health t node Suspect
  end

let heal_node t ~node =
  trace_mark ~node t Tracecheck.Trace.Heal;
  note_success t node

let node_probe_in t ~node =
  match t.state.(node).health with
  | Suspect -> max 0 (t.state.(node).probe_at - t.clock)
  | Healthy | Down -> 0

(* [attempt t node f] runs one store operation with bounded retry on
   [`Transient] errors and feeds the outcome into the failure detector:
   success re-closes the node, exhausted transient retries mark it Suspect,
   a [`Permanent] error trips the breaker immediately, and [`Resource] /
   [`Fatal] errors surface without a health penalty (the node is not sick,
   the request is). *)
let attempt t node f =
  let rec go retries_left =
    tick t;
    match f () with
    | Ok v ->
      note_success t node;
      Ok v
    | Error error -> (
      match S.error_class error with
      | `Transient when retries_left > 0 ->
        Obs.Counter.incr t.m.m_retries;
        if Obs.tracing t.obs then
          Obs.emit t.obs ~layer:"fleet" "retry"
            [ ("node", string_of_int node); ("left", string_of_int retries_left) ];
        go (retries_left - 1)
      | `Transient ->
        note_failure t node ~permanent:false;
        Error (Node_failed { node; error })
      | `Permanent ->
        note_failure t node ~permanent:true;
        Error (Node_failed { node; error })
      | `Resource | `Fatal -> Error (Node_failed { node; error }))
  in
  go t.ft.max_retries

(* Rendezvous (highest-random-weight) hashing: stable placement that moves
   a minimal number of shards when membership changes. *)
let placement t key =
  let score node =
    Util.Crc32.digest_string (Printf.sprintf "%s/%d" key node)
  in
  List.init (node_count t) Fun.id
  |> List.sort (fun a b -> Int32.unsigned_compare (score b) (score a))
  |> List.filteri (fun i _ -> i < t.config.replication)

let ( let* ) = Result.bind

(* [mark_dirty t key auth] records repair debt. [Some v] (the value a
   degraded quorum ack committed) always wins; [None] must not downgrade an
   existing authoritative entry. *)
let mark_dirty t key auth =
  match auth with
  | Some _ -> Hashtbl.replace t.dirty key auth
  | None -> if not (Hashtbl.mem t.dirty key) then Hashtbl.replace t.dirty key None

let dirty_auth t key = Option.join (Hashtbl.find_opt t.dirty key)
let dirty_count t = Hashtbl.length t.dirty
let dirty_keys t = Util.Tbl.sorted_keys ~compare:String.compare t.dirty

(* Durable acknowledgement: flush the index and superblock, drain the
   writeback, and then {e verify} that the operation's dependency graph
   persisted — a write the scheduler dropped after a permanent extent
   failure must not be acknowledged (it reads back as [`Permanent] to the
   failure detector), and one still pending behind a transiently failing
   medium reads back as [`Transient] so the retry path re-drives it.
   Fault #18 skips exactly this step — the ack happens, durability does
   not — which the chaos campaign must catch (its teeth check). *)
let durable_ack store deps =
  if Faults.enabled Faults.F18_quorum_ack_volatile then begin
    Faults.record_fired Faults.F18_quorum_ack_volatile;
    Ok ()
  end
  else begin
    let* fi = S.flush_index store in
    let* fs = S.flush_superblock store in
    let dep = Dep.all (fi :: fs :: deps) in
    ignore (S.pump store max_int);
    if Dep.is_persistent dep then Ok ()
    else if Dep.has_failed dep then Error (S.Io (Io_sched.Io Disk.Permanent))
    else Error (S.Io (Io_sched.Io Disk.Transient))
  end

let durable_put store ~key ~value =
  let* dep = S.put store ~key ~value in
  durable_ack store [ dep ]

let durable_delete store ~key =
  let* dep = S.delete store ~key in
  durable_ack store [ dep ]

let put t ~key ~value =
  Obs.Counter.incr t.m.m_puts;
  tick t;
  let tid = trace_invoke t (Tracecheck.Trace.Put { key; value }) in
  let res =
  let nodes = placement t key in
  let acked = ref 0 and lagging = ref [] and first_err = ref None in
  List.iter
    (fun node ->
      if not (available t node) then lagging := node :: !lagging
      else
        match attempt t node (fun () -> durable_put t.stores.(node) ~key ~value) with
        | Ok () -> incr acked
        | Error e ->
          if !first_err = None then first_err := Some e;
          lagging := node :: !lagging)
    nodes;
  let lag = List.rev !lagging in
  if !acked >= t.quorum then begin
    if lag = [] then Hashtbl.remove t.dirty key
    else begin
      (* Acknowledged below full replication: record the debt — with the
         acknowledged value as the authority repair must converge on — so
         repair needs no full scan and a stale replica can never win. *)
      Obs.Counter.incr t.m.m_quorum_ack;
      Obs.Counter.incr t.m.m_partial_write;
      mark_dirty t key (Some value);
      if Obs.tracing t.obs then
        Obs.emit t.obs ~layer:"fleet" "quorum_ack"
          [
            ("key", key);
            ("acked", string_of_int !acked);
            ("lagging", String.concat "," (List.map string_of_int lag));
          ]
    end;
    Ok { replicas = !acked; lagging = lag }
  end
  else begin
    if !acked > 0 then begin
      (* Unacknowledged partial write: the replicas already written are
         recorded, not leaked — but they carry no authority. *)
      Obs.Counter.incr t.m.m_partial_write;
      mark_dirty t key None
    end;
    match !first_err with
    | Some e -> Error e
    | None -> Error (Quorum_not_met { key; acked = !acked; needed = t.quorum })
  end
  in
  (match res with
  | Ok _ -> trace_respond t tid Tracecheck.Trace.Acked
  | Error _ -> trace_respond t tid Tracecheck.Trace.Failed);
  res

(* Group commit across the fleet: keys are grouped by placement so each
   replica node sees one [put_batch] and pays the durable-acknowledgement
   flush (index + superblock + writeback drain) once per batch, not once
   per key. Per-key quorum accounting mirrors {!put}: a key succeeds when
   [write_quorum] replicas acknowledged durably; degraded keys join the
   dirty set. *)
let put_many t ops =
  Obs.Counter.incr t.m.m_put_manys;
  tick t;
  let tid = trace_invoke t (Tracecheck.Trace.Batch (List.map (fun (k, v) -> (k, Some v)) ops)) in
  let res =
  let buckets = Array.make (node_count t) [] in
  let credit = Hashtbl.create 16 in
  List.iter
    (fun (key, value) ->
      if not (Hashtbl.mem credit key) then Hashtbl.replace credit key 0;
      List.iter
        (fun node ->
          if available t node then buckets.(node) <- (key, value) :: buckets.(node))
        (placement t key))
    ops;
  let first_err = ref None in
  let record_err e = if !first_err = None then first_err := Some e in
  for node = 0 to node_count t - 1 do
    match List.rev buckets.(node) with
    | [] -> ()
    | batch -> (
      Obs.Histogram.observe t.m.m_batch_size (float_of_int (List.length batch));
      let store = t.stores.(node) in
      match attempt t node (fun () -> S.put_batch store batch) with
      | Error e -> record_err e
      | Ok { S.results; barrier } ->
        let ok_keys = ref [] and deps = ref [ barrier ] in
        List.iter2
          (fun (key, value) result ->
            match result with
            | Ok _ -> ok_keys := key :: !ok_keys
            | Error error -> (
              match S.error_class error with
              | `Transient -> (
                (* Per-op transient failure inside an otherwise healthy
                   batch: retry the straggler on the scalar path. *)
                match
                  attempt t node (fun () ->
                      Result.map (fun dep -> deps := dep :: !deps) (S.put store ~key ~value))
                with
                | Ok () -> ok_keys := key :: !ok_keys
                | Error e -> record_err e)
              | _ -> record_err (Node_failed { node; error })))
          batch results;
        match List.sort_uniq String.compare !ok_keys with
        | [] -> ()
        | ok_keys -> (
          match attempt t node (fun () -> durable_ack store !deps) with
          | Ok () ->
            List.iter
              (fun key -> Hashtbl.replace credit key (Hashtbl.find credit key + 1))
              ok_keys
          | Error e -> record_err e))
  done;
  let last_value = Hashtbl.create 16 in
  List.iter (fun (key, value) -> Hashtbl.replace last_value key value) ops;
  let keys = List.sort_uniq String.compare (List.map fst ops) in
  let under =
    List.filter_map
      (fun key ->
        let c = Hashtbl.find credit key in
        if c >= t.quorum && c < t.config.replication then begin
          Obs.Counter.incr t.m.m_quorum_ack;
          Obs.Counter.incr t.m.m_partial_write;
          mark_dirty t key (Hashtbl.find_opt last_value key);
          None
        end
        else if c >= t.quorum then begin
          Hashtbl.remove t.dirty key;
          None
        end
        else begin
          if c > 0 then begin
            Obs.Counter.incr t.m.m_partial_write;
            mark_dirty t key None
          end;
          Some (key, c)
        end)
      keys
  in
  match under with
  | [] -> Ok ()
  | (key, acked) :: _ -> (
    match !first_err with
    | Some e -> Error e
    | None -> Error (Quorum_not_met { key; acked; needed = t.quorum }))
  in
  (* The fleet API reports one result for the whole group commit, so the
     trace does too: all acked, or all indeterminate. *)
  (match res with
  | Ok () -> trace_respond t tid (Tracecheck.Trace.Batch_done (List.map (fun _ -> true) ops))
  | Error _ -> trace_respond t tid Tracecheck.Trace.Failed);
  res

(* Failover read: walk the placement in rank order, skipping nodes the
   breaker has removed, and serve from the first replica that has the
   shard — or, for a key with a quorum-acknowledged authoritative value
   still awaiting repair, from the first replica that has {e that} value
   (a stale replica must not shadow an acknowledged write). Replicas that
   answered "not found" (or answered stale) before the hit are lagging —
   re-replicate onto them right away (read-repair); replicas that were
   skipped or failed join the dirty set for the background repair. *)
let get t ~key =
  Obs.Counter.incr t.m.m_gets;
  tick t;
  let tid = trace_invoke t (Tracecheck.Trace.Get { key }) in
  let res =
  let nodes = placement t key in
  let auth = dirty_auth t key in
  let serves = function
    | None -> false
    | Some v -> ( match auth with None -> true | Some a -> String.equal a v)
  in
  let read_repair v lagging =
    List.iter
      (fun behind ->
        match attempt t behind (fun () -> durable_put t.stores.(behind) ~key ~value:v) with
        | Ok () ->
          Obs.Counter.incr t.m.m_read_repair;
          if Obs.tracing t.obs then
            Obs.emit t.obs ~layer:"fleet" "read_repair"
              [ ("key", key); ("node", string_of_int behind) ]
        | Error _ -> mark_dirty t key None)
      (List.rev lagging)
  in
  let rec go idx skipped lagging = function
    | [] ->
      if skipped > 0 || (auth <> None && lagging <> []) then Error (No_live_replica key)
      else Ok None
    | node :: rest ->
      if not (available t node) then go (idx + 1) (skipped + 1) lagging rest
      else (
        match attempt t node (fun () -> S.get t.stores.(node) ~key) with
        | Ok v when serves v ->
          let v = Option.get v in
          if idx > 0 then Obs.Counter.incr t.m.m_failover;
          if skipped > 0 then mark_dirty t key None;
          read_repair v lagging;
          Ok (Some v)
        | Ok _ -> go (idx + 1) skipped (node :: lagging) rest
        | Error _ -> go (idx + 1) (skipped + 1) lagging rest)
  in
  go 0 0 [] nodes
  in
  (match res with
  | Ok v -> trace_respond t tid (Tracecheck.Trace.Got v)
  | Error _ -> trace_respond t tid Tracecheck.Trace.Unavailable);
  res

(* Fleet-wide range scan. Enumeration and resolution are split on purpose:
   the candidate key set is the union of every available node's local scan
   plus the in-range dirty keys (a key whose only durable copy sits on a
   lagging replica still shows up), but each candidate's value comes from
   the failover {!get} — the one place that knows about dirty-set
   authority, stale replicas and read-repair. A key no replica can serve
   fails the whole scan rather than silently vanish from the page. *)
let scan t ?lo ?hi () =
  Obs.Counter.incr t.m.m_scans;
  tick t;
  (* The per-candidate resolution below goes through {!get}, so a traced
     scan also records its constituent point reads — each is a genuine
     request-plane read with a client-visible answer. *)
  let tid = trace_invoke t (Tracecheck.Trace.Scan { lo; hi }) in
  let res =
  let in_range key =
    (match lo with None -> true | Some l -> String.compare l key <= 0)
    && match hi with None -> true | Some h -> String.compare key h <= 0
  in
  let module Sset = Set.Make (String) in
  let drain store =
    let* cursor = S.scan store ?lo ?hi () in
    let rec go acc =
      match S.scan_next cursor with
      | Ok None -> Ok acc
      | Ok (Some (key, _)) -> go (Sset.add key acc)
      | Error e -> Error e
    in
    go Sset.empty
  in
  let rec candidates node acc =
    if node = node_count t then Ok acc
    else if not (available t node) then candidates (node + 1) acc
    else
      match attempt t node (fun () -> drain t.stores.(node)) with
      | Ok keys -> candidates (node + 1) (Sset.union keys acc)
      | Error e -> Error e
  in
  let* keys = candidates 0 Sset.empty in
  let keys =
    List.fold_left
      (fun acc key -> if in_range key then Sset.add key acc else acc)
      keys (dirty_keys t)
  in
  Sset.fold
    (fun key acc ->
      let* acc = acc in
      let* v = get t ~key in
      match v with None -> Ok acc | Some v -> Ok ((key, v) :: acc))
    keys (Ok [])
  |> Result.map List.rev
  in
  (match res with
  | Ok items -> trace_respond t tid (Tracecheck.Trace.Scanned { items; complete = true })
  | Error _ -> trace_respond t tid Tracecheck.Trace.Unavailable);
  res

(* Deletes need the same durable acknowledgement as puts, on {e every}
   replica: without version history, a tombstone missing from one replica
   would let {!repair} resurrect the shard from it. So a delete fails fast
   as soon as any placement is unavailable rather than leave that trap. *)
let delete t ~key =
  Obs.Counter.incr t.m.m_deletes;
  tick t;
  let tid = trace_invoke t (Tracecheck.Trace.Delete { key }) in
  let res =
    let nodes = placement t key in
    if List.exists (fun node -> not (available t node)) nodes then
      Error (Quorum_not_met { key; acked = 0; needed = t.config.replication })
    else
      let* () =
        List.fold_left
          (fun acc node ->
            let* () = acc in
            attempt t node (fun () -> durable_delete t.stores.(node) ~key))
          (Ok ()) nodes
      in
      Hashtbl.remove t.dirty key;
      Ok ()
  in
  (match res with
  | Ok () -> trace_respond t tid Tracecheck.Trace.Acked
  | Error _ -> trace_respond t tid Tracecheck.Trace.Failed);
  res

let crash_node t ~rng ~node =
  Obs.Counter.incr t.m.m_crashes;
  tick t;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"fleet" "node_crash" [ ("node", string_of_int node) ];
  trace_mark ~node t Tracecheck.Trace.Crash;
  let store = t.stores.(node) in
  (* Recovery itself must not trip injected faults: a power-cycled node
     reads back what the disk durably has, it does not re-roll the fault
     dice that were armed for the workload. *)
  let result =
    Disk.with_faults_suspended (S.disk store) (fun () ->
        S.dirty_reboot store ~rng
          {
            S.flush_index_first = false;
            flush_superblock_first = false;
            persist_probability = 0.5;
            split_pages = true;
          })
  in
  match result with
  | Ok () -> trace_mark ~node t Tracecheck.Trace.Restart
  | Error _ ->
    (* A node that cannot recover is out of the rotation until repaired. *)
    Obs.Counter.incr t.m.m_crash_fail;
    trip_breaker t node

let destroy_node t ~node =
  Obs.Counter.incr t.m.m_destroys;
  tick t;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"fleet" "node_destroy" [ ("node", string_of_int node) ];
  trace_mark ~node t Tracecheck.Trace.Destroy;
  t.stores.(node) <-
    S.create
      {
        t.config.store with
        S.seed = Int64.add t.config.store.S.seed (Int64.of_int ((node * 131) + 7_777));
      };
  (* The replacement hardware is fresh: forget the old node's sins. *)
  note_success t node

(* Faults-suspended direct read of one replica — introspection for the
   chaos checker, never part of the request plane. *)
let peek t ~node ~key =
  let store = t.stores.(node) in
  Disk.with_faults_suspended (S.disk store) (fun () -> S.get store ~key)

type repair_report = {
  shards_scanned : int;
  shards_repaired : int;
  shards_failed : int;
  bytes_moved : int;
}

(* Repair is the breaker's heal path: unlike the request plane it attempts
   every placement regardless of health, so a recovered node's first
   successful copy re-closes its breaker. *)
let repair t =
  Obs.Counter.incr t.m.m_repairs;
  tick t;
  trace_mark t Tracecheck.Trace.Repair_start;
  (* The control plane's view: the union of every reachable node's listing
     plus the dirty set (which names keys a down node may be hiding). *)
  let listed =
    Array.fold_left
      (fun acc store ->
        match S.list store with Ok keys -> List.rev_append keys acc | Error _ -> acc)
      [] t.stores
  in
  let keys = List.sort_uniq String.compare (List.rev_append (dirty_keys t) listed) in
  (* Ground truth per node: a scratch store recovered from a deep copy of
     the node's durable image, built lazily once per pass. A read on the
     live store can answer from volatile staging whose backing write was
     already dropped (a quarantined extent clears its queue), and
     crediting such a ghost copy would drop the dirty-set authority and
     let the next reboot resurrect a stale value over an acknowledged
     one. The durable view cannot lie; it can only under-credit (writes
     made durable later in this same pass), which merely costs a
     redundant re-replication. *)
  let durable_views = Array.make (Array.length t.stores) None in
  let durable_view node =
    match durable_views.(node) with
    | Some view -> view
    | None ->
      let store = t.stores.(node) in
      let scratch = S.of_disk (S.config store) (Disk.copy (S.disk store)) in
      let view = match S.recover scratch with Ok () -> Some scratch | Error _ -> None in
      durable_views.(node) <- Some view;
      view
  in
  let durably_holds node ~key ~value =
    match durable_view node with
    | None -> false
    | Some scratch -> (
      match S.get scratch ~key with Ok (Some v) -> String.equal v value | _ -> false)
  in
  let report = ref { shards_scanned = 0; shards_repaired = 0; shards_failed = 0; bytes_moved = 0 } in
  List.iter
    (fun key ->
      report := { !report with shards_scanned = !report.shards_scanned + 1 };
      let nodes = placement t key in
      (* The copy to converge on: the quorum-acknowledged authority when
         the dirty set holds one, else the best live copy (placement
         order) among the replicas. *)
      let copy =
        match dirty_auth t key with
        | Some v -> Some v
        | None ->
          List.find_map
            (fun node ->
              match S.get t.stores.(node) ~key with Ok (Some v) -> Some v | _ -> None)
            nodes
      in
      match copy with
      | None ->
        (* Unreadable everywhere: nothing to repair from (a fully deleted
           or never-acknowledged key) — drop the debt. *)
        Hashtbl.remove t.dirty key
      | Some value ->
        let fully_replicated =
          List.fold_left
            (fun all_ok node ->
              match attempt t node (fun () -> S.get t.stores.(node) ~key) with
              | Ok (Some v) when String.equal v value && durably_holds node ~key ~value ->
                all_ok
              | Ok _ | Error _ -> (
                match
                  attempt t node (fun () -> durable_put t.stores.(node) ~key ~value)
                with
                | Ok () ->
                  Obs.Counter.incr t.m.m_repaired;
                  report :=
                    {
                      !report with
                      shards_repaired = !report.shards_repaired + 1;
                      bytes_moved = !report.bytes_moved + String.length value;
                    };
                  all_ok
                | Error _ ->
                  report := { !report with shards_failed = !report.shards_failed + 1 };
                  false))
            true nodes
        in
        if fully_replicated then Hashtbl.remove t.dirty key
        else mark_dirty t key (Some value))
    keys;
  trace_mark t Tracecheck.Trace.Repair_done;
  Ok !report

let replica_count t ~key =
  List.fold_left
    (fun n node -> match S.get t.stores.(node) ~key with Ok (Some _) -> n + 1 | _ -> n)
    0 (placement t key)
