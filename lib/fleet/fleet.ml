module S = Store.Default

type config = {
  nodes : int;
  replication : int;
  store : S.config;
}

let default_config = { nodes = 6; replication = 3; store = S.default_config }

type error =
  | Node_failed of { node : int; error : S.error }
  | No_live_replica of string

let pp_error fmt = function
  | Node_failed { node; error } ->
    Format.fprintf fmt "node %d failed: %a" node S.pp_error error
  | No_live_replica key -> Format.fprintf fmt "no live replica of %S" key

type metrics = {
  m_puts : Obs.Counter.t;
  m_gets : Obs.Counter.t;
  m_deletes : Obs.Counter.t;
  m_put_manys : Obs.Counter.t;
  m_batch_size : Obs.Histogram.t;
  m_crashes : Obs.Counter.t;
  m_destroys : Obs.Counter.t;
  m_repairs : Obs.Counter.t;
  m_repaired : Obs.Counter.t;
}

type t = {
  config : config;
  stores : S.t array;
  obs : Obs.t;
  m : metrics;
}

let create ?obs config =
  if config.nodes < config.replication then
    invalid_arg "Fleet.create: fewer nodes than the replication factor";
  (* Fleet-level counters get their own registry; each store keeps a
     private per-instance one, so two nodes' series never collide. *)
  let obs = match obs with Some o -> o | None -> Obs.create ~scope:"fleet" () in
  {
    config;
    stores =
      Array.init config.nodes (fun i ->
          S.create
            { config.store with S.seed = Int64.add config.store.S.seed (Int64.of_int (i * 131)) });
    obs;
    m =
      {
        m_puts = Obs.counter obs "fleet.put";
        m_gets = Obs.counter obs "fleet.get";
        m_deletes = Obs.counter obs "fleet.delete";
        m_put_manys = Obs.counter obs "fleet.put_many";
        m_batch_size =
          Obs.histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64. ] obs "fleet.batch_size";
        m_crashes = Obs.counter obs "fleet.node_crash";
        m_destroys = Obs.counter obs "fleet.node_destroy";
        m_repairs = Obs.counter obs "fleet.repair";
        m_repaired = Obs.counter obs "fleet.shards_repaired";
      };
  }

let node_count t = Array.length t.stores
let obs t = t.obs
let node_obs t ~node = S.obs t.stores.(node)

(* Rendezvous (highest-random-weight) hashing: stable placement that moves
   a minimal number of shards when membership changes. *)
let placement t key =
  let score node =
    Util.Crc32.digest_string (Printf.sprintf "%s/%d" key node)
  in
  List.init (node_count t) Fun.id
  |> List.sort (fun a b -> Int32.unsigned_compare (score b) (score a))
  |> List.filteri (fun i _ -> i < t.config.replication)

let node_err node r = Result.map_error (fun error -> Node_failed { node; error }) r

let ( let* ) = Result.bind

(* Durable acknowledgement: flush the index and superblock and drain the
   writeback so the shard survives a crash of this node. *)
let durable_put store node ~key ~value =
  let* _dep = node_err node (S.put store ~key ~value) in
  let* _dep = node_err node (S.flush_index store) in
  let* _dep = node_err node (S.flush_superblock store) in
  ignore (S.pump store max_int);
  Ok ()

let put t ~key ~value =
  Obs.Counter.incr t.m.m_puts;
  List.fold_left
    (fun acc node ->
      let* () = acc in
      durable_put t.stores.(node) node ~key ~value)
    (Ok ()) (placement t key)

(* Group commit across the fleet: keys are grouped by placement so each
   replica node sees one [put_batch] and pays the durable-acknowledgement
   flush (index + superblock + writeback drain) once per batch, not once
   per key. *)
let put_many t ops =
  Obs.Counter.incr t.m.m_put_manys;
  let buckets = Array.make (node_count t) [] in
  List.iter
    (fun (key, value) ->
      List.iter
        (fun node -> buckets.(node) <- (key, value) :: buckets.(node))
        (placement t key))
    ops;
  let rec go node =
    if node = node_count t then Ok ()
    else
      match List.rev buckets.(node) with
      | [] -> go (node + 1)
      | batch ->
        Obs.Histogram.observe t.m.m_batch_size (float_of_int (List.length batch));
        let store = t.stores.(node) in
        let* { S.results; barrier = _ } = node_err node (S.put_batch store batch) in
        let* () =
          List.fold_left
            (fun acc result ->
              let* () = acc in
              match result with
              | Ok _ -> Ok ()
              | Error error -> Error (Node_failed { node; error }))
            (Ok ()) results
        in
        let* _dep = node_err node (S.flush_index store) in
        let* _dep = node_err node (S.flush_superblock store) in
        ignore (S.pump store max_int);
        go (node + 1)
  in
  go 0

let get t ~key =
  Obs.Counter.incr t.m.m_gets;
  let rec go misses = function
    | [] -> if misses > 0 then Error (No_live_replica key) else Ok None
    | node :: rest -> (
      match S.get t.stores.(node) ~key with
      | Ok (Some v) -> Ok (Some v)
      | Ok None -> go misses rest
      | Error _ -> go (misses + 1) rest)
  in
  go 0 (placement t key)

(* Deletes need the same durable acknowledgement as puts: a tombstone that
   does not survive a replica's crash resurrects the shard there. *)
let delete t ~key =
  Obs.Counter.incr t.m.m_deletes;
  List.fold_left
    (fun acc node ->
      let* () = acc in
      let store = t.stores.(node) in
      let* _dep = node_err node (S.delete store ~key) in
      let* _dep = node_err node (S.flush_index store) in
      let* _dep = node_err node (S.flush_superblock store) in
      ignore (S.pump store max_int);
      Ok ())
    (Ok ()) (placement t key)

let crash_node t ~rng ~node =
  Obs.Counter.incr t.m.m_crashes;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"fleet" "node_crash" [ ("node", string_of_int node) ];
  match
    S.dirty_reboot t.stores.(node) ~rng
      {
        S.flush_index_first = false;
        flush_superblock_first = false;
        persist_probability = 0.5;
        split_pages = true;
      }
  with
  | Ok () -> ()
  | Error e -> Format.kasprintf failwith "crash_node: %a" S.pp_error e

let destroy_node t ~node =
  Obs.Counter.incr t.m.m_destroys;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"fleet" "node_destroy" [ ("node", string_of_int node) ];
  t.stores.(node) <-
    S.create
      {
        t.config.store with
        S.seed = Int64.add t.config.store.S.seed (Int64.of_int ((node * 131) + 7_777));
      }

type repair_report = {
  shards_scanned : int;
  shards_repaired : int;
  bytes_moved : int;
}

let repair t =
  Obs.Counter.incr t.m.m_repairs;
  (* The control plane's view: the union of every node's listing. *)
  let* keys =
    Array.to_seq t.stores
    |> Seq.fold_lefti
         (fun acc node store ->
           let* acc = acc in
           let* keys = node_err node (S.list store) in
           Ok (List.rev_append keys acc))
         (Ok [])
  in
  let keys = List.sort_uniq String.compare keys in
  let report = ref { shards_scanned = 0; shards_repaired = 0; bytes_moved = 0 } in
  let* () =
    List.fold_left
      (fun acc key ->
        let* () = acc in
        report := { !report with shards_scanned = !report.shards_scanned + 1 };
        (* Find a live copy among the placements. *)
        let nodes = placement t key in
        let copy =
          List.find_map
            (fun node ->
              match S.get t.stores.(node) ~key with Ok (Some v) -> Some v | _ -> None)
            nodes
        in
        match copy with
        | None -> Ok ()  (* unreadable everywhere: nothing to repair from *)
        | Some value ->
          List.fold_left
            (fun acc node ->
              let* () = acc in
              match S.get t.stores.(node) ~key with
              | Ok (Some _) -> Ok ()
              | Ok None | Error _ ->
                let* () = durable_put t.stores.(node) node ~key ~value in
                Obs.Counter.incr t.m.m_repaired;
                report :=
                  {
                    !report with
                    shards_repaired = !report.shards_repaired + 1;
                    bytes_moved = !report.bytes_moved + String.length value;
                  };
                Ok ())
            (Ok ()) nodes)
      (Ok ()) keys
  in
  Ok !report

let replica_count t ~key =
  List.fold_left
    (fun n node -> match S.get t.stores.(node) ~key with Ok (Some _) -> n + 1 | _ -> n)
    0 (placement t key)
