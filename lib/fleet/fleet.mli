(** A fleet of ShardStore storage nodes with shard replication and a
    fault-tolerant request plane — the layer above the paper's scope that
    motivates its design decisions.

    Context from the paper: "Amazon S3 is designed for eleven nines of
    data durability, and replicates object data across multiple storage
    nodes, so single-node crash consistency issues do not cause data loss.
    We instead see crash consistency as reducing the cost and operational
    impact of storage node failures" (section 2.2), and section 8.4 lists
    validating ShardStore's role in the wider system as future work.

    This module implements the minimum of that wider system:

    - rendezvous-hashed placement of each shard on [replication] nodes;
    - {e health tracking}: a per-node failure detector (Healthy / Suspect /
      Down) driven by observed request outcomes on the fleet's logical
      clock, with exponential backoff before re-probing a Suspect node and
      a circuit breaker that stops routing to a Down node until {!repair}
      or {!heal_node} re-closes it;
    - {e retry with backoff}: [`Transient] store errors (see
      {!Store.Default.error_class}) are retried a bounded number of times;
      a [`Permanent] error trips the breaker immediately;
    - {e quorum commit}: {!put} / {!put_many} acknowledge once
      [write_quorum] replicas (default: majority) are durably flushed;
      acknowledged-but-under-replicated keys join a dirty set that
      {!repair} drains;
    - {e failover reads with read-repair}: {!get} walks the placement in
      rank order, skips Down nodes, and re-replicates onto lagging
      replicas;
    - node crash (dirty reboot: survives with its durable data) versus
      node loss (disk replacement: empty), and {!repair}, which restores
      full replication and reports how many bytes had to move — the
      quantity crash consistency is meant to keep small.

    Fleet behaviour is observable: [fleet.retry], [fleet.breaker_open],
    [fleet.quorum_ack], [fleet.read_repair] and [fleet.partial_write] are
    coverage counters, and each node exports a [fleet.node_health] gauge
    (0 healthy / 1 suspect / 2 down). The chaos campaign
    ({!Experiments.Chaos}, [bin/validate --chaos]) validates the whole
    plane: every acknowledged write stays readable under randomized faults,
    crashes and losses, and repair converges to full replication. *)

type t

type config = {
  nodes : int;
  replication : int;  (** replicas per shard *)
  store : Store.Default.config;
}

val default_config : config

(** Fault-tolerance knobs of the request plane. *)
type ft_config = {
  write_quorum : int option;
      (** replicas that must durably acknowledge a write before the fleet
          does; [None] = majority of [replication], [Some replication] =
          the strongest (every replica) *)
  max_retries : int;  (** bounded retries of [`Transient] errors per attempt *)
  down_after : int;  (** consecutive failures before the breaker trips *)
  backoff_base : int;  (** Suspect re-probe backoff, in logical ticks *)
  backoff_max : int;  (** cap on the exponential backoff *)
}

(** Majority quorum, 2 retries, Down after 3 consecutive failures,
    backoff 4 ticks doubling up to 64. *)
val default_ft : ft_config

(** Node health as the failure detector sees it. [Suspect] nodes are only
    routed to once their backoff expires; [Down] nodes never (the circuit
    breaker) until {!repair} or {!heal_node} observes them working. *)
type health = Healthy | Suspect | Down

type error =
  | Node_failed of { node : int; error : Store.Default.error }
      (** the structured store-level cause; callers can match on the
          variant instead of parsing a rendered message *)
  | No_live_replica of string  (** key unreadable on every placement *)
  | Quorum_not_met of { key : string; acked : int; needed : int }
      (** too few replicas durably acknowledged the write *)

val pp_error : Format.formatter -> error -> unit

(** Acknowledgement of a quorum write: how many replicas hold the shard
    durably, and which placements are lagging (to be healed by repair). *)
type ack = { replicas : int; lagging : int list }

(** [create ?obs ?trace ?ft config] — fleet-level counters ([fleet.put],
    [fleet.retry], [fleet.quorum_ack], ...) land in [obs] or a fresh
    fleet-scoped registry; each node's store keeps its own per-instance
    registry (see {!node_obs}), so two nodes' series never collide.
    [ft] defaults to {!default_ft}. [?trace] attaches a wire-trace
    recorder ({!Tracecheck.Trace.Recorder}, src ["fleet"]): every
    request-plane operation is recorded as an invocation/response
    interval (a traced {!scan} also records the point reads it resolves
    candidates with), and the control plane emits markers —
    crash/restart, destroy, heal, repair — for offline audit by
    {!Tracecheck.Audit}. *)
val create : ?obs:Obs.t -> ?trace:Tracecheck.Trace.Recorder.t -> ?ft:ft_config -> config -> t

val node_count : t -> int

(** The resolved write quorum (majority unless overridden). *)
val write_quorum : t -> int

(** The fleet-level registry. *)
val obs : t -> Obs.t

(** [node_obs t ~node] — the per-store registry of one node. *)
val node_obs : t -> node:int -> Obs.t

(** [node_store t ~node] — one node's store, for invariant checks and
    introspection in tests; request-plane traffic must go through the
    fleet API. *)
val node_store : t -> node:int -> Store.Default.t

(** [node_disk t ~node] — the disk under one node's store (chaos campaigns
    arm fault injection through this). *)
val node_disk : t -> node:int -> Disk.t

(** Placement of a key: the [replication] nodes ranked by rendezvous
    hashing. Deterministic. *)
val placement : t -> string -> int list

(** {2 Health} *)

val health : t -> node:int -> health

(** Whether the request plane would route to the node right now (Healthy,
    or Suspect with its backoff expired). *)
val node_available : t -> node:int -> bool

(** Ticks until a Suspect node is re-probed (0 when available or Down). *)
val node_probe_in : t -> node:int -> int

(** Advance the fleet's logical clock by one tick (tests and chaos drivers
    use this to expire backoffs without issuing requests). *)
val tick : t -> unit

(** [heal_node t ~node] — operator override: mark the node Healthy and
    re-close its breaker (e.g. after replacing the medium). *)
val heal_node : t -> node:int -> unit

(** {2 Request plane} *)

(** [put t ~key ~value] writes the shard on every available placement and
    acknowledges once [write_quorum] replicas durably flushed it. A
    degraded acknowledgement ([lagging <> []]) counts [fleet.quorum_ack] /
    [fleet.partial_write] and records the key in the dirty set for
    {!repair}. Below quorum the put fails ({!Quorum_not_met}, or the first
    structured node failure) — but any replicas already written are
    likewise recorded as dirty, not leaked. *)
val put : t -> key:string -> value:string -> (ack, error) result

(** [put_many t ops] writes a batch of shards with group commit: keys are
    grouped by placement, each replica node applies its share through
    [Store.put_batch], and the durable-acknowledgement flush (index +
    superblock + writeback drain) runs {e once per node per batch} instead
    of once per key. Quorum accounting is per key, as in {!put}; the batch
    succeeds when every key reached quorum. Counted under [fleet.put_many];
    per-node batch sizes land in the [fleet.batch_size] histogram. *)
val put_many : t -> (string * string) list -> (unit, error) result

(** [get t ~key] reads from the first placement that has the shard,
    failing over past Down, erroring and not-found replicas
    ([fleet.get_failover]). A hit after a not-found replica triggers
    read-repair: the lagging replicas are re-replicated inline
    ([fleet.read_repair]); skipped or failing replicas leave the key in
    the dirty set instead. [Error No_live_replica] only when some replica
    was unreachable and none served the shard. *)
val get : t -> key:string -> (string option, error) result

(** [scan t ?lo ?hi ()] — fleet-wide range scan over [lo <= key <= hi]
    ([None] = unbounded), ascending. The candidate set is the union of
    every available node's local scan plus the in-range dirty keys; each
    candidate resolves through the failover {!get}, so dirty-set authority
    and read-repair apply exactly as for point reads. Errors if some
    candidate key currently has no live replica. *)
val scan : t -> ?lo:string -> ?hi:string -> unit -> ((string * string) list, error) result

(** [delete t ~key] tombstones the shard durably on {e every} placement —
    a partial tombstone would let {!repair} resurrect the shard from a
    replica that missed it, so the delete fails fast ({!Quorum_not_met})
    if any placement is unavailable. *)
val delete : t -> key:string -> (unit, error) result

(** {2 Failures and repair} *)

(** [crash_node t ~rng ~node] — power loss: the node reboots and recovers
    its durable state (with fault injection suspended — recovery reads
    back what the disk has, it does not re-roll the fault dice). If
    recovery itself fails the node is marked Down
    ([fleet.crash_recovery_failed]) instead of raising. *)
val crash_node : t -> rng:Util.Rng.t -> node:int -> unit

(** [destroy_node t ~node] — total loss (disk replacement): the node comes
    back empty, and Healthy. *)
val destroy_node : t -> node:int -> unit

(** Keys known to be under-replicated (degraded acks, failed read-repairs,
    partial writes) awaiting {!repair}. *)
val dirty_count : t -> int

val dirty_keys : t -> string list

(** [peek t ~node ~key] — faults-suspended direct read of one replica;
    introspection for checkers, never part of the request plane. *)
val peek : t -> node:int -> key:string -> (string option, Store.Default.error) result

type repair_report = {
  shards_scanned : int;
  shards_repaired : int;  (** replicas re-created *)
  shards_failed : int;  (** replicas that could not be re-created this pass *)
  bytes_moved : int;  (** repair network traffic *)
}

(** [repair t] restores full replication for every shard readable from at
    least one replica, scanning the union of node listings plus the dirty
    set. Unlike the request plane it attempts {e every} placement
    regardless of health — it is the breaker's heal path: a recovered
    node's first successful copy re-closes its breaker. Keys it fully
    replicates (or finds no copy of) leave the dirty set. *)
val repair : t -> (repair_report, error) result

(** Live replicas of a key (placements that can currently serve it). *)
val replica_count : t -> key:string -> int
