(** A fleet of ShardStore storage nodes with shard replication — the layer
    above the paper's scope that motivates its design decisions.

    Context from the paper: "Amazon S3 is designed for eleven nines of
    data durability, and replicates object data across multiple storage
    nodes, so single-node crash consistency issues do not cause data loss.
    We instead see crash consistency as reducing the cost and operational
    impact of storage node failures" (section 2.2), and section 8.4 lists
    validating ShardStore's role in the wider system as future work.

    This module implements the minimum of that wider system: rendezvous-
    hashed placement of each shard on [replication] nodes, durable
    acknowledgement (each replica flushes before the put returns), node
    crash (dirty reboot: survives with its durable data) versus node loss
    (disk replacement: empty), and {!repair}, which re-replicates
    under-replicated shards and reports how many bytes had to move — the
    quantity crash consistency is meant to keep small. *)

type t

type config = {
  nodes : int;
  replication : int;  (** replicas per shard *)
  store : Store.Default.config;
}

val default_config : config

type error =
  | Node_failed of { node : int; error : Store.Default.error }
      (** the structured store-level cause; callers can match on the
          variant instead of parsing a rendered message *)
  | No_live_replica of string  (** key unreadable on every placement *)

val pp_error : Format.formatter -> error -> unit

(** [create ?obs config] — fleet-level counters ([fleet.put],
    [fleet.node_crash], [fleet.repair], ...) land in [obs] or a fresh
    fleet-scoped registry; each node's store keeps its own per-instance
    registry (see {!node_obs}), so two nodes' series never collide. *)
val create : ?obs:Obs.t -> config -> t

val node_count : t -> int

(** The fleet-level registry. *)
val obs : t -> Obs.t

(** [node_obs t ~node] — the per-store registry of one node. *)
val node_obs : t -> node:int -> Obs.t

(** Placement of a key: the [replication] nodes ranked by rendezvous
    hashing. Deterministic. *)
val placement : t -> string -> int list

(** {2 Request plane} *)

(** [put t ~key ~value] writes and {e durably flushes} the shard on every
    placement before returning (the acknowledgement S3's durability story
    requires). *)
val put : t -> key:string -> value:string -> (unit, error) result

(** [put_many t ops] writes a batch of shards with group commit: keys are
    grouped by placement, each replica node applies its share through
    [Store.put_batch], and the durable-acknowledgement flush (index +
    superblock + writeback drain) runs {e once per node per batch} instead
    of once per key. Any per-op failure surfaces as [Node_failed] with the
    structured store error. Counted under [fleet.put_many]; per-node batch
    sizes land in the [fleet.batch_size] histogram. *)
val put_many : t -> (string * string) list -> (unit, error) result

(** [get t ~key] reads from the first placement that has the shard. *)
val get : t -> key:string -> (string option, error) result

val delete : t -> key:string -> (unit, error) result

(** {2 Failures and repair} *)

(** [crash_node t ~rng ~node] — power loss: the node reboots and recovers
    its durable state. *)
val crash_node : t -> rng:Util.Rng.t -> node:int -> unit

(** [destroy_node t ~node] — total loss (disk replacement): the node comes
    back empty. *)
val destroy_node : t -> node:int -> unit

type repair_report = {
  shards_scanned : int;
  shards_repaired : int;  (** replicas re-created *)
  bytes_moved : int;  (** repair network traffic *)
}

(** [repair t] restores full replication for every shard readable from at
    least one replica. *)
val repair : t -> (repair_report, error) result

(** Live replicas of a key (placements that can currently serve it). *)
val replica_count : t -> key:string -> int
