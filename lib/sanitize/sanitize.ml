module Int_set = Set.Make (Int)

type event =
  | Read of int
  | Write of int
  | Rmw of int
  | Lock_acquire of int
  | Lock_release of int
  | Sem_acquire of int
  | Sem_release of int
  | Barrier

type race_mode = [ `Off | `Lockset | `Vector_clock ]

type config = {
  races : race_mode;
  lock_order : bool;
}

let off = { races = `Off; lock_order = false }
let default = { races = `Vector_clock; lock_order = true }
let enabled c = c.races <> `Off || c.lock_order

type race = {
  loc : int;
  tids : int * int;
  access : string;
}

let pp_race fmt r =
  let a, b = r.tids in
  Format.fprintf fmt "%s race on cell #%d between threads %d and %d" r.access r.loc a b

(* {2 Vector clocks} *)

module Vc = struct
  type t = { mutable a : int array }

  let create () = { a = [||] }

  let ensure t i =
    if i >= Array.length t.a then begin
      let b = Array.make (max (i + 1) ((2 * Array.length t.a) + 4)) 0 in
      Array.blit t.a 0 b 0 (Array.length t.a);
      t.a <- b
    end

  let get t i = if i < Array.length t.a then t.a.(i) else 0

  let set t i v =
    ensure t i;
    t.a.(i) <- v

  let incr t i = set t i (get t i + 1)
  let join dst src = Array.iteri (fun i v -> if v > get dst i then set dst i v) src.a

  let copy src =
    let t = create () in
    join t src;
    t

  let clear t = Array.fill t.a 0 (Array.length t.a) 0

  (* [find_gt t other] — smallest index where t exceeds other, if any. *)
  let find_gt t other =
    let n = Array.length t.a in
    let rec go i = if i >= n then None else if t.a.(i) > get other i then Some i else go (i + 1) in
    go 0
end

(* {2 Lock-order analysis} *)

module Lock_order = struct
  type t = { edges : (int * int, unit) Hashtbl.t }

  let create () = { edges = Hashtbl.create 16 }

  let add_edge t ~held ~acquired =
    if held <> acquired && not (Hashtbl.mem t.edges (held, acquired)) then
      Hashtbl.replace t.edges (held, acquired) ()

  let edge_count t = Hashtbl.length t.edges

  let edges t = List.sort compare (List.of_seq (Seq.map fst (Hashtbl.to_seq t.edges)))

  (* Tarjan SCC over the acquisition graph; every component with two or
     more locks (or a self-edge) is a potential-deadlock cycle, whether or
     not any explored schedule actually deadlocked. *)
  let cycles t =
    let adj : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let nodes = ref Int_set.empty in
    Hashtbl.iter
      (fun (a, b) () ->
        nodes := Int_set.add a (Int_set.add b !nodes);
        Hashtbl.replace adj a (b :: (Option.value ~default:[] (Hashtbl.find_opt adj a))))
      t.edges;
    let index = Hashtbl.create 16 in
    let lowlink = Hashtbl.create 16 in
    let on_stack = Hashtbl.create 16 in
    let stack = ref [] in
    let next = ref 0 in
    let sccs = ref [] in
    let rec strongconnect v =
      Hashtbl.replace index v !next;
      Hashtbl.replace lowlink v !next;
      incr next;
      stack := v :: !stack;
      Hashtbl.replace on_stack v ();
      List.iter
        (fun w ->
          if not (Hashtbl.mem index w) then begin
            strongconnect w;
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
        (Option.value ~default:[] (Hashtbl.find_opt adj v));
      if Hashtbl.find lowlink v = Hashtbl.find index v then begin
        let rec pop acc =
          match !stack with
          | [] -> acc
          | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
        in
        let comp = pop [] in
        let self_loop l = Hashtbl.mem t.edges (l, l) in
        (match comp with
        | [ l ] when not (self_loop l) -> ()
        | _ -> sccs := List.sort compare comp :: !sccs)
      end
    in
    Int_set.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) !nodes;
    List.sort compare !sccs

  let pp_cycle fmt locks =
    Format.fprintf fmt "locks {%s}" (String.concat "," (List.map string_of_int locks))
end

(* {2 The per-schedule monitor} *)

module Monitor = struct
  type loc_state = {
    (* FastTrack-style: last-write epoch plus a read vector clock. *)
    mutable w_tid : int;
    mutable w_clk : int;
    reads : Vc.t;
    (* Eraser-style lockset state. [cand = None] means "all locks". *)
    mutable cand : Int_set.t option;
    mutable accessors : Int_set.t;
    mutable written : bool;
  }

  type t = {
    mode : race_mode;
    graph : Lock_order.t option;
    threads : (int, Vc.t) Hashtbl.t;
    locks : (int, Vc.t) Hashtbl.t;
    sems : (int, Vc.t) Hashtbl.t;
    cells : (int, Vc.t) Hashtbl.t;  (** sync clocks of atomic RMW cells *)
    locations : (int, loc_state) Hashtbl.t;
    held : (int, Int_set.t ref) Hashtbl.t;  (** per-thread held mutexes *)
    mutable race : race option;
    mutable accesses : int;
    mutable syncs : int;
  }

  let create ?lock_order ~mode () =
    {
      mode;
      graph = lock_order;
      threads = Hashtbl.create 8;
      locks = Hashtbl.create 8;
      sems = Hashtbl.create 4;
      cells = Hashtbl.create 16;
      locations = Hashtbl.create 16;
      held = Hashtbl.create 8;
      race = None;
      accesses = 0;
      syncs = 0;
    }

  let race t = t.race
  let access_count t = t.accesses
  let sync_count t = t.syncs

  let clock_of t tid =
    match Hashtbl.find_opt t.threads tid with
    | Some c -> c
    | None ->
      let c = Vc.create () in
      Vc.set c tid 1;
      Hashtbl.replace t.threads tid c;
      c

  let sync_of tbl id =
    match Hashtbl.find_opt tbl id with
    | Some c -> c
    | None ->
      let c = Vc.create () in
      Hashtbl.replace tbl id c;
      c

  let loc_of t loc =
    match Hashtbl.find_opt t.locations loc with
    | Some s -> s
    | None ->
      let s =
        {
          w_tid = -1;
          w_clk = 0;
          reads = Vc.create ();
          cand = None;
          accessors = Int_set.empty;
          written = false;
        }
      in
      Hashtbl.replace t.locations loc s;
      s

  let held_of t tid =
    match Hashtbl.find_opt t.held tid with
    | Some s -> s
    | None ->
      let s = ref Int_set.empty in
      Hashtbl.replace t.held tid s;
      s

  let report t loc ~first ~second access =
    if t.race = None then t.race <- Some { loc; tids = (first, second); access }

  let on_spawn t ~parent ~child =
    if t.mode = `Vector_clock then begin
      let pc = clock_of t parent in
      let cc = Vc.copy pc in
      Vc.incr cc child;
      Hashtbl.replace t.threads child cc;
      Vc.incr pc parent
    end

  (* A thread waking from [block] has observed its predicate become true;
     the writer that made it true is unknown, so join every clock. This
    under-approximates races after wait_until-style barriers but never
    invents ordering for threads that really ran concurrently before the
    block. *)
  let on_wake t ~tid =
    if t.mode = `Vector_clock then begin
      let c = clock_of t tid in
      Hashtbl.iter (fun other oc -> if other <> tid then Vc.join c oc) t.threads
    end

  let vc_read t tid loc =
    let c = clock_of t tid in
    let st = loc_of t loc in
    if st.w_clk > 0 && st.w_tid <> tid && st.w_clk > Vc.get c st.w_tid then
      report t loc ~first:st.w_tid ~second:tid "write/read";
    Vc.set st.reads tid (Vc.get c tid)

  let vc_write t tid loc =
    let c = clock_of t tid in
    let st = loc_of t loc in
    if st.w_clk > 0 && st.w_tid <> tid && st.w_clk > Vc.get c st.w_tid then
      report t loc ~first:st.w_tid ~second:tid "write/write"
    else begin
      match Vc.find_gt st.reads c with
      | Some u when u <> tid -> report t loc ~first:u ~second:tid "read/write"
      | _ -> ()
    end;
    st.w_tid <- tid;
    st.w_clk <- Vc.get c tid;
    Vc.clear st.reads;
    Vc.set st.reads tid (Vc.get c tid)

  let lockset_access t tid loc ~write =
    let st = loc_of t loc in
    let held = !(held_of t tid) in
    st.cand <- Some (match st.cand with None -> held | Some s -> Int_set.inter s held);
    st.accessors <- Int_set.add tid st.accessors;
    if write then st.written <- true;
    if
      st.written
      && Int_set.cardinal st.accessors >= 2
      && (match st.cand with Some s -> Int_set.is_empty s | None -> false)
    then report t loc ~first:(Int_set.min_elt st.accessors) ~second:tid "lockset"

  let on_event t ~tid ev =
    (* Coverage evidence for "zero findings" gates: how many plain
       accesses the detector actually checked, and how many sync events it
       consumed, regardless of mode-specific handling below. *)
    (match ev with
    | Read _ | Write _ -> t.accesses <- t.accesses + 1
    | Rmw _ | Lock_acquire _ | Lock_release _ | Sem_acquire _ | Sem_release _ | Barrier ->
      t.syncs <- t.syncs + 1);
    (match (t.graph, ev) with
    | Some g, Lock_acquire l ->
      Int_set.iter (fun held -> Lock_order.add_edge g ~held ~acquired:l) !(held_of t tid)
    | _ -> ());
    (match ev with
    | Lock_acquire l ->
      let h = held_of t tid in
      h := Int_set.add l !h
    | Lock_release l ->
      let h = held_of t tid in
      h := Int_set.remove l !h
    | _ -> ());
    match t.mode with
    | `Off -> ()
    | `Lockset -> (
      match ev with
      | Read loc -> lockset_access t tid loc ~write:false
      | Write loc -> lockset_access t tid loc ~write:true
      | Rmw _ | Lock_acquire _ | Lock_release _ | Sem_acquire _ | Sem_release _ | Barrier -> ())
    | `Vector_clock -> (
      let c = clock_of t tid in
      match ev with
      | Read loc -> vc_read t tid loc
      | Write loc -> vc_write t tid loc
      | Rmw loc ->
        (* Atomic read-modify-write: a sync point on the cell, not a plain
           access — acquire the cell's clock, then publish through it. *)
        let a = sync_of t.cells loc in
        Vc.join c a;
        Vc.join a c;
        Vc.incr c tid
      | Lock_acquire l -> Vc.join c (sync_of t.locks l)
      | Lock_release l ->
        let lc = sync_of t.locks l in
        Vc.join lc c;
        Vc.incr c tid
      | Sem_acquire s -> Vc.join c (sync_of t.sems s)
      | Sem_release s ->
        let sc = sync_of t.sems s in
        Vc.join sc c;
        Vc.incr c tid
      | Barrier ->
        (* wait_until returned: the predicate became true, possibly without
           the thread ever blocking (so without an [on_wake]). Same join as
           a wake — sound for monotone predicates. *)
        Hashtbl.iter (fun other oc -> if other <> tid then Vc.join c oc) t.threads)
end

(* {2 Page-lifecycle shadow} *)

module Page_shadow = struct
  type page_state = Fresh | Written | Reset_quarantine

  type report_kind =
    | Stale_epoch_read of { expected : int; found : int }
    | Quarantined_read
    | Unwritten_read
    | Double_reset
    | Write_regression of { off : int; expected : int }
    | Extent_leak of { pages : int }

  type report = {
    kind : report_kind;
    extent : int;
    page : int;
  }

  let pp_report fmt r =
    let detail =
      match r.kind with
      | Stale_epoch_read { expected; found } ->
        Printf.sprintf "read-after-reset: locator epoch %d, page recycled at epoch %d" expected
          found
      | Quarantined_read -> "read of reset-quarantined page (data scrubbed)"
      | Unwritten_read -> "read of never-written page"
      | Double_reset -> "reset of an extent with no writes since the last reset"
      | Write_regression { off; expected } ->
        Printf.sprintf "write at %d violates sequential discipline (shadow pointer %d)" off
          expected
      | Extent_leak { pages } ->
        Printf.sprintf "leaked extent: %d written pages unreachable and never reset" pages
    in
    Format.fprintf fmt "extent %d page %d: %s" r.extent r.page detail

  type extent_shadow = {
    st : page_state array;
    birth : int array;  (** epoch current at the page's last write *)
    mutable wptr : int;
    mutable epoch : int;
    mutable resets : int;
    mutable writes_since_reset : int;
  }

  type metrics = {
    m_stale : Obs.Counter.t;
    m_quarantined : Obs.Counter.t;
    m_unwritten : Obs.Counter.t;
    m_double_reset : Obs.Counter.t;
    m_regression : Obs.Counter.t;
    m_leak : Obs.Counter.t;
    m_total : Obs.Counter.t;
  }

  type t = {
    page_size : int;
    extents : extent_shadow array;
    mutable reports : report list;  (** newest first *)
    mutable dropped : int;
    max_reports : int;
    obs : Obs.t option;
    m : metrics option;
  }

  let make_metrics obs =
    {
      m_stale = Obs.counter obs "sanitize.page.stale_epoch_read";
      m_quarantined = Obs.counter obs "sanitize.page.quarantined_read";
      m_unwritten = Obs.counter obs "sanitize.page.unwritten_read";
      m_double_reset = Obs.counter obs "sanitize.page.double_reset";
      m_regression = Obs.counter obs "sanitize.page.write_regression";
      m_leak = Obs.counter obs "sanitize.page.leaked_extent";
      m_total = Obs.counter obs "sanitize.page.reports";
    }

  let create ?obs ~extent_count ~pages_per_extent ~page_size () =
    assert (extent_count > 0 && pages_per_extent > 0 && page_size > 0);
    let mk _ =
      {
        st = Array.make pages_per_extent Fresh;
        birth = Array.make pages_per_extent 0;
        wptr = 0;
        epoch = 0;
        resets = 0;
        writes_since_reset = 0;
      }
    in
    {
      page_size;
      extents = Array.init extent_count mk;
      reports = [];
      dropped = 0;
      max_reports = 256;
      obs;
      m = Option.map make_metrics obs;
    }

  let reports t = List.rev t.reports
  let report_count t = List.length t.reports + t.dropped
  let clear_reports t =
    t.reports <- [];
    t.dropped <- 0

  let state_of t ~extent ~page = t.extents.(extent).st.(page)

  let record t kind ~extent ~page =
    (match t.m with
    | Some m ->
      Obs.Counter.incr m.m_total;
      Obs.Counter.incr
        (match kind with
        | Stale_epoch_read _ -> m.m_stale
        | Quarantined_read -> m.m_quarantined
        | Unwritten_read -> m.m_unwritten
        | Double_reset -> m.m_double_reset
        | Write_regression _ -> m.m_regression
        | Extent_leak _ -> m.m_leak)
    | None -> ());
    (match t.obs with
    | Some obs when Obs.tracing obs ->
      Obs.emit obs ~layer:"sanitize" "page_report"
        [
          ("extent", string_of_int extent);
          ("page", string_of_int page);
          ("what", Format.asprintf "%a" pp_report { kind; extent; page });
        ]
    | _ -> ());
    if List.length t.reports >= t.max_reports then t.dropped <- t.dropped + 1
    else t.reports <- { kind; extent; page } :: t.reports

  let in_range t extent = extent >= 0 && extent < Array.length t.extents

  let on_write t ~extent ~off ~len =
    if in_range t extent && len > 0 then begin
      let e = t.extents.(extent) in
      if off <> e.wptr then
        record t (Write_regression { off; expected = e.wptr }) ~extent ~page:(off / t.page_size);
      let last = Array.length e.st - 1 in
      let p_from = min last (max 0 (off / t.page_size)) in
      let p_to = min last (max 0 ((off + len - 1) / t.page_size)) in
      for p = p_from to p_to do
        e.st.(p) <- Written;
        e.birth.(p) <- e.epoch
      done;
      e.wptr <- max e.wptr (off + len);
      e.writes_since_reset <- e.writes_since_reset + 1;
      match t.obs with
      | Some obs when Obs.tracing obs ->
        Obs.emit obs ~layer:"sanitize" "page_write"
          [ ("extent", string_of_int extent); ("off", string_of_int off); ("len", string_of_int len) ]
      | _ -> ()
    end

  let on_reset t ~extent ~epoch =
    if in_range t extent then begin
      let e = t.extents.(extent) in
      if e.resets > 0 && e.writes_since_reset = 0 then record t Double_reset ~extent ~page:0;
      Array.iteri (fun p s -> if s = Written then e.st.(p) <- Reset_quarantine) e.st;
      e.wptr <- 0;
      e.epoch <- epoch;
      e.resets <- e.resets + 1;
      e.writes_since_reset <- 0;
      match t.obs with
      | Some obs when Obs.tracing obs ->
        Obs.emit obs ~layer:"sanitize" "page_reset"
          [ ("extent", string_of_int extent); ("epoch", string_of_int epoch) ]
      | _ -> ()
    end

  (* Check-only: never mutates shadow state, so it is safe to call on the
     attempt even when the layer below will reject the read. Reports the
     first faulting page. *)
  let on_read ?expect_epoch t ~extent ~off ~len =
    if in_range t extent && len > 0 && off >= 0 then begin
      let e = t.extents.(extent) in
      let last = Array.length e.st - 1 in
      let p_from = min last (off / t.page_size) in
      let p_to = min last ((off + len - 1) / t.page_size) in
      let rec check p =
        if p <= p_to then
          match e.st.(p) with
          | Fresh -> record t Unwritten_read ~extent ~page:p
          | Reset_quarantine -> record t Quarantined_read ~extent ~page:p
          | Written -> (
            match expect_epoch with
            | Some expected when expected <> e.birth.(p) ->
              record t (Stale_epoch_read { expected; found = e.birth.(p) }) ~extent ~page:p
            | _ -> check (p + 1))
      in
      check p_from
    end

  let report_leak t ~extent ~pages =
    if in_range t extent then record t (Extent_leak { pages }) ~extent ~page:0
end
