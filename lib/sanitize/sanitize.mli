(** Dynamic-analysis sanitizers for the model-checked concurrency layer and
    the storage stack.

    Three detectors, in the spirit of moving beyond "bugs that manifest on
    an explored schedule" (paper section 4.3):

    - a {e happens-before race detector} ({!Monitor}, FastTrack-style
      vector clocks with an Eraser-style lockset fallback) fed by the
      {!Smc} scheduler: a racy access pair is flagged on {e every} schedule
      that merely reorders it, not just the schedule where the race
      corrupts state;
    - a {e lock-order analysis} ({!Lock_order}): the lock-acquisition
      graph accumulated across all schedules of an exploration; cycles are
      potential deadlocks even when no schedule actually deadlocked;
    - a {e page-lifecycle shadow} ({!Page_shadow}, ASAN-style shadow state
      over the user-space disk): read-after-reset with a stale epoch,
      double resets, write-pointer regressions and leaked extents are
      reported at the exact faulting operation instead of waiting for a
      checker to observe corruption (the extent-reclamation bug class of
      paper sections 2.1 and 4.2). *)

(** Instrumentation events emitted by the {!Smc} primitives. Location and
    lock ids are minted per exploration run in creation order, so they are
    stable across the schedules of one exploration and across replay. *)
type event =
  | Read of int  (** plain [Cell.get] of the location *)
  | Write of int  (** plain [Cell.set] *)
  | Rmw of int  (** atomic [Cell.update]: a sync point, not a plain access *)
  | Lock_acquire of int
  | Lock_release of int
  | Sem_acquire of int
  | Sem_release of int
  | Barrier
      (** [Smc.wait_until] returned: the predicate was observed true. In
          vector-clock mode this joins every thread's clock — the barrier
          analogue of a wake, needed because a predicate already true on
          first check never blocks (and so never wakes). *)

type race_mode = [ `Off | `Lockset | `Vector_clock ]

type config = {
  races : race_mode;
  lock_order : bool;
}

(** Everything disabled (the default for {!Smc.explore}). *)
val off : config

(** Vector-clock races plus lock-order analysis. *)
val default : config

val enabled : config -> bool

type race = {
  loc : int;  (** cell location id *)
  tids : int * int;  (** the two racing threads, first access first *)
  access : string;  (** ["write/write"], ["read/write"], ["write/read"] or ["lockset"] *)
}

val pp_race : Format.formatter -> race -> unit

(** Growable vector clocks (exposed for tests). *)
module Vc : sig
  type t

  val create : unit -> t
  val get : t -> int -> int
  val set : t -> int -> int -> unit
  val incr : t -> int -> unit
  val join : t -> t -> unit
  val copy : t -> t
  val clear : t -> unit
  val find_gt : t -> t -> int option
end

(** The lock-acquisition graph, accumulated across every schedule of an
    {!Smc.explore} run. *)
module Lock_order : sig
  type t

  val create : unit -> t
  val add_edge : t -> held:int -> acquired:int -> unit
  val edge_count : t -> int

  (** All accumulated [(held, acquired)] edges, sorted. Feeds the
      [lib/lint] static/dynamic lock-graph cross-check via
      {!Smc.outcome.lock_edges}. *)
  val edges : t -> (int * int) list

  (** Strongly connected components with at least two locks (or a
      self-edge): the potential-deadlock cycles. Each cycle and the result
      list are sorted, so output is deterministic. *)
  val cycles : t -> int list list

  val pp_cycle : Format.formatter -> int list -> unit
end

(** Per-schedule race monitor, driven by the {!Smc} scheduler.

    Vector-clock mode implements FastTrack-style happens-before tracking:
    plain [Cell.get]/[Cell.set] are the tracked accesses; [Cell.update],
    mutexes and semaphores are synchronization (release/acquire edges).
    Threads waking from [block]/[wait_until] join all clocks — sound for
    monotone predicates, at the cost of missing races that span such a
    barrier.

    Lockset mode is the Eraser discipline: a location accessed by two or
    more threads, at least once for writing, with an empty candidate lock
    set is flagged. It needs no happens-before state (cheap screening) but
    false-positives on publication-ordered data — e.g. a cell written
    before an atomic publish and only read after consuming the publish
    holds no common lock yet is race-free. *)
module Monitor : sig
  type t

  (** [create ?lock_order ~mode ()] — pass the exploration-wide
      {!Lock_order.t} to accumulate acquisition edges (tracked in every
      mode, including [`Off]). *)
  val create : ?lock_order:Lock_order.t -> mode:race_mode -> unit -> t

  val on_spawn : t -> parent:int -> child:int -> unit

  (** The thread was unblocked (its [block] predicate became true). *)
  val on_wake : t -> tid:int -> unit

  val on_event : t -> tid:int -> event -> unit

  (** First race detected, if any (sticky). *)
  val race : t -> race option

  (** Coverage evidence for "zero findings" gates: plain accesses checked
      by this monitor, in any mode. A clean result over zero accesses
      proves nothing — report the count next to the verdict. *)
  val access_count : t -> int

  (** Synchronization events consumed (RMW, lock, semaphore, barrier). *)
  val sync_count : t -> int
end

(** ASAN-style shadow state over the user-space disk: one lifecycle state
    per page, plus the epoch current at the page's last write. Writes and
    resets {e commit} shadow state and should be reported only for
    operations the disk accepted; reads are {e check-only} and safe to
    report on the attempt, so a faulting read is caught even when the
    layer below rejects it. Attach one shadow per disk view (durable
    {!Disk} or a volatile image) — never both, or writes double-count. *)
module Page_shadow : sig
  type page_state = Fresh | Written | Reset_quarantine

  type report_kind =
    | Stale_epoch_read of { expected : int; found : int }
        (** the page was recycled (reset + rewritten) after the reader's
            epoch was minted: a read of a recycled extent *)
    | Quarantined_read  (** read of a page scrubbed by reset *)
    | Unwritten_read
    | Double_reset  (** reset with no intervening write *)
    | Write_regression of { off : int; expected : int }
        (** sequential-write discipline violated per the shadow's own
            write pointer *)
    | Extent_leak of { pages : int }
        (** written, unreachable, never reset (reported at close) *)

  type report = {
    kind : report_kind;
    extent : int;
    page : int;
  }

  val pp_report : Format.formatter -> report -> unit

  type t

  (** [create ?obs ~extent_count ~pages_per_extent ~page_size ()] — with
      [obs], every report bumps [sanitize.page.*] counters (plus the
      [sanitize.page.reports] total) and writes/resets/reports land in the
      trace ring when tracing is on. *)
  val create :
    ?obs:Obs.t -> extent_count:int -> pages_per_extent:int -> page_size:int -> unit -> t

  (** Commit a successful sequential write. Flags a write-pointer
      regression if [off] disagrees with the shadow pointer. *)
  val on_write : t -> extent:int -> off:int -> len:int -> unit

  (** Commit a successful reset: written pages enter quarantine, the
      shadow pointer rewinds, [epoch] becomes the birth epoch of future
      writes. Flags a double reset. *)
  val on_reset : t -> extent:int -> epoch:int -> unit

  (** Check a read attempt (never mutates). [expect_epoch] is the epoch
      the reader believes current — a locator epoch; a mismatch against a
      page's birth epoch is a read of a recycled extent, reported at this
      faulting read. *)
  val on_read : ?expect_epoch:int -> t -> extent:int -> off:int -> len:int -> unit

  (** Record a leaked extent found at close. *)
  val report_leak : t -> extent:int -> pages:int -> unit

  (** Reports in detection order. The list is capped (oldest kept); use
      {!report_count} for the true total. *)
  val reports : t -> report list

  val report_count : t -> int
  val clear_reports : t -> unit
  val state_of : t -> extent:int -> page:int -> page_state
end
