open Util

type t = (string * Entry.t) array  (* sorted by key, unique keys *)

module Smap = Map.Make (String)

let of_pairs pairs =
  let m = List.fold_left (fun m (k, e) -> Smap.add k e m) Smap.empty pairs in
  Array.of_list (Smap.bindings m)

let length = Array.length
let is_empty t = Array.length t = 0

let find t key =
  let rec go lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let k, e = t.(mid) in
      match String.compare key k with
      | 0 -> Some e
      | c when c < 0 -> go lo mid
      | _ -> go (mid + 1) hi
    end
  in
  go 0 (Array.length t)

let to_list = Array.to_list

let merge ~drop_tombstones runs =
  (* Head shadows tail: fold oldest-first so newer bindings overwrite. *)
  let m =
    List.fold_left
      (fun m run -> Array.fold_left (fun m (k, e) -> Smap.add k e m) m run)
      Smap.empty (List.rev runs)
  in
  let keep =
    if drop_tombstones then
      Smap.filter (fun _ e -> match e with Entry.Tombstone -> false | Entry.Put _ -> true) m
    else m
  in
  Array.of_list (Smap.bindings keep)

let min_key t = if Array.length t = 0 then None else Some (fst t.(0))
let max_key t = if Array.length t = 0 then None else Some (fst t.(Array.length t - 1))

let replace_locator t ~key ~old_loc ~new_loc =
  match find t key with
  | Some (Entry.Put locs) when List.exists (Chunk.Locator.equal old_loc) locs ->
    let locs =
      List.map (fun l -> if Chunk.Locator.equal l old_loc then new_loc else l) locs
    in
    let copy = Array.copy t in
    Array.iteri (fun i (k, _) -> if String.equal k key then copy.(i) <- (k, Entry.Put locs)) copy;
    Some copy
  | Some (Entry.Put _) | Some Entry.Tombstone | None -> None

let encode t =
  let w = Codec.Writer.create ~capacity:(64 * (Array.length t + 1)) () in
  Codec.Writer.u32 w (Int32.of_int (Array.length t));
  Array.iter
    (fun (k, e) ->
      Codec.Writer.lstring w k;
      Entry.encode w e)
    t;
  Codec.Writer.contents w

let decode s =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string s in
  let* count32 = Codec.Reader.u32 r in
  let count = Int32.to_int count32 in
  if count < 0 || count > 1 lsl 24 then Error (Codec.Invalid "run entry count")
  else begin
    let rec go acc i =
      if i = count then
        let* () = Codec.Reader.expect_end r in
        Ok (Array.of_list (List.rev acc))
      else
        let* k = Codec.Reader.lstring r in
        let* e = Entry.decode r in
        go ((k, e) :: acc) (i + 1)
    in
    let* arr = go [] 0 in
    (* Reject unsorted or duplicated keys: the binary search depends on
       order, and on-disk bytes are untrusted. *)
    let ok = ref true in
    for i = 1 to Array.length arr - 1 do
      if String.compare (fst arr.(i - 1)) (fst arr.(i)) >= 0 then ok := false
    done;
    if !ok then Ok arr else Error (Codec.Invalid "run keys not strictly sorted")
  end
