(** Immutable sorted runs of the LSM tree.

    A run is the serialized form of one memtable flush (or compaction
    output): key-sorted [(key, entry)] pairs, stored as a single chunk via
    the chunk store, so the tree's own backing storage is subject to the
    same reclamation as shard data (paper Fig. 1). *)

type t

(** [of_pairs pairs] builds a run; pairs need not be pre-sorted, later
    duplicates win. *)
val of_pairs : (string * Entry.t) list -> t

val length : t -> int
val is_empty : t -> bool

(** [find t key] — binary search. *)
val find : t -> string -> Entry.t option

(** All pairs in key order. *)
val to_list : t -> (string * Entry.t) list

(** [merge ~drop_tombstones newest_first] merges runs (head shadows tail).
    [drop_tombstones:true] is valid only when no older entry for any merged
    key can survive elsewhere — i.e. when merging into the {e deepest}
    populated level (or a full compaction). Partial levelled merges must
    pass [false]: a dropped tombstone there would resurrect an older value
    still sitting in a deeper run. *)
val merge : drop_tombstones:bool -> t list -> t

(** Smallest / largest key of the run ([None] when empty). *)
val min_key : t -> string option

val max_key : t -> string option

(** [replace_locator t ~key ~old_loc ~new_loc] — a copy with one locator
    substituted, or [None] if [key]'s entry does not reference [old_loc]. *)
val replace_locator :
  t -> key:string -> old_loc:Chunk.Locator.t -> new_loc:Chunk.Locator.t -> t option

val encode : t -> string
val decode : string -> (t, Util.Codec.error) result
