(** The LSM-tree index: shard key → chunk locators (paper section 2.1).

    Mutations land in a volatile memtable. {!flush} serializes the
    memtable as sorted {!Run}s stored through the chunk store (the tree's
    own storage is chunks, Fig. 1) into level 0, then appends a metadata
    record (the per-level run-locator table) to the reserved metadata
    extents. An index entry's durability is the {e flush promise}: it
    persists only when both the covering run chunk and the covering
    metadata record are durable — and the run chunk's write depends on the
    entry's value chunks, so a durable index never references non-durable
    data.

    {b Levelled compaction.} Runs are organized into levels: level 0 holds
    raw flush output, newest first, with overlapping key ranges; every
    deeper level holds runs sorted by [min_key] with pairwise-{e disjoint}
    ranges. When level 0 reaches [l0_trigger] runs (or level [i] exceeds
    [level_ratio]{^ i} runs) {!compact} merges a victim run into the
    overlapping runs of the next level — a {e partial} compaction that
    rewrites only the overlap, keeping tombstones unless the target is the
    deepest populated level (see {!Run.merge}). [l0_trigger = 0] selects
    the monolithic mode: {!compact} merges every run into one generation,
    the pre-levelling behaviour kept as the write-amplification baseline.
    Old run chunks are orphaned for reclamation; reclamation calls back
    into {!update_locator} (shard chunks) and {!relocate_run} (the tree's
    own chunks) to keep references crash-consistently ordered ahead of the
    extent reset.

    {b Scans.} {!scan} opens a cursor with snapshot-at-open semantics: a
    k-way merge over the memtable and the in-range slice of every
    overlapping run (all chunk IO happens at open). {!keys} is a thin
    wrapper that drains a full-range cursor.

    Fault site #3: metadata not flushed during shutdown after an extent
    reset. *)

type t

type error =
  | Chunk of Chunk.Chunk_store.error
  | Roll of Logroll.error
  | Corrupt of Util.Codec.error

val pp_error : Format.formatter -> error -> unit

(** True for extent-exhaustion errors that reclamation might cure. *)
val error_is_no_space : error -> bool

(** See {!Io_sched.error_class}. *)
val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

(** [create ?max_run_payload ?l0_trigger ?level_ratio ?obs chunks
    ~metadata_extents] — runs are split so their serialized size stays at
    or below [max_run_payload] (default 16 KiB), keeping each run chunk
    small enough for its extent. [l0_trigger] (default 4; [0] = monolithic
    mode) and [level_ratio] (default 4, clamped to >= 2) set the levelled
    compaction policy; see {!configure_levels}. Metrics ([index.put],
    [index.flush], [index.run_bytes], coverage-linked [index.get.*] /
    [index.run_written] / [index.compact] / [index.compact.partial] /
    [index.scan], gauges [index.memtable_size] / [index.run_count] /
    [index.level_count]) land in [obs], defaulting to the chunk store's
    registry. *)
val create :
  ?max_run_payload:int ->
  ?l0_trigger:int ->
  ?level_ratio:int ->
  ?obs:Obs.t ->
  Chunk.Chunk_store.t ->
  metadata_extents:int * int ->
  t

(** [configure_levels t ~l0_trigger ~level_ratio] resets the compaction
    policy knobs ([l0_trigger = 0] = monolithic; [level_ratio] clamped to
    >= 2). Affects future {!compact} calls only — the level structure
    itself is untouched. *)
val configure_levels : t -> l0_trigger:int -> level_ratio:int -> unit

(** The registry this index's metrics land in. *)
val obs : t -> Obs.t

(** [put t ~key ~locators ~value_dep] stages a mapping; [value_dep] must
    cover the writes of every locator's chunk. Returns the entry's
    dependency (value deps and the flush promise). *)
val put : t -> key:string -> locators:Chunk.Locator.t list -> value_dep:Dep.t -> Dep.t

(** [delete t ~key] stages a tombstone; returns its dependency. *)
val delete : t -> key:string -> Dep.t

(** [get t ~key] resolves through memtable, then level 0 newest-first,
    then at most one covering run per deeper level. *)
val get : t -> key:string -> (Chunk.Locator.t list option, error) result

(** All live keys, sorted: drains a full-range {!scan} cursor. *)
val keys : t -> (string list, error) result

(** {2 Scan cursors} *)

type cursor

(** [scan t ~lo ~hi] opens a cursor over the live entries with
    [lo <= key <= hi] ([None] = unbounded). Snapshot-at-open: the memtable
    is captured and every overlapping run is loaded before the cursor is
    returned, so later mutations, flushes or compactions do not affect an
    open cursor ({!cursor_next} never fails). Counts [index.scan]. *)
val scan : t -> lo:string option -> hi:string option -> (cursor, error) result

(** Next live entry in ascending key order ([None] when drained).
    Tombstones are merged away, never yielded. *)
val cursor_next : cursor -> (string * Chunk.Locator.t list) option

(** {2 Maintenance} *)

(** [flush t ~for_shutdown] writes the memtable as level-0 runs plus a
    metadata record and binds the flush promise. No-op on an empty
    memtable. *)
val flush : t -> for_shutdown:bool -> (Dep.t, error) result

(** [compact t] — levelled mode: runs every triggered partial step
    (victim run into the overlapping runs of the next level); when no
    trigger fires, pushes one run down so that repeated calls converge to
    a single fully-compacted level. Monolithic mode ([l0_trigger = 0]):
    merges every run into one generation. No-op with at most one run. *)
val compact : t -> (Dep.t, error) result

(** [compact_major t] merges every run into one generation, dropping
    tombstones, regardless of the levelling policy — the space-pressure
    escape hatch used by the store's garbage-collection ladder, where
    incremental levelled steps would churn fresh chunks faster than
    reclamation frees the superseded ones. *)
val compact_major : t -> (Dep.t, error) result

(** Whether a levelled trigger currently fires (level 0 at [l0_trigger],
    or some deeper level above [level_ratio]{^ i} runs). Always [false]
    in monolithic mode. *)
val compaction_due : t -> bool

(** Run count per level, deepest-trailing empties trimmed ([[]] when there
    are no runs). *)
val level_runs : t -> int list

(** [level_invariants t] checks the composed per-level discipline without
    IO: every level >= 1 sorted by [min_key] with pairwise-disjoint
    ranges, unique run ids below the id horizon, and every memoized run's
    content matching its recorded range. [Error] carries a description of
    the first violation. *)
val level_invariants : t -> (unit, string) result

(** {2 Reclamation callbacks} *)

(** [update_locator t ~key ~old_loc ~new_loc ~new_dep] — reclamation
    callback for shard chunks: rewrites the entry so it references
    [new_loc]; returns a dependency persisting when the updated reference
    does. [Dep.trivial] when [key] no longer references [old_loc]. *)
val update_locator :
  t ->
  key:string ->
  old_loc:Chunk.Locator.t ->
  new_loc:Chunk.Locator.t ->
  new_dep:Dep.t ->
  Dep.t

(** Current runs in search order (level 0 newest first, then deeper
    levels), as (run id, locator). *)
val run_locators : t -> (int * Chunk.Locator.t) list

(** [relocate_run t ~run_id ~new_loc ~new_dep] — reclamation callback for
    the tree's own chunks: repoints the metadata at the evacuated run and
    appends a metadata record immediately. *)
val relocate_run :
  t -> run_id:int -> new_loc:Chunk.Locator.t -> new_dep:Dep.t -> (Dep.t, error) result

(** Dependency covering the index state visible right now (runs, newest
    metadata record, pending memtable flush); see {!Store_intf.INDEX}. *)
val basis_dep : t -> Dep.t

(** Mark that some extent was reset since the last flush (fault #3's
    trigger condition). *)
val note_extent_reset : t -> unit

(** [recover t] reloads the level table from the newest durable metadata
    record and empties volatile state. Metadata describing an ill-formed
    tree (overlapping or unordered ranges in a level >= 1, duplicate run
    ids) is rejected as [Corrupt]. *)
val recover : t -> (unit, error) result

val memtable_size : t -> int
val run_count : t -> int
