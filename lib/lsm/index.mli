(** The LSM-tree index: shard key → chunk locators (paper section 2.1).

    Mutations land in a volatile memtable. {!flush} serializes the
    memtable as a sorted {!Run} stored through the chunk store (the tree's
    own storage is chunks, Fig. 1), then appends a metadata record (the
    run-locator list) to the reserved metadata extents. An index entry's
    durability is the {e flush promise}: it persists only when both the
    covering run chunk and the covering metadata record are durable — and
    the run chunk's write depends on the entry's value chunks, so a durable
    index never references non-durable data.

    {!compact} merges every on-disk run into one, orphaning the old run
    chunks for reclamation to collect. Reclamation calls back into
    {!update_locator} (shard chunks) and {!relocate_run} (the tree's own
    chunks) to keep references crash-consistently ordered ahead of the
    extent reset.

    Fault site #3: metadata not flushed during shutdown after an extent
    reset. *)

type t

type error =
  | Chunk of Chunk.Chunk_store.error
  | Roll of Logroll.error
  | Corrupt of Util.Codec.error

val pp_error : Format.formatter -> error -> unit

(** True for extent-exhaustion errors that reclamation might cure. *)
val error_is_no_space : error -> bool

(** See {!Io_sched.error_class}. *)
val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

(** [create ?max_run_payload ?obs chunks ~metadata_extents] — runs are
    split so their serialized size stays at or below [max_run_payload]
    (default 16 KiB), keeping each run chunk small enough for its extent.
    Metrics ([index.put], [index.flush], coverage-linked [index.get.*] /
    [index.run_written] / [index.compact], gauges [index.memtable_size] /
    [index.run_count]) land in [obs], defaulting to the chunk store's
    registry. *)
val create :
  ?max_run_payload:int -> ?obs:Obs.t -> Chunk.Chunk_store.t -> metadata_extents:int * int -> t

(** The registry this index's metrics land in. *)
val obs : t -> Obs.t

(** [put t ~key ~locators ~value_dep] stages a mapping; [value_dep] must
    cover the writes of every locator's chunk. Returns the entry's
    dependency (value deps and the flush promise). *)
val put : t -> key:string -> locators:Chunk.Locator.t list -> value_dep:Dep.t -> Dep.t

(** [delete t ~key] stages a tombstone; returns its dependency. *)
val delete : t -> key:string -> Dep.t

(** [get t ~key] resolves through memtable then runs, newest first. *)
val get : t -> key:string -> (Chunk.Locator.t list option, error) result

(** All live keys, sorted (loads every run). *)
val keys : t -> (string list, error) result

(** [flush t ~for_shutdown] writes the memtable as a run plus a metadata
    record and binds the flush promise. No-op on an empty memtable. *)
val flush : t -> for_shutdown:bool -> (Dep.t, error) result

(** [compact t] merges all on-disk runs into one. *)
val compact : t -> (Dep.t, error) result

(** [update_locator t ~key ~old_loc ~new_loc ~new_dep] — reclamation
    callback for shard chunks: rewrites the entry so it references
    [new_loc]; returns a dependency persisting when the updated reference
    does. [Dep.trivial] when [key] no longer references [old_loc]. *)
val update_locator :
  t ->
  key:string ->
  old_loc:Chunk.Locator.t ->
  new_loc:Chunk.Locator.t ->
  new_dep:Dep.t ->
  Dep.t

(** Current run list, newest first, as (run id, locator). *)
val run_locators : t -> (int * Chunk.Locator.t) list

(** [relocate_run t ~run_id ~new_loc ~new_dep] — reclamation callback for
    the tree's own chunks: repoints the metadata at the evacuated run and
    appends a metadata record immediately. *)
val relocate_run :
  t -> run_id:int -> new_loc:Chunk.Locator.t -> new_dep:Dep.t -> (Dep.t, error) result

(** Dependency covering the index state visible right now (runs, newest
    metadata record, pending memtable flush); see {!Store_intf.INDEX}. *)
val basis_dep : t -> Dep.t

(** Mark that some extent was reset since the last flush (fault #3's
    trigger condition). *)
val note_extent_reset : t -> unit

(** [recover t] reloads the run list from the newest durable metadata
    record and empties volatile state. *)
val recover : t -> (unit, error) result

val memtable_size : t -> int
val run_count : t -> int
