open Util

type t =
  | Put of Chunk.Locator.t list
  | Tombstone

let equal a b =
  match a, b with
  | Tombstone, Tombstone -> true
  | Put l1, Put l2 -> List.length l1 = List.length l2 && List.for_all2 Chunk.Locator.equal l1 l2
  | (Put _ | Tombstone), _ -> false

let pp fmt = function
  | Tombstone -> Format.pp_print_string fmt "tombstone"
  | Put locs ->
    Format.fprintf fmt "put[%a]"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ";") Chunk.Locator.pp)
      locs

let encode w = function
  | Put locs ->
    Codec.Writer.u8 w 0;
    Codec.Writer.u32 w (Int32.of_int (List.length locs));
    List.iter (Chunk.Locator.encode w) locs
  | Tombstone -> Codec.Writer.u8 w 1

let decode r =
  let open Codec.Syntax in
  let* tag = Codec.Reader.u8 r in
  match tag with
  | 0 ->
    let* count32 = Codec.Reader.u32 r in
    let count = Int32.to_int count32 in
    if count < 0 || count > 1 lsl 20 then Error (Codec.Invalid "locator count")
    else begin
      let rec go acc i =
        if i = count then Ok (Put (List.rev acc))
        else
          let* loc = Chunk.Locator.decode r in
          go (loc :: acc) (i + 1)
      in
      go [] 0
    end
  | 1 -> Ok Tombstone
  | _ -> Error (Codec.Invalid "entry tag")
