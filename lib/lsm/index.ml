open Util
module Smap = Map.Make (String)

type error =
  | Chunk of Chunk.Chunk_store.error
  | Roll of Logroll.error
  | Corrupt of Codec.error

let pp_error fmt = function
  | Chunk e -> Chunk.Chunk_store.pp_error fmt e
  | Roll e -> Logroll.pp_error fmt e
  | Corrupt e -> Codec.pp_error fmt e

let error_class = function
  | Chunk e -> Chunk.Chunk_store.error_class e
  | Roll e -> Logroll.error_class e
  | Corrupt _ -> `Fatal

let error_is_no_space = function
  | Chunk Chunk.Chunk_store.No_space -> true
  (* A metadata record outgrowing its extent is also resource pressure:
     compaction shrinks the run list and with it the record. *)
  | Roll (Logroll.Record_too_large _) -> true
  | Chunk _ | Roll _ | Corrupt _ -> false

type run_ref = {
  run_id : int;
  mutable loc : Chunk.Locator.t;
  dep : Dep.t;  (** dependency covering this run and its metadata record *)
  min_key : string;  (** smallest key in the run (from metadata, no load) *)
  max_key : string;  (** largest key in the run *)
}

type metrics = {
  m_puts : Obs.Counter.t;
  m_deletes : Obs.Counter.t;
  m_get_memtable : Obs.Counter.t;
  m_get_run : Obs.Counter.t;
  m_runs_written : Obs.Counter.t;
  m_run_bytes : Obs.Counter.t;
  m_flushes : Obs.Counter.t;
  m_compacts : Obs.Counter.t;
  m_compact_partial : Obs.Counter.t;
  m_scans : Obs.Counter.t;
  m_recovers : Obs.Counter.t;
  m_memtable_size : Obs.Gauge.t;
  m_run_count : Obs.Gauge.t;
  m_level_count : Obs.Gauge.t;
}

type t = {
  chunks : Chunk.Chunk_store.t;
  roll : Logroll.t;
  obs : Obs.t;
  m : metrics;
  mutable memtable : (Entry.t * Dep.t) Smap.t;
  mutable memtable_count : int;  (** [Smap.cardinal memtable], tracked O(1) *)
  mutable levels : run_ref list array;
      (** [levels.(0)] newest first, ranges may overlap; [levels.(i >= 1)]
          sorted by [min_key] with pairwise-disjoint ranges (the per-level
          invariant checked by {!level_invariants}) *)
  mutable l0_trigger : int;
      (** L0 run count that triggers a levelled step; [0] = monolithic
          mode (the pre-levelling behaviour: {!compact} merges everything) *)
  mutable level_ratio : int;  (** level [i >= 1] holds [level_ratio ^ i] runs *)
  mutable next_run_id : int;
  mutable flush_promise : Dep.Promise.promise;
  run_contents : (int, Run.t) Hashtbl.t;
  run_lock : Conc.Rwlock.t;
      (** guards [run_contents]: [load_run] memoizes decoded runs on the
          read path, so concurrent readers under a shard {e read} lock
          both reach this table — the one read-path mutation the shared
          store cannot exclude structurally. A validated [Conc.Rwlock]
          (reads share, memoization writes exclude); its own class
          ("lsm_run") is a leaf in the static lock-order graph *)
  mutable reset_seen : bool;
  max_run_payload : int;
}

let create ?(max_run_payload = 16 * 1024) ?(l0_trigger = 4) ?(level_ratio = 4) ?obs chunks
    ~metadata_extents =
  let sched = Chunk.Chunk_store.sched chunks in
  let obs = match obs with Some o -> o | None -> Chunk.Chunk_store.obs chunks in
  {
    chunks;
    roll = Logroll.create ~obs sched ~extents:metadata_extents ~name:"lsm-metadata";
    obs;
    m =
      {
        m_puts = Obs.counter obs "index.put";
        m_deletes = Obs.counter obs "index.delete";
        m_get_memtable = Obs.counter ~coverage:true obs "index.get.memtable";
        m_get_run = Obs.counter ~coverage:true obs "index.get.run";
        m_runs_written = Obs.counter ~coverage:true obs "index.run_written";
        m_run_bytes = Obs.counter obs "index.run_bytes";
        m_flushes = Obs.counter obs "index.flush";
        m_compacts = Obs.counter ~coverage:true obs "index.compact";
        m_compact_partial = Obs.counter ~coverage:true obs "index.compact.partial";
        m_scans = Obs.counter ~coverage:true obs "index.scan";
        m_recovers = Obs.counter obs "index.recover";
        m_memtable_size = Obs.gauge obs "index.memtable_size";
        m_run_count = Obs.gauge obs "index.run_count";
        m_level_count = Obs.gauge obs "index.level_count";
      };
    memtable = Smap.empty;
    memtable_count = 0;
    levels = Array.make 1 [];
    l0_trigger = max 0 l0_trigger;
    level_ratio = max 2 level_ratio;
    next_run_id = 1;
    flush_promise = Dep.Promise.create ();
    run_contents = Hashtbl.create 16;
    run_lock = Conc.Rwlock.create ();
    reset_seen = false;
    max_run_payload;
  }

let configure_levels t ~l0_trigger ~level_ratio =
  t.l0_trigger <- max 0 l0_trigger;
  t.level_ratio <- max 2 level_ratio

let obs t = t.obs
let memtable_size t = t.memtable_count
let run_count t = Array.fold_left (fun n runs -> n + List.length runs) 0 t.levels
let levelled t = t.l0_trigger > 0

(* Newest entries first: L0 newest-first, then each deeper (older) level.
   Within a level >= 1 the runs are range-disjoint, so their relative
   order never affects shadowing. *)
let all_runs t = List.concat (Array.to_list t.levels)

let level_runs t =
  let counts = Array.to_list (Array.map List.length t.levels) in
  let rec trim = function 0 :: rest -> trim rest | l -> List.rev l in
  trim (List.rev counts)

let level_count t = List.length (level_runs t)

let sync_gauges t =
  Obs.Gauge.set_int t.m.m_memtable_size (memtable_size t);
  Obs.Gauge.set_int t.m.m_run_count (run_count t);
  Obs.Gauge.set_int t.m.m_level_count (level_count t)

let note_extent_reset t = t.reset_seen <- true
let run_locators t = List.map (fun r -> (r.run_id, r.loc)) (all_runs t)

let stage t key entry dep =
  if not (Smap.mem key t.memtable) then t.memtable_count <- t.memtable_count + 1;
  t.memtable <- Smap.add key (entry, dep) t.memtable;
  Obs.Gauge.set_int t.m.m_memtable_size t.memtable_count;
  Dep.and_ dep (Dep.Promise.dep t.flush_promise)

let put t ~key ~locators ~value_dep =
  Obs.Counter.incr t.m.m_puts;
  stage t key (Entry.Put locators) value_dep

let delete t ~key =
  Obs.Counter.incr t.m.m_deletes;
  stage t key Entry.Tombstone Dep.trivial

let ( let* ) = Result.bind

let memo_run t run_id f =
  Conc.Rwlock.with_write t.run_lock (fun () ->
      match Hashtbl.find_opt t.run_contents run_id with Some run -> run | None -> f ())

let load_run t (r : run_ref) =
  let memo = Conc.Rwlock.with_read t.run_lock (fun () -> Hashtbl.find_opt t.run_contents r.run_id) in
  match memo with
  | Some run -> Ok run
  | None ->
    (* Decode outside the mutex (chunk IO can be slow); racing decoders
       of the same run produce identical values, last one memoized. *)
    let* chunk = Result.map_error (fun e -> Chunk e) (Chunk.Chunk_store.get t.chunks r.loc) in
    let* run = Result.map_error (fun e -> Corrupt e) (Run.decode chunk.Chunk.Chunk_format.payload) in
    Ok (memo_run t r.run_id (fun () -> Hashtbl.replace t.run_contents r.run_id run; run))

let run_covers r key = String.compare r.min_key key <= 0 && String.compare key r.max_key <= 0

let find_entry t key =
  match Smap.find_opt key t.memtable with
  | Some (entry, _) ->
    Obs.Counter.incr t.m.m_get_memtable;
    Ok (Some entry)
  | None ->
    (* Only runs whose recorded range covers the key are loaded: all of
       L0's covering runs newest-first, then at most one run per deeper
       level (ranges there are disjoint). *)
    let rec search = function
      | [] -> Ok None
      | r :: rest when not (run_covers r key) -> search rest
      | r :: rest -> (
        let* run = load_run t r in
        match Run.find run key with
        | Some entry ->
          Obs.Counter.incr t.m.m_get_run;
          Ok (Some entry)
        | None -> search rest)
    in
    search (all_runs t)

let get t ~key =
  let* entry = find_entry t key in
  match entry with
  | Some (Entry.Put locs) -> Ok (Some locs)
  | Some Entry.Tombstone | None -> Ok None

(* {2 Scan cursors}

   A cursor is a k-way merge over snapshot sources captured at open: the
   memtable bindings (priority 0, newest) and the in-range slice of every
   run overlapping [lo, hi], in [all_runs] order (L0 newest-first, then
   deeper levels). All chunk IO happens at open; [cursor_next] is pure. *)

type source = { entries : (string * Entry.t) array; mutable pos : int }
type cursor = { sources : source list  (** priority order: head shadows tail *) }

let in_range ~lo ~hi k =
  (match lo with None -> true | Some l -> String.compare l k <= 0)
  && match hi with None -> true | Some h -> String.compare k h <= 0

let scan t ~lo ~hi =
  Obs.Counter.incr t.m.m_scans;
  let mem =
    Smap.fold (fun k (e, _) acc -> if in_range ~lo ~hi k then (k, e) :: acc else acc) t.memtable []
    |> List.rev |> Array.of_list
  in
  let overlapping r =
    (match lo with None -> true | Some l -> String.compare r.max_key l >= 0)
    && match hi with None -> true | Some h -> String.compare r.min_key h <= 0
  in
  let* run_sources =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        if not (overlapping r) then Ok acc
        else
          let* run = load_run t r in
          let entries =
            Run.to_list run |> List.filter (fun (k, _) -> in_range ~lo ~hi k) |> Array.of_list
          in
          Ok ({ entries; pos = 0 } :: acc))
      (Ok []) (all_runs t)
  in
  Ok { sources = { entries = mem; pos = 0 } :: List.rev run_sources }

let rec cursor_next c =
  let best =
    List.fold_left
      (fun best s ->
        if s.pos >= Array.length s.entries then best
        else
          let k = fst s.entries.(s.pos) in
          match best with Some b when String.compare b k <= 0 -> best | _ -> Some k)
      None c.sources
  in
  match best with
  | None -> None
  | Some k ->
    (* The first source holding [k] wins (newest shadow); every source
       holding [k] advances past it. *)
    let entry = ref None in
    List.iter
      (fun s ->
        if s.pos < Array.length s.entries && String.equal (fst s.entries.(s.pos)) k then begin
          if Option.is_none !entry then entry := Some (snd s.entries.(s.pos));
          s.pos <- s.pos + 1
        end)
      c.sources;
    (match !entry with
    | Some (Entry.Put locs) -> Some (k, locs)
    | Some Entry.Tombstone | None -> cursor_next c)

let keys t =
  let* c = scan t ~lo:None ~hi:None in
  let rec drain acc =
    match cursor_next c with None -> Ok (List.rev acc) | Some (k, _) -> drain (k :: acc)
  in
  drain []

(* {2 Metadata} *)

let encode_metadata t =
  let nlevels =
    let rec go i = if i = 0 then 0 else if t.levels.(i - 1) <> [] then i else go (i - 1) in
    go (Array.length t.levels)
  in
  let w = Codec.Writer.create ~capacity:(16 + (run_count t * 16)) () in
  Codec.Writer.uint w t.next_run_id;
  Codec.Writer.uint w nlevels;
  for i = 0 to nlevels - 1 do
    Codec.Writer.uint w (List.length t.levels.(i));
    List.iter
      (fun r ->
        Codec.Writer.uint w r.run_id;
        Chunk.Locator.encode w r.loc)
      t.levels.(i)
  done;
  Codec.Writer.contents w

(* Ranges are deliberately not persisted — a record stays O(1) bytes per
   run, so it keeps fitting its metadata extent as keys grow. Decoding
   yields per-level [(run_id, locator)] skeletons; {!recover} reloads each
   run's contents to recompute its range (the record's input dependency
   covered the run chunks, so a record that survived implies they did),
   then re-validates the per-level discipline before installing. *)
let decode_metadata payload =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string payload in
  let* next_run_id = Codec.Reader.uint r in
  let* nlevels = Codec.Reader.uint r in
  if nlevels < 0 || nlevels > 64 then Error (Codec.Invalid "level count")
  else begin
    let rec read_run_list acc i =
      if i = 0 then Ok (List.rev acc)
      else
        let* run_id = Codec.Reader.uint r in
        let* loc = Chunk.Locator.decode r in
        read_run_list ((run_id, loc) :: acc) (i - 1)
    in
    let rec read_levels acc i =
      if i = nlevels then
        let* () = Codec.Reader.expect_end r in
        Ok (List.rev acc)
      else
        let* count = Codec.Reader.uint r in
        if count < 0 || count > 1 lsl 16 then Error (Codec.Invalid "run count")
        else
          let* runs = read_run_list [] count in
          read_levels (runs :: acc) (i + 1)
    in
    let* levels = read_levels [] 0 in
    let ids = List.concat_map (List.map fst) levels in
    if List.length (List.sort_uniq compare ids) <> List.length ids then
      Error (Codec.Invalid "duplicate run id")
    else Ok (next_run_id, levels)
  end

let append_metadata t ~input =
  Result.map_error (fun e -> Roll e) (Logroll.append t.roll ~payload:(encode_metadata t) ~input)

(* Split key-sorted pairs into batches whose serialized run stays within
   the payload budget (at least one pair per batch). Each batch covers a
   contiguous key interval, so a multi-batch compaction output lands in a
   level >= 1 as range-disjoint runs by construction. *)
let batch_pairs t pairs =
  let rec go current current_size batches = function
    | [] -> List.rev (if current = [] then batches else List.rev current :: batches)
    | ((k, e) as pair) :: rest ->
      let size =
        let w = Codec.Writer.create () in
        Codec.Writer.lstring w k;
        Entry.encode w e;
        Codec.Writer.length w
      in
      if current <> [] && current_size + size > t.max_run_payload then
        go [ pair ] size (List.rev current :: batches) rest
      else go (pair :: current) (current_size + size) batches rest
  in
  go [] 4 [] pairs

(* Write one batch of pairs as a fresh run whose input dependency covers
   [input]. The caller installs the returned [run_ref] into a level. *)
let write_run t ~input pairs =
  Obs.Counter.incr t.m.m_runs_written;
  let run = Run.of_pairs pairs in
  let payload = Run.encode run in
  Obs.Counter.add t.m.m_run_bytes (String.length payload);
  let run_id = t.next_run_id in
  t.next_run_id <- run_id + 1;
  let* loc, run_dep =
    Result.map_error (fun e -> Chunk e)
      (Chunk.Chunk_store.put ~input t.chunks
         ~owner:(Chunk.Chunk_format.Index_run run_id) ~payload)
  in
  let min_key = match Run.min_key run with Some k -> k | None -> "" in
  let max_key = match Run.max_key run with Some k -> k | None -> "" in
  ignore (memo_run t run_id (fun () -> Hashtbl.replace t.run_contents run_id run; run));
  Ok ({ run_id; loc; dep = run_dep; min_key; max_key }, run_dep)

(* Write every batch, collecting the new refs; on failure the caller
   restores its saved levels (the partially written chunks become garbage
   for reclamation, exactly like a torn pre-levelling compaction). *)
let write_batches t ~input batches =
  List.fold_left
    (fun acc batch ->
      let* refs, dep = acc in
      let* rref, run_dep = write_run t ~input batch in
      Ok (rref :: refs, Dep.and_ dep run_dep))
    (Ok ([], Dep.trivial))
    batches

let flush t ~for_shutdown =
  if Smap.is_empty t.memtable then Ok Dep.trivial
  else begin
    let pairs = Smap.bindings t.memtable in
    let value_deps = Dep.all (List.map (fun (_, (_, d)) -> d) pairs) in
    let batches = batch_pairs t (List.map (fun (k, (e, _)) -> (k, e)) pairs) in
    let* refs, run_dep = write_batches t ~input:value_deps batches in
    List.iter (fun r -> t.levels.(0) <- r :: t.levels.(0)) (List.rev refs);
    (* Fault #3: metadata was not flushed correctly during shutdown if an
       extent was reset. *)
    let skip_metadata =
      for_shutdown && t.reset_seen && Faults.enabled Faults.F3_shutdown_skips_metadata
    in
    let* meta_dep =
      if skip_metadata then begin
        Faults.record_fired Faults.F3_shutdown_skips_metadata;
        Ok Dep.trivial
      end
      else append_metadata t ~input:run_dep
    in
    let dep = Dep.and_ run_dep meta_dep in
    Dep.Promise.bind t.flush_promise dep;
    t.flush_promise <- Dep.Promise.create ();
    t.memtable <- Smap.empty;
    t.memtable_count <- 0;
    t.reset_seen <- false;
    Obs.Counter.incr t.m.m_flushes;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"index" "flush" [ ("pairs", string_of_int (List.length pairs)) ];
    sync_gauges t;
    Ok dep
  end

(* {2 Compaction} *)

let ensure_level t i =
  if i >= Array.length t.levels then begin
    let bigger = Array.make (i + 1) [] in
    Array.blit t.levels 0 bigger 0 (Array.length t.levels);
    t.levels <- bigger
  end

(* Count capacity of level [i]: L0 holds [l0_trigger - 1] runs before a
   step fires; level [i >= 1] holds [level_ratio ^ i]. Saturating. *)
let capacity t i =
  if i = 0 then max 1 t.l0_trigger
  else begin
    let rec go acc j =
      if j = 0 then acc
      else if acc > max_int / t.level_ratio then max_int
      else go (acc * t.level_ratio) (j - 1)
    in
    go 1 i
  end

let overfull t i =
  let n = List.length t.levels.(i) in
  if i = 0 then t.l0_trigger > 0 && n >= t.l0_trigger else n > capacity t i

let first_overfull t =
  let rec go i = if i >= Array.length t.levels then None else if overfull t i then Some i else go (i + 1) in
  go 0

let compaction_due t = levelled t && first_overfull t <> None

let deepest_populated t =
  let rec go i = if i = 0 then None else if t.levels.(i - 1) <> [] then Some (i - 1) else go (i - 1) in
  go (Array.length t.levels)

(* One levelled step: merge a victim run of [level] into the overlapping
   runs of [level + 1]. Tombstones are dropped only when the target is the
   deepest populated level — anywhere else an older value could survive in
   a deeper run and be resurrected (the Run.merge contract). *)
let compact_step t ~level =
  let victim, remaining_src =
    if level = 0 then
      (* L0 runs overlap; evict the oldest so the newer ones keep
         shadowing it through the level order. *)
      match List.rev t.levels.(0) with
      | v :: rest_rev -> (v, List.rev rest_rev)
      | [] -> invalid_arg "compact_step: empty level"
    else
      match t.levels.(level) with
      | v :: rest -> (v, rest)
      | [] -> invalid_arg "compact_step: empty level"
  in
  let target = level + 1 in
  ensure_level t target;
  let overlapping, keep_target =
    List.partition
      (fun r ->
        not
          (String.compare r.max_key victim.min_key < 0
          || String.compare r.min_key victim.max_key > 0))
      t.levels.(target)
  in
  let drop_tombstones =
    match deepest_populated t with Some d -> d <= target | None -> true
  in
  let* contents =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* run = load_run t r in
        Ok (run :: acc))
      (Ok []) (victim :: overlapping)
  in
  let merged = Run.merge ~drop_tombstones (List.rev contents) in
  let source_deps = Dep.all (List.map (fun r -> r.dep) (victim :: overlapping)) in
  Obs.Counter.incr t.m.m_compact_partial;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"index" "compact.step"
      [
        ("level", string_of_int level);
        ("victim", string_of_int victim.run_id);
        ("overlap", string_of_int (List.length overlapping));
        ("drop_tombstones", string_of_bool drop_tombstones);
      ];
  if Run.is_empty merged then begin
    t.levels.(level) <- remaining_src;
    t.levels.(target) <- keep_target;
    sync_gauges t;
    append_metadata t ~input:source_deps
  end
  else begin
    (* Transactional: only commit the new level contents once every batch
       chunk is written; a mid-step failure (extent exhaustion) must not
       lose entries. *)
    let saved_src = t.levels.(level) and saved_target = t.levels.(target) in
    t.levels.(level) <- remaining_src;
    t.levels.(target) <- keep_target;
    let batches = batch_pairs t (Run.to_list merged) in
    match write_batches t ~input:source_deps batches with
    | Error e ->
      t.levels.(level) <- saved_src;
      t.levels.(target) <- saved_target;
      sync_gauges t;
      Error e
    | Ok (refs, run_dep) ->
      t.levels.(target) <-
        List.sort (fun a b -> String.compare a.min_key b.min_key) (refs @ keep_target);
      let* meta_dep = append_metadata t ~input:run_dep in
      sync_gauges t;
      Ok (Dep.and_ run_dep meta_dep)
  end

(* Monolithic compaction (l0_trigger = 0): merge every run into one
   generation, dropping tombstones — the pre-levelling behaviour, kept as
   the baseline arm of the write-amplification experiment (E15). *)
let compact_major t =
  match all_runs t with
  | [] | [ _ ] -> Ok Dep.trivial
  | runs ->
    let* contents =
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* run = load_run t r in
          Ok (run :: acc))
        (Ok []) runs
    in
    let merged = Run.merge ~drop_tombstones:true (List.rev contents) in
    let source_deps = Dep.all (List.map (fun r -> r.dep) runs) in
    if Run.is_empty merged then begin
      t.levels <- Array.make 1 [];
      sync_gauges t;
      append_metadata t ~input:source_deps
    end
    else begin
      let saved = t.levels in
      t.levels <- Array.make 1 [];
      let batches = batch_pairs t (Run.to_list merged) in
      match write_batches t ~input:source_deps batches with
      | Error e ->
        t.levels <- saved;
        sync_gauges t;
        Error e
      | Ok (refs, run_dep) ->
        t.levels.(0) <- List.rev refs;
        let* meta_dep = append_metadata t ~input:run_dep in
        sync_gauges t;
        Ok (Dep.and_ run_dep meta_dep)
    end

let lowest_populated t =
  let rec go i =
    if i >= Array.length t.levels then None else if t.levels.(i) <> [] then Some i else go (i + 1)
  in
  go 0

let compact t =
  if run_count t <= 1 then Ok Dep.trivial
  else begin
    Obs.Counter.incr t.m.m_compacts;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"index" "compact"
        [ ("runs", string_of_int (run_count t)); ("levels", string_of_int (level_count t)) ];
    if not (levelled t) then compact_major t
    else begin
      (* Drain every trigger; bounded so a pathological configuration
         cannot loop (each step strictly shrinks the overfull prefix). *)
      let rec drain dep steps =
        if steps >= 64 then Ok dep
        else
          match first_overfull t with
          | Some level ->
            let* d = compact_step t ~level in
            drain (Dep.and_ dep d) (steps + 1)
          | None -> Ok dep
      in
      if compaction_due t then drain Dep.trivial 0
      else begin
        (* Quiescent explicit compact: push one run down so repeated calls
           converge to a single fully-compacted level (the GC ladder and
           harness Compact ops rely on convergence to reclaim space). *)
        match (lowest_populated t, deepest_populated t) with
        | Some lo, Some hi when lo < hi -> compact_step t ~level:lo
        | Some 0, Some 0 -> compact_step t ~level:0
        | _ -> Ok Dep.trivial
      end
    end
  end

(* {2 Invariants}

   The composed per-level discipline, checkable at any point without IO:
   every level >= 1 is sorted by [min_key] with pairwise-disjoint ranges,
   ids are unique and below [next_run_id], and any memoized run content
   matches its recorded range. *)
let level_invariants t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let all = all_runs t in
  let ids = List.map (fun r -> r.run_id) all in
  if List.length (List.sort_uniq compare ids) <> List.length ids then err "duplicate run id"
  else if List.exists (fun id -> id >= t.next_run_id) ids then err "run id >= next_run_id"
  else if List.exists (fun r -> String.compare r.min_key r.max_key > 0) all then
    err "run with min_key > max_key"
  else begin
    let rec check_level i =
      if i >= Array.length t.levels then Ok ()
      else begin
        let rec disjoint = function
          | a :: (b :: _ as rest) ->
            if String.compare a.max_key b.min_key >= 0 then
              err "level %d: runs %d and %d overlap or are unordered" i a.run_id b.run_id
            else disjoint rest
          | _ -> Ok ()
        in
        let* () = if i = 0 then Ok () else disjoint t.levels.(i) in
        check_level (i + 1)
      end
    in
    let* () = check_level 0 in
    Conc.Rwlock.with_read t.run_lock (fun () ->
        List.fold_left
          (fun acc r ->
            let* () = acc in
            match Hashtbl.find_opt t.run_contents r.run_id with
            | None -> Ok ()
            | Some run -> (
              match (Run.min_key run, Run.max_key run) with
              | Some mn, Some mx when String.equal mn r.min_key && String.equal mx r.max_key ->
                Ok ()
              | _ -> err "run %d: memoized content range differs from metadata" r.run_id))
          (Ok ()) all)
  end

let update_locator t ~key ~old_loc ~new_loc ~new_dep =
  match Smap.find_opt key t.memtable with
  | Some (Entry.Put locs, dep) when List.exists (Chunk.Locator.equal old_loc) locs ->
    let locs =
      List.map (fun l -> if Chunk.Locator.equal l old_loc then new_loc else l) locs
    in
    ignore (stage t key (Entry.Put locs) (Dep.and_ dep new_dep));
    Dep.Promise.dep t.flush_promise
  | Some _ -> Dep.trivial
  | None -> (
    (* The entry lives in a run: shadow it through the memtable; the old
       run keeps the stale locator but the memtable entry wins, and the
       reset waits on this entry's flush. *)
    let rec search = function
      | [] -> Dep.trivial
      | r :: rest when not (run_covers r key) -> search rest
      | r :: rest -> (
        match load_run t r with
        | Error _ -> Dep.trivial
        | Ok run -> (
          match Run.find run key with
          | Some (Entry.Put locs) when List.exists (Chunk.Locator.equal old_loc) locs ->
            let locs =
              List.map (fun l -> if Chunk.Locator.equal l old_loc then new_loc else l) locs
            in
            ignore (stage t key (Entry.Put locs) new_dep);
            Dep.Promise.dep t.flush_promise
          | Some _ -> Dep.trivial
          | None -> search rest))
    in
    search (all_runs t))

let basis_dep t =
  let runs = Dep.all (List.map (fun r -> r.dep) (all_runs t)) in
  let meta = Logroll.last_record_dep t.roll in
  let memtable =
    if Smap.is_empty t.memtable then Dep.trivial else Dep.Promise.dep t.flush_promise
  in
  Dep.and_ runs (Dep.and_ meta memtable)

let relocate_run t ~run_id ~new_loc ~new_dep =
  match List.find_opt (fun r -> r.run_id = run_id) (all_runs t) with
  | None -> Ok Dep.trivial
  | Some r ->
    r.loc <- new_loc;
    append_metadata t ~input:new_dep

let recover t =
  Obs.Counter.incr t.m.m_recovers;
  t.memtable <- Smap.empty;
  t.memtable_count <- 0;
  t.flush_promise <- Dep.Promise.create ();
  Conc.Rwlock.with_write t.run_lock (fun () -> Hashtbl.reset t.run_contents);
  t.reset_seen <- false;
  let result =
    match Logroll.recover t.roll with
    | None ->
      t.levels <- Array.make 1 [];
      t.next_run_id <- 1;
      Ok ()
    | Some (_gen, payload) ->
      let* next_run_id, skeleton =
        Result.map_error (fun e -> Corrupt e) (decode_metadata payload)
      in
      (* Reload every run to recompute its range; the runs land memoized,
         so the recovered read path starts warm. *)
      let load_level lvl =
        List.fold_left
          (fun acc (run_id, loc) ->
            let* acc = acc in
            let* chunk =
              Result.map_error (fun e -> Chunk e) (Chunk.Chunk_store.get t.chunks loc)
            in
            let* run =
              Result.map_error (fun e -> Corrupt e)
                (Run.decode chunk.Chunk.Chunk_format.payload)
            in
            match (Run.min_key run, Run.max_key run) with
            | Some min_key, Some max_key ->
              ignore (memo_run t run_id (fun () -> Hashtbl.replace t.run_contents run_id run; run));
              Ok ({ run_id; loc; dep = Dep.trivial; min_key; max_key } :: acc)
            | _ -> Error (Corrupt (Codec.Invalid "empty run in metadata")))
          (Ok []) lvl
        |> Result.map List.rev
      in
      let* levels =
        List.fold_left
          (fun acc lvl ->
            let* acc = acc in
            let* runs = load_level lvl in
            Ok (runs :: acc))
          (Ok []) skeleton
        |> Result.map List.rev
      in
      (* The overlap-rejection gate: metadata describing an ill-formed
         tree (overlapping or unordered ranges in a level >= 1) is
         [Corrupt], never silently installed. *)
      let rec disjoint_levels i = function
        | [] -> Ok ()
        | runs :: deeper ->
          let rec disjoint = function
            | a :: (b :: _ as rest) ->
              if String.compare a.max_key b.min_key >= 0 then
                Error (Corrupt (Codec.Invalid "level runs overlap or are unordered"))
              else disjoint rest
            | _ -> Ok ()
          in
          let* () = if i = 0 then Ok () else disjoint runs in
          disjoint_levels (i + 1) deeper
      in
      let* () = disjoint_levels 0 levels in
      t.next_run_id <- next_run_id;
      t.levels <- (if levels = [] then Array.make 1 [] else Array.of_list levels);
      Ok ()
  in
  sync_gauges t;
  result
