open Util
module Smap = Map.Make (String)

type error =
  | Chunk of Chunk.Chunk_store.error
  | Roll of Logroll.error
  | Corrupt of Codec.error

let pp_error fmt = function
  | Chunk e -> Chunk.Chunk_store.pp_error fmt e
  | Roll e -> Logroll.pp_error fmt e
  | Corrupt e -> Codec.pp_error fmt e

let error_class = function
  | Chunk e -> Chunk.Chunk_store.error_class e
  | Roll e -> Logroll.error_class e
  | Corrupt _ -> `Fatal

let error_is_no_space = function
  | Chunk Chunk.Chunk_store.No_space -> true
  (* A metadata record outgrowing its extent is also resource pressure:
     compaction shrinks the run list and with it the record. *)
  | Roll (Logroll.Record_too_large _) -> true
  | Chunk _ | Roll _ | Corrupt _ -> false

type run_ref = {
  run_id : int;
  mutable loc : Chunk.Locator.t;
  dep : Dep.t;  (** dependency covering this run and its metadata record *)
}

type metrics = {
  m_puts : Obs.Counter.t;
  m_deletes : Obs.Counter.t;
  m_get_memtable : Obs.Counter.t;
  m_get_run : Obs.Counter.t;
  m_runs_written : Obs.Counter.t;
  m_flushes : Obs.Counter.t;
  m_compacts : Obs.Counter.t;
  m_recovers : Obs.Counter.t;
  m_memtable_size : Obs.Gauge.t;
  m_run_count : Obs.Gauge.t;
}

type t = {
  chunks : Chunk.Chunk_store.t;
  roll : Logroll.t;
  obs : Obs.t;
  m : metrics;
  mutable memtable : (Entry.t * Dep.t) Smap.t;
  mutable memtable_count : int;  (** [Smap.cardinal memtable], tracked O(1) *)
  mutable runs : run_ref list;  (** newest first *)
  mutable next_run_id : int;
  mutable flush_promise : Dep.Promise.promise;
  run_contents : (int, Run.t) Hashtbl.t;
  run_lock : Conc.Rwlock.t;
      (** guards [run_contents]: [load_run] memoizes decoded runs on the
          read path, so concurrent readers under a shard {e read} lock
          both reach this table — the one read-path mutation the shared
          store cannot exclude structurally. A validated [Conc.Rwlock]
          (reads share, memoization writes exclude); its own class
          ("lsm_run") is a leaf in the static lock-order graph *)
  mutable reset_seen : bool;
  max_run_payload : int;
}

let create ?(max_run_payload = 16 * 1024) ?obs chunks ~metadata_extents =
  let sched = Chunk.Chunk_store.sched chunks in
  let obs = match obs with Some o -> o | None -> Chunk.Chunk_store.obs chunks in
  {
    chunks;
    roll = Logroll.create ~obs sched ~extents:metadata_extents ~name:"lsm-metadata";
    obs;
    m =
      {
        m_puts = Obs.counter obs "index.put";
        m_deletes = Obs.counter obs "index.delete";
        m_get_memtable = Obs.counter ~coverage:true obs "index.get.memtable";
        m_get_run = Obs.counter ~coverage:true obs "index.get.run";
        m_runs_written = Obs.counter ~coverage:true obs "index.run_written";
        m_flushes = Obs.counter obs "index.flush";
        m_compacts = Obs.counter ~coverage:true obs "index.compact";
        m_recovers = Obs.counter obs "index.recover";
        m_memtable_size = Obs.gauge obs "index.memtable_size";
        m_run_count = Obs.gauge obs "index.run_count";
      };
    memtable = Smap.empty;
    memtable_count = 0;
    runs = [];
    next_run_id = 1;
    flush_promise = Dep.Promise.create ();
    run_contents = Hashtbl.create 16;
    run_lock = Conc.Rwlock.create ();
    reset_seen = false;
    max_run_payload;
  }

let obs t = t.obs
let memtable_size t = t.memtable_count
let run_count t = List.length t.runs

let sync_gauges t =
  Obs.Gauge.set_int t.m.m_memtable_size (memtable_size t);
  Obs.Gauge.set_int t.m.m_run_count (run_count t)

let note_extent_reset t = t.reset_seen <- true
let run_locators t = List.map (fun r -> (r.run_id, r.loc)) t.runs

let stage t key entry dep =
  if not (Smap.mem key t.memtable) then t.memtable_count <- t.memtable_count + 1;
  t.memtable <- Smap.add key (entry, dep) t.memtable;
  Obs.Gauge.set_int t.m.m_memtable_size t.memtable_count;
  Dep.and_ dep (Dep.Promise.dep t.flush_promise)

let put t ~key ~locators ~value_dep =
  Obs.Counter.incr t.m.m_puts;
  stage t key (Entry.Put locators) value_dep

let delete t ~key =
  Obs.Counter.incr t.m.m_deletes;
  stage t key Entry.Tombstone Dep.trivial

let ( let* ) = Result.bind

let memo_run t run_id f =
  Conc.Rwlock.with_write t.run_lock (fun () ->
      match Hashtbl.find_opt t.run_contents run_id with Some run -> run | None -> f ())

let load_run t (r : run_ref) =
  let memo = Conc.Rwlock.with_read t.run_lock (fun () -> Hashtbl.find_opt t.run_contents r.run_id) in
  match memo with
  | Some run -> Ok run
  | None ->
    (* Decode outside the mutex (chunk IO can be slow); racing decoders
       of the same run produce identical values, last one memoized. *)
    let* chunk = Result.map_error (fun e -> Chunk e) (Chunk.Chunk_store.get t.chunks r.loc) in
    let* run = Result.map_error (fun e -> Corrupt e) (Run.decode chunk.Chunk.Chunk_format.payload) in
    Ok (memo_run t r.run_id (fun () -> Hashtbl.replace t.run_contents r.run_id run; run))

let find_entry t key =
  match Smap.find_opt key t.memtable with
  | Some (entry, _) ->
    Obs.Counter.incr t.m.m_get_memtable;
    Ok (Some entry)
  | None ->
    let rec search = function
      | [] -> Ok None
      | r :: rest -> (
        let* run = load_run t r in
        match Run.find run key with
        | Some entry ->
          Obs.Counter.incr t.m.m_get_run;
          Ok (Some entry)
        | None -> search rest)
    in
    search t.runs

let get t ~key =
  let* entry = find_entry t key in
  match entry with
  | Some (Entry.Put locs) -> Ok (Some locs)
  | Some Entry.Tombstone | None -> Ok None

let keys t =
  let add_pair acc (k, entry) =
    match entry with
    | Entry.Put _ -> Smap.add k true acc
    | Entry.Tombstone -> Smap.add k false acc
  in
  (* Oldest runs first so newer bindings overwrite. *)
  let* from_runs =
    List.fold_left
      (fun acc r ->
        let* acc = acc in
        let* run = load_run t r in
        Ok (List.fold_left add_pair acc (Run.to_list run)))
      (Ok Smap.empty) (List.rev t.runs)
  in
  let all = Smap.fold (fun k (e, _) acc -> add_pair acc (k, e)) t.memtable from_runs in
  Ok (Smap.fold (fun k live acc -> if live then k :: acc else acc) all [] |> List.rev)

let encode_metadata t =
  let w = Codec.Writer.create ~capacity:(16 + (List.length t.runs * 40)) () in
  Codec.Writer.uint w t.next_run_id;
  Codec.Writer.u32 w (Int32.of_int (List.length t.runs));
  List.iter
    (fun r ->
      Codec.Writer.uint w r.run_id;
      Chunk.Locator.encode w r.loc)
    t.runs;
  Codec.Writer.contents w

let decode_metadata payload =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string payload in
  let* next_run_id = Codec.Reader.uint r in
  let* count32 = Codec.Reader.u32 r in
  let count = Int32.to_int count32 in
  if count < 0 || count > 1 lsl 16 then Error (Codec.Invalid "run count")
  else begin
    let rec go acc i =
      if i = count then
        let* () = Codec.Reader.expect_end r in
        Ok (next_run_id, List.rev acc)
      else
        let* run_id = Codec.Reader.uint r in
        let* loc = Chunk.Locator.decode r in
        go ((run_id, loc) :: acc) (i + 1)
    in
    go [] 0
  end

let append_metadata t ~input =
  Result.map_error (fun e -> Roll e) (Logroll.append t.roll ~payload:(encode_metadata t) ~input)

(* Split key-sorted pairs into batches whose serialized run stays within
   the payload budget (at least one pair per batch). *)
let batch_pairs t pairs =
  let rec go current current_size batches = function
    | [] -> List.rev (if current = [] then batches else List.rev current :: batches)
    | ((k, e) as pair) :: rest ->
      let size =
        let w = Codec.Writer.create () in
        Codec.Writer.lstring w k;
        Entry.encode w e;
        Codec.Writer.length w
      in
      if current <> [] && current_size + size > t.max_run_payload then
        go [ pair ] size (List.rev current :: batches) rest
      else go (pair :: current) (current_size + size) batches rest
  in
  go [] 4 [] pairs

(* Write one batch of pairs as a fresh run whose input dependency covers
   [input]. *)
let write_run t ~input pairs =
  Obs.Counter.incr t.m.m_runs_written;
  let run = Run.of_pairs pairs in
  let run_id = t.next_run_id in
  t.next_run_id <- run_id + 1;
  let* loc, run_dep =
    Result.map_error (fun e -> Chunk e)
      (Chunk.Chunk_store.put ~input t.chunks
         ~owner:(Chunk.Chunk_format.Index_run run_id) ~payload:(Run.encode run))
  in
  t.runs <- { run_id; loc; dep = run_dep } :: t.runs;
  ignore (memo_run t run_id (fun () -> Hashtbl.replace t.run_contents run_id run; run));
  Obs.Gauge.set_int t.m.m_run_count (run_count t);
  Ok run_dep

let flush t ~for_shutdown =
  if Smap.is_empty t.memtable then Ok Dep.trivial
  else begin
    let pairs = Smap.bindings t.memtable in
    let value_deps = Dep.all (List.map (fun (_, (_, d)) -> d) pairs) in
    let batches = batch_pairs t (List.map (fun (k, (e, _)) -> (k, e)) pairs) in
    let* run_dep =
      List.fold_left
        (fun acc batch ->
          let* acc = acc in
          let* dep = write_run t ~input:value_deps batch in
          Ok (Dep.and_ acc dep))
        (Ok Dep.trivial) batches
    in
    (* Fault #3: metadata was not flushed correctly during shutdown if an
       extent was reset. *)
    let skip_metadata =
      for_shutdown && t.reset_seen && Faults.enabled Faults.F3_shutdown_skips_metadata
    in
    let* meta_dep =
      if skip_metadata then begin
        Faults.record_fired Faults.F3_shutdown_skips_metadata;
        Ok Dep.trivial
      end
      else append_metadata t ~input:run_dep
    in
    let dep = Dep.and_ run_dep meta_dep in
    Dep.Promise.bind t.flush_promise dep;
    t.flush_promise <- Dep.Promise.create ();
    t.memtable <- Smap.empty;
    t.memtable_count <- 0;
    t.reset_seen <- false;
    Obs.Counter.incr t.m.m_flushes;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"index" "flush" [ ("pairs", string_of_int (List.length pairs)) ];
    sync_gauges t;
    Ok dep
  end

let compact t =
  match t.runs with
  | [] | [ _ ] -> Ok Dep.trivial
  | runs ->
    Obs.Counter.incr t.m.m_compacts;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"index" "compact" [ ("runs", string_of_int (List.length runs)) ];
    let* contents =
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          let* run = load_run t r in
          Ok (run :: acc))
        (Ok []) runs
    in
    let merged = Run.merge (List.rev contents) in
    let source_deps = Dep.all (List.map (fun r -> r.dep) runs) in
    if Run.is_empty merged then begin
      t.runs <- [];
      sync_gauges t;
      append_metadata t ~input:source_deps
    end
    else begin
      (* Transactional: only commit the new run list once every batch chunk
         is written; a mid-compaction failure (extent exhaustion) must not
         lose entries. Partially written batches become garbage chunks for
         reclamation. *)
      let saved = t.runs in
      t.runs <- [];
      let batches = batch_pairs t (Run.to_list merged) in
      let run_dep =
        List.fold_left
          (fun acc batch ->
            let* acc = acc in
            let* dep = write_run t ~input:source_deps batch in
            Ok (Dep.and_ acc dep))
          (Ok Dep.trivial) batches
      in
      match run_dep with
      | Error e ->
        t.runs <- saved;
        sync_gauges t;
        Error e
      | Ok run_dep ->
        let* meta_dep = append_metadata t ~input:run_dep in
        sync_gauges t;
        Ok (Dep.and_ run_dep meta_dep)
    end

let update_locator t ~key ~old_loc ~new_loc ~new_dep =
  match Smap.find_opt key t.memtable with
  | Some (Entry.Put locs, dep) when List.exists (Chunk.Locator.equal old_loc) locs ->
    let locs =
      List.map (fun l -> if Chunk.Locator.equal l old_loc then new_loc else l) locs
    in
    ignore (stage t key (Entry.Put locs) (Dep.and_ dep new_dep));
    Dep.Promise.dep t.flush_promise
  | Some _ -> Dep.trivial
  | None -> (
    (* The entry lives in a run: shadow it through the memtable; the old
       run keeps the stale locator but the memtable entry wins, and the
       reset waits on this entry's flush. *)
    let rec search = function
      | [] -> Dep.trivial
      | r :: rest -> (
        match load_run t r with
        | Error _ -> Dep.trivial
        | Ok run -> (
          match Run.find run key with
          | Some (Entry.Put locs) when List.exists (Chunk.Locator.equal old_loc) locs ->
            let locs =
              List.map (fun l -> if Chunk.Locator.equal l old_loc then new_loc else l) locs
            in
            ignore (stage t key (Entry.Put locs) new_dep);
            Dep.Promise.dep t.flush_promise
          | Some _ -> Dep.trivial
          | None -> search rest))
    in
    search t.runs)

let basis_dep t =
  let runs = Dep.all (List.map (fun r -> r.dep) t.runs) in
  let meta = Logroll.last_record_dep t.roll in
  let memtable =
    if Smap.is_empty t.memtable then Dep.trivial else Dep.Promise.dep t.flush_promise
  in
  Dep.and_ runs (Dep.and_ meta memtable)

let relocate_run t ~run_id ~new_loc ~new_dep =
  match List.find_opt (fun r -> r.run_id = run_id) t.runs with
  | None -> Ok Dep.trivial
  | Some r ->
    r.loc <- new_loc;
    append_metadata t ~input:new_dep

let recover t =
  Obs.Counter.incr t.m.m_recovers;
  t.memtable <- Smap.empty;
  t.memtable_count <- 0;
  t.flush_promise <- Dep.Promise.create ();
  Conc.Rwlock.with_write t.run_lock (fun () -> Hashtbl.reset t.run_contents);
  t.reset_seen <- false;
  let result =
    match Logroll.recover t.roll with
    | None ->
      t.runs <- [];
      t.next_run_id <- 1;
      Ok ()
    | Some (_gen, payload) ->
      let* next_run_id, runs = Result.map_error (fun e -> Corrupt e) (decode_metadata payload) in
      t.next_run_id <- next_run_id;
      t.runs <- List.map (fun (run_id, loc) -> { run_id; loc; dep = Dep.trivial }) runs;
      Ok ()
  in
  sync_gauges t;
  result
