(** Index entries: the value side of the shard-id → chunk-locators mapping
    (paper section 2.1 — shard data lives outside the tree, WiscKey-style,
    so entries hold locator lists, not data). *)

type t =
  | Put of Chunk.Locator.t list  (** chunks holding the shard, in order *)
  | Tombstone  (** the shard was deleted *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> (t, Util.Codec.error) result
