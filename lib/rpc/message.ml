open Util

type batch_op =
  | Batch_put of { key : string; value : string }
  | Batch_delete of { key : string }

type request =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Delete of { key : string }
  | List
  | Remove_disk of { disk : int }
  | Return_disk of { disk : int }
  | Bulk_delete of { keys : string list }
  | Migrate of { key : string; to_disk : int }
  | Node_stats
  | Batch_request of { ops : batch_op list }
  | Scan_request of {
      lo : string option;
      hi : string option;
      after : string option;
      max_results : int;
    }

type metric = {
  metric_name : string;
  labels : (string * string) list;
  value : float;
}

type op_status = Op_ok | Op_error of string | Op_quorum of { acked : int }

type response =
  | Ack
  | Value of string option
  | Keys of string list
  | Stats of { disks : int; in_service : int; keys : int; metrics : metric list }
  | Error_response of string
  | Batch_response of { statuses : op_status list }
  | Quorum_ack of { acked : int; lagging : int list }
  | Scan_response of { items : (string * string) list; more : bool }

let pp_request fmt = function
  | Put { key; value } -> Format.fprintf fmt "put %S (%d bytes)" key (String.length value)
  | Get { key } -> Format.fprintf fmt "get %S" key
  | Delete { key } -> Format.fprintf fmt "delete %S" key
  | List -> Format.pp_print_string fmt "list"
  | Remove_disk { disk } -> Format.fprintf fmt "remove-disk %d" disk
  | Return_disk { disk } -> Format.fprintf fmt "return-disk %d" disk
  | Bulk_delete { keys } -> Format.fprintf fmt "bulk-delete (%d keys)" (List.length keys)
  | Migrate { key; to_disk } -> Format.fprintf fmt "migrate %S -> disk %d" key to_disk
  | Node_stats -> Format.pp_print_string fmt "stats"
  | Batch_request { ops } ->
    let puts =
      List.length (List.filter (function Batch_put _ -> true | Batch_delete _ -> false) ops)
    in
    Format.fprintf fmt "batch (%d ops: %d puts, %d deletes)" (List.length ops) puts
      (List.length ops - puts)
  | Scan_request { lo; hi; after; max_results } ->
    let b = function None -> "-" | Some k -> Printf.sprintf "%S" k in
    Format.fprintf fmt "scan [%s, %s] after %s max %d" (b lo) (b hi) (b after) max_results

let pp_response fmt = function
  | Ack -> Format.pp_print_string fmt "ack"
  | Value None -> Format.pp_print_string fmt "value: none"
  | Value (Some v) -> Format.fprintf fmt "value: %d bytes" (String.length v)
  | Keys keys -> Format.fprintf fmt "keys: %d" (List.length keys)
  | Stats { disks; in_service; keys; metrics } ->
    Format.fprintf fmt "stats: %d disks (%d in service), %d keys, %d metrics" disks in_service
      keys (List.length metrics)
  | Error_response msg -> Format.fprintf fmt "error: %s" msg
  | Batch_response { statuses } ->
    let failed =
      List.length
        (List.filter (function Op_error _ -> true | Op_ok | Op_quorum _ -> false) statuses)
    in
    Format.fprintf fmt "batch: %d statuses (%d failed)" (List.length statuses) failed
  | Quorum_ack { acked; lagging } ->
    Format.fprintf fmt "quorum-ack: %d replicas (%d lagging)" acked (List.length lagging)
  | Scan_response { items; more } ->
    Format.fprintf fmt "scan page: %d items%s" (List.length items) (if more then " (more)" else "")

let request_equal = Stdlib.( = )
let response_equal = Stdlib.( = )

let magic = "SR"
let max_keys = 1 lsl 20
let max_batch_ops = 1 lsl 16
let max_op_key_bytes = 4096
let max_op_value_bytes = 256 * 1024
let max_lagging_nodes = 4096
let max_scan_items = 1 lsl 16

let encode_strings w keys =
  Codec.Writer.u32 w (Int32.of_int (List.length keys));
  List.iter (Codec.Writer.lstring w) keys

(* Optional strings travel as a one-byte presence flag + lstring, so the
   empty string and "absent" stay distinguishable on the wire. *)
let encode_opt_string w = function
  | None -> Codec.Writer.u8 w 0
  | Some s ->
    Codec.Writer.u8 w 1;
    Codec.Writer.lstring w s

let decode_opt_string r =
  let open Codec.Syntax in
  let* present = Codec.Reader.u8 r in
  match present with
  | 0 -> Ok None
  | 1 ->
    let+ s = Codec.Reader.lstring r in
    Some s
  | _ -> Error (Codec.Invalid "option presence flag")

let decode_strings r =
  let open Codec.Syntax in
  let* count32 = Codec.Reader.u32 r in
  let count = Int32.to_int count32 in
  if count < 0 || count > max_keys then Error (Codec.Invalid "string count")
  else begin
    let rec go acc i =
      if i = count then Ok (List.rev acc)
      else
        let* s = Codec.Reader.lstring r in
        go (s :: acc) (i + 1)
    in
    go [] 0
  end

let max_metrics = 1 lsl 16
let max_labels = 64

(* Values travel as IEEE-754 bits so floats round-trip exactly. *)
let encode_metric w m =
  Codec.Writer.lstring w m.metric_name;
  Codec.Writer.u8 w (List.length m.labels);
  List.iter
    (fun (k, v) ->
      Codec.Writer.lstring w k;
      Codec.Writer.lstring w v)
    m.labels;
  Codec.Writer.u64 w (Int64.bits_of_float m.value)

let decode_metric r =
  let open Codec.Syntax in
  let* metric_name = Codec.Reader.lstring r in
  let* nlabels = Codec.Reader.u8 r in
  if nlabels > max_labels then Error (Codec.Invalid "label count")
  else begin
    let rec labels acc i =
      if i = nlabels then Ok (List.rev acc)
      else
        let* k = Codec.Reader.lstring r in
        let* v = Codec.Reader.lstring r in
        labels ((k, v) :: acc) (i + 1)
    in
    let* labels = labels [] 0 in
    let+ bits = Codec.Reader.u64 r in
    { metric_name; labels; value = Int64.float_of_bits bits }
  end

let encode_metrics w metrics =
  Codec.Writer.u32 w (Int32.of_int (List.length metrics));
  List.iter (encode_metric w) metrics

let decode_metrics r =
  let open Codec.Syntax in
  let* count32 = Codec.Reader.u32 r in
  let count = Int32.to_int count32 in
  if count < 0 || count > max_metrics then Error (Codec.Invalid "metric count")
  else begin
    let rec go acc i =
      if i = count then Ok (List.rev acc)
      else
        let* m = decode_metric r in
        go (m :: acc) (i + 1)
    in
    go [] 0
  end

let encode_batch_op w = function
  | Batch_put { key; value } ->
    Codec.Writer.u8 w 0;
    Codec.Writer.lstring w key;
    Codec.Writer.lstring w value
  | Batch_delete { key } ->
    Codec.Writer.u8 w 1;
    Codec.Writer.lstring w key

let decode_batch_op r =
  let open Codec.Syntax in
  let* kind = Codec.Reader.u8 r in
  match kind with
  | 0 ->
    let* key = Codec.Reader.lstring r in
    let+ value = Codec.Reader.lstring r in
    Batch_put { key; value }
  | 1 ->
    let+ key = Codec.Reader.lstring r in
    Batch_delete { key }
  | _ -> Error (Codec.Invalid "batch op kind")

let encode_batch_ops w ops =
  Codec.Writer.u32 w (Int32.of_int (List.length ops));
  List.iter (encode_batch_op w) ops

let decode_batch_ops r =
  let open Codec.Syntax in
  let* count32 = Codec.Reader.u32 r in
  let count = Int32.to_int count32 in
  if count < 0 || count > max_batch_ops then Error (Codec.Invalid "batch op count")
  else begin
    let rec go acc i =
      if i = count then Ok (List.rev acc)
      else
        let* op = decode_batch_op r in
        go (op :: acc) (i + 1)
    in
    go [] 0
  end

let encode_statuses w statuses =
  Codec.Writer.u32 w (Int32.of_int (List.length statuses));
  List.iter
    (fun s ->
      match s with
      | Op_ok -> Codec.Writer.u8 w 0
      | Op_error msg ->
        Codec.Writer.u8 w 1;
        Codec.Writer.lstring w msg
      | Op_quorum { acked } ->
        Codec.Writer.u8 w 2;
        Codec.Writer.uint w acked)
    statuses

let decode_statuses r =
  let open Codec.Syntax in
  let* count32 = Codec.Reader.u32 r in
  let count = Int32.to_int count32 in
  if count < 0 || count > max_batch_ops then Error (Codec.Invalid "status count")
  else begin
    let rec go acc i =
      if i = count then Ok (List.rev acc)
      else
        let* tag = Codec.Reader.u8 r in
        match tag with
        | 0 -> go (Op_ok :: acc) (i + 1)
        | 1 ->
          let* msg = Codec.Reader.lstring r in
          go (Op_error msg :: acc) (i + 1)
        | 2 ->
          let* acked = Codec.Reader.uint r in
          go (Op_quorum { acked } :: acc) (i + 1)
        | _ -> Error (Codec.Invalid "op status tag")
    in
    go [] 0
  end

let with_frame body =
  let w = Codec.Writer.create () in
  Codec.Writer.raw_string w magic;
  body w;
  Codec.Writer.contents w

let encode_request req =
  with_frame (fun w ->
      match req with
      | Put { key; value } ->
        Codec.Writer.u8 w 0;
        Codec.Writer.lstring w key;
        Codec.Writer.lstring w value
      | Get { key } ->
        Codec.Writer.u8 w 1;
        Codec.Writer.lstring w key
      | Delete { key } ->
        Codec.Writer.u8 w 2;
        Codec.Writer.lstring w key
      | List -> Codec.Writer.u8 w 3
      | Remove_disk { disk } ->
        Codec.Writer.u8 w 4;
        Codec.Writer.uint w disk
      | Return_disk { disk } ->
        Codec.Writer.u8 w 5;
        Codec.Writer.uint w disk
      | Bulk_delete { keys } ->
        Codec.Writer.u8 w 6;
        encode_strings w keys
      | Node_stats -> Codec.Writer.u8 w 7
      | Migrate { key; to_disk } ->
        Codec.Writer.u8 w 8;
        Codec.Writer.lstring w key;
        Codec.Writer.uint w to_disk
      | Batch_request { ops } ->
        Codec.Writer.u8 w 9;
        encode_batch_ops w ops
      | Scan_request { lo; hi; after; max_results } ->
        Codec.Writer.u8 w 10;
        encode_opt_string w lo;
        encode_opt_string w hi;
        encode_opt_string w after;
        Codec.Writer.uint w max_results)

let decode_request s =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string s in
  let* () = Codec.Reader.magic r magic in
  let* tag = Codec.Reader.u8 r in
  let* req =
    match tag with
    | 0 ->
      let* key = Codec.Reader.lstring r in
      let+ value = Codec.Reader.lstring r in
      Put { key; value }
    | 1 ->
      let+ key = Codec.Reader.lstring r in
      Get { key }
    | 2 ->
      let+ key = Codec.Reader.lstring r in
      Delete { key }
    | 3 -> Ok List
    | 4 ->
      let+ disk = Codec.Reader.uint r in
      Remove_disk { disk }
    | 5 ->
      let+ disk = Codec.Reader.uint r in
      Return_disk { disk }
    | 6 ->
      let+ keys = decode_strings r in
      Bulk_delete { keys }
    | 7 -> Ok Node_stats
    | 8 ->
      let* key = Codec.Reader.lstring r in
      let+ to_disk = Codec.Reader.uint r in
      Migrate { key; to_disk }
    | 9 ->
      let+ ops = decode_batch_ops r in
      Batch_request { ops }
    | 10 ->
      let* lo = decode_opt_string r in
      let* hi = decode_opt_string r in
      let* after = decode_opt_string r in
      let* max_results = Codec.Reader.uint r in
      if max_results < 0 || max_results > max_scan_items then
        Error (Codec.Invalid "scan max_results")
      else Ok (Scan_request { lo; hi; after; max_results })
    | _ -> Error (Codec.Invalid "request tag")
  in
  let* () = Codec.Reader.expect_end r in
  Ok req

let encode_response resp =
  with_frame (fun w ->
      match resp with
      | Ack -> Codec.Writer.u8 w 0
      | Value None ->
        Codec.Writer.u8 w 1;
        Codec.Writer.u8 w 0
      | Value (Some v) ->
        Codec.Writer.u8 w 1;
        Codec.Writer.u8 w 1;
        Codec.Writer.lstring w v
      | Keys keys ->
        Codec.Writer.u8 w 2;
        encode_strings w keys
      | Stats { disks; in_service; keys; metrics } ->
        Codec.Writer.u8 w 3;
        Codec.Writer.uint w disks;
        Codec.Writer.uint w in_service;
        Codec.Writer.uint w keys;
        encode_metrics w metrics
      | Error_response msg ->
        Codec.Writer.u8 w 4;
        Codec.Writer.lstring w msg
      | Batch_response { statuses } ->
        Codec.Writer.u8 w 5;
        encode_statuses w statuses
      | Quorum_ack { acked; lagging } ->
        Codec.Writer.u8 w 6;
        Codec.Writer.uint w acked;
        Codec.Writer.u32 w (Int32.of_int (List.length lagging));
        List.iter (Codec.Writer.uint w) lagging
      | Scan_response { items; more } ->
        Codec.Writer.u8 w 7;
        Codec.Writer.u8 w (if more then 1 else 0);
        Codec.Writer.u32 w (Int32.of_int (List.length items));
        List.iter
          (fun (k, v) ->
            Codec.Writer.lstring w k;
            Codec.Writer.lstring w v)
          items)

let decode_response s =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string s in
  let* () = Codec.Reader.magic r magic in
  let* tag = Codec.Reader.u8 r in
  let* resp =
    match tag with
    | 0 -> Ok Ack
    | 1 -> (
      let* present = Codec.Reader.u8 r in
      match present with
      | 0 -> Ok (Value None)
      | 1 ->
        let+ v = Codec.Reader.lstring r in
        Value (Some v)
      | _ -> Error (Codec.Invalid "value presence flag"))
    | 2 ->
      let+ keys = decode_strings r in
      Keys keys
    | 3 ->
      let* disks = Codec.Reader.uint r in
      let* in_service = Codec.Reader.uint r in
      let* keys = Codec.Reader.uint r in
      let+ metrics = decode_metrics r in
      Stats { disks; in_service; keys; metrics }
    | 4 ->
      let+ msg = Codec.Reader.lstring r in
      Error_response msg
    | 5 ->
      let+ statuses = decode_statuses r in
      Batch_response { statuses }
    | 6 ->
      let* acked = Codec.Reader.uint r in
      let* count32 = Codec.Reader.u32 r in
      let count = Int32.to_int count32 in
      if count < 0 || count > max_lagging_nodes then Error (Codec.Invalid "lagging count")
      else begin
        let rec go acc i =
          if i = count then Ok (Quorum_ack { acked; lagging = List.rev acc })
          else
            let* node = Codec.Reader.uint r in
            go (node :: acc) (i + 1)
        in
        go [] 0
      end
    | 7 -> (
      let* more_flag = Codec.Reader.u8 r in
      let* more =
        match more_flag with
        | 0 -> Ok false
        | 1 -> Ok true
        | _ -> Error (Codec.Invalid "scan more flag")
      in
      let* count32 = Codec.Reader.u32 r in
      let count = Int32.to_int count32 in
      if count < 0 || count > max_scan_items then Error (Codec.Invalid "scan item count")
      else begin
        let rec go acc i =
          if i = count then Ok (Scan_response { items = List.rev acc; more })
          else
            let* k = Codec.Reader.lstring r in
            let* v = Codec.Reader.lstring r in
            go ((k, v) :: acc) (i + 1)
        in
        go [] 0
      end)
    | _ -> Error (Codec.Invalid "response tag")
  in
  let* () = Codec.Reader.expect_end r in
  Ok resp
