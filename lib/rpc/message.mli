(** The storage node's wire protocol.

    ShardStore runs on hosts with many disks behind a shared RPC interface
    that steers requests to target disks (paper section 2.1): request-plane
    calls (put/get/delete) and control-plane operations for migration and
    repair. Decoders are total — on-wire bytes are untrusted, and the
    paper's section 7 requires deserializers that cannot crash on any
    input; [prop_decode_total] in the test suite checks exactly that. *)

(** One operation of a {!Batch_request}. *)
type batch_op =
  | Batch_put of { key : string; value : string }
  | Batch_delete of { key : string }

type request =
  | Put of { key : string; value : string }
  | Get of { key : string }
  | Delete of { key : string }
  | List
  | Remove_disk of { disk : int }  (** control plane: take a disk out of service *)
  | Return_disk of { disk : int }
  | Bulk_delete of { keys : string list }
  | Migrate of { key : string; to_disk : int }
      (** control plane: move a shard to another disk (repair/rebalance) *)
  | Node_stats
  | Batch_request of { ops : batch_op list }
      (** group-committed mutations; answered with {!Batch_response}
          carrying one {!op_status} per op, in order *)
  | Scan_request of {
      lo : string option;
      hi : string option;
      after : string option;
      max_results : int;
    }
      (** paginated range scan over [lo <= key <= hi] ([None] = unbounded):
          the node returns up to [max_results] (clamped to
          {!max_scan_items}) key/value pairs strictly after [after] (the
          continuation token — the last key of the previous page), answered
          with {!Scan_response} *)

(** One flattened metric sample from a disk's {!Obs} registry. Counters
    and gauges ship their value; histograms ship [.count] / [.sum]
    samples. Floats round-trip exactly (encoded as IEEE-754 bits). *)
type metric = {
  metric_name : string;
  labels : (string * string) list;
  value : float;
}

(** Per-op outcome inside a {!Batch_response}: a bad op fails alone, the
    rest of the batch is unaffected. [Op_quorum] is a degraded success —
    the op is durable on [acked] replicas (at least the write quorum) but
    not yet on all of them; repair will converge the laggards. *)
type op_status = Op_ok | Op_error of string | Op_quorum of { acked : int }

type response =
  | Ack
  | Value of string option
  | Keys of string list
  | Stats of { disks : int; in_service : int; keys : int; metrics : metric list }
  | Error_response of string
  | Batch_response of { statuses : op_status list }
  | Quorum_ack of { acked : int; lagging : int list }
      (** degraded-mode write acknowledgement: durable on [acked] replicas
          (>= write quorum) with [lagging] node ids still owed the write *)
  | Scan_response of { items : (string * string) list; more : bool }
      (** one scan page, keys ascending; [more] means another page exists —
          continue with [after = last key of items] *)

(** {2 Protocol limits}

    Decoders stay total and structural; semantic limits are enforced at
    dispatch ({!Node.handle}) so one oversized op yields a per-op error
    without poisoning its batch. *)

(** Most ops a [Batch_request] / statuses a [Batch_response] may carry
    (decoders reject larger counts outright — the count prefix itself is
    untrusted). *)
val max_batch_ops : int

(** Longest key {!Node.handle} accepts in a batch op. *)
val max_op_key_bytes : int

(** Largest value {!Node.handle} accepts in a batch op. *)
val max_op_value_bytes : int

(** Most lagging-replica ids a {!Quorum_ack} may carry on the wire. *)
val max_lagging_nodes : int

(** Most items one {!Scan_response} page may carry (and the cap
    [max_results] is clamped to). *)
val max_scan_items : int

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
val request_equal : request -> request -> bool
val response_equal : response -> response -> bool
val encode_request : request -> string
val decode_request : string -> (request, Util.Codec.error) result
val encode_response : response -> string
val decode_response : string -> (response, Util.Codec.error) result
