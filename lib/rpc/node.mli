(** A multi-disk ShardStore storage node behind the RPC interface.

    Each disk is an isolated failure domain running an independent
    key-value store; requests are steered to disks by shard id
    (paper section 2.1). *)

type t

(** [create ?disks ?obs config] — [disks] independent stores (default 4).
    RPC-layer counters ([rpc.request] labelled by request kind, and
    [rpc.error]) land in [obs] or a fresh rpc-scoped registry; each disk's
    store keeps its own per-instance registry (see {!store_obs}). *)
val create : ?disks:int -> ?obs:Obs.t -> Store.Default.config -> t

val disk_count : t -> int

(** The RPC-layer registry. *)
val obs : t -> Obs.t

(** [store_obs t ~disk] — one disk's store registry; [Node_stats] flattens
    these into {!Message.metric} samples labelled [("disk", i)]. *)
val store_obs : t -> disk:int -> Obs.t

(** Deterministic steering: the disk serving a key, honouring explicit
    migrations. *)
val disk_of_key : t -> string -> int

(** Direct access to one disk's store (tests, maintenance). *)
val store : t -> disk:int -> Store.Default.t

(** [handle t req] — dispatch one request. Implementation failures map to
    [Error_response]; no exception escapes. *)
val handle : t -> Message.request -> Message.response

(** [handle_wire t bytes] — decode, dispatch, encode. Corrupt requests get
    an encoded [Error_response]. *)
val handle_wire : t -> string -> string

(** Run background maintenance (pump, flush cadences) on every disk. *)
val tick : t -> unit
