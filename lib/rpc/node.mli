(** A multi-disk ShardStore storage node behind the RPC interface.

    Each disk is an isolated failure domain running an independent
    key-value store; requests are steered to disks by shard id
    (paper section 2.1). *)

type t

(** [create ?obs ?trace ?disks config] — [disks] independent stores
    (default 4). RPC-layer counters ([rpc.request] labelled by request
    kind, [rpc.error], [rpc.tick_error] and the [rpc.batch_ops]
    histogram) land in [obs] or a fresh rpc-scoped registry; each disk's
    store keeps its own per-instance registry (see {!store_obs}). Per
    the repo convention (see [lib/obs/obs.mli]), [?obs] is the first
    optional argument. [?trace] attaches a wire-trace recorder
    ({!Tracecheck.Trace.Recorder}, src ["rpc"]): data-plane requests
    (put/get/delete/batch/scan) are recorded as invocation/response
    intervals — a paginated scan records its effective lower bound and
    marks only a token-free, unsaturated page [complete] — for offline
    audit by {!Tracecheck.Audit}. *)
val create :
  ?obs:Obs.t -> ?trace:Tracecheck.Trace.Recorder.t -> ?disks:int -> Store.Default.config -> t

val disk_count : t -> int

(** The RPC-layer registry. *)
val obs : t -> Obs.t

(** [store_obs t ~disk] — one disk's store registry; [Node_stats] flattens
    these into {!Message.metric} samples labelled [("disk", i)]. *)
val store_obs : t -> disk:int -> Obs.t

(** Deterministic steering: the disk serving a key, honouring explicit
    migrations. *)
val disk_of_key : t -> string -> int

(** Direct access to one disk's store (tests, maintenance). *)
val store : t -> disk:int -> Store.Default.t

(** [handle t req] — dispatch one request. Implementation failures map to
    [Error_response]; no exception escapes.

    [Batch_request] dispatch: each op is validated (empty / oversized keys
    and values per {!Message.max_op_key_bytes} and
    {!Message.max_op_value_bytes}) — a bad op gets its own [Op_error] and
    the rest proceed; valid ops are grouped by target disk (request order
    preserved per disk), maximal same-kind runs go through
    [Store.put_batch] / [Store.delete_batch] group commit, and the
    response carries one status per op in request order. *)
val handle : t -> Message.request -> Message.response

(** [handle_wire t bytes] — decode, dispatch, encode. Corrupt requests get
    an encoded [Error_response]. *)
val handle_wire : t -> string -> string

(** What one maintenance tick did: how many disks were visited, how many
    per-disk flush failures occurred (also counted under [rpc.tick_error])
    and how many writeback IOs were pumped. *)
type tick_report = { disks : int; errors : int; ios_pumped : int }

(** Run background maintenance (pump, flush cadences) on every disk.
    Failures are reported, not swallowed: each failed flush bumps
    [rpc.tick_error] and shows up in the report. *)
val tick : t -> tick_report
