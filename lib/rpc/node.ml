module S = Store.Default

type t = {
  stores : S.t array;
  (* Explicit placements from control-plane migrations override hashing;
     in S3 this mapping lives in the metadata subsystem. *)
  placements : (string, int) Hashtbl.t;
  trace : Tracecheck.Trace.Recorder.t option;
  obs : Obs.t;
  m_errors : Obs.Counter.t;
  m_tick_errors : Obs.Counter.t;
  m_batch_ops : Obs.Histogram.t;
}

let create ?obs ?trace ?(disks = 4) (config : S.config) =
  if disks <= 0 then invalid_arg "Node.create: need at least one disk";
  let obs = match obs with Some o -> o | None -> Obs.create ~scope:"rpc" () in
  {
    stores =
      Array.init disks (fun i ->
          S.create { config with S.seed = Int64.add config.S.seed (Int64.of_int i) });
    placements = Hashtbl.create 16;
    trace;
    obs;
    m_errors = Obs.counter obs "rpc.error";
    m_tick_errors = Obs.counter obs "rpc.tick_error";
    m_batch_ops =
      Obs.histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ] obs "rpc.batch_ops";
  }

let disk_count t = Array.length t.stores
let obs t = t.obs
let store_obs t ~disk = S.obs t.stores.(disk)

let request_kind = function
  | Message.Put _ -> "put"
  | Message.Get _ -> "get"
  | Message.Delete _ -> "delete"
  | Message.List -> "list"
  | Message.Remove_disk _ -> "remove_disk"
  | Message.Return_disk _ -> "return_disk"
  | Message.Bulk_delete _ -> "bulk_delete"
  | Message.Migrate _ -> "migrate"
  | Message.Node_stats -> "node_stats"
  | Message.Batch_request _ -> "batch"
  | Message.Scan_request _ -> "scan"

let disk_of_key t key =
  match Hashtbl.find_opt t.placements key with
  | Some disk -> disk
  | None ->
    Int32.to_int (Int32.logand (Util.Crc32.digest_string key) 0x7FFFFFFFl)
    mod Array.length t.stores

let store t ~disk =
  if disk < 0 || disk >= Array.length t.stores then invalid_arg "Node.store: bad disk";
  t.stores.(disk)

let err fmt = Format.kasprintf (fun msg -> Message.Error_response msg) fmt

(* Flatten one store's registry into wire samples tagged with its disk
   slot; histograms ship their [.count] / [.sum] moments. *)
let metrics_of_store ~disk store =
  let labels ls = ("disk", string_of_int disk) :: ls in
  List.concat_map
    (fun (s : Obs.sample) ->
      match s.Obs.value with
      | Obs.Counter_v n ->
        [ { Message.metric_name = s.Obs.name; labels = labels s.Obs.labels; value = float_of_int n } ]
      | Obs.Gauge_v v -> [ { Message.metric_name = s.Obs.name; labels = labels s.Obs.labels; value = v } ]
      | Obs.Histogram_v { count; sum; _ } ->
        [
          {
            Message.metric_name = s.Obs.name ^ ".count";
            labels = labels s.Obs.labels;
            value = float_of_int count;
          };
          { Message.metric_name = s.Obs.name ^ ".sum"; labels = labels s.Obs.labels; value = sum };
        ])
    (Obs.snapshot (S.obs store))

let handle_inner t req =
  match req with
  | Message.Put { key; value } -> (
    match S.put t.stores.(disk_of_key t key) ~key ~value with
    | Ok _ -> Message.Ack
    | Error e -> err "%a" S.pp_error e)
  | Message.Get { key } -> (
    match S.get t.stores.(disk_of_key t key) ~key with
    | Ok v -> Message.Value v
    | Error e -> err "%a" S.pp_error e)
  | Message.Delete { key } -> (
    match S.delete t.stores.(disk_of_key t key) ~key with
    | Ok _ -> Message.Ack
    | Error e -> err "%a" S.pp_error e)
  | Message.List -> (
    (* Union over in-service disks; an out-of-service disk makes the
       listing partial, which the control plane must know about. *)
    let out_of_service =
      Array.exists (fun s -> not (S.in_service s)) t.stores
    in
    if out_of_service then err "listing unavailable: some disks out of service"
    else
      let rec collect i acc =
        if i = Array.length t.stores then Ok acc
        else
          match S.list t.stores.(i) with
          | Ok keys -> collect (i + 1) (List.rev_append keys acc)
          | Error e -> Error e
      in
      match collect 0 [] with
      | Ok keys -> Message.Keys (List.sort String.compare keys)
      | Error e -> err "%a" S.pp_error e)
  | Message.Remove_disk { disk } -> (
    if disk < 0 || disk >= Array.length t.stores then err "no such disk %d" disk
    else
      match S.remove_from_service t.stores.(disk) with
      | Ok () -> Message.Ack
      | Error e -> err "%a" S.pp_error e)
  | Message.Return_disk { disk } -> (
    if disk < 0 || disk >= Array.length t.stores then err "no such disk %d" disk
    else
      match S.return_to_service t.stores.(disk) with
      | Ok () -> Message.Ack
      | Error e -> err "%a" S.pp_error e)
  | Message.Bulk_delete { keys } -> (
    let rec go = function
      | [] -> Message.Ack
      | key :: rest -> (
        match S.delete t.stores.(disk_of_key t key) ~key with
        | Ok _ -> go rest
        | Error e -> err "bulk delete %S: %a" key S.pp_error e)
    in
    go keys)
  | Message.Migrate { key; to_disk } ->
    if to_disk < 0 || to_disk >= Array.length t.stores then err "no such disk %d" to_disk
    else begin
      let from_disk = disk_of_key t key in
      if from_disk = to_disk then Message.Ack
      else begin
        (* Copy, commit the new placement, then delete the source copy —
           the shard is reachable at every step. *)
        match S.get t.stores.(from_disk) ~key with
        | Error e -> err "%a" S.pp_error e
        | Ok None -> err "no such shard %S" key
        | Ok (Some value) -> (
          match S.put t.stores.(to_disk) ~key ~value with
          | Error e -> err "%a" S.pp_error e
          | Ok _ -> (
            Hashtbl.replace t.placements key to_disk;
            match S.delete t.stores.(from_disk) ~key with
            | Ok _ -> Message.Ack
            | Error e -> err "%a" S.pp_error e))
      end
    end
  | Message.Batch_request { ops } ->
    let n = List.length ops in
    Obs.Histogram.observe t.m_batch_ops (float_of_int n);
    let statuses = Array.make n Message.Op_ok in
    let op_error i fmt =
      Format.kasprintf (fun msg -> statuses.(i) <- Message.Op_error msg) fmt
    in
    (* Semantic validation happens here, not in the decoder (which stays
       total and structural): a corrupt or oversized op fails alone and the
       rest of the batch proceeds. *)
    let validate op =
      let check_key key =
        if String.length key = 0 then Some "empty key"
        else if String.length key > Message.max_op_key_bytes then
          Some
            (Printf.sprintf "key too large (%d > %d bytes)" (String.length key)
               Message.max_op_key_bytes)
        else None
      in
      match op with
      | Message.Batch_put { key; value } -> (
        match check_key key with
        | Some _ as e -> e
        | None ->
          if String.length value > Message.max_op_value_bytes then
            Some
              (Printf.sprintf "value too large (%d > %d bytes)" (String.length value)
                 Message.max_op_value_bytes)
          else None)
      | Message.Batch_delete { key } -> check_key key
    in
    (* Group valid ops by target disk, preserving request order within each
       disk, so every disk sees one group-committed batch per kind-run
       instead of N scalar calls. *)
    let buckets = Array.make (Array.length t.stores) [] in
    List.iteri
      (fun i op ->
        match validate op with
        | Some msg -> op_error i "%s" msg
        | None ->
          let key =
            match op with
            | Message.Batch_put { key; _ } | Message.Batch_delete { key } -> key
          in
          let disk = disk_of_key t key in
          buckets.(disk) <- (i, op) :: buckets.(disk))
      ops;
    let flush_put_run store run =
      match run with
      | [] -> ()
      | _ -> (
        let puts =
          List.map
            (function
              | _, Message.Batch_put { key; value } -> (key, value)
              | _, Message.Batch_delete _ -> assert false)
            run
        in
        match S.put_batch store puts with
        | Ok { S.results; barrier = _ } ->
          List.iter2
            (fun (i, _) result ->
              match result with
              | Ok _ -> ()
              | Error e -> op_error i "%a" S.pp_error e)
            run results
        | Error e ->
          let msg = Format.asprintf "%a" S.pp_error e in
          List.iter (fun (i, _) -> op_error i "%s" msg) run)
    in
    let flush_delete_run store run =
      match run with
      | [] -> ()
      | _ -> (
        let keys =
          List.map
            (function
              | _, Message.Batch_delete { key } -> key
              | _, Message.Batch_put _ -> assert false)
            run
        in
        match S.delete_batch store keys with
        | Ok { S.results; barrier = _ } ->
          List.iter2
            (fun (i, _) result ->
              match result with
              | Ok _ -> ()
              | Error e -> op_error i "%a" S.pp_error e)
            run results
        | Error e ->
          let msg = Format.asprintf "%a" S.pp_error e in
          List.iter (fun (i, _) -> op_error i "%s" msg) run)
    in
    Array.iteri
      (fun disk bucket ->
        let store = t.stores.(disk) in
        (* Maximal same-kind runs keep request order while still batching:
           put,put,delete,put becomes put_batch[2]; delete_batch[1];
           put_batch[1]. *)
        let flush_run run =
          match run with
          | [] -> ()
          | (_, Message.Batch_put _) :: _ -> flush_put_run store (List.rev run)
          | (_, Message.Batch_delete _) :: _ -> flush_delete_run store (List.rev run)
        in
        let same_kind a b =
          match (a, b) with
          | Message.Batch_put _, Message.Batch_put _
          | Message.Batch_delete _, Message.Batch_delete _ -> true
          | _ -> false
        in
        let run =
          List.fold_left
            (fun run (i, op) ->
              match run with
              | (_, prev) :: _ when not (same_kind prev op) ->
                flush_run run;
                [ (i, op) ]
              | _ -> (i, op) :: run)
            [] (List.rev bucket)
        in
        flush_run run)
      buckets;
    Message.Batch_response { statuses = Array.to_list statuses }
  | Message.Scan_request { lo; hi; after; max_results } -> (
    if max_results <= 0 then err "scan max_results must be positive"
    else begin
      (* Keys are hashed across disks, so one page is a merge over every
         disk; as with List, a partial union would silently drop shards. *)
      let out_of_service = Array.exists (fun s -> not (S.in_service s)) t.stores in
      if out_of_service then err "scan unavailable: some disks out of service"
      else begin
        (* The continuation token is exclusive: page N+1 starts strictly
           after the last key of page N, so the effective lower bound is
           the tighter of [lo] and [after]. *)
        let lo =
          match (lo, after) with
          | Some l, Some a -> Some (if String.compare l a >= 0 then l else a)
          | None, Some a -> Some a
          | _, None -> lo
        in
        let drain store =
          let ( let* ) = Result.bind in
          let* cursor = S.scan store ?lo ?hi () in
          let rec go acc =
            match S.scan_next cursor with
            | Ok None -> Ok acc
            | Ok (Some pair) -> go (pair :: acc)
            | Error e -> Error e
          in
          go []
        in
        let rec collect i acc =
          if i = Array.length t.stores then Ok acc
          else
            match drain t.stores.(i) with
            | Ok pairs -> collect (i + 1) (List.rev_append pairs acc)
            | Error e -> Error e
        in
        match collect 0 [] with
        | Error e -> err "%a" S.pp_error e
        | Ok pairs ->
          let pairs =
            List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
            |> List.filter (fun (k, _) ->
                   match after with None -> true | Some a -> String.compare k a > 0)
          in
          let cap = min max_results Message.max_scan_items in
          let rec take n = function
            | rest when n = 0 -> ([], rest <> [])
            | [] -> ([], false)
            | pair :: rest ->
              let page, more = take (n - 1) rest in
              (pair :: page, more)
          in
          let items, more = take cap pairs in
          Message.Scan_response { items; more }
      end
    end)
  | Message.Node_stats ->
    let in_service =
      Array.fold_left (fun acc s -> if S.in_service s then acc + 1 else acc) 0 t.stores
    in
    let keys =
      Array.fold_left
        (fun acc s -> match S.list s with Ok ks -> acc + List.length ks | Error _ -> acc)
        0 t.stores
    in
    let metrics =
      List.concat (List.mapi (fun disk s -> metrics_of_store ~disk s) (Array.to_list t.stores))
    in
    Message.Stats { disks = Array.length t.stores; in_service; keys; metrics }

(* Wire-trace mapping: only the data-plane requests the offline audit
   judges are recorded; control-plane requests (listings, disk service
   moves, migrations, stats) pass through untraced. *)
let trace_op = function
  | Message.Put { key; value } -> Some (Tracecheck.Trace.Put { key; value })
  | Message.Get { key } -> Some (Tracecheck.Trace.Get { key })
  | Message.Delete { key } -> Some (Tracecheck.Trace.Delete { key })
  | Message.Batch_request { ops } ->
    Some
      (Tracecheck.Trace.Batch
         (List.map
            (function
              | Message.Batch_put { key; value } -> (key, Some value)
              | Message.Batch_delete { key } -> (key, None))
            ops))
  | Message.Scan_request { lo; hi; after; max_results = _ } ->
    (* Record the effective lower bound, the continuation token folded
       in, so the recorded interval matches the page actually served. *)
    let lo =
      match (lo, after) with
      | Some l, Some a -> Some (if String.compare l a >= 0 then l else a)
      | None, Some a -> Some a
      | _, None -> lo
    in
    Some (Tracecheck.Trace.Scan { lo; hi })
  | Message.List | Message.Remove_disk _ | Message.Return_disk _ | Message.Bulk_delete _
  | Message.Migrate _ | Message.Node_stats -> None

let trace_outcome req resp =
  match (req, resp) with
  | (Message.Put _ | Message.Delete _), Message.Ack -> Tracecheck.Trace.Acked
  | (Message.Put _ | Message.Delete _), _ -> Tracecheck.Trace.Failed
  | Message.Get _, Message.Value v -> Tracecheck.Trace.Got v
  | Message.Get _, _ -> Tracecheck.Trace.Unavailable
  | Message.Batch_request { ops }, Message.Batch_response { statuses }
    when List.length statuses = List.length ops ->
    Tracecheck.Trace.Batch_done
      (List.map
         (function
           | Message.Op_ok | Message.Op_quorum _ -> true
           | Message.Op_error _ -> false)
         statuses)
  | Message.Batch_request _, _ -> Tracecheck.Trace.Failed
  | Message.Scan_request { after; _ }, Message.Scan_response { items; more } ->
    (* A page with a continuation token (or a truncated one) is judged
       only on the keys it yields; a full first page is the range. *)
    Tracecheck.Trace.Scanned { items; complete = after = None && not more }
  | Message.Scan_request _, _ -> Tracecheck.Trace.Unavailable
  | _, _ -> Tracecheck.Trace.Failed

let handle t req =
  Obs.Counter.incr (Obs.counter ~labels:[ ("kind", request_kind req) ] t.obs "rpc.request");
  let traced =
    match t.trace with
    | None -> None
    | Some r ->
      Option.map
        (fun op -> (r, Tracecheck.Trace.Recorder.invoke r ~src:"rpc" op))
        (trace_op req)
  in
  let resp = handle_inner t req in
  (match resp with
  | Message.Error_response _ -> Obs.Counter.incr t.m_errors
  | Message.Batch_response { statuses } ->
    List.iter
      (function
        | Message.Op_error _ -> Obs.Counter.incr t.m_errors
        | Message.Op_ok | Message.Op_quorum _ -> ())
      statuses
  | _ -> ());
  (match traced with
  | Some (r, id) ->
    Tracecheck.Trace.Recorder.respond r ~src:"rpc" ~id (trace_outcome req resp)
  | None -> ());
  resp

let handle_wire t bytes =
  let resp =
    match Message.decode_request bytes with
    | Ok req -> ( try handle t req with e -> err "internal: %s" (Printexc.to_string e))
    | Error e -> err "bad request: %a" Util.Codec.pp_error e
  in
  Message.encode_response resp

type tick_report = { disks : int; errors : int; ios_pumped : int }

let tick t =
  let errors = ref 0 in
  let ios = ref 0 in
  let note = function
    | Ok _ -> ()
    | Error _ ->
      incr errors;
      Obs.Counter.incr t.m_tick_errors
  in
  Array.iter
    (fun s ->
      if S.in_service s then begin
        note (S.flush_index s);
        note (S.flush_superblock s)
      end;
      ios := !ios + S.pump s 64)
    t.stores;
  { disks = Array.length t.stores; errors = !errors; ios_pumped = !ios }
