(** Signature of the index component as the store consumes it.

    Both the real LSM-tree index ({!Lsm.Index}) and the reference-model
    mock ({!Model.Index_mock}) implement this, which is how the reference
    models do double duty as mocks for unit tests (paper section 3.2). *)

module type INDEX = sig
  type t
  type error

  val pp_error : Format.formatter -> error -> unit

  (** True when the error is extent exhaustion that garbage collection
      (reclaim/compact) might cure; the store retries flushes on it. *)
  val error_is_no_space : error -> bool

  (** Retry/health classification of the error, forwarded up through the
      store's [error_class] to the fleet's request plane — see
      {!Io_sched.error_class}. *)
  val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

  (** [create ?obs chunks ~metadata_extents] — index metrics land in [obs]
      when given, defaulting to the chunk store's registry. *)
  val create : ?obs:Obs.t -> Chunk.Chunk_store.t -> metadata_extents:int * int -> t
  val put : t -> key:string -> locators:Chunk.Locator.t list -> value_dep:Dep.t -> Dep.t
  val delete : t -> key:string -> Dep.t
  val get : t -> key:string -> (Chunk.Locator.t list option, error) result
  val keys : t -> (string list, error) result

  (** A snapshot-at-open range cursor over live entries ([lo <= key <= hi],
      [None] = unbounded); all IO happens at open, so [cursor_next] is
      total. *)
  type cursor

  val scan : t -> lo:string option -> hi:string option -> (cursor, error) result
  val cursor_next : cursor -> (string * Chunk.Locator.t list) option

  (** [configure_levels t ~l0_trigger ~level_ratio] sets the levelled
      compaction policy ([l0_trigger = 0] = monolithic full merge). *)
  val configure_levels : t -> l0_trigger:int -> level_ratio:int -> unit

  (** Whether a levelled compaction trigger currently fires (consulted by
      the store's post-mutation maintenance). *)
  val compaction_due : t -> bool

  (** Run count per level (trailing empties trimmed). *)
  val level_runs : t -> int list

  (** The composed per-level discipline: ranges in every level >= 1 sorted
      and pairwise disjoint, run ids unique. Checkable without IO. *)
  val level_invariants : t -> (unit, string) result

  val flush : t -> for_shutdown:bool -> (Dep.t, error) result
  val compact : t -> (Dep.t, error) result

  (** Major compaction: merge {e every} run into one generation, dropping
      tombstones, regardless of the levelling policy. The store's
      garbage-collection ladder uses this under extent exhaustion — all
      superseded chunks become garbage at once, where incremental levelled
      steps would churn fresh chunks faster than reclamation frees old
      ones. *)
  val compact_major : t -> (Dep.t, error) result

  val update_locator :
    t ->
    key:string ->
    old_loc:Chunk.Locator.t ->
    new_loc:Chunk.Locator.t ->
    new_dep:Dep.t ->
    Dep.t

  val run_locators : t -> (int * Chunk.Locator.t) list

  val relocate_run :
    t -> run_id:int -> new_loc:Chunk.Locator.t -> new_dep:Dep.t -> (Dep.t, error) result

  (** Dependency covering the index state a reverse lookup ran against:
      every current run, the newest metadata record, and — if entries are
      staged — the pending flush. Reclamation folds it into the extent
      reset's input: a chunk may only be destroyed once the index state
      that no longer references it is durable. *)
  val basis_dep : t -> Dep.t

  val note_extent_reset : t -> unit
  val recover : t -> (unit, error) result
  val memtable_size : t -> int
  val run_count : t -> int
end
