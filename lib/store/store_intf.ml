(** Signature of the index component as the store consumes it.

    Both the real LSM-tree index ({!Lsm.Index}) and the reference-model
    mock ({!Model.Index_mock}) implement this, which is how the reference
    models do double duty as mocks for unit tests (paper section 3.2). *)

module type INDEX = sig
  type t
  type error

  val pp_error : Format.formatter -> error -> unit

  (** True when the error is extent exhaustion that garbage collection
      (reclaim/compact) might cure; the store retries flushes on it. *)
  val error_is_no_space : error -> bool

  (** Retry/health classification of the error, forwarded up through the
      store's [error_class] to the fleet's request plane — see
      {!Io_sched.error_class}. *)
  val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

  (** [create ?obs chunks ~metadata_extents] — index metrics land in [obs]
      when given, defaulting to the chunk store's registry. *)
  val create : ?obs:Obs.t -> Chunk.Chunk_store.t -> metadata_extents:int * int -> t
  val put : t -> key:string -> locators:Chunk.Locator.t list -> value_dep:Dep.t -> Dep.t
  val delete : t -> key:string -> Dep.t
  val get : t -> key:string -> (Chunk.Locator.t list option, error) result
  val keys : t -> (string list, error) result
  val flush : t -> for_shutdown:bool -> (Dep.t, error) result
  val compact : t -> (Dep.t, error) result

  val update_locator :
    t ->
    key:string ->
    old_loc:Chunk.Locator.t ->
    new_loc:Chunk.Locator.t ->
    new_dep:Dep.t ->
    Dep.t

  val run_locators : t -> (int * Chunk.Locator.t) list

  val relocate_run :
    t -> run_id:int -> new_loc:Chunk.Locator.t -> new_dep:Dep.t -> (Dep.t, error) result

  (** Dependency covering the index state a reverse lookup ran against:
      every current run, the newest metadata record, and — if entries are
      staged — the pending flush. Reclamation folds it into the extent
      reset's input: a chunk may only be destroyed once the index state
      that no longer references it is durable. *)
  val basis_dep : t -> Dep.t

  val note_extent_reset : t -> unit
  val recover : t -> (unit, error) result
  val memtable_size : t -> int
  val run_count : t -> int
end
