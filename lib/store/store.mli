(** The ShardStore storage node for one disk (paper section 2).

    Wires the full stack: in-memory disk → IO scheduler (soft updates) →
    buffer cache → superblock → chunk store → LSM index, and exposes the
    key-value API (put/get/delete/list), background maintenance
    (index flush, compaction, chunk reclamation, scheduler pumping),
    crash/reboot orchestration for the checkers, and the control-plane
    remove/return-from-service operations (fault #4's site).

    Every mutating operation returns a {!Dep.t}; the crash-consistency
    checker polls these for the persistence and forward-progress
    properties (paper section 5). *)

module type S = sig
  type t
  type index_error

  type error =
    | Out_of_service
    | No_space
    | Io of Io_sched.error
    | Index of index_error
    | Chunk_error of Chunk.Chunk_store.error
    | Superblock_error of Superblock.error
    | Wrong_owner of string  (** chunk read back belongs to another shard *)

  val pp_error : Format.formatter -> error -> unit

  (** Retry/health classification for the fleet's request plane, walking
      the nested error chain: [`Transient] retryable IO, [`Permanent]
      failed medium (trips the circuit breaker), [`Resource] extent
      exhaustion, [`Fatal] logic/corruption errors — see
      {!Io_sched.error_class}. *)
  val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

  type config = {
    disk : Disk.config;
    max_chunk_payload : int;  (** shard values split into chunks of at most this size *)
    superblock_cadence : int;  (** flush the superblock every N mutations *)
    index_flush_threshold : int;  (** auto-flush the memtable at this size (0 = manual) *)
    compact_threshold : int;  (** auto-compact beyond this many runs (0 = manual) *)
    l0_trigger : int;
        (** level-0 run count that triggers a levelled compaction step
            (0 = monolithic full-merge compaction) *)
    level_ratio : int;  (** level [i >= 1] holds [level_ratio]{^ i} runs *)
    auto_pump : int;  (** background writeback IOs issued per operation *)
    cache_pages : int;
    cache_write_allocate : bool;  (** populate the cache on writes (section 8.3 experiment) *)
    seed : int64;
  }

  val default_config : config

  (** Small geometry for property-based tests: few, small extents so
      reclamation, extent exhaustion and crash corner cases are reachable
      in short operation sequences. *)
  val test_config : config

  (** [create ?obs cfg] — a fresh store. One {!Obs.t} registry serves the
      whole stack (disk, scheduler, cache, superblock, logrolls, chunk
      store, index, store): [obs] when given, else a fresh per-store
      registry with a small trace ring enabled, so two stores in a fleet
      never share series. *)
  val create : ?obs:Obs.t -> config -> t

  (** [of_disk ?obs cfg disk] re-opens a store on an existing disk
      (recovery path); the disk's accumulated metrics are re-homed onto
      the store's registry. *)
  val of_disk : ?obs:Obs.t -> config -> Disk.t -> t

  val config : t -> config
  val disk : t -> Disk.t
  val sched : t -> Io_sched.t
  val chunk_store : t -> Chunk.Chunk_store.t

  (** The unified metrics registry and trace ring for this store. *)
  val obs : t -> Obs.t

  (** {2 Request plane} *)

  val put : t -> key:string -> value:string -> (Dep.t, error) result
  val get : t -> key:string -> (string option, error) result
  val delete : t -> key:string -> (Dep.t, error) result
  val list : t -> (string list, error) result

  (** {2 Range scans}

      A scan pins its key set at open — snapshot-at-open over the memtable
      and every overlapping run, via the index's k-way merge cursor — and
      resolves values per {!scan_next}. Later mutations, flushes and
      compactions do not change what an open scan yields. *)

  type scan

  (** [scan t ?lo ?hi ()] opens a cursor over the live keys in
      [lo <= key <= hi] (unbounded when omitted). All index IO happens
      here. *)
  val scan : t -> ?lo:string -> ?hi:string -> unit -> (scan, error) result

  (** Next [(key, value)] in ascending key order; [Ok None] once drained.
      Value chunks are read at call time, so a concurrent reclaim can
      surface as a per-entry error, exactly like {!get}. *)
  val scan_next : scan -> ((string * string) option, error) result

  (** Run count per level of the index, trailing empty levels trimmed. *)
  val level_runs : t -> int list

  (** The index's composed per-level invariant: every level [>= 1] sorted
      by min key with pairwise-disjoint ranges, run ids unique. [Error]
      describes the first violation. *)
  val level_invariants : t -> (unit, string) result

  (** Raw index lookup (introspection for tests and tools). *)
  val locators : t -> key:string -> (Chunk.Locator.t list option, error) result

  (** {2 Batched request plane (group commit)}

      Result of a batch: per-op outcomes in request order, plus one barrier
      dependency that persists exactly when every successful op of the
      batch does — the natural durability handle for group commit. *)
  type batch_result = { results : (Dep.t, error) result list; barrier : Dep.t }

  (** [put_batch t ops] applies N puts with group commit: one service
      check, one memtable reservation (the batch flushes the memtable up
      front if the N inserts would cross the threshold), coalesced chunk
      allocation ({!Chunk.Chunk_store.put_batch} — per-extent groups, one
      append and one superblock record per group) and one amortized
      maintenance pass (superblock-cadence check, batched writeback via
      {!Io_sched.submit_batch}) for the whole batch. When group allocation
      hits resource pressure the batch falls back to the sequential per-op
      path with its GC ladder, so per-op outcomes match the loop exactly.
      The outer [Error] is only ever [Out_of_service].

      Observationally equivalent to the sequential [put] loop, including
      under a crash at any dependency-graph prefix — the batch conformance
      property in [test/test_lfm.ml] checks this. *)
  val put_batch : t -> (string * string) list -> (batch_result, error) result

  (** [delete_batch t keys] — the delete counterpart of {!put_batch}. *)
  val delete_batch : t -> string list -> (batch_result, error) result

  (** {2 Background maintenance} *)

  val flush_index : t -> (Dep.t, error) result
  val flush_superblock : t -> (Dep.t, error) result
  val compact : t -> (Dep.t, error) result

  (** [reclaim t ?extent ?avoid ()] garbage-collects one extent (the one
      with the most reclaimable bytes when [extent] is omitted, never one
      in [avoid]). Returns [None] when nothing is worth reclaiming or no
      evacuation headroom remains. *)
  val reclaim : t -> ?extent:int -> ?avoid:int list -> unit -> (Dep.t option, error) result

  val pump : t -> int -> int

  (** {2 Crash and recovery} *)

  type reboot_spec = {
    flush_index_first : bool;  (** flush the memtable before crashing *)
    flush_superblock_first : bool;
    persist_probability : float;  (** chance each eligible pending write persisted *)
    split_pages : bool;  (** enable page-granular torn writes (block-level mode) *)
  }

  val clean_reboot_spec : reboot_spec

  (** [dirty_reboot t ~rng spec] crashes (dropping volatile state and a
      dependency-respecting subset of pending writes) and recovers. *)
  val dirty_reboot : t -> rng:Util.Rng.t -> reboot_spec -> (unit, error) result

  (** [clean_shutdown t] flushes everything and drains the scheduler;
      afterwards every returned dependency must be persistent (the forward
      progress property). *)
  val clean_shutdown : t -> (unit, error) result

  (** [recover t] rebuilds volatile state from the disk. *)
  val recover : t -> (unit, error) result

  (** {2 Control plane} *)

  val remove_from_service : t -> (unit, error) result
  val return_to_service : t -> (unit, error) result
  val in_service : t -> bool

  (** {2 Introspection} *)

  val live_bytes : t -> extent:int -> (int, error) result
  val reclaimable_extents : t -> (int * int) list
  (** (extent, garbage bytes), sorted most-garbage-first *)

  val index_memtable_size : t -> int
  val index_run_count : t -> int
end

module Make (Index : Store_intf.INDEX) : S with type index_error = Index.error

(** The production wiring: the real LSM-tree index. *)
module Default : S with type index_error = Lsm.Index.error

(** Shared-state entry point: ONE {!Default} store driven by N racing
    domains, with a background {e maintenance plane}.

    Mutations stage into a hash-sharded table ({!Conc.Shard_table}, one
    writer-preferring {!Conc.Rwlock} per shard); a flush drains a shard
    into the underlying store while holding that shard's write lock and
    taking the {e stack lock} (a single rwlock serializing every access
    to the sequential store below) in a {e narrowed} critical section —
    per chunk of [flush_chunk] applied ops rather than across the whole
    drain — so foreground gets on other shards keep flowing through a
    flush. The global lock order is

    {v maint lock < shard locks (ascending index) < stack lock < cache lock v}

    (with the [lsm_run] and [trace] leaf classes below), and every code
    path acquires along it, so deadlock is impossible by construction —
    {!Conc.Conc_shared} is the model-checked version of this argument
    (maintenance-vs-foreground harnesses included), [bin/lint.exe]
    recomputes the acquisition graph statically from the sources, and
    the racing-domain conformance gate ([validate --shared]) checks
    per-key linearizability of real runs with a live maintenance
    domain.

    {b Linearization points.} A mutation is its staging store under the
    shard write lock; a get holds its shard {e read} lock across both
    the staged probe and the underlying read, so it cannot observe the
    flush window where a key is in neither place. A flush moves values
    without changing the logical contents, so it has no linearization
    point of its own — reads before, during and after a flush observe
    the same key-to-value map.

    {b Domain safety.} Any number of domains may call
    {!put}/{!get}/{!delete}/{!put_batch}/{!delete_batch}/{!list}/{!scan}
    concurrently with each other {e and} with the maintenance plane
    ({!flush}, {!flush_shard}, {!compact}, {!reclaim},
    {!clean_shutdown}, {!dirty_reboot}, a running {!Maint} worker).
    Only {!store} hands out an unsynchronized reference. *)
module Shared : sig
  type t
  type error = Default.error

  (** [create ?shards ?flush_chunk ?obs ?trace cfg] — a fresh underlying
      store plus [shards] staging shards (default 8).

      [flush_chunk] (default 32) bounds how many drained ops a flush
      applies per stack-lock hold: smaller values narrow the window in
      which foreground reads of the base are blocked, at the cost of
      more lock traffic; [0] restores the coarse whole-drain hold (the
      contention baseline recorded by [bench/maint_bench.exe]). The
      setting is invisible to correctness — only hold times change.

      Tracing on [obs] is forcibly disabled: the trace ring is
      single-domain. [?trace] attaches a domain-safe wire-trace recorder
      ({!Tracecheck.Trace.Recorder}): every put/get/delete/batch/scan is
      recorded as an invocation/response interval (src ["shared"]) and
      each flush as a [Flush] marker, for offline audit by
      {!Tracecheck.Audit}. *)
  val create :
    ?shards:int ->
    ?flush_chunk:int ->
    ?obs:Obs.t ->
    ?trace:Tracecheck.Trace.Recorder.t ->
    Default.config ->
    t

  val obs : t -> Obs.t

  (** The underlying sequential store. Only safe to use directly once
      no other domain is operating on [t]. *)
  val store : t -> Default.t

  val shards : t -> int

  (** Staged (unflushed) entries across all shards. *)
  val staged_count : t -> int

  val put : t -> key:string -> value:string -> (unit, error) result
  val get : t -> key:string -> (string option, error) result
  val delete : t -> key:string -> (unit, error) result

  (** Per-op outcomes of a staged batch, in request order — the same
      report-per-op contract as {!S.batch_result} (staging carries no
      dependency, so outcomes are [unit]). *)
  type batch_result = { results : (unit, error) result list }

  (** Batch staging: per-shard groups staged under one lock acquisition
      each, shards visited in ascending (lock) order; within a shard the
      batch's op order is preserved. *)
  val put_batch : t -> (string * string) list -> (batch_result, error) result

  (** [delete_batch t keys] — the tombstone counterpart of
      {!put_batch}. *)
  val delete_batch : t -> string list -> (batch_result, error) result

  (** {2 Maintenance plane}

      Every operation here first takes the store's {e maint} write lock
      — first in the global order maint < shard < stack < cache — so
      maintenance serializes against itself while foreground traffic,
      which never touches that lock, keeps running underneath. All of
      them are domain-safe: they may race foreground ops and each
      other freely.

      What a concurrent flush guarantees about reads: a get of a key in
      the shard being drained blocks on that shard's write lock (and
      then sees the value wherever it now lives); a get of any other
      shard's key proceeds, pausing only while a [flush_chunk]-bounded
      stack write section is held. A flush never changes the logical
      contents, so no read — get, list or scan — can distinguish
      pre-flush from post-flush state. *)

  (** Drain all staged entries into the underlying store (group commit
      via [Default.put_batch]/[delete_batch]), shard by shard in lock
      order. Returns the number of entries drained. On error, staged
      entries of the failing and subsequent shards remain staged — an
      acked mutation is never dropped (chunks already applied under a
      partial drain are shadowed by the staging they came from, and a
      retry re-applies them idempotently). *)
  val flush : t -> (int, error) result

  (** [flush_shard t i] drains only shard [i] (same contract as
      {!flush}); the maintenance worker's round-robin step. Raises
      [Invalid_argument] when [i] is out of range. *)
  val flush_shard : t -> int -> (int, error) result

  (** Compact the underlying index (maint + stack write locks; staging
      untouched). Logical contents are unchanged. *)
  val compact : t -> (unit, error) result

  (** Garbage-collect the most-reclaimable extent of the underlying
      store, if any ([true] = one extent was evacuated). *)
  val reclaim : t -> (bool, error) result

  (** Drain every staged entry, then flush and quiesce the base store —
      after this every acked mutation is persistent (the forward
      progress property). Foreground domains should have joined; a
      racing put can still land in staging after the drain, where it
      stays acked-but-volatile. *)
  val clean_shutdown : t -> (unit, error) result

  (** Crash and recover, for chaos workloads: staged entries are
      {e volatile} and are dropped — acked-but-unflushed mutations are
      lost, exactly like the memtable below — then the base store takes
      a {!S.dirty_reboot}. All shard write locks are held (ascending)
      around the stack write lock, so no foreground op is mid-flight
      when volatile state vanishes. Sequence this after racing
      linearizability workloads have joined, or model the loss. *)
  val dirty_reboot : t -> rng:Util.Rng.t -> Default.reboot_spec -> (unit, error) result

  (** The dedicated maintenance domain: round-robin {!flush_shard} with
      periodic {!compact}/{!reclaim}, racing foreground domains on a
      {!Conc.Domains.Worker}. *)
  module Maint : sig
    type stats = {
      steps : int;  (** worker loop iterations completed *)
      flushes : int;  (** successful shard flushes *)
      drained : int;  (** staged entries moved into the base store *)
      compacts : int;
      reclaims : int;
      errors : int;  (** failed maintenance ops (never raises) *)
    }

    type worker

    (** [start ?compact_every ?reclaim_every t] spawns the maintenance
        domain: step [n] flushes shard [n mod shards], then compacts
        every [compact_every]-th step and reclaims every
        [reclaim_every]-th (0, the default, disables either). Each op
        takes the maint lock separately, so foreground {!flush} calls
        interleave rather than starve.

        Maintenance follows the data: a clean shard is skipped after a
        reader-side emptiness probe (no write lock touched) with
        exponential backoff while the store stays idle, compaction fires
        on its period only when flushes have drained new data since the
        last one, and reclaim only after a fresh compaction — so an idle
        store costs the foreground nothing. [stats.steps] counts every
        loop iteration; [stats.flushes] only flushes that actually
        ran. *)
    val start : ?compact_every:int -> ?reclaim_every:int -> t -> worker

    (** Stop and join the maintenance domain. Call exactly once, from
        the owning domain; the returned stats are published by the
        join. *)
    val stop : worker -> stats
  end

  (** Staged overlay (puts added, tombstones removed) over the
      underlying listing, both captured under one consistent set of
      locks. *)
  val list : t -> (string list, error) result

  (** Materialized range scan: the staged overlay applied on top of a
      drained {!Default.scan}, both captured under all shard read locks
      (ascending) around the stack read lock — the established
      shard < stack order, no new lock classes. Byte-identical to what
      draining [Default.scan] yields once staging is empty. *)
  val scan : t -> ?lo:string -> ?hi:string -> unit -> ((string * string) list, error) result
end
