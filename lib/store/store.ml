module type S = sig
  type t
  type index_error

  type error =
    | Out_of_service
    | No_space
    | Io of Io_sched.error
    | Index of index_error
    | Chunk_error of Chunk.Chunk_store.error
    | Superblock_error of Superblock.error
    | Wrong_owner of string

  val pp_error : Format.formatter -> error -> unit

  (** Retry/health classification for the fleet's request plane; see
      {!Io_sched.error_class}. *)
  val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

  type config = {
    disk : Disk.config;
    max_chunk_payload : int;
    superblock_cadence : int;
    index_flush_threshold : int;
    compact_threshold : int;
    l0_trigger : int;
    level_ratio : int;
    auto_pump : int;
    cache_pages : int;
    cache_write_allocate : bool;
    seed : int64;
  }

  val default_config : config
  val test_config : config

  (** [create ?obs cfg] — a fresh store. All layers (disk, scheduler,
      cache, superblock, logrolls, chunk store, index, store) share one
      metrics registry: [obs] when given, else a fresh per-store registry
      with a small trace ring enabled. *)
  val create : ?obs:Obs.t -> config -> t

  (** [of_disk ?obs cfg disk] opens a stack on an existing disk; the disk's
      metrics are re-homed onto the store's registry. *)
  val of_disk : ?obs:Obs.t -> config -> Disk.t -> t

  val config : t -> config
  val disk : t -> Disk.t
  val sched : t -> Io_sched.t
  val chunk_store : t -> Chunk.Chunk_store.t

  (** The unified registry covering every layer of this store. *)
  val obs : t -> Obs.t
  val put : t -> key:string -> value:string -> (Dep.t, error) result
  val get : t -> key:string -> (string option, error) result
  val delete : t -> key:string -> (Dep.t, error) result
  val list : t -> (string list, error) result

  (** A range-scan handle: the key set is pinned at open (snapshot over
      memtable and runs), values are resolved per {!scan_next}. *)
  type scan

  (** [scan t ?lo ?hi ()] opens a cursor over live keys in
      [lo <= key <= hi] (unbounded when omitted). *)
  val scan : t -> ?lo:string -> ?hi:string -> unit -> (scan, error) result

  (** Next [(key, value)] in ascending key order; [Ok None] when drained.
      Value chunks are read at call time, so a concurrent reclaim can
      surface as a per-entry error (exactly like {!get}). *)
  val scan_next : scan -> ((string * string) option, error) result

  (** Run count per level of the index (trailing empties trimmed). *)
  val level_runs : t -> int list

  (** The index's composed per-level invariant (see
      {!Store_intf.INDEX.level_invariants}). *)
  val level_invariants : t -> (unit, string) result

  (** Raw index lookup (introspection for tests and tools). *)
  val locators : t -> key:string -> (Chunk.Locator.t list option, error) result

  (** Result of a group-committed batch: per-op outcomes in request order,
      plus one barrier dependency that persists exactly when every
      successful op of the batch does. *)
  type batch_result = { results : (Dep.t, error) result list; barrier : Dep.t }

  (** [put_batch t ops] applies N puts with group commit: one service
      check, one memtable reservation, coalesced chunk allocation
      ({!Chunk.Chunk_store.put_batch}) and one amortized maintenance pass
      (superblock cadence, batched writeback) for the whole batch. The
      outer [Error] is only [Out_of_service]; everything else is per-op.
      Observationally equivalent to the sequential [put] loop, including
      under a crash at any dependency-graph prefix. *)
  val put_batch : t -> (string * string) list -> (batch_result, error) result

  (** [delete_batch t keys] — the delete counterpart of {!put_batch}. *)
  val delete_batch : t -> string list -> (batch_result, error) result
  val flush_index : t -> (Dep.t, error) result
  val flush_superblock : t -> (Dep.t, error) result
  val compact : t -> (Dep.t, error) result
  val reclaim : t -> ?extent:int -> ?avoid:int list -> unit -> (Dep.t option, error) result
  val pump : t -> int -> int

  type reboot_spec = {
    flush_index_first : bool;
    flush_superblock_first : bool;
    persist_probability : float;
    split_pages : bool;
  }

  val clean_reboot_spec : reboot_spec
  val dirty_reboot : t -> rng:Util.Rng.t -> reboot_spec -> (unit, error) result
  val clean_shutdown : t -> (unit, error) result
  val recover : t -> (unit, error) result
  val remove_from_service : t -> (unit, error) result
  val return_to_service : t -> (unit, error) result
  val in_service : t -> bool
  val live_bytes : t -> extent:int -> (int, error) result
  val reclaimable_extents : t -> (int * int) list
  val index_memtable_size : t -> int
  val index_run_count : t -> int
end

(* Reserved extent layout: the superblock and LSM metadata each own an
   alternating pair; everything above is data. *)
let sb_extents = (0, 1)
let meta_extents = (2, 3)
let reserved = [ 0; 1; 2; 3 ]
let first_data_extent = 4

module Make (Index : Store_intf.INDEX) = struct
  type index_error = Index.error

  type error =
    | Out_of_service
    | No_space
    | Io of Io_sched.error
    | Index of index_error
    | Chunk_error of Chunk.Chunk_store.error
    | Superblock_error of Superblock.error
    | Wrong_owner of string

  let pp_error fmt = function
    | Out_of_service -> Format.pp_print_string fmt "store is out of service"
    | No_space -> Format.pp_print_string fmt "out of space"
    | Io e -> Io_sched.pp_error fmt e
    | Index e -> Index.pp_error fmt e
    | Chunk_error e -> Chunk.Chunk_store.pp_error fmt e
    | Superblock_error e -> Superblock.pp_error fmt e
    | Wrong_owner k -> Format.fprintf fmt "chunk owned by wrong shard (expected %S)" k

  (* The classification the fleet's retry/health policy keys on: walk the
     nested error chain down to the layer that knows. *)
  let error_class = function
    | Out_of_service -> `Fatal
    | No_space -> `Resource
    | Io e -> Io_sched.error_class e
    | Index e -> Index.error_class e
    | Chunk_error e -> Chunk.Chunk_store.error_class e
    | Superblock_error e -> Superblock.error_class e
    | Wrong_owner _ -> `Fatal

  type config = {
    disk : Disk.config;
    max_chunk_payload : int;
    superblock_cadence : int;
    index_flush_threshold : int;
    compact_threshold : int;
    l0_trigger : int;
    level_ratio : int;
    auto_pump : int;
    cache_pages : int;
    cache_write_allocate : bool;
    seed : int64;
  }

  let default_config =
    {
      disk = { Disk.extent_count = 64; pages_per_extent = 64; page_size = 512 };
      max_chunk_payload = 8 * 1024;
      superblock_cadence = 8;
      index_flush_threshold = 32;
      compact_threshold = 6;
      l0_trigger = 4;
      level_ratio = 4;
      auto_pump = 4;
      cache_pages = 128;
      cache_write_allocate = false;
      seed = 0x5EED_CAFEL;
    }

  let test_config =
    {
      disk = { Disk.extent_count = 12; pages_per_extent = 8; page_size = 64 };
      max_chunk_payload = 96;
      superblock_cadence = 0;
      index_flush_threshold = 0;
      compact_threshold = 0;
      l0_trigger = 3;
      level_ratio = 3;
      auto_pump = 0;
      cache_pages = 16;
      cache_write_allocate = false;
      seed = 0x5EED_CAFEL;
    }

  type metrics = {
    m_puts : Obs.Counter.t;
    m_gets : Obs.Counter.t;
    m_deletes : Obs.Counter.t;
    m_scans : Obs.Counter.t;
    m_reclaims : Obs.Counter.t;
    m_gc_fallback : Obs.Counter.t;
    m_recovers : Obs.Counter.t;
    m_dirty_reboots : Obs.Counter.t;
    m_clean_shutdowns : Obs.Counter.t;
    m_value_bytes : Obs.Histogram.t;
    m_put_batches : Obs.Counter.t;
    m_delete_batches : Obs.Counter.t;
    m_batch_ops : Obs.Histogram.t;
    m_batch_fallback : Obs.Counter.t;
  }

  type t = {
    cfg : config;
    disk : Disk.t;
    sched : Io_sched.t;
    cache : Cache.t;
    sb : Superblock.t;
    chunks : Chunk.Chunk_store.t;
    index : Index.t;
    obs : Obs.t;
    m : metrics;
    mutable in_service : bool;
    mutable mutations : int;
    mutable in_flight : int list;
        (** extents holding chunks of an in-progress multi-chunk put, not
            yet referenced by the index: reclamation must not target them *)
  }

  (* Events from every layer land in one ring; this is how many trailing
     events a counterexample report can show. *)
  let default_trace_capacity = 256

  let of_disk ?obs (cfg : config) disk =
    let obs =
      match obs with
      | Some o -> o
      | None -> Obs.create ~scope:"store" ~trace_capacity:default_trace_capacity ()
    in
    (* One registry for the whole stack: the pre-existing disk re-homes its
       handles, every layer above is created pointing at the same [obs]. *)
    Disk.attach_obs disk obs;
    let sched = Io_sched.create ~seed:cfg.seed ~obs disk in
    let cache =
      Cache.create ~capacity_pages:cfg.cache_pages ~write_allocate:cfg.cache_write_allocate
        ~obs sched
    in
    let sb = Superblock.create ~obs sched ~extents:sb_extents ~reserved in
    let rng = Util.Rng.create (Int64.add cfg.seed 17L) in
    let chunks = Chunk.Chunk_store.create ~obs sched ~cache ~superblock:sb ~rng in
    let index = Index.create ~obs chunks ~metadata_extents:meta_extents in
    Index.configure_levels index ~l0_trigger:cfg.l0_trigger ~level_ratio:cfg.level_ratio;
    {
      cfg;
      disk;
      sched;
      cache;
      sb;
      chunks;
      index;
      obs;
      m =
        {
          m_puts = Obs.counter obs "store.put";
          m_gets = Obs.counter obs "store.get";
          m_deletes = Obs.counter obs "store.delete";
          m_scans = Obs.counter obs "store.scan";
          m_reclaims = Obs.counter obs "store.reclaim";
          m_gc_fallback = Obs.counter ~coverage:true obs "store.put.gc_fallback";
          m_recovers = Obs.counter obs "store.recover";
          m_dirty_reboots = Obs.counter obs "store.dirty_reboot";
          m_clean_shutdowns = Obs.counter obs "store.clean_shutdown";
          m_value_bytes = Obs.histogram obs "store.value_bytes";
          m_put_batches = Obs.counter obs "store.put_batch";
          m_delete_batches = Obs.counter obs "store.delete_batch";
          m_batch_ops =
            Obs.histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ] obs
              "store.batch_ops";
          m_batch_fallback = Obs.counter ~coverage:true obs "store.put_batch.fallback";
        };
      in_service = true;
      mutations = 0;
      in_flight = [];
    }

  let create ?obs (cfg : config) =
    if cfg.disk.Disk.extent_count <= first_data_extent then
      invalid_arg "Store.create: need more extents than the reserved four";
    of_disk ?obs cfg (Disk.create cfg.disk)

  let config t = t.cfg
  let disk t = t.disk
  let sched t = t.sched
  let chunk_store t = t.chunks
  let obs t = t.obs
  let in_service t = t.in_service
  let index_memtable_size t = Index.memtable_size t.index
  let index_run_count t = Index.run_count t.index

  let ( let* ) = Result.bind
  let chunk_err r = Result.map_error (fun e -> Chunk_error e) r
  let index_err r = Result.map_error (fun e -> Index e) r
  let sb_err r = Result.map_error (fun e -> Superblock_error e) r

  let check_service t = if t.in_service then Ok () else Error Out_of_service

  let flush_superblock t = sb_err (Superblock.flush t.sb)

  let pump t n = Io_sched.pump ~max_ios:n t.sched

  (* {2 Reclamation} *)

  (* Padded frame footprint of a locator on its extent. *)
  let footprint t (loc : Chunk.Locator.t) =
    let ps = Io_sched.page_size t.sched in
    (loc.Chunk.Locator.frame_len + ps - 1) / ps * ps

  let live_bytes_map t =
    let live = Hashtbl.create 16 in
    let add (loc : Chunk.Locator.t) =
      if loc.Chunk.Locator.epoch = Io_sched.epoch t.sched ~extent:loc.Chunk.Locator.extent then begin
        let prev = Option.value ~default:0 (Hashtbl.find_opt live loc.Chunk.Locator.extent) in
        Hashtbl.replace live loc.Chunk.Locator.extent (prev + footprint t loc)
      end
    in
    let* keys = index_err (Index.keys t.index) in
    let* () =
      List.fold_left
        (fun acc key ->
          let* () = acc in
          let* locs = index_err (Index.get t.index ~key) in
          List.iter add (Option.value ~default:[] locs);
          Ok ())
        (Ok ()) keys
    in
    List.iter (fun (_, loc) -> add loc) (Index.run_locators t.index);
    Ok live

  let live_bytes t ~extent =
    let* live = live_bytes_map t in
    Ok (Option.value ~default:0 (Hashtbl.find_opt live extent))

  let reclaimable_extents t =
    match live_bytes_map t with
    | Error _ -> []
    | Ok live ->
      let data_extents =
        List.filter (fun e -> e >= first_data_extent) (Superblock.data_extents t.sb)
      in
      data_extents
      |> List.map (fun extent ->
             let used = Io_sched.soft_ptr t.sched ~extent in
             let alive = Option.value ~default:0 (Hashtbl.find_opt live extent) in
             (extent, used - alive))
      |> List.filter (fun (_, garbage) -> garbage > 0)
      |> List.sort (fun (_, a) (_, b) -> compare b a)

  exception Reclaim_abort of error

  let reclaim t ?extent ?(avoid = []) () =
    let* () = check_service t in
    (* Reclamation must not run against volatile staging: liveness here is
       judged through the memtable (shadowed drops, relocated staged
       references), so every reset staged with a non-empty memtable waits
       on the flush promise. If the flush itself cannot proceed, such a
       reset can never retire — and a reclaim loop under space pressure
       would convert every free extent into that state, wedging the store
       (the flush then needs an extent only those resets can return).
       Flush first; if we cannot, reclaim nothing. *)
    let flushed =
      Index.memtable_size t.index = 0
      ||
      match Index.flush t.index ~for_shutdown:false with
      | Ok (_ : Dep.t) -> true
      | Error (_ : Index.error) -> false
    in
    if not flushed then Ok None
    else
    let target =
      match extent with
      | Some e -> Some e
      | None -> (
        (* In-flight extents hold chunks written by an ongoing multi-chunk
           put, not yet referenced by the index; a scan would wrongly
           classify them as dead. *)
        let avoid = avoid @ t.in_flight in
        match List.filter (fun (e, _) -> not (List.mem e avoid)) (reclaimable_extents t) with
        | (e, _) :: _ -> Some e
        | [] -> None)
    in
    match target with
    | None -> Ok None
    | Some extent ->
      Obs.Counter.incr t.m.m_reclaims;
      if Obs.tracing t.obs then
        Obs.emit t.obs ~layer:"store" "reclaim" [ ("extent", string_of_int extent) ];
      let classify owner loc =
        match owner with
        | Chunk.Chunk_format.Shard key -> (
          match Index.get t.index ~key with
          | Ok (Some locs) when List.exists (Chunk.Locator.equal loc) locs -> `Live
          | Ok _ -> `Dead
          | Error _ -> `Live (* conservative: never drop on lookup failure *))
        | Chunk.Chunk_format.Index_run id ->
          if
            List.exists
              (fun (rid, rloc) -> rid = id && Chunk.Locator.equal rloc loc)
              (Index.run_locators t.index)
          then `Live
          else `Dead
      in
      let relocate owner ~old_loc ~new_loc ~new_dep =
        match owner with
        | Chunk.Chunk_format.Shard key ->
          Index.update_locator t.index ~key ~old_loc ~new_loc ~new_dep
        | Chunk.Chunk_format.Index_run run_id -> (
          match Index.relocate_run t.index ~run_id ~new_loc ~new_dep with
          | Ok dep -> dep
          | Error e -> raise (Reclaim_abort (Index e)))
      in
      (match
         Chunk.Chunk_store.reclaim t.chunks ~extent ~index_basis:(Index.basis_dep t.index)
           ~classify ~relocate
       with
      | Ok dep ->
        Index.note_extent_reset t.index;
        Ok (Some dep)
      | Error Chunk.Chunk_store.No_space ->
        (* Not enough headroom to evacuate: nothing was reset, nothing
           freed. The caller sees "no reclaimable space". *)
        Ok None
      | Error e -> Error (Chunk_error e)
      | exception Reclaim_abort e -> Error e)

  (* Flushes and compactions themselves write chunks, so extent exhaustion
     inside them is cured the same way as on the put path: reclaim what we
     can and retry once. A failed flush attempt leaves already-written runs
     referenced (they are shadowed, never corrupt) and the memtable intact,
     so the retry is safe. *)
  (* Data appends — and the metadata records that reference them — wait on
     the superblock cadence promise; until a record binds it, no pending
     reset can retire and reclamation cannot return a single extent. The
     request plane binds the promise on its own schedule, but under space
     pressure that schedule may never come back around (a full disk fails
     the very put whose acknowledgement would have flushed the superblock),
     so binding the promise is part of garbage collection too. The record
     itself has trivial input and lives on a reserved extent, so it is
     always writable; the pump then drains the whole chain — record, data
     appends, metadata records, resets — in one pass. *)
  let unwedge_writeback t =
    (match Superblock.flush t.sb with Ok (_ : Dep.t) -> () | Error (_ : Superblock.error) -> ());
    ignore (Io_sched.pump t.sched)

  (* The other promise reclamation can wait on is the index's flush promise:
     a reclaim decided against volatile staging (a shadowed drop, a
     relocated staged reference) may only destroy the old bytes once the
     staging is durable. Best-effort flush the memtable before reclaiming so
     the resets we are about to stage carry durable deps — run writes are
     [privileged] at the allocator, so this can spend the reserve extent
     that plain data puts must leave behind. *)
  let bind_flush_promise t =
    if Index.memtable_size t.index > 0 then
      (match Index.flush t.index ~for_shutdown:false with
      | Ok (_ : Dep.t) -> ()
      | Error (_ : Index.error) -> ());
    unwedge_writeback t

  (* Reclamation that could not complete for lack of resources is "nothing
     reclaimed", not a hard failure. *)
  let reclaim_soft ?avoid t =
    match reclaim t ?avoid () with
    | Ok r -> Ok r
    | Error No_space -> Ok None
    | Error (Index e) when Index.error_is_no_space e -> Ok None
    | Error e -> Error e

  (* Every iteration binds and drains: the resets staged by one reclaim
     reference the promise current at staging time, so they can only retire
     after the {e next} record — flushing once at the end would leave the
     last round's resets pending and the extents they cover unusable. *)
  let rec drain_reclaim ?avoid t =
    let* r = reclaim_soft ?avoid t in
    unwedge_writeback t;
    match r with
    | Some _ -> drain_reclaim ?avoid t
    | None -> Ok ()

  let normalize_no_space = function
    | Ok dep -> Ok dep
    | Error e when Index.error_is_no_space e -> Error No_space
    | Error e -> Error (Index e)

  let compact t =
    match Index.compact t.index with
    | Ok dep -> Ok dep
    | Error e when Index.error_is_no_space e ->
      bind_flush_promise t;
      let* () = drain_reclaim t in
      normalize_no_space (Index.compact t.index)
    | Error e -> Error (Index e)

  (* Space-pressure compaction is always a {e major} compaction: merge
     every run into one generation so all superseded chunks become garbage
     at once. Incremental levelled steps are wrong here — each rewrites a
     victim into fresh chunks, churning extents faster than reclamation
     returns them. The trigger-driven steps handle steady-state
     maintenance; this is the escape hatch. *)
  let compact_gc t =
    match Index.compact_major t.index with
    | Ok _ -> Ok ()
    | Error e when Index.error_is_no_space e -> (
      bind_flush_promise t;
      let* () = drain_reclaim t in
      match Index.compact_major t.index with
      | Ok _ -> Ok ()
      | Error e when Index.error_is_no_space e -> Ok ()
      | Error e -> Error (Index e))
    | Error e -> Error (Index e)

  (* A rejected flush is retried after garbage collection: reclamation
     frees extents, and compaction also shrinks the metadata record (an
     oversized run list is resource pressure too). *)
  let flush_index_gc t ~for_shutdown =
    match Index.flush t.index ~for_shutdown with
    | Ok dep -> Ok dep
    | Error e when Index.error_is_no_space e -> (
      unwedge_writeback t;
      let* () = drain_reclaim t in
      match Index.flush t.index ~for_shutdown with
      | Ok dep -> Ok dep
      | Error e when Index.error_is_no_space e ->
        let* () = compact_gc t in
        let* () = drain_reclaim t in
        normalize_no_space (Index.flush t.index ~for_shutdown)
      | Error e -> Error (Index e))
    | Error e -> Error (Index e)

  let flush_index t = flush_index_gc t ~for_shutdown:false

  (* {2 Request plane} *)

  let split_value t value =
    let max_len = t.cfg.max_chunk_payload in
    let rec go off acc =
      if off >= String.length value then List.rev acc
      else begin
        let len = min max_len (String.length value - off) in
        go (off + len) (String.sub value off len :: acc)
      end
    in
    go 0 []

  (* Store one chunk; on extent exhaustion, garbage-collect (reclaim, then
     compact to orphan old runs, then reclaim again) and retry. *)
  let put_chunk t ~owner ~payload =
    let attempt () =
      match Chunk.Chunk_store.put t.chunks ~owner ~payload with
      | Ok r -> Ok (Some r)
      | Error Chunk.Chunk_store.No_space -> Ok None
      | Error e -> Error (Chunk_error e)
    in
    let* first = attempt () in
    match first with
    | Some r -> Ok r
    | None -> (
      Obs.Counter.incr t.m.m_gc_fallback;
      if Obs.tracing t.obs then Obs.emit t.obs ~layer:"store" "gc_fallback" [];
      bind_flush_promise t;
      let* _ = reclaim_soft t in
      unwedge_writeback t;
      let* second = attempt () in
      match second with
      | Some r -> Ok r
      | None -> (
        let* () = compact_gc t in
        let* () = drain_reclaim t in
        (* Draining the scheduler lets pending resets complete, returning
           reclaimed extents to the allocatable pool. *)
        ignore (Io_sched.pump t.sched);
        let* third = attempt () in
        match third with
        | Some r -> Ok r
        | None -> Error No_space))

  (* Post-mutation maintenance, amortized over [n] operations: the flush /
     compact / cadence checks run once per batch, and batched writeback
     ([Io_sched.submit_batch]) replaces the per-op randomized pump when
     [n > 1]. For [n = 1] the behaviour (including the cadence arithmetic
     and the RNG consumption of [pump]) is exactly the pre-batching one. *)
  let after_mutations t n =
    if n > 0 then begin
      let before = t.mutations in
      t.mutations <- before + n;
      if
        t.cfg.index_flush_threshold > 0
        && Index.memtable_size t.index >= t.cfg.index_flush_threshold
      then ignore (flush_index t);
      if
        t.cfg.compact_threshold > 0
        && (Index.run_count t.index > t.cfg.compact_threshold
           || Index.compaction_due t.index)
      then ignore (compact t);
      if
        t.cfg.superblock_cadence > 0
        && t.mutations / t.cfg.superblock_cadence > before / t.cfg.superblock_cadence
        && Superblock.dirty t.sb
      then ignore (flush_superblock t);
      if t.cfg.auto_pump > 0 then
        if n = 1 then ignore (pump t t.cfg.auto_pump)
        else ignore (Io_sched.submit_batch ~max_ios:(t.cfg.auto_pump * n) t.sched)
    end

  let after_mutation t = after_mutations t 1

  (* The body of [put] minus the service check and maintenance — batch
     entry points pay those once for N ops. *)
  let put_locked t ~key ~value =
    Obs.Counter.incr t.m.m_puts;
    Obs.Histogram.observe t.m.m_value_bytes (float_of_int (String.length value));
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"store" "put"
        [ ("key", key); ("bytes", string_of_int (String.length value)) ];
    let owner = Chunk.Chunk_format.Shard key in
    let* locators, value_dep =
      Fun.protect
        ~finally:(fun () -> t.in_flight <- [])
        (fun () ->
          List.fold_left
            (fun acc payload ->
              let* locs, dep = acc in
              t.in_flight <-
                List.map (fun (l : Chunk.Locator.t) -> l.Chunk.Locator.extent) locs;
              let* loc, chunk_dep = put_chunk t ~owner ~payload in
              Ok (loc :: locs, Dep.and_ dep chunk_dep))
            (Ok ([], Dep.trivial))
            (split_value t value))
    in
    Ok (Index.put t.index ~key ~locators:(List.rev locators) ~value_dep)

  let put t ~key ~value =
    let* () = check_service t in
    let* dep = put_locked t ~key ~value in
    after_mutation t;
    Ok dep

  (* Resolve a locator list to the value bytes, checking shard ownership
     of every chunk — shared by [get] and [scan_next]. *)
  let read_value t ~key locs =
    let buf = Buffer.create 256 in
    let* () =
      List.fold_left
        (fun acc loc ->
          let* () = acc in
          let* chunk = chunk_err (Chunk.Chunk_store.get t.chunks loc) in
          match chunk.Chunk.Chunk_format.owner with
          | Chunk.Chunk_format.Shard k when String.equal k key ->
            Buffer.add_string buf chunk.Chunk.Chunk_format.payload;
            Ok ()
          | Chunk.Chunk_format.Shard _ | Chunk.Chunk_format.Index_run _ ->
            Error (Wrong_owner key))
        (Ok ()) locs
    in
    Ok (Buffer.contents buf)

  let get t ~key =
    let* () = check_service t in
    Obs.Counter.incr t.m.m_gets;
    let* locs = index_err (Index.get t.index ~key) in
    match locs with
    | None -> Ok None
    | Some locs ->
      let* value = read_value t ~key locs in
      Ok (Some value)

  (* {2 Range scans} *)

  type scan = { cursor : Index.cursor; scan_store : t }

  let scan t ?lo ?hi () =
    let* () = check_service t in
    Obs.Counter.incr t.m.m_scans;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"store" "scan"
        [ ("lo", Option.value ~default:"-" lo); ("hi", Option.value ~default:"-" hi) ];
    let* cursor = index_err (Index.scan t.index ~lo ~hi) in
    Ok { cursor; scan_store = t }

  (* The cursor pinned the key set at open; the value chunks are read per
     entry, so this can fail like [get] (e.g. a reclaim moved the chunk
     after open — the index snapshot keeps the stale locator). *)
  let scan_next s =
    let t = s.scan_store in
    let* () = check_service t in
    match Index.cursor_next s.cursor with
    | None -> Ok None
    | Some (key, locs) ->
      let* value = read_value t ~key locs in
      Ok (Some (key, value))

  let level_runs t = Index.level_runs t.index
  let level_invariants t = Index.level_invariants t.index

  let delete_locked t ~key =
    Obs.Counter.incr t.m.m_deletes;
    if Obs.tracing t.obs then Obs.emit t.obs ~layer:"store" "delete" [ ("key", key) ];
    Index.delete t.index ~key

  let delete t ~key =
    let* () = check_service t in
    let dep = delete_locked t ~key in
    after_mutation t;
    Ok dep

  (* {2 Batched request plane (group commit)} *)

  type batch_result = { results : (Dep.t, error) result list; barrier : Dep.t }

  let barrier_of results =
    Dep.all (List.filter_map (function Ok d -> Some d | Error _ -> None) results)

  let put_batch t ops =
    let* () = check_service t in
    let n = List.length ops in
    Obs.Counter.incr t.m.m_put_batches;
    Obs.Histogram.observe t.m.m_batch_ops (float_of_int n);
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"store" "put_batch" [ ("ops", string_of_int n) ];
    (* One memtable reservation for the whole batch: flush up front when the
       N inserts would cross the threshold, instead of checking per op. *)
    if
      t.cfg.index_flush_threshold > 0
      && Index.memtable_size t.index > 0
      && Index.memtable_size t.index + n > t.cfg.index_flush_threshold
    then ignore (flush_index t);
    let per_op =
      List.map
        (fun (key, value) ->
          (key, value, List.map (fun p -> (Chunk.Chunk_format.Shard key, p)) (split_value t value)))
        ops
    in
    let items = List.concat_map (fun (_, _, items) -> items) per_op in
    let results =
      match Chunk.Chunk_store.put_batch t.chunks ~items with
      | Ok chunk_results ->
        (* Coalesced allocation succeeded for every chunk: regroup the
           results per op (item order is the concatenation of the per-op
           splits) and install the index entries, which cannot fail. *)
        let rest = ref chunk_results in
        List.map
          (fun (key, value, op_items) ->
            let k = List.length op_items in
            let rec take k acc l =
              if k = 0 then (List.rev acc, l)
              else
                match l with
                | [] -> assert false
                | x :: tl -> take (k - 1) (x :: acc) tl
            in
            let mine, others = take k [] !rest in
            rest := others;
            (* Telemetry is batch-granularity on this path: the [put_batch]
               trace above covers the group; only the counters are per op. *)
            Obs.Counter.incr t.m.m_puts;
            Obs.Histogram.observe t.m.m_value_bytes (float_of_int (String.length value));
            let locators = List.map fst mine in
            let value_dep = Dep.all (List.map snd mine) in
            Ok (Index.put t.index ~key ~locators ~value_dep))
          per_op
      | Error _ ->
        (* Group allocation hit resource pressure (or an IO fault): fall
           back to the sequential path per op, which carries the reclaim /
           compact GC ladder, and record per-op outcomes. *)
        Obs.Counter.incr t.m.m_batch_fallback;
        if Obs.tracing t.obs then Obs.emit t.obs ~layer:"store" "put_batch_fallback" [];
        List.map (fun (key, value, _) -> put_locked t ~key ~value) per_op
    in
    after_mutations t n;
    Ok { results; barrier = barrier_of results }

  let delete_batch t keys =
    let* () = check_service t in
    let n = List.length keys in
    Obs.Counter.incr t.m.m_delete_batches;
    Obs.Histogram.observe t.m.m_batch_ops (float_of_int n);
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"store" "delete_batch" [ ("ops", string_of_int n) ];
    let results = List.map (fun key -> Ok (delete_locked t ~key)) keys in
    after_mutations t n;
    Ok { results; barrier = barrier_of results }

  let list t =
    let* () = check_service t in
    index_err (Index.keys t.index)

  let locators t ~key = index_err (Index.get t.index ~key)

  (* {2 Crash and recovery} *)

  type reboot_spec = {
    flush_index_first : bool;
    flush_superblock_first : bool;
    persist_probability : float;
    split_pages : bool;
  }

  let clean_reboot_spec =
    {
      flush_index_first = true;
      flush_superblock_first = true;
      persist_probability = 1.0;
      split_pages = false;
    }

  let recover t =
    Obs.Counter.incr t.m.m_recovers;
    if Obs.tracing t.obs then Obs.emit t.obs ~layer:"store" "recover" [];
    (* Recovery reads back what the disk durably has; it does not re-roll
       the fault dice. An armed one-shot fault firing mid-recovery would
       abort the reload halfway (stale index refs over a reset cache) and
       desynchronize every crash checker built on reboot determinism. *)
    Disk.with_faults_suspended t.disk (fun () ->
        (* A restart loses volatile state: staged writes that never reached
           the disk must not be visible to the recovery scans — and neither
           may cached pages from before the crash, since the index reloads
           run contents through the cache while recovering. *)
        Io_sched.discard_volatile t.sched;
        Cache.invalidate_all t.cache;
        ignore (Superblock.recover t.sb);
        let* () = index_err (Index.recover t.index) in
        Chunk.Chunk_store.close_open_extent t.chunks;
        t.in_service <- true;
        Ok ())

  let dirty_reboot t ~rng spec =
    Obs.Counter.incr t.m.m_dirty_reboots;
    if Obs.tracing t.obs then Obs.emit t.obs ~layer:"store" "dirty_reboot" [];
    if spec.flush_index_first then ignore (Index.flush t.index ~for_shutdown:false);
    if spec.flush_superblock_first then ignore (Superblock.flush t.sb);
    let (_ : Io_sched.crash_report) =
      Io_sched.crash t.sched ~rng ~persist_probability:spec.persist_probability
        ~split_pages:spec.split_pages
    in
    recover t

  let clean_shutdown t =
    Obs.Counter.incr t.m.m_clean_shutdowns;
    if Obs.tracing t.obs then Obs.emit t.obs ~layer:"store" "clean_shutdown" [];
    let* _dep = flush_index_gc t ~for_shutdown:true in
    let* _dep = sb_err (Superblock.flush t.sb) in
    Result.map_error (fun e -> Io e) (Io_sched.flush t.sched)

  (* {2 Control plane} *)

  let remove_from_service t =
    let* () = check_service t in
    (* Fault #4: shards could be lost if a disk was removed from service
       and then later returned — the defect skips persisting the memtable
       on the way out. *)
    let* _dep =
      if Faults.enabled Faults.F4_disk_return_loses_shards then begin
        Faults.record_fired Faults.F4_disk_return_loses_shards;
        Ok Dep.trivial
      end
      else flush_index_gc t ~for_shutdown:true
    in
    let* _dep = sb_err (Superblock.flush t.sb) in
    let* () = Result.map_error (fun e -> Io e) (Io_sched.flush t.sched) in
    t.in_service <- false;
    Ok ()

  let return_to_service t =
    if t.in_service then Ok ()
    else begin
      let* () = recover t in
      t.in_service <- true;
      Ok ()
    end
end

module Default = Make (struct
  include Lsm.Index

  let create ?obs chunks ~metadata_extents = Lsm.Index.create ?obs chunks ~metadata_extents
end)

(* {2 The shared-state entry point} *)

module Shared = struct
  type error = Default.error

  type metrics = {
    m_puts : Obs.Counter.t;
    m_gets : Obs.Counter.t;
    m_deletes : Obs.Counter.t;
    m_scans : Obs.Counter.t;
    m_staged_hits : Obs.Counter.t;
    m_flushes : Obs.Counter.t;
    m_drained : Obs.Counter.t;
    m_stack_holds : Obs.Counter.t;  (* stack write sections taken by flushes *)
    m_compacts : Obs.Counter.t;
    m_reclaims : Obs.Counter.t;
    m_reboots : Obs.Counter.t;
  }

  type t = {
    base : Default.t;
    staging : string option Conc.Shard_table.t;  (* None = staged tombstone *)
    stack : Conc.Rwlock.t;  (* guards every [base] access *)
    maint : Conc.Rwlock.t;  (* serializes the maintenance plane; first in the lock order *)
    flush_chunk : int;  (* ops applied per stack hold during a flush; 0 = whole drain *)
    trace : Tracecheck.Trace.Recorder.t option;
    obs : Obs.t;
    m : metrics;
  }

  let create ?(shards = 8) ?(flush_chunk = 32) ?obs ?trace cfg =
    let obs =
      match obs with
      | Some o ->
        (* The trace ring is single-domain; this store is not. *)
        Obs.set_tracing o false;
        o
      | None -> Obs.create ~scope:"shared-store" ()
    in
    {
      base = Default.create ~obs cfg;
      staging = Conc.Shard_table.create ~shards ();
      stack = Conc.Rwlock.create ();
      maint = Conc.Rwlock.create ();
      flush_chunk;
      trace;
      obs;
      m =
        {
          m_puts = Obs.counter obs "shared.put";
          m_gets = Obs.counter obs "shared.get";
          m_deletes = Obs.counter obs "shared.delete";
          m_scans = Obs.counter obs "shared.scan";
          m_staged_hits = Obs.counter ~coverage:true obs "shared.get.staged";
          m_flushes = Obs.counter obs "shared.flush";
          m_drained = Obs.counter obs "shared.flush.drained";
          m_stack_holds = Obs.counter obs "shared.flush.stack_holds";
          m_compacts = Obs.counter obs "shared.maint.compact";
          m_reclaims = Obs.counter obs "shared.maint.reclaim";
          m_reboots = Obs.counter obs "shared.maint.reboot";
        };
    }

  let obs t = t.obs
  let store t = t.base
  let shards t = Conc.Shard_table.shards t.staging
  let staged_count t = Conc.Shard_table.size t.staging

  (* Wire-trace hooks. Recorder calls sit strictly outside the staging
     and stack lock closures (the trace lock is a leaf); the recorded
     interval therefore contains the operation's linearization point. *)
  let trace_invoke t op =
    match t.trace with
    | None -> -1
    | Some r -> Tracecheck.Trace.Recorder.invoke r ~src:"shared" op

  let trace_respond t id outcome =
    match t.trace with
    | None -> ()
    | Some r -> Tracecheck.Trace.Recorder.respond r ~src:"shared" ~id outcome

  (* Staging under the shard write lock is the linearization point of a
     mutation: once the lock is released the new value is visible to
     every get of the key, whether or not it has been flushed down. *)
  let put t ~key ~value =
    Obs.Counter.incr t.m.m_puts;
    let id = trace_invoke t (Tracecheck.Trace.Put { key; value }) in
    Conc.Shard_table.with_key_write t.staging key (fun tbl ->
        Hashtbl.replace tbl key (Some value));
    trace_respond t id Tracecheck.Trace.Acked;
    Ok ()

  let delete t ~key =
    Obs.Counter.incr t.m.m_deletes;
    let id = trace_invoke t (Tracecheck.Trace.Delete { key }) in
    Conc.Shard_table.with_key_write t.staging key (fun tbl -> Hashtbl.replace tbl key None);
    trace_respond t id Tracecheck.Trace.Acked;
    Ok ()

  (* The shard read lock is held across BOTH the staged probe and the
     base read: a flush of this shard cannot slide in between, so a get
     observes either (staged value) or (post-flush base value), never
     the window where the key is in neither place. *)
  let get t ~key =
    Obs.Counter.incr t.m.m_gets;
    let id = trace_invoke t (Tracecheck.Trace.Get { key }) in
    let res =
      Conc.Shard_table.with_key_read t.staging key (fun tbl ->
          match Hashtbl.find_opt tbl key with
          | Some v ->
            Obs.Counter.incr t.m.m_staged_hits;
            Ok v
          | None -> Conc.Rwlock.with_read t.stack (fun () -> Default.get t.base ~key))
    in
    (match res with
    | Ok v -> trace_respond t id (Tracecheck.Trace.Got v)
    | Error _ -> trace_respond t id Tracecheck.Trace.Unavailable);
    res

  (* Per-op outcomes of a staged batch, aligned with the per-op
     [Store_intf.S.batch_result] shape: staging itself cannot fail per op
     today, but callers get the same report-per-op contract as the
     sequential store instead of a bare unit. *)
  type batch_result = { results : (unit, error) result list }

  (* Batch staging: per-shard groups, each staged under one shard write
     lock acquisition, shards visited in ascending index order (the
     global lock order). Within a shard the original op order is kept,
     so a later op on the same key wins, as in the sequential loop. *)
  let stage_batch t entries =
    let by_shard = Array.make (shards t) [] in
    List.iter
      (fun (k, v) ->
        let i = Conc.Shard_table.shard_of t.staging k in
        by_shard.(i) <- (k, v) :: by_shard.(i))
      entries;
    Array.iteri
      (fun i group ->
        if group <> [] then
          Conc.Shard_table.with_shard_write t.staging i (fun tbl ->
              List.iter (fun (k, v) -> Hashtbl.replace tbl k v) (List.rev group)))
      by_shard

  let put_batch t ops =
    Obs.Counter.incr t.m.m_puts;
    let entries = List.map (fun (k, v) -> (k, Some v)) ops in
    let id = trace_invoke t (Tracecheck.Trace.Batch entries) in
    stage_batch t entries;
    trace_respond t id (Tracecheck.Trace.Batch_done (List.map (fun _ -> true) ops));
    Ok { results = List.map (fun _ -> Ok ()) ops }

  let delete_batch t keys =
    Obs.Counter.incr t.m.m_deletes;
    let entries = List.map (fun k -> (k, None)) keys in
    let id = trace_invoke t (Tracecheck.Trace.Batch entries) in
    stage_batch t entries;
    trace_respond t id (Tracecheck.Trace.Batch_done (List.map (fun _ -> true) keys));
    Ok { results = List.map (fun _ -> Ok ()) keys }

  let first_batch_error (r : Default.batch_result) =
    List.find_map (function Error e -> Some e | Ok _ -> None) r.Default.results

  let check_batch = function
    | Error e -> Error e
    | Ok r -> (match first_batch_error r with Some e -> Error e | None -> Ok ())

  (* Split [l] into groups of at most [n], preserving order. *)
  let chunked n l =
    let rec go acc cur len = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
        if len = n then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (len + 1) rest
    in
    go [] [] 0 l

  (* Drain one shard into the base store. The shard write lock covers the
     whole drain — a get of one of THIS shard's keys blocks, so it can
     never observe the window where a key is in neither staging nor base
     — but the stack write lock is narrowed: with [flush_chunk > 0] it is
     taken per chunk of that many ops, so foreground gets on OTHER shards
     (shard read + stack read) keep flowing between chunks.
     [flush_chunk = 0] restores the coarse protocol (one stack hold
     across the whole drain) — the global-stack-lock baseline that
     [bench/maint_bench.exe] measures contention against.

     Error semantics: on any batch error the staging table is left
     intact. Chunks already applied below are harmless — staging still
     shadows them, and re-running the flush re-applies the same values
     idempotently — so an acked mutation is never dropped. *)
  let flush_shard_exn t i =
    Conc.Shard_table.with_shard_write t.staging i (fun tbl ->
        let puts = Util.Tbl.fold_sorted (fun k v acc ->
            match v with Some v -> (k, v) :: acc | None -> acc) tbl []
        in
        let dels = Util.Tbl.fold_sorted (fun k v acc ->
            match v with None -> k :: acc | Some _ -> acc) tbl []
        in
        let drained = Hashtbl.length tbl in
        let ( let* ) = Result.bind in
        let res =
          if puts = [] && dels = [] then Ok ()
          else if t.flush_chunk <= 0 then
            Conc.Rwlock.with_write t.stack (fun () ->
                Obs.Counter.incr t.m.m_stack_holds;
                let* () =
                  if puts = [] then Ok () else check_batch (Default.put_batch t.base puts)
                in
                if dels = [] then Ok () else check_batch (Default.delete_batch t.base dels))
          else
            let apply f groups =
              List.fold_left
                (fun acc group ->
                  let* () = acc in
                  Conc.Rwlock.with_write t.stack (fun () ->
                      Obs.Counter.incr t.m.m_stack_holds;
                      check_batch (f group)))
                (Ok ()) groups
            in
            let* () =
              if puts = [] then Ok ()
              else apply (Default.put_batch t.base) (chunked t.flush_chunk puts)
            in
            if dels = [] then Ok ()
            else apply (Default.delete_batch t.base) (chunked t.flush_chunk dels)
        in
        match res with
        | Ok () ->
          Hashtbl.reset tbl;
          Obs.Counter.add t.m.m_drained drained;
          Ok drained
        | Error e -> Error e)

  let mark_flush t =
    match t.trace with
    | Some r -> Tracecheck.Trace.Recorder.mark r ~src:"shared" Tracecheck.Trace.Flush
    | None -> ()

  (* {2 Maintenance plane}

     Every operation below first takes the [maint] write lock — class
     "maint", FIRST in the global order maint < shard < stack < cache —
     so maintenance is serialized against itself (two domains calling
     [flush] and [compact] never interleave structurally) while staying
     free to take any shard or stack lock underneath. Foreground ops
     never touch the maint lock, so maintenance costs them nothing on
     the hot path. *)

  (* Flush every shard, ascending. On an error the failing shard (and
     the ones after it) keep their staged entries — acked mutations are
     never dropped, they stay visible from staging. *)
  let flush t =
    Obs.Counter.incr t.m.m_flushes;
    let res =
      Conc.Rwlock.with_write t.maint (fun () ->
          let rec go i drained =
            if i >= shards t then Ok drained
            else
              match flush_shard_exn t i with
              | Ok n -> go (i + 1) (drained + n)
              | Error e -> Error e
          in
          go 0 0)
    in
    mark_flush t;
    res

  let flush_shard t i =
    if i < 0 || i >= shards t then invalid_arg "Store.Shared.flush_shard: shard out of range";
    Obs.Counter.incr t.m.m_flushes;
    let res = Conc.Rwlock.with_write t.maint (fun () -> flush_shard_exn t i) in
    mark_flush t;
    res

  (* Structural maintenance on the base store needs no shard lock —
     staging is untouched, and the stack write lock alone orders it
     against every foreground read of the base. *)
  let compact t =
    Obs.Counter.incr t.m.m_compacts;
    Conc.Rwlock.with_write t.maint (fun () ->
        Conc.Rwlock.with_write t.stack (fun () ->
            Result.map (fun (_ : Dep.t) -> ()) (Default.compact t.base)))

  let reclaim t =
    Obs.Counter.incr t.m.m_reclaims;
    Conc.Rwlock.with_write t.maint (fun () ->
        Conc.Rwlock.with_write t.stack (fun () ->
            Result.map Option.is_some (Default.reclaim t.base ())))

  (* Drain every staged entry (an acked mutation must reach the disk),
     then flush and drain the base store below. *)
  let clean_shutdown t =
    Conc.Rwlock.with_write t.maint (fun () ->
        let ( let* ) = Result.bind in
        let rec go i =
          if i >= shards t then Ok ()
          else match flush_shard_exn t i with Ok _ -> go (i + 1) | Error e -> Error e
        in
        let* () = go 0 in
        Conc.Rwlock.with_write t.stack (fun () -> Default.clean_shutdown t.base))

  (* A dirty reboot models a crash: staged entries are volatile state and
     are DROPPED — acked-but-unflushed mutations are lost exactly like
     the memtable below loses its unflushed entries, which is why crash
     workloads sequence this after the racing domains have joined (or
     account for the loss in their model). All shard write locks are
     taken (ascending) around the stack write lock so no foreground op is
     mid-flight when volatile state vanishes. *)
  let dirty_reboot t ~rng spec =
    Obs.Counter.incr t.m.m_reboots;
    Conc.Rwlock.with_write t.maint (fun () ->
        Conc.Shard_table.with_all_write t.staging (fun tables ->
            Array.iter Hashtbl.reset tables;
            Conc.Rwlock.with_write t.stack (fun () -> Default.dirty_reboot t.base ~rng spec)))

  (* The dedicated maintenance domain: a [Conc.Domains.Worker] stepping
     round-robin shard flushes with periodic compact/reclaim, racing
     foreground domains through the ops above (each step takes the maint
     lock per op, so a foreground [flush] still slots in between). *)
  module Maint = struct
    type stats = {
      steps : int;
      flushes : int;
      drained : int;
      compacts : int;
      reclaims : int;
      errors : int;
    }

    type worker = {
      w : Conc.Domains.Worker.t;
      stats : stats ref;  (* written only by the worker domain; read after the join *)
    }

    let start ?(compact_every = 0) ?(reclaim_every = 0) t =
      let stats =
        ref { steps = 0; flushes = 0; drained = 0; compacts = 0; reclaims = 0; errors = 0 }
      in
      let bump f = stats := f !stats in
      (* All three refs below are owned by the worker domain (written and
         read only inside [step]); the join in [stop] publishes them. *)
      let idle = ref 0 in
      (* drains since the last compact / compacts since the last reclaim:
         maintenance follows the data, it doesn't run on a free-spinning
         clock. A worker that compacts the whole LSM thousands of times a
         second over an idle store is pure foreground starvation. *)
      let dirty = ref 0 and compacted = ref 0 in
      let step n =
        let shard = n mod shards t in
        (* Cheap reader-side probe: skip clean shards without touching
           any write lock, and back off while the store stays idle so a
           busy foreground never contends with a no-op flush loop. *)
        let staged =
          Conc.Shard_table.with_shard_read t.staging shard (fun tbl -> Hashtbl.length tbl)
        in
        if staged = 0 then begin
          idle := min (!idle + 1) 64;
          for _ = 1 to !idle * 64 do
            Conc.Domains.relax ()
          done
        end
        else begin
          idle := 0;
          match flush_shard t shard with
          | Ok d ->
            dirty := !dirty + d;
            bump (fun s -> { s with flushes = s.flushes + 1; drained = s.drained + d })
          | Error _ -> bump (fun s -> { s with errors = s.errors + 1 })
        end;
        (if compact_every > 0 && n mod compact_every = compact_every - 1 && !dirty > 0 then begin
           dirty := 0;
           match compact t with
           | Ok () ->
             incr compacted;
             bump (fun s -> { s with compacts = s.compacts + 1 })
           | Error _ -> bump (fun s -> { s with errors = s.errors + 1 })
         end);
        (if reclaim_every > 0 && n mod reclaim_every = reclaim_every - 1 && !compacted > 0
         then begin
           compacted := 0;
           match reclaim t with
           | Ok _ -> bump (fun s -> { s with reclaims = s.reclaims + 1 })
           | Error _ -> bump (fun s -> { s with errors = s.errors + 1 })
         end);
        bump (fun s -> { s with steps = s.steps + 1 })
      in
      { w = Conc.Domains.Worker.start step; stats }

    let stop worker =
      let (_ : int) = Conc.Domains.Worker.stop worker.w in
      !(worker.stats)
  end

  (* Staged overlay on top of the base listing. All shard read locks are
     held (ascending) around the stack read, so the overlay and the base
     snapshot are mutually consistent. *)
  let list t =
    Conc.Shard_table.with_all_read t.staging (fun tables ->
        Conc.Rwlock.with_read t.stack (fun () ->
            match Default.list t.base with
            | Error _ as e -> e
            | Ok base_keys ->
              let adds, tombs =
                Array.fold_left
                  (fun (adds, tombs) tbl ->
                    Util.Tbl.fold_sorted
                      (fun k v (adds, tombs) ->
                        match v with
                        | Some _ -> (k :: adds, tombs)
                        | None -> (adds, k :: tombs))
                      tbl (adds, tombs))
                  ([], []) tables
              in
              let live =
                List.filter (fun k -> not (List.mem k adds || List.mem k tombs)) base_keys
              in
              Ok (List.sort_uniq compare (adds @ live))))

  (* Materialized range scan with the staged overlay applied: staged
     values shadow the base scan, staged tombstones hide base entries.
     Same lock shape as [list] — all shard read locks (ascending) around
     the stack read lock, the established shard < stack order — so the
     overlay and the base cursor snapshot are mutually consistent and the
     result equals what [Store.Default.scan] would yield after a drain. *)
  let scan t ?lo ?hi () =
    Obs.Counter.incr t.m.m_scans;
    let id = trace_invoke t (Tracecheck.Trace.Scan { lo; hi }) in
    let in_range k =
      (match lo with None -> true | Some l -> String.compare l k <= 0)
      && match hi with None -> true | Some h -> String.compare k h <= 0
    in
    let res =
      Conc.Shard_table.with_all_read t.staging (fun tables ->
        Conc.Rwlock.with_read t.stack (fun () ->
            let ( let* ) = Result.bind in
            let* s = Default.scan t.base ?lo ?hi () in
            let rec drain acc =
              match Default.scan_next s with
              | Error _ as e -> e
              | Ok None -> Ok (List.rev acc)
              | Ok (Some pair) -> drain (pair :: acc)
            in
            let* base_pairs = drain [] in
            let staged =
              Array.fold_left
                (fun acc tbl ->
                  Util.Tbl.fold_sorted
                    (fun k v acc -> if in_range k then (k, v) :: acc else acc)
                    tbl acc)
                [] tables
            in
            (* Each key lives in exactly one shard table, so [staged] has
               no duplicate keys. *)
            let overridden = Hashtbl.create 16 in
            List.iter (fun (k, _) -> Hashtbl.replace overridden k ()) staged;
            let kept = List.filter (fun (k, _) -> not (Hashtbl.mem overridden k)) base_pairs in
            let adds =
              List.filter_map (fun (k, v) -> Option.map (fun v -> (k, v)) v) staged
            in
            Ok (List.sort (fun (a, _) (b, _) -> String.compare a b) (adds @ kept))))
    in
    (match res with
    | Ok items -> trace_respond t id (Tracecheck.Trace.Scanned { items; complete = true })
    | Error _ -> trace_respond t id Tracecheck.Trace.Unavailable);
    res
end
