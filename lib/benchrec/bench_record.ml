type digest = {
  count : int;
  sum : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  saturated : bool;
}

(* Quantile = upper bound of the first bucket whose cumulative count
   reaches the rank. The overflow bucket has no finite bound; report the
   largest finite one and flag the digest as saturated. *)
let digest_of_buckets ~count ~sum buckets =
  let finite_max =
    List.fold_left (fun acc (b, _) -> if Float.is_finite b then b else acc) 0.0 buckets
  in
  let saturated = ref false in
  let quantile q =
    let rank = int_of_float (ceil (q *. float_of_int count)) in
    let rec go cum = function
      | [] -> finite_max
      | (bound, n) :: rest ->
        let cum = cum + n in
        if cum >= rank then
          if Float.is_finite bound then bound
          else begin
            saturated := true;
            finite_max
          end
        else go cum rest
    in
    go 0 buckets
  in
  if count = 0 then
    { count = 0; sum = 0.0; mean = 0.0; p50 = 0.0; p95 = 0.0; p99 = 0.0; saturated = false }
  else
    let p50 = quantile 0.5 and p95 = quantile 0.95 and p99 = quantile 0.99 in
    { count; sum; mean = sum /. float_of_int count; p50; p95; p99; saturated = !saturated }

let latencies obs =
  List.filter_map
    (fun s ->
      match s.Obs.value with
      | Obs.Histogram_v { buckets; count; sum } when count > 0 ->
        let name =
          match s.Obs.labels with
          | [] -> s.Obs.name
          | labels ->
            s.Obs.name ^ "{"
            ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
            ^ "}"
        in
        Some (name, digest_of_buckets ~count ~sum buckets)
      | _ -> None)
    (Obs.snapshot obs)

(* --- repository discovery and HEAD resolution, no subprocess --- *)

let rec find_root dir =
  if Sys.file_exists (Filename.concat dir ".git") then Some dir
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_root parent

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ -> None

let first_line s =
  match String.index_opt s '\n' with Some i -> String.sub s 0 i | None -> s

(* A ref missing from .git/refs (fresh clone, packed repository) lives in
   .git/packed-refs as "<hash> <refname>" lines. *)
let packed_ref git refname =
  match read_file (Filename.concat git "packed-refs") with
  | None -> None
  | Some body ->
    String.split_on_char '\n' body
    |> List.find_map (fun line ->
           match String.index_opt line ' ' with
           | Some i when String.sub line (i + 1) (String.length line - i - 1) = refname ->
             Some (String.sub line 0 i)
           | _ -> None)

let resolve_relative ~base path =
  if Filename.is_relative path then Filename.concat base path else path

(* [.git] is a directory in a primary checkout but a one-line
   "gitdir: <path>" file in worktrees and submodules. *)
let git_dir root =
  let dotgit = Filename.concat root ".git" in
  if Sys.is_directory dotgit then Some dotgit
  else
    match read_file dotgit with
    | None -> None
    | Some body ->
      let line = String.trim (first_line body) in
      if String.length line > 7 && String.sub line 0 7 = "gitdir:" then
        Some (resolve_relative ~base:root (String.trim (String.sub line 7 (String.length line - 7))))
      else None

(* A worktree's git dir holds its own HEAD, but refs/ and packed-refs
   live in the primary repository's dir, pointed to by [commondir]. *)
let common_dir git =
  match read_file (Filename.concat git "commondir") with
  | Some body -> resolve_relative ~base:git (String.trim (first_line body))
  | None -> git

let commit ?(dir = Sys.getcwd ()) () =
  match Option.bind (find_root dir) git_dir with
  | None -> "unknown"
  | Some git -> (
    match read_file (Filename.concat git "HEAD") with
    | None -> "unknown"
    | Some head -> (
      let head = String.trim (first_line head) in
      match String.length head > 5 && String.sub head 0 5 = "ref: " with
      | false -> head (* detached HEAD: the hash itself *)
      | true -> (
        let refname = String.trim (String.sub head 5 (String.length head - 5)) in
        let common = common_dir git in
        match read_file (Filename.concat common refname) with
        | Some hash -> String.trim (first_line hash)
        | None -> (
          match packed_ref common refname with Some hash -> hash | None -> "unknown"))))

(* --- JSON encoding (flat records only, so hand-rolled is fine) --- *)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let json_digest d =
  json_obj
    [
      ("count", string_of_int d.count);
      ("sum", json_float d.sum);
      ("mean", json_float d.mean);
      ("p50", json_float d.p50);
      ("p95", json_float d.p95);
      ("p99", json_float d.p99);
      ("saturated", string_of_bool d.saturated);
    ]

let append ?(dir = Sys.getcwd ()) ~bench ~domains ~workload ~metrics ?obs () =
  let root = Option.value (find_root dir) ~default:dir in
  let path = Filename.concat root (Printf.sprintf "BENCH_%s.json" bench) in
  let latency =
    match obs with
    | None -> []
    | Some obs -> [ ("latency", json_obj (List.map (fun (n, d) -> (n, json_digest d)) (latencies obs))) ]
  in
  (* Every workload stanza records the domain count in the same place, so
     the perf trajectory can always be sliced by parallelism; the wall
     clock is read through Util.Wallclock, the repo's single funnel for
     the determinism lint. *)
  let workload = ("domains", string_of_int domains) :: workload in
  let record =
    json_obj
      ([
         ("bench", json_string bench);
         ("commit", json_string (commit ~dir ()));
         ("unix_time", string_of_int (int_of_float (Util.Wallclock.now_s ())));
         ("workload", json_obj (List.map (fun (k, v) -> (k, json_string v)) workload));
         ("metrics", json_obj (List.map (fun (k, v) -> (k, json_float v)) metrics));
       ]
      @ latency)
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc record;
      output_char oc '\n');
  path
