(** Append-only benchmark records.

    Each bench run appends one JSON line to [BENCH_<name>.json] in the
    repository root, so successive runs accumulate a commit-stamped
    history that can be diffed or plotted without any external tooling:

    {v
    {"bench":"batch","commit":"d5f8829...","unix_time":1754610000,
     "workload":{"domains":"1","ops":"1024","value_bytes":"64"},
     "metrics":{"ops_per_sec":41210.3},
     "latency":{"put_us":{"count":1024,"mean":22.9,"p50":64.0,...}}}
    v}

    The commit hash comes from [.git/HEAD] directly (resolving a [ref:]
    indirection through [.git/refs/...] and [.git/packed-refs]) — no
    subprocess, so records work in sandboxes without a [git] binary. *)

(** Latency digest of one {!Obs.Histogram}. Quantiles are upper bounds of
    the first bucket reaching the rank — exact for bucketed data, i.e.
    "p99 <= this bound". The overflow bucket reports the largest finite
    bound (marked by [saturated]). *)
type digest = {
  count : int;
  sum : float;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  saturated : bool;  (** a quantile landed in the overflow bucket *)
}

val digest_of_buckets : count:int -> sum:float -> (float * int) list -> digest

(** Digests for every histogram registered in [obs], keyed by name
    (label sets collapse onto the same name are suffixed). Empty
    histograms are skipped. *)
val latencies : Obs.t -> (string * digest) list

(** The current HEAD commit hash, or ["unknown"] when no [.git] is found
    walking up from [dir] (default: the working directory). *)
val commit : ?dir:string -> unit -> string

(** [append ~bench ~domains ~workload ~metrics ?obs ()] appends one
    record to [BENCH_<bench>.json] next to [.git] (or in [dir] when no
    repository is found) and returns the path written. [domains] is the
    domain count the bench ran with (the largest count exercised, for a
    multi-count campaign) and lands as ["domains"] in every workload
    stanza; [workload] captures the remaining knobs (string key/value),
    [metrics] the headline numbers, and [obs] contributes per-histogram
    latency digests. The [unix_time] stamp is read through
    {!Util.Wallclock}, the repo's single wall-clock funnel. *)
val append :
  ?dir:string ->
  bench:string ->
  domains:int ->
  workload:(string * string) list ->
  metrics:(string * float) list ->
  ?obs:Obs.t ->
  unit ->
  string
