(** Deterministic parallel seed sweeps over OCaml 5 domains.

    The validation stack's currency is {e sequences per second}: issue #10
    alone took 8,482 sequences (678k operations) to surface, and the
    detection-probability curves of the paper's evaluation (E6) are a direct
    function of how many seeds a budget can afford. This module scales that
    throughput with hardware while keeping the property that makes the whole
    methodology work — {b replayability}: every entry point is specified to
    return {e exactly} what the equivalent sequential loop returns, for any
    domain count, so counterexamples found on 8 domains replay and minimize
    on 1.

    {2 Execution model}

    Each call builds a transient pool of [domains] workers: the calling
    domain acts as worker 0 and [domains - 1] helpers are [Domain.spawn]ed
    for the duration of the call (at these granularities — thousands of
    store-harness runs per call — spawn cost is noise, so no persistent
    pool is kept alive between calls). The index range is split into one
    contiguous block per worker; a worker that drains its block {b steals}
    the upper half of the largest remaining block, so load imbalance (seeds
    that crash-reboot many times cost more than seeds that don't) evens out
    without any shared work list. Each worker owns a single atomic cell
    encoding its remaining [lo, hi) range; the owner takes from the bottom,
    thieves split off the top, and every index is executed exactly once.

    {2 What tasks may do}

    Tasks run concurrently on separate domains, so they must not share
    mutable state: each task is expected to build a private universe
    ({!Util.Rng}, [Disk], [Store], its model) from its seed, which is
    exactly what {!Lfm.Harness.run_seed} does. Global registries that tasks
    do touch are made safe elsewhere: {!Faults} firing counters and the
    {!Obs.Coverage} table are atomic (their totals are exact, not
    best-effort), and fault {e toggles} ({!Faults.enable}/[disable]) must
    only be flipped between sweeps, never from inside a task. The {!Smc}
    model checker is cooperative and single-domain; never run two SMC
    explorations from concurrent tasks. *)

(** [default_domains ()] is the runtime's recommendation for this host
    ([Domain.recommended_domain_count ()]), the sensible value for a
    [--domains] flag left unset. Always at least 1. *)
val default_domains : unit -> int

(** [sweep ?domains ~start ~count ~init ~step ~merge ()] folds [step] over
    every index of [[start, start + count)] exactly once and returns the
    combined accumulator.

    {b Determinism contract}: the result equals the sequential left fold
    [step (... (step (init ()) start) ...) (start + count - 1)] {e chunked
    at arbitrary contiguous boundaries}: workers fold disjoint contiguous
    segments with private accumulators (fresh [init ()] per segment), and
    at join the segment accumulators are merged with [merge] in ascending
    index order. Therefore the call returns byte-identical results for
    every [domains] whenever [merge] respects segment concatenation:
    [merge (fold xs) (fold ys) = fold (xs @ ys)] — true of sums, ordered
    list accumulation, "first/lowest hit wins" selections, and
    {!Obs.merge_into} aggregation (integral histogram sums make float
    addition exact, see [lib/obs/obs.mli]).

    [domains] defaults to 1 (purely sequential, no domain is spawned —
    parallelism is always opt-in so existing seeded experiments stay
    replayable verbatim). [count = 0] returns [init ()]. Exceptions raised
    by a task are re-raised in the caller after all workers join. *)
val sweep :
  ?domains:int ->
  start:int ->
  count:int ->
  init:(unit -> 'acc) ->
  step:('acc -> int -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  unit ->
  'acc

(** [search ?domains ~start ~count ~stop task] runs [task] on indices of
    [[start, start + count)] and returns {e the same prefix of results a
    sequential early-exit loop computes}: results for [start, start+1, ...]
    up to and including the {b lowest} index whose result satisfies [stop]
    (all [count] results when none does), in index order.

    Workers race ahead speculatively, so indices {e above} the lowest hit
    may get evaluated before the hit is known; their results are discarded
    and the winner is always the lowest-index hit, never the first found in
    wall-clock time. Side effects of such speculative evaluations are the
    one visible difference from a sequential run — which is why the global
    counters tasks touch are atomic totals but detection {e reports} are
    built only from the returned prefix, and why minimization replays
    sequentially afterwards. Tasks for indices below the current best hit
    are never skipped; the prefix is complete.

    [domains] defaults to 1, which is exactly the sequential loop. *)
val search :
  ?domains:int ->
  start:int ->
  count:int ->
  stop:('a -> bool) ->
  (int -> 'a) ->
  'a list
