(* Work-stealing range runner over Domain.spawn. See par.mli for the
   determinism contract; the implementation notes here cover why it holds.

   Each worker owns one atomic cell packing its remaining contiguous
   [lo, hi) index range into a single immediate ((lo lsl 31) lor hi, so no
   allocation and single-word CAS). The owner takes indices from the
   bottom one at a time; a worker whose range is empty steals the upper
   half of the largest remaining range. Consequences:

   - every index is executed exactly once (both take and steal are CASes
     on the whole packed range, so they cannot both win the same indices);
   - the indices an owner takes are consecutive (only the owner advances
     [lo]), so each accumulator covers one contiguous segment, and the
     segments of all workers partition the whole range — sorting them by
     their low end and merging in that order reproduces the sequential
     fold chunked at segment boundaries. *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

(* {2 Packed ranges} *)

let range_mask = (1 lsl 31) - 1
let pack lo hi = (lo lsl 31) lor hi
let lo_of r = r lsr 31
let hi_of r = r land range_mask

let check_bounds ~start ~count =
  if count < 0 then invalid_arg "Par: negative count";
  if start < 0 || start + count > range_mask then
    invalid_arg "Par: index range must fit in [0, 2^31)"

(* [take d] claims the lowest remaining index of [d], if any. *)
let rec take d =
  let r = Atomic.get d in
  let lo = lo_of r and hi = hi_of r in
  if lo >= hi then None
  else if Atomic.compare_and_set d r (pack (lo + 1) hi) then Some lo
  else take d

(* [abandon d] empties [d] (search mode: the whole remaining range is
   above the best hit, so nobody needs it). *)
let rec abandon d =
  let r = Atomic.get d in
  let lo = lo_of r and hi = hi_of r in
  if lo < hi && not (Atomic.compare_and_set d r (pack lo lo)) then abandon d

(* [steal deques ~me ~useful] moves the upper half of the largest
   remaining range (of at least 2 indices, so the victim keeps work) into
   [deques.(me)]. [useful lo] filters victims whose work is already known
   to be dead (search mode). Returns false when no such victim exists —
   in-flight single indices cannot be stolen, but their owners never exit
   holding unprocessed work, so nothing is stranded. *)
let rec steal deques ~me ~useful =
  let victim = ref (-1) and victim_size = ref 1 in
  Array.iteri
    (fun j d ->
      if j <> me then begin
        let r = Atomic.get d in
        let size = hi_of r - lo_of r in
        if size > !victim_size && useful (lo_of r) then begin
          victim := j;
          victim_size := size
        end
      end)
    deques;
  if !victim < 0 then false
  else begin
    let d = deques.(!victim) in
    let r = Atomic.get d in
    let lo = lo_of r and hi = hi_of r in
    if hi - lo < 2 then steal deques ~me ~useful
    else begin
      let mid = (lo + hi + 1) / 2 in
      if Atomic.compare_and_set d r (pack lo mid) then begin
        Atomic.set deques.(me) (pack mid hi);
        true
      end
      else steal deques ~me ~useful
    end
  end

(* {2 The pool: worker 0 is the caller, the rest are spawned} *)

let run_pool ~workers body =
  let errors = Array.make workers None in
  let guarded w () =
    try body w
    with e -> errors.(w) <- Some (e, Printexc.get_raw_backtrace ())
  in
  let spawned = Array.init (workers - 1) (fun k -> Domain.spawn (guarded (k + 1))) in
  guarded 0 ();
  Array.iter Domain.join spawned;
  Array.iter
    (function Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
    errors

let initial_deques ~workers ~start ~count =
  Array.init workers (fun w ->
      let lo = start + (w * count / workers) and hi = start + ((w + 1) * count / workers) in
      Atomic.make (pack lo hi))

(* {2 sweep} *)

type 'acc segment = { seg_lo : int; acc : 'acc }

let sweep ?(domains = 1) ~start ~count ~init ~step ~merge () =
  check_bounds ~start ~count;
  if count = 0 then init ()
  else if domains <= 1 then begin
    (* The reference semantics, verbatim. *)
    let acc = ref (init ()) in
    for i = start to start + count - 1 do
      acc := step !acc i
    done;
    !acc
  end
  else begin
    let workers = min domains count in
    let deques = initial_deques ~workers ~start ~count in
    let segments = Array.make workers [] in
    run_pool ~workers (fun me ->
        let my = deques.(me) in
        let rec next_segment () =
          match take my with
          | Some first ->
            (* Own takes are consecutive, so this accumulator covers the
               contiguous segment [first, last-drained]. *)
            let acc = ref (step (init ()) first) in
            let rec drain () =
              match take my with
              | Some i ->
                acc := step !acc i;
                drain ()
              | None -> ()
            in
            drain ();
            segments.(me) <- { seg_lo = first; acc = !acc } :: segments.(me);
            next_segment ()
          | None ->
            if steal deques ~me ~useful:(fun _ -> true) then next_segment ()
        in
        next_segment ());
    let segs =
      Array.to_list segments |> List.concat
      |> List.sort (fun a b -> compare a.seg_lo b.seg_lo)
    in
    match segs with
    | [] -> init () (* unreachable: count > 0 *)
    | s :: rest -> List.fold_left (fun acc s -> merge acc s.acc) s.acc rest
  end

(* {2 search} *)

let rec atomic_min cell i =
  let cur = Atomic.get cell in
  if i < cur && not (Atomic.compare_and_set cell cur i) then atomic_min cell i

let search ?(domains = 1) ~start ~count ~stop task =
  check_bounds ~start ~count;
  if count = 0 then []
  else if domains <= 1 then begin
    let rec go i acc =
      if i >= start + count then List.rev acc
      else begin
        let r = task i in
        if stop r then List.rev (r :: acc) else go (i + 1) (r :: acc)
      end
    in
    go start []
  end
  else begin
    let workers = min domains count in
    let deques = initial_deques ~workers ~start ~count in
    (* Lowest index found to satisfy [stop] so far. Only decreases, so an
       index skipped because it exceeded [best] can never re-enter the
       accepted prefix; and every index at or below the final [best] is
       taken by some worker while [best] was still >= it, hence computed. *)
    let best = Atomic.make max_int in
    let results = Array.make count None in
    run_pool ~workers (fun me ->
        let my = deques.(me) in
        let useful lo = lo <= Atomic.get best in
        let rec loop () =
          match take my with
          | Some i ->
            if i <= Atomic.get best then begin
              let r = task i in
              results.(i - start) <- Some r;
              if stop r then atomic_min best i
            end
            else abandon my;
            loop ()
          | None -> if steal deques ~me ~useful then loop ()
        in
        loop ());
    let found = Atomic.get best in
    let last = if found = max_int then start + count - 1 else found in
    List.init
      (last - start + 1)
      (fun k ->
        match results.(k) with
        | Some r -> r
        | None -> assert false (* prefix completeness, see [best] above *))
  end
