(** Soft-updates dependency graphs (paper section 2.2).

    Every mutating operation in ShardStore returns a [Dep.t]. The contract:
    a write is not issued to disk until its input dependency has persisted,
    and a returned dependency [is_persistent] only once every write it
    covers is durable. Dependencies compose with {!and_} and may include
    {!Promise}s — placeholders for writes that will only be scheduled later
    (e.g. the superblock record that will cover an append's soft-write-
    pointer update at the next cadence flush).

    The crash-consistency checker (paper section 5) is phrased entirely in
    terms of this type: {e persistence} (dep persistent before a crash ⇒
    data readable after) and {e forward progress} (clean shutdown ⇒ every
    dep persistent). *)

type status =
  | Pending  (** enqueued, not yet issued to the disk *)
  | Durable  (** issued; on the durable medium *)
  | Dropped  (** discarded by a crash before being issued *)
  | Failed  (** could not be issued (permanent IO failure) *)

type kind =
  | Append of { off : int; data : string }
  | Reset of { epoch : int }  (** the epoch the extent moves to *)

(** One scheduled disk write. The scheduler owns creation; the record is
    shared into dependency graphs so [is_persistent] needs no lookup. *)
type write = private {
  id : int;
  extent : int;
  kind : kind;
  input : t;  (** must persist before this write may be issued *)
  mutable status : status;
}

and t

(** The already-persistent dependency. *)
val trivial : t

(** [and_ a b] persists when both [a] and [b] persist (paper's
    [dep1.and(dep2)]). *)
val and_ : t -> t -> t

(** [all deps] folds {!and_} over a list. *)
val all : t list -> t

(** [is_persistent t] — true once every covered write is durable and every
    covered promise is bound to a persistent dependency. *)
val is_persistent : t -> bool

(** [has_failed t] — true if any covered write was dropped by a crash or
    failed permanently; such a dependency can never become persistent. *)
val has_failed : t -> bool

(** [persistent_under pred t] is {!is_persistent} generalised: a [Pending]
    write [w] counts as persistent when [pred w]. The crash-state generator
    uses it to ask "would this dependency hold if subset S persisted?". *)
val persistent_under : (write -> bool) -> t -> bool

(** Direct (non-transitive) writes covered by the dependency tree,
    including those reached through bound promises. *)
val writes : t -> write list

val pp : Format.formatter -> t -> unit

module Promise : sig
  (** A dependency on a write that has not been scheduled yet. Unbound
      promises are never persistent. *)

  type promise

  val create : unit -> promise
  val dep : promise -> t

  (** [bind p d] resolves the promise. Raises [Invalid_argument] if already
      bound. *)
  val bind : promise -> t -> unit

  val is_bound : promise -> bool
end

(** {2 Scheduler-internal constructors} *)

(** [make_write ~id ~extent ~kind ~input] — used by {!Io_sched} only. *)
val make_write : id:int -> extent:int -> kind:kind -> input:t -> write

val of_write : write -> t
val set_status : write -> status -> unit
