type error =
  | Io of Disk.io_error
  | Extent_full of { extent : int; wanted : int; available : int }
  | Stuck of { blocked : int }

let pp_error fmt = function
  | Io e -> Disk.pp_io_error fmt e
  | Extent_full { extent; wanted; available } ->
    Format.fprintf fmt "extent %d full: wanted %d bytes, %d available" extent wanted available
  | Stuck { blocked } -> Format.fprintf fmt "scheduler stuck: %d writes blocked" blocked

(* Coarse classification for the retry/health policy of layers above: can
   a retry help (`Transient), is the medium gone until healed (`Permanent),
   is it resource pressure that GC or capacity planning might cure
   (`Resource), or a logic/corruption error no request-plane policy should
   paper over (`Fatal). *)
let error_class = function
  | Io Disk.Transient -> `Transient
  | Io Disk.Permanent -> `Permanent
  | Io (Disk.Out_of_bounds _) -> `Fatal
  | Extent_full _ -> `Resource
  | Stuck _ -> `Fatal

type volatile = {
  image : Bytes.t;
  mutable soft_ptr : int;
  mutable vepoch : int;
  mutable epoch_ceiling : int;
      (** highest epoch ever minted this session; resets continue above it
          so locators of writes lost to a permanent failure can never be
          re-minted for different data *)
  mutable quarantined : bool;
      (** a permanent failure destroyed staged writes here; the extent is
          retired from new appends until a reset gives it a fresh epoch *)
  pending : Dep.write Queue.t;
}

type stats = {
  appends : int;
  resets : int;
  ios_issued : int;
  bytes_written : int;
  crashes : int;
}

type metrics = {
  m_appends : Obs.Counter.t;
  m_resets : Obs.Counter.t;
  m_ios : Obs.Counter.t;
  m_bytes : Obs.Counter.t;
  m_crashes : Obs.Counter.t;
  m_torn : Obs.Counter.t;
  m_pending : Obs.Gauge.t;
  m_batch_submit : Obs.Counter.t;
  m_coalesced : Obs.Counter.t;
  m_coalesce_width : Obs.Histogram.t;
}

let make_metrics obs =
  {
    m_appends = Obs.counter obs "iosched.append";
    m_resets = Obs.counter obs "iosched.reset";
    m_ios = Obs.counter obs "iosched.io_issued";
    m_bytes = Obs.counter obs "iosched.bytes_issued";
    m_crashes = Obs.counter obs "iosched.crash";
    m_torn = Obs.counter ~coverage:true obs "crash.torn_append";
    m_pending = Obs.gauge obs "iosched.pending";
    m_batch_submit = Obs.counter obs "iosched.batch_submit";
    m_coalesced = Obs.counter obs "iosched.coalesced_append";
    m_coalesce_width =
      Obs.histogram ~buckets:[ 2.; 4.; 8.; 16.; 32.; 64. ] obs "iosched.coalesce_width";
  }

type t = {
  disk : Disk.t;
  volatiles : volatile array;
  rng : Util.Rng.t;
  obs : Obs.t;
  m : metrics;
  mutable next_id : int;
  mutable pending_total : int;
}

let extent_size t = Disk.extent_size (Disk.config t.disk)
let page_size t = (Disk.config t.disk).Disk.page_size
let extent_count t = (Disk.config t.disk).Disk.extent_count
let disk t = t.disk
let obs t = t.obs

let create ?obs ?(seed = 0x5EEDL) disk =
  let config = Disk.config disk in
  let size = Disk.extent_size config in
  let mk i =
    {
      image = Bytes.make size '\000';
      soft_ptr = Disk.hard_ptr disk ~extent:i;
      vepoch = Disk.epoch disk ~extent:i;
      epoch_ceiling = Disk.epoch disk ~extent:i;
      quarantined = false;
      pending = Queue.create ();
    }
  in
  let obs = match obs with Some o -> o | None -> Disk.obs disk in
  let t =
    {
      disk;
      volatiles = Array.init config.Disk.extent_count mk;
      rng = Util.Rng.create seed;
      obs;
      m = make_metrics obs;
      next_id = 0;
      pending_total = 0;
    }
  in
  (* Seed the volatile images from whatever is already durable (recovery
     after a crash reuses the same disk). *)
  Array.iteri
    (fun i v ->
      let len = Disk.hard_ptr disk ~extent:i in
      if len > 0 then Bytes.blit_string (Disk.durable_image disk ~extent:i) 0 v.image 0 len)
    t.volatiles;
  t

let volatile t extent =
  if extent < 0 || extent >= Array.length t.volatiles then
    invalid_arg (Printf.sprintf "Io_sched: bad extent %d" extent);
  t.volatiles.(extent)

let soft_ptr t ~extent = (volatile t extent).soft_ptr
let epoch t ~extent = (volatile t extent).vepoch
let quarantined t ~extent = (volatile t extent).quarantined
let capacity_left t ~extent = extent_size t - (volatile t extent).soft_ptr

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let set_pending t n =
  t.pending_total <- n;
  Obs.Gauge.set_int t.m.m_pending n

let enqueue t v w =
  Queue.add w v.pending;
  set_pending t (t.pending_total + 1)

let append t ~extent ~data ~input =
  if String.length data = 0 then invalid_arg "Io_sched.append: empty data";
  let v = volatile t extent in
  if v.quarantined then Error (Io Disk.Permanent)
  else begin
  let len = String.length data in
  let available = extent_size t - v.soft_ptr in
  if len > available then Error (Extent_full { extent; wanted = len; available })
  else begin
    let off = v.soft_ptr in
    Bytes.blit_string data 0 v.image off len;
    v.soft_ptr <- off + len;
    let w = Dep.make_write ~id:(fresh_id t) ~extent ~kind:(Append { off; data }) ~input in
    enqueue t v w;
    Obs.Counter.incr t.m.m_appends;
    Ok (Dep.of_write w)
  end
  end

let reset t ~extent ~input =
  let v = volatile t extent in
  Bytes.fill v.image 0 (Bytes.length v.image) '\000';
  v.soft_ptr <- 0;
  v.vepoch <- max v.vepoch v.epoch_ceiling + 1;
  v.epoch_ceiling <- v.vepoch;
  v.quarantined <- false;
  let w = Dep.make_write ~id:(fresh_id t) ~extent ~kind:(Reset { epoch = v.vepoch }) ~input in
  enqueue t v w;
  Obs.Counter.incr t.m.m_resets;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"iosched" "reset"
      [ ("extent", string_of_int extent); ("epoch", string_of_int v.vepoch) ];
  Ok (Dep.of_write w)

let read t ~extent ~off ~len =
  let v = volatile t extent in
  match Disk.consume_fault t.disk ~extent with
  | Error e -> Error (Io e)
  | Ok () ->
    if len < 0 || off < 0 then Error (Io (Disk.Out_of_bounds "negative offset or length"))
    else if off + len > v.soft_ptr then
      Error
        (Io
           (Disk.Out_of_bounds
              (Printf.sprintf "read [%d, %d) beyond soft pointer %d" off (off + len) v.soft_ptr)))
    else Ok (Bytes.sub_string v.image off len)

let resync_extent t extent v =
  Bytes.fill v.image 0 (Bytes.length v.image) '\000';
  let len = Disk.hard_ptr t.disk ~extent in
  if len > 0 then Bytes.blit_string (Disk.durable_image t.disk ~extent) 0 v.image 0 len;
  v.soft_ptr <- len;
  v.vepoch <- Disk.epoch t.disk ~extent;
  v.epoch_ceiling <- max v.epoch_ceiling v.vepoch

(* A permanent failure loses the whole extent queue — later sequential
   writes can never be issued once a predecessor is lost — and the volatile
   state is resynchronized from the durable state: staged-but-lost bytes,
   pointers and reset epochs must not linger, or later reuse of the extent
   would mint locators whose epoch can never exist on disk. *)
let fail_extent t extent v =
  Queue.iter
    (fun w' ->
      Dep.set_status w' Dep.Failed;
      set_pending t (t.pending_total - 1))
    v.pending;
  Queue.clear v.pending;
  resync_extent t extent v;
  v.quarantined <- true;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"iosched" "extent_failed" [ ("extent", string_of_int extent) ]

(* Issue the head write of [v] to the disk. Returns [`Issued], [`Transient]
   (retry later), or [`Blocked] (dependency not yet persistent). *)
let try_issue_head t extent v =
  match Queue.peek_opt v.pending with
  | None -> `Empty
  | Some w ->
    if not (Dep.is_persistent w.Dep.input) then `Blocked
    else begin
      let result =
        match w.Dep.kind with
        | Dep.Append { off; data } -> Disk.write t.disk ~extent ~off data
        | Dep.Reset { epoch } -> Disk.reset ~epoch t.disk ~extent
      in
      match result with
      | Ok () ->
        Dep.set_status w Dep.Durable;
        ignore (Queue.pop v.pending);
        set_pending t (t.pending_total - 1);
        Obs.Counter.incr t.m.m_ios;
        (match w.Dep.kind with
        | Dep.Append { data; _ } -> Obs.Counter.add t.m.m_bytes (String.length data)
        | Dep.Reset _ -> ());
        if Obs.tracing t.obs then
          Obs.emit t.obs ~layer:"iosched" "io_issue"
            [
              ("extent", string_of_int extent);
              ( "kind",
                match w.Dep.kind with
                | Dep.Append { data; _ } -> Printf.sprintf "append:%d" (String.length data)
                | Dep.Reset _ -> "reset" );
            ];
        `Issued
      | Error Disk.Transient -> `Transient
      | Error Disk.Permanent | Error (Disk.Out_of_bounds _) ->
        (* Out_of_bounds here would be a scheduler logic bug for appends, but
           it also arises when an injected permanent failure earlier broke
           the sequential chain; treat both as failing the queue. *)
        fail_extent t extent v;
        `Failed
    end

let pump ?(max_ios = max_int) t =
  let issued = ref 0 in
  let progress = ref true in
  let order = Array.init (Array.length t.volatiles) Fun.id in
  while !progress && !issued < max_ios do
    progress := false;
    Util.Rng.shuffle t.rng order;
    Array.iter
      (fun extent ->
        if !issued < max_ios then
          match try_issue_head t extent t.volatiles.(extent) with
          | `Issued ->
            incr issued;
            progress := true
          | `Failed -> progress := true
          | `Empty | `Blocked | `Transient -> ())
      order
  done;
  !issued

(* The maximal ready run of appends at the head of [v]'s queue: each member
   is contiguous with its predecessor (appends stage at the soft pointer, so
   this holds by construction unless a reset intervenes) and its input holds
   once the earlier members of the same run are treated as persistent —
   intra-batch dependencies resolve because the merged IO is atomic. *)
let ready_run v =
  let run = ref [] in
  let ids = Hashtbl.create 8 in
  let next_off = ref (-1) in
  (try
     Queue.iter
       (fun w ->
         match w.Dep.kind with
         | Dep.Reset _ -> raise Exit
         | Dep.Append { off; data } ->
           if !next_off >= 0 && off <> !next_off then raise Exit;
           if not (Dep.persistent_under (fun w' -> Hashtbl.mem ids w'.Dep.id) w.Dep.input)
           then raise Exit;
           run := w :: !run;
           Hashtbl.replace ids w.Dep.id ();
           next_off := off + String.length data)
       v.pending
   with Exit -> ());
  List.rev !run

let issue_run t extent v run =
  let first_off =
    match (List.hd run).Dep.kind with
    | Dep.Append { off; _ } -> off
    | Dep.Reset _ -> assert false
  in
  let data =
    String.concat ""
      (List.map
         (fun w ->
           match w.Dep.kind with
           | Dep.Append { data; _ } -> data
           | Dep.Reset _ -> assert false)
         run)
  in
  match Disk.write t.disk ~extent ~off:first_off data with
  | Ok () ->
    List.iter
      (fun w ->
        Dep.set_status w Dep.Durable;
        ignore (Queue.pop v.pending);
        set_pending t (t.pending_total - 1))
      run;
    let width = List.length run in
    Obs.Counter.incr t.m.m_ios;
    Obs.Counter.add t.m.m_bytes (String.length data);
    Obs.Counter.add t.m.m_coalesced (width - 1);
    Obs.Histogram.observe t.m.m_coalesce_width (float_of_int width);
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"iosched" "io_issue"
        [
          ("extent", string_of_int extent);
          ("kind", Printf.sprintf "append:%d" (String.length data));
          ("coalesced", string_of_int width);
        ];
    `Issued
  | Error Disk.Transient -> `Transient
  | Error Disk.Permanent | Error (Disk.Out_of_bounds _) ->
    fail_extent t extent v;
    `Failed

let submit_batch ?(max_ios = max_int) t =
  Obs.Counter.incr t.m.m_batch_submit;
  let issued = ref 0 in
  let progress = ref true in
  (* Sorted extent order (vs [pump]'s shuffle): batch writeback favours
     merge opportunity and locality over schedule exploration. The outer
     loop re-walks the extents because issuing one extent's run can unblock
     another's (cross-extent dependencies via superblock promises). *)
  while !progress && !issued < max_ios do
    progress := false;
    Array.iteri
      (fun extent v ->
        if !issued < max_ios then
          match ready_run v with
          | [] | [ _ ] -> (
            match try_issue_head t extent v with
            | `Issued ->
              incr issued;
              progress := true
            | `Failed -> progress := true
            | `Empty | `Blocked | `Transient -> ())
          | run -> (
            match issue_run t extent v run with
            | `Issued ->
              incr issued;
              progress := true
            | `Failed -> progress := true
            | `Transient -> ()))
      t.volatiles
  done;
  !issued

let pending_count t = t.pending_total

let pending_writes t =
  let acc = ref [] in
  Array.iter (fun v -> Queue.iter (fun w -> acc := w :: !acc) v.pending) t.volatiles;
  List.sort (fun a b -> compare a.Dep.id b.Dep.id) !acc

let has_pending_reset t ~extent =
  let v = volatile t extent in
  Queue.fold
    (fun acc w -> acc || match w.Dep.kind with Dep.Reset _ -> true | Dep.Append _ -> false)
    false v.pending

let pp_blocked fmt t =
  Array.iteri
    (fun extent v ->
      Queue.iter
        (fun w ->
          Format.fprintf fmt
            "extent %d: w%d %s input{persistent=%b writes=%a (%s)}@."
            extent w.Dep.id
            (match w.Dep.kind with
            | Dep.Append { off; data } -> Printf.sprintf "append@%d+%d" off (String.length data)
            | Dep.Reset _ -> "reset")
            (Dep.is_persistent w.Dep.input) Dep.pp w.Dep.input
            (String.concat ","
               (List.map
                  (fun w' ->
                    Printf.sprintf "w%d:%s" w'.Dep.id
                      (match w'.Dep.status with
                      | Dep.Pending -> "pending"
                      | Dep.Durable -> "durable"
                      | Dep.Dropped -> "dropped"
                      | Dep.Failed -> "failed"))
                  (Dep.writes w.Dep.input))))
        v.pending)
    t.volatiles

let flush t =
  let rec go guard =
    if t.pending_total = 0 then Ok ()
    else if guard = 0 then Error (Stuck { blocked = t.pending_total })
    else begin
      let before = t.pending_total in
      let issued = pump t in
      if issued = 0 && t.pending_total = before then
        (* Nothing moved: either transient failures (retry a bounded number
           of times) or genuinely stuck dependencies. *)
        go (guard - 1)
      else go guard
    end
  in
  go 4

(* A reboot empties every volatile structure that could hold a lost
   locator, so quarantines lift. *)
let reload_volatile t =
  Array.iteri
    (fun extent v ->
      resync_extent t extent v;
      v.quarantined <- false)
    t.volatiles

let discard_volatile t =
  Array.iter
    (fun v ->
      Queue.iter
        (fun w ->
          Dep.set_status w Dep.Dropped;
          set_pending t (t.pending_total - 1))
        v.pending;
      Queue.clear v.pending)
    t.volatiles;
  reload_volatile t

type crash_report = { persisted : int; partial : int; dropped : int }

let crash t ~rng ~persist_probability ~split_pages =
  Obs.Counter.incr t.m.m_crashes;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"iosched" "crash" [ ("pending", string_of_int t.pending_total) ];
  (* Select a dependency-closed, per-extent prefix subset of the pending
     writes to persist. Dependencies may point at writes scheduled later
     (promises bind to future superblock records), so selection iterates to
     a fixpoint: each pass walks every open extent's queue cursor and
     persists the next write once its input holds under the current
     selection. The per-write coin is flipped at most once. *)
  let chosen : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let partial : (int, int) Hashtbl.t = Hashtbl.create 4 in
  let n = Array.length t.volatiles in
  let queues = Array.map (fun v -> Array.of_seq (Queue.to_seq v.pending)) t.volatiles in
  let cursor = Array.make n 0 in
  let closed = Array.make n false in
  let psize = page_size t in
  let progress = ref true in
  while !progress do
    progress := false;
    for extent = 0 to n - 1 do
      let queue = queues.(extent) in
      let continue_extent = ref true in
      while !continue_extent && (not closed.(extent)) && cursor.(extent) < Array.length queue do
        let w = queue.(cursor.(extent)) in
        let eligible =
          Dep.persistent_under (fun w' -> Hashtbl.mem chosen w'.Dep.id) w.Dep.input
        in
        if not eligible then continue_extent := false
        else if Util.Rng.chance rng persist_probability then begin
          let cut =
            match w.Dep.kind with
            | Dep.Append { off; data } when split_pages && Util.Rng.chance rng 0.25 ->
              (* Cut at a page boundary strictly inside the write, modelling
                 a crash mid-way through a multi-page IO. *)
              let len = String.length data in
              let first_boundary = ((off / psize) + 1) * psize in
              let boundaries = ref [] in
              let b = ref first_boundary in
              while !b < off + len do
                boundaries := (!b - off) :: !boundaries;
                b := !b + psize
              done;
              (match !boundaries with
              | [] -> None
              | bs -> Some (Util.Rng.pick_list rng bs))
            | _ -> None
          in
          match cut with
          | Some bytes ->
            Obs.Counter.incr t.m.m_torn;
            if Obs.tracing t.obs then
              Obs.emit t.obs ~layer:"iosched" "torn_append"
                [ ("extent", string_of_int extent); ("bytes", string_of_int bytes) ];
            Hashtbl.replace partial w.Dep.id bytes;
            closed.(extent) <- true
          | None ->
            Hashtbl.replace chosen w.Dep.id ();
            cursor.(extent) <- cursor.(extent) + 1;
            progress := true
        end
        else closed.(extent) <- true
      done
    done
  done;
  let report = ref { persisted = 0; partial = 0; dropped = 0 } in
  (* Apply the selection to the disk, per extent in queue order. *)
  Disk.with_faults_suspended t.disk (fun () ->
      Array.iteri
        (fun extent v ->
          Queue.iter
            (fun w ->
              if Hashtbl.mem chosen w.Dep.id then begin
                (match w.Dep.kind with
                | Dep.Append { off; data } -> (
                  match Disk.write t.disk ~extent ~off data with
                  | Ok () -> ()
                  | Error e ->
                    Format.kasprintf failwith "crash apply: %a" Disk.pp_io_error e)
                | Dep.Reset { epoch } -> (
                  match Disk.reset ~epoch t.disk ~extent with
                  | Ok () -> ()
                  | Error e ->
                    Format.kasprintf failwith "crash apply: %a" Disk.pp_io_error e));
                Dep.set_status w Dep.Durable;
                report := { !report with persisted = !report.persisted + 1 }
              end
              else
                match Hashtbl.find_opt partial w.Dep.id with
                | Some n ->
                  (match w.Dep.kind with
                  | Dep.Append { off; data } -> (
                    match Disk.write t.disk ~extent ~off (String.sub data 0 n) with
                    | Ok () -> ()
                    | Error e ->
                      Format.kasprintf failwith "crash apply: %a" Disk.pp_io_error e)
                  | Dep.Reset _ -> assert false);
                  Dep.set_status w Dep.Dropped;
                  report := { !report with partial = !report.partial + 1 }
                | None ->
                  Dep.set_status w Dep.Dropped;
                  report := { !report with dropped = !report.dropped + 1 })
            v.pending;
          Queue.clear v.pending)
        t.volatiles);
  set_pending t 0;
  reload_volatile t;
  !report

(* A thin view over the registry; parity with [Obs.snapshot] is by
   construction. *)
let stats t =
  {
    appends = Obs.Counter.value t.m.m_appends;
    resets = Obs.Counter.value t.m.m_resets;
    ios_issued = Obs.Counter.value t.m.m_ios;
    bytes_written = Obs.Counter.value t.m.m_bytes;
    crashes = Obs.Counter.value t.m.m_crashes;
  }
