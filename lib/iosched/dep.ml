type status = Pending | Durable | Dropped | Failed

type kind =
  | Append of { off : int; data : string }
  | Reset of { epoch : int }

type write = {
  id : int;
  extent : int;
  kind : kind;
  input : t;
  mutable status : status;
}

and t =
  | Trivial
  | Of_write of write
  | And of t * t
  | Of_promise of promise

and promise = { mutable bound : t option }

let trivial = Trivial

let and_ a b =
  match a, b with
  | Trivial, d | d, Trivial -> d
  | _ -> And (a, b)

let all deps = List.fold_left and_ Trivial deps

(* Promises can alias (the same cadence promise flows into many deps), so
   traversals track visited promises by physical identity to stay linear and
   to survive accidental cycles. *)
let rec eval ~on_write ~on_unbound ~combine ~base visited t =
  match t with
  | Trivial -> base
  | Of_write w -> on_write w
  | And (a, b) ->
    combine
      (fun () -> eval ~on_write ~on_unbound ~combine ~base visited a)
      (fun () -> eval ~on_write ~on_unbound ~combine ~base visited b)
  | Of_promise p ->
    if List.memq p !visited then base
    else begin
      visited := p :: !visited;
      match p.bound with
      | None -> on_unbound
      | Some d -> eval ~on_write ~on_unbound ~combine ~base visited d
    end

let persistent_under pred t =
  let on_write w =
    match w.status with
    | Durable -> true
    | Pending -> pred w
    | Dropped | Failed -> false
  in
  eval ~on_write ~on_unbound:false
    ~combine:(fun a b -> a () && b ())
    ~base:true (ref []) t

let is_persistent t = persistent_under (fun _ -> false) t

let has_failed t =
  let on_write w = match w.status with Dropped | Failed -> true | Pending | Durable -> false in
  eval ~on_write ~on_unbound:false
    ~combine:(fun a b -> a () || b ())
    ~base:false (ref []) t

let writes t =
  let acc = ref [] in
  let on_write w =
    acc := w :: !acc;
    true
  in
  let (_ : bool) =
    eval ~on_write ~on_unbound:true ~combine:(fun a b -> a () && b ()) ~base:true (ref []) t
  in
  List.rev !acc

let pp fmt t =
  let ws = writes t in
  Format.fprintf fmt "dep{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
       (fun fmt w -> Format.fprintf fmt "w%d" w.id))
    ws

module Promise = struct
  type nonrec promise = promise

  let create () = { bound = None }
  let dep p = Of_promise p

  let bind p d =
    match p.bound with
    | Some _ -> invalid_arg "Dep.Promise.bind: already bound"
    | None -> p.bound <- Some d

  let is_bound p = Option.is_some p.bound
end

let make_write ~id ~extent ~kind ~input = { id; extent; kind; input; status = Pending }
let of_write w = Of_write w
let set_status w s = w.status <- s
