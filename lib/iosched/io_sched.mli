(** The IO scheduler: volatile staging of writes plus soft-updates
    writeback ordering (paper section 2.2).

    Layers above mutate only through {!append} and {!reset}; both take and
    return a {!Dep.t}. A write is {e pending} (visible to reads through the
    volatile extent image, not yet durable) until the scheduler issues it,
    which it may do only when the write's input dependency has persisted
    and, within an extent, in FIFO order (extents are sequential-write).

    {!pump} issues ready writes in a randomized order — the orderings a real
    writeback thread could pick — seeded for determinism. {!crash} generates
    a crash state: it persists a dependency-closed, per-extent-prefix subset
    of the pending writes (optionally cutting the last append of an extent
    at a page boundary, the block-level mode of paper section 5) and drops
    the rest. *)

type t

type error =
  | Io of Disk.io_error
  | Extent_full of { extent : int; wanted : int; available : int }
  | Stuck of { blocked : int }
      (** forward-progress violation: pending writes whose dependencies can
          never persist *)

val pp_error : Format.formatter -> error -> unit

(** Coarse classification for the retry/health policy of layers above:
    [`Transient] (a retry may succeed), [`Permanent] (the extent is failed
    until healed; retrying is pointless), [`Resource] (extent exhaustion —
    GC pressure, not node health) or [`Fatal] (logic/corruption errors the
    request plane must surface, never retry). Every error wrapper up the
    stack ({!Logroll}, {!Superblock}, {!Chunk.Chunk_store}, {!Lsm.Index},
    [Store]) forwards to this on its IO constructors. *)
val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

(** [create ?obs ?seed disk] — metrics land in [obs] when given, defaulting
    to the disk's registry so both layers share one by default. [?obs]
    first, per the convention in [lib/obs/obs.mli]. *)
val create : ?obs:Obs.t -> ?seed:int64 -> Disk.t -> t

val disk : t -> Disk.t

(** The registry this scheduler's metrics land in. *)
val obs : t -> Obs.t
val page_size : t -> int
val extent_count : t -> int
val extent_size : t -> int

(** {2 Volatile view} *)

(** [soft_ptr t ~extent] — next write position (includes pending writes). *)
val soft_ptr : t -> extent:int -> int

(** [epoch t ~extent] — volatile reset epoch (includes pending resets). *)
val epoch : t -> extent:int -> int

val capacity_left : t -> extent:int -> int

(** [quarantined t ~extent] — true after a permanent IO failure destroyed
    staged writes on the extent. Appends are rejected (allocators must
    skip it) until a reset mints a fresh epoch; reset epochs are monotone
    within a session, so locators of the lost writes can never re-appear
    attached to different data. *)
val quarantined : t -> extent:int -> bool

(** [append t ~extent ~data ~input] stages a sequential write at the soft
    pointer. Returns the dependency for this write. Fails with
    [Extent_full] when the data does not fit. *)
val append : t -> extent:int -> data:string -> input:Dep.t -> (Dep.t, error) result

(** [reset t ~extent ~input] stages a write-pointer reset (epoch bump). *)
val reset : t -> extent:int -> input:Dep.t -> (Dep.t, error) result

(** [read t ~extent ~off ~len] reads through the volatile image (sees
    pending writes). Subject to injected IO failures; rejects reads at or
    beyond the soft pointer. *)
val read : t -> extent:int -> off:int -> len:int -> (string, error) result

(** {2 Writeback} *)

(** [pump ?max_ios t] issues ready writes in randomized dependency-respecting
    order; returns the number issued. *)
val pump : ?max_ios:int -> t -> int

(** [submit_batch ?max_ios t] — the group-commit writeback path. Walks
    extents in sorted (not shuffled) order and, per extent, coalesces the
    maximal ready run of contiguous queue-head appends into a single disk
    IO; intra-run dependencies count as resolved because the merged IO is
    atomic. Resets and non-mergeable heads fall back to single-IO issue.
    Returns the number of IOs issued (each merged run counts once).
    Observability: bumps [iosched.batch_submit] per call,
    [iosched.coalesced_append] by [k-1] per [k]-wide merge, and records
    merge widths in the [iosched.coalesce_width] histogram. *)
val submit_batch : ?max_ios:int -> t -> int

(** [flush t] pumps until nothing is pending. [Error (Stuck _)] reports a
    forward-progress violation (a dependency cycle or an unbound promise
    reachable from a pending write). *)
val flush : t -> (unit, error) result

val pending_count : t -> int

(** [pending_writes t] — every staged write in scheduling order (the
    crash-state enumerator inspects them non-destructively). *)
val pending_writes : t -> Dep.write list

(** [has_pending_reset t ~extent] — true while a staged reset has not been
    issued. Allocators must not reuse such an extent: chunks written behind
    the reset could be referenced by the very index flush the reset waits
    on, deadlocking writeback. *)
val has_pending_reset : t -> extent:int -> bool

(** Debug: one line per blocked extent-queue head (extent, kind, input
    dependency state). *)
val pp_blocked : Format.formatter -> t -> unit

(** {2 Crash states} *)

type crash_report = {
  persisted : int;  (** pending writes persisted whole *)
  partial : int;  (** appends persisted up to a page boundary *)
  dropped : int;
}

(** [crash t ~rng ~persist_probability ~split_pages] — see module doc. After
    the call the volatile view equals the durable state and all previously
    pending dependencies are either persistent or failed. *)
val crash :
  t -> rng:Util.Rng.t -> persist_probability:float -> split_pages:bool -> crash_report

(** [discard_volatile t] drops every pending write and reloads the
    volatile images from the durable state — the effect of a process
    restart without a disk crash. Recovery paths call it so they never
    observe staged-but-failed writes as if they were on disk. *)
val discard_volatile : t -> unit

(** {2 Statistics} *)

type stats = {
  appends : int;
  resets : int;
  ios_issued : int;
  bytes_written : int;
  crashes : int;
}

(** A legacy view assembled from the registry counters ([iosched.append],
    [iosched.reset], [iosched.io_issued], [iosched.bytes_issued],
    [iosched.crash]); always equal to the corresponding {!Obs} values. *)
val stats : t -> stats
