(** Page-granular LRU buffer cache over scheduler reads.

    Reads assemble from cached pages, fetching misses through
    {!Io_sched.read} (where injected IO failures fire — cache hits
    deliberately bypass injection, as a real cache bypasses the disk).
    Mutators must invalidate: {!note_write} after staging an append and
    {!note_reset} after staging an extent reset.

    Fault site #2: the injected defect skips invalidation on reset, so a
    recycled extent can serve stale pre-reset pages from the cache.

    {b Concurrency.} The cache is safe to share across domains: every
    public operation runs under an internal writer-preferring
    {!Conc.Rwlock}, held in write mode even for {!read} because the read
    path mutates (LRU ticks, miss-path inserts, evictions). In the
    store's global lock order the cache lock is innermost
    (shard < stack < cache) and acquires nothing while held.

    {b Entry lifecycle.} Every per-page mutation is audited against the
    SimpleCacheSM state machine ({!Conc.Cache_sm}): misses claim the
    entry ([Empty -> Reading]), publish on success ([Reading -> Clean])
    or release on failure ([Reading -> Empty]); evictions and
    invalidations are [Clean -> Empty]; write-allocate fills are
    [Empty -> Clean]. This cache never dirties entries (writes
    invalidate), so the [Dirty]/[Writeback] edges are exercised by the
    {!Conc.Conc_shared} model instead. {!transitions_checked} /
    {!transition_violations} expose the audit. *)

type t

(** [create ?capacity_pages ?write_allocate sched] — [write_allocate]
    (default false) inserts written pages into the cache at write time, so
    reads of recently written data always hit. The section 8.3 experiment
    uses it: with a large write-allocating cache the miss path is
    unreachable by the test harness. *)
val create : ?capacity_pages:int -> ?write_allocate:bool -> ?obs:Obs.t -> Io_sched.t -> t

(** True when the cache populates itself on writes. *)
val write_allocate : t -> bool

(** The registry receiving [cache.hit] / [cache.miss] / [cache.eviction] /
    [cache.fill] counters and the [cache.resident_pages] gauge; defaults to
    the scheduler's. *)
val obs : t -> Obs.t

(** [fill t ~extent ~off data] — write-allocate path: insert the written
    bytes' pages. No-op unless [write_allocate]. *)
val fill : t -> extent:int -> off:int -> string -> unit

(** [read t ~extent ~off ~len] — semantics of {!Io_sched.read} plus
    caching. *)
val read : t -> extent:int -> off:int -> len:int -> (string, Io_sched.error) result

(** [note_write t ~extent ~off ~len] invalidates cached pages overlapping
    the written range (a cached partial tail page goes stale when an append
    extends it). *)
val note_write : t -> extent:int -> off:int -> len:int -> unit

(** [note_reset t ~extent] drops every cached page of the extent. *)
val note_reset : t -> extent:int -> unit

(** Drop everything (used on reboot). *)
val invalidate_all : t -> unit

type stats = { hits : int; misses : int; evictions : int }

(** A legacy view over the registry counters; always equal to the
    corresponding {!Obs} values. *)
val stats : t -> stats

(** {2 Lifecycle audit} *)

(** Entry transitions taken (and checked against {!Conc.Cache_sm.legal})
    since creation — the coverage evidence for {!transition_violations}
    being empty. *)
val transitions_checked : t -> int

(** Illegal transitions observed; must be empty. *)
val transition_violations : t -> Conc.Cache_sm.violation list
