type entry = { data : string; mutable last_used : int }

type metrics = {
  m_hits : Obs.Counter.t;
  m_misses : Obs.Counter.t;
  m_evictions : Obs.Counter.t;
  m_fills : Obs.Counter.t;
  m_resident : Obs.Gauge.t;
}

type t = {
  sched : Io_sched.t;
  capacity : int;
  write_allocate : bool;
  pages : (int * int, entry) Hashtbl.t;  (* (extent, page index) -> content *)
  states : (int * int, Conc.Cache_sm.state) Hashtbl.t;  (* absent = Empty *)
  audit : Conc.Cache_sm.audit;
  lock : Conc.Rwlock.t;
  obs : Obs.t;
  m : metrics;
  mutable tick : int;
}

type stats = { hits : int; misses : int; evictions : int }

let create ?(capacity_pages = 64) ?(write_allocate = false) ?obs sched =
  let obs = match obs with Some o -> o | None -> Io_sched.obs sched in
  {
    sched;
    capacity = max 1 capacity_pages;
    write_allocate;
    pages = Hashtbl.create 128;
    states = Hashtbl.create 128;
    audit = Conc.Cache_sm.auditor ();
    lock = Conc.Rwlock.create ();
    obs;
    m =
      {
        m_hits = Obs.counter ~coverage:true obs "cache.hit";
        m_misses = Obs.counter ~coverage:true obs "cache.miss";
        m_evictions = Obs.counter ~coverage:true obs "cache.eviction";
        m_fills = Obs.counter ~coverage:true obs "cache.fill";
        m_resident = Obs.gauge obs "cache.resident_pages";
      };
    tick = 0;
  }

let write_allocate t = t.write_allocate
let obs t = t.obs

(* Every entry mutation is a SimpleCacheSM edge, audited against
   Cache_sm.legal. The real cache only visits the Empty/Reading/Clean
   subset (it is a read cache: writes invalidate instead of dirtying), so
   Dirty/Writeback never appear here — the Conc_shared model exercises
   those. States are stored explicitly (absent = Empty) and must be
   updated under [t.lock] in write mode. *)
let page_state t key =
  match Hashtbl.find_opt t.states key with Some s -> s | None -> Conc.Cache_sm.Empty

let transition t key new_s =
  let old_s = page_state t key in
  Conc.Cache_sm.record t.audit ~page:(snd key) ~old_s ~new_s;
  if new_s = Conc.Cache_sm.Empty then Hashtbl.remove t.states key
  else Hashtbl.replace t.states key new_s
let sync_resident t = Obs.Gauge.set_int t.m.m_resident (Hashtbl.length t.pages)

let touch t entry =
  t.tick <- t.tick + 1;
  entry.last_used <- t.tick

let evict_if_needed t =
  if Hashtbl.length t.pages > t.capacity then begin
    let victim = ref None in
    (* Sorted iteration makes the last_used tie-break deterministic. *)
    Util.Tbl.iter_sorted
      (fun key entry ->
        match !victim with
        | Some (_, e) when e.last_used <= entry.last_used -> ()
        | _ -> victim := Some (key, entry))
      t.pages;
    match !victim with
    | Some ((extent, page), _) ->
      Hashtbl.remove t.pages (extent, page);
      transition t (extent, page) Conc.Cache_sm.Empty;
      Obs.Counter.incr t.m.m_evictions;
      if Obs.tracing t.obs then
        Obs.emit t.obs ~layer:"cache" "evict"
          [ ("extent", string_of_int extent); ("page", string_of_int page) ]
    | None -> ()
  end

(* Fetch one page's currently-readable prefix through the scheduler. *)
let fetch_page t ~extent ~page =
  let ps = Io_sched.page_size t.sched in
  let start = page * ps in
  let soft = Io_sched.soft_ptr t.sched ~extent in
  let len = min ps (soft - start) in
  if len <= 0 then
    Error (Io_sched.Io (Disk.Out_of_bounds (Printf.sprintf "page %d beyond soft pointer" page)))
  else begin
    (* Claim the entry for the fetch window. A stale short entry (partial
       page outgrown by appends) leaves the Clean state first. *)
    if page_state t (extent, page) = Conc.Cache_sm.Clean then
      transition t (extent, page) Conc.Cache_sm.Empty;
    transition t (extent, page) Conc.Cache_sm.Reading;
    match Io_sched.read t.sched ~extent ~off:start ~len with
    | Error _ as e ->
      transition t (extent, page) Conc.Cache_sm.Empty;
      e
    | Ok data ->
      (* Fault #17 (extra, section 8.3): the defect lives on the miss
         path — full pages fetched from disk get their last byte
         corrupted before entering the cache. *)
      let data =
        if Faults.enabled Faults.F17_cache_miss_path && String.length data = ps then begin
          Faults.record_fired Faults.F17_cache_miss_path;
          let b = Bytes.of_string data in
          Bytes.set b (ps - 1) (Char.chr (Char.code (Bytes.get b (ps - 1)) lxor 0xFF));
          Bytes.to_string b
        end
        else data
      in
      let entry = { data; last_used = 0 } in
      touch t entry;
      Hashtbl.replace t.pages (extent, page) entry;
      transition t (extent, page) Conc.Cache_sm.Clean;
      evict_if_needed t;
      sync_resident t;
      Ok data
  end

let read_locked t ~extent ~off ~len =
  if len < 0 || off < 0 then Error (Io_sched.Io (Disk.Out_of_bounds "negative offset or length"))
  else if off + len > Io_sched.soft_ptr t.sched ~extent then
    Error
      (Io_sched.Io
         (Disk.Out_of_bounds (Printf.sprintf "read [%d, %d) beyond soft pointer" off (off + len))))
  else if len = 0 then Ok ""
  else begin
    let ps = Io_sched.page_size t.sched in
    let first = off / ps and last = (off + len - 1) / ps in
    let buf = Buffer.create len in
    let rec go page =
      if page > last then Ok (Buffer.contents buf)
      else begin
        let page_data =
          match Hashtbl.find_opt t.pages (extent, page) with
          | Some entry when String.length entry.data >= min ps (off + len - (page * ps)) ->
            Obs.Counter.incr t.m.m_hits;
            touch t entry;
            Ok entry.data
          | Some _ | None ->
            Obs.Counter.incr t.m.m_misses;
            fetch_page t ~extent ~page
        in
        match page_data with
        | Error _ as e -> e
        | Ok data ->
          let page_start = page * ps in
          let from = max off page_start - page_start in
          let until = min (off + len) (page_start + ps) - page_start in
          Buffer.add_string buf (String.sub data from (until - from));
          go (page + 1)
      end
    in
    go first
  end

let fill_locked t ~extent ~off data =
  if t.write_allocate then begin
    Obs.Counter.incr t.m.m_fills;
    let ps = Io_sched.page_size t.sched in
    let len = String.length data in
    let first = off / ps in
    let last = (off + len - 1) / ps in
    for page = first to last do
      let page_start = page * ps in
      (* Only pages fully determined by this write (or starting at it) are
         inserted; partially stale pages would need a read-modify-write. *)
      if page_start >= off then begin
        let avail = off + len - page_start in
        let data = String.sub data (page_start - off) (min ps avail) in
        let entry = { data; last_used = 0 } in
        touch t entry;
        Hashtbl.replace t.pages (extent, page) entry;
        (* A replaced entry stays Clean (no self-loop edges); a fresh one
           fills without an IO window: Empty -> Clean. *)
        if page_state t (extent, page) <> Conc.Cache_sm.Clean then
          transition t (extent, page) Conc.Cache_sm.Clean;
        evict_if_needed t
      end
    done;
    sync_resident t
  end

let drop_page t key =
  if Hashtbl.mem t.pages key then begin
    Hashtbl.remove t.pages key;
    transition t key Conc.Cache_sm.Empty
  end

let note_write_locked t ~extent ~off ~len =
  if len > 0 then begin
    let ps = Io_sched.page_size t.sched in
    for page = off / ps to (off + len - 1) / ps do
      drop_page t (extent, page)
    done;
    sync_resident t
  end

let note_reset_locked t ~extent =
  (* Fault #2: cache was not correctly drained after resetting an extent. *)
  if Faults.enabled Faults.F2_cache_not_drained then Faults.record_fired Faults.F2_cache_not_drained
  else begin
    let stale = Util.Tbl.fold_sorted (fun (e, p) _ acc -> if e = extent then (e, p) :: acc else acc) t.pages [] in
    List.iter (drop_page t) stale;
    sync_resident t
  end

let invalidate_all_locked t =
  Util.Tbl.iter_sorted (fun key _ -> transition t key Conc.Cache_sm.Empty) t.pages;
  Hashtbl.reset t.pages;
  sync_resident t

(* Public entry points take the cache's rwlock in write mode: even [read]
   mutates (LRU ticks, miss-path inserts, evictions), which is exactly
   why a reader-writer split inside the cache would be unsound — the
   paper's SC-for-race-free argument needs every Hashtbl access inside a
   critical section. The lock nests inside the store's stack lock
   (global order: shard < stack < cache) and takes nothing itself, so it
   cannot participate in a cycle. *)
let read t ~extent ~off ~len = Conc.Rwlock.with_write t.lock (fun () -> read_locked t ~extent ~off ~len)
let fill t ~extent ~off data = Conc.Rwlock.with_write t.lock (fun () -> fill_locked t ~extent ~off data)

let note_write t ~extent ~off ~len =
  Conc.Rwlock.with_write t.lock (fun () -> note_write_locked t ~extent ~off ~len)

let note_reset t ~extent = Conc.Rwlock.with_write t.lock (fun () -> note_reset_locked t ~extent)
let invalidate_all t = Conc.Rwlock.with_write t.lock (fun () -> invalidate_all_locked t)

(* Lifecycle-audit results (read-locked: the auditor is only written
   under the write lock). *)
let transitions_checked t = Conc.Rwlock.with_read t.lock (fun () -> Conc.Cache_sm.checked t.audit)

let transition_violations t =
  Conc.Rwlock.with_read t.lock (fun () -> Conc.Cache_sm.violations t.audit)

(* A thin view over the registry counters; parity is by construction. *)
let stats (t : t) =
  {
    hits = Obs.Counter.value t.m.m_hits;
    misses = Obs.Counter.value t.m.m_misses;
    evictions = Obs.Counter.value t.m.m_evictions;
  }
