(** Generation-stamped record logs over a pair of reserved extents.

    ShardStore keeps two kinds of small, frequently-rewritten system state:
    the superblock (soft write pointers, extent ownership) and the LSM-tree
    metadata (locators of the chunks currently storing the tree). Both are
    persisted the same way: append CRC-framed, generation-numbered snapshot
    records to a reserved extent; when it fills, reset the {e other}
    reserved extent (which holds only older generations) and continue
    there. Recovery scans both extents and adopts the newest decodable
    record.

    Writes go through {!Io_sched}, so records participate in soft-updates
    ordering: a record's input dependency chains to the previous record
    (generations become durable in order) plus whatever the caller passes
    (e.g. the evacuation and index writes an ownership transition depends
    on). *)

type t

type error =
  | Sched of Io_sched.error
  | Record_too_large of { size : int; capacity : int }

val pp_error : Format.formatter -> error -> unit

(** See {!Io_sched.error_class}; [Record_too_large] is [`Resource]. *)
val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

(** [create ?obs sched ~extents:(a, b) ~name] manages records on reserved
    extents [a] and [b]. [name] tags errors, debug output and the roll's
    metric series (counters [logroll.append] / [logroll.switch] /
    [logroll.recover] carry a [("roll", name)] label); metrics land in
    [obs], defaulting to the scheduler's registry. *)
val create : ?obs:Obs.t -> Io_sched.t -> extents:int * int -> name:string -> t

(** Generation of the most recently appended record; 0 before any. *)
val generation : t -> int

(** Dependency of the most recently appended record ({!Dep.trivial} before
    any). New records chain to it automatically. *)
val last_record_dep : t -> Dep.t

(** [append t ~payload ~input] writes the next record. The record's input
    dependency is [input] combined with the chain to the previous record.
    Returns the record's dependency. *)
val append : t -> payload:string -> input:Dep.t -> (Dep.t, error) result

(** [recover t] scans both extents and returns the newest valid record's
    payload with its generation, or [None] if no valid record exists.
    Re-arms the writer so subsequent {!append}s continue after it. *)
val recover : t -> (int * string) option

(** Number of record appends that triggered an extent switch (stats). *)
val switches : t -> int
