open Util

type t = {
  sched : Io_sched.t;
  extent_a : int;
  extent_b : int;
  name : string;
  m_appends : Obs.Counter.t;
  m_switches : Obs.Counter.t;
  m_recovers : Obs.Counter.t;
  mutable active : int;
  mutable gen : int;
  mutable last_dep : Dep.t;
  mutable pending_switch : bool;
}

type error =
  | Sched of Io_sched.error
  | Record_too_large of { size : int; capacity : int }

let pp_error fmt = function
  | Sched e -> Io_sched.pp_error fmt e
  | Record_too_large { size; capacity } ->
    Format.fprintf fmt "record too large: %d bytes, extent capacity %d" size capacity

let error_class = function
  | Sched e -> Io_sched.error_class e
  | Record_too_large _ -> `Resource

let magic = "LR"

let create ?obs sched ~extents:(extent_a, extent_b) ~name =
  assert (extent_a <> extent_b);
  let obs = match obs with Some o -> o | None -> Io_sched.obs sched in
  (* Two rolls (superblock, index metadata) share one registry; the label
     keeps their series apart. *)
  let labels = [ ("roll", name) ] in
  {
    sched;
    extent_a;
    extent_b;
    name;
    m_appends = Obs.counter ~labels obs "logroll.append";
    m_switches = Obs.counter ~labels obs "logroll.switch";
    m_recovers = Obs.counter ~labels obs "logroll.recover";
    active = extent_a;
    gen = 0;
    last_dep = Dep.trivial;
    pending_switch = false;
  }

let generation t = t.gen
let last_record_dep t = t.last_dep
let switches t = Obs.Counter.value t.m_switches
let sibling t extent = if extent = t.extent_a then t.extent_b else t.extent_a

let encode ~gen ~payload =
  let inner = Codec.Writer.create ~capacity:(String.length payload + 24) () in
  Codec.Writer.u64 inner (Int64.of_int gen);
  Codec.Writer.lstring inner payload;
  let inner = Codec.Writer.contents inner in
  let w = Codec.Writer.create ~capacity:(String.length inner + 8) () in
  Codec.Writer.raw_string w magic;
  Codec.Writer.raw_string w inner;
  Codec.Writer.u32 w (Crc32.digest_string inner);
  Codec.Writer.contents w

(* Decode one record at the reader's position. Total: corrupt or truncated
   input yields [Error]. *)
let decode_record r =
  let open Codec.Syntax in
  let* () = Codec.Reader.magic r magic in
  let start = Codec.Reader.pos r in
  let* gen64 = Codec.Reader.u64 r in
  let* payload = Codec.Reader.lstring r in
  let inner_len = Codec.Reader.pos r - start in
  let* crc = Codec.Reader.u32 r in
  if gen64 < 0L || gen64 > Int64.of_int max_int then Error (Codec.Invalid "generation")
  else begin
    (* Recompute the CRC over the raw record bytes we just consumed. *)
    let w = Codec.Writer.create ~capacity:inner_len () in
    Codec.Writer.u64 w gen64;
    Codec.Writer.lstring w payload;
    if Crc32.digest_string (Codec.Writer.contents w) <> crc then Error Codec.Bad_checksum
    else Ok (Int64.to_int gen64, payload)
  end

let scan_extent t extent =
  let len = Io_sched.soft_ptr t.sched ~extent in
  if len = 0 then []
  else
    match Io_sched.read t.sched ~extent ~off:0 ~len with
    | Error _ -> []
    | Ok image ->
      let r = Codec.Reader.of_string image in
      let rec go acc =
        if Codec.Reader.remaining r = 0 then List.rev acc
        else
          match decode_record r with
          | Ok (gen, payload) -> go ((gen, payload, Codec.Reader.pos r) :: acc)
          | Error _ -> List.rev acc
        (* decode failure = torn or garbage tail; nothing after it can be a
           durable record because extents persist in FIFO prefix order *)
      in
      go []

let append t ~payload ~input =
  let record = encode ~gen:(t.gen + 1) ~payload in
  let size = String.length record in
  let capacity = Io_sched.extent_size t.sched in
  if size > capacity then Error (Record_too_large { size; capacity })
  else begin
    let need_switch =
      t.pending_switch || size > Io_sched.capacity_left t.sched ~extent:t.active
    in
    let switch_result =
      if need_switch then begin
        let other = sibling t t.active in
        (* The sibling's records are superseded by the newest record on the
           active extent — but only once that record is durable, so the
           reset must not be issued before it. *)
        match Io_sched.reset t.sched ~extent:other ~input:t.last_dep with
        | Error e -> Error (Sched e)
        | Ok _reset_dep ->
          t.active <- other;
          t.pending_switch <- false;
          Obs.Counter.incr t.m_switches;
          Ok ()
      end
      else Ok ()
    in
    match switch_result with
    | Error _ as e -> e
    | Ok () -> (
      let input = Dep.and_ input t.last_dep in
      match Io_sched.append t.sched ~extent:t.active ~data:record ~input with
      | Error e -> Error (Sched e)
      | Ok dep ->
        t.gen <- t.gen + 1;
        t.last_dep <- dep;
        Obs.Counter.incr t.m_appends;
        Ok dep)
  end

let recover t =
  Obs.Counter.incr t.m_recovers;
  (* Recovery reads are a controlled post-reboot sequence; injected runtime
     IO faults target the request path, so suspend arming here. *)
  Disk.with_faults_suspended (Io_sched.disk t.sched) (fun () ->
      let candidates =
        List.concat_map
          (fun extent -> List.map (fun (g, p, e) -> (g, p, e, extent)) (scan_extent t extent))
          [ t.extent_a; t.extent_b ]
      in
      match candidates with
      | [] ->
        t.gen <- 0;
        t.last_dep <- Dep.trivial;
        t.active <- t.extent_a;
        (* A torn record may be all that is on the extent; appending behind
           it would hide the new records from scans, so force a switch
           (which resets the sibling) before the next append. *)
        t.pending_switch <- Io_sched.soft_ptr t.sched ~extent:t.extent_a > 0;
        None
      | _ ->
        let (gen, payload, end_off, extent) =
          List.fold_left
            (fun ((g0, _, _, _) as best) ((g, _, _, _) as c) -> if g > g0 then c else best)
            (List.hd candidates) (List.tl candidates)
        in
        t.gen <- gen;
        t.last_dep <- Dep.trivial;
        t.active <- extent;
        (* A torn record may sit beyond the last valid one; appending after
           it would hide later records from future scans, so force the next
           append onto the sibling extent. *)
        t.pending_switch <- end_off <> Io_sched.soft_ptr t.sched ~extent;
        Some (gen, payload))
