(** E13: the chaos campaign — randomized fault-injection validation of the
    fleet's fault-tolerant request plane ([bin/validate --chaos]).

    Each campaign replays a seeded, fully deterministic mix of client
    operations and chaos (random fault arming, targeted extent failures,
    node crashes, node losses, heals, repairs) against a 5-node fleet,
    checking a per-key model: an acknowledged mutation must stay readable;
    a failed mutation is indeterminate (its value {e may} be observed).
    After a final heal-everything + repair phase, every key must return an
    admissible value, fully replicated, with the dirty set drained.

    Randomness is baked into the op list (each chaos op carries its own
    seed), so failing campaigns replay exactly and shrink with a ddmin
    span-removal minimizer. {!check_teeth} proves the checker is not
    vacuous: with fault #18 (quorum ack without durable flush) enabled it
    must catch durability violations. *)

type op =
  | Put of { key : string; value : string }
  | Put_many of (string * string) list
  | Delete of { key : string }
  | Get of { key : string }
  | Scan of { lo : string option; hi : string option }
      (** fleet-wide range scan; each model key in range is judged by what
          the scan said about it (value or absence must be admissible) *)
  | Arm_faults of { node : int; transient : float; permanent : float; seed : int }
  | Disarm_faults of { node : int }
  | Fail_extent of { node : int; extent : int; permanent : bool }
  | Crash of { node : int; seed : int }
  | Destroy of { node : int }
  | Heal of { node : int; seed : int }
  | Repair

val pp_op : Format.formatter -> op -> unit

type violation = {
  at : int;  (** op index; [-1] = final convergence phase *)
  what : string;
}

val pp_violation : Format.formatter -> violation -> unit

type campaign_report = {
  seed : int;
  ops : int;
  violations : violation list;
  minimized : op list;  (** shrunk reproducer; [[]] when the campaign is clean *)
  trace : Tracecheck.Trace.entry list;
      (** wire trace of the minimized reproducer — a counterexample from
          a non-deterministic run ships as a small, replayable artifact;
          with [capture] on, a clean campaign carries its full trace
          (for {!Trace_audit}); [[]] otherwise *)
  faults_injected : int;
  retries : int;
  failovers : int;
  read_repairs : int;
  breaker_opens : int;
  quorum_acks : int;
  partial_writes : int;
}

type summary = {
  campaigns : int;
  clean : int;  (** campaigns with zero violations *)
  total_ops : int;
  total_faults : int;
  total_retries : int;
  total_failovers : int;
  total_read_repairs : int;
  total_breaker_opens : int;
  total_quorum_acks : int;
  total_partial_writes : int;
  failed : campaign_report list;
  seconds : float;
}

(** [run ?domains ~campaigns ~length ~seed ()] — [campaigns] seeded
    campaigns of [length] ops each (defaults: 200 campaigns, 40 ops,
    seed 0). [domains] (default 1) shards campaigns across OCaml domains
    — each campaign owns a private fleet, and reports are merged back in
    ascending seed order, so the summary (everything but [seconds]) is
    byte-identical for every domain count. [capture] (default false)
    attaches a fresh wire-trace recorder to every campaign's fleet
    (reports then carry their trace) — campaigns are sequential within a
    domain and traces are part of the seed-ordered report, so the
    byte-identity guarantee is unchanged. *)
val run :
  ?domains:int -> ?campaigns:int -> ?length:int -> ?seed:int -> ?capture:bool -> unit -> summary

(** Fleet size every campaign runs against. *)
val nodes : int

(** [fleet_config ~seed] — the deterministic fleet configuration of
    campaign [seed] ({!nodes} nodes, replication 3, small store
    geometry), exactly as {!run} builds it. *)
val fleet_config : seed:int -> Fleet.config

(** [gen ~length ~seed] — the deterministic op list of campaign [seed],
    exactly as {!run} would generate it. *)
val gen : length:int -> seed:int -> op list

(** [run_ops ?trace ~seed ops] — execute one campaign (fresh fleet,
    model checking, convergence phase) and return its violations, a
    fleet-counter reader, and the injected-fault count. [?trace] records
    the campaign's wire trace ({!Tracecheck.Trace}): request-plane
    intervals from the fleet, fault/extent markers from the driver.
    Assumes the global fault toggles are already set ({!run} disables
    everything, {!check_teeth} arms #18). *)
val run_ops :
  ?trace:Tracecheck.Trace.Recorder.t ->
  seed:int ->
  op list ->
  violation list * (string -> int) * int

(** [check_teeth ()] re-runs campaigns with fault #18 (quorum
    acknowledgement without durable flush) enabled and returns how many
    caught a violation — zero means the checker has lost its teeth.
    [domains] as in {!run} (#18 stays armed for the whole sweep; workers
    only read the toggle). *)
val check_teeth : ?domains:int -> ?campaigns:int -> ?length:int -> ?seed:int -> unit -> int

val print : summary -> unit
