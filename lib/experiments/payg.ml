type curve = {
  fault : Faults.t;
  trials : int;
  hits : int list;
  budgets : int list;
  probability : float list;
}

type report = {
  curves : curve list;
  seconds : float;
}

let default_faults =
  [ Faults.F1_reclaim_off_by_one; Faults.F7_soft_hard_pointer_mismatch;
    Faults.F2_cache_not_drained ]

let run ?(domains = 1) ?(faults = default_faults) ?(trials = 20) ?(max_sequences = 2_000)
    ?(budgets = [ 10; 30; 100; 300; 1_000; 2_000 ]) ?(seed = 52_000) () =
  let t0 = Util.Wallclock.now_s () in
  let curves =
    List.map
      (fun fault ->
        let hits = ref [] in
        for trial = 0 to trials - 1 do
          let r =
            Lfm.Detect.detect ~domains ~max_sequences ~minimize:false
              ~seed:(seed + (trial * (max_sequences + 1)))
              fault
          in
          if r.Lfm.Detect.found then hits := r.Lfm.Detect.sequences :: !hits
        done;
        let hits = List.sort compare !hits in
        let probability =
          List.map
            (fun budget ->
              float_of_int (List.length (List.filter (fun h -> h <= budget) hits))
              /. float_of_int trials)
            budgets
        in
        { fault; trials; hits; budgets; probability })
      faults
  in
  { curves; seconds = Util.Wallclock.now_s () -. t0 }

let print report =
  Printf.printf "E6: pay-as-you-go detection probability vs sequence budget\n";
  List.iter
    (fun c ->
      Printf.printf "#%d %s\n" (Faults.number c.fault) (Faults.description c.fault);
      List.iter2
        (fun budget p -> Printf.printf "  budget %5d: P(detect) = %.2f\n" budget p)
        c.budgets c.probability;
      match c.hits with
      | [] -> Printf.printf "  (never detected within budget)\n"
      | hits ->
        let n = List.length hits in
        Printf.printf "  detected %d/%d trials; median sequences-to-detection: %d\n" n c.trials
          (List.nth hits (n / 2)))
    report.curves;
  Printf.printf "(%.1f s total)\n" report.seconds
