type row = {
  fault : Faults.t;
  method_ : string;
  detected : bool;
  effort : string;
  counterexample : string;
}

type report = {
  rows : row list;
  seconds : float;
}

type budget = {
  pbt_sequences : int;
  pbt_length : int;
  f10_sequences : int;
  smc_schedules : int;
  minimize : bool;
  seed : int;
}

let default_budget =
  {
    pbt_sequences = 5_000;
    pbt_length = 60;
    f10_sequences = 60_000;
    smc_schedules = 200_000;
    minimize = true;
    seed = 42;
  }

let quick_budget =
  {
    pbt_sequences = 800;
    pbt_length = 60;
    f10_sequences = 2_000;
    smc_schedules = 50_000;
    minimize = false;
    seed = 42;
  }

let pbt_row ~domains budget fault =
  let max_sequences =
    if fault = Faults.F10_uuid_magic_collision then budget.f10_sequences
    else budget.pbt_sequences
  in
  let length =
    if fault = Faults.F10_uuid_magic_collision then 80 else budget.pbt_length
  in
  let r =
    Lfm.Detect.detect ~domains ~length ~max_sequences ~minimize:budget.minimize
      ~seed:budget.seed fault
  in
  let counterexample =
    match r.Lfm.Detect.original, r.Lfm.Detect.minimized with
    | Some o, Some m ->
      Format.asprintf "%a -> %a" Lfm.Op.pp_summary o Lfm.Op.pp_summary m
    | Some o, None -> Format.asprintf "%a" Lfm.Op.pp_summary o
    | _ -> "-"
  in
  {
    fault;
    method_ = Lfm.Detect.method_name (Lfm.Detect.method_for fault);
    detected = r.Lfm.Detect.found;
    effort =
      Printf.sprintf "%d sequences (%d ops)" r.Lfm.Detect.sequences r.Lfm.Detect.total_ops;
    counterexample;
  }

let smc_row budget fault =
  let strategy = Smc.Pct { seed = budget.seed; schedules = budget.smc_schedules; depth = 3 } in
  let outcome = Conc.Conc_detect.detect strategy fault in
  let detected = outcome.Smc.violation <> None in
  (* When PCT misses within budget, fall back to DFS (sound for these
     small harnesses). *)
  let outcome, detected, method_ =
    if detected then (outcome, detected, "stateless model checking (PCT)")
    else begin
      let o = Conc.Conc_detect.detect (Smc.Dfs { max_schedules = budget.smc_schedules }) fault in
      (o, o.Smc.violation <> None, "stateless model checking (DFS)")
    end
  in
  {
    fault;
    method_;
    detected;
    effort =
      Printf.sprintf "%d schedules (%d steps)" outcome.Smc.schedules_run outcome.Smc.total_steps;
    counterexample =
      (match outcome.Smc.violation with
      | Some v -> Format.asprintf "%a" Smc.pp_violation v
      | None -> "-");
  }

(* Faults are processed one after another even under [~domains] — the
   global fault toggle only changes between sweeps — and each fault's seed
   hunt is sharded internally, so the rows (everything but [seconds]) are
   byte-identical for every domain count. *)
let run ?(domains = 1) budget =
  let t0 = Util.Wallclock.now_s () in
  let rows =
    List.map
      (fun fault ->
        match Lfm.Detect.method_for fault with
        | Lfm.Detect.Smc -> smc_row budget fault
        | Lfm.Detect.Pbt _ | Lfm.Detect.Model_validation -> pbt_row ~domains budget fault)
      Faults.all
  in
  { rows; seconds = Util.Wallclock.now_s () -. t0 }

let print report =
  let class_of row = Faults.property_class row.fault in
  Printf.printf
    "Figure 5: ShardStore issues prevented from reaching production by our validation effort\n";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun cls ->
      Printf.printf "%s\n" (Faults.property_class_name cls);
      List.iter
        (fun row ->
          if class_of row = cls then begin
            Printf.printf "  #%-3d %-12s %s\n"
              (Faults.number row.fault)
              (Faults.component row.fault)
              (Faults.description row.fault);
            Printf.printf "       %-10s via %s; %s\n"
              (if row.detected then "DETECTED" else "NOT FOUND")
              row.method_ row.effort;
            if row.counterexample <> "-" then
              Printf.printf "       counterexample: %s\n" row.counterexample
          end)
        report.rows)
    [ Faults.Functional_correctness; Faults.Crash_consistency; Faults.Concurrency ];
  let detected = List.length (List.filter (fun r -> r.detected) report.rows) in
  Printf.printf "%s\n%d / %d issues detected in %.1f s\n" (String.make 100 '-') detected
    (List.length report.rows) report.seconds
