(* E16: wire-trace capture and offline linearizability audit — see
   trace_audit.mli for the experiment description. *)

module T = Tracecheck.Trace
module A = Tracecheck.Audit

type teeth_case = {
  t_name : string;
  t_rejected : bool;
  t_verdict : A.verdict;
  t_reason : string;
}

type summary = {
  campaigns : int;
  chaos_valid : int;
  chaos_violations : int;
  chaos_entries : int;
  chaos_ops : int;
  chaos_search_nodes : int;
  chaos_dropped : int;
  shared_domains : int;
  shared_report : A.report;
  node_requests : int;
  node_report : A.report;
  forged : teeth_case list;
  f18_campaigns : int;
  f18_detected : int;
  seconds : float;
}

let trace_budget = 8 * 1024 * 1024

(* {2 Chaos campaigns, captured and audited} *)

(* One campaign: replay the standard seeded op list with a recorder
   attached, then audit the trace. The campaign is sequential, so the
   trace is deterministic; the chaos model's own verdict rides along as
   a cross-check (both judges should agree the run is fine). *)
let audit_campaign ~length ~seed =
  let ops = Chaos.gen ~length ~seed in
  let recorder = T.Recorder.create ~byte_budget:trace_budget () in
  let violations, _, _ = Chaos.run_ops ~trace:recorder ~seed ops in
  (A.audit recorder, List.length violations)

type chaos_acc = {
  c_valid : int;
  c_violations : int;
  c_entries : int;
  c_ops : int;
  c_nodes : int;
  c_dropped : int;
}

let chaos_zero =
  { c_valid = 0; c_violations = 0; c_entries = 0; c_ops = 0; c_nodes = 0; c_dropped = 0 }

let run_chaos ~domains ~campaigns ~length ~seed =
  Faults.disable_all ();
  Par.sweep ~domains ~start:seed ~count:campaigns
    ~init:(fun () -> chaos_zero)
    ~step:(fun acc s ->
      let report, violations = audit_campaign ~length ~seed:s in
      {
        c_valid = (acc.c_valid + if A.ok report then 1 else 0);
        c_violations = (acc.c_violations + if violations > 0 then 1 else 0);
        c_entries = acc.c_entries + report.A.entries;
        c_ops = acc.c_ops + report.A.ops;
        c_nodes = acc.c_nodes + report.A.search_nodes;
        c_dropped = acc.c_dropped + report.A.dropped;
      })
    ~merge:(fun a b ->
      {
        c_valid = a.c_valid + b.c_valid;
        c_violations = a.c_violations + b.c_violations;
        c_entries = a.c_entries + b.c_entries;
        c_ops = a.c_ops + b.c_ops;
        c_nodes = a.c_nodes + b.c_nodes;
        c_dropped = a.c_dropped + b.c_dropped;
      })
    ()

(* {2 Racing Store.Shared workload} *)

(* All domains record into one recorder while racing on one shared
   store. Scans are kept narrow (a three-key window) so a complete
   snapshot judges a handful of keys, keeping per-key histories inside
   the memoizable range of the offline search. *)
let run_shared ~domains ~ops_per_domain ~seed =
  let recorder = T.Recorder.create ~byte_budget:(32 * 1024 * 1024) () in
  (* default_config: real geometry — the workload probes races, not
     extent exhaustion (as in Shared_lin). *)
  let store = Store.Shared.create ~shards:8 ~trace:recorder Store.Default.default_config in
  let total = domains * ops_per_domain in
  let nkeys = max 4 (total / 40) in
  let key i = Printf.sprintf "k%02d" i in
  let worker d =
    let rng = Util.Rng.of_int ((seed * 7919) + d) in
    for i = 0 to ops_per_domain - 1 do
      let k = key (Util.Rng.int rng nkeys) in
      let v = Printf.sprintf "d%d-%d" d i in
      match Util.Rng.int rng 100 with
      | r when r < 40 -> ignore (Store.Shared.get store ~key:k : (string option, _) result)
      | r when r < 65 -> ignore (Store.Shared.put store ~key:k ~value:v : (unit, _) result)
      | r when r < 75 -> ignore (Store.Shared.delete store ~key:k : (unit, _) result)
      | r when r < 85 ->
        let k2 = key (Util.Rng.int rng nkeys) in
        ignore
          (Store.Shared.put_batch store [ (k, v); (k2, v ^ "b") ]
            : (Store.Shared.batch_result, _) result)
      | r when r < 93 ->
        let j = Util.Rng.int rng nkeys in
        let lo = key j and hi = key (min (nkeys - 1) (j + 2)) in
        ignore (Store.Shared.scan store ~lo ~hi () : ((string * string) list, _) result)
      | _ -> ignore (Store.Shared.flush store : (int, _) result)
    done
  in
  let (_ : unit list) = Conc.Domains.spawn_join ~domains (fun d -> worker d) in
  A.audit recorder

(* {2 Rpc.Node request plane, pagination included} *)

let run_node ~requests ~seed =
  let recorder = T.Recorder.create ~byte_budget:trace_budget () in
  let node = Rpc.Node.create ~trace:recorder Store.Default.test_config in
  let nkeys = 12 in
  let key i = Printf.sprintf "n%02d" i in
  let rng = Util.Rng.of_int ((seed * 104_729) + 7) in
  for i = 0 to requests - 1 do
    let k = key (Util.Rng.int rng nkeys) in
    let v = Printf.sprintf "r%d" i in
    let req =
      match Util.Rng.int rng 100 with
      | r when r < 35 -> Rpc.Message.Get { key = k }
      | r when r < 65 -> Rpc.Message.Put { key = k; value = v }
      | r when r < 75 -> Rpc.Message.Delete { key = k }
      | r when r < 90 ->
        let k2 = key (Util.Rng.int rng nkeys) in
        Rpc.Message.Batch_request
          {
            ops =
              [
                Rpc.Message.Batch_put { key = k; value = v };
                (if Util.Rng.chance rng 0.5 then Rpc.Message.Batch_delete { key = k2 }
                 else Rpc.Message.Batch_put { key = k2; value = v ^ "b" });
              ];
          }
      | _ -> Rpc.Message.Scan_request { lo = None; hi = None; after = None; max_results = 64 }
    in
    ignore (Rpc.Node.handle node req : Rpc.Message.response)
  done;
  (* One scan driven through its continuation tokens: every page is a
     recorded interval, only a token-free final-page-less scan may claim
     completeness. *)
  let rec paginate after guard =
    if guard > 0 then
      match
        Rpc.Node.handle node (Rpc.Message.Scan_request { lo = None; hi = None; after; max_results = 3 })
      with
      | Rpc.Message.Scan_response { items; more } when more -> (
        match List.rev items with
        | (last, _) :: _ -> paginate (Some last) (guard - 1)
        | [] -> ())
      | _ -> ()
  in
  paginate None 32;
  A.audit recorder

(* {2 Teeth: forged histories} *)

let forged_histories =
  let e ts ev = { T.ts; src = "forged"; ev } in
  let inv ts id op = e ts (T.Invoke { id; client = 0; op }) in
  let resp ts id outcome = e ts (T.Respond { id; outcome }) in
  [
    (* An acknowledged put whose value is gone by the next read: the
       canonical durability violation. *)
    ( "acked-write-lost",
      [
        inv 1 1 (T.Put { key = "a"; value = "x" });
        resp 2 1 T.Acked;
        inv 3 2 (T.Get { key = "a" });
        resp 4 2 (T.Got None);
      ] );
    (* A failover read serving the overwritten value after a later put
       was acknowledged: stale, not concurrent — the intervals are
       disjoint, so no linearization order explains it. *)
    ( "stale-failover-read",
      [
        inv 1 1 (T.Put { key = "a"; value = "x" });
        resp 2 1 T.Acked;
        inv 3 2 (T.Put { key = "a"; value = "y" });
        resp 4 2 T.Acked;
        inv 5 3 (T.Get { key = "a" });
        resp 6 3 (T.Got (Some "x"));
      ] );
    (* Each key's answer is fine on its own (the scan overlaps both
       writes), but no single point inside the scan's interval can see
       key b's value while key a is still absent: b is only writable
       from ts 4, a is certainly present after ts 3. *)
    ( "snapshot-violating-scan",
      [
        inv 1 4 (T.Scan { lo = None; hi = None });
        inv 2 1 (T.Put { key = "a"; value = "1" });
        resp 3 1 T.Acked;
        inv 4 2 (T.Put { key = "b"; value = "2" });
        resp 5 2 T.Acked;
        resp 6 4 (T.Scanned { items = [ ("b", "2") ]; complete = true });
      ] );
    (* Clock skew: a response recorded before its invocation. Whichever
       way such a history is serialized, the well-formedness pass fails
       it (here: out-of-order timestamps / respond-before-invoke). *)
    ( "response-before-invoke",
      [
        inv 5 1 (T.Put { key = "a"; value = "x" });
        resp 3 1 T.Acked;
      ] );
  ]

let run_forged () =
  List.map
    (fun (t_name, entries) ->
      let report = A.run entries in
      {
        t_name;
        t_rejected = report.A.verdict = A.Rejected;
        t_verdict = report.A.verdict;
        t_reason =
          (match report.A.rejections with [] -> "" | r :: _ -> r.A.r_reason);
      })
    forged_histories

(* {2 Teeth: fault #18, armed} *)

(* Deterministic durability-violation scenario: with #18 the fleet
   acknowledges writes that only reached volatile staging; crashing
   every node shreds them, and the recorded read-back contradicts the
   acked puts. The audit must reject every one of these traces. *)
let f18_scenario ~seed =
  let recorder = T.Recorder.create ~byte_budget:trace_budget () in
  let fleet = Fleet.create ~trace:recorder (Chaos.fleet_config ~seed) in
  let nkeys = 8 in
  let key i = Printf.sprintf "s%02d" i in
  for i = 0 to nkeys - 1 do
    ignore (Fleet.put fleet ~key:(key i) ~value:(Printf.sprintf "t%d.%d" seed i)
             : (Fleet.ack, Fleet.error) result)
  done;
  for node = 0 to Chaos.nodes - 1 do
    Fleet.crash_node fleet ~rng:(Util.Rng.create (Int64.of_int ((seed * 31) + node))) ~node
  done;
  for i = 0 to nkeys - 1 do
    ignore (Fleet.get fleet ~key:(key i) : (string option, Fleet.error) result)
  done;
  A.audit recorder

let run_f18 ~campaigns ~seed =
  Faults.disable_all ();
  Faults.with_fault Faults.F18_quorum_ack_volatile (fun () ->
      let detected = ref 0 in
      for s = seed to seed + campaigns - 1 do
        let report = f18_scenario ~seed:s in
        if report.A.verdict = A.Rejected then incr detected
      done;
      !detected)

(* {2 The experiment} *)

let run ?(domains = 1) ?(campaigns = 200) ?(length = 40) ?(seed = 0) ?(shared_ops = 300) () =
  let t0 = Util.Wallclock.now_s () in
  let chaos = run_chaos ~domains ~campaigns ~length ~seed in
  let shared_domains = max 2 domains in
  let shared_report = run_shared ~domains:shared_domains ~ops_per_domain:shared_ops ~seed in
  let node_requests = 400 in
  let node_report = run_node ~requests:node_requests ~seed in
  let forged = run_forged () in
  let f18_campaigns = 20 in
  let f18_detected = run_f18 ~campaigns:f18_campaigns ~seed in
  {
    campaigns;
    chaos_valid = chaos.c_valid;
    chaos_violations = chaos.c_violations;
    chaos_entries = chaos.c_entries;
    chaos_ops = chaos.c_ops;
    chaos_search_nodes = chaos.c_nodes;
    chaos_dropped = chaos.c_dropped;
    shared_domains;
    shared_report;
    node_requests;
    node_report;
    forged;
    f18_campaigns;
    f18_detected;
    seconds = Util.Wallclock.now_s () -. t0;
  }

let ok s =
  s.chaos_valid = s.campaigns && s.chaos_violations = 0
  && A.ok s.shared_report && A.ok s.node_report
  && List.for_all (fun c -> c.t_rejected) s.forged
  && s.f18_detected = s.f18_campaigns

let print s =
  Printf.printf "E16: wire-trace capture and offline linearizability audit\n\n";
  Printf.printf "%-52s %12d\n" "chaos campaigns captured" s.campaigns;
  Printf.printf "%-52s %12d\n" "chaos traces audited valid" s.chaos_valid;
  Printf.printf "%-52s %12d\n" "chaos model violations (cross-check)" s.chaos_violations;
  Printf.printf "%-52s %12d\n" "chaos trace entries" s.chaos_entries;
  Printf.printf "%-52s %12d\n" "chaos operations judged" s.chaos_ops;
  Printf.printf "%-52s %12d\n" "chaos search nodes" s.chaos_search_nodes;
  Printf.printf "%-52s %12d\n" "chaos events dropped" s.chaos_dropped;
  Format.printf "shared store (%d domains racing): %a@." s.shared_domains A.pp_report
    s.shared_report;
  Format.printf "rpc node (%d requests, paginated scan): %a@." s.node_requests A.pp_report
    s.node_report;
  Printf.printf "\nteeth — forged histories (each must be rejected):\n";
  List.iter
    (fun c ->
      Printf.printf "  %-28s %s%s\n" c.t_name
        (if c.t_rejected then "rejected" else "NOT REJECTED: " ^ A.verdict_name c.t_verdict)
        (if c.t_reason = "" then "" else " — " ^ c.t_reason))
    s.forged;
  Printf.printf "teeth — fault #18 armed: %d/%d scenario traces rejected\n" s.f18_detected
    s.f18_campaigns;
  Printf.printf "%-52s %11.1fs\n" "wall clock" s.seconds;
  Printf.printf "\ntrace audit: %s\n" (if ok s then "PASS" else "FAIL")
