(** Experiment E4 — coarse vs block-level crash states (paper section 5):
    "we have also implemented a variant of DirtyReboot that does enumerate
    crash states at the block level ... this exhaustive approach has not
    found additional bugs and is dramatically slower".

    Compares three crash-state granularities on (a) detection of the
    crash-consistency faults and (b) checking throughput:

    - [Coarse]: whole-component decisions (persist everything eligible or
      nothing, never torn pages);
    - [Block_sampled]: the default — each DirtyReboot samples one
      dependency-closed subset with page-granular torn writes;
    - [Block_exhaustive]: at every DirtyReboot, {!Lfm.Crash_enum}
      enumerates {e all} (capped) block-level crash states on disk clones
      and checks each — sound like BOB/CrashMonkey, and dramatically
      slower, exactly as the paper reports. *)

type mode = Coarse | Block_sampled | Block_exhaustive

val mode_name : mode -> string

type detection = {
  fault : Faults.t;
  mode : mode;
  detected : bool;
  sequences : int;
}

type report = {
  detections : detection list;
  throughput : (mode * float) list;  (** sequences checked per second *)
  exhaustive_states : int;  (** crash states enumerated during the throughput run *)
  seconds : float;
}

val run :
  ?domains:int -> ?faults:Faults.t list -> ?max_sequences:int -> ?throughput_sequences:int ->
  ?seed:int -> unit -> report
(** [domains] shards each detection hunt over that many racing domains via
    {!Par.search} (throughput measurement stays sequential); the report is
    seed-for-seed identical to [domains = 1]. *)

val print : report -> unit
