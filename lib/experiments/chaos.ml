(* E13: the chaos campaign — randomized fault-injection validation of the
   fleet's request plane (ISSUE: robustness tentpole; paper section 8.4
   names validating ShardStore's role in the wider replicated system as
   future work).

   Each campaign is a seeded, fully deterministic sequence of client
   operations (put / put_many / get / delete) interleaved with chaos
   (random fault arming, targeted extent failures, node crashes, node
   losses, heals, repairs) against a small fleet, checked against a
   per-key model:

     { committed : value the fleet acknowledged last;
       maybe     : outcomes of mutations that failed after possibly
                   reaching some replicas }

   An acknowledged mutation sets [committed] and clears [maybe]; a failed
   mutation appends to [maybe] (its effect is indeterminate — the client
   was told "error", not "didn't happen"). A successful read must return
   an admissible value: [committed] or something in [maybe]. Read errors
   during the campaign are unavailability, not violations.

   The core property is checked in a final convergence phase: replace all
   broken hardware (heal + reboot), run repair, and then every key must be
   readable with an admissible value, fully replicated, with the dirty set
   drained — i.e. every acknowledged write survived the campaign.

   All randomness is baked into the op list (arming seeds, crash seeds),
   so a failing campaign replays exactly and minimizes with ddmin. *)

module S = Store.Default

type op =
  | Put of { key : string; value : string }
  | Put_many of (string * string) list
  | Delete of { key : string }
  | Get of { key : string }
  | Scan of { lo : string option; hi : string option }
  | Arm_faults of { node : int; transient : float; permanent : float; seed : int }
  | Disarm_faults of { node : int }
  | Fail_extent of { node : int; extent : int; permanent : bool }
  | Crash of { node : int; seed : int }
  | Destroy of { node : int }
  | Heal of { node : int; seed : int }
  | Repair

let pp_op fmt = function
  | Put { key; value } -> Format.fprintf fmt "put %s=%S" key value
  | Put_many ops ->
    Format.fprintf fmt "put-many [%s]"
      (String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) ops))
  | Delete { key } -> Format.fprintf fmt "delete %s" key
  | Get { key } -> Format.fprintf fmt "get %s" key
  | Scan { lo; hi } ->
    let b = function None -> "-" | Some k -> k in
    Format.fprintf fmt "scan [%s, %s]" (b lo) (b hi)
  | Arm_faults { node; transient; permanent; seed } ->
    Format.fprintf fmt "arm-faults node %d (transient %.2f, permanent %.3f, seed %d)" node
      transient permanent seed
  | Disarm_faults { node } -> Format.fprintf fmt "disarm-faults node %d" node
  | Fail_extent { node; extent; permanent } ->
    Format.fprintf fmt "fail-extent node %d extent %d (%s)" node extent
      (if permanent then "permanent" else "once")
  | Crash { node; seed } -> Format.fprintf fmt "crash node %d (seed %d)" node seed
  | Destroy { node } -> Format.fprintf fmt "destroy node %d" node
  | Heal { node; seed } -> Format.fprintf fmt "heal node %d (seed %d)" node seed
  | Repair -> Format.pp_print_string fmt "repair"

type violation = {
  at : int;  (* op index; -1 = final convergence phase *)
  what : string;
}

let pp_violation fmt v =
  if v.at < 0 then Format.fprintf fmt "final phase: %s" v.what
  else Format.fprintf fmt "op %d: %s" v.at v.what

type campaign_report = {
  seed : int;
  ops : int;
  violations : violation list;
  minimized : op list;  (* shrunk reproducer; [] when the campaign is clean *)
  trace : Tracecheck.Trace.entry list;
      (* wire trace of the minimized reproducer (or, with capture on, of
         the full campaign when it is clean); [] when capture is off and
         the campaign is clean *)
  faults_injected : int;
  retries : int;
  failovers : int;
  read_repairs : int;
  breaker_opens : int;
  quorum_acks : int;
  partial_writes : int;
}

type summary = {
  campaigns : int;
  clean : int;
  total_ops : int;
  total_faults : int;
  total_retries : int;
  total_failovers : int;
  total_read_repairs : int;
  total_breaker_opens : int;
  total_quorum_acks : int;
  total_partial_writes : int;
  failed : campaign_report list;
  seconds : float;
}

(* Geometry: 5 nodes, 3 replicas, roomy 16x16x64 disks (capacity planning,
   not GC pressure, bounds real nodes). *)
let nodes = 5
let replication = 3
let extent_count = 16

let fleet_config ~seed =
  {
    Fleet.nodes;
    replication;
    store =
      {
        S.test_config with
        S.seed = Int64.of_int (0xC4A05 + (seed * 9_176));
        disk = { Disk.extent_count; pages_per_extent = 16; page_size = 64 };
      };
  }

(* {2 The model} *)

type entry = { committed : string option; maybe : string option list }

let keys = Array.init 10 (fun i -> Printf.sprintf "s%02d" i)

let entry model key =
  match Hashtbl.find_opt model key with
  | Some e -> e
  | None -> { committed = None; maybe = [] }

let acked model key v = Hashtbl.replace model key { committed = v; maybe = [] }

let failed model key v =
  let e = entry model key in
  if not (List.mem v e.maybe) then Hashtbl.replace model key { e with maybe = v :: e.maybe }

(* Values a read of [key] may legitimately return. *)
let admissible model key v =
  let e = entry model key in
  (match v with None -> e.committed = None | Some _ -> v = e.committed) || List.mem v e.maybe

let pp_value fmt = function
  | None -> Format.pp_print_string fmt "none"
  | Some v -> Format.fprintf fmt "%S" v

let pp_admissible fmt e =
  Format.fprintf fmt "committed %a%s" pp_value e.committed
    (match e.maybe with
    | [] -> ""
    | m -> Printf.sprintf ", maybe {%s}" (String.concat ", " (List.map (function None -> "none" | Some v -> Printf.sprintf "%S" v) m)))

(* {2 Generation — all randomness baked into the ops} *)

let gen_value rng i = Printf.sprintf "v%d.%d" i (Util.Rng.int rng 1_000)

let gen_ops ~rng ~length =
  List.init length (fun i ->
      let key () = Util.Rng.pick rng keys in
      let node () = Util.Rng.int rng nodes in
      Util.Rng.weighted rng
        [
          (28, `Put);
          (8, `Put_many);
          (24, `Get);
          (6, `Delete);
          (6, `Arm);
          (4, `Disarm);
          (6, `Fail_extent);
          (6, `Crash);
          (3, `Destroy);
          (4, `Heal);
          (5, `Repair);
          (* Appended last: keeps the draw order of the classic alphabet
             for every op class above, perturbing campaigns as little as
             adding an op can. *)
          (5, `Scan);
        ]
      |> function
      | `Put -> Put { key = key (); value = gen_value rng i }
      | `Put_many ->
        let n = 2 + Util.Rng.int rng 3 in
        let ks = Array.copy keys in
        Util.Rng.shuffle rng ks;
        Put_many (List.init n (fun j -> (ks.(j), gen_value rng ((i * 10) + j))))
      | `Get -> Get { key = key () }
      | `Scan ->
        let bound () = if Util.Rng.chance rng 0.3 then None else Some (key ()) in
        let lo = bound () and hi = bound () in
        let lo, hi =
          match (lo, hi) with
          | Some l, Some h when String.compare l h > 0 -> (Some h, Some l)
          | _ -> (lo, hi)
        in
        Scan { lo; hi }
      | `Delete -> Delete { key = key () }
      | `Arm ->
        Arm_faults
          {
            node = node ();
            transient = 0.05 +. (float_of_int (Util.Rng.int rng 25) /. 100.);
            permanent = float_of_int (Util.Rng.int rng 4) /. 100.;
            seed = Util.Rng.int rng 1_000_000;
          }
      | `Disarm -> Disarm_faults { node = node () }
      | `Fail_extent ->
        Fail_extent
          {
            node = node ();
            extent = Util.Rng.int rng extent_count;
            permanent = Util.Rng.chance rng 0.25;
          }
      | `Crash -> Crash { node = node (); seed = Util.Rng.int rng 1_000_000 }
      | `Destroy -> Destroy { node = node () }
      | `Heal -> Heal { node = node (); seed = Util.Rng.int rng 1_000_000 }
      | `Repair -> Repair)

(* {2 Execution} *)

(* Destroying a node must not take out the last surviving copy of a
   committed value the model will demand back. A key is safe when [None]
   is admissible (a failed delete makes an empty fleet acceptable) or some
   non-victim replica currently holds an admissible value. *)
let safe_to_destroy fleet model ~node =
  Hashtbl.fold
    (fun key e safe ->
      safe
      &&
      match e.committed with
      | None -> true
      | Some _ ->
        List.mem None e.maybe
        || (not (List.mem node (Fleet.placement fleet key)))
        || List.exists
             (fun n ->
               n <> node
               &&
               match Fleet.peek fleet ~node:n ~key with
               | Ok (Some v) -> admissible model key (Some v)
               | Ok None | Error _ -> false)
             (Fleet.placement fleet key))
    model true

let apply ~trace fleet model violations idx op =
  let violate what = violations := { at = idx; what } :: !violations in
  (* The chaos side of the wire trace: fault arming and targeted extent
     failures happen at the disk layer, which the fleet cannot see, so
     the driver emits their markers itself. Crash/destroy/heal/repair
     markers come from the instrumented fleet. *)
  let mark ?node kind =
    match trace with
    | None -> ()
    | Some r -> Tracecheck.Trace.Recorder.mark r ~src:"chaos" ?node kind
  in
  match op with
  | Put { key; value } -> (
    match Fleet.put fleet ~key ~value with
    | Ok _ack -> acked model key (Some value)
    | Error _ -> failed model key (Some value))
  | Put_many ops -> (
    match Fleet.put_many fleet ops with
    | Ok () -> List.iter (fun (k, v) -> acked model k (Some v)) ops
    | Error _ -> List.iter (fun (k, v) -> failed model k (Some v)) ops)
  | Delete { key } -> (
    match Fleet.delete fleet ~key with
    | Ok () -> acked model key None
    | Error _ -> failed model key None)
  | Get { key } -> (
    match Fleet.get fleet ~key with
    | Ok v ->
      if not (admissible model key v) then
        violate
          (Format.asprintf "read %s = %a, admissible: %a" key pp_value v pp_admissible
             (entry model key))
    | Error _ -> () (* unavailability, not a safety violation *))
  | Scan { lo; hi } -> (
    match Fleet.scan fleet ?lo ?hi () with
    | Ok pairs ->
      (* Every model key in range is judged by what the scan said about it:
         a yielded value, or absence — both must be admissible. *)
      let in_range key =
        (match lo with None -> true | Some l -> String.compare l key <= 0)
        && match hi with None -> true | Some h -> String.compare key h <= 0
      in
      Array.iter
        (fun key ->
          if in_range key then begin
            let v = List.assoc_opt key pairs in
            if not (admissible model key v) then
              violate
                (Format.asprintf "scan %s = %a, admissible: %a" key pp_value v pp_admissible
                   (entry model key))
          end)
        keys
    | Error _ -> () (* unavailability, not a safety violation *))
  | Arm_faults { node; transient; permanent; seed } ->
    mark ~node Tracecheck.Trace.Fault_armed;
    Disk.arm_random_faults
      (Fleet.node_disk fleet ~node)
      ~rng:(Util.Rng.create (Int64.of_int seed))
      ~transient_prob:transient ~permanent_prob:permanent
  | Disarm_faults { node } ->
    mark ~node Tracecheck.Trace.Fault_cleared;
    Disk.disarm_random_faults (Fleet.node_disk fleet ~node)
  | Fail_extent { node; extent; permanent } ->
    mark ~node Tracecheck.Trace.Extent_failed;
    let disk = Fleet.node_disk fleet ~node in
    if permanent then Disk.fail_permanently disk ~extent else Disk.fail_once disk ~extent
  | Crash { node; seed } ->
    Fleet.crash_node fleet ~rng:(Util.Rng.create (Int64.of_int seed)) ~node
  | Destroy { node } ->
    if safe_to_destroy fleet model ~node then Fleet.destroy_node fleet ~node
  | Heal { node; seed } ->
    (* replace the broken hardware and reboot: heal the medium, lift the
       scheduler's extent quarantines (a reboot is the only thing that
       does), and re-close the breaker *)
    Disk.heal_all (Fleet.node_disk fleet ~node);
    Fleet.crash_node fleet ~rng:(Util.Rng.create (Int64.of_int seed)) ~node;
    Fleet.heal_node fleet ~node
  | Repair -> ignore (Fleet.repair fleet : (Fleet.repair_report, Fleet.error) result)

(* Final convergence phase: fix all hardware, then repair must drain the
   dirty set and every key must come back with an admissible value. *)
let check_convergence ~seed fleet model violations =
  let violate what = violations := { at = -1; what } :: !violations in
  for node = 0 to nodes - 1 do
    Disk.heal_all (Fleet.node_disk fleet ~node);
    Fleet.crash_node fleet ~rng:(Util.Rng.create (Int64.of_int ((seed * 31) + node))) ~node;
    Fleet.heal_node fleet ~node
  done;
  let rec drain n =
    match Fleet.repair fleet with
    | Error e -> violate (Format.asprintf "repair failed: %a" Fleet.pp_error e)
    | Ok r ->
      if Fleet.dirty_count fleet > 0 && n < 3 then drain (n + 1)
      else begin
        if r.Fleet.shards_failed > 0 then
          violate (Printf.sprintf "repair left %d replicas unhealed" r.Fleet.shards_failed);
        if Fleet.dirty_count fleet > 0 then
          violate
            (Printf.sprintf "dirty set not drained after %d repairs: {%s}" (n + 1)
               (String.concat ", " (Fleet.dirty_keys fleet)))
      end
  in
  drain 0;
  (* After convergence every node's LSM tree must still satisfy the
     composed per-level discipline: the campaign's crashes and relocations
     are not allowed to bend the structural invariants. *)
  for node = 0 to nodes - 1 do
    match S.level_invariants (Fleet.node_store fleet ~node) with
    | Ok () -> ()
    | Error msg -> violate (Printf.sprintf "node %d level invariant violated: %s" node msg)
  done;
  (* A full fleet scan must agree with the per-key reads: exactly the
     committed live keys, each carrying an admissible value. *)
  (match Fleet.scan fleet () with
  | Error e -> violate (Format.asprintf "fleet scan failed after convergence: %a" Fleet.pp_error e)
  | Ok pairs ->
    Array.iter
      (fun key ->
        let v = List.assoc_opt key pairs in
        if not (admissible model key v) then
          violate
            (Format.asprintf "converged scan %s = %a, admissible: %a" key pp_value v
               pp_admissible (entry model key)))
      keys);
  Array.iter
    (fun key ->
      let e = entry model key in
      match Fleet.get fleet ~key with
      | Error err ->
        if e.committed <> None || e.maybe <> [] then
          violate (Format.asprintf "%s unreadable after convergence: %a" key Fleet.pp_error err)
      | Ok v ->
        if not (admissible model key v) then
          violate
            (Format.asprintf "acknowledged write lost: %s = %a, admissible: %a" key pp_value v
               pp_admissible e)
        else if v <> None && Fleet.replica_count fleet ~key < replication then
          violate
            (Printf.sprintf "%s under-replicated after repair: %d of %d" key
               (Fleet.replica_count fleet ~key)
               replication))
    keys

let counter fleet name = Obs.counter_value (Fleet.obs fleet) name

(* Assumes the global fault toggles are already as the caller wants them
   ([run] disables everything up front, [check_teeth] arms #18): toggles
   may only change between sweeps, never from inside a campaign running on
   a worker domain. *)
let run_ops ?trace ~seed ops =
  let fleet = Fleet.create ?trace (fleet_config ~seed) in
  let model : (string, entry) Hashtbl.t = Hashtbl.create 16 in
  let violations = ref [] in
  List.iteri (apply ~trace fleet model violations) ops;
  check_convergence ~seed fleet model violations;
  let faults = ref 0 in
  for node = 0 to nodes - 1 do
    faults := !faults + Disk.injected_failures (Fleet.node_disk fleet ~node)
  done;
  (List.rev !violations, (fun name -> counter fleet name), !faults)

(* Budget for one campaign's wire trace: a campaign is a few hundred
   operations (scans resolve through point reads, the convergence phase
   re-reads every key), far under this — drops would turn the offline
   audit's verdict into [Truncated], so the budget errs roomy. *)
let trace_budget = 8 * 1024 * 1024

let gen ~length ~seed =
  let rng = Util.Rng.create (Int64.of_int ((seed * 2_654_435_761) + 97)) in
  gen_ops ~rng ~length

(* Replay [ops] with a fresh recorder attached and return its trace —
   deterministic, campaigns are sequential (the logical clock never sees
   two domains), so the same ops yield the same entries. *)
let trace_of ~seed ops =
  let recorder = Tracecheck.Trace.Recorder.create ~byte_budget:trace_budget () in
  let (_ : violation list * (string -> int) * int) = run_ops ~trace:recorder ~seed ops in
  Tracecheck.Trace.Recorder.entries recorder

(* Span-removal ddmin: repeatedly try dropping chunks of halving size, as
   long as the shrunk campaign still violates. Deterministic because every
   op carries its own seeds. *)
let minimize ~still_fails ops =
  let current = ref ops in
  let chunk = ref (max 1 (List.length ops / 2)) in
  let continue_ = ref true in
  while !continue_ do
    let i = ref 0 in
    while !i < List.length !current do
      let candidate =
        List.filteri (fun j _ -> j < !i || j >= !i + !chunk) !current
      in
      if List.length candidate < List.length !current && still_fails candidate then
        current := candidate
      else i := !i + !chunk
    done;
    if !chunk = 1 then continue_ := false else chunk := !chunk / 2
  done;
  !current

let campaign ?(capture = false) ~length ~seed () =
  let ops = gen ~length ~seed in
  let recorder =
    if capture then Some (Tracecheck.Trace.Recorder.create ~byte_budget:trace_budget ())
    else None
  in
  let violations, counter_of, faults = run_ops ?trace:recorder ~seed ops in
  let minimized =
    if violations = [] then []
    else
      minimize
        ~still_fails:(fun ops ->
          let vs, _, _ = run_ops ~seed ops in
          vs <> [])
        ops
  in
  (* A counterexample ships with its wire trace: the minimized
     reproducer replays deterministically, so its (small) trace is the
     artifact to read, not the full campaign's. *)
  let trace =
    if minimized <> [] then trace_of ~seed minimized
    else match recorder with Some r -> Tracecheck.Trace.Recorder.entries r | None -> []
  in
  {
    seed;
    ops = List.length ops;
    violations;
    minimized;
    trace;
    faults_injected = faults;
    retries = counter_of "fleet.retry";
    failovers = counter_of "fleet.get_failover";
    read_repairs = counter_of "fleet.read_repair";
    breaker_opens = counter_of "fleet.breaker_open";
    quorum_acks = counter_of "fleet.quorum_ack";
    partial_writes = counter_of "fleet.partial_write";
  }

let run ?(domains = 1) ?(campaigns = 200) ?(length = 40) ?(seed = 0) ?(capture = false) () =
  let t0 = Util.Wallclock.now_s () in
  Faults.disable_all ();
  (* Campaigns are seed-carrying and independent, so they shard across
     domains; segments accumulate reversed report lists and merge keeps
     them in descending seed order, so the final reverse restores the
     sequential ascending order byte for byte. A violating campaign
     minimizes inside its own task — deterministic, every op carries its
     seeds. *)
  let reports =
    List.rev
      (Par.sweep ~domains ~start:seed ~count:campaigns
         ~init:(fun () -> [])
         ~step:(fun acc s -> campaign ~capture ~length ~seed:s () :: acc)
         ~merge:(fun lo hi -> hi @ lo)
         ())
  in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  {
    campaigns;
    clean = List.length (List.filter (fun r -> r.violations = []) reports);
    total_ops = sum (fun r -> r.ops);
    total_faults = sum (fun r -> r.faults_injected);
    total_retries = sum (fun r -> r.retries);
    total_failovers = sum (fun r -> r.failovers);
    total_read_repairs = sum (fun r -> r.read_repairs);
    total_breaker_opens = sum (fun r -> r.breaker_opens);
    total_quorum_acks = sum (fun r -> r.quorum_acks);
    total_partial_writes = sum (fun r -> r.partial_writes);
    failed = List.filter (fun r -> r.violations <> []) reports;
    seconds = Util.Wallclock.now_s () -. t0;
  }

(* The campaign checker must itself have teeth: with #18 (quorum ack
   without durable flush) switched on, acknowledged writes sit in volatile
   staging and the final-phase reboots shred them — at least one campaign
   must catch the durability violation, or the checker is vacuous. *)
let check_teeth ?(domains = 1) ?(campaigns = 20) ?(length = 40) ?(seed = 0) () =
  Faults.disable_all ();
  (* #18 is armed before the sweep and stays constant throughout — workers
     only read the toggle. *)
  Faults.with_fault Faults.F18_quorum_ack_volatile (fun () ->
      Par.sweep ~domains ~start:seed ~count:campaigns
        ~init:(fun () -> 0)
        ~step:(fun violations s ->
          let rng = Util.Rng.create (Int64.of_int ((s * 2_654_435_761) + 97)) in
          let ops = gen_ops ~rng ~length in
          let vs, _, _ = run_ops ~seed:s ops in
          if vs <> [] then violations + 1 else violations)
        ~merge:( + ) ())

let print summary =
  Printf.printf
    "E13: chaos campaign — fault-tolerant request plane under randomized faults\n";
  Printf.printf "fleet: %d nodes, replication %d, write quorum majority\n\n" nodes replication;
  Printf.printf "%-44s %12d\n" "campaigns" summary.campaigns;
  Printf.printf "%-44s %12d\n" "clean (no durability violation)" summary.clean;
  Printf.printf "%-44s %12d\n" "operations applied" summary.total_ops;
  Printf.printf "%-44s %12d\n" "disk faults injected" summary.total_faults;
  Printf.printf "%-44s %12d\n" "transient retries (fleet.retry)" summary.total_retries;
  Printf.printf "%-44s %12d\n" "read failovers (fleet.get_failover)" summary.total_failovers;
  Printf.printf "%-44s %12d\n" "read-repairs (fleet.read_repair)" summary.total_read_repairs;
  Printf.printf "%-44s %12d\n" "breaker trips (fleet.breaker_open)" summary.total_breaker_opens;
  Printf.printf "%-44s %12d\n" "degraded quorum acks (fleet.quorum_ack)" summary.total_quorum_acks;
  Printf.printf "%-44s %12d\n" "partial writes (fleet.partial_write)" summary.total_partial_writes;
  Printf.printf "%-44s %11.1fs\n" "wall clock" summary.seconds;
  List.iter
    (fun r ->
      Printf.printf "\ncampaign seed %d: %d violation(s)\n" r.seed (List.length r.violations);
      List.iter (fun v -> Format.printf "  %a@." pp_violation v) r.violations;
      Printf.printf "  minimized reproducer (%d of %d ops):\n" (List.length r.minimized) r.ops;
      List.iteri (fun i op -> Format.printf "    %2d: %a@." i pp_op op) r.minimized;
      if r.trace <> [] then begin
        let n = List.length r.trace in
        let tail = 40 in
        Printf.printf "  wire trace of the reproducer (%s%d event(s)):\n"
          (if n > tail then Printf.sprintf "last %d of " tail else "")
          n;
        List.iteri
          (fun i e ->
            if i >= n - tail then Format.printf "    %a@." Tracecheck.Trace.pp_entry e)
          r.trace
      end)
    summary.failed
