(** Experiment E10 — component-level vs end-to-end checking (paper
    section 8.4):

    "We found it much easier to exercise corner case scenarios (especially
    fault scenarios) by writing tests that directly exercise internal
    component APIs, and engineers have found it easier to debug and fix
    failures ... by not having to trace them back through the entire
    implementation stack."

    For the chunk-store faults, measures sequences-to-detection (median
    over trials) with the component-level harness ({!Lfm.Chunk_harness})
    versus the end-to-end store harness, plus throughput of each. *)

type row = {
  fault : Faults.t;
  level : string;  (** "component" or "end-to-end" *)
  detected : int;
  trials : int;
  median_sequences : int option;
}

type report = {
  rows : row list;
  component_seqs_per_sec : float;
  store_seqs_per_sec : float;
  seconds : float;
}

(** [domains] shards both the component-level and end-to-end hunts over that
    many racing domains; the report is seed-for-seed identical to
    [domains = 1] (throughput measurement stays sequential). *)
val run : ?domains:int -> ?trials:int -> ?max_sequences:int -> ?seed:int -> unit -> report
val print : report -> unit
