(** Experiment E2/E5 — regenerate the paper's Figure 6: lines of code for
    implementation and validation artifacts, and the effort ratios of
    section 8.2 (validation ≈ 20 % of the implementation, reference models
    ≈ 1 %, against 3-10x for full verification).

    Counts non-blank lines of [.ml]/[.mli] files in the source tree,
    categorized the way the paper's table is. *)

type row = {
  category : string;
  files : int;
  lines : int;
}

type report = {
  rows : row list;
  total : int;
  implementation : int;
  models : int;
  validation : int;  (** all checker code: conformance, crash, concurrency *)
}

(** [run ~root ()] — [root] is the repository root (default ["."];
    the executables must run from the repo root, as [dune exec] does). *)
val run : ?root:string -> unit -> report

val print : report -> unit
