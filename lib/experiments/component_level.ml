type row = {
  fault : Faults.t;
  level : string;
  detected : int;
  trials : int;
  median_sequences : int option;
}

type report = {
  rows : row list;
  component_seqs_per_sec : float;
  store_seqs_per_sec : float;
  seconds : float;
}

let median hits =
  match List.sort compare hits with
  | [] -> None
  | l -> Some (List.nth l (List.length l / 2))

let component_row ~domains ~trials ~max_sequences ~seed fault =
  let hits = ref [] in
  for trial = 0 to trials - 1 do
    let found, seqs =
      Lfm.Chunk_harness.hunt ~domains fault ~max_sequences
        ~seed:(seed + (trial * (max_sequences + 1)))
    in
    if found then hits := seqs :: !hits
  done;
  {
    fault;
    level = "component";
    detected = List.length !hits;
    trials;
    median_sequences = median !hits;
  }

let store_row ~domains ~trials ~max_sequences ~seed fault =
  let hits = ref [] in
  for trial = 0 to trials - 1 do
    let r =
      Lfm.Detect.detect ~domains ~max_sequences ~minimize:false
        ~seed:(seed + (trial * (max_sequences + 1)))
        fault
    in
    if r.Lfm.Detect.found then hits := r.Lfm.Detect.sequences :: !hits
  done;
  {
    fault;
    level = "end-to-end";
    detected = List.length !hits;
    trials;
    median_sequences = median !hits;
  }

let faults = [ Faults.F1_reclaim_off_by_one; Faults.F5_reclaim_forgets_on_read_error ]

let run ?(domains = 1) ?(trials = 10) ?(max_sequences = 2_000) ?(seed = 64_000) () =
  let t0 = Util.Wallclock.now_s () in
  Faults.disable_all ();
  let rows =
    List.concat_map
      (fun fault ->
        [
          component_row ~domains ~trials ~max_sequences ~seed fault;
          store_row ~domains ~trials ~max_sequences ~seed fault;
        ])
      faults
  in
  (* Throughputs on the honest code. *)
  Faults.disable_all ();
  let t1 = Util.Wallclock.now_s () in
  for seed = 0 to 299 do
    ignore (Lfm.Chunk_harness.run ~seed ~length:40)
  done;
  let t2 = Util.Wallclock.now_s () in
  for i = 0 to 299 do
    ignore
      (Lfm.Harness.run_seed Lfm.Harness.default_config ~profile:Lfm.Gen.Crash_free
         ~bias:Lfm.Gen.default_bias ~length:40 ~seed:(700_000 + i))
  done;
  let t3 = Util.Wallclock.now_s () in
  {
    rows;
    component_seqs_per_sec = 300.0 /. (t2 -. t1);
    store_seqs_per_sec = 300.0 /. (t3 -. t2);
    seconds = Util.Wallclock.now_s () -. t0;
  }

let print report =
  Printf.printf "E10: component-level vs end-to-end checking (paper section 8.4)\n";
  Printf.printf "%-6s %-12s %-10s %s\n" "fault" "level" "detected" "median seqs-to-detect";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun r ->
      Printf.printf "#%-5d %-12s %d/%-8d %s\n" (Faults.number r.fault) r.level r.detected
        r.trials
        (match r.median_sequences with Some m -> string_of_int m | None -> "-"))
    report.rows;
  Printf.printf "%s\n" (String.make 56 '-');
  Printf.printf "throughput: component %.0f seqs/s, end-to-end %.0f seqs/s\n"
    report.component_seqs_per_sec report.store_seqs_per_sec;
  Printf.printf "(%.1f s total)\n" report.seconds
