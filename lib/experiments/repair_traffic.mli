(** Experiment E11 — why be crash consistent (paper section 2.2):

    "Recovering from a crash that loses an entire storage node's data
    creates large amounts of repair network traffic and IO load across the
    storage node fleet. Crash consistency also ensures that the storage
    node recovers to a safe state after a crash."

    Quantifies that motivation on the {!Fleet} layer: populate a replicated
    fleet, then compare the repair traffic after (a) a node {e crash}
    (dirty reboot; crash-consistent recovery keeps the durable shards) and
    (b) a node {e loss} (disk replacement; everything the node held must be
    re-replicated). *)

type arm = {
  label : string;
  shards_repaired : int;
  bytes_moved : int;
}

type report = {
  shards : int;
  shard_bytes : int;
  crash : arm;
  loss : arm;
  seconds : float;
}

val run : ?shards:int -> ?shard_bytes:int -> ?seed:int -> unit -> report
val print : report -> unit
