(** Experiment E1 — regenerate the paper's Figure 5: the catalog of issues
    prevented, with the checker that detects each.

    For every seeded defect the experiment runs the checker its property
    class prescribes (property-based conformance testing, a model-validation
    property, or stateless model checking) until detection or budget
    exhaustion, then minimizes property-based counterexamples. *)

type row = {
  fault : Faults.t;
  method_ : string;
  detected : bool;
  effort : string;  (** sequences/schedules until detection *)
  counterexample : string;  (** original → minimized summary, when applicable *)
}

type report = {
  rows : row list;
  seconds : float;
}

type budget = {
  pbt_sequences : int;  (** per-fault cap on random sequences *)
  pbt_length : int;
  f10_sequences : int;  (** issue #10 needs a much larger budget *)
  smc_schedules : int;
  minimize : bool;
  seed : int;
}

val default_budget : budget

(** A cut-down budget for smoke runs and benchmarks; issue #10 will
    usually be reported as not found at this size. *)
val quick_budget : budget

(** [run ?domains budget] — [domains] (default 1) shards each fault's
    property-based seed hunt across OCaml domains ({!Lfm.Detect.detect});
    faults themselves run one after another (the global fault toggle may
    only change between sweeps). The rows are byte-identical for every
    domain count; only [seconds] varies. *)
val run : ?domains:int -> budget -> report

val print : report -> unit
