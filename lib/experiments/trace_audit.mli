(** E16: wire-trace capture and offline linearizability audit
    ([bin/validate --trace-audit]).

    Every other checker in the stack replays a deterministic schedule;
    this experiment closes the remaining gap (OmniLink-style): record
    timestamped invocation/response events from runs that do {e not}
    replay, and validate the recorded history offline against the chaos
    campaign's per-key model lifted to interval histories
    ({!Tracecheck.Audit}). Three capture surfaces are audited:

    - {b chaos}: every campaign of the standard sweep re-runs with a
      recorder attached (faults armed by the ops, crash/heal markers
      included) and its trace must audit [Valid];
    - {b shared}: a racing multi-domain [Store.Shared] workload (puts,
      gets, deletes, two-key batches, narrow snapshot scans, mid-run
      flushes) recorded concurrently from all domains;
    - {b node}: an [Rpc.Node] request-plane workload, including a
      paginated scan driven through continuation tokens.

    {!teeth} proves the audit can say no: four forged histories — an
    acked write reading back absent, a stale read after an acked
    overwrite, a scan pairing values no single snapshot point allows,
    and a response timestamped before its invocation — must each be
    rejected, and with fault #18 (quorum ack without durable flush)
    armed, a put/crash-all/read-back scenario must be rejected in every
    campaign. *)

type teeth_case = {
  t_name : string;
  t_rejected : bool;
  t_verdict : Tracecheck.Audit.verdict;
  t_reason : string;  (** first rejection reason, [""] if none *)
}

type summary = {
  campaigns : int;
  chaos_valid : int;  (** campaigns whose trace audited [Valid] *)
  chaos_violations : int;  (** campaigns the chaos model itself flagged *)
  chaos_entries : int;
  chaos_ops : int;
  chaos_search_nodes : int;
  chaos_dropped : int;
  shared_domains : int;
  shared_report : Tracecheck.Audit.report;
  node_requests : int;
  node_report : Tracecheck.Audit.report;
  forged : teeth_case list;
  f18_campaigns : int;
  f18_detected : int;  (** audits rejecting the armed-#18 scenario *)
  seconds : float;
}

(** [run ?domains ?campaigns ?length ?seed ?shared_ops ()] — audit
    [campaigns] chaos campaigns of [length] ops (sharded over [domains],
    defaults 200/40/seed 0), one racing [Store.Shared] run with
    [domains] domains x [shared_ops] ops each (default 300), one
    [Rpc.Node] workload, the forged-history teeth and the armed-#18
    teeth. *)
val run :
  ?domains:int ->
  ?campaigns:int ->
  ?length:int ->
  ?seed:int ->
  ?shared_ops:int ->
  unit ->
  summary

(** Everything green: every chaos trace [Valid], the shared and node
    audits [Valid], every forged history rejected, and #18 detected in
    every campaign. *)
val ok : summary -> bool

val print : summary -> unit
