(* E17: foreground throughput under a racing maintenance domain — see
   maint_contention.mli for the experiment description. *)

type arm = {
  label : string;
  flush_chunk : int;
  fg_ops : int;
  fg_errors : int;
  seconds : float;
  ops_per_sec : float;
  maint : Store.Shared.Maint.stats option;
}

type result = {
  domains : int;
  ops_per_domain : int;
  keys : int;
  value_bytes : int;
  repeats : int;
  arms : arm list;
  conformance_ok : bool;
}

let key i = Printf.sprintf "k%04d" i

(* One timed arm: preload [keys] values into the base (flushed down, so
   foreground gets read through the stack lock, where flush contention
   bites), then race the foreground domains — a get-heavy mix with
   periodic [put_batch] bursts that spike the staging overlay, so a
   maintenance drain spans several chunks and the two flush protocols
   actually differ: coarse holds the stack write lock across the whole
   spike, narrowed releases it between chunks and lets the waiting
   foreground gets through. Foreground wall-clock only: the maintenance
   worker is started before the clock and stopped after it. *)
let run_arm ~label ~domains ~ops_per_domain ~keys ~value_bytes ~seed ~flush_chunk ~with_maint
    ~flush_every () =
  let store =
    Store.Shared.create ~shards:4 ~flush_chunk Store.Default.default_config
  in
  let value d i = String.make (max 1 value_bytes) 'x' ^ Printf.sprintf "-%d-%d" d i in
  let preload_errors = ref 0 in
  for i = 0 to keys - 1 do
    match Store.Shared.put store ~key:(key i) ~value:(value 0 i) with
    | Ok () -> ()
    | Error _ -> incr preload_errors
  done;
  (match Store.Shared.flush store with Ok _ -> () | Error _ -> incr preload_errors);
  let burst = max 8 (keys / 4) in
  let worker d =
    let rng = Util.Rng.of_int ((seed * 8191) + d) in
    let errors = ref 0 in
    for i = 0 to ops_per_domain - 1 do
      let k = key (Util.Rng.int rng keys) in
      let r = Util.Rng.int rng 100 in
      let failed =
        if r < 60 then Result.is_error (Store.Shared.get store ~key:k)
        else if r < 90 then Result.is_error (Store.Shared.put store ~key:k ~value:(value d i))
        else begin
          (* staging spike: one burst stages [burst] keys at once *)
          let off = Util.Rng.int rng keys in
          let entries =
            List.init burst (fun j -> (key ((off + j) mod keys), value d i))
          in
          Result.is_error (Store.Shared.put_batch store entries)
        end
      in
      if failed then incr errors;
      (* The pre-maintenance-plane discipline: the foreground itself must
         drain staging every so often, stalling on a whole-store flush —
         and periodically compact and reclaim-until-dry inline too, or
         the log fills up and the run dies of No_space. Frequent small
         flushes barely coalesce staged overwrites, so this arm also
         pushes far more bytes than a lazy maintenance drain: that write
         amplification is part of what the baseline costs. *)
      if flush_every > 0 && i mod flush_every = flush_every - 1 then begin
        if Result.is_error (Store.Shared.flush store) then incr errors;
        if (i / flush_every) mod 4 = 3 then begin
          if Result.is_error (Store.Shared.compact store) then incr errors;
          let rec drain_garbage budget =
            if budget > 0 then
              match Store.Shared.reclaim store with
              | Ok true -> drain_garbage (budget - 1)
              | Ok false -> ()
              | Error _ -> incr errors
          in
          drain_garbage 32
        end
      end
    done;
    !errors
  in
  let maint_worker =
    if with_maint then
      Some (Store.Shared.Maint.start ~compact_every:16 ~reclaim_every:64 store)
    else None
  in
  let t0 = Util.Wallclock.now_s () in
  let per_domain_errors = Conc.Domains.spawn_join ~domains worker in
  let seconds = Util.Wallclock.now_s () -. t0 in
  let maint = Option.map Store.Shared.Maint.stop maint_worker in
  let fg_ops = domains * ops_per_domain in
  {
    label;
    flush_chunk;
    fg_ops;
    fg_errors = !preload_errors + List.fold_left ( + ) 0 per_domain_errors;
    seconds;
    ops_per_sec = (if seconds > 0.0 then float_of_int fg_ops /. seconds else 0.0);
    maint;
  }

(* Byte-identity: ONE domain drives the same seeded put/get/delete
   sequence through a Store.Shared (with maintenance-plane calls
   interspersed: narrowed shard flushes, compactions, reclaims) and
   through a bare Store.Default; the final listings and every key's
   value must agree byte for byte — the maintenance plane is invisible
   to single-domain semantics. *)
let conformance ~ops ~seed () =
  let shared = Store.Shared.create ~shards:4 Store.Default.default_config in
  let plain = Store.Default.create Store.Default.default_config in
  let rng = Util.Rng.of_int (seed * 131) in
  let keys = 32 in
  let mismatches = ref 0 in
  for i = 0 to ops - 1 do
    let k = key (Util.Rng.int rng keys) in
    let v = Printf.sprintf "v%d" i in
    (match Util.Rng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 ->
      (match
         ( Store.Shared.put shared ~key:k ~value:v,
           Store.Default.put plain ~key:k ~value:v )
       with
      | Ok (), Ok _ -> ()
      | _ -> incr mismatches)
    | 5 | 6 -> (
      match (Store.Shared.delete shared ~key:k, Store.Default.delete plain ~key:k) with
      | Ok (), Ok _ -> ()
      | _ -> incr mismatches)
    | _ -> (
      match (Store.Shared.get shared ~key:k, Store.Default.get plain ~key:k) with
      | Ok a, Ok b when a = b -> ()
      | _ -> incr mismatches));
    (* Maintenance interspersed mid-sequence: must not change what any
       later op observes. *)
    if i mod 7 = 6 then
      ignore (Store.Shared.flush_shard shared (i mod 4) : (int, _) Stdlib.result);
    if i mod 13 = 12 then ignore (Store.Shared.compact shared : (unit, _) Stdlib.result);
    if i mod 17 = 16 then ignore (Store.Shared.reclaim shared : (bool, _) Stdlib.result)
  done;
  let lists_agree =
    match (Store.Shared.list shared, Store.Default.list plain) with
    | Ok a, Ok b -> a = b
    | _ -> false
  in
  let gets_agree =
    List.init keys key
    |> List.for_all (fun k ->
           match (Store.Shared.get shared ~key:k, Store.Default.get plain ~key:k) with
           | Ok a, Ok b -> a = b
           | _ -> false)
  in
  !mismatches = 0 && lists_agree && gets_agree

(* Median over [repeats] runs per arm, so one scheduler hiccup on a busy
   box does not decide the recorded number. *)
let median_arm runs =
  let sorted = List.sort (fun a b -> compare a.ops_per_sec b.ops_per_sec) runs in
  List.nth sorted (List.length sorted / 2)

(* (label, flush_chunk, racing maintenance domain, inline flush period) *)
let arms_spec =
  [
    (* no flushing at all: the raw foreground ceiling (staging grows) *)
    ("fg-only", 8, false, 0);
    (* the global-stack-lock baseline — the only way to run maintenance
       before this plane existed: each foreground domain periodically
       stalls on a whole-store flush with whole-drain stack holds *)
    ("inline-coarse", 0, false, 50);
    (* racing maintenance domain, whole-drain stack holds (PR-6 flush
       protocol driven from the new domain) *)
    ("maint-coarse", 0, true, 0);
    (* racing maintenance domain, narrowed stack critical sections — the
       full maintenance plane *)
    ("maint-narrow", 8, true, 0);
  ]

let run ?(domains = 4) ?(ops_per_domain = 2000) ?(keys = 256) ?(value_bytes = 256)
    ?(repeats = 3) ?(seed = 0) ?(conformance_ops = 120) () =
  let arms =
    List.map
      (fun (label, flush_chunk, with_maint, flush_every) ->
        median_arm
          (List.init (max 1 repeats) (fun r ->
               run_arm ~label ~domains ~ops_per_domain ~keys ~value_bytes ~seed:(seed + r)
                 ~flush_chunk ~with_maint ~flush_every ())))
      arms_spec
  in
  {
    domains;
    ops_per_domain;
    keys;
    value_bytes;
    repeats;
    arms;
    conformance_ok = conformance ~ops:conformance_ops ~seed ();
  }

let arm r label = List.find (fun a -> a.label = label) r.arms

(* The contention headline: foreground throughput with a racing narrowed
   flush must not fall below the global-stack-lock baseline, where the
   foreground stalls on its own whole-drain flushes. *)
let narrow_beats_baseline r =
  (arm r "maint-narrow").ops_per_sec >= (arm r "inline-coarse").ops_per_sec

(* The two racing arms compared: narrowed vs whole-drain stack holds.
   Only meaningful with real parallelism — on one core every chunk
   boundary is a forced context switch, so this ordering is asserted on
   multi-core hosts only. *)
let narrow_beats_coarse r =
  (arm r "maint-narrow").ops_per_sec >= (arm r "maint-coarse").ops_per_sec

let ok r =
  r.conformance_ok
  && List.for_all (fun a -> a.fg_ops > 0 && a.fg_errors = 0) r.arms
  && List.for_all
       (fun a ->
         match a.maint with
         | None -> true
         | Some s -> s.Store.Shared.Maint.errors = 0 && s.Store.Shared.Maint.flushes > 0)
       r.arms

let print r =
  Printf.printf "E17: %d foreground domains x %d ops, %d keys, %d-byte values (median of %d)\n"
    r.domains r.ops_per_domain r.keys r.value_bytes r.repeats;
  List.iter
    (fun a ->
      let maint =
        match a.maint with
        | None -> "no maintenance domain"
        | Some s ->
          Printf.sprintf "maint: %d flushes draining %d, %d compacts, %d errors"
            s.Store.Shared.Maint.flushes s.Store.Shared.Maint.drained
            s.Store.Shared.Maint.compacts s.Store.Shared.Maint.errors
      in
      Printf.printf "  %-12s (flush_chunk %2d): %8.0f fg ops/s in %.3fs, %d errors; %s\n"
        a.label a.flush_chunk a.ops_per_sec a.seconds a.fg_errors maint)
    r.arms;
  Printf.printf
    "  narrowed vs inline baseline: %.2fx; narrowed vs coarse racing: %.2fx; single-domain \
     byte-identity: %s\n"
    ((arm r "maint-narrow").ops_per_sec /. Float.max 1e-9 (arm r "inline-coarse").ops_per_sec)
    ((arm r "maint-narrow").ops_per_sec /. Float.max 1e-9 (arm r "maint-coarse").ops_per_sec)
    (if r.conformance_ok then "ok" else "FAILED")
