(** Racing-domain linearizability workload over ONE shared store — half
    of the [validate --shared] conformance gate (the other half is the
    {!Conc.Conc_shared} model check).

    N real domains issue a seeded mix of put/get/delete/batch/flush
    against a single {!Store.Shared}, timestamping every operation with
    a shared atomic clock. After the domains join, each key's history is
    checked for linearizability against the sequential register model
    ([string option], {!Linearize.find}); the staging layer is drained
    and the shared view must agree with the underlying sequential store
    on every key.

    The key universe is scaled with the op count so per-key histories
    stay short (linearizability checking is exponential per key), and
    put values are unique per (domain, op), which both strengthens the
    check (a stale read cannot masquerade as a fresh one) and prunes the
    search. *)

type op = Put of string | Get | Delete
type res = Acked | Got of string option

type key_report = { key : string; events : int; linearizable : bool }

type report = {
  domains : int;
  ops_per_domain : int;
  shards : int;
  keys : int;
  flushes : int;  (** mid-run flushes issued by racing domains *)
  errors : int;
  events : int;  (** per-key events checked, summed *)
  max_key_events : int;
  key_reports : key_report list;  (** keys whose history was non-empty *)
  final_drain_ok : bool;  (** post-join flush succeeded and staging is empty *)
  post_drain_consistent : bool;  (** Shared.get = underlying get for every key *)
  maint : Store.Shared.Maint.stats option;
      (** stats of the racing maintenance domain, when one was attached *)
}

val pp_report : Format.formatter -> report -> unit

(** Zero errors, a non-empty event set, every key linearizable, final
    drain clean, post-drain views consistent — and, when a maintenance
    domain raced the run, zero maintenance errors over a positive step
    count. *)
val ok : report -> bool

(** [run ?maint ()] — with [maint = true] (default false) a dedicated
    maintenance domain ({!Store.Shared.Maint}) races the foreground
    domains for the whole run: round-robin narrowed shard flushes plus
    periodic compactions and reclaims, all of which must be invisible to
    the per-key histories. *)
val run :
  ?domains:int ->
  ?ops_per_domain:int ->
  ?shards:int ->
  ?seed:int ->
  ?maint:bool ->
  unit ->
  report

(** [traced_maint ()] — the end-to-end cross-check: foreground domains
    run a put/get/delete/batch/scan mix against a store with a
    wire-trace recorder attached while the maintenance domain races
    (its flushes leave [Flush] markers in the trace); returns the
    offline {!Tracecheck.Audit} report over the captured history plus
    the maintenance stats. The audit must come back [Valid] — a
    narrowed flush racing real traffic leaves a linearizable wire
    history. *)
val traced_maint :
  ?domains:int ->
  ?ops_per_domain:int ->
  ?shards:int ->
  ?seed:int ->
  unit ->
  Tracecheck.Audit.report * Store.Shared.Maint.stats
