(** Racing-domain linearizability workload over ONE shared store — half
    of the [validate --shared] conformance gate (the other half is the
    {!Conc.Conc_shared} model check).

    N real domains issue a seeded mix of put/get/delete/batch/flush
    against a single {!Store.Shared}, timestamping every operation with
    a shared atomic clock. After the domains join, each key's history is
    checked for linearizability against the sequential register model
    ([string option], {!Linearize.find}); the staging layer is drained
    and the shared view must agree with the underlying sequential store
    on every key.

    The key universe is scaled with the op count so per-key histories
    stay short (linearizability checking is exponential per key), and
    put values are unique per (domain, op), which both strengthens the
    check (a stale read cannot masquerade as a fresh one) and prunes the
    search. *)

type op = Put of string | Get | Delete
type res = Acked | Got of string option

type key_report = { key : string; events : int; linearizable : bool }

type report = {
  domains : int;
  ops_per_domain : int;
  shards : int;
  keys : int;
  flushes : int;  (** mid-run flushes issued by racing domains *)
  errors : int;
  events : int;  (** per-key events checked, summed *)
  max_key_events : int;
  key_reports : key_report list;  (** keys whose history was non-empty *)
  final_drain_ok : bool;  (** post-join flush succeeded and staging is empty *)
  post_drain_consistent : bool;  (** Shared.get = underlying get for every key *)
}

val pp_report : Format.formatter -> report -> unit

(** Zero errors, a non-empty event set, every key linearizable, final
    drain clean, post-drain views consistent. *)
val ok : report -> bool

val run : ?domains:int -> ?ops_per_domain:int -> ?shards:int -> ?seed:int -> unit -> report
