(** Experiment E7 — argument-bias ablation (paper section 4.2).

    The generator biases Get/Delete keys toward previously-Put keys, value
    sizes toward page-size multiples, and (for issue #10 hunts) chunk UUIDs
    toward the magic-byte collision. The paper's methodology only keeps a
    bias with quantitative evidence; this experiment provides it, measuring
    detection with each bias switched on and off, plus the coverage proxy
    the key-reuse bias targets (the successful-Get rate). *)

type arm = {
  label : string;
  bias : Lfm.Gen.bias;
  fault : Faults.t;
  detected : int;  (** trials that found the defect *)
  trials : int;
  median_sequences : int option;  (** over the successful trials *)
}

type report = {
  arms : arm list;
  hit_rate_biased : float;  (** successful-Get rate with key-reuse bias *)
  hit_rate_unbiased : float;
  seconds : float;
}

(** [domains] shards each hunt over that many racing domains via
    {!Par.search}; the report is seed-for-seed identical to [domains = 1]. *)
val run : ?domains:int -> ?max_sequences:int -> ?trials:int -> ?seed:int -> unit -> report
val print : report -> unit
