type sample = {
  fault : Faults.t;
  seed : int;
  original : Lfm.Op.summary;
  minimized : Lfm.Op.summary;
  executions : int;
}

type report = {
  samples : sample list;
  seconds : float;
}

let default_faults =
  [
    Faults.F3_shutdown_skips_metadata;
    Faults.F4_disk_return_loses_shards;
    Faults.F7_soft_hard_pointer_mismatch;
    Faults.F9_model_crash_reconcile;
  ]

let run ?(domains = 1) ?(faults = default_faults) ?(samples_per_fault = 5) ?(seed = 7_000) () =
  let t0 = Util.Wallclock.now_s () in
  let samples = ref [] in
  List.iter
    (fun fault ->
      let collected = ref 0 in
      let s = ref seed in
      while !collected < samples_per_fault && !s < seed + 40_000 do
        let r = Lfm.Detect.detect ~domains ~max_sequences:2_000 ~minimize:true ~seed:!s fault in
        (match r.Lfm.Detect.original, r.Lfm.Detect.minimized, r.Lfm.Detect.min_stats with
        | Some original, Some minimized, Some stats when r.Lfm.Detect.found ->
          samples :=
            {
              fault;
              seed = !s;
              original;
              minimized;
              executions = stats.Lfm.Minimize.executions;
            }
            :: !samples;
          incr collected
        | _ -> ());
        (* jump far enough that hunts use fresh seeds *)
        s := !s + 2_001
      done)
    faults;
  { samples = List.rev !samples; seconds = Util.Wallclock.now_s () -. t0 }

let print report =
  Printf.printf
    "E3: test-case minimization (paper anecdote: 61 ops / 9 crashes / 226 KiB -> 6 ops / 1 \
     crash / 2 B)\n";
  Printf.printf "%-6s %-6s %-34s %-34s %s\n" "fault" "seed" "original" "minimized" "runs";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun s ->
      Printf.printf "#%-5d %-6d %-34s %-34s %d\n" (Faults.number s.fault) s.seed
        (Format.asprintf "%a" Lfm.Op.pp_summary s.original)
        (Format.asprintf "%a" Lfm.Op.pp_summary s.minimized)
        s.executions)
    report.samples;
  if report.samples <> [] then begin
    let avg f =
      List.fold_left (fun acc s -> acc + f s) 0 report.samples * 100
      / List.length report.samples
    in
    Printf.printf "%s\n" (String.make 100 '-');
    Printf.printf "mean reduction: ops %d%%, payload bytes %d%% (%.1f s)\n"
      (100 - (avg (fun s -> 100 * s.minimized.Lfm.Op.ops / max 1 s.original.Lfm.Op.ops) / 100))
      (100
      - (avg (fun s -> 100 * s.minimized.Lfm.Op.bytes / max 1 s.original.Lfm.Op.bytes) / 100))
      report.seconds
  end
