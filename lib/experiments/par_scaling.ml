(* E14: multicore scaling with a byte-identity check — see par_scaling.mli. *)

type row = {
  domains : int;
  seconds : float;
  speedup : float;
  identical : bool;
}

type report = {
  fig5 : row list;
  chaos : row list;
}

let all_identical r = List.for_all (fun row -> row.identical) (r.fig5 @ r.chaos)

(* Renders exclude wall clock (the one field allowed to vary) and Detect's
   [fired] diagnostic (exact atomic totals, but speculative evaluations
   reach it — see detect.mli); everything the experiments claim as a
   result is in here. *)

let render_fig5 (report : Fig5.report) =
  String.concat "\n"
    (List.map
       (fun (r : Fig5.row) ->
         Printf.sprintf "#%d|%s|%b|%s|%s" (Faults.number r.Fig5.fault) r.Fig5.method_
           r.Fig5.detected r.Fig5.effort r.Fig5.counterexample)
       report.Fig5.rows)

let render_chaos (s : Chaos.summary) =
  let failed =
    List.map
      (fun (r : Chaos.campaign_report) ->
        Printf.sprintf "seed %d: %s; minimized [%s]" r.Chaos.seed
          (String.concat "; "
             (List.map (Format.asprintf "%a" Chaos.pp_violation) r.Chaos.violations))
          (String.concat "; " (List.map (Format.asprintf "%a" Chaos.pp_op) r.Chaos.minimized)))
      s.Chaos.failed
  in
  Printf.sprintf "campaigns %d clean %d ops %d faults %d retries %d failovers %d rr %d bo %d qa %d pw %d\n%s"
    s.Chaos.campaigns s.Chaos.clean s.Chaos.total_ops s.Chaos.total_faults
    s.Chaos.total_retries s.Chaos.total_failovers s.Chaos.total_read_repairs
    s.Chaos.total_breaker_opens s.Chaos.total_quorum_acks s.Chaos.total_partial_writes
    (String.concat "\n" failed)

let sweep ~domain_counts run_at =
  let timed domains =
    let t0 = Util.Wallclock.now_s () in
    let rendered = run_at ~domains in
    (Util.Wallclock.now_s () -. t0, rendered)
  in
  match domain_counts with
  | [] -> []
  | base_domains :: _ ->
    let base_seconds, base_render = timed base_domains in
    List.map
      (fun domains ->
        let seconds, rendered =
          if domains = base_domains then (base_seconds, base_render) else timed domains
        in
        {
          domains;
          seconds;
          speedup = (if seconds > 0. then base_seconds /. seconds else 1.);
          identical = rendered = base_render;
        })
      domain_counts

let run ?(domain_counts = [ 1; 2; 4 ]) ?(budget = Fig5.quick_budget) ?(campaigns = 50) () =
  let fig5 =
    sweep ~domain_counts (fun ~domains -> render_fig5 (Fig5.run ~domains budget))
  in
  let chaos =
    sweep ~domain_counts (fun ~domains ->
        render_chaos (Chaos.run ~domains ~campaigns ~length:40 ~seed:0 ()))
  in
  { fig5; chaos }

let print report =
  Printf.printf "E14: multicore scaling of the validation engine (lib/par)\n";
  Printf.printf "host recommends %d domain(s)\n\n" (Par.default_domains ());
  let table name rows =
    Printf.printf "%s\n" name;
    Printf.printf "  %8s %10s %8s %s\n" "domains" "seconds" "speedup" "output";
    List.iter
      (fun r ->
        Printf.printf "  %8d %10.2f %7.2fx %s\n" r.domains r.seconds r.speedup
          (if r.identical then "byte-identical" else "DIVERGED"))
      rows
  in
  table "Fig. 5 detection catalog" report.fig5;
  table "chaos campaign batch" report.chaos;
  Printf.printf "\n%s\n"
    (if all_identical report then
       "all domain counts produced byte-identical results (wall clock aside)"
     else "DETERMINISM VIOLATION: some domain count changed the results")
