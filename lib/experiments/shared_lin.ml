type op = Put of string | Get | Delete
type res = Acked | Got of string option

type key_report = { key : string; events : int; linearizable : bool }

type report = {
  domains : int;
  ops_per_domain : int;
  shards : int;
  keys : int;
  flushes : int;  (** mid-run flushes issued by racing domains *)
  errors : int;
  events : int;  (** per-key events checked, summed *)
  max_key_events : int;
  key_reports : key_report list;  (** keys whose history was non-empty *)
  final_drain_ok : bool;  (** post-join flush succeeded and staging is empty *)
  post_drain_consistent : bool;  (** Shared.get = underlying get for every key *)
  maint : Store.Shared.Maint.stats option;
      (** stats of the racing maintenance domain, when one was attached *)
}

let pp_report fmt r =
  let bad = List.filter (fun k -> not k.linearizable) r.key_reports in
  Format.fprintf fmt
    "%d domains x %d ops over %d keys (%d shards): %d events (max %d/key), %d flushes, %d \
     errors; %d/%d keys linearizable; drain %s, post-drain reads %s"
    r.domains r.ops_per_domain r.keys r.shards r.events r.max_key_events r.flushes r.errors
    (List.length r.key_reports - List.length bad)
    (List.length r.key_reports)
    (if r.final_drain_ok then "ok" else "FAILED")
    (if r.post_drain_consistent then "consistent" else "INCONSISTENT");
  (match r.maint with
  | None -> ()
  | Some s ->
    Format.fprintf fmt "; maint domain: %d steps (%d flushes draining %d, %d compacts, %d \
                        reclaims, %d errors)"
      s.Store.Shared.Maint.steps s.Store.Shared.Maint.flushes s.Store.Shared.Maint.drained
      s.Store.Shared.Maint.compacts s.Store.Shared.Maint.reclaims s.Store.Shared.Maint.errors);
  List.iter (fun k -> Format.fprintf fmt "@.  NOT linearizable: %s (%d events)" k.key k.events) bad

let ok r =
  r.errors = 0 && r.events > 0 && r.final_drain_ok && r.post_drain_consistent
  && List.for_all (fun k -> k.linearizable) r.key_reports
  && match r.maint with
     | None -> true
     | Some s -> s.Store.Shared.Maint.errors = 0 && s.Store.Shared.Maint.steps > 0

(* The sequential reference model of one key: a register holding
   [string option]. *)
let apply s = function
  | Put v -> (Some v, Acked)
  | Delete -> (None, Acked)
  | Get -> (s, Got s)

let run ?(domains = 4) ?(ops_per_domain = 64) ?(shards = 4) ?(seed = 0) ?(maint = false) () =
  (* default_config: real geometry with auto maintenance — the workload
     probes races, not extent exhaustion (test_config's tiny geometry
     runs out of space under hundreds of racing ops). *)
  let store = Store.Shared.create ~shards Store.Default.default_config in
  (* Scale the key universe so expected per-key history stays small:
     linearizability checking is exponential in events per key. *)
  let total = domains * ops_per_domain in
  let keys = max 4 (total / 8) in
  let key i = Printf.sprintf "k%02d" i in
  let clock = Conc.Domains.Clock.create () in
  let tick () = Conc.Domains.Clock.tick clock in
  let worker d =
    let rng = Util.Rng.of_int ((seed * 7919) + d) in
    let events = ref [] in
    let errors = ref 0 in
    let flushes = ref 0 in
    let record k op f =
      let invoked = tick () in
      let result = f () in
      let returned = tick () in
      (match result with
      | Ok result ->
        events := (k, { Linearize.thread = d; op; result; invoked; returned }) :: !events
      | Error _ -> incr errors)
    in
    for i = 0 to ops_per_domain - 1 do
      let k = key (Util.Rng.int rng keys) in
      let v = Printf.sprintf "d%d-%d" d i in
      match Util.Rng.int rng 100 with
      | r when r < 45 ->
        record k Get (fun () ->
            Result.map (fun g -> Got g) (Store.Shared.get store ~key:k))
      | r when r < 72 ->
        record k (Put v) (fun () ->
            Result.map (fun () -> Acked) (Store.Shared.put store ~key:k ~value:v))
      | r when r < 82 ->
        record k Delete (fun () ->
            Result.map (fun () -> Acked) (Store.Shared.delete store ~key:k))
      | r when r < 92 ->
        (* batch: two keys, one linearization interval each *)
        let k2 = key (Util.Rng.int rng keys) in
        let v2 = v ^ "b" in
        let invoked = tick () in
        let result = Store.Shared.put_batch store [ (k, v); (k2, v2) ] in
        let returned = tick () in
        (match result with
        | Ok _ when k2 = k ->
          (* both ops land on one key under one lock hold: last wins,
             observable as a single Put of the final value *)
          events :=
            (k, { Linearize.thread = d; op = Put v2; result = Acked; invoked; returned })
            :: !events
        | Ok _ ->
          events :=
            (k2, { Linearize.thread = d; op = Put v2; result = Acked; invoked; returned })
            :: (k, { Linearize.thread = d; op = Put v; result = Acked; invoked; returned })
            :: !events
        | Error _ -> incr errors)
      | _ -> (
        incr flushes;
        match Store.Shared.flush store with Ok _ -> () | Error _ -> incr errors)
    done;
    (!events, !errors, !flushes)
  in
  (* The maintenance domain races the whole foreground phase: round-robin
     narrowed shard flushes plus periodic compactions and reclaims, each
     of which must be invisible to the per-key histories checked below. *)
  let maint_worker =
    if maint then Some (Store.Shared.Maint.start ~compact_every:6 ~reclaim_every:9 store)
    else None
  in
  let results = Conc.Domains.spawn_join ~domains worker in
  (* Give a not-yet-scheduled maintenance domain (1-core host, short
     foreground phase) a bounded chance to step before we stop it: stage
     one sentinel put and spin until the worker drains it. The sentinel
     key is outside the checked key universe, so histories are
     untouched, and the post-join flush below covers the bound running
     out. *)
  (match maint_worker with
  | None -> ()
  | Some _ ->
    ignore (Store.Shared.put store ~key:"maint-wakeup" ~value:"x" : (unit, _) result);
    let rec wait n =
      if Store.Shared.staged_count store > 0 && n > 0 then begin
        Conc.Domains.relax ();
        wait (n - 1)
      end
    in
    wait 50_000_000);
  let maint_stats = Option.map Store.Shared.Maint.stop maint_worker in
  let errors = List.fold_left (fun acc (_, e, _) -> acc + e) 0 results in
  let flushes = List.fold_left (fun acc (_, _, f) -> acc + f) 0 results in
  (* Post-join: drain staging, then the shared view and the underlying
     sequential store must agree on every key. *)
  let final_drain_ok =
    match Store.Shared.flush store with
    | Ok _ -> Store.Shared.staged_count store = 0
    | Error _ -> false
  in
  let post_drain_consistent =
    List.init keys key
    |> List.for_all (fun k ->
           match (Store.Shared.get store ~key:k, Store.Default.get (Store.Shared.store store) ~key:k) with
           | Ok a, Ok b -> a = b
           | _ -> false)
  in
  let by_key = Hashtbl.create keys in
  List.iter
    (fun (evs, _, _) ->
      List.iter
        (fun (k, ev) ->
          Hashtbl.replace by_key k (ev :: (Option.value (Hashtbl.find_opt by_key k) ~default:[])))
        evs)
    results;
  let key_reports =
    Util.Tbl.fold_sorted
      (fun k evs acc ->
        let history = List.sort (fun a b -> compare a.Linearize.invoked b.Linearize.invoked) evs in
        let linearizable =
          Option.is_some (Linearize.find ~init:None ~apply ~equal_res:( = ) history)
        in
        { key = k; events = List.length history; linearizable } :: acc)
      by_key []
    |> List.sort (fun a b -> compare a.key b.key)
  in
  {
    domains;
    ops_per_domain;
    shards;
    keys;
    flushes;
    errors;
    events = List.fold_left (fun acc (k : key_report) -> acc + k.events) 0 key_reports;
    max_key_events = List.fold_left (fun acc (k : key_report) -> max acc k.events) 0 key_reports;
    key_reports;
    final_drain_ok;
    post_drain_consistent;
    maint = maint_stats;
  }

(* {2 Traced maintenance-racing run}

   Same shape of foreground workload, but with a wire-trace recorder
   attached and the maintenance domain always on: every foreground op is
   recorded as an invocation/response interval and every maintenance
   flush leaves a [Flush] marker, then the whole trace is audited
   offline by Tracecheck — the end-to-end cross-check that a narrowed
   flush racing real traffic leaves a linearizable wire history. *)
let traced_maint ?(domains = 3) ?(ops_per_domain = 48) ?(shards = 4) ?(seed = 0) () =
  let recorder = Tracecheck.Trace.Recorder.create ~byte_budget:(32 * 1024 * 1024) () in
  let store = Store.Shared.create ~shards ~trace:recorder Store.Default.default_config in
  let total = domains * ops_per_domain in
  let nkeys = max 4 (total / 40) in
  let key i = Printf.sprintf "k%02d" i in
  let worker d =
    let rng = Util.Rng.of_int ((seed * 6007) + d) in
    for i = 0 to ops_per_domain - 1 do
      let k = key (Util.Rng.int rng nkeys) in
      let v = Printf.sprintf "d%d-%d" d i in
      match Util.Rng.int rng 100 with
      | r when r < 45 -> ignore (Store.Shared.get store ~key:k : (string option, _) result)
      | r when r < 75 -> ignore (Store.Shared.put store ~key:k ~value:v : (unit, _) result)
      | r when r < 85 -> ignore (Store.Shared.delete store ~key:k : (unit, _) result)
      | r when r < 93 ->
        let k2 = key (Util.Rng.int rng nkeys) in
        ignore
          (Store.Shared.put_batch store [ (k, v); (k2, v ^ "b") ]
            : (Store.Shared.batch_result, _) result)
      | _ ->
        let j = Util.Rng.int rng nkeys in
        let lo = key j and hi = key (min (nkeys - 1) (j + 2)) in
        ignore (Store.Shared.scan store ~lo ~hi () : ((string * string) list, _) result)
    done
  in
  let maint_worker = Store.Shared.Maint.start ~compact_every:5 ~reclaim_every:8 store in
  let (_ : unit list) = Conc.Domains.spawn_join ~domains worker in
  (* On a loaded (or 1-core) host the maintenance domain may not have been
     scheduled yet when the foreground joins. Stage a little more work and
     wait — bounded — until the worker demonstrably drains it, so the trace
     always carries maintenance flush markers and the stats show steps. *)
  List.iter
    (fun i ->
      ignore (Store.Shared.put store ~key:(key i) ~value:"post-join" : (unit, _) result))
    (List.init (min nkeys shards) (fun i -> i));
  let rec wait n =
    if Store.Shared.staged_count store > 0 && n > 0 then begin
      Conc.Domains.relax ();
      wait (n - 1)
    end
  in
  wait 50_000_000;
  let stats = Store.Shared.Maint.stop maint_worker in
  (Tracecheck.Audit.audit recorder, stats)
