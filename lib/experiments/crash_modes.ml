type mode = Coarse | Block_sampled | Block_exhaustive

let mode_name = function
  | Coarse -> "coarse"
  | Block_sampled -> "block-sampled"
  | Block_exhaustive -> "block-exhaustive"

type detection = {
  fault : Faults.t;
  mode : mode;
  detected : bool;
  sequences : int;
}

type report = {
  detections : detection list;
  throughput : (mode * float) list;
  exhaustive_states : int;
  seconds : float;
}

let config = Lfm.Harness.default_config

(* Rewrite the reboot operations of a generated sequence to the mode's
   crash-state granularity. *)
let transform mode ops =
  List.map
    (fun op ->
      match op, mode with
      | Lfm.Op.DirtyReboot r, Coarse ->
        Lfm.Op.DirtyReboot
          {
            r with
            Lfm.Op.split_pages = false;
            persist_probability = (if r.Lfm.Op.persist_probability < 0.5 then 0.0 else 1.0);
          }
      | Lfm.Op.DirtyReboot r, (Block_sampled | Block_exhaustive) ->
        Lfm.Op.DirtyReboot { r with Lfm.Op.split_pages = true }
      | _ -> op)
    ops

let config_for mode acc =
  match mode with
  | Coarse | Block_sampled -> config
  | Block_exhaustive ->
    {
      config with
      Lfm.Harness.pre_crash_hook = Some (Lfm.Crash_enum.hook ~max_states:2_000 ~acc);
    }

let empty_enum_stats =
  { Lfm.Crash_enum.states = 0; truncated = false; violations = 0; first_violation = None }

let sequence ~seed ~length =
  let rng = Util.Rng.create (Int64.of_int seed) in
  Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Crashing
    ~page_size:config.Lfm.Harness.store_config.Store.Default.disk.Disk.page_size
    ~extent_count:config.Lfm.Harness.store_config.Store.Default.disk.Disk.extent_count
    ~length

(* Sharded over a Par.search when [domains > 1]: each task builds its
   own crash-enumeration accumulator, toggles stay hoisted, and the
   detection report is identical to the sequential hunt. *)
let hunt ~domains mode fault ~max_sequences ~seed =
  Faults.disable_all ();
  Faults.enable fault;
  Fun.protect
    ~finally:(fun () -> Faults.disable fault)
    (fun () ->
      let results =
        Par.search ~domains ~start:0 ~count:max_sequences ~stop:Fun.id (fun i ->
            let acc = ref empty_enum_stats in
            let ops = transform mode (sequence ~seed:(seed + i) ~length:60) in
            match Lfm.Harness.run (config_for mode acc) ops with
            | Lfm.Harness.Failed _ -> true
            | Lfm.Harness.Passed -> false)
      in
      if List.exists Fun.id results then
        { fault; mode; detected = true; sequences = List.length results }
      else { fault; mode; detected = false; sequences = max_sequences })

let throughput mode ~sequences ~seed =
  Faults.disable_all ();
  let acc = ref empty_enum_stats in
  let cfg = config_for mode acc in
  let t0 = Util.Wallclock.now_s () in
  for i = 0 to sequences - 1 do
    let ops = transform mode (sequence ~seed:(seed + i) ~length:60) in
    ignore (Lfm.Harness.run cfg ops)
  done;
  (float_of_int sequences /. (Util.Wallclock.now_s () -. t0), !acc.Lfm.Crash_enum.states)

let default_faults =
  [
    Faults.F3_shutdown_skips_metadata;
    Faults.F6_superblock_ownership_dep;
    Faults.F7_soft_hard_pointer_mismatch;
    Faults.F8_missing_pointer_dep;
    Faults.F9_model_crash_reconcile;
  ]

let run ?(domains = 1) ?(faults = default_faults) ?(max_sequences = 3_000)
    ?(throughput_sequences = 400) ?(seed = 1234) () =
  let t0 = Util.Wallclock.now_s () in
  let detections =
    List.concat_map
      (fun fault ->
        [
          hunt ~domains Coarse fault ~max_sequences ~seed;
          hunt ~domains Block_sampled fault ~max_sequences ~seed;
          (* exhaustive mode is orders of magnitude slower: cap its budget *)
          hunt ~domains Block_exhaustive fault ~max_sequences:(min 200 max_sequences) ~seed;
        ])
      faults
  in
  let coarse, _ = throughput Coarse ~sequences:throughput_sequences ~seed in
  let sampled, _ = throughput Block_sampled ~sequences:throughput_sequences ~seed in
  let exhaustive, exhaustive_states =
    throughput Block_exhaustive ~sequences:(max 10 (throughput_sequences / 10)) ~seed
  in
  {
    detections;
    throughput = [ (Coarse, coarse); (Block_sampled, sampled); (Block_exhaustive, exhaustive) ];
    exhaustive_states;
    seconds = Util.Wallclock.now_s () -. t0;
  }

let print report =
  Printf.printf "E4: coarse vs block-level crash states (paper section 5)\n";
  Printf.printf "%-6s %-12s %-10s %s\n" "fault" "mode" "detected" "sequences";
  Printf.printf "%s\n" (String.make 48 '-');
  List.iter
    (fun d ->
      Printf.printf "#%-5d %-12s %-10s %d\n" (Faults.number d.fault) (mode_name d.mode)
        (if d.detected then "yes" else "no")
        d.sequences)
    report.detections;
  Printf.printf "%s\n" (String.make 48 '-');
  (match report.throughput with
  | [ (_, coarse); (_, sampled); (_, exhaustive) ] ->
    Printf.printf
      "throughput: coarse %.0f seqs/s, block-sampled %.0f seqs/s, block-exhaustive %.1f \
       seqs/s (%.0fx slower; %d crash states enumerated)\n"
      coarse sampled exhaustive (sampled /. exhaustive) report.exhaustive_states
  | _ -> ());
  Printf.printf "(%.1f s total)\n" report.seconds
