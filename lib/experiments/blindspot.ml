type arm = {
  label : string;
  cache_pages : int;
  detected : bool;
  sequences : int;
  cache_misses : int;
  cache_hits : int;
  blind_spots : string list;
}

type report = {
  arms : arm list;
  seconds : float;
}

(* The coverage points this workload is expected to reach; [cache.miss]
   going dark is the section 8.3 blind spot. *)
let expected_coverage = [ "cache.hit"; "cache.miss"; "index.get.run"; "reclaim.evacuated" ]

(* The section 8.3 scenario concerns steady-state request traffic, so the
   workload keeps the store in service (no remove/return, whose recovery
   would empty the cache and force misses regardless of its size). *)
let strip_service_ops ops =
  List.map
    (fun op ->
      match op with
      | Lfm.Op.RemoveFromService | Lfm.Op.ReturnToService -> Lfm.Op.List
      | _ -> op)
    ops

let run_arm ~label ~cache_pages ~max_sequences ~seed =
  let store_config =
    {
      Store.Default.test_config with
      Store.Default.cache_pages;
      cache_write_allocate = true;
    }
  in
  let config = { Lfm.Harness.default_config with Lfm.Harness.store_config } in
  Faults.disable_all ();
  Faults.enable Faults.F17_cache_miss_path;
  Util.Coverage.reset ();
  Fun.protect
    ~finally:(fun () -> Faults.disable_all ())
    (fun () ->
      let page_size = store_config.Store.Default.disk.Disk.page_size in
      let extent_count = store_config.Store.Default.disk.Disk.extent_count in
      let rec hunt i =
        if i >= max_sequences then (false, max_sequences)
        else begin
          let rng = Util.Rng.create (Int64.of_int (seed + i)) in
          let ops =
            strip_service_ops
              (Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Crash_free
                 ~page_size ~extent_count ~length:60)
          in
          match Lfm.Harness.run config ops with
          | Lfm.Harness.Failed _ -> (true, i + 1)
          | Lfm.Harness.Passed -> hunt (i + 1)
        end
      in
      let detected, sequences = hunt 0 in
      {
        label;
        cache_pages;
        detected;
        sequences;
        cache_misses = Util.Coverage.count "cache.miss";
        cache_hits = Util.Coverage.count "cache.hit";
        blind_spots = Util.Coverage.blind_spots ~expected:expected_coverage ();
      })

let run ?(max_sequences = 600) ?(seed = 77_000) () =
  let t0 = Util.Wallclock.now_s () in
  let arms =
    [
      run_arm ~label:"oversized cache (1024 pages)" ~cache_pages:1024 ~max_sequences ~seed;
      run_arm ~label:"right-sized cache (8 pages)" ~cache_pages:8 ~max_sequences ~seed;
    ]
  in
  { arms; seconds = Util.Wallclock.now_s () -. t0 }

let print report =
  Printf.printf "E9: the missed cache-miss bug and coverage metrics (paper section 8.3)\n";
  Printf.printf "%-30s %-10s %-10s %-12s %-12s %s\n" "configuration" "detected" "sequences"
    "cache hits" "cache misses" "coverage blind spots";
  Printf.printf "%s\n" (String.make 100 '-');
  List.iter
    (fun a ->
      Printf.printf "%-30s %-10s %-10d %-12d %-12d %s\n" a.label
        (if a.detected then "yes" else "NO")
        a.sequences a.cache_hits a.cache_misses
        (match a.blind_spots with [] -> "-" | l -> String.concat ", " l))
    report.arms;
  Printf.printf "%s\n" (String.make 100 '-');
  Printf.printf
    "The defect lives on the cache-miss path; the oversized configuration never reaches it,\n\
     and the coverage report points at the blind spot. (%.1f s)\n"
    report.seconds
