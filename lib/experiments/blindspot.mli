(** Experiment E9 — the missed bug and coverage metrics (paper section 8.3):

    "That issue involved an earlier code change that had added a new cache
    to a ShardStore component. Our existing property-based tests had
    trouble reaching the cache-miss code path in this change because the
    cache size was configured to be very large in all tests. The new bug
    was in a change to that cache-miss path, and so was not reached by the
    property-based tests; after reducing the cache size, the tests
    automatically found the issue. This missed bug was one motivation for
    our work on coverage metrics."

    Reproduction: defect #17 corrupts pages on the buffer cache's miss
    path. With a write-allocating cache sized far beyond the working set,
    conformance testing never reaches that path — and the coverage report
    says so ([cache.miss] = 0). Shrinking the cache makes the same tests
    find the bug immediately. *)

type arm = {
  label : string;
  cache_pages : int;
  detected : bool;
  sequences : int;  (** to detection, or the budget *)
  cache_misses : int;  (** coverage counter over the whole arm *)
  cache_hits : int;
  blind_spots : string list;  (** expected-but-unreached coverage points *)
}

type report = {
  arms : arm list;
  seconds : float;
}

val run : ?max_sequences:int -> ?seed:int -> unit -> report
val print : report -> unit
