(** Experiment E3 — the paper's minimization anecdote (section 4.3): "the
    first random sequence that failed had 61 operations, including 9
    crashes and 14 writes totalling 226 KiB; the final automatically
    minimized sequence had 6 operations, including 1 crash and 2 writes
    totalling 2 B".

    Collects several counterexamples per fault (different seeds), minimizes
    each, and reports the raw vs minimized distributions. *)

type sample = {
  fault : Faults.t;
  seed : int;
  original : Lfm.Op.summary;
  minimized : Lfm.Op.summary;
  executions : int;  (** test runs spent minimizing *)
}

type report = {
  samples : sample list;
  seconds : float;
}

(** [domains] shards each detection hunt over that many racing domains
    (minimization itself stays sequential); the samples are seed-for-seed
    identical to [domains = 1]. *)
val run :
  ?domains:int -> ?faults:Faults.t list -> ?samples_per_fault:int -> ?seed:int -> unit ->
  report
val print : report -> unit
