type arm = {
  label : string;
  bias : Lfm.Gen.bias;
  fault : Faults.t;
  detected : int;
  trials : int;
  median_sequences : int option;
}

type report = {
  arms : arm list;
  hit_rate_biased : float;
  hit_rate_unbiased : float;
  seconds : float;
}

let config = Lfm.Harness.default_config

(* A detection hunt with an explicit bias (bypassing Detect's per-fault
   tuning, which is the very thing being ablated). Sharded over a
   Par.search when [domains > 1] — fault toggles stay hoisted outside
   the parallel section and the result is seed-for-seed identical. *)
let hunt ~domains ~bias ~profile ~max_sequences ~seed fault =
  Faults.disable_all ();
  Faults.enable fault;
  Fun.protect
    ~finally:(fun () -> Faults.disable fault)
    (fun () ->
      let config = { config with Lfm.Harness.uuid_bias = bias.Lfm.Gen.uuid_magic } in
      let results =
        Par.search ~domains ~start:0 ~count:max_sequences ~stop:Fun.id (fun i ->
            match Lfm.Harness.run_seed config ~profile ~bias ~length:60 ~seed:(seed + i) with
            | _, Lfm.Harness.Failed _ -> true
            | _, Lfm.Harness.Passed -> false)
      in
      if List.exists Fun.id results then (true, List.length results)
      else (false, max_sequences))

(* Coverage proxy: how often does a generated Get hit a previously-Put
   key? Without the bias the successful-Get path is barely exercised. *)
let get_hit_rate bias ~seed =
  let rng = Util.Rng.create (Int64.of_int seed) in
  let hits = ref 0 and gets = ref 0 in
  for _ = 1 to 50 do
    let ops =
      Lfm.Gen.sequence ~rng ~bias ~profile:Lfm.Gen.Crash_free ~page_size:64 ~extent_count:12
        ~length:60
    in
    let put = Hashtbl.create 16 in
    List.iter
      (fun op ->
        match op with
        | Lfm.Op.Put (k, _) -> Hashtbl.replace put k ()
        | Lfm.Op.Get k ->
          incr gets;
          if Hashtbl.mem put k then incr hits
        | _ -> ())
      ops
  done;
  float_of_int !hits /. float_of_int (max 1 !gets)

let run ?(domains = 1) ?(max_sequences = 4_000) ?(trials = 8) ?(seed = 90_000) () =
  let t0 = Util.Wallclock.now_s () in
  let mk label bias profile fault =
    let hits = ref [] in
    for trial = 0 to trials - 1 do
      let detected, sequences =
        hunt ~domains ~bias ~profile ~max_sequences
          ~seed:(seed + (trial * (max_sequences + 1)))
          fault
      in
      if detected then hits := sequences :: !hits
    done;
    let hits = List.sort compare !hits in
    {
      label;
      bias;
      fault;
      detected = List.length hits;
      trials;
      median_sequences =
        (match hits with [] -> None | _ -> Some (List.nth hits (List.length hits / 2)));
    }
  in
  let page_on = { Lfm.Gen.default_bias with Lfm.Gen.page_size_values = 0.9 } in
  let page_off = { Lfm.Gen.default_bias with Lfm.Gen.page_size_values = 0.0 } in
  let uuid_on = { Lfm.Gen.default_bias with Lfm.Gen.uuid_magic = 0.5; page_size_values = 0.9 } in
  let uuid_off = { Lfm.Gen.default_bias with Lfm.Gen.uuid_magic = 0.0; page_size_values = 0.9 } in
  let arms =
    [
      mk "page-size bias ON " page_on Lfm.Gen.Crash_free Faults.F1_reclaim_off_by_one;
      mk "page-size bias OFF" page_off Lfm.Gen.Crash_free Faults.F1_reclaim_off_by_one;
      mk "uuid bias ON      " uuid_on Lfm.Gen.Crashing Faults.F10_uuid_magic_collision;
      mk "uuid bias OFF     " uuid_off Lfm.Gen.Crashing Faults.F10_uuid_magic_collision;
    ]
  in
  {
    arms;
    hit_rate_biased = get_hit_rate Lfm.Gen.default_bias ~seed;
    hit_rate_unbiased = get_hit_rate Lfm.Gen.unbiased ~seed;
    seconds = Util.Wallclock.now_s () -. t0;
  }

let print report =
  Printf.printf "E7: argument-bias ablation (paper section 4.2)\n";
  Printf.printf "%-20s %-6s %-10s %s\n" "arm" "fault" "detected" "median seqs-to-detect";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun a ->
      Printf.printf "%-20s #%-5d %d/%-8d %s\n" a.label (Faults.number a.fault) a.detected
        a.trials
        (match a.median_sequences with Some m -> string_of_int m | None -> "-"))
    report.arms;
  Printf.printf "%s\n" (String.make 52 '-');
  Printf.printf "successful-Get coverage: %.0f%% with key-reuse bias, %.0f%% without\n"
    (100.0 *. report.hit_rate_biased)
    (100.0 *. report.hit_rate_unbiased);
  Printf.printf "(%.1f s total)\n" report.seconds
