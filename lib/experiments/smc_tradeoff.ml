type strategy_result = {
  strategy : string;
  fault : Faults.t;
  detected : int;
  trials : int;
  median_schedules : int option;
  schedules_per_sec : float;
}

type verification = {
  fault : Faults.t;
  schedules : int;
  exhausted : bool;
  seconds : float;
}

type report = {
  results : strategy_result list;
  verifications : verification list;
  seconds : float;
}

let strategies ~seed ~budget =
  [
    ("DFS", fun _trial -> Smc.Dfs { max_schedules = budget });
    ("Random", fun trial -> Smc.Random_walk { seed = seed + trial; schedules = budget });
    ("PCT d=3", fun trial -> Smc.Pct { seed = seed + trial; schedules = budget; depth = 3 });
  ]

let measure ~trials fault (name, mk) =
  let hits = ref [] in
  let schedules_total = ref 0 in
  let t0 = Util.Wallclock.now_s () in
  for trial = 0 to trials - 1 do
    let outcome = Conc.Conc_detect.detect (mk trial) fault in
    schedules_total := !schedules_total + outcome.Smc.schedules_run;
    if outcome.Smc.violation <> None then hits := outcome.Smc.schedules_run :: !hits
  done;
  let dt = Util.Wallclock.now_s () -. t0 in
  let hits = List.sort compare !hits in
  {
    strategy = name;
    fault;
    detected = List.length hits;
    trials;
    median_schedules =
      (match hits with [] -> None | _ -> Some (List.nth hits (List.length hits / 2)));
    schedules_per_sec = float_of_int !schedules_total /. dt;
  }

let verify ~budget fault =
  let t0 = Util.Wallclock.now_s () in
  let outcome = Conc.Conc_detect.check_correct (Smc.Dfs { max_schedules = budget }) fault in
  assert (outcome.Smc.violation = None);
  {
    fault;
    schedules = outcome.Smc.schedules_run;
    exhausted = outcome.Smc.exhausted;
    seconds = Util.Wallclock.now_s () -. t0;
  }

let run ?(trials = 5) ?(schedule_budget = 100_000) ?(seed = 3_000) () =
  let t0 = Util.Wallclock.now_s () in
  let hunt_faults = [ Faults.F14_compaction_reclaim_race; Faults.F11_locator_race ] in
  let results =
    List.concat_map
      (fun fault ->
        List.map (measure ~trials fault) (strategies ~seed ~budget:schedule_budget))
      hunt_faults
  in
  let verifications =
    List.map (verify ~budget:schedule_budget)
      [
        Faults.F11_locator_race;
        Faults.F12_buffer_pool_deadlock;
        Faults.F13_list_remove_race;
        Faults.F16_bulk_create_remove_race;
      ]
  in
  { results; verifications; seconds = Util.Wallclock.now_s () -. t0 }

let print report =
  Printf.printf "E8: stateless model checking strategies (Loom-vs-Shuttle trade-off, section 6)\n";
  Printf.printf "%-10s %-6s %-12s %-20s %s\n" "strategy" "fault" "detected" "median schedules"
    "schedules/s";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun r ->
      Printf.printf "%-10s #%-5d %d/%-10d %-20s %.0f\n" r.strategy (Faults.number r.fault)
        r.detected r.trials
        (match r.median_schedules with Some m -> string_of_int m | None -> "-")
        r.schedules_per_sec)
    report.results;
  Printf.printf "\nExhaustive verification of the corrected code (DFS):\n";
  List.iter
    (fun v ->
      Printf.printf "  #%-3d %d schedules, %s, %.2f s\n" (Faults.number v.fault) v.schedules
        (if v.exhausted then "exhaustive" else "budget reached")
        v.seconds)
    report.verifications;
  Printf.printf "(%.1f s total)\n" report.seconds
