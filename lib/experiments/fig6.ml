type row = {
  category : string;
  files : int;
  lines : int;
}

type report = {
  rows : row list;
  total : int;
  implementation : int;
  models : int;
  validation : int;
}

(* Paper-style categories, by path prefix. Order matters: first match
   wins. *)
let categories =
  [
    ("Reference models (S3.2)", [ "lib/model" ]);
    ("Crash consistency checks (S5)", [ "lib/core/crash_enum.ml"; "bin/crash_modes.ml" ]);
    ( "Functional correctness checks (S4)",
      [ "lib/core"; "test/test_lfm.ml" ] );
    ( "Concurrency checks (S6)",
      [ "lib/smc"; "lib/conc"; "test/test_smc.ml"; "test/test_conc.ml" ] );
    ( "Unit tests & integration tests",
      [ "test" ] );
    ("Benchmarks & experiment drivers", [ "lib/experiments"; "bench"; "bin" ]);
    ("Examples", [ "examples" ]);
    ( "Implementation",
      [ "lib/util"; "lib/disk"; "lib/iosched"; "lib/logroll"; "lib/superblock"; "lib/cache";
        "lib/chunk"; "lib/lsm"; "lib/store"; "lib/rpc"; "lib/faults"; "lib/fleet" ] );
  ]

let category_of path =
  let matches prefix = String.length path >= String.length prefix
    && String.sub path 0 (String.length prefix) = prefix
  in
  let rec go = function
    | [] -> None
    | (name, prefixes) :: rest ->
      if List.exists matches prefixes then Some name else go rest
  in
  go categories

let rec walk root rel acc =
  let full = if rel = "" then root else Filename.concat root rel in
  match Sys.is_directory full with
  | true ->
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" || entry = "scratch" then acc
        else walk root (if rel = "" then entry else Filename.concat rel entry) acc)
      acc (Sys.readdir full)
  | false ->
    if Filename.check_suffix rel ".ml" || Filename.check_suffix rel ".mli" then rel :: acc
    else acc
  | exception Sys_error _ -> acc

let count_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then incr n
         done
       with End_of_file -> ());
      !n)

(* Locate the repository root by walking up to the nearest dune-project:
   executables run from the repo root, tests from the build sandbox. *)
let find_root () =
  let rec go dir depth =
    if depth > 6 then "."
    else if Sys.file_exists (Filename.concat dir "dune-project") then dir
    else go (Filename.concat dir Filename.parent_dir_name) (depth + 1)
  in
  go "." 0

let run ?root () =
  let root = match root with Some r -> r | None -> find_root () in
  let files = walk root "" [] in
  let tally = Hashtbl.create 16 in
  List.iter
    (fun rel ->
      match category_of rel with
      | None -> ()
      | Some cat ->
        let lines = count_lines (Filename.concat root rel) in
        let f, l = Option.value ~default:(0, 0) (Hashtbl.find_opt tally cat) in
        Hashtbl.replace tally cat (f + 1, l + lines))
    files;
  let rows =
    List.filter_map
      (fun (category, _) ->
        match Hashtbl.find_opt tally category with
        | Some (files, lines) -> Some { category; files; lines }
        | None -> None)
      categories
  in
  let lines_of cat =
    match List.find_opt (fun r -> r.category = cat) rows with
    | Some r -> r.lines
    | None -> 0
  in
  let implementation = lines_of "Implementation" in
  let models = lines_of "Reference models (S3.2)" in
  let validation =
    lines_of "Functional correctness checks (S4)"
    + lines_of "Crash consistency checks (S5)"
    + lines_of "Concurrency checks (S6)"
  in
  let total = List.fold_left (fun acc r -> acc + r.lines) 0 rows in
  { rows; total; implementation; models; validation }

let print report =
  Printf.printf "Figure 6: lines of code for implementation and validation artifacts\n";
  Printf.printf "%-42s %6s %8s\n" "Component" "files" "lines";
  Printf.printf "%s\n" (String.make 58 '-');
  let ordered =
    let impl = List.filter (fun r -> r.category = "Implementation") report.rows in
    let rest = List.filter (fun r -> r.category <> "Implementation") report.rows in
    impl @ rest
  in
  List.iter
    (fun r -> Printf.printf "%-42s %6d %8d\n" r.category r.files r.lines)
    ordered;
  Printf.printf "%s\n%-42s %6s %8d\n\n" (String.make 58 '-') "Total" "" report.total;
  let pct a b = 100.0 *. float_of_int a /. float_of_int b in
  Printf.printf "Effort ratios (paper section 8.2 reports models ~1%%, validation ~20%% of impl):\n";
  Printf.printf "  reference models / implementation: %5.1f%%\n"
    (pct report.models report.implementation);
  Printf.printf "  validation code  / implementation: %5.1f%%\n"
    (pct report.validation report.implementation);
  Printf.printf "  validation+models / total:         %5.1f%%\n"
    (pct (report.validation + report.models) report.total)
