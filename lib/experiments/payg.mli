(** Experiment E6 — pay-as-you-go scaling (paper sections 1 and 4.2: "we
    can run them for longer to increase the chance of finding issues (like
    fuzzing) ... we routinely run tens of millions of random test
    sequences before every deployment").

    For each fault, runs many independent hunts and reports the empirical
    probability of detection within increasing sequence budgets (the CDF of
    sequences-to-detection). *)

type curve = {
  fault : Faults.t;
  trials : int;
  hits : int list;  (** sequences-to-detection for the successful trials *)
  budgets : int list;
  probability : float list;  (** P(detected within budget), aligned with [budgets] *)
}

type report = {
  curves : curve list;
  seconds : float;
}

val run :
  ?domains:int -> ?faults:Faults.t list -> ?trials:int -> ?max_sequences:int ->
  ?budgets:int list -> ?seed:int -> unit -> report
(** [domains] shards each detection hunt over that many racing domains via
    {!Par.search}; the report is seed-for-seed identical to [domains = 1]. *)

val print : report -> unit
