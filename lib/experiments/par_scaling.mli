(** E14: multicore scaling of the validation engine ([lib/par]).

    Runs the Fig. 5 detection catalog and a chaos-campaign batch at several
    domain counts, measuring wall clock and — the part that makes the
    numbers trustworthy — asserting that the {e rendered results} (rows,
    counterexamples, campaign summaries; everything except wall clock) are
    byte-identical across domain counts. A speedup achieved by changing
    what gets checked would be worthless.

    Wall-clock speedups only materialize with real cores; determinism holds
    on any machine (spawning more domains than cores is just slower). The
    gated bench around this experiment lives in [bench/par_bench.ml]. *)

type row = {
  domains : int;
  seconds : float;
  speedup : float;  (** vs the 1-domain row of the same workload *)
  identical : bool;  (** rendered output byte-identical to 1 domain *)
}

type report = {
  fig5 : row list;  (** Fig. 5 catalog at each domain count *)
  chaos : row list;  (** chaos campaign batch at each domain count *)
}

(** Every row's rendered output matched the sequential baseline. *)
val all_identical : report -> bool

(** [run ?domain_counts ?budget ?campaigns ()] — defaults: domain counts
    [[1; 2; 4]], {!Fig5.quick_budget}, 50 campaigns. The first domain
    count is the baseline (use 1). *)
val run :
  ?domain_counts:int list -> ?budget:Fig5.budget -> ?campaigns:int -> unit -> report

val print : report -> unit
