type arm = {
  label : string;
  shards_repaired : int;
  bytes_moved : int;
}

type report = {
  shards : int;
  shard_bytes : int;
  crash : arm;
  loss : arm;
  seconds : float;
}

let fleet_config =
  {
    Fleet.nodes = 6;
    replication = 3;
    store = Store.Default.default_config;
  }

let populate f ~shards ~shard_bytes ~seed =
  let rng = Util.Rng.create (Int64.of_int seed) in
  for i = 0 to shards - 1 do
    let value = Bytes.to_string (Util.Rng.bytes rng shard_bytes) in
    match Fleet.put f ~key:(Printf.sprintf "shard-%04d" i) ~value with
    | Ok _ack -> ()
    | Error e -> Format.kasprintf failwith "populate: %a" Fleet.pp_error e
  done

let measure ~label ~shards ~shard_bytes ~seed damage =
  let f = Fleet.create fleet_config in
  populate f ~shards ~shard_bytes ~seed;
  damage f;
  match Fleet.repair f with
  | Ok r ->
    { label; shards_repaired = r.Fleet.shards_repaired; bytes_moved = r.Fleet.bytes_moved }
  | Error e -> Format.kasprintf failwith "repair: %a" Fleet.pp_error e

let run ?(shards = 120) ?(shard_bytes = 4096) ?(seed = 11_000) () =
  let t0 = Util.Wallclock.now_s () in
  let crash =
    measure ~label:"node crash (crash-consistent recovery)" ~shards ~shard_bytes ~seed
      (fun f ->
        let rng = Util.Rng.create (Int64.of_int (seed + 1)) in
        Fleet.crash_node f ~rng ~node:0)
  in
  let loss =
    measure ~label:"node loss (disk replacement)" ~shards ~shard_bytes ~seed (fun f ->
        Fleet.destroy_node f ~node:0)
  in
  { shards; shard_bytes; crash; loss; seconds = Util.Wallclock.now_s () -. t0 }

let print report =
  Printf.printf "E11: repair traffic after node crash vs node loss (paper section 2.2)\n";
  Printf.printf "fleet: %d nodes, replication %d, %d shards x %d B\n\n" fleet_config.Fleet.nodes
    fleet_config.Fleet.replication report.shards report.shard_bytes;
  Printf.printf "%-42s %18s %14s\n" "scenario" "shards repaired" "bytes moved";
  Printf.printf "%s\n" (String.make 76 '-');
  List.iter
    (fun a -> Printf.printf "%-42s %18d %14d\n" a.label a.shards_repaired a.bytes_moved)
    [ report.crash; report.loss ];
  Printf.printf "%s\n" (String.make 76 '-');
  if report.crash.bytes_moved = 0 then
    Printf.printf
      "crash-consistent recovery required no repair traffic; losing the node\n\
       re-replicated %d shards (%d B) across the fleet. (%.1f s)\n"
      report.loss.shards_repaired report.loss.bytes_moved report.seconds
  else
    Printf.printf "(crash arm unexpectedly moved %d bytes) (%.1f s)\n" report.crash.bytes_moved
      report.seconds
