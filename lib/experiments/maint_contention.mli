(** E17: what a racing maintenance domain costs the foreground — and
    what the maintenance plane buys over the global-stack-lock baseline.

    Four timed arms, identical seeded foreground workloads (N domains,
    get-heavy with periodic [put_batch] bursts that spike staging, over
    a preloaded key set, so gets read through the stack lock where flush
    contention bites):

    - {e fg-only} — no flushing at all: the raw foreground ceiling
      (staging grows unboundedly; nobody drains it);
    - {e inline-coarse} — the {b global-stack-lock baseline}: no
      maintenance domain exists, so every foreground domain must
      periodically stall on a whole-store flush whose shard drains hold
      the stack write lock end to end ([flush_chunk = 0]) — the only way
      to keep staging bounded before the maintenance plane;
    - {e maint-coarse} — a racing {!Store.Shared.Maint} domain driving
      the same whole-drain flush protocol ([flush_chunk = 0]);
    - {e maint-narrow} — the full maintenance plane: the racing domain
      drains with narrowed stack critical sections ([flush_chunk = 8]),
      so foreground reads interleave with a drain.

    Each arm reports the median over [repeats] runs. The headline gate
    ({!narrow_beats_baseline}) is that a foreground that never flushes —
    because a racing narrowed maintenance domain does it instead — is at
    least as fast as one stalling on its own global-stack-lock flushes.
    {!ok} additionally requires zero foreground/maintenance errors and a
    passing single-domain {e byte-identity} check — the same op sequence
    driven through [Store.Shared] (with maintenance calls interspersed)
    and through a bare [Store.Default] must agree on every value and the
    final listing, byte for byte.

    [bench/maint_bench.exe] records these numbers into
    [BENCH_maint.json]. *)

type arm = {
  label : string;
  flush_chunk : int;
  fg_ops : int;  (** foreground ops issued (all domains) *)
  fg_errors : int;
  seconds : float;  (** foreground wall-clock (maintenance excluded) *)
  ops_per_sec : float;
  maint : Store.Shared.Maint.stats option;
}

type result = {
  domains : int;
  ops_per_domain : int;
  keys : int;
  value_bytes : int;
  repeats : int;
  arms : arm list;  (** fg-only, inline-coarse, maint-coarse, maint-narrow *)
  conformance_ok : bool;  (** single-domain byte-identity vs [Store.Default] *)
}

val run :
  ?domains:int ->
  ?ops_per_domain:int ->
  ?keys:int ->
  ?value_bytes:int ->
  ?repeats:int ->
  ?seed:int ->
  ?conformance_ops:int ->
  unit ->
  result

(** Look up an arm by label; raises [Not_found] on an unknown label. *)
val arm : result -> string -> arm

(** Foreground throughput with racing narrowed flushes >= the
    global-stack-lock baseline (foreground stalling on its own
    whole-drain flushes). The maintenance plane's headline. *)
val narrow_beats_baseline : result -> bool

(** The two racing arms compared: narrowed >= whole-drain stack holds.
    Only meaningful with real parallelism — on one core every chunk
    boundary is a forced context switch — so the bench asserts this on
    multi-core hosts only. *)
val narrow_beats_coarse : result -> bool

(** Zero foreground and maintenance errors, maintenance actually ran in
    the racing arms, and the byte-identity check passed. (Deliberately
    does NOT gate on the throughput orderings: those are
    hardware-dependent — the bench records both and asserts
    {!narrow_beats_coarse} on multi-core runners only.) *)
val ok : result -> bool

val print : result -> unit
