(** Experiment E8 — the Loom/Shuttle soundness-scalability trade-off
    (paper section 6): exhaustive DFS soundly checks small harnesses;
    randomized PCT scales to larger ones at the cost of possibly missing
    bugs.

    On the Fig. 4 race (#14) and the other concurrency harnesses, measures
    schedules-to-violation per strategy (median over seeds) and the cost of
    exhaustively verifying the corrected code. *)

type strategy_result = {
  strategy : string;
  fault : Faults.t;
  detected : int;  (** trials that found the violation *)
  trials : int;
  median_schedules : int option;
  schedules_per_sec : float;
}

type verification = {
  fault : Faults.t;
  schedules : int;
  exhausted : bool;  (** the whole interleaving space was covered *)
  seconds : float;
}

type report = {
  results : strategy_result list;
  verifications : verification list;  (** DFS on the corrected code *)
  seconds : float;
}

val run : ?trials:int -> ?schedule_budget:int -> ?seed:int -> unit -> report
val print : report -> unit
