(** Deterministic [Hashtbl] iteration.

    [Hashtbl.iter]/[fold] order depends on the hash seed and insertion
    history; the static analyzer ([lib/lint]) bans them in
    validated-output paths. Iterate these sorted snapshots instead. Keys
    sort by [compare] (default: polymorphic compare); bindings for equal
    keys keep table order, so prefer tables without duplicate keys. *)

val sorted_bindings : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
val sorted_keys : ?compare:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
val iter_sorted : ?compare:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit

val fold_sorted :
  ?compare:('k -> 'k -> int) -> ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) Hashtbl.t -> 'acc -> 'acc
