(** CRC-32 (IEEE 802.3 polynomial) for on-disk integrity checks.

    Data read back from the disk is treated as untrusted (paper section 7);
    every chunk frame and metadata record carries a CRC so corruption is
    detected rather than propagated. *)

(** [digest_bytes ?off ?len b] computes the CRC of the given slice
    (defaults: whole buffer). *)
val digest_bytes : ?off:int -> ?len:int -> bytes -> int32

(** [digest_string s] computes the CRC of a string. *)
val digest_string : string -> int32
