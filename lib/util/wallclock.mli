(** The single sanctioned wall-clock helper for experiment timing.

    Validated outputs (conformance verdicts, coverage, counterexamples)
    must never depend on wall time; experiments may {e report} elapsed
    seconds for humans. To keep that boundary checkable, every wall-clock
    read in [lib/] routes through this module and the static analyzer
    ([lib/lint]) waives exactly one call site: this file. *)

(** Seconds since the epoch, as [Unix.gettimeofday]. *)
val now_s : unit -> float

(** [timed f] — [f ()]'s result and its elapsed wall time in seconds. *)
val timed : (unit -> 'a) -> 'a * float
