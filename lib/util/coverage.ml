let table : (string, int ref) Hashtbl.t = Hashtbl.create 64

let hit name =
  match Hashtbl.find_opt table name with
  | Some r -> incr r
  | None -> Hashtbl.add table name (ref 1)

let count name = match Hashtbl.find_opt table name with Some r -> !r | None -> 0

let snapshot () =
  Hashtbl.fold (fun name r acc -> if !r > 0 then (name, !r) :: acc else acc) table []
  |> List.sort compare

let reset () = Hashtbl.reset table

let pp_snapshot fmt () =
  List.iter (fun (name, n) -> Format.fprintf fmt "%-40s %d@." name n) (snapshot ())

let blind_spots ~expected () = List.filter (fun name -> count name = 0) expected
