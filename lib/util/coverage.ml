(* A facade over the unified observability layer's global coverage table:
   instance counters registered with [Obs.counter ~coverage:true] and
   direct [hit] calls land in the same cells, so blind-spot reports keep
   working across the refactored stack. *)
include Obs.Coverage
