type t = string

let size = 16

let generate rng = Bytes.to_string (Rng.bytes rng size)

let of_string s = if String.length s = size then Some s else None

let of_string_exn s =
  match of_string s with
  | Some t -> t
  | None -> invalid_arg "Uuid.of_string_exn: expected 16 bytes"

let to_string t = t

let to_hex t =
  let buf = Buffer.create (2 * size) in
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) t;
  Buffer.contents buf

let equal = String.equal
let compare = String.compare
let pp fmt t = Format.pp_print_string fmt (to_hex t)
