type error =
  | Truncated of { wanted : int; available : int }
  | Bad_magic of { expected : string; found : string }
  | Bad_checksum
  | Invalid of string

let pp_error fmt = function
  | Truncated { wanted; available } ->
    Format.fprintf fmt "truncated input: wanted %d bytes, %d available" wanted available
  | Bad_magic { expected; found } ->
    Format.fprintf fmt "bad magic: expected %S, found %S" expected found
  | Bad_checksum -> Format.pp_print_string fmt "checksum mismatch"
  | Invalid msg -> Format.fprintf fmt "invalid encoding: %s" msg

let error_to_string e = Format.asprintf "%a" pp_error e

module Writer = struct
  type t = Buffer.t

  let create ?(capacity = 64) () = Buffer.create capacity
  let length = Buffer.length
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))
  let u16 t v = Buffer.add_uint16_le t (v land 0xFFFF)
  let u32 t v = Buffer.add_int32_le t v
  let u64 t v = Buffer.add_int64_le t v

  let uint t n =
    assert (n >= 0);
    u64 t (Int64.of_int n)

  let raw_string = Buffer.add_string
  let raw_bytes = Buffer.add_bytes

  let lstring t s =
    u32 t (Int32.of_int (String.length s));
    raw_string t s

  let contents = Buffer.contents
  let to_bytes = Buffer.to_bytes
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string ?(pos = 0) data = { data; pos }
  let of_bytes ?pos b = of_string ?pos (Bytes.to_string b)
  let pos t = t.pos
  let remaining t = String.length t.data - t.pos

  let take t n =
    if n < 0 then Error (Invalid "negative length")
    else if remaining t < n then Error (Truncated { wanted = n; available = remaining t })
    else begin
      let s = String.sub t.data t.pos n in
      t.pos <- t.pos + n;
      Ok s
    end

  let u8 t =
    match take t 1 with
    | Error _ as e -> e
    | Ok s -> Ok (Char.code s.[0])

  let u16 t =
    match take t 2 with
    | Error _ as e -> e
    | Ok s -> Ok (String.get_uint16_le s 0)

  let u32 t =
    match take t 4 with
    | Error _ as e -> e
    | Ok s -> Ok (String.get_int32_le s 0)

  let u64 t =
    match take t 8 with
    | Error _ as e -> e
    | Ok s -> Ok (String.get_int64_le s 0)

  let uint t =
    match u64 t with
    | Error _ as e -> e
    | Ok v ->
      if v < 0L || v > Int64.of_int max_int then Error (Invalid "u64 out of int range")
      else Ok (Int64.to_int v)

  let raw t n = take t n

  let lstring ?(max = 1 lsl 30) t =
    match u32 t with
    | Error _ as e -> e
    | Ok len32 ->
      let len = Int32.to_int len32 in
      if len < 0 || len > max then Error (Invalid "length prefix out of range")
      else take t len

  let magic t expected =
    match take t (String.length expected) with
    | Error _ as e -> e
    | Ok found ->
      if String.equal found expected then Ok () else Error (Bad_magic { expected; found })

  let expect_end t =
    if remaining t = 0 then Ok () else Error (Invalid "trailing bytes after value")
end

module Syntax = struct
  let ( let* ) r f = Result.bind r f
  let ( let+ ) r f = Result.map f r
end
