(* Deterministic Hashtbl iteration. Hashtbl.iter/fold order depends on
   the hash seed and insertion history, so any validated or printed
   output built from it is nondeterministic; the static analyzer
   (lib/lint) bans them outside the wrapper layers. Order-sensitive
   sites iterate these sorted snapshots instead; the one Hashtbl.fold
   below is the waived point. *)

let sorted_bindings ?(compare = Stdlib.compare) t =
  List.sort (fun (k1, _) (k2, _) -> compare k1 k2) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])

let sorted_keys ?compare t = List.map fst (sorted_bindings ?compare t)

let iter_sorted ?compare f t = List.iter (fun (k, v) -> f k v) (sorted_bindings ?compare t)

let fold_sorted ?compare f t init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ?compare t)
