(** Code-coverage counters for the implementation's interesting paths
    (paper section 4.2, "Coverage metrics").

    Property-based tests only check states the harness can reach; as code
    evolves, new functionality can silently fall outside that set. The
    implementation bumps a named counter at each path worth reaching
    (cache miss, reclamation evacuation, torn crash state, ...), and the
    harnesses report the counters so blind spots are visible — the paper's
    remedy for the missed cache-miss bug of section 8.3.

    Counters are global and cheap (one hash lookup); tests reset them
    around the region they measure.

    Since the unified observability refactor this module is a facade over
    {!Obs.Coverage}: per-instance registry counters created with
    [Obs.counter ~coverage:true] feed the same global cells, so the
    blind-spot report covers the whole refactored stack. *)

(** [hit name] increments the counter. *)
val hit : string -> unit

(** [count name] — current value (0 if never hit). *)
val count : string -> int

(** All counters with non-zero values, sorted by name. *)
val snapshot : unit -> (string * int) list

val reset : unit -> unit

(** [pp_snapshot fmt ()] — one counter per line. *)
val pp_snapshot : Format.formatter -> unit -> unit

(** [blind_spots ~expected ()] — the subset of [expected] counter names
    that were never hit: the blind-spot report. *)
val blind_spots : expected:string list -> unit -> string list
