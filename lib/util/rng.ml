type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)
let copy t = { state = t.state }

(* splitmix64 finalizer: advance by the golden gamma, then mix. *)
let int64 t =
  let z = Int64.add t.state golden_gamma in
  t.state <- z;
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let split t =
  let seed = int64 t in
  create seed

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (int64 t) 1L = 1L

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. (v /. 9007199254740992.0)

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.unsafe_chr (int t 256))
  done;
  b

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let pick_list t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Rng.weighted: no positive weight";
  let target = int t total in
  let rec go acc = function
    | [] -> assert false
    | (w, v) :: rest ->
      let acc = acc + max 0 w in
      if target < acc then v else go acc rest
  in
  go 0 choices
