(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every source of randomness in the repository flows through this module so
    that test executions are replayable from a single integer seed, which is
    what makes property-based counterexamples reproducible and minimizable
    (paper section 4.3 requires deterministic components).

    {b Seed/determinism contract}: [create seed] yields a stream that is a
    pure function of [seed] — equal seeds, equal streams, on any machine.
    The parallel runner ([lib/par]) leans on this: each worker task builds a
    private generator from its own seed, so sharding a seed range across
    domains draws exactly the values the sequential loop would. A [t] is a
    mutable cursor and is {e not} domain-safe — never share one across
    domains; give each task its own via {!create} or {!split}. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int64 -> t

(** [of_int seed] is [create (Int64.of_int seed)]. *)
val of_int : int -> t

(** [copy t] duplicates the generator state. *)
val copy : t -> t

(** [split t] derives an independent generator and advances [t]. *)
val split : t -> t

(** [int64 t] is the next raw 64-bit value. *)
val int64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t lo hi] is uniform in [\[lo, hi\]]. Requires [lo <= hi]. *)
val int_in : t -> int -> int -> int

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to [0,1]). *)
val chance : t -> float -> bool

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [bytes t n] is [n] random bytes. *)
val bytes : t -> int -> bytes

(** [pick t arr] is a uniformly chosen element. Requires a non-empty array. *)
val pick : t -> 'a array -> 'a

(** [pick_list t xs] is a uniformly chosen element. Requires a non-empty
    list. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [weighted t choices] picks among [(weight, value)] pairs with probability
    proportional to weight. Requires at least one positive weight. *)
val weighted : t -> (int * 'a) list -> 'a
