(** Total binary encoders and decoders.

    Every on-disk and on-wire format in the repository is built from these
    primitives. Decoding never raises: a truncated or corrupt input yields
    [Error], reproducing the paper's panic-freedom requirement for
    deserializers running on untrusted bytes (section 7). *)

type error =
  | Truncated of { wanted : int; available : int }
  | Bad_magic of { expected : string; found : string }
  | Bad_checksum
  | Invalid of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Append-only encoder on top of [Buffer]. *)
module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t
  val length : t -> int
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit
  val u64 : t -> int64 -> unit

  (** [uint t n] encodes a non-negative OCaml int as a u64. *)
  val uint : t -> int -> unit

  val raw_string : t -> string -> unit
  val raw_bytes : t -> bytes -> unit

  (** [lstring t s] encodes a u32 length prefix followed by the bytes. *)
  val lstring : t -> string -> unit

  val contents : t -> string
  val to_bytes : t -> bytes
end

(** Cursor-based decoder over an immutable string; all reads are total. *)
module Reader : sig
  type t

  val of_string : ?pos:int -> string -> t
  val of_bytes : ?pos:int -> bytes -> t
  val pos : t -> int
  val remaining : t -> int
  val u8 : t -> (int, error) result
  val u16 : t -> (int, error) result
  val u32 : t -> (int32, error) result
  val u64 : t -> (int64, error) result

  (** [uint t] decodes a u64 and checks it fits a non-negative OCaml int. *)
  val uint : t -> (int, error) result

  val raw : t -> int -> (string, error) result

  (** [lstring ?max t] decodes a u32-length-prefixed string, rejecting
      lengths above [max] (default 1 GiB) to bound allocation on corrupt
      input. *)
  val lstring : ?max:int -> t -> (string, error) result

  (** [magic t expected] consumes [String.length expected] bytes and checks
      them. *)
  val magic : t -> string -> (unit, error) result

  (** [expect_end t] fails with [Invalid] if bytes remain. *)
  val expect_end : t -> (unit, error) result
end

(** [let*] syntax for result-typed decoding pipelines. *)
module Syntax : sig
  val ( let* ) : ('a, 'e) result -> ('a -> ('b, 'e) result) -> ('b, 'e) result
  val ( let+ ) : ('a, 'e) result -> ('a -> 'b) -> ('b, 'e) result
end
