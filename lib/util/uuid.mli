(** 16-byte identifiers used to frame chunks on disk.

    Chunk frames repeat the UUID at both ends so a truncated or overwritten
    chunk can be recognised (paper section 5, issue #10). Generation is
    driven by the deterministic {!Rng} so crash scenarios that depend on a
    particular UUID byte pattern are replayable. *)

type t

val size : int

(** [generate rng] draws a fresh random identifier. *)
val generate : Rng.t -> t

(** [of_string s] validates that [s] has {!size} bytes. *)
val of_string : string -> t option

(** [of_string_exn s] raises [Invalid_argument] on bad length. *)
val of_string_exn : string -> t

val to_string : t -> string
val to_hex : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
