(* The table and the hot loop work on untagged native ints (the CRC fits in
   32 bits, so 63-bit ints hold every intermediate); boxed Int32 arithmetic
   here costs an allocation per operation and this loop runs over every
   byte the store reads or writes. The boundary stays int32. *)

let table =
  lazy
    (let t = Array.make 256 0 in
     for n = 0 to 255 do
       let c = ref n in
       for _ = 0 to 7 do
         if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
       done;
       t.(n) <- !c
     done;
     t)

let update crc b off len =
  let t = Lazy.force table in
  let crc = ref (Int32.to_int crc land 0xFFFFFFFF lxor 0xFFFFFFFF) in
  for i = off to off + len - 1 do
    crc := t.((!crc lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!crc lsr 8)
  done;
  Int32.of_int (!crc lxor 0xFFFFFFFF)

let digest_bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.digest_bytes: slice out of bounds";
  update 0l b off len

let digest_string s = digest_bytes (Bytes.unsafe_of_string s)
