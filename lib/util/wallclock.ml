(* The one sanctioned wall-clock read outside bench/ (see lib/lint).
   Experiments report elapsed time for humans; nothing validated may
   depend on it, so every read in lib/ funnels through here and the
   static analyzer waives exactly this file. *)

let now_s () = Unix.gettimeofday ()

let timed f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)
