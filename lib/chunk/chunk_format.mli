(** On-disk chunk framing.

    A frame is [magic | frame_len | crc | owner | head uuid | payload |
    tail uuid]. The random UUID is repeated at both ends so a truncated
    chunk is recognisable (the tail lands past the truncation and fails to
    match), and the CRC covers the payload so corrupt data is failed rather
    than returned (paper section 7). The owner tag — the shard key or LSM
    run the chunk belongs to — is what lets reclamation reverse-lookup
    liveness (section 2.1).

    The head and tail UUIDs, not the CRC, validate the {e frame structure};
    this is the property whose corner case produced issue #10 (a crash-
    truncated frame whose tail-UUID bytes were overwritten by the next
    chunk's magic, colliding with a UUID that happened to end in the magic
    bytes). *)

type owner =
  | Shard of string  (** shard key the chunk's payload belongs to *)
  | Index_run of int  (** id of the LSM-tree run stored in this chunk *)

val owner_equal : owner -> owner -> bool
val pp_owner : Format.formatter -> owner -> unit

val magic : string

type chunk = {
  owner : owner;
  payload : string;
  uuid : Util.Uuid.t;
}

(** [encode ~uuid ~owner ~payload] builds a frame. *)
val encode : uuid:Util.Uuid.t -> owner:owner -> payload:string -> string

(** Frame length for a given owner and payload size. *)
val frame_len : owner:owner -> payload_len:int -> int

(** Length of the fixed prefix ([magic | frame_len | crc]) that must be
    read before the full frame length is known. *)
val prefix_len : int

(** [decode_prefix s] returns the total frame length claimed by a prefix. *)
val decode_prefix : string -> (int, Util.Codec.error) result

(** [decode ?check_crc frame] validates and decodes a full frame.
    [check_crc] defaults to [true]; the reclamation scan under fault #10
    passes [false], trusting UUID framing alone. *)
val decode : ?check_crc:bool -> string -> (chunk, Util.Codec.error) result
