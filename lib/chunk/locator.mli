(** Opaque chunk locators (paper section 2.1).

    A locator identifies one chunk: the extent, the byte offset of its
    frame, the frame length, and the extent {e epoch} at write time. The
    epoch makes locators single-use across extent resets: a stale locator
    into a recycled extent is detected instead of silently reading new
    data (the uniqueness assumption that reference-model issue #15 broke). *)

type t = {
  extent : int;
  epoch : int;
  off : int;
  frame_len : int;
}

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val encode : Util.Codec.Writer.t -> t -> unit
val decode : Util.Codec.Reader.t -> (t, Util.Codec.error) result
