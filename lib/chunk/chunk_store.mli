(** The chunk store: PUT/GET of chunks onto extents, and chunk reclamation
    (paper section 2.1).

    Chunks are framed ({!Chunk_format}), padded to page alignment, and
    appended to the currently open data extent; new extents are taken from
    the superblock's recorded-[Free] pool (staging a reset first when the
    extent still carries pre-crash bytes). A put's dependency is the append
    combined with the covering superblock record promise, per Fig. 2.

    Reclamation scans an extent page boundary by page boundary, decoding
    frames; live chunks (per the caller's reverse lookup) are evacuated to
    other extents and their references updated; the extent is then reset
    with an input dependency covering every evacuation {e and} every
    reference update, which is the crash-consistent ordering of section 2.1.

    Fault sites: #1 (scan off-by-one near page-size frames), #5 (scan
    aborts on transient read error but still resets), #7 (reset dependency
    omits the reference updates), #10 (scan skips by frame length, trusting
    UUID framing without the CRC). *)

type t

type error =
  | No_space  (** no extent can hold the chunk; reclaim and retry *)
  | Io of Io_sched.error
  | Corrupt of Util.Codec.error
  | Stale_locator of Locator.t  (** locator epoch does not match the extent *)
  | Superblock of Superblock.error

val pp_error : Format.formatter -> error -> unit

(** See {!Io_sched.error_class}; [No_space] is [`Resource], corruption and
    stale locators are [`Fatal]. *)
val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

(** [create ?obs sched ~cache ~superblock ~rng] — metrics ([chunk.put],
    [chunk.get], [chunk.reclamation], coverage-linked [chunk.get.*] and
    [reclaim.*]) land in [obs], defaulting to the scheduler's registry. *)
val create :
  ?obs:Obs.t -> Io_sched.t -> cache:Cache.t -> superblock:Superblock.t -> rng:Util.Rng.t -> t

val sched : t -> Io_sched.t
val obs : t -> Obs.t

(** [set_uuid_bias t p] — with probability [p], freshly generated chunk
    UUIDs end in the frame magic bytes. Test harnesses use this to bias
    toward the corner case of issue #10 (paper section 4.2 argues for
    exactly this kind of quantitatively justified bias). *)
val set_uuid_bias : t -> float -> unit

(** [put t ~owner ~payload] stores one chunk. [input] (default trivial) is
    the soft-updates input dependency of the append — e.g. an index run
    chunk depends on the value chunks its entries reference. *)
val put :
  ?input:Dep.t ->
  t ->
  owner:Chunk_format.owner ->
  payload:string ->
  (Locator.t * Dep.t, error) result

(** [put_batch t ~items] stores N chunks with group commit: frames are
    packed into per-extent groups, each group staged as {e one} coalesced
    append covered by {e one} superblock record promise, and every chunk of
    a group shares the merged write's dependency. Results are in item
    order. On a mid-batch error the already-staged groups are unreferenced
    garbage (their locators were never returned to an index), exactly like
    an interrupted sequential put; reclamation collects them.
    Observability: [chunk.batch_group] counts groups and
    [chunk.batch_group_chunks] records chunks per group. *)
val put_batch :
  ?input:Dep.t ->
  t ->
  items:(Chunk_format.owner * string) list ->
  ((Locator.t * Dep.t) list, error) result

(** [get t locator] reads a chunk back, validating epoch, framing and CRC.
    Never returns wrong data: corruption yields [Corrupt]. *)
val get : t -> Locator.t -> (Chunk_format.chunk, error) result

(** [reclaim t ~extent ~index_basis ~classify ~relocate] — see module doc.
    [classify] is the reverse lookup; [relocate] must update the owner's
    reference and return a dependency that persists when the updated
    reference does. [index_basis] must cover the index state [classify]
    consults: a chunk judged dead may only be destroyed once that judgement
    is durable. Returns the reset's dependency. *)
val reclaim :
  t ->
  extent:int ->
  index_basis:Dep.t ->
  classify:(Chunk_format.owner -> Locator.t -> [ `Live | `Dead ]) ->
  relocate:
    (Chunk_format.owner -> old_loc:Locator.t -> new_loc:Locator.t -> new_dep:Dep.t -> Dep.t) ->
  (Dep.t, error) result

(** [close t ~in_use] audits for leaked extents at shutdown: data extents
    carrying bytes ([soft_ptr > 0]) that are neither the open append
    target nor reachable per [in_use extent]. Each leak is returned as
    [(extent, written_pages)], counted under [chunk.leaked_extent], and —
    when the underlying disk has a {!Sanitize.Page_shadow} attached —
    reported to it as an [Extent_leak]. Forgets the open extent. *)
val close : t -> in_use:(int -> bool) -> (int * int) list

(** Extent currently open for allocation, if any. *)
val open_extent : t -> int option

(** Forget the open extent (used on reboot: volatile allocation state). *)
val close_open_extent : t -> unit

type stats = {
  puts : int;
  gets : int;
  evacuated : int;
  dropped : int;
  reclamations : int;
}

(** A legacy view over the registry counters; always equal to the
    corresponding {!Obs} values. *)
val stats : t -> stats
