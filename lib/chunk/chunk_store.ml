open Util

type error =
  | No_space
  | Io of Io_sched.error
  | Corrupt of Codec.error
  | Stale_locator of Locator.t
  | Superblock of Superblock.error

let pp_error fmt = function
  | No_space -> Format.pp_print_string fmt "no space available"
  | Io e -> Io_sched.pp_error fmt e
  | Corrupt e -> Format.fprintf fmt "corrupt chunk: %a" Codec.pp_error e
  | Stale_locator loc -> Format.fprintf fmt "stale locator %a" Locator.pp loc
  | Superblock e -> Superblock.pp_error fmt e

let error_class = function
  | No_space -> `Resource
  | Io e -> Io_sched.error_class e
  | Corrupt _ -> `Fatal
  | Stale_locator _ -> `Fatal
  | Superblock e -> Superblock.error_class e

type stats = {
  puts : int;
  gets : int;
  evacuated : int;
  dropped : int;
  reclamations : int;
}

type metrics = {
  m_puts : Obs.Counter.t;
  m_gets : Obs.Counter.t;
  m_stale : Obs.Counter.t;
  m_corrupt : Obs.Counter.t;
  m_scan_valid : Obs.Counter.t;
  m_scan_invalid : Obs.Counter.t;
  m_evacuated : Obs.Counter.t;
  m_dropped : Obs.Counter.t;
  m_reclamations : Obs.Counter.t;
  m_leaked : Obs.Counter.t;
  m_batch_groups : Obs.Counter.t;
  m_batch_group_chunks : Obs.Histogram.t;
}

type t = {
  sched : Io_sched.t;
  cache : Cache.t;
  sb : Superblock.t;
  rng : Rng.t;
  obs : Obs.t;
  m : metrics;
  mutable open_ext : int option;
  mutable reclaiming : int option;
  mutable uuid_bias : float;
}

let create ?obs sched ~cache ~superblock ~rng =
  let obs = match obs with Some o -> o | None -> Io_sched.obs sched in
  {
    sched;
    cache;
    sb = superblock;
    rng;
    obs;
    m =
      {
        m_puts = Obs.counter obs "chunk.put";
        m_gets = Obs.counter obs "chunk.get";
        m_stale = Obs.counter ~coverage:true obs "chunk.get.stale_locator";
        m_corrupt = Obs.counter ~coverage:true obs "chunk.get.corrupt";
        m_scan_valid = Obs.counter ~coverage:true obs "reclaim.scan.valid_frame";
        m_scan_invalid = Obs.counter ~coverage:true obs "reclaim.scan.invalid_frame";
        m_evacuated = Obs.counter ~coverage:true obs "reclaim.evacuated";
        m_dropped = Obs.counter ~coverage:true obs "reclaim.dropped";
        m_reclamations = Obs.counter obs "chunk.reclamation";
        m_leaked = Obs.counter obs "chunk.leaked_extent";
        m_batch_groups = Obs.counter obs "chunk.batch_group";
        m_batch_group_chunks =
          Obs.histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64. ] obs
            "chunk.batch_group_chunks";
      };
    open_ext = None;
    reclaiming = None;
    uuid_bias = 0.0;
  }

let sched t = t.sched
let obs t = t.obs
let set_uuid_bias t p = t.uuid_bias <- p
let open_extent t = t.open_ext
let close_open_extent t = t.open_ext <- None

(* A thin view over the registry counters; parity is by construction. *)
let stats t =
  {
    puts = Obs.Counter.value t.m.m_puts;
    gets = Obs.Counter.value t.m.m_gets;
    evacuated = Obs.Counter.value t.m.m_evacuated;
    dropped = Obs.Counter.value t.m.m_dropped;
    reclamations = Obs.Counter.value t.m.m_reclamations;
  }

let fresh_uuid t =
  let u = Uuid.generate t.rng in
  if Rng.chance t.rng t.uuid_bias then begin
    (* Bias toward UUIDs whose trailing bytes equal the frame magic — the
       collision ingredient of issue #10. *)
    let b = Bytes.of_string (Uuid.to_string u) in
    Bytes.blit_string Chunk_format.magic 0 b
      (Uuid.size - String.length Chunk_format.magic)
      (String.length Chunk_format.magic);
    Uuid.of_string_exn (Bytes.to_string b)
  end
  else u

let align_up n align = (n + align - 1) / align * align

(* Pick an extent with at least [need] bytes available: the open extent if
   it fits, otherwise the lowest recorded-Free extent (staging a reset first
   when it carries pre-crash bytes — safe because a durably recorded Free
   extent is guaranteed unreferenced). *)
let allocate t ~need ~privileged =
  let fits extent = need <= Io_sched.capacity_left t.sched ~extent in
  let usable extent =
    t.reclaiming <> Some extent
    && (not (Io_sched.has_pending_reset t.sched ~extent))
    && not (Io_sched.quarantined t.sched ~extent)
  in
  match t.open_ext with
  | Some extent when fits extent && usable extent -> Ok extent
  | _ -> (
    (* Prefer re-opening a partially filled data extent (appends continue at
       its write pointer) before consuming Free extents. *)
    match
      List.find_opt (fun e -> usable e && fits e) (Superblock.data_extents t.sb)
    with
    | Some extent ->
      t.open_ext <- Some extent;
      Ok extent
    | None ->
    let candidates = List.filter usable (Superblock.free_extents t.sb) in
    (* Headroom: normal puts never consume the last free extent, so
       reclamation always has somewhere to evacuate live chunks to — and so
       the index can always write the run that empties the memtable.
       Evacuations and index writes are exactly the writes that turn
       garbage collectible, so they may spend the reserve. *)
    let candidates =
      if t.reclaiming = None && not privileged then
        (match candidates with [] | [ _ ] -> [] | _ -> candidates)
      else candidates
    in
    let rec pick = function
      | [] -> Error No_space
      | extent :: rest ->
        if Io_sched.soft_ptr t.sched ~extent > 0 then begin
          match Io_sched.reset t.sched ~extent ~input:Dep.trivial with
          | Error e -> Error (Io e)
          | Ok _ ->
            Cache.note_reset t.cache ~extent;
            if fits extent then Ok extent else pick rest
        end
        else if fits extent then Ok extent
        else pick rest
    in
    match pick candidates with
    | Error _ as e -> e
    | Ok extent ->
      Superblock.set_owner t.sb ~extent Superblock.Data ~dep:Dep.trivial;
      t.open_ext <- Some extent;
      Ok extent)

let ( let* ) = Result.bind

let put ?(input = Dep.trivial) t ~owner ~payload =
  let frame = Chunk_format.encode ~uuid:(fresh_uuid t) ~owner ~payload in
  let flen = String.length frame in
  let ps = Io_sched.page_size t.sched in
  let padded = align_up flen ps in
  if padded > Io_sched.extent_size t.sched then Error No_space
  else begin
    let pad = String.make (padded - flen) '\000' in
    let privileged = match owner with Chunk_format.Index_run _ -> true | _ -> false in
    let* extent = allocate t ~need:padded ~privileged in
    let off = Io_sched.soft_ptr t.sched ~extent in
    let* append_dep =
      Result.map_error (fun e -> Io e)
        (Io_sched.append t.sched ~extent ~data:(frame ^ pad) ~input)
    in
    (* No cache invalidation needed on append: extents are append-only, so
       a cached page is always a prefix of the current content — except
       after a reset, which is exactly what note_reset handles (and what
       fault #2 breaks). Write-allocating caches insert the new pages. *)
    Cache.fill t.cache ~extent ~off (frame ^ pad);
    let pointer_dep = Superblock.note_append t.sb ~extent in
    let locator =
      { Locator.extent; epoch = Io_sched.epoch t.sched ~extent; off; frame_len = flen }
    in
    Obs.Counter.incr t.m.m_puts;
    if Obs.tracing t.obs then
      Obs.emit t.obs ~layer:"chunk" "put"
        [ ("extent", string_of_int extent); ("bytes", string_of_int flen) ];
    Ok (locator, Dep.and_ append_dep pointer_dep)
  end

(* Group commit for chunks. One group = a run of frames packed into a
   single extent, staged as ONE append and covered by ONE superblock record
   promise; every chunk of the group shares the merged write's dependency.
   Errors mid-batch abandon the remaining items: already-staged groups are
   unreferenced (the index has not seen their locators yet), which is the
   same garbage an interrupted sequential put leaves, and reclamation
   collects it. *)
type group = {
  g_extent : int;
  g_start : int;
  mutable g_bytes : int;
  mutable g_bufs : string list;  (** reversed *)
  mutable g_chunks : (int * int) list;  (** reversed [(rel_off, frame_len)] *)
}

let put_batch ?(input = Dep.trivial) t ~items =
  let ps = Io_sched.page_size t.sched in
  let esize = Io_sched.extent_size t.sched in
  let encoded =
    List.map
      (fun (owner, payload) ->
        let frame = Chunk_format.encode ~uuid:(fresh_uuid t) ~owner ~payload in
        (frame, align_up (String.length frame) ps))
      items
  in
  if List.exists (fun (_, padded) -> padded > esize) encoded then Error No_space
  else begin
    let results = ref [] in
    let group = ref None in
    let usable extent =
      t.reclaiming <> Some extent
      && (not (Io_sched.has_pending_reset t.sched ~extent))
      && not (Io_sched.quarantined t.sched ~extent)
    in
    let flush_group () =
      match !group with
      | None -> Ok ()
      | Some g ->
        group := None;
        let data = String.concat "" (List.rev g.g_bufs) in
        let* append_dep =
          Result.map_error (fun e -> Io e)
            (Io_sched.append t.sched ~extent:g.g_extent ~data ~input)
        in
        Cache.fill t.cache ~extent:g.g_extent ~off:g.g_start data;
        let pointer_dep = Superblock.note_append t.sb ~extent:g.g_extent in
        let dep = Dep.and_ append_dep pointer_dep in
        let epoch = Io_sched.epoch t.sched ~extent:g.g_extent in
        let chunks = List.rev g.g_chunks in
        List.iter
          (fun (rel, flen) ->
            Obs.Counter.incr t.m.m_puts;
            results :=
              ( {
                  Locator.extent = g.g_extent;
                  epoch;
                  off = g.g_start + rel;
                  frame_len = flen;
                },
                dep )
              :: !results)
          chunks;
        Obs.Counter.incr t.m.m_batch_groups;
        Obs.Histogram.observe t.m.m_batch_group_chunks (float_of_int (List.length chunks));
        if Obs.tracing t.obs then
          Obs.emit t.obs ~layer:"chunk" "put_group"
            [
              ("extent", string_of_int g.g_extent);
              ("chunks", string_of_int (List.length chunks));
              ("bytes", string_of_int (String.length data));
            ];
        Ok ()
    in
    let rec go = function
      | [] -> flush_group ()
      | (frame, padded) :: rest ->
        let flen = String.length frame in
        let pad = String.make (padded - flen) '\000' in
        let extended =
          match !group with
          | Some g
            when usable g.g_extent
                 && g.g_bytes + padded <= Io_sched.capacity_left t.sched ~extent:g.g_extent
            ->
            (* [capacity_left] reads the soft pointer, which the buffered
               group has not advanced yet; [g_bytes] accounts for it. *)
            g.g_chunks <- (g.g_bytes, flen) :: g.g_chunks;
            g.g_bufs <- (frame ^ pad) :: g.g_bufs;
            g.g_bytes <- g.g_bytes + padded;
            true
          | _ -> false
        in
        if extended then go rest
        else
          let* () = flush_group () in
          let* extent = allocate t ~need:padded ~privileged:false in
          group :=
            Some
              {
                g_extent = extent;
                g_start = Io_sched.soft_ptr t.sched ~extent;
                g_bytes = padded;
                g_bufs = [ frame ^ pad ];
                g_chunks = [ (0, flen) ];
              };
          go rest
    in
    let* () = go encoded in
    Ok (List.rev !results)
  end

let get t (loc : Locator.t) =
  Obs.Counter.incr t.m.m_gets;
  if loc.Locator.extent < 0 || loc.Locator.extent >= Io_sched.extent_count t.sched then
    Error (Stale_locator loc)
  else if loc.Locator.epoch <> Io_sched.epoch t.sched ~extent:loc.Locator.extent then begin
    Obs.Counter.incr t.m.m_stale;
    Error (Stale_locator loc)
  end
  else
    let* frame =
      Result.map_error (fun e -> Io e)
        (Cache.read t.cache ~extent:loc.Locator.extent ~off:loc.Locator.off
           ~len:loc.Locator.frame_len)
    in
    Result.map_error
      (fun e ->
        Obs.Counter.incr t.m.m_corrupt;
        Corrupt e)
      (Chunk_format.decode frame)

(* Scan one extent for decodable frames. Correct behaviour attempts a
   decode at every page boundary (so overlapping claims cannot hide later
   chunks); fault #10 skips by decoded frame length instead. Returns the
   chunks found, or the partial list plus [`Aborted] on a read error. *)
let scan t ~extent =
  let ps = Io_sched.page_size t.sched in
  let soft = Io_sched.soft_ptr t.sched ~extent in
  let found = ref [] in
  let f10 = Faults.enabled Faults.F10_uuid_magic_collision in
  let rec go pos =
    if pos + Chunk_format.prefix_len > soft then `Complete
    else
      match Io_sched.read t.sched ~extent ~off:pos ~len:Chunk_format.prefix_len with
      | Error (Io_sched.Io (Disk.Transient | Disk.Permanent)) -> `Aborted
      | Error _ -> `Complete
      | Ok prefix -> (
        match Chunk_format.decode_prefix prefix with
        | Error _ -> go (pos + ps)
        | Ok flen ->
          if pos + flen > soft then go (pos + ps)
          else (
            match Io_sched.read t.sched ~extent ~off:pos ~len:flen with
            | Error (Io_sched.Io (Disk.Transient | Disk.Permanent)) -> `Aborted
            | Error _ -> `Complete
            | Ok frame ->
              (* Fault #1: off-by-one for chunks whose payload is within a
                 byte of a page multiple — the scan under-reads the frame. *)
              let frame =
                if
                  Faults.enabled Faults.F1_reclaim_off_by_one
                  && (flen mod ps = 0 || flen mod ps = ps - 1)
                then begin
                  Faults.record_fired Faults.F1_reclaim_off_by_one;
                  String.sub frame 0 (flen - 1)
                end
                else frame
              in
              (match Chunk_format.decode ~check_crc:(not f10) frame with
              | Error _ ->
                Obs.Counter.incr t.m.m_scan_invalid;
                go (pos + ps)
              | Ok chunk ->
                Obs.Counter.incr t.m.m_scan_valid;
                let locator =
                  {
                    Locator.extent;
                    epoch = Io_sched.epoch t.sched ~extent;
                    off = pos;
                    frame_len = String.length frame;
                  }
                in
                found := (locator, chunk) :: !found;
                if f10 then begin
                  Faults.record_fired Faults.F10_uuid_magic_collision;
                  (* skip by frame length: "reclamation does not expect
                     overlapping chunks" *)
                  go (align_up (pos + flen) ps)
                end
                else go (pos + ps))))
  in
  let outcome = go 0 in
  (List.rev !found, outcome)

let reclaim t ~extent ~index_basis ~classify ~relocate =
  Obs.Counter.incr t.m.m_reclamations;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"chunk" "reclaim" [ ("extent", string_of_int extent) ];
  if t.open_ext = Some extent then t.open_ext <- None;
  t.reclaiming <- Some extent;
  Fun.protect
    ~finally:(fun () -> t.reclaiming <- None)
    (fun () ->
      let found, outcome = scan t ~extent in
      let proceed =
        match outcome with
        | `Complete -> Ok ()
        | `Aborted ->
          (* Fault #5: reclamation forgets chunks after a transient read IO
             error — the buggy code carries on with a partial scan. *)
          if Faults.enabled Faults.F5_reclaim_forgets_on_read_error then begin
            Faults.record_fired Faults.F5_reclaim_forgets_on_read_error;
            Ok ()
          end
          else Error (Io (Io_sched.Io Disk.Transient))
      in
      let* () = proceed in
      let rec evacuate evac_deps ref_deps = function
        | [] -> Ok (evac_deps, ref_deps)
        | (old_loc, chunk) :: rest -> (
          match classify chunk.Chunk_format.owner old_loc with
          | `Dead ->
            Obs.Counter.incr t.m.m_dropped;
            evacuate evac_deps ref_deps rest
          | `Live ->
            let* new_loc, new_dep =
              put t ~owner:chunk.Chunk_format.owner ~payload:chunk.Chunk_format.payload
            in
            let ref_dep = relocate chunk.Chunk_format.owner ~old_loc ~new_loc ~new_dep in
            Obs.Counter.incr t.m.m_evacuated;
            if Obs.tracing t.obs then
              Obs.emit t.obs ~layer:"chunk" "evacuate"
                [
                  ("from", string_of_int old_loc.Locator.extent);
                  ("to", string_of_int new_loc.Locator.extent);
                ];
            evacuate (new_dep :: evac_deps) (ref_dep :: ref_deps) rest)
      in
      let* evac_deps, ref_deps = evacuate [] [] found in
      (* The reset may be issued only once evacuations and the updated
         references are durable (section 2.1). Fault #7 drops the reference
         half, so a crash after the reset can leave the durable index
         pointing at scrubbed chunks. *)
      let input =
        if Faults.enabled Faults.F7_soft_hard_pointer_mismatch then begin
          Faults.record_fired Faults.F7_soft_hard_pointer_mismatch;
          Dep.all evac_deps
        end
        else Dep.all (index_basis :: (evac_deps @ ref_deps))
      in
      let* reset_dep =
        Result.map_error (fun e -> Io e) (Io_sched.reset t.sched ~extent ~input)
      in
      Cache.note_reset t.cache ~extent;
      Superblock.set_owner t.sb ~extent Superblock.Free ~dep:reset_dep;
      Ok reset_dep)

(* Leaked-extent audit: a data extent carrying bytes that no live reference
   reaches ([in_use]) and that is not the open append target was written,
   became unreachable, and was never reclaimed — its pages are leaked until
   some future reclamation happens to pick it. Reported per extent, to the
   attached page shadow (when any) and the [chunk.leaked_extent] counter. *)
let close t ~in_use =
  let ps = Io_sched.page_size t.sched in
  let leaked =
    List.filter_map
      (fun extent ->
        let soft = Io_sched.soft_ptr t.sched ~extent in
        if soft > 0 && t.open_ext <> Some extent && not (in_use extent) then
          Some (extent, (soft + ps - 1) / ps)
        else None)
      (Superblock.data_extents t.sb)
  in
  List.iter
    (fun (extent, pages) ->
      Obs.Counter.incr t.m.m_leaked;
      (match Disk.shadow (Io_sched.disk t.sched) with
      | Some s -> Sanitize.Page_shadow.report_leak s ~extent ~pages
      | None -> ());
      if Obs.tracing t.obs then
        Obs.emit t.obs ~layer:"chunk" "leaked_extent"
          [ ("extent", string_of_int extent); ("pages", string_of_int pages) ])
    leaked;
  t.open_ext <- None;
  leaked
