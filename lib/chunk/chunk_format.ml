open Util

type owner =
  | Shard of string
  | Index_run of int

let owner_equal a b =
  match a, b with
  | Shard k1, Shard k2 -> String.equal k1 k2
  | Index_run r1, Index_run r2 -> r1 = r2
  | (Shard _ | Index_run _), _ -> false

let pp_owner fmt = function
  | Shard key -> Format.fprintf fmt "shard %S" key
  | Index_run id -> Format.fprintf fmt "index run %d" id

let magic = "SC"

type chunk = {
  owner : owner;
  payload : string;
  uuid : Uuid.t;
}

let encode_owner w = function
  | Shard key ->
    Codec.Writer.u8 w 0;
    Codec.Writer.lstring w key
  | Index_run id ->
    Codec.Writer.u8 w 1;
    Codec.Writer.uint w id

let decode_owner r =
  let open Codec.Syntax in
  let* tag = Codec.Reader.u8 r in
  match tag with
  | 0 ->
    let+ key = Codec.Reader.lstring r in
    Shard key
  | 1 ->
    let+ id = Codec.Reader.uint r in
    Index_run id
  | _ -> Error (Codec.Invalid "owner tag")

let owner_len = function
  | Shard key -> 1 + 4 + String.length key
  | Index_run _ -> 1 + 8

(* magic (2) + frame_len (4) + crc (4) *)
let prefix_len = 10

let frame_len ~owner ~payload_len = prefix_len + owner_len owner + Uuid.size + payload_len + Uuid.size

let encode ~uuid ~owner ~payload =
  let total = frame_len ~owner ~payload_len:(String.length payload) in
  let w = Codec.Writer.create ~capacity:total () in
  Codec.Writer.raw_string w magic;
  Codec.Writer.u32 w (Int32.of_int total);
  Codec.Writer.u32 w (Crc32.digest_string payload);
  encode_owner w owner;
  Codec.Writer.raw_string w (Uuid.to_string uuid);
  Codec.Writer.raw_string w payload;
  Codec.Writer.raw_string w (Uuid.to_string uuid);
  let frame = Codec.Writer.contents w in
  assert (String.length frame = total);
  frame

let decode_prefix s =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string s in
  let* () = Codec.Reader.magic r magic in
  let* len32 = Codec.Reader.u32 r in
  let len = Int32.to_int len32 in
  if len < prefix_len + Uuid.size + Uuid.size + 1 then Error (Codec.Invalid "frame length")
  else Ok len

let decode ?(check_crc = true) frame =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string frame in
  let* () = Codec.Reader.magic r magic in
  let* len32 = Codec.Reader.u32 r in
  let total = Int32.to_int len32 in
  if total <> String.length frame then Error (Codec.Invalid "frame length mismatch")
  else
    let* crc = Codec.Reader.u32 r in
    let* owner = decode_owner r in
    let* head = Codec.Reader.raw r Uuid.size in
    let payload_len = total - Codec.Reader.pos r - Uuid.size in
    if payload_len < 0 then Error (Codec.Invalid "negative payload length")
    else
      let* payload = Codec.Reader.raw r payload_len in
      let* tail = Codec.Reader.raw r Uuid.size in
      if not (String.equal head tail) then Error (Codec.Invalid "uuid mismatch")
      else if check_crc && Crc32.digest_string payload <> crc then Error Codec.Bad_checksum
      else Ok { owner; payload; uuid = Uuid.of_string_exn head }
