open Util

type t = {
  extent : int;
  epoch : int;
  off : int;
  frame_len : int;
}

let equal a b =
  a.extent = b.extent && a.epoch = b.epoch && a.off = b.off && a.frame_len = b.frame_len

let compare = Stdlib.compare

let pp fmt t = Format.fprintf fmt "loc{e%d@%d+%d,epoch %d}" t.extent t.off t.frame_len t.epoch

let encode w t =
  Codec.Writer.uint w t.extent;
  Codec.Writer.uint w t.epoch;
  Codec.Writer.uint w t.off;
  Codec.Writer.uint w t.frame_len

let decode r =
  let open Codec.Syntax in
  let* extent = Codec.Reader.uint r in
  let* epoch = Codec.Reader.uint r in
  let* off = Codec.Reader.uint r in
  let+ frame_len = Codec.Reader.uint r in
  { extent; epoch; off; frame_len }
