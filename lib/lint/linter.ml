(* Static concurrency & determinism analyzer. One parsetree pass per file
   (compiler-libs.common, so the scan understands exactly the syntax the
   build does), then a whole-program aggregation: function summaries, a
   name-resolved call graph, the transitive lock-set fixpoint, the static
   acquisition-class graph, and the metric-name audit.

   The scan is deliberately syntactic — no typing, no cmt files — because
   it must run on any tree state, including one that does not build yet.
   Where syntax is ambiguous the analysis over-approximates (every
   identifier reference is a potential call) and the dynamic cross-check
   in [analyze] bounds the blindness in the other direction: an edge the
   harness observed that the extractor missed fails the lint. *)

open Parsetree
open Asttypes

type finding = {
  rule : string;
  file : string;
  line : int;
  symbol : string;
  message : string;
}

let pp_finding fmt f =
  if f.line > 0 then
    Format.fprintf fmt "%s:%d: [%s] %s: %s" f.file f.line f.rule f.symbol f.message
  else Format.fprintf fmt "%s: [%s] %s: %s" f.file f.rule f.symbol f.message

(* {2 Configuration} *)

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let allowlisted prefixes file = List.exists (fun p -> starts_with ~prefix:p file) prefixes

(* Raw Atomic/Mutex/Condition/Domain live only behind the validated
   wrappers; everything else goes through Conc/Par/Obs or a waiver. *)
let primitive_allow = [ "lib/conc/"; "lib/par/"; "lib/smc/"; "lib/obs/" ]
let primitive_modules = [ "Atomic"; "Mutex"; "Condition"; "Domain" ]

(* Hashtbl iteration order is an implementation detail; code whose output
   is validated must sort. The wrapper layers are exempt (their iteration
   feeds sorted snapshots or id-keyed graphs). *)
let hashtbl_allow = primitive_allow

(* Only the bench layer may read wall clocks freely; everything else —
   experiments, benchrec's record stamps — routes through Util.Wallclock
   (one waiver line), the single funnel. *)
let wallclock_allow = [ "bench/" ]

(* The rwlock implementation file: its model harnesses acquire locks that
   sit beneath the class discipline (the lock under test). *)
let lockgraph_skip = [ "lib/conc/rwlock.ml" ]

(* The registry implementation itself registers nothing by name. *)
let metric_skip = [ "lib/obs/" ]

(* Classes whose same-class nesting follows a documented internal order
   (shard locks: ascending index), so a self-edge is not a deadlock. *)
let ordered_classes = [ "shard" ]

(* Map the syntactic path of a lock expression to its class in the global
   order maint < shard < stack < cache. Unclassified acquisitions are
   findings: the table must grow with the code. *)
let classify_lock path =
  match path with
  | [] -> None
  | _ ->
    let last = List.nth path (List.length path - 1) in
    if List.mem "shards" path || List.mem "locks" path then Some "shard"
    else if last = "stack" || last = "stack_lock" then Some "stack"
    else if last = "maint" || last = "maint_lock" then Some "maint"
    else if last = "run_lock" then Some "lsm_run"
    else if last = "trace_lock" then Some "trace"
    else if last = "lock" then Some "cache"
    else None

(* {2 Per-file scan} *)

type fn_info = {
  f_key : string list;  (* Module path + nested binding names *)
  f_file : string;
  mutable f_acquires : (string list * string * int) list;  (* held, class, line *)
  mutable f_calls : (string list * string list) list;  (* held, callee components *)
}

type scan = {
  s_file : string;
  mutable s_findings : finding list;
  mutable s_fns : fn_info list;
  mutable s_aliases : (string * string list) list;
      (* [module X = A.B] or [module X = F (...)]: X -> target components,
         so calls through the alias resolve to the target's summaries *)
  mutable s_registered : (string * int) list;
  mutable s_refs : (string * int) list;
  mutable s_dynamic_reg : int;
}

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let strip_stdlib = function "Stdlib" :: rest -> rest | l -> l

let rec is_function_expr e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) -> is_function_expr e
  | _ -> false

(* [t.shards.(i).lock] -> ["t"; "shards"; "lock"]: field chains keep their
   labels, array indexing is looked through. *)
let rec flatten_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (Longident.flatten txt)
  | Pexp_field (inner, { txt; _ }) ->
    Option.map (fun p -> p @ [ Longident.last txt ]) (flatten_path inner)
  | Pexp_apply (head, (Nolabel, a) :: _) -> (
    match head.pexp_desc with
    | Pexp_ident { txt; _ } -> (
      match strip_stdlib (Longident.flatten txt) with
      | [ ("Array" | "String"); "get" ] -> flatten_path a
      | _ -> None)
    | _ -> None)
  | _ -> None

let rec string_list_of e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> Some []
  | Pexp_construct
      ({ txt = Longident.Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ }) -> (
    match (hd.pexp_desc, string_list_of tl) with
    | Pexp_constant (Pconst_string (s, _, _)), Some rest -> Some (s :: rest)
    | _ -> None)
  | _ -> None

type acq = {
  a_class : string option;
  a_callback : expression option;
  a_self_edge : bool;  (* with_all_*: acquires every same-class lock, ascending *)
  a_others : expression list;
  a_line : int;
  a_lock_path : string list;
}

let recognize_acquisition head args line =
  match head.pexp_desc with
  | Pexp_ident { txt; _ } -> (
    let comps = Longident.flatten txt in
    let positional = List.filter_map (function Nolabel, a -> Some a | _ -> None) args in
    let labelled = List.filter_map (function Nolabel, _ -> None | _, a -> Some a) args in
    let last_positional () =
      match List.rev positional with [] -> None | cb :: _ -> Some cb
    in
    let all_but_callback cb =
      labelled @ List.filter (fun a -> a != cb) positional
    in
    match List.rev comps with
    | ("with_read" | "with_write") :: ("Rwlock" | "Model") :: _ -> (
      match positional with
      | lock :: _ ->
        let p = Option.value ~default:[] (flatten_path lock) in
        let cb = match positional with [ _; cb ] -> Some cb | _ -> None in
        let others =
          match cb with Some cb -> all_but_callback cb | None -> labelled @ positional
        in
        Some
          {
            a_class = classify_lock p;
            a_callback = cb;
            a_self_edge = false;
            a_others = others;
            a_line = line;
            a_lock_path = p;
          }
      | [] -> None)
    | ("with_key_read" | "with_key_write" | "with_shard_write") :: "Shard_table" :: _ -> (
      match last_positional () with
      | Some cb when List.length positional >= 2 ->
        Some
          {
            a_class = Some "shard";
            a_callback = Some cb;
            a_self_edge = false;
            a_others = all_but_callback cb;
            a_line = line;
            a_lock_path = [ "shard_table" ];
          }
      | _ -> None)
    | ("with_all_read" | "with_all_write") :: "Shard_table" :: _ -> (
      match last_positional () with
      | Some cb when List.length positional >= 2 ->
        Some
          {
            a_class = Some "shard";
            a_callback = Some cb;
            a_self_edge = true;
            a_others = all_but_callback cb;
            a_line = line;
            a_lock_path = [ "shard_table" ];
          }
      | _ -> None)
    | _ -> None)
  | _ -> None

(* The head module path of a module expression: an identifier, or the
   functor being applied. [module Default = Make (struct ... end)] yields
   [Some ["Make"]], so [Default.get] can resolve into [Make]'s bodies. *)
let rec module_head me =
  match me.pmod_desc with
  | Pmod_ident { txt; _ } -> Some (Longident.flatten txt)
  | Pmod_apply (f, _) -> module_head f
  | Pmod_constraint (me, _) -> module_head me
  | _ -> None

let scan_file ~path ~source =
  let sc =
    {
      s_file = path;
      s_findings = [];
      s_fns = [];
      s_aliases = [];
      s_registered = [];
      s_refs = [];
      s_dynamic_reg = 0;
    }
  in
  let add_finding rule line symbol message =
    sc.s_findings <- { rule; file = path; line; symbol; message } :: sc.s_findings
  in
  match
    let lexbuf = Lexing.from_string source in
    Location.init lexbuf path;
    Parse.implementation lexbuf
  with
  | exception _ ->
    add_finding "parse" 0 (Filename.basename path) "file does not parse; nothing was checked";
    sc
  | str ->
    let lockgraph_on = not (List.mem path lockgraph_skip) in
    let metric_on = not (allowlisted metric_skip path) in
    let mod_path = ref [ module_name_of_path path ] in
    let fn_names = ref [] in
    let toplevel =
      { f_key = !mod_path @ [ "(file)" ]; f_file = path; f_acquires = []; f_calls = [] }
    in
    sc.s_fns <- [ toplevel ];
    let fn = ref toplevel in
    let held = ref [] in
    let local_lists : (string, string list) Hashtbl.t = Hashtbl.create 8 in
    let pending_expected = ref [] in
    let check_banned line comps =
      let c = strip_stdlib comps in
      let sym = String.concat "." c in
      (match c with
      | m :: _ :: _ when List.mem m primitive_modules ->
        if not (allowlisted primitive_allow path) then
          add_finding "primitive" line sym
            "raw concurrency primitive outside lib/{conc,par,smc,obs}; use the validated \
             Conc wrappers or record a waiver"
      | _ -> ());
      (match c with
      | "Random" :: rest
        when match List.rev rest with
             | ("self_init" | "make_self_init") :: _ -> true
             | _ -> false ->
        add_finding "random" line sym
          "nondeterministic seeding; thread an explicit Util.Rng seed instead"
      | _ -> ());
      match List.rev c with
      | "gettimeofday" :: "Unix" :: _
      | "time" :: "Unix" :: _
      | "time" :: "Sys" :: _
      | "gmtime" :: "Unix" :: _
      | "localtime" :: "Unix" :: _ ->
        if not (allowlisted wallclock_allow path) then
          add_finding "wallclock" line sym
            "wall-clock read outside bench//lib/benchrec; route timing through \
             Util.Wallclock"
      | ("iter" | "fold") :: "Hashtbl" :: _ ->
        if not (allowlisted hashtbl_allow path) then
          add_finding "hashtbl" line sym
            "unordered Hashtbl iteration in a validated-output path; iterate \
             Util.Tbl.sorted_bindings or waive an order-insensitive use"
      | _ -> ()
    in
    let line_of_expr e = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
    let handle_metrics head args =
      if metric_on then
        match head.pexp_desc with
        | Pexp_ident { txt; _ } -> (
          let comps = strip_stdlib (Longident.flatten txt) in
          let last_string_arg () =
            match List.rev (List.filter_map (function Nolabel, a -> Some a | _ -> None) args) with
            | { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); pexp_loc; _ } :: _ ->
              `Lit (s, pexp_loc.Location.loc_start.Lexing.pos_lnum)
            | _ :: _ -> `Dyn
            | [] -> `None
          in
          match List.rev comps with
          | ("counter" | "gauge" | "histogram") :: "Obs" :: _ | "hit" :: "Coverage" :: _ -> (
            match last_string_arg () with
            | `Lit (s, l) -> sc.s_registered <- (s, l) :: sc.s_registered
            | `Dyn -> sc.s_dynamic_reg <- sc.s_dynamic_reg + 1
            | `None -> ())
          | ("counter_value" | "find") :: "Obs" :: _ | "count" :: "Coverage" :: _ -> (
            match last_string_arg () with
            | `Lit (s, l) -> sc.s_refs <- (s, l) :: sc.s_refs
            | `Dyn | `None -> ())
          | "blind_spots" :: "Coverage" :: _ ->
            List.iter
              (fun (label, a) ->
                if label = Labelled "expected" then
                  match string_list_of a with
                  | Some names ->
                    let l = a.pexp_loc.Location.loc_start.Lexing.pos_lnum in
                    sc.s_refs <- List.map (fun n -> (n, l)) names @ sc.s_refs
                  | None -> (
                    match a.pexp_desc with
                    | Pexp_ident { txt = Longident.Lident name; _ } ->
                      pending_expected :=
                        (name, a.pexp_loc.Location.loc_start.Lexing.pos_lnum)
                        :: !pending_expected
                    | _ -> ()))
              args
          | _ -> ())
        | _ -> ()
    in
    let super = Ast_iterator.default_iterator in
    let expr it e =
      match e.pexp_desc with
      | Pexp_apply (head, args) -> (
        match recognize_acquisition head args (line_of_expr e) with
        | Some acq when lockgraph_on -> (
          match acq.a_class with
          | None ->
            add_finding "lockgraph" acq.a_line
              (String.concat "." acq.a_lock_path)
            "unclassified lock acquisition; extend Linter.classify_lock (or fix the \
               lock's name)";
            super.expr it e
          | Some cls -> (
            !fn.f_acquires <- (!held, cls, acq.a_line) :: !fn.f_acquires;
            if acq.a_self_edge then
              !fn.f_acquires <- (cls :: !held, cls, acq.a_line) :: !fn.f_acquires;
            List.iter (it.expr it) acq.a_others;
            match acq.a_callback with
            | Some cb when is_function_expr cb ->
              held := cls :: !held;
              it.expr it cb;
              held := List.tl !held
            | Some cb ->
              (match cb.pexp_desc with
              | Pexp_ident { txt; _ } ->
                !fn.f_calls <- (cls :: !held, Longident.flatten txt) :: !fn.f_calls
              | _ -> ());
              held := cls :: !held;
              it.expr it cb;
              held := List.tl !held
            | None -> ()))
        | _ ->
          handle_metrics head args;
          super.expr it e)
      | Pexp_ident { txt; _ } ->
        check_banned (line_of_expr e) (Longident.flatten txt);
        !fn.f_calls <- (!held, Longident.flatten txt) :: !fn.f_calls;
        super.expr it e
      | _ -> super.expr it e
    in
    let rec pattern_var p =
      match p.ppat_desc with
      | Ppat_var { txt; _ } -> Some txt
      | Ppat_constraint (p, _) -> pattern_var p
      | _ -> None
    in
    let value_binding it vb =
      (match pattern_var vb.pvb_pat with
      | Some name -> (
        match string_list_of vb.pvb_expr with
        | Some l -> Hashtbl.replace local_lists name l
        | None -> ())
      | None -> ());
      match pattern_var vb.pvb_pat with
      | Some name when is_function_expr vb.pvb_expr ->
        let saved_fn = !fn and saved_names = !fn_names and saved_held = !held in
        fn_names := !fn_names @ [ name ];
        let f =
          { f_key = !mod_path @ !fn_names; f_file = path; f_acquires = []; f_calls = [] }
        in
        sc.s_fns <- f :: sc.s_fns;
        fn := f;
        (* A function body runs when called, not where it is defined. *)
        held := [];
        super.value_binding it vb;
        fn := saved_fn;
        fn_names := saved_names;
        held := saved_held
      | _ -> super.value_binding it vb
    in
    let module_binding it mb =
      let name = match mb.pmb_name.txt with Some n -> n | None -> "_" in
      (match module_head mb.pmb_expr with
      | Some target when target <> [ name ] -> sc.s_aliases <- (name, target) :: sc.s_aliases
      | _ -> ());
      let saved = !mod_path in
      mod_path := !mod_path @ [ name ];
      super.module_binding it mb;
      mod_path := saved
    in
    let typ it t =
      (match t.ptyp_desc with
      | Ptyp_constr ({ txt; _ }, _) -> (
        match strip_stdlib (Longident.flatten txt) with
        | (m :: _ :: _) as c when List.mem m primitive_modules ->
          if not (allowlisted primitive_allow path) then
            add_finding "primitive" t.ptyp_loc.Location.loc_start.Lexing.pos_lnum
              (String.concat "." c)
              "raw concurrency primitive type outside lib/{conc,par,smc,obs}; use the \
               validated Conc wrappers or record a waiver"
        | _ -> ())
      | _ -> ());
      super.typ it t
    in
    let it = { super with expr; value_binding; module_binding; typ } in
    it.structure it str;
    (* Resolve [blind_spots ~expected:name] against file-local list
       bindings, now that the whole file has been walked. *)
    List.iter
      (fun (name, line) ->
        match Hashtbl.find_opt local_lists name with
        | Some names -> sc.s_refs <- List.map (fun n -> (n, line)) names @ sc.s_refs
        | None -> ())
      !pending_expected;
    sc

(* {2 Whole-program analysis} *)

module SS = Set.Make (String)

module SP = Set.Make (struct
  type t = string * string

  let compare = compare
end)

type report = {
  findings : finding list;
  static_edges : (string * string) list;
  edge_sources : ((string * string) * string) list;
  static_only_edges : (string * string) list;
  files_scanned : int;
  functions : int;
  metrics_registered : int;
  metric_refs : int;
}

let rec is_suffix small big =
  let ls = List.length small and lb = List.length big in
  if ls > lb then false
  else if ls = lb then small = big
  else match big with [] -> false | _ :: rest -> is_suffix small rest

let key_str k = String.concat "." k

(* Longest shared prefix length of two component lists. *)
let rec shared_prefix a b =
  match (a, b) with
  | x :: a', y :: b' when x = y -> 1 + shared_prefix a' b'
  | _ -> 0

let analyze ?(dynamic_edges = []) scans =
  let findings = ref (List.concat_map (fun s -> s.s_findings) scans) in
  let add_global rule symbol message =
    findings := { rule; file = "(global)"; line = 0; symbol; message } :: !findings
  in
  let fns = List.concat_map (fun s -> s.s_fns) scans in
  let by_last : (string, fn_info list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun f ->
      match List.rev f.f_key with
      | last :: _ when last <> "(file)" ->
        Hashtbl.replace by_last last (f :: Option.value ~default:[] (Hashtbl.find_opt by_last last))
      | _ -> ())
    fns;
  (* Resolve a call-site longident to candidate function summaries:
     qualified names by component-suffix match in either direction (the
     site may carry the library wrapper module, the summary the file
     module); bare names within the same file, preferring the candidate
     sharing the longest key prefix with the caller (inner scope wins). *)
  (* module-alias map: alias name -> possible target component lists,
     from every file ([module Default = Make (...)], [module I = Lsm.Index]). *)
  let aliases : (string, string list list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun (name, target) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt aliases name) in
          if not (List.mem target prev) then Hashtbl.replace aliases name (target :: prev))
        s.s_aliases)
    scans;
  (* Expand the leading module of a call path through aliases, a few
     levels deep ([Default.get] -> [Make.get]). *)
  let expand_aliases comps =
    let seen = ref [] in
    let rec go comps depth =
      if List.mem comps !seen || depth > 3 then ()
      else begin
        seen := comps :: !seen;
        match comps with
        | head :: rest when rest <> [] ->
          List.iter
            (fun target -> go (target @ rest) (depth + 1))
            (Option.value ~default:[] (Hashtbl.find_opt aliases head))
        | _ -> ()
      end
    in
    go comps 0;
    !seen
  in
  let resolve_cache : (string, fn_info list) Hashtbl.t = Hashtbl.create 1024 in
  let resolve site comps =
    match List.rev comps with
    | [] -> []
    | last :: _ -> (
      let cache_key = key_str site.f_key ^ "|" ^ key_str comps in
      match Hashtbl.find_opt resolve_cache cache_key with
      | Some r -> r
      | None ->
        let candidates = Option.value ~default:[] (Hashtbl.find_opt by_last last) in
        let r =
          if List.length comps >= 2 then
            let variants = expand_aliases comps in
            List.filter
              (fun f ->
                List.exists
                  (fun v -> is_suffix v f.f_key || is_suffix f.f_key v)
                  variants)
              candidates
          else begin
            (* Single-component name: same-file resolution. The candidate
               must be lexically visible from the call site — its scope
               (key minus the name) a prefix of the caller's key — or a
               recursive local [go] would bind to an unrelated local of
               the same name elsewhere in the file. [site] itself stays a
               candidate so recursion resolves to the right summary. *)
            let same_file = List.filter (fun f -> f.f_file = site.f_file) candidates in
            let scope f = List.rev (List.tl (List.rev f.f_key)) in
            let rec is_prefix p k =
              match (p, k) with
              | [], _ -> true
              | x :: p', y :: k' -> x = y && is_prefix p' k'
              | _ -> false
            in
            let visible = List.filter (fun f -> is_prefix (scope f) site.f_key) same_file in
            let local = if visible <> [] then visible else same_file in
            match local with
            | [] -> []
            | _ ->
              let best =
                List.fold_left
                  (fun acc f -> max acc (shared_prefix site.f_key f.f_key))
                  0 local
              in
              List.filter (fun f -> shared_prefix site.f_key f.f_key = best) local
          end
        in
        Hashtbl.replace resolve_cache cache_key r;
        r)
  in
  (* Transitive lock classes per function: direct acquisitions, then a
     fixpoint over resolved calls. *)
  let trans : (string, SS.t ref) Hashtbl.t = Hashtbl.create 256 in
  let trans_of f =
    match Hashtbl.find_opt trans (key_str f.f_key ^ "@" ^ f.f_file) with
    | Some r -> r
    | None ->
      let r = ref SS.empty in
      Hashtbl.replace trans (key_str f.f_key ^ "@" ^ f.f_file) r;
      r
  in
  List.iter
    (fun f ->
      let r = trans_of f in
      List.iter (fun (_, cls, _) -> r := SS.add cls !r) f.f_acquires)
    fns;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun f ->
        let r = trans_of f in
        List.iter
          (fun (_, comps) ->
            List.iter
              (fun callee ->
                let c = !(trans_of callee) in
                if not (SS.subset c !r) then begin
                  r := SS.union !r c;
                  changed := true
                end)
              (resolve f comps))
          f.f_calls)
      fns
  done;
  (* LINT_DEBUG=1: dump every function whose transitive lock set is
     non-empty, with its resolved calls — the fixpoint made visible. *)
  if Sys.getenv_opt "LINT_DEBUG" <> None then
    List.iter
      (fun f ->
        let t = !(trans_of f) in
        if not (SS.is_empty t) then begin
          Printf.eprintf "fn %s@%s: {%s}\n" (key_str f.f_key) f.f_file
            (String.concat "," (SS.elements t));
          List.iter
            (fun (_, comps) ->
              List.iter
                (fun callee ->
                  if not (SS.is_empty !(trans_of callee)) then
                    Printf.eprintf "    calls %s -> %s@%s {%s}\n" (key_str comps)
                      (key_str callee.f_key) callee.f_file
                      (String.concat "," (SS.elements !(trans_of callee))))
                (resolve f comps))
            f.f_calls
        end)
      fns;
  (* The static acquisition-class graph, with one provenance witness per
     edge (first contributor wins) so cycle findings are debuggable. *)
  let edges = ref SP.empty in
  let sources : (string * string, string) Hashtbl.t = Hashtbl.create 16 in
  let add_edge h c why =
    if not (SP.mem (h, c) !edges) then begin
      edges := SP.add (h, c) !edges;
      Hashtbl.replace sources (h, c) why
    end
  in
  List.iter
    (fun f ->
      List.iter
        (fun (held, cls, line) ->
          let why = Printf.sprintf "%s: %s (line %d)" f.f_file (key_str f.f_key) line in
          List.iter (fun h -> add_edge h cls why) held)
        f.f_acquires;
      List.iter
        (fun (held, comps) ->
          if held <> [] then
            List.iter
              (fun callee ->
                let why =
                  Printf.sprintf "%s: %s calls %s -> %s" f.f_file (key_str f.f_key)
                    (key_str comps) (key_str callee.f_key)
                in
                SS.iter (fun c -> List.iter (fun h -> add_edge h c why) held) !(trans_of callee))
              (resolve f comps))
        f.f_calls)
    fns;
  let static_edges = SP.elements !edges in
  let edge_sources =
    List.map (fun e -> (e, Option.value ~default:"?" (Hashtbl.find_opt sources e))) static_edges
  in
  (* Cycles: self-edges outside the ordered classes, and multi-class
     strongly connected components. *)
  List.iter
    (fun (a, b) ->
      if a = b && not (List.mem a ordered_classes) then
        add_global "lockgraph" (a ^ "->" ^ b)
          "same-class lock nesting without a documented internal order")
    static_edges;
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) static_edges) in
  let succs n = List.filter_map (fun (a, b) -> if a = n && b <> n then Some b else None) static_edges in
  (* Iterative reachability: a cycle exists iff some node reaches itself
     through at least one edge. Small graph, so O(n^2) is fine. *)
  List.iter
    (fun n ->
      let seen = ref SS.empty in
      let rec go m =
        List.iter
          (fun s ->
            if s = n then
              add_global "lockgraph"
                (n ^ "->...->" ^ n)
                "cycle in the static lock-order graph: potential deadlock"
            else if not (SS.mem s !seen) then begin
              seen := SS.add s !seen;
              go s
            end)
          (succs m)
      in
      go n)
    nodes;
  (* Dynamic cross-check: every edge a validate run observed must be in
     the static graph; a miss means the extractor is blind to a real
     path. Static-only edges are reported (not findings): paths no
     harness has exercised. *)
  let dyn = SP.of_list dynamic_edges in
  SP.iter
    (fun (a, b) ->
      if not (SP.mem (a, b) !edges) then
        add_global "lockgraph" (a ^ "->" ^ b)
          "dynamically observed acquisition edge missing from the static graph (the \
           extractor is blind to a real code path)")
    dyn;
  let static_only_edges =
    if SP.is_empty dyn then [] else List.filter (fun e -> not (SP.mem e dyn)) static_edges
  in
  (* Metric audit. *)
  let registered =
    List.fold_left
      (fun acc s -> List.fold_left (fun acc (n, _) -> SS.add n acc) acc s.s_registered)
      SS.empty scans
  in
  let ref_count = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun (name, line) ->
          incr ref_count;
          if not (SS.mem name registered) then
            findings :=
              {
                rule = "metric";
                file = s.s_file;
                line;
                symbol = name;
                message =
                  "referenced metric name is registered nowhere in the tree (typo or dead \
                   gauge): a blind spot the coverage report cannot see";
              }
              :: !findings)
        s.s_refs)
    scans;
  let sorted =
    List.sort_uniq
      (fun a b -> compare (a.file, a.line, a.rule, a.symbol) (b.file, b.line, b.rule, b.symbol))
      !findings
  in
  {
    findings = sorted;
    static_edges;
    edge_sources;
    static_only_edges;
    files_scanned = List.length scans;
    functions = List.length fns;
    metrics_registered = SS.cardinal registered;
    metric_refs = !ref_count;
  }

(* {2 Waivers} *)

type waiver = {
  w_rule : string;
  w_file : string;
  w_symbol : string;
  w_reason : string;
}

let split_ws s =
  String.split_on_char ' ' s |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun x -> x <> "")

(* Index of the first occurrence of [sub] in [s], if any. *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let parse_waivers source =
  let lines = String.split_on_char '\n' source in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let t = String.trim line in
      if t = "" || t.[0] = '#' then go (n + 1) acc rest
      else
        let head, reason =
          match find_sub t " -- " with
          | Some i ->
            ( String.sub t 0 i,
              String.trim (String.sub t (i + 4) (String.length t - i - 4)) )
          | None -> (t, "")
        in
        if reason = "" then
          Error (Printf.sprintf "lint/waivers:%d: missing ' -- <justification>'" n)
        else
          (match split_ws head with
          | [ w_rule; w_file; w_symbol ] ->
            go (n + 1) ({ w_rule; w_file; w_symbol; w_reason = reason } :: acc) rest
          | _ ->
            Error
              (Printf.sprintf
                 "lint/waivers:%d: expected '<rule> <path> <symbol> -- <justification>'" n))
  in
  go 1 [] lines

let apply_waivers ~waivers findings =
  let used = Hashtbl.create 16 in
  let matches w f = w.w_rule = f.rule && w.w_file = f.file && w.w_symbol = f.symbol in
  let kept =
    List.filter
      (fun f ->
        match List.find_opt (fun w -> matches w f) waivers with
        | Some w ->
          Hashtbl.replace used (w.w_rule, w.w_file, w.w_symbol) ();
          false
        | None -> true)
      findings
  in
  let stale =
    List.filter (fun w -> not (Hashtbl.mem used (w.w_rule, w.w_file, w.w_symbol))) waivers
  in
  (kept, stale)

(* {2 Dynamic graph files} *)

let parse_dynamic_graph source =
  String.split_on_char '\n' source
  |> List.filter_map (fun line ->
         let t = String.trim line in
         if t = "" || t.[0] = '#' then None
         else match split_ws t with [ a; b ] -> Some (a, b) | _ -> None)

(* {2 Tree driving} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let collect_files ~root =
  let acc = ref [] in
  let rec go rel abs =
    if Sys.is_directory abs then begin
      let entries = Sys.readdir abs in
      Array.sort compare entries;
      Array.iter
        (fun name ->
          if name <> "" && name.[0] <> '.' && name <> "_build" && name <> "_opam" then
            go (rel ^ "/" ^ name) (Filename.concat abs name))
        entries
    end
    else if Filename.check_suffix abs ".ml" then acc := (rel, read_file abs) :: !acc
  in
  List.iter
    (fun d ->
      let abs = Filename.concat root d in
      if Sys.file_exists abs && Sys.is_directory abs then go d abs)
    [ "lib"; "bin"; "bench" ];
  List.rev !acc

let run ~root ?waivers_path ?dynamic_graph_path () =
  let files = collect_files ~root in
  let scans = List.map (fun (p, src) -> scan_file ~path:p ~source:src) files in
  let dynamic_edges =
    match dynamic_graph_path with Some p -> parse_dynamic_graph (read_file p) | None -> []
  in
  let report = analyze ~dynamic_edges scans in
  let waivers, waiver_findings =
    let path =
      match waivers_path with
      | Some p -> Some p
      | None ->
        let p = Filename.concat root "lint/waivers" in
        if Sys.file_exists p then Some p else None
    in
    match path with
    | None -> ([], [])
    | Some p -> (
      match parse_waivers (read_file p) with
      | Ok ws -> (ws, [])
      | Error msg ->
        ( [],
          [
            {
              rule = "parse";
              file = "lint/waivers";
              line = 0;
              symbol = "waivers";
              message = msg;
            };
          ] ))
  in
  let kept, stale = apply_waivers ~waivers report.findings in
  let stale_findings =
    List.map
      (fun w ->
        {
          rule = "stale-waiver";
          file = w.w_file;
          line = 0;
          symbol = w.w_symbol;
          message = "waiver matched no finding (" ^ w.w_rule ^ "); delete it: " ^ w.w_reason;
        })
      stale
  in
  let final =
    List.sort
      (fun a b -> compare (a.file, a.line, a.rule, a.symbol) (b.file, b.line, b.rule, b.symbol))
      (kept @ waiver_findings @ stale_findings)
  in
  (final, report, stale)
