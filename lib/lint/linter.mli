(** Static concurrency & determinism analyzer (ISSUE 7; paper section 8.3).

    Every dynamic checker in this repository — the [Smc] schedule explorer,
    the FastTrack race monitor, the lock-order sanitizer, the racing-domain
    conformance gates — only sees the call sites a harness happens to
    drive. This module closes the blind spot with a whole-tree parsetree
    scan (via [compiler-libs.common]) that checks {e every} call site on
    {e every} build:

    - {b primitive confinement}: raw [Atomic.*]/[Mutex.*]/[Condition.*]/
      [Domain.*] references are allowed only inside the validated-wrapper
      layers ([lib/conc], [lib/par], [lib/smc], [lib/obs]); everything
      else must go through [Conc.Rwlock]/[Conc.Shard_table]-style wrappers
      or carry a waiver;
    - {b static lock-order graph}: [Rwlock.with_read]/[with_write] (real
      and [Model]) and [Shard_table.with_*] acquisition nesting is
      extracted per function, propagated through a name-resolved call
      graph, and the resulting class graph (shard < stack < cache, ...)
      must be acyclic. A dynamic edge list exported by
      [validate --shared --lint-graph] can be cross-checked: every
      dynamically observed edge must appear statically, otherwise the
      extractor is blind;
    - {b determinism lints}: [Random.self_init], wall-clock reads
      ([Unix.gettimeofday]/[Unix.time]/[Sys.time]) and order-fragile
      [Hashtbl.iter]/[Hashtbl.fold] outside their allowlisted homes
      ([bench/], [lib/benchrec], and the sanctioned [Util.Wallclock] /
      [Util.Tbl] helpers via waiver);
    - {b Obs blind-spot audit}: every metric name referenced by
      [Obs.counter_value]/[Obs.find]/[Coverage.count]/
      [Coverage.blind_spots ~expected] must be registered somewhere in the
      tree by [Obs.counter]/[gauge]/[histogram]/[Coverage.hit]. *)

type finding = {
  rule : string;
      (** ["primitive"], ["lockgraph"], ["random"], ["wallclock"],
          ["hashtbl"], ["metric"], ["parse"] or ["stale-waiver"] *)
  file : string;  (** repo-relative path, or ["(global)"] for graph-level findings *)
  line : int;  (** 0 for graph-level findings *)
  symbol : string;  (** offending identifier, metric name or ["a->b"] edge *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit

(** Everything harvested from one source file. *)
type scan

(** [scan_file ~path ~source] — parse and scan one implementation file.
    [path] must be repo-relative ([lib/store/store.ml]); it selects the
    per-rule allowlists and the file's root module name. Unparseable
    sources yield a single ["parse"] finding instead of raising. *)
val scan_file : path:string -> source:string -> scan

type report = {
  findings : finding list;  (** sorted by file, line, rule *)
  static_edges : (string * string) list;  (** lock-class acquisition edges *)
  edge_sources : ((string * string) * string) list;
      (** one provenance witness per static edge: the function (and
          acquisition line, or call chain) that first contributed it *)
  static_only_edges : (string * string) list;
      (** static edges absent from the dynamic graph: paths the harness
          never exercised (informational, not findings) *)
  files_scanned : int;
  functions : int;
  metrics_registered : int;
  metric_refs : int;
}

(** [analyze ?dynamic_edges scans] — aggregate per-file scans into the
    whole-program report: build function summaries, run the transitive
    lock-set fixpoint, emit the class graph, detect cycles (self-edges on
    classes with a documented internal order — shard, ascending — are
    allowed), cross-check [dynamic_edges] (every dynamic edge must appear
    statically) and audit metric references against registrations. *)
val analyze : ?dynamic_edges:(string * string) list -> scan list -> report

(** {2 Waivers}

    One waiver per line:
    [<rule> <path> <symbol> -- <justification>]. Blank lines and [#]
    comments are skipped. A waiver matches a finding when all three fields
    are equal (the justification is for the reader). Unused waivers are
    reported as ["stale-waiver"] findings so the file cannot rot. *)

type waiver = {
  w_rule : string;
  w_file : string;
  w_symbol : string;
  w_reason : string;
}

(** [parse_waivers source] — [Error msg] on a malformed line. *)
val parse_waivers : string -> (waiver list, string) result

(** [apply_waivers ~waivers findings] — [(kept, stale)]: findings not
    covered by a waiver, and waivers that matched nothing. *)
val apply_waivers : waivers:waiver list -> finding list -> finding list * waiver list

(** {2 Dynamic graph files}

    The [validate --shared --lint-graph FILE] export: one [held acquired]
    class pair per line, [#] comments skipped. *)
val parse_dynamic_graph : string -> (string * string) list

(** {2 Tree driving} *)

(** [collect_files ~root] — repo-relative path and contents of every [.ml]
    file under [lib/], [bin/] and [bench/] (skipping [_build]-style
    directories), sorted by path. [test/] is intentionally out of scope:
    tests drive raw primitives and clocks on purpose. *)
val collect_files : root:string -> (string * string) list

(** [run ~root ?waivers_path ?dynamic_graph_path ()] — scan the tree and
    return the post-waiver findings plus the report and stale waivers.
    [waivers_path] defaults to [<root>/lint/waivers] when that file
    exists. *)
val run :
  root:string ->
  ?waivers_path:string ->
  ?dynamic_graph_path:string ->
  unit ->
  finding list * report * waiver list
