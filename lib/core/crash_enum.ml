module S = Harness.S

type stats = {
  states : int;
  truncated : bool;
  violations : int;
  first_violation : string option;
}

let pp_stats fmt s =
  Format.fprintf fmt "%d crash states%s, %d violations" s.states
    (if s.truncated then " (truncated)" else "")
    s.violations

(* One candidate crash state: per extent, how many queued writes persist
   fully, plus an optional torn byte-prefix of the next write. *)
type choice = {
  full : Dep.write list;  (** persisted whole, in queue order *)
  torn : (Dep.write * int) option;  (** write persisted only up to [bytes] *)
}

let page_boundaries ~page_size (w : Dep.write) =
  match w.Dep.kind with
  | Dep.Reset _ -> []
  | Dep.Append { off; data } ->
    let len = String.length data in
    let first = ((off / page_size) + 1) * page_size in
    let rec go b acc = if b >= off + len then List.rev acc else go (b + page_size) ((b - off) :: acc) in
    go first []

(* All prefix choices for one extent queue. *)
let extent_choices ~page_size ~include_torn queue =
  let rec prefixes taken rest acc =
    let acc = { full = List.rev taken; torn = None } :: acc in
    match rest with
    | [] -> acc
    | w :: rest' ->
      let acc =
        if include_torn then
          List.fold_left
            (fun acc cut -> { full = List.rev taken; torn = Some (w, cut) } :: acc)
            acc
            (page_boundaries ~page_size w)
        else acc
      in
      prefixes (w :: taken) rest' acc
  in
  List.rev (prefixes [] queue [])

let evaluate ~store_config store model combo =
  let chosen : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c -> List.iter (fun w -> Hashtbl.replace chosen w.Dep.id ()) c.full)
    combo;
  (* Dependency closure: a write may persist only if its input would be
     persistent under this subset. *)
  let pred w = Hashtbl.mem chosen w.Dep.id in
  let closed =
    List.for_all
      (fun c -> List.for_all (fun w -> Dep.persistent_under pred w.Dep.input) c.full)
      combo
  in
  if not closed then `Pruned
  else begin
    let clone = Disk.copy (S.disk store) in
    let apply_write (w : Dep.write) =
      match w.Dep.kind with
      | Dep.Append { off; data } -> (
        match Disk.write clone ~extent:w.Dep.extent ~off data with
        | Ok () -> ()
        | Error e -> Format.kasprintf failwith "crash enum apply: %a" Disk.pp_io_error e)
      | Dep.Reset { epoch } -> (
        match Disk.reset ~epoch clone ~extent:w.Dep.extent with
        | Ok () -> ()
        | Error e -> Format.kasprintf failwith "crash enum apply: %a" Disk.pp_io_error e)
    in
    List.iter
      (fun c ->
        List.iter apply_write c.full;
        match c.torn with
        | Some ({ Dep.kind = Dep.Append { off; data }; extent; _ }, cut) -> (
          match Disk.write clone ~extent ~off (String.sub data 0 cut) with
          | Ok () -> ()
          | Error e -> Format.kasprintf failwith "crash enum apply: %a" Disk.pp_io_error e)
        | Some ({ Dep.kind = Dep.Reset _; _ }, _) -> assert false
        | None -> ())
      combo;
    (* Recover a fresh store on the clone and check every tracked key
       against the survivors this subset allows. *)
    let recovered = S.of_disk store_config clone in
    match S.recover recovered with
    | Error e -> `Violation (Format.asprintf "recovery failed in crash state: %a" S.pp_error e)
    | Ok () -> (
      let violation =
        List.fold_left
          (fun violation key ->
            match violation with
            | Some _ -> violation
            | None -> (
              let allowed = Model.Crash_model.allowed_after_crash_under ~pred model ~key in
              match S.get recovered ~key with
              | Ok observed ->
                if List.mem observed allowed then None
                else
                  Some
                    (Format.asprintf
                       "crash state: key %S observed %s, not among %d allowed survivors" key
                       (match observed with
                       | None -> "<absent>"
                       | Some v -> Printf.sprintf "%d bytes" (String.length v))
                       (List.length allowed))
              | Error e ->
                Some (Format.asprintf "crash state: key %S unreadable: %a" key S.pp_error e)))
          None
          (Model.Crash_model.tracked_keys model)
      in
      match violation with Some msg -> `Violation msg | None -> `Clean)
  end

let enumerate ~store_config ~max_states ~include_torn store model =
  let sched = S.sched store in
  let page_size = Io_sched.page_size sched in
  let pending = Io_sched.pending_writes sched in
  (* Group by extent, preserving queue (id) order. *)
  let by_extent : (int, Dep.write list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun w ->
      match Hashtbl.find_opt by_extent w.Dep.extent with
      | Some l -> l := w :: !l
      | None -> Hashtbl.add by_extent w.Dep.extent (ref [ w ]))
    pending;
  let queues =
    Util.Tbl.fold_sorted (fun _ l acc -> List.rev !l :: acc) by_extent []
  in
  let per_extent = List.map (extent_choices ~page_size ~include_torn) queues in
  let stats = ref { states = 0; truncated = false; violations = 0; first_violation = None } in
  let rec product combo = function
    | [] ->
      if !stats.states >= max_states then stats := { !stats with truncated = true }
      else begin
        match evaluate ~store_config store model combo with
        | `Pruned -> ()  (* violates dependency closure: unreachable *)
        | `Clean -> stats := { !stats with states = !stats.states + 1 }
        | `Violation msg ->
          stats :=
            {
              !stats with
              states = !stats.states + 1;
              violations = !stats.violations + 1;
              first_violation =
                (match !stats.first_violation with Some _ as v -> v | None -> Some msg);
            }
      end
    | choices :: rest ->
      List.iter (fun c -> if not !stats.truncated then product (c :: combo) rest) choices
  in
  product [] per_extent;
  !stats

let hook ~max_states ~acc store model =
  let s =
    enumerate ~store_config:(S.config store) ~max_states ~include_torn:true store model
  in
  acc :=
    {
      states = !acc.states + s.states;
      truncated = !acc.truncated || s.truncated;
      violations = !acc.violations + s.violations;
      first_violation =
        (match !acc.first_violation with Some _ as v -> v | None -> s.first_violation);
    };
  s.first_violation
