open Util

type method_ =
  | Pbt of Gen.profile
  | Model_validation
  | Smc

let method_name = function
  | Pbt profile -> Printf.sprintf "property-based testing (%s)" (Gen.profile_name profile)
  | Model_validation -> "model-validation property test"
  | Smc -> "stateless model checking"

let method_for = function
  | Faults.F1_reclaim_off_by_one -> Pbt Gen.Crash_free
  | Faults.F2_cache_not_drained -> Pbt Gen.Crash_free
  | Faults.F3_shutdown_skips_metadata -> Pbt Gen.Crashing
  | Faults.F4_disk_return_loses_shards -> Pbt Gen.Crash_free
  | Faults.F5_reclaim_forgets_on_read_error -> Pbt Gen.Failing
  | Faults.F6_superblock_ownership_dep -> Pbt Gen.Crashing
  | Faults.F7_soft_hard_pointer_mismatch -> Pbt Gen.Crashing
  | Faults.F8_missing_pointer_dep -> Pbt Gen.Crashing
  | Faults.F9_model_crash_reconcile -> Pbt Gen.Crashing
  | Faults.F10_uuid_magic_collision -> Pbt Gen.Crashing
  | Faults.F11_locator_race -> Smc
  | Faults.F12_buffer_pool_deadlock -> Smc
  | Faults.F13_list_remove_race -> Smc
  | Faults.F14_compaction_reclaim_race -> Smc
  | Faults.F15_model_locator_reuse -> Model_validation
  | Faults.F16_bulk_create_remove_race -> Smc
  | Faults.F17_cache_miss_path -> Pbt Gen.Crash_free
  (* #18 lives above the single-node stack this harness drives; its checker
     is the fleet chaos campaign (bin/validate --chaos). Mapped like the Smc
     faults: found = false with zero work. *)
  | Faults.F18_quorum_ack_volatile -> Smc

type result = {
  fault : Faults.t;
  found : bool;
  sequences : int;
  total_ops : int;
  fired : int;
  failure : Harness.failure option;
  original : Op.summary option;
  minimized : Op.summary option;
  minimized_ops : Op.t list option;
  min_stats : Minimize.stats option;
}

let pp_result fmt r =
  Format.fprintf fmt "#%d [%s] %s after %d sequences (%d ops, defect fired %d times)"
    (Faults.number r.fault)
    (method_name (method_for r.fault))
    (if r.found then "DETECTED" else "not found")
    r.sequences r.total_ops r.fired;
  (match r.failure with
  | Some f -> Format.fprintf fmt "@,  failure: %a" Harness.pp_failure f
  | None -> ());
  match r.original, r.minimized with
  | Some o, Some m ->
    Format.fprintf fmt "@,  counterexample: %a@,  minimized to:   %a" Op.pp_summary o
      Op.pp_summary m
  | _ -> ()

(* Fault-specific bias tuning: #10 needs the UUID/page-boundary corner
   case, so its runs raise the corresponding biases (the paper's
   "quantitative evidence" criterion for adopting a bias, section 4.2). *)
let bias_for fault =
  match fault with
  | Faults.F10_uuid_magic_collision ->
    { Gen.default_bias with Gen.uuid_magic = 0.5; page_size_values = 0.9 }
  | _ -> Gen.default_bias

let empty_result fault =
  {
    fault;
    found = false;
    sequences = 0;
    total_ops = 0;
    fired = 0;
    failure = None;
    original = None;
    minimized = None;
    minimized_ops = None;
    min_stats = None;
  }

let detect_pbt config ~domains ~length ~max_sequences ~minimize ~seed fault profile =
  let bias = bias_for fault in
  let config = { config with Harness.uuid_bias = bias.Gen.uuid_magic } in
  (* The hunt is a parallel early-exit sweep: the reported seed, sequence
     count and counterexample come from the sequential prefix Par.search
     guarantees, so they are identical for every domain count. Only [fired]
     can see speculative evaluations beyond the failing seed. *)
  let sw =
    Harness.run_par ~domains ~stop_on_failure:true config ~profile ~bias ~length ~seed
      ~count:max_sequences
  in
  match sw.Harness.first_failure with
  | None ->
    { (empty_result fault) with sequences = sw.Harness.checked; total_ops = sw.Harness.total_ops }
  | Some (_failing_seed, ops, failure) ->
    let minimized_ops, min_stats =
      if minimize then begin
        (* Minimization replays sequentially — reproducibility over speed. *)
        let still_fails ops =
          match Harness.run config ops with
          | Harness.Failed _ -> true
          | Harness.Passed -> false
        in
        let m, stats = Minimize.minimize ~still_fails ops in
        (Some m, Some stats)
      end
      else (None, None)
    in
    {
      fault;
      found = true;
      sequences = sw.Harness.checked;
      total_ops = sw.Harness.total_ops;
      fired = Faults.fired fault;
      failure = Some failure;
      original = Some (Op.summarize ops);
      minimized = Option.map Op.summarize minimized_ops;
      minimized_ops;
      min_stats;
    }

(* Model validation for #15: the mock locator generator must never return
   a locator that is still live (the uniqueness assumption of section 3.2 /
   issue #15). *)
let detect_model_validation ~max_sequences ~seed fault =
  let rng = Rng.create (Int64.of_int seed) in
  let total_ops = ref 0 in
  let rec hunt i =
    if i >= max_sequences then
      { (empty_result fault) with sequences = max_sequences; total_ops = !total_ops }
    else begin
      let model = Model.Chunk_model.create () in
      let live = Hashtbl.create 32 in
      let steps = 5 + Rng.int rng 40 in
      let rec go step =
        if step = steps then None
        else begin
          incr total_ops;
          if Rng.chance rng 0.7 || Hashtbl.length live = 0 then begin
            let loc = Model.Chunk_model.mock_put model ~payload:"payload" in
            if Hashtbl.mem live loc then Some (step, loc)
            else begin
              Hashtbl.replace live loc ();
              go (step + 1)
            end
          end
          else begin
            (* drop a random live locator *)
            let locs = Util.Tbl.fold_sorted (fun l () acc -> l :: acc) live [] in
            let loc = Rng.pick_list rng locs in
            Model.Chunk_model.drop model ~locator:loc;
            Hashtbl.remove live loc;
            go (step + 1)
          end
        end
      in
      match go 0 with
      | None -> hunt (i + 1)
      | Some (step, loc) ->
        {
          (empty_result fault) with
          found = true;
          sequences = i + 1;
          total_ops = !total_ops;
          fired = Faults.fired fault;
          failure =
            Some
              {
                Harness.step;
                op = Op.List;
                kind =
                  Harness.Unexpected_error
                    (Format.asprintf "mock re-used live locator %a" Chunk.Locator.pp loc);
                trace = [];
              };
        }
    end
  in
  hunt 0

let detect ?(config = Harness.default_config) ?(domains = 1) ?(length = 60)
    ?(max_sequences = 10_000) ?(minimize = true) ~seed fault =
  Faults.disable_all ();
  Faults.reset_counters ();
  Faults.enable fault;
  Fun.protect
    ~finally:(fun () -> Faults.disable fault)
    (fun () ->
      match method_for fault with
      | Pbt profile ->
        detect_pbt config ~domains ~length ~max_sequences ~minimize ~seed fault profile
      | Model_validation ->
        (* Single shared rng stream across sequences: parallelizing would
           change which sequences get generated, so this hunt stays
           sequential regardless of [domains]. *)
        detect_model_validation ~max_sequences ~seed fault
      | Smc -> empty_result fault)

let baseline ?(config = Harness.default_config) ?(length = 60) ~sequences ~seed profile =
  Faults.disable_all ();
  let failures = ref 0 in
  for i = 0 to sequences - 1 do
    let _, outcome =
      Harness.run_seed config ~profile ~bias:Gen.default_bias ~length ~seed:(seed + i)
    in
    match outcome with Harness.Passed -> () | Harness.Failed _ -> incr failures
  done;
  !failures
