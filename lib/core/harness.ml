open Util
module S = Store.Default

type config = {
  store_config : S.config;
  uuid_bias : float;
  harness_seed : int64;
  full_check_every : int;
  pre_crash_hook : (S.t -> Model.Crash_model.t -> string option) option;
}

let default_config =
  {
    store_config = S.test_config;
    uuid_bias = Gen.default_bias.Gen.uuid_magic;
    harness_seed = 0xC0FFEEL;
    full_check_every = 7;
    pre_crash_hook = None;
  }

type failure_kind =
  | Divergence of { key : string; expected : string option; actual : string option }
  | List_divergence of { expected : string list; actual : string list }
  | Unexpected_error of string
  | Persistence_violation of string
  | Forward_progress_violation of string

type failure = {
  step : int;
  op : Op.t;
  kind : failure_kind;
  trace : Obs.event list;
      (** the last events from the store's trace ring when the property
          failed — what the stack was doing just before the counterexample *)
}

let pp_value fmt = function
  | None -> Format.pp_print_string fmt "<absent>"
  | Some v -> Format.fprintf fmt "%d bytes %S" (String.length v) v

let pp_failure_kind fmt = function
  | Divergence { key; expected; actual } ->
    Format.fprintf fmt "divergence on %S: model %a, implementation %a" key pp_value expected
      pp_value actual
  | List_divergence { expected; actual } ->
    Format.fprintf fmt "list divergence: model [%s], implementation [%s]"
      (String.concat "; " expected) (String.concat "; " actual)
  | Unexpected_error msg -> Format.fprintf fmt "unexpected implementation error: %s" msg
  | Persistence_violation msg -> Format.fprintf fmt "persistence violation: %s" msg
  | Forward_progress_violation msg -> Format.fprintf fmt "forward progress violation: %s" msg

let pp_failure fmt f =
  Format.fprintf fmt "step %d (%a): %a" f.step Op.pp f.op pp_failure_kind f.kind;
  if f.trace <> [] then begin
    Format.fprintf fmt "@.trailing trace (%d events):" (List.length f.trace);
    List.iter (fun e -> Format.fprintf fmt "@.  %a" Obs.pp_event e) f.trace
  end

type outcome = Passed | Failed of failure

let pp_outcome fmt = function
  | Passed -> Format.pp_print_string fmt "passed"
  | Failed f -> pp_failure fmt f

type state = {
  store : S.t;
  model : Model.Crash_model.t;
  pre_crash_hook : (S.t -> Model.Crash_model.t -> string option) option;
  rng : Rng.t;
  mutable has_failed : bool;  (** some injected failure may have taken effect *)
  mutable permanent_failures : int list;  (** extents currently failed permanently *)
  mutable permanent_damage : bool;
      (** a permanent failure occurred since the last reboot: staged writes
          were destroyed, so reads may keep failing even after the disk is
          healed (healing does not resurrect lost data) *)
  mutable window_deps : (Op.t * Dep.t) list;  (** mutations since the last reboot *)
}

exception Bug of failure_kind

let fail kind = raise (Bug kind)
let errf fmt = Format.kasprintf (fun msg -> fail (Unexpected_error msg)) fmt

(* An implementation error is tolerated only once failure injection may
   have broken something; the model has no failing operations. *)
let tolerate_error st err =
  if not st.has_failed then errf "%a" S.pp_error err

(* The "has failed" relaxation (section 4.4) allows reads to fail after an
   injected IO error, but never to return wrong data — and a read must not
   keep failing forever: one-shot faults are consumed by a retry, so a read
   that still fails with no permanent failure armed is a real bug (the
   shape of issue #5: reclamation permanently forgetting chunks after a
   transient error). *)
let read_with_retry st key =
  let rec attempt n =
    match S.get st.store ~key with
    | Ok v -> Ok v
    | Error e -> if n > 0 then attempt (n - 1) else Error e
  in
  attempt 3

let read_tolerable st =
  st.has_failed && (st.permanent_failures <> [] || st.permanent_damage)

let check_get st key =
  match read_with_retry st key with
  | Ok actual ->
    if Model.Crash_model.needs_reconcile st.model ~key then begin
      (* First successful read after a crash whose reconciliation was
         skipped (unreadable under injected failures): any allowed
         survivor is acceptable and becomes the model state. *)
      match Model.Crash_model.resolve_read st.model ~key ~observed:actual with
      | Ok () -> ()
      | Error v ->
        fail (Persistence_violation (Format.asprintf "%a" Model.Crash_model.pp_violation v))
    end
    else begin
      let expected = Model.Crash_model.get st.model ~key in
      if actual <> expected then fail (Divergence { key; expected; actual })
    end
  | Error S.Out_of_service when not (S.in_service st.store) -> ()
  | Error e ->
    if read_tolerable st then ()
    else errf "get %S keeps failing with no fault armed: %a" key S.pp_error e

let check_list st =
  let unresolved =
    List.exists
      (fun key -> Model.Crash_model.needs_reconcile st.model ~key)
      (Model.Crash_model.tracked_keys st.model)
  in
  let expected = Model.Crash_model.list st.model in
  let rec attempt n =
    match S.list st.store with
    | Ok actual -> Ok actual
    | Error e -> if n > 0 then attempt (n - 1) else Error e
  in
  match attempt 3 with
  | Ok actual ->
    let actual = List.sort String.compare actual in
    (* With unreconciled keys the expected key set is ambiguous; per-key
       reads settle them first. *)
    if (not unresolved) && actual <> expected then
      fail (List_divergence { expected; actual })
  | Error S.Out_of_service when not (S.in_service st.store) -> ()
  | Error e ->
    if read_tolerable st then ()
    else errf "list keeps failing with no fault armed: %a" S.pp_error e

let bound_holds ~lo ~hi key =
  (match lo with None -> true | Some l -> String.compare l key <= 0)
  && match hi with None -> true | Some h -> String.compare key h <= 0

(* Scan conformance: drain one cursor and hold it to three obligations —
   cursor discipline (strictly ascending, in-bounds keys), per-key value
   agreement with the model (reconciling post-crash ambiguity exactly like
   point reads), and completeness (no tracked live key in range missing,
   no untracked key invented). *)
let check_scan st ~lo ~hi =
  let drain () =
    let ( let* ) = Result.bind in
    let* cursor = S.scan st.store ?lo ?hi () in
    let rec go acc =
      match S.scan_next cursor with
      | Ok None -> Ok (List.rev acc)
      | Ok (Some pair) -> go (pair :: acc)
      | Error e -> Error e
    in
    go []
  in
  let rec attempt n =
    match drain () with Ok pairs -> Ok pairs | Error e -> if n > 0 then attempt (n - 1) else Error e
  in
  match attempt 3 with
  | Ok pairs ->
    ignore
      (List.fold_left
         (fun prev (key, _) ->
           if not (bound_holds ~lo ~hi key) then
             errf "scan yielded out-of-range key %S" key;
           (match prev with
           | Some p when String.compare p key >= 0 ->
             errf "scan keys not strictly ascending: %S then %S" p key
           | _ -> ());
           Some key)
         None pairs);
    let tracked = Model.Crash_model.tracked_keys st.model in
    List.iter
      (fun key ->
        if bound_holds ~lo ~hi key then begin
          let observed = List.assoc_opt key pairs in
          if Model.Crash_model.needs_reconcile st.model ~key then begin
            match Model.Crash_model.resolve_read st.model ~key ~observed with
            | Ok () -> ()
            | Error v ->
              fail
                (Persistence_violation (Format.asprintf "%a" Model.Crash_model.pp_violation v))
          end
          else begin
            let expected = Model.Crash_model.get st.model ~key in
            if observed <> expected then fail (Divergence { key; expected; actual = observed })
          end
        end)
      tracked;
    List.iter
      (fun (key, value) ->
        if not (List.mem key tracked) then
          fail (Divergence { key; expected = None; actual = Some value }))
      pairs
  | Error S.Out_of_service when not (S.in_service st.store) -> ()
  | Error e ->
    if read_tolerable st then ()
    else errf "scan keeps failing with no fault armed: %a" S.pp_error e

(* The composed per-level discipline is structural: no injected fault is
   allowed to break it, so it is never excused by [has_failed]. *)
let check_level_invariants st =
  match S.level_invariants st.store with
  | Ok () -> ()
  | Error msg -> errf "level invariant violated: %s" msg

let full_check st =
  check_level_invariants st;
  List.iter (fun key -> check_get st key) (Model.Crash_model.tracked_keys st.model);
  check_list st

(* Persistence property (section 5): reconcile each tracked key's observed
   post-crash value against the survivors the model allows, and adopt it.
   Keys unreadable under injected failures stay flagged and are resolved by
   their next successful read. *)
let reconcile_after_crash st =
  Model.Crash_model.mark_crashed st.model;
  List.iter
    (fun key ->
      match read_with_retry st key with
      | Ok observed -> (
        match Model.Crash_model.reconcile st.model ~key ~observed with
        | Ok () -> ()
        | Error v ->
          fail (Persistence_violation (Format.asprintf "%a" Model.Crash_model.pp_violation v)))
      | Error e ->
        if read_tolerable st then ()
        else
          fail
            (Persistence_violation
               (Format.asprintf "key %S unreadable after recovery: %a" key S.pp_error e)))
    (Model.Crash_model.tracked_keys st.model)

(* Forward progress (section 5): after a clean shutdown every dependency
   returned since the last reboot reports persistent. Dependencies broken
   by injected permanent failures are excused when injection is active. *)
let check_forward_progress st =
  List.iter
    (fun (op, dep) ->
      if not (Dep.is_persistent dep) then
        if st.has_failed && Dep.has_failed dep then ()
        else
          fail
            (Forward_progress_violation
               (Format.asprintf "dependency of %a not persistent after clean shutdown" Op.pp op)))
    st.window_deps

let apply st op =
  match op with
  | Op.Get key -> check_get st key
  | Op.Put (key, value) -> (
    match S.put st.store ~key ~value with
    | Ok dep ->
      Model.Crash_model.put st.model ~key ~value ~dep;
      st.window_deps <- (op, dep) :: st.window_deps
    | Error S.No_space -> ()  (* rejected: model unchanged *)
    | Error S.Out_of_service when not (S.in_service st.store) -> ()
    | Error e -> tolerate_error st e)
  | Op.Delete key -> (
    match S.delete st.store ~key with
    | Ok dep ->
      Model.Crash_model.delete st.model ~key ~dep;
      st.window_deps <- (op, dep) :: st.window_deps
    | Error S.Out_of_service when not (S.in_service st.store) -> ()
    | Error e -> tolerate_error st e)
  | Op.PutBatch ops -> (
    (* Group commit must be observationally the sequential puts: each per-op
       outcome updates the model exactly as the scalar Put case would. *)
    match S.put_batch st.store ops with
    | Ok { S.results; barrier = _ } ->
      List.iter2
        (fun (key, value) result ->
          match result with
          | Ok dep ->
            Model.Crash_model.put st.model ~key ~value ~dep;
            st.window_deps <- (op, dep) :: st.window_deps
          | Error S.No_space -> ()  (* rejected: model unchanged *)
          | Error e -> tolerate_error st e)
        ops results
    | Error S.Out_of_service when not (S.in_service st.store) -> ()
    | Error e -> tolerate_error st e)
  | Op.DeleteBatch keys -> (
    match S.delete_batch st.store keys with
    | Ok { S.results; barrier = _ } ->
      List.iter2
        (fun key result ->
          match result with
          | Ok dep ->
            Model.Crash_model.delete st.model ~key ~dep;
            st.window_deps <- (op, dep) :: st.window_deps
          | Error e -> tolerate_error st e)
        keys results
    | Error S.Out_of_service when not (S.in_service st.store) -> ()
    | Error e -> tolerate_error st e)
  | Op.List -> check_list st
  | Op.Scan { lo; hi } -> check_scan st ~lo ~hi
  | Op.IndexFlush -> (
    match S.flush_index st.store with
    | Ok _ -> ()
    | Error S.No_space -> ()
    | Error e -> tolerate_error st e)
  | Op.SuperblockFlush -> (
    match S.flush_superblock st.store with Ok _ -> () | Error e -> tolerate_error st e)
  | Op.Compact -> (
    match S.compact st.store with
    | Ok _ -> ()
    | Error S.No_space -> ()
    | Error e -> tolerate_error st e)
  | Op.Reclaim -> (
    match S.reclaim st.store () with
    | Ok _ -> ()
    | Error S.Out_of_service when not (S.in_service st.store) -> ()
    | Error S.No_space -> ()
    | Error e -> tolerate_error st e)
  | Op.Pump n -> ignore (S.pump st.store n)
  | Op.FailDiskOnce extent ->
    st.has_failed <- true;
    Disk.fail_once (S.disk st.store) ~extent
  | Op.FailDiskPermanent extent ->
    st.has_failed <- true;
    st.permanent_damage <- true;
    if not (List.mem extent st.permanent_failures) then
      st.permanent_failures <- extent :: st.permanent_failures;
    Disk.fail_permanently (S.disk st.store) ~extent
  | Op.HealDisk extent ->
    st.permanent_failures <- List.filter (fun e -> e <> extent) st.permanent_failures;
    Disk.heal (S.disk st.store) ~extent
  | Op.RemoveFromService -> (
    match S.remove_from_service st.store with
    | Ok () ->
      (* Removal from service is a graceful shutdown: every dependency
         handed out must be persistent (or excused by injected failures) —
         this is where issue #4's skipped flush shows up. *)
      check_forward_progress st;
      st.window_deps <- []
    | Error S.Out_of_service -> ()
    | Error S.No_space -> ()  (* shutdown flush rejected on a full disk; store stays up *)
    | Error e -> tolerate_error st e)
  | Op.ReturnToService -> (
    let was_in_service = S.in_service st.store in
    match S.return_to_service st.store with
    | Ok () ->
      (* Returning re-reads the disk; under injected failures some staged
         state may not have made it out, so reconcile like a reboot. A
         no-op return (already in service) recovers nothing. *)
      if not was_in_service then begin
        reconcile_after_crash st;
        st.permanent_damage <- st.permanent_failures <> []
      end
    | Error e -> tolerate_error st e)
  | Op.CleanReboot -> (
    match S.clean_shutdown st.store with
    | Error S.No_space ->
      (* resource exhaustion is out of scope (section 4.4): the shutdown
         was rejected, the store keeps running *)
      ()
    | Error e ->
      if st.has_failed then begin
        (* Could not shut down cleanly under injected failures: fall back
           to crash semantics so checking can continue. *)
        ignore e;
        let (_ : Io_sched.crash_report) =
          Io_sched.crash (S.sched st.store) ~rng:st.rng ~persist_probability:1.0
            ~split_pages:false
        in
        (match S.recover st.store with
        | Ok () -> ()
        | Error e -> tolerate_error st e);
        st.window_deps <- [];
        reconcile_after_crash st
      end
      else
        fail
          (Forward_progress_violation
             (Format.asprintf "clean shutdown failed: %a" S.pp_error e))
    | Ok () ->
      check_forward_progress st;
      st.window_deps <- [];
      (match S.recover st.store with
      | Ok () -> ()
      | Error e -> tolerate_error st e);
      reconcile_after_crash st;
      st.permanent_damage <- st.permanent_failures <> [];
      full_check st)
  | Op.DirtyReboot r -> (
    (match st.pre_crash_hook with
    | Some hook -> (
      match hook st.store st.model with
      | Some msg -> fail (Persistence_violation msg)
      | None -> ())
    | None -> ());
    st.window_deps <- [];
    let spec =
      {
        S.flush_index_first = r.Op.flush_index;
        flush_superblock_first = r.Op.flush_superblock;
        persist_probability = r.Op.persist_probability;
        split_pages = r.Op.split_pages;
      }
    in
    match S.dirty_reboot st.store ~rng:st.rng spec with
    | Ok () ->
      reconcile_after_crash st;
      st.permanent_damage <- st.permanent_failures <> []
    | Error e -> tolerate_error st e)

(* [run_core] also hands back the store so callers aggregating metrics
   ([run_par]) can merge its per-instance registry after the run. *)
let run_core config ops =
  let store = S.create config.store_config in
  Chunk.Chunk_store.set_uuid_bias (S.chunk_store store) config.uuid_bias;
  let st =
    {
      store;
      model = Model.Crash_model.create ();
      pre_crash_hook = config.pre_crash_hook;
      rng = Rng.create config.harness_seed;
      has_failed = false;
      permanent_failures = [];
      permanent_damage = false;
      window_deps = [];
    }
  in
  let step_op st op step =
    apply st op;
    if config.full_check_every > 0 && (step + 1) mod config.full_check_every = 0 then
      full_check st
  in
  let rec go step = function
    | [] -> Passed
    | op :: rest -> (
      match step_op st op step with
      | () -> go (step + 1) rest
      | exception Bug kind ->
        Failed { step; op; kind; trace = Obs.recent ~n:32 (S.obs st.store) })
  in
  (go 0 ops, store)

let run config ops = fst (run_core config ops)

let replay config ops =
  let store = S.create config.store_config in
  Chunk.Chunk_store.set_uuid_bias (S.chunk_store store) config.uuid_bias;
  let st =
    {
      store;
      model = Model.Crash_model.create ();
      pre_crash_hook = None;
      rng = Rng.create config.harness_seed;
      has_failed = false;
      permanent_failures = [];
      permanent_damage = false;
      window_deps = [];
    }
  in
  List.iter (fun op -> try apply st op with Bug _ -> ()) ops;
  store

let run_seed_core config ~profile ~bias ~length ~seed =
  let rng = Rng.create (Int64.of_int seed) in
  let ops =
    Gen.sequence ~rng ~bias ~profile
      ~page_size:config.store_config.S.disk.Disk.page_size
      ~extent_count:config.store_config.S.disk.Disk.extent_count ~length
  in
  let outcome, store = run_core config ops in
  (ops, outcome, store)

let run_seed config ~profile ~bias ~length ~seed =
  let ops, outcome, _store = run_seed_core config ~profile ~bias ~length ~seed in
  (ops, outcome)

(* {2 Parallel seed sweeps} *)

type sweep = {
  checked : int;
  total_ops : int;
  failures : int;
  first_failure : (int * Op.t list * failure) option;
}

let empty_sweep = { checked = 0; total_ops = 0; failures = 0; first_failure = None }

let record_outcome sw ~seed ~ops outcome =
  {
    checked = sw.checked + 1;
    total_ops = sw.total_ops + List.length ops;
    failures = (sw.failures + match outcome with Failed _ -> 1 | Passed -> 0);
    first_failure =
      (match sw.first_failure, outcome with
      | (Some _ as first), _ | first, Passed -> first
      | None, Failed f -> Some (seed, ops, f));
  }

let run_par ?obs ?(domains = 1) ?(stop_on_failure = false) config ~profile ~bias ~length
    ~seed ~count =
  if stop_on_failure && Option.is_some obs then
    invalid_arg
      "Harness.run_par: ?obs cannot be combined with ~stop_on_failure:true (workers race \
       ahead speculatively, so aggregated metrics would not be reproducible)";
  if stop_on_failure then begin
    (* Early-exit hunt: Par.search returns exactly the sequential prefix up
       to the lowest failing seed, so the reported counterexample is the
       same one a sequential hunt finds, for any domain count. *)
    let results =
      Par.search ~domains ~start:seed ~count
        ~stop:(function _, Failed _ -> true | _, Passed -> false)
        (fun s ->
          let ops, outcome = run_seed config ~profile ~bias ~length ~seed:s in
          (ops, outcome))
    in
    let sw, _ =
      List.fold_left
        (fun (sw, s) (ops, outcome) -> (record_outcome sw ~seed:s ~ops outcome, s + 1))
        (empty_sweep, seed) results
    in
    sw
  end
  else
    let sw, reg =
      Par.sweep ~domains ~start:seed ~count
        ~init:(fun () ->
          (empty_sweep, Option.map (fun _ -> Obs.create ~scope:"sweep" ()) obs))
        ~step:(fun (sw, reg) s ->
          let ops, outcome, store = run_seed_core config ~profile ~bias ~length ~seed:s in
          Option.iter (fun r -> Obs.merge_into ~into:r (S.obs store)) reg;
          (record_outcome sw ~seed:s ~ops outcome, reg))
        ~merge:(fun (a, ra) (b, rb) ->
          (* segments arrive in ascending seed order, so keeping [a]'s first
             failure and merging [rb] last reproduces the sequential
             aggregation exactly (gauges adopt the later value) *)
          Option.iter (fun ra -> Option.iter (fun rb -> Obs.merge_into ~into:ra rb) rb) ra;
          ( {
              checked = a.checked + b.checked;
              total_ops = a.total_ops + b.total_ops;
              failures = a.failures + b.failures;
              first_failure =
                (match a.first_failure with Some _ -> a.first_failure | None -> b.first_failure);
            },
            ra ))
        ()
    in
    Option.iter (fun into -> Option.iter (fun r -> Obs.merge_into ~into r) reg) obs;
    sw
