open Util

type profile = Crash_free | Crashing | Failing | Full

let profile_name = function
  | Crash_free -> "crash-free"
  | Crashing -> "crashing"
  | Failing -> "failing"
  | Full -> "full"

type bias = {
  key_reuse : float;
  page_size_values : float;
  uuid_magic : float;
  max_value : int;
  batch_weight : int;
  scan_weight : int;
}

let default_bias =
  {
    key_reuse = 0.8;
    page_size_values = 0.5;
    uuid_magic = 0.05;
    max_value = 150;
    batch_weight = 0;
    scan_weight = 0;
  }

let unbiased =
  {
    key_reuse = 0.0;
    page_size_values = 0.0;
    uuid_magic = 0.0;
    max_value = 150;
    batch_weight = 0;
    scan_weight = 0;
  }

type state = {
  mutable known_keys : string list;  (** keys put at least once *)
  mutable in_service : bool;
}

let initial_state () = { known_keys = []; in_service = true }

let key_pool = Array.init 8 (fun i -> Printf.sprintf "key-%02d" i)

let fresh_key rng =
  if Rng.chance rng 0.8 then Rng.pick rng key_pool
  else Printf.sprintf "rnd-%04x" (Rng.int rng 0x10000)

(* Biased key choice: prefer previously-put keys so the successful-Get path
   is actually exercised, but keep misses possible. *)
let pick_key rng bias state =
  if state.known_keys <> [] && Rng.chance rng bias.key_reuse then
    Rng.pick_list rng state.known_keys
  else fresh_key rng

let value rng bias ~page_size =
  let len =
    if Rng.chance rng bias.page_size_values then begin
      (* Near a page multiple: where frames straddle boundaries. *)
      let pages = 1 + Rng.int rng 3 in
      max 0 ((pages * page_size) - Rng.int_in rng 40 56 + Rng.int rng 4)
    end
    else Rng.int rng (bias.max_value + 1)
  in
  Bytes.to_string (Rng.bytes rng len)

let reboot_type rng =
  {
    Op.flush_index = Rng.bool rng;
    flush_superblock = Rng.bool rng;
    persist_probability = Rng.pick rng [| 0.0; 0.3; 0.5; 0.7; 1.0 |];
    split_pages = Rng.bool rng;
  }

let op ~rng ~bias ~profile ~page_size ~extent_count state =
  if not state.in_service then begin
    (* Out of service: mostly return quickly, with a few rejected requests
       to exercise the Out_of_service path. *)
    match Rng.weighted rng [ (6, `Return); (1, `Get); (1, `Put) ] with
    | `Return ->
      state.in_service <- true;
      Op.ReturnToService
    | `Get -> Op.Get (pick_key rng bias state)
    | `Put -> Op.Put (pick_key rng bias state, value rng bias ~page_size)
  end
  else begin
    let base =
      [
        (10, `Put);
        (8, `Get);
        (4, `Delete);
        (1, `List);
        (3, `IndexFlush);
        (2, `SuperblockFlush);
        (1, `Compact);
        (3, `Reclaim);
        (4, `Pump);
        (1, `Remove);
      ]
    in
    (* Batch ops join the alphabet only when [batch_weight > 0]: adding
       choices changes every weighted draw after it, so the deterministic
       fault-detection experiments keep their exact sequences by default. *)
    let base =
      if bias.batch_weight > 0 then
        base @ [ (bias.batch_weight, `PutBatch); (max 1 (bias.batch_weight / 3), `DeleteBatch) ]
      else base
    in
    (* Scans likewise join only on request, and always at the end of the
       alphabet, for the same determinism reason. *)
    let base = if bias.scan_weight > 0 then base @ [ (bias.scan_weight, `Scan) ] else base in
    let crashing = [ (3, `DirtyReboot); (1, `CleanReboot) ] in
    let failing = [ (2, `FailOnce); (1, `FailPermanent); (2, `Heal) ] in
    let choices =
      match profile with
      | Crash_free -> base
      | Crashing -> base @ crashing
      | Failing -> base @ failing
      | Full -> base @ crashing @ failing
    in
    match Rng.weighted rng choices with
    | `Put ->
      let key = pick_key rng bias state in
      if not (List.mem key state.known_keys) then state.known_keys <- key :: state.known_keys;
      Op.Put (key, value rng bias ~page_size)
    | `Get -> Op.Get (pick_key rng bias state)
    | `Delete -> Op.Delete (pick_key rng bias state)
    | `PutBatch ->
      let n = 2 + Rng.int rng 7 in
      Op.PutBatch
        (List.init n (fun _ ->
             let key = pick_key rng bias state in
             if not (List.mem key state.known_keys) then
               state.known_keys <- key :: state.known_keys;
             (key, value rng bias ~page_size)))
    | `DeleteBatch ->
      let n = 2 + Rng.int rng 4 in
      Op.DeleteBatch (List.init n (fun _ -> pick_key rng bias state))
    | `List -> Op.List
    | `Scan ->
      (* Bounds come from the same biased key pool as point reads, so most
         scans actually overlap live data; ~30% of each bound is open. *)
      let bound () = if Rng.chance rng 0.3 then None else Some (pick_key rng bias state) in
      let lo = bound () and hi = bound () in
      let lo, hi =
        match (lo, hi) with
        | Some l, Some h when String.compare l h > 0 -> (Some h, Some l)
        | _ -> (lo, hi)
      in
      Op.Scan { lo; hi }
    | `IndexFlush -> Op.IndexFlush
    | `SuperblockFlush -> Op.SuperblockFlush
    | `Compact -> Op.Compact
    | `Reclaim -> Op.Reclaim
    | `Pump -> Op.Pump (1 + Rng.int rng 8)
    | `Remove ->
      state.in_service <- false;
      Op.RemoveFromService
    | `DirtyReboot ->
      state.in_service <- true;
      Op.DirtyReboot (reboot_type rng)
    | `CleanReboot ->
      state.in_service <- true;
      Op.CleanReboot
    | `FailOnce -> Op.FailDiskOnce (Rng.int rng extent_count)
    | `FailPermanent -> Op.FailDiskPermanent (Rng.int rng extent_count)
    | `Heal -> Op.HealDisk (Rng.int rng extent_count)
  end

let sequence ~rng ~bias ~profile ~page_size ~extent_count ~length =
  let state = initial_state () in
  List.init length (fun _ -> op ~rng ~bias ~profile ~page_size ~extent_count state)
