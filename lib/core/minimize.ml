type stats = {
  original : Op.summary;
  minimized : Op.summary;
  rounds : int;
  executions : int;
}

let pp_stats fmt s =
  Format.fprintf fmt "%a -> %a (%d rounds, %d executions)" Op.pp_summary s.original
    Op.pp_summary s.minimized s.rounds s.executions

(* Candidate simplifications of one operation, simplest first. Shrinking
   prefers earlier alphabet variants and arguments closer to zero. *)
let simplify_op op =
  match op with
  | Op.Put (k, v) ->
    let n = String.length v in
    if n = 0 then []
    else
      [ Op.Put (k, ""); Op.Put (k, String.make (n / 2) 'a'); Op.Put (k, String.make (n - 1) 'a') ]
  | Op.PutBatch ops -> (
    match ops with
    | [] -> []
    | [ (k, v) ] -> [ Op.Put (k, v) ]
    | _ ->
      let n = List.length ops in
      let front = List.filteri (fun i _ -> i < n / 2) ops in
      let back = List.filteri (fun i _ -> i >= n / 2) ops in
      [
        Op.PutBatch front;
        Op.PutBatch back;
        Op.PutBatch (List.map (fun (k, _) -> (k, "")) ops);
      ])
  | Op.DeleteBatch keys -> (
    match keys with
    | [] -> []
    | [ k ] -> [ Op.Delete k ]
    | _ ->
      let n = List.length keys in
      [
        Op.DeleteBatch (List.filteri (fun i _ -> i < n / 2) keys);
        Op.DeleteBatch (List.filteri (fun i _ -> i >= n / 2) keys);
      ])
  | Op.Pump n -> if n > 1 then [ Op.Pump 1 ] else []
  | Op.FailDiskPermanent e -> [ Op.FailDiskOnce e ]
  | Op.DirtyReboot r ->
    let candidates =
      [
        { Op.flush_index = true; flush_superblock = true; persist_probability = 1.0; split_pages = false };
        { r with Op.split_pages = false };
        { r with Op.persist_probability = 1.0 };
        { r with Op.flush_index = true; flush_superblock = true };
      ]
    in
    List.filter_map (fun c -> if c = r then None else Some (Op.DirtyReboot c)) candidates
  | Op.Scan { lo = None; hi = None } -> []
  | Op.Scan _ -> [ Op.Scan { lo = None; hi = None } ]
  | Op.Get _ | Op.Delete _ | Op.List | Op.IndexFlush | Op.SuperblockFlush | Op.Compact
  | Op.Reclaim | Op.FailDiskOnce _ | Op.HealDisk _ | Op.RemoveFromService
  | Op.ReturnToService | Op.CleanReboot -> []

let minimize ~still_fails ops =
  let executions = ref 0 in
  let test ops =
    incr executions;
    still_fails ops
  in
  let remove_span ops start len =
    List.filteri (fun i _ -> i < start || i >= start + len) ops
  in
  (* Pass 1: delta-debugging style span removal with shrinking span size. *)
  let rec removal_pass ops span =
    if span = 0 then ops
    else begin
      let rec scan ops start =
        if start >= List.length ops then ops
        else begin
          let candidate = remove_span ops start span in
          if List.length candidate < List.length ops && test candidate then scan candidate start
          else scan ops (start + span)
        end
      in
      let ops = scan ops 0 in
      removal_pass ops (span / 2)
    end
  in
  (* Pass 2: per-op argument shrinking. *)
  let simplify_pass ops =
    let arr = Array.of_list ops in
    let changed = ref false in
    Array.iteri
      (fun i op ->
        let rec try_candidates = function
          | [] -> ()
          | c :: rest ->
            let candidate = Array.to_list (Array.mapi (fun j o -> if j = i then c else o) arr) in
            if test candidate then begin
              arr.(i) <- c;
              changed := true;
              (* keep shrinking the same position *)
              try_candidates (simplify_op c)
            end
            else try_candidates rest
        in
        try_candidates (simplify_op op))
      arr;
    (Array.to_list arr, !changed)
  in
  let original = Op.summarize ops in
  let rec fixpoint ops rounds =
    let before = List.length ops in
    let ops = removal_pass ops (max 1 (List.length ops / 2)) in
    let ops, changed = simplify_pass ops in
    if (List.length ops < before || changed) && rounds < 8 then fixpoint ops (rounds + 1)
    else (ops, rounds + 1)
  in
  let minimized, rounds = fixpoint ops 0 in
  ( minimized,
    { original; minimized = Op.summarize minimized; rounds; executions = !executions } )
