(** Automated test-case minimization (paper section 4.3).

    Given a deterministic failing operation sequence, repeatedly applies
    reduction heuristics — remove a span of operations, shrink an integer
    or payload toward zero, replace an operation by an earlier (simpler)
    variant — until no reduction keeps the test failing. No minimality
    guarantee, but effective in practice: the paper's anecdote reduced 61
    operations (9 crashes, 226 KiB) to 6 operations (1 crash, 2 B).

    Minimization always replays {e sequentially}, even when the failing
    sequence was found by a parallel sweep ({!Harness.run_par},
    {!Detect.detect} with [~domains]): each candidate execution depends on
    the previous one's verdict, and a reproducible shrink trace is worth
    more than wall clock here. The determinism of [still_fails] is what
    guarantees the minimized counterexample is identical no matter how many
    domains found the original. *)

type stats = {
  original : Op.summary;
  minimized : Op.summary;
  rounds : int;  (** fixpoint iterations *)
  executions : int;  (** test executions spent *)
}

val pp_stats : Format.formatter -> stats -> unit

(** [minimize ~still_fails ops] — [still_fails] must be deterministic and
    [still_fails ops] must hold on entry. *)
val minimize : still_fails:(Op.t list -> bool) -> Op.t list -> Op.t list * stats
