open Util

type op =
  | C_put of int
  | C_get of int
  | C_drop of int
  | C_reclaim
  | C_pump of int
  | C_fail_once of int

let pp_op fmt = function
  | C_put n -> Format.fprintf fmt "Put(%d bytes)" n
  | C_get i -> Format.fprintf fmt "Get(#%d)" i
  | C_drop i -> Format.fprintf fmt "Drop(#%d)" i
  | C_reclaim -> Format.pp_print_string fmt "Reclaim"
  | C_pump n -> Format.fprintf fmt "Pump(%d)" n
  | C_fail_once e -> Format.fprintf fmt "FailDiskOnce(extent %d)" e

type failure = {
  step : int;
  op : op;
  message : string;
}

let pp_failure fmt f = Format.fprintf fmt "step %d (%a): %s" f.step pp_op f.op f.message

type outcome = Passed | Failed of failure

let disk_config = { Disk.extent_count = 8; pages_per_extent = 8; page_size = 64 }

type chunk_ref = {
  id : int;
  mutable loc : Chunk.Locator.t;
  payload : string;
  mutable alive : bool;
}

type state = {
  disk : Disk.t;
  sched : Io_sched.t;
  cs : Chunk.Chunk_store.t;
  model : Model.Chunk_model.t;
  mutable chunks : chunk_ref list;  (** newest first *)
  armed : (int, unit) Hashtbl.t;  (** extents with an unconsumed one-shot failure *)
}

let make_state seed =
  let disk = Disk.create disk_config in
  let sched = Io_sched.create ~seed:(Int64.of_int seed) disk in
  let cache = Cache.create sched in
  let sb = Superblock.create sched ~extents:(0, 1) ~reserved:[ 0; 1 ] in
  let cs =
    Chunk.Chunk_store.create sched ~cache ~superblock:sb ~rng:(Rng.create (Int64.of_int (seed + 1)))
  in
  {
    disk;
    sched;
    cs;
    model = Model.Chunk_model.create ();
    chunks = [];
    armed = Hashtbl.create 4;
  }

exception Check of string

(* A read/write error is excused once per armed extent: the one-shot
   failure is consumed by whichever IO hits it first. *)
let consume_arming st extent =
  if Hashtbl.mem st.armed extent then begin
    Hashtbl.remove st.armed extent;
    true
  end
  else false

let any_armed st = Hashtbl.length st.armed > 0

let nth_chunk st i =
  match st.chunks with
  | [] -> None
  | l -> Some (List.nth l (i mod List.length l))

let apply st step_no op =
  let failf fmt = Format.kasprintf (fun m -> raise (Check m)) fmt in
  match op with
  | C_put size -> (
    let payload = String.init size (fun i -> Char.chr ((step_no + i) mod 256)) in
    match Chunk.Chunk_store.put st.cs ~owner:(Chunk.Chunk_format.Shard (string_of_int step_no)) ~payload with
    | Ok (loc, _dep) -> (
      match Model.Chunk_model.track st.model ~locator:loc ~payload with
      | Ok () ->
        st.chunks <- { id = step_no; loc; payload; alive = true } :: st.chunks
      | Error _ -> failf "locator uniqueness violated: %a" Chunk.Locator.pp loc)
    | Error Chunk.Chunk_store.No_space -> ()
    | Error (Chunk.Chunk_store.Io _) when any_armed st -> Hashtbl.reset st.armed
    | Error e -> failf "put failed: %a" Chunk.Chunk_store.pp_error e)
  | C_get i -> (
    match nth_chunk st i with
    | None -> ()
    | Some c -> (
      match Chunk.Chunk_store.get st.cs c.loc with
      | Ok got ->
        if c.alive then begin
          match Model.Chunk_model.expected st.model ~locator:c.loc with
          | Some expected when String.equal got.Chunk.Chunk_format.payload expected -> ()
          | Some _ -> failf "payload divergence on chunk #%d" c.id
          | None -> failf "model lost live chunk #%d" c.id
        end
        else if not (String.equal got.Chunk.Chunk_format.payload c.payload) then
          (* a dead chunk may still be readable, but never as wrong data *)
          failf "dead chunk #%d read back wrong bytes" c.id
      | Error _ when not c.alive -> ()
      | Error _ when consume_arming st c.loc.Chunk.Locator.extent -> ()
      | Error e -> failf "live chunk #%d unreadable: %a" c.id Chunk.Chunk_store.pp_error e))
  | C_drop i -> (
    match nth_chunk st i with
    | None -> ()
    | Some c ->
      if c.alive then begin
        c.alive <- false;
        Model.Chunk_model.drop st.model ~locator:c.loc
      end)
  | C_reclaim -> (
    let target =
      List.find_opt (fun c -> not c.alive) (List.rev st.chunks)
      |> Option.map (fun c -> c.loc.Chunk.Locator.extent)
    in
    match target with
    | None -> ()
    | Some extent -> (
      let classify owner loc =
        let live c =
          c.alive
          && Chunk.Locator.equal c.loc loc
          && Chunk.Chunk_format.owner_equal owner (Chunk.Chunk_format.Shard (string_of_int c.id))
        in
        if List.exists live st.chunks then `Live else `Dead
      in
      let relocate owner ~old_loc ~new_loc ~new_dep =
        List.iter
          (fun c ->
            if
              c.alive
              && Chunk.Locator.equal c.loc old_loc
              && Chunk.Chunk_format.owner_equal owner
                   (Chunk.Chunk_format.Shard (string_of_int c.id))
            then begin
              Model.Chunk_model.drop st.model ~locator:old_loc;
              (match Model.Chunk_model.track st.model ~locator:new_loc ~payload:c.payload with
              | Ok () -> ()
              | Error _ ->
                raise (Check (Format.asprintf "evacuation re-used locator %a" Chunk.Locator.pp new_loc)));
              c.loc <- new_loc
            end)
          st.chunks;
        new_dep
      in
      match Chunk.Chunk_store.reclaim st.cs ~extent ~index_basis:Dep.trivial ~classify ~relocate with
      | Ok _ ->
        (* chunks that were on the reclaimed extent and dead are gone *)
        ()
      | Error Chunk.Chunk_store.No_space -> ()
      | Error (Chunk.Chunk_store.Io _) when consume_arming st extent ->
        (* correct code aborts the reclamation on a read error *)
        ()
      | Error e -> failf "reclaim failed: %a" Chunk.Chunk_store.pp_error e))
  | C_pump n ->
    ignore (Io_sched.pump ~max_ios:n st.sched);
    (* pumping may consume armings through write IO; re-sync our view *)
    List.iter
      (fun (extent, ()) ->
        match Disk.consume_fault st.disk ~extent with
        | Ok () -> Hashtbl.remove st.armed extent
        | Error _ ->
          (* still armed: consume_fault just consumed it, so re-arm *)
          Disk.fail_once st.disk ~extent)
      (Util.Tbl.sorted_bindings st.armed)
  | C_fail_once extent ->
    Hashtbl.replace st.armed extent ();
    Disk.fail_once st.disk ~extent

(* After every step, live chunks must read back exactly (tolerating a
   pending one-shot failure). *)
let check_all st =
  List.iter
    (fun c ->
      if c.alive then begin
        match Chunk.Chunk_store.get st.cs c.loc with
        | Ok got ->
          if not (String.equal got.Chunk.Chunk_format.payload c.payload) then
            raise (Check (Printf.sprintf "live chunk #%d diverged" c.id))
        | Error _ when consume_arming st c.loc.Chunk.Locator.extent -> ()
        | Error e ->
          raise
            (Check (Format.asprintf "live chunk #%d unreadable: %a" c.id Chunk.Chunk_store.pp_error e))
      end)
    st.chunks

let gen_op rng st =
  match Rng.weighted rng [ (6, `Put); (5, `Get); (3, `Drop); (3, `Reclaim); (2, `Pump); (1, `Fail) ] with
  | `Put ->
    (* bias sizes toward page multiples, like the store-level generator *)
    let size =
      if Rng.chance rng 0.5 then max 0 ((1 + Rng.int rng 3) * 64 - Rng.int_in rng 40 56)
      else Rng.int rng 150
    in
    C_put size
  | `Get -> C_get (Rng.int rng (max 1 (List.length st.chunks)))
  | `Drop -> C_drop (Rng.int rng (max 1 (List.length st.chunks)))
  | `Reclaim -> C_reclaim
  | `Pump -> C_pump (1 + Rng.int rng 6)
  | `Fail -> C_fail_once (Rng.int rng disk_config.Disk.extent_count)

let run ~seed ~length =
  let st = make_state seed in
  let rng = Rng.create (Int64.of_int (seed + 99)) in
  let ops = ref [] in
  let outcome = ref Passed in
  (try
     for step = 0 to length - 1 do
       let op = gen_op rng st in
       ops := op :: !ops;
       (try apply st step op
        with Check message -> raise (Check message));
       check_all st
     done
   with Check message ->
     let op = List.hd !ops in
     outcome := Failed { step = List.length !ops - 1; op; message });
  (List.rev !ops, !outcome)

let hunt ?(domains = 1) fault ~max_sequences ~seed =
  (* Toggles are hoisted outside the (possibly parallel) hunt: flipped
     once before and once after, never from inside a task. *)
  Faults.disable_all ();
  Faults.enable fault;
  Fun.protect
    ~finally:(fun () -> Faults.disable fault)
    (fun () ->
      let results =
        Par.search ~domains ~start:0 ~count:max_sequences ~stop:Fun.id (fun i ->
            match run ~seed:(seed + i) ~length:40 with _, Failed _ -> true | _, Passed -> false)
      in
      if List.exists Fun.id results then (true, List.length results)
      else (false, max_sequences))
