(** Biased random generation of operation sequences (paper section 4.2).

    Arguments are selected with probabilistic biases: Get/Delete prefer
    keys that were previously Put (otherwise successful reads are almost
    never exercised), and value sizes prefer the neighbourhood of page-size
    multiples (a frequent source of bugs — issues #1 and #10 both need
    frames that land next to a page boundary). Biases only raise
    probabilities; every case remains reachable, and {!unbiased} switches
    them off for the bias-ablation experiment (E7).

    {b Determinism contract}: generation is a pure function of the [rng]
    state and the arguments — equal seeds yield equal sequences, byte for
    byte. Nothing is drawn from global state, so distinct seeds are fully
    independent: this is what lets {!Harness.run_par} evaluate a seed range
    in any order, on any number of domains, without changing a single
    generated operation. Each parallel task builds its own [rng] from its
    seed; a {!Util.Rng.t} must never be shared across domains. *)

type profile =
  | Crash_free  (** section 4: API + maintenance ops only *)
  | Crashing  (** section 5: adds DirtyReboot/CleanReboot and flushes *)
  | Failing  (** section 4.4: adds disk failure injection *)
  | Full  (** everything *)

val profile_name : profile -> string

type bias = {
  key_reuse : float;  (** P(pick a previously-put key) for Get/Delete *)
  page_size_values : float;  (** P(value length near a page multiple) *)
  uuid_magic : float;  (** chunk-store UUID bias (see {!Chunk.Chunk_store.set_uuid_bias}) *)
  max_value : int;  (** maximum value length *)
  batch_weight : int;
      (** weight of [PutBatch] in the base alphabet ([DeleteBatch] gets a
          third of it); 0 (the default) leaves the alphabet — and thus the
          exact sequences of the deterministic detection experiments —
          unchanged *)
  scan_weight : int;
      (** weight of [Scan] in the base alphabet; 0 (the default) keeps the
          alphabet unchanged, same contract as [batch_weight]. Bounds are
          drawn from the biased key pool with ~30% open ends. *)
}

val default_bias : bias

(** All biases off: uniform keys, uniform sizes. *)
val unbiased : bias

(** Mutable generation state (the set of keys put so far, service
    status); threading it keeps generation deterministic per seed. *)
type state

val initial_state : unit -> state

(** [op ~rng ~bias ~profile ~page_size ~extent_count state] draws the next
    operation and updates [state]. *)
val op :
  rng:Util.Rng.t ->
  bias:bias ->
  profile:profile ->
  page_size:int ->
  extent_count:int ->
  state ->
  Op.t

(** [sequence ~rng ~bias ~profile ~page_size ~extent_count ~length] draws a
    whole test input. *)
val sequence :
  rng:Util.Rng.t ->
  bias:bias ->
  profile:profile ->
  page_size:int ->
  extent_count:int ->
  length:int ->
  Op.t list
