(** The conformance checker (paper sections 4 and 5).

    [run] replays an operation sequence against a fresh store {e and} the
    crash-extended reference model, comparing results after every step:

    - request-plane results must match the model exactly — a Get never
      returns wrong data;
    - once failure injection has fired, implementation operations may fail
      where the model cannot (the "has failed" relaxation of section 4.4),
      but successful results must still match;
    - on [DirtyReboot] the crash-consistency properties of section 5 are
      checked: {e persistence} via per-key reconciliation against the
      model's allowed survivors, and on [CleanReboot] {e forward progress}
      (every dependency returned since the last reboot is persistent) plus
      full state equality.

    Runs are deterministic: the same configuration and sequence always
    yield the same outcome, which is what makes minimization (section 4.3)
    possible.

    {b Seed/determinism contract} (what [lib/par] relies on): a seed fully
    determines its universe. {!run_seed} builds a fresh [Rng] from the seed,
    generates the sequence with {!Gen.sequence}, and replays it against a
    fresh store and model; no state flows between seeds, so any set of seeds
    may be evaluated in any order — or on concurrent domains — and
    {!run_par} exploits exactly that, merging results back in ascending seed
    order so its output is byte-identical to the sequential loop.

    {b [?obs] convention}: as everywhere in this codebase, an optional
    metrics registry is accepted as [?obs], the {e first} optional argument,
    and omitting it means "don't aggregate", never "crash on metrics". *)

module S = Store.Default

type config = {
  store_config : S.config;
  uuid_bias : float;  (** forwarded to the chunk store's UUID generator *)
  harness_seed : int64;  (** drives crash-state selection *)
  full_check_every : int;  (** full model/impl equality check cadence (0 = only at reboots) *)
  pre_crash_hook : (S.t -> Model.Crash_model.t -> string option) option;
      (** invoked before every [DirtyReboot]; returning [Some msg] fails
          the run with a persistence violation. {!Crash_enum.hook} plugs in
          here for exhaustive block-level crash-state checking. *)
}

val default_config : config

type failure_kind =
  | Divergence of { key : string; expected : string option; actual : string option }
  | List_divergence of { expected : string list; actual : string list }
  | Unexpected_error of string  (** impl failed where the model cannot *)
  | Persistence_violation of string  (** data persistent before a crash unreadable after *)
  | Forward_progress_violation of string  (** dependency not persistent after clean shutdown *)

type failure = {
  step : int;  (** 0-based index of the operation that exposed the bug *)
  op : Op.t;
  kind : failure_kind;
  trace : Obs.event list;
      (** trailing events from the store's trace ring — the stack's recent
          activity leading up to the counterexample *)
}

val pp_failure : Format.formatter -> failure -> unit

type outcome = Passed | Failed of failure

val pp_outcome : Format.formatter -> outcome -> unit

(** [run config ops] — see module doc. *)
val run : config -> Op.t list -> outcome

(** [replay config ops] applies the sequence without checking and returns
    the store — for debugging counterexamples and for examples. *)
val replay : config -> Op.t list -> S.t

(** [run_seed config ~profile ~bias ~length ~seed] generates a sequence
    from [seed] and runs it. *)
val run_seed :
  config -> profile:Gen.profile -> bias:Gen.bias -> length:int -> seed:int -> Op.t list * outcome

(** {2 Parallel seed sweeps} *)

(** Aggregate result of sweeping a contiguous seed range. *)
type sweep = {
  checked : int;  (** seeds actually checked (= [count], or the early-exit prefix) *)
  total_ops : int;  (** operations generated across checked seeds *)
  failures : int;  (** failing seeds among those checked *)
  first_failure : (int * Op.t list * failure) option;
      (** the {e lowest} failing seed with its generated sequence and
          failure — identical for every domain count *)
}

(** [run_par ?obs ?domains ?stop_on_failure config ~profile ~bias ~length ~seed ~count]
    sweeps seeds [[seed, seed + count)] through {!run_seed}, sharded across
    [domains] OCaml domains by {!Par} (default 1 = plain sequential loop;
    parallelism is opt-in so existing seeded experiments replay verbatim).

    The result is byte-identical to a sequential sweep for any [domains]:
    each seed owns a private universe, and per-worker results are merged in
    ascending seed order. With [stop_on_failure] (default false) the sweep
    stops at the {e lowest} failing seed — workers race ahead
    speculatively, but results above the lowest failure are discarded
    ({!Par.search}), never reported — and [checked] counts that prefix.
    Minimize the returned counterexample with {!Minimize.minimize}, which
    replays sequentially.

    [?obs] aggregates every checked store's per-instance registry (in seed
    order, see {!Obs.merge_into}) into the given registry. Combining [?obs]
    with [~stop_on_failure:true] raises [Invalid_argument]: speculative
    evaluations beyond the failing seed would leak into the aggregate
    irreproducibly. *)
val run_par :
  ?obs:Obs.t ->
  ?domains:int ->
  ?stop_on_failure:bool ->
  config ->
  profile:Gen.profile ->
  bias:Gen.bias ->
  length:int ->
  seed:int ->
  count:int ->
  sweep
