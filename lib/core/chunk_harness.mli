(** Component-level conformance checking of the chunk store (paper
    section 8.4): "we found it much easier to exercise corner case
    scenarios (especially fault scenarios) by writing tests that directly
    exercise internal component APIs".

    A dedicated operation alphabet drives the chunk store alone — no index,
    no shard semantics — against {!Model.Chunk_model}, checking payload
    conformance and the locator-uniqueness invariant on every step.
    Reclamation liveness comes from the harness's own live set, so the
    reclamation corner cases (issues #1 and #5) are reached in a handful of
    operations instead of whole-store sequences. *)

type op =
  | C_put of int  (** payload size *)
  | C_get of int  (** index into the chunks created so far *)
  | C_drop of int  (** mark a chunk dead (a delete's effect) *)
  | C_reclaim  (** reclaim the extent holding the oldest dead chunk *)
  | C_pump of int
  | C_fail_once of int  (** arm a one-shot IO failure on an extent *)

val pp_op : Format.formatter -> op -> unit

type failure = {
  step : int;
  op : op;
  message : string;
}

val pp_failure : Format.formatter -> failure -> unit

type outcome = Passed | Failed of failure

(** [run ~seed ~length] generates and checks one component-level
    sequence. Deterministic per seed. *)
val run : seed:int -> length:int -> op list * outcome

(** [hunt ?domains fault ~max_sequences ~seed] — enable [fault], run
    sequences until a check fails. Returns [(found, sequences_run)].
    [domains > 1] shards the hunt over a {!Par.search} (fault toggles
    are hoisted outside the parallel section); the result is identical
    to the sequential hunt for any domain count. *)
val hunt : ?domains:int -> Faults.t -> max_sequences:int -> seed:int -> bool * int
