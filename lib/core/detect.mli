(** Detection driver for the seeded-defect catalog (paper Fig. 5, our E1).

    For each property-based fault, runs random conformance sequences (with
    the profile appropriate to the fault's property class) until a check
    fails, then minimizes the counterexample. Concurrency faults
    (#11-#14, #16) are checked by the stateless-model-checking harnesses
    in the [conc] library, not here. *)

type method_ =
  | Pbt of Gen.profile  (** property-based conformance checking *)
  | Model_validation  (** property test of the reference model itself *)
  | Smc  (** stateless model checking (handled by the [conc] library) *)

val method_name : method_ -> string

(** The checker the methodology assigns to each fault. *)
val method_for : Faults.t -> method_

type result = {
  fault : Faults.t;
  found : bool;
  sequences : int;  (** sequences executed until detection (or the budget) *)
  total_ops : int;
  fired : int;
      (** times the injected defect's buggy branch ran — an exact atomic
          total, but under [~domains > 1] it includes speculative
          evaluations past the failing seed, so it is diagnostic only and
          excluded from the determinism guarantee (every other field is
          byte-identical across domain counts) *)
  failure : Harness.failure option;
  original : Op.summary option;
  minimized : Op.summary option;
  minimized_ops : Op.t list option;
  min_stats : Minimize.stats option;
}

val pp_result : Format.formatter -> result -> unit

(** [detect ?config ?domains ?length ?max_sequences ?minimize ~seed fault]
    enables [fault], hunts for it, disables it again. For [Smc] faults the
    result is [found = false] with zero work — use the [conc] harnesses.

    [domains] (default 1) shards the property-based hunt across OCaml
    domains via {!Harness.run_par}: the reported sequence count and
    counterexample are the sequential prefix's, identical for every domain
    count, and minimization always replays sequentially. Model-validation
    hunts use one shared random stream and stay sequential. *)
val detect :
  ?config:Harness.config ->
  ?domains:int ->
  ?length:int ->
  ?max_sequences:int ->
  ?minimize:bool ->
  seed:int ->
  Faults.t ->
  result

(** [baseline ?config ?length ~sequences ~seed profile] runs the same
    checkers with no fault enabled; any failure is a bug in this
    repository. Returns the number of sequences that failed (expect 0). *)
val baseline :
  ?config:Harness.config -> ?length:int -> sequences:int -> seed:int -> Gen.profile -> int
