type reboot_type = {
  flush_index : bool;
  flush_superblock : bool;
  persist_probability : float;
  split_pages : bool;
}

type t =
  | Get of string
  | Put of string * string
  | Delete of string
  | PutBatch of (string * string) list
  | DeleteBatch of string list
  | List
  | Scan of { lo : string option; hi : string option }
  | IndexFlush
  | SuperblockFlush
  | Compact
  | Reclaim
  | Pump of int
  | FailDiskOnce of int
  | FailDiskPermanent of int
  | HealDisk of int
  | RemoveFromService
  | ReturnToService
  | CleanReboot
  | DirtyReboot of reboot_type

let pp fmt = function
  | Get k -> Format.fprintf fmt "Get(%S)" k
  | Put (k, v) -> Format.fprintf fmt "Put(%S, %d bytes)" k (String.length v)
  | Delete k -> Format.fprintf fmt "Delete(%S)" k
  | PutBatch ops ->
    Format.fprintf fmt "PutBatch(%d ops, %d bytes)" (List.length ops)
      (List.fold_left (fun acc (_, v) -> acc + String.length v) 0 ops)
  | DeleteBatch keys -> Format.fprintf fmt "DeleteBatch(%d keys)" (List.length keys)
  | List -> Format.pp_print_string fmt "List"
  | Scan { lo; hi } ->
    let pp_bound fmt = function
      | None -> Format.pp_print_string fmt "-"
      | Some k -> Format.fprintf fmt "%S" k
    in
    Format.fprintf fmt "Scan[%a, %a]" pp_bound lo pp_bound hi
  | IndexFlush -> Format.pp_print_string fmt "IndexFlush"
  | SuperblockFlush -> Format.pp_print_string fmt "SuperblockFlush"
  | Compact -> Format.pp_print_string fmt "Compact"
  | Reclaim -> Format.pp_print_string fmt "Reclaim"
  | Pump n -> Format.fprintf fmt "Pump(%d)" n
  | FailDiskOnce e -> Format.fprintf fmt "FailDiskOnce(extent %d)" e
  | FailDiskPermanent e -> Format.fprintf fmt "FailDiskPermanent(extent %d)" e
  | HealDisk e -> Format.fprintf fmt "HealDisk(extent %d)" e
  | RemoveFromService -> Format.pp_print_string fmt "RemoveFromService"
  | ReturnToService -> Format.pp_print_string fmt "ReturnToService"
  | CleanReboot -> Format.pp_print_string fmt "CleanReboot"
  | DirtyReboot r ->
    Format.fprintf fmt "DirtyReboot{index=%b; sb=%b; p=%.2f; split=%b}" r.flush_index
      r.flush_superblock r.persist_probability r.split_pages

let to_string t = Format.asprintf "%a" pp t
let equal = Stdlib.( = )

let is_reboot = function
  | CleanReboot | DirtyReboot _ -> true
  | Get _ | Put _ | Delete _ | PutBatch _ | DeleteBatch _ | List | Scan _ | IndexFlush
  | SuperblockFlush | Compact | Reclaim | Pump _ | FailDiskOnce _ | FailDiskPermanent _
  | HealDisk _ | RemoveFromService | ReturnToService -> false

let is_failure = function
  | FailDiskOnce _ | FailDiskPermanent _ | HealDisk _ -> true
  | Get _ | Put _ | Delete _ | PutBatch _ | DeleteBatch _ | List | Scan _ | IndexFlush
  | SuperblockFlush | Compact | Reclaim | Pump _ | RemoveFromService | ReturnToService
  | CleanReboot | DirtyReboot _ -> false

let payload_bytes = function
  | Put (_, v) -> String.length v
  | PutBatch ops -> List.fold_left (fun acc (_, v) -> acc + String.length v) 0 ops
  | Get _ | Delete _ | DeleteBatch _ | List | Scan _ | IndexFlush | SuperblockFlush
  | Compact | Reclaim | Pump _ | FailDiskOnce _ | FailDiskPermanent _ | HealDisk _
  | RemoveFromService | ReturnToService | CleanReboot | DirtyReboot _ -> 0

type summary = { ops : int; crashes : int; bytes : int }

let summarize ops =
  List.fold_left
    (fun acc op ->
      {
        ops = acc.ops + 1;
        crashes = (acc.crashes + match op with DirtyReboot _ -> 1 | _ -> 0);
        bytes = acc.bytes + payload_bytes op;
      })
    { ops = 0; crashes = 0; bytes = 0 }
    ops

let pp_summary fmt s =
  Format.fprintf fmt "%d operations, including %d crashes and %d B of data" s.ops s.crashes
    s.bytes
