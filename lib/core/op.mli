(** The operation alphabet for conformance checking (paper Fig. 3).

    A property-based test is a sequence drawn from this alphabet: the
    store's API operations, background maintenance (no-ops in the
    reference model, included to validate they do not corrupt the
    mapping), component flush operations that refine crash states
    (section 5, "block-level crash states"), failure injection
    (section 4.4) and reboots.

    Constructors are ordered simple-first: shrinkers prefer earlier
    variants, so minimized counterexamples use the least exotic
    operations that still fail (section 4.3). *)

type reboot_type = {
  flush_index : bool;  (** flush the memtable before the crash *)
  flush_superblock : bool;
  persist_probability : float;  (** per-write persistence chance in the crash state *)
  split_pages : bool;  (** allow page-granular torn appends *)
}

type t =
  | Get of string
  | Put of string * string
  | Delete of string
  | PutBatch of (string * string) list
      (** one group-committed batch through {!Store.S.put_batch} *)
  | DeleteBatch of string list
  | List
  | Scan of { lo : string option; hi : string option }
      (** drain a {!Store.S.scan} cursor over [lo <= key <= hi]
          ([None] = unbounded) and check it against the model *)
  | IndexFlush
  | SuperblockFlush
  | Compact
  | Reclaim
  | Pump of int
  | FailDiskOnce of int
  | FailDiskPermanent of int
  | HealDisk of int
  | RemoveFromService
  | ReturnToService
  | CleanReboot
  | DirtyReboot of reboot_type

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool

(** True for DirtyReboot/CleanReboot. *)
val is_reboot : t -> bool

(** True for the failure-injection operations. *)
val is_failure : t -> bool

(** Payload bytes carried by the operation (Put value size). *)
val payload_bytes : t -> int

(** Summary of a sequence: length, crash count, total payload bytes — the
    quantities the paper's minimization anecdote reports. *)
type summary = { ops : int; crashes : int; bytes : int }

val summarize : t list -> summary
val pp_summary : Format.formatter -> summary -> unit
