(** Exhaustive block-level crash-state enumeration (paper section 5):

    "We have also implemented a variant of DirtyReboot that does enumerate
    crash states at the block level, similar to BOB and CrashMonkey.
    However, this exhaustive approach has not found additional bugs and is
    dramatically slower to test, so we do not use it by default."

    At a crash point, every dependency-closed, per-extent-prefix subset of
    the pending writes — including page-granular torn tails — is a reachable
    crash state. This module enumerates them (up to a cap), applies each to
    a {e clone} of the disk, recovers a fresh store on it, and checks the
    persistence property against the crash model's allowed survivors under
    that subset. Nothing about the live store is mutated. *)

type stats = {
  states : int;  (** crash states evaluated *)
  truncated : bool;  (** hit the cap before exhausting the space *)
  violations : int;
  first_violation : string option;
}

val pp_stats : Format.formatter -> stats -> unit

(** [enumerate ~store_config ~max_states ~include_torn store model] —
    enumerate and check the crash states reachable right now. *)
val enumerate :
  store_config:Harness.S.config ->
  max_states:int ->
  include_torn:bool ->
  Harness.S.t ->
  Model.Crash_model.t ->
  stats

(** [hook ~max_states ~acc] — a {!Harness} pre-crash hook that enumerates
    at every [DirtyReboot], accumulates into [acc], and reports the first
    violation (failing the harness run). *)
val hook :
  max_states:int -> acc:stats ref -> Harness.S.t -> Model.Crash_model.t -> string option
