open Util

type owner = Reserved | Free | Data

let pp_owner fmt = function
  | Reserved -> Format.pp_print_string fmt "reserved"
  | Free -> Format.pp_print_string fmt "free"
  | Data -> Format.pp_print_string fmt "data"

let owner_equal a b =
  match a, b with
  | Reserved, Reserved | Free, Free | Data, Data -> true
  | (Reserved | Free | Data), _ -> false

type error = Roll of Logroll.error

let pp_error fmt (Roll e) = Logroll.pp_error fmt e
let error_class (Roll e) = Logroll.error_class e

type t = {
  sched : Io_sched.t;
  roll : Logroll.t;
  initial_owners : owner array;
  owners : owner array;
  obs : Obs.t;
  m_records : Obs.Counter.t;
  m_withheld : Obs.Counter.t;
  m_recovers : Obs.Counter.t;
  mutable pending_free : (int * Dep.t) list;
      (** Free transitions whose basis (evacuations, index updates, reset)
          may not be durable yet; recorded only by the second flush record *)
  mutable promise : Dep.Promise.promise;
  mutable dirty : bool;
  mutable just_rebooted : bool;
}

let create ?obs sched ~extents ~reserved =
  let obs = match obs with Some o -> o | None -> Io_sched.obs sched in
  let n = Io_sched.extent_count sched in
  let owners = Array.make n Free in
  List.iter
    (fun e ->
      if e < 0 || e >= n then invalid_arg "Superblock.create: reserved extent out of range";
      owners.(e) <- Reserved)
    reserved;
  let a, b = extents in
  if owners.(a) <> Reserved || owners.(b) <> Reserved then
    invalid_arg "Superblock.create: own extents must be reserved";
  {
    sched;
    roll = Logroll.create ~obs sched ~extents ~name:"superblock";
    initial_owners = Array.copy owners;
    owners;
    obs;
    m_records = Obs.counter ~coverage:true obs "superblock.record";
    m_withheld = Obs.counter ~coverage:true obs "superblock.free_claim_withheld";
    m_recovers = Obs.counter obs "superblock.recover";
    pending_free = [];
    promise = Dep.Promise.create ();
    dirty = false;
    just_rebooted = false;
  }

let owner t ~extent = t.owners.(extent)

let set_owner t ~extent o ~dep =
  t.owners.(extent) <- o;
  (match o with
  | Free -> t.pending_free <- (extent, dep) :: t.pending_free
  | Data | Reserved ->
    (* Re-allocation supersedes a not-yet-recorded Free transition. *)
    t.pending_free <- List.remove_assoc extent t.pending_free);
  t.dirty <- true

let extents_with t o =
  let acc = ref [] in
  Array.iteri (fun i ow -> if owner_equal ow o then acc := i :: !acc) t.owners;
  List.rev !acc

let free_extents t = extents_with t Free
let data_extents t = extents_with t Data

let note_append t ~extent =
  ignore extent;
  t.dirty <- true;
  (* Fault #8: writes did not include a dependency on the soft write
     pointer update. *)
  if Faults.enabled Faults.F8_missing_pointer_dep then begin
    Faults.record_fired Faults.F8_missing_pointer_dep;
    Dep.trivial
  end
  else Dep.Promise.dep t.promise

let dirty t = t.dirty

let owner_tag = function Reserved -> 0 | Free -> 1 | Data -> 2

let owner_of_tag = function
  | 0 -> Some Reserved
  | 1 -> Some Free
  | 2 -> Some Data
  | _ -> None

(* Extents with a Free transition whose basis (evacuations, index updates,
   the reset) is not durable yet are rendered as still Data-owned: a record
   must never claim Free ahead of the transition's dependency. Rendering is
   what delays the claim, so records themselves never need input
   dependencies — which is what keeps the writeback graph acyclic. *)
let encode t =
  let n = Array.length t.owners in
  let w = Codec.Writer.create ~capacity:(8 + (n * 9)) () in
  Codec.Writer.u32 w (Int32.of_int n);
  Array.iteri
    (fun i o ->
      let o =
        if owner_equal o Free && List.mem_assoc i t.pending_free then Data else o
      in
      Codec.Writer.u8 w (owner_tag o);
      Codec.Writer.u32 w (Int32.of_int (Io_sched.epoch t.sched ~extent:i));
      Codec.Writer.u32 w (Int32.of_int (Io_sched.soft_ptr t.sched ~extent:i)))
    t.owners;
  Codec.Writer.contents w

let decode payload n =
  let open Codec.Syntax in
  let r = Codec.Reader.of_string payload in
  let* count32 = Codec.Reader.u32 r in
  let count = Int32.to_int count32 in
  if count <> n then Error (Codec.Invalid "extent count mismatch")
  else begin
    let owners = Array.make n Free in
    let rec go i =
      if i = n then Ok owners
      else
        let* tag = Codec.Reader.u8 r in
        let* _epoch = Codec.Reader.u32 r in
        let* _ptr = Codec.Reader.u32 r in
        match owner_of_tag tag with
        | None -> Error (Codec.Invalid "owner tag")
        | Some o ->
          owners.(i) <- o;
          go (i + 1)
    in
    go 0
  end

(* A flush first ripens Free transitions whose dependency has persisted
   (they may now be recorded), then writes one record with trivial input.
   Fault #6 ripens transitions regardless of persistence right after a
   reboot, so a crash can leave a durable Free claim whose basis was
   lost. *)
let flush t =
  let ripen () =
    if Faults.enabled Faults.F6_superblock_ownership_dep && t.just_rebooted then begin
      Faults.record_fired Faults.F6_superblock_ownership_dep;
      t.pending_free <- []
    end
    else t.pending_free <- List.filter (fun (_, dep) -> not (Dep.is_persistent dep)) t.pending_free
  in
  ripen ();
  if t.pending_free <> [] then Obs.Counter.incr t.m_withheld;
  Obs.Counter.incr t.m_records;
  if Obs.tracing t.obs then
    Obs.emit t.obs ~layer:"superblock" "record"
      [ ("withheld", string_of_int (List.length t.pending_free)) ];
  match Logroll.append t.roll ~payload:(encode t) ~input:Dep.trivial with
  | Error e -> Error (Roll e)
  | Ok dep ->
    Dep.Promise.bind t.promise dep;
    t.promise <- Dep.Promise.create ();
    t.dirty <- false;
    t.just_rebooted <- false;
    Ok dep

let recover t =
  Obs.Counter.incr t.m_recovers;
  t.pending_free <- [];
  t.promise <- Dep.Promise.create ();
  t.dirty <- false;
  t.just_rebooted <- true;
  match Logroll.recover t.roll with
  | None ->
    Array.blit t.initial_owners 0 t.owners 0 (Array.length t.owners);
    false
  | Some (_gen, payload) -> (
    match decode payload (Array.length t.owners) with
    | Ok owners ->
      Array.blit owners 0 t.owners 0 (Array.length owners);
      true
    | Error _ ->
      (* A record that passed the logroll CRC but fails structural decode
         indicates version skew; fall back to the creation state. *)
      Array.blit t.initial_owners 0 t.owners 0 (Array.length t.owners);
      false)

let generation t = Logroll.generation t.roll
