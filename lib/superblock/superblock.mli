(** The superblock: extent ownership and soft-write-pointer records.

    ShardStore tracks a soft write pointer for each extent in memory and
    persists them, together with extent ownership, in a superblock flushed
    on a regular cadence (paper section 2.1). Three pieces of the crash-
    consistency story live here:

    - {!note_append} hands out the {e cadence promise}: every append's
      returned dependency includes the superblock record that will cover
      its soft-pointer update (Fig. 2), so nothing is considered durable
      until the covering superblock generation is on disk.
    - {!set_owner} accumulates {e transition dependencies}: an extent may
      be recorded [Free] only in a record whose dependency covers the
      chunk evacuations, index updates and the reset that freed it. This
      is what makes it safe for the allocator to reuse recorded-[Free]
      extents without re-scanning them.
    - {!recover} adopts the ownership map of the newest durable record.

    Fault sites: #6 (transition dependencies dropped after a reboot) and
    #8 (cadence promise omitted from append dependencies). *)

type owner =
  | Reserved  (** superblock or metadata extent; never allocated for data *)
  | Free  (** reusable; guaranteed unreferenced when recorded durable *)
  | Data  (** owned by the chunk store *)

val pp_owner : Format.formatter -> owner -> unit
val owner_equal : owner -> owner -> bool

type t

type error = Roll of Logroll.error

val pp_error : Format.formatter -> error -> unit

(** See {!Io_sched.error_class}. *)
val error_class : error -> [ `Transient | `Permanent | `Resource | `Fatal ]

(** [create ?obs sched ~extents ~reserved] — a fresh superblock on reserved
    extent pair [extents]; every extent in [reserved] (which must include
    the pair itself) starts [Reserved], all others [Free]. No record is
    written until the first {!flush}. Metrics (coverage-linked
    [superblock.record] / [superblock.free_claim_withheld], plus
    [superblock.recover]) land in [obs], defaulting to the scheduler's
    registry. *)
val create : ?obs:Obs.t -> Io_sched.t -> extents:int * int -> reserved:int list -> t

val owner : t -> extent:int -> owner
val set_owner : t -> extent:int -> owner -> dep:Dep.t -> unit

(** Extents currently recorded or staged as [Free], in index order. *)
val free_extents : t -> int list

val data_extents : t -> int list

(** [note_append t ~extent] — record that [extent]'s soft pointer moved and
    return the dependency on the covering (future) superblock record. *)
val note_append : t -> extent:int -> Dep.t

(** True when pointer updates or ownership transitions await a flush. *)
val dirty : t -> bool

(** [flush t] writes the next superblock generation, binding the cadence
    promise. Returns the record's dependency. *)
val flush : t -> (Dep.t, error) result

(** [recover t] re-reads ownership from the newest durable record. Returns
    [false] when no record exists (fresh disk): ownership is reset to the
    creation state. *)
val recover : t -> bool

val generation : t -> int
