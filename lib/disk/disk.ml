type config = {
  extent_count : int;
  pages_per_extent : int;
  page_size : int;
}

let default_config = { extent_count = 16; pages_per_extent = 16; page_size = 64 }

let extent_size c = c.pages_per_extent * c.page_size

type io_error =
  | Transient
  | Permanent
  | Out_of_bounds of string

let pp_io_error fmt = function
  | Transient -> Format.pp_print_string fmt "transient IO error"
  | Permanent -> Format.pp_print_string fmt "permanent IO error"
  | Out_of_bounds msg -> Format.fprintf fmt "out of bounds: %s" msg

type fault_state = Healthy | Fail_once | Fail_always

type extent = {
  data : Bytes.t;
  mutable hard_ptr : int;
  mutable epoch : int;
  mutable fault : fault_state;
}

(* Registry handles; resolved once per registry attachment. *)
type metrics = {
  reads : Obs.Counter.t;
  writes : Obs.Counter.t;
  resets : Obs.Counter.t;
  bytes_written : Obs.Counter.t;
  injected : Obs.Counter.t;
}

let make_metrics obs =
  {
    reads = Obs.counter obs "disk.read";
    writes = Obs.counter obs "disk.write";
    resets = Obs.counter obs "disk.reset";
    bytes_written = Obs.counter obs "disk.bytes_written";
    injected = Obs.counter obs "disk.fault_injected";
  }

(* Seeded random arming: every IO rolls the dice instead of hand-placed
   per-extent faults. Chaos campaigns use this so fault placement is part
   of the replayable seed, not the script. *)
type random_faults = {
  rng : Util.Rng.t;
  transient_prob : float;
  permanent_prob : float;
}

type t = {
  config : config;
  extents : extent array;
  mutable obs : Obs.t;
  mutable m : metrics;
  mutable shadow : Sanitize.Page_shadow.t option;
  mutable random : random_faults option;
}

let create ?obs ?shadow config =
  assert (config.extent_count > 0 && config.pages_per_extent > 0 && config.page_size > 0);
  let size = extent_size config in
  let mk _ = { data = Bytes.make size '\000'; hard_ptr = 0; epoch = 0; fault = Healthy } in
  let obs = match obs with Some o -> o | None -> Obs.create ~scope:"disk" () in
  {
    config;
    extents = Array.init config.extent_count mk;
    obs;
    m = make_metrics obs;
    shadow;
    random = None;
  }

let copy t =
  let obs = Obs.create ~scope:"disk" () in
  {
    config = t.config;
    extents =
      Array.map
        (fun e ->
          { data = Bytes.copy e.data; hard_ptr = e.hard_ptr; epoch = e.epoch; fault = Healthy })
        t.extents;
    obs;
    m = make_metrics obs;
    (* Clones are scratch space for the crash-state enumerator; shadow
       checking stays on the primary view only, and so does fault arming. *)
    shadow = None;
    random = None;
  }

let attach_shadow t shadow = t.shadow <- Some shadow
let shadow t = t.shadow

let obs t = t.obs

(* Re-home the disk's metrics onto [obs] (the store does this when opening
   a stack on an existing disk, so one registry covers every layer).
   Counts accumulated so far carry over. *)
let attach_obs t obs =
  let m = make_metrics obs in
  Obs.Counter.add m.reads (Obs.Counter.value t.m.reads);
  Obs.Counter.add m.writes (Obs.Counter.value t.m.writes);
  Obs.Counter.add m.resets (Obs.Counter.value t.m.resets);
  Obs.Counter.add m.bytes_written (Obs.Counter.value t.m.bytes_written);
  Obs.Counter.add m.injected (Obs.Counter.value t.m.injected);
  t.obs <- obs;
  t.m <- m

let config t = t.config

let get_extent t extent =
  if extent < 0 || extent >= t.config.extent_count then
    Error (Out_of_bounds (Printf.sprintf "extent %d (of %d)" extent t.config.extent_count))
  else Ok t.extents.(extent)

let injected t kind =
  Obs.Counter.incr t.m.injected;
  if Obs.tracing t.obs then Obs.emit t.obs ~layer:"disk" "fault_injected" [ ("kind", kind) ]

(* Deliver an armed failure, if any; Fail_once disarms itself. Extents
   with no armed fault additionally roll the seeded random arming: a
   permanent hit leaves the extent failed (like a media error) until
   {!heal}, a transient hit fails just this IO. *)
let check_fault t e =
  match e.fault with
  | Healthy -> (
    match t.random with
    | None -> Ok ()
    | Some { rng; transient_prob; permanent_prob } ->
      if Util.Rng.chance rng permanent_prob then begin
        e.fault <- Fail_always;
        injected t "random_permanent";
        Error Permanent
      end
      else if Util.Rng.chance rng transient_prob then begin
        injected t "random_transient";
        Error Transient
      end
      else Ok ())
  | Fail_once ->
    e.fault <- Healthy;
    injected t "once";
    Error Transient
  | Fail_always ->
    injected t "always";
    Error Permanent

let hard_ptr t ~extent =
  match get_extent t extent with
  | Ok e -> e.hard_ptr
  | Error _ -> invalid_arg "Disk.hard_ptr: bad extent"

let epoch t ~extent =
  match get_extent t extent with
  | Ok e -> e.epoch
  | Error _ -> invalid_arg "Disk.epoch: bad extent"

let ( let* ) = Result.bind

let write t ~extent ~off data =
  let* e = get_extent t extent in
  let* () = check_fault t e in
  let len = String.length data in
  if off <> e.hard_ptr then
    Error (Out_of_bounds (Printf.sprintf "non-sequential write at %d, pointer %d" off e.hard_ptr))
  else if off + len > extent_size t.config then
    Error (Out_of_bounds (Printf.sprintf "write past extent end: %d + %d" off len))
  else begin
    Bytes.blit_string data 0 e.data off len;
    e.hard_ptr <- off + len;
    Obs.Counter.incr t.m.writes;
    Obs.Counter.add t.m.bytes_written len;
    (* Shadow commits only on success: the shadow mirrors the durable view. *)
    (match t.shadow with
    | Some s -> Sanitize.Page_shadow.on_write s ~extent ~off ~len
    | None -> ());
    Ok ()
  end

let read ?expect_epoch t ~extent ~off ~len =
  let* e = get_extent t extent in
  let* () = check_fault t e in
  (* Check-only, on the attempt: a faulting read (e.g. past the rewound
     pointer of a reset extent) is reported here even though the bounds
     check below rejects it. *)
  (match t.shadow with
  | Some s -> Sanitize.Page_shadow.on_read ?expect_epoch s ~extent ~off ~len
  | None -> ());
  if len < 0 || off < 0 then Error (Out_of_bounds "negative offset or length")
  else if off + len > e.hard_ptr then
    Error
      (Out_of_bounds
         (Printf.sprintf "read [%d, %d) beyond write pointer %d" off (off + len) e.hard_ptr))
  else begin
    Obs.Counter.incr t.m.reads;
    Ok (Bytes.sub_string e.data off len)
  end

let reset ?epoch t ~extent =
  let* e = get_extent t extent in
  let* () = check_fault t e in
  Bytes.fill e.data 0 (Bytes.length e.data) '\000';
  e.hard_ptr <- 0;
  e.epoch <- (match epoch with Some v -> v | None -> e.epoch + 1);
  Obs.Counter.incr t.m.resets;
  (match t.shadow with
  | Some s -> Sanitize.Page_shadow.on_reset s ~extent ~epoch:e.epoch
  | None -> ());
  Ok ()

let consume_fault t ~extent =
  let* e = get_extent t extent in
  check_fault t e

let set_fault t ~extent st =
  match get_extent t extent with
  | Ok e -> e.fault <- st
  | Error _ -> invalid_arg "Disk: bad extent for fault injection"

let fail_once t ~extent = set_fault t ~extent Fail_once
let fail_permanently t ~extent = set_fault t ~extent Fail_always
let heal t ~extent = set_fault t ~extent Healthy

let arm_random_faults t ~rng ~transient_prob ~permanent_prob =
  if transient_prob < 0. || permanent_prob < 0. then
    invalid_arg "Disk.arm_random_faults: negative probability";
  t.random <- Some { rng; transient_prob; permanent_prob }

let disarm_random_faults t = t.random <- None

let heal_all t =
  Array.iter (fun e -> e.fault <- Healthy) t.extents;
  t.random <- None

let injected_failures t = Obs.Counter.value t.m.injected

let with_faults_suspended t f =
  let saved = Array.map (fun e -> e.fault) t.extents in
  let saved_random = t.random in
  Array.iter (fun e -> e.fault <- Healthy) t.extents;
  t.random <- None;
  Fun.protect
    ~finally:(fun () ->
      Array.iteri (fun i e -> e.fault <- saved.(i)) t.extents;
      t.random <- saved_random)
    f

let durable_image t ~extent =
  match get_extent t extent with
  | Ok e -> Bytes.sub_string e.data 0 e.hard_ptr
  | Error _ -> invalid_arg "Disk.durable_image: bad extent"

let page_of_offset t off = off / t.config.page_size
