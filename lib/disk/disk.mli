(** In-memory user-space disk.

    The disk models the durable medium under ShardStore: a fixed array of
    {e extents} (contiguous regions), each accepting only sequential
    (append-only) writes tracked by a {e hard write pointer}, with a [reset]
    operation that rewinds the pointer and bumps the extent's {e epoch} so
    stale data becomes unreadable (paper section 2.1).

    The paper's validation runs the implementation against exactly such an
    in-memory disk for determinism (section 4.1). Writes here are
    {e durable by definition}: the volatile staging of pending writes lives
    above, in {!Io_sched}. Failure injection (transient and permanent IO
    errors, section 4.4) is armed per extent. *)

type config = {
  extent_count : int;  (** number of extents, including reserved ones *)
  pages_per_extent : int;
  page_size : int;  (** bytes per page; crash states are page-granular *)
}

val default_config : config

(** Bytes per extent. *)
val extent_size : config -> int

type io_error =
  | Transient  (** one-shot failure; a retry may succeed *)
  | Permanent  (** extent is failed until {!heal} *)
  | Out_of_bounds of string  (** invalid extent, offset or length *)

val pp_io_error : Format.formatter -> io_error -> unit

type t

(** [create ?obs ?shadow config] — a fresh, zeroed disk. Metrics
    ([disk.read], [disk.write], [disk.reset], [disk.bytes_written],
    [disk.fault_injected]) land in [obs] when given, else in a private
    registry. [shadow] attaches a page-lifecycle sanitizer (see
    {!attach_shadow}). *)
val create : ?obs:Obs.t -> ?shadow:Sanitize.Page_shadow.t -> config -> t

(** [copy t] — deep copy of the durable state (fault arming reset to
    healthy). The crash-state enumerator evaluates candidate crash states
    on clones. *)
val copy : t -> t

val config : t -> config

(** {2 Observability} *)

(** The registry this disk's metrics currently land in. *)
val obs : t -> Obs.t

(** [attach_obs t obs] re-homes the disk's metrics onto [obs], carrying
    accumulated counts over. {!Store.S.of_disk} uses this so one registry
    covers the whole stack when a store is opened on an existing disk. *)
val attach_obs : t -> Obs.t -> unit

(** {2 Page-lifecycle sanitizer} *)

(** [attach_shadow t shadow] enables shadow checking of this disk's
    durable view: successful writes and resets commit shadow state, and
    every read attempt is checked (read-after-reset, stale epoch,
    unwritten pages) — see {!Sanitize.Page_shadow}. Attach a shadow to a
    fresh disk only: the shadow assumes it observes the extent lifecycle
    from the beginning. [copy] never carries the shadow over (crash-state
    clones are scratch space). *)
val attach_shadow : t -> Sanitize.Page_shadow.t -> unit

val shadow : t -> Sanitize.Page_shadow.t option

(** [hard_ptr t ~extent] is the device write pointer: the number of bytes
    physically written since the last durable reset. Models the queryable
    zone pointer of zoned devices; recovery trusts this value. *)
val hard_ptr : t -> extent:int -> int

(** [epoch t ~extent] counts durable resets of the extent. Locators embed
    the epoch so reads of recycled extents are detected. *)
val epoch : t -> extent:int -> int

(** [write t ~extent ~off data] appends durably. [off] must equal the
    current hard pointer (sequential-write discipline); the scheduler
    guarantees this by issuing per-extent IOs in order. *)
val write : t -> extent:int -> off:int -> string -> (unit, io_error) result

(** [read ?expect_epoch t ~extent ~off ~len] reads durable bytes. Reading
    at or beyond the hard pointer is rejected: ShardStore forbids reads
    past an extent's write pointer. [expect_epoch] is the epoch the caller
    believes current (a locator epoch); when a shadow is attached, a
    mismatch against the touched pages' birth epoch is reported as a read
    of a recycled extent — at this faulting read, before any rejection. *)
val read : ?expect_epoch:int -> t -> extent:int -> off:int -> len:int -> (string, io_error) result

(** [reset ?epoch t ~extent] durably rewinds the write pointer and bumps
    the epoch (to [epoch] when given — the scheduler mints session-monotone
    epochs and the durable value must match the one embedded in locators).
    Physical bytes are scrubbed to zero to model unreadability. *)
val reset : ?epoch:int -> t -> extent:int -> (unit, io_error) result

(** {2 Failure injection} *)

(** [fail_once t ~extent] makes the next IO (read or write) touching
    [extent] fail with {!Transient}. *)
val fail_once : t -> extent:int -> unit

(** [fail_permanently t ~extent] fails all IO to [extent] until {!heal}. *)
val fail_permanently : t -> extent:int -> unit

val heal : t -> extent:int -> unit

(** [heal_all t] clears every per-extent fault {e and} disarms random
    arming — the "replace the broken hardware" step a chaos campaign runs
    before checking convergence. *)
val heal_all : t -> unit

(** [arm_random_faults t ~rng ~transient_prob ~permanent_prob] makes every
    IO on a healthy extent roll [rng]: with [permanent_prob] the extent
    fails permanently (as {!fail_permanently}, until {!heal}), else with
    [transient_prob] just that IO fails with {!Transient}. Seeded through
    [rng], so a campaign's fault placement replays from its seed instead
    of being hand-placed. Suspended by {!with_faults_suspended}; never
    carried over by {!copy}. *)
val arm_random_faults :
  t -> rng:Util.Rng.t -> transient_prob:float -> permanent_prob:float -> unit

val disarm_random_faults : t -> unit

(** [consume_fault t ~extent] delivers an armed failure (disarming a
    one-shot) without performing IO. Layers that stage or cache IO above the
    durable medium (the scheduler's volatile reads, the buffer cache) call
    this so injected faults hit them too. *)
val consume_fault : t -> extent:int -> (unit, io_error) result

(** Total number of injected failures delivered so far. *)
val injected_failures : t -> int

(** [with_faults_suspended t f] runs [f] with failure injection disabled
    (per-extent arming and random arming alike) and
    restores arming afterwards. The crash-state generator uses this: the
    writes it applies represent IO that already completed before the crash,
    so arming must not fire on them. *)
val with_faults_suspended : t -> (unit -> 'a) -> 'a

(** {2 Introspection for checkers} *)

(** [durable_image t ~extent] is a copy of the extent's durable bytes up to
    the hard pointer (test/debug use). *)
val durable_image : t -> extent:int -> string

(** [page_of_offset t off] is the page index containing byte [off]. *)
val page_of_offset : t -> int -> int
