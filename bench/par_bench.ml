(* E14 bench gate: the multicore validation engine must (a) return
   byte-identical results at every domain count — always checked, on any
   hardware — and (b) actually scale: Fig. 5 catalog wall clock >= 2.5x
   faster at 4 domains than at 1. The speedup gate only runs when the host
   recommends >= 4 domains (Domain.recommended_domain_count); determinism
   is checkable anywhere (spawning more domains than cores just adds
   overhead), but a speedup assertion on a 1-core CI box would measure the
   scheduler, not this code.

   Environment:
     PAR_BENCH_SMOKE=1   small budgets, domain counts {1, 2} — the CI
                         par-smoke determinism gate, < 1 min *)

let smoke = Sys.getenv_opt "PAR_BENCH_SMOKE" = Some "1"
let cores = Par.default_domains ()

let () =
  Printf.printf "par bench: multicore validation engine%s (host recommends %d domain(s))\n\n"
    (if smoke then " (smoke)" else "")
    cores;
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let budget =
    if smoke then
      {
        Experiments.Fig5.quick_budget with
        Experiments.Fig5.pbt_sequences = 300;
        f10_sequences = 500;
        smc_schedules = 5_000;
      }
    else Experiments.Fig5.quick_budget
  in
  let campaigns = if smoke then 12 else 50 in
  let report = Experiments.Par_scaling.run ~domain_counts ~budget ~campaigns () in
  Experiments.Par_scaling.print report;
  (* Append a commit-stamped record: per-arm wall clock as a latency
     histogram, speedups as the headline metrics. *)
  let rec_obs = Obs.create ~scope:"par-bench" ~trace_capacity:0 () in
  let arm_metrics prefix rows =
    List.concat_map
      (fun r ->
        let lat = Obs.histogram rec_obs (Printf.sprintf "%s.arm_ms" prefix) in
        Obs.Histogram.observe lat (r.Experiments.Par_scaling.seconds *. 1e3);
        [
          ( Printf.sprintf "%s_speedup_d%d" prefix r.Experiments.Par_scaling.domains,
            r.Experiments.Par_scaling.speedup );
        ])
      rows
  in
  (* Wire-trace capture cost on the chaos sweep: the same seeded
     campaigns bare and with recorders attached. Capture must not change
     the merged summary (the determinism guarantee extends to traced
     runs), and the wall-clock ratio is the price of recording. *)
  Faults.disable_all ();
  let cap_campaigns = if smoke then 20 else 100 in
  let chaos_bare = Experiments.Chaos.run ~domains:2 ~campaigns:cap_campaigns ~seed:0 () in
  let chaos_taped =
    Experiments.Chaos.run ~domains:2 ~campaigns:cap_campaigns ~seed:0 ~capture:true ()
  in
  Printf.printf "\nchaos capture cost (%d campaigns): %.2fs bare, %.2fs recording (%.2fx)\n"
    cap_campaigns chaos_bare.Experiments.Chaos.seconds chaos_taped.Experiments.Chaos.seconds
    (chaos_taped.Experiments.Chaos.seconds /. chaos_bare.Experiments.Chaos.seconds);
  let metrics =
    arm_metrics "fig5" report.Experiments.Par_scaling.fig5
    @ arm_metrics "chaos" report.Experiments.Par_scaling.chaos
    @ [
        ( "chaos_campaigns_per_sec_nocapture",
          float_of_int cap_campaigns /. chaos_bare.Experiments.Chaos.seconds );
        ( "chaos_campaigns_per_sec_capture",
          float_of_int cap_campaigns /. chaos_taped.Experiments.Chaos.seconds );
        ( "chaos_capture_overhead",
          chaos_taped.Experiments.Chaos.seconds /. chaos_bare.Experiments.Chaos.seconds );
      ]
  in
  let record =
    Bench_record.append ~bench:"par"
      ~domains:(List.fold_left max 1 domain_counts)
      ~workload:
        [
          ("domain_counts", String.concat "," (List.map string_of_int domain_counts));
          ("campaigns", string_of_int campaigns);
          ("smoke", string_of_bool smoke);
        ]
      ~metrics ~obs:rec_obs ()
  in
  Printf.printf "recorded -> %s\n" record;
  if not (Experiments.Par_scaling.all_identical report) then begin
    Printf.printf "\nFAIL: results diverged across domain counts\n";
    exit 1
  end;
  (* Traces themselves differ (one is empty), so compare the summaries
     with wall clock and per-report traces masked out. *)
  let capture_key (s : Experiments.Chaos.summary) =
    {
      s with
      Experiments.Chaos.seconds = 0.;
      failed = List.map (fun r -> { r with Experiments.Chaos.trace = [] }) s.failed;
    }
  in
  if capture_key chaos_bare <> capture_key chaos_taped then begin
    Printf.printf "\nFAIL: chaos summary changed when capture was enabled\n";
    exit 1
  end;
  let fig5_speedup_at_4 =
    List.find_opt
      (fun r -> r.Experiments.Par_scaling.domains = 4)
      report.Experiments.Par_scaling.fig5
    |> Option.map (fun r -> r.Experiments.Par_scaling.speedup)
  in
  match fig5_speedup_at_4 with
  | Some s when cores >= 4 ->
    if s < 2.5 then begin
      Printf.printf "\nFAIL: Fig. 5 speedup at 4 domains %.2fx < 2.5x on a %d-core host\n" s
        cores;
      exit 1
    end
    else Printf.printf "\nspeedup gate passed: %.2fx >= 2.5x at 4 domains\n" s
  | Some s ->
    Printf.printf
      "\nspeedup gate skipped: host recommends %d domain(s) < 4 (measured %.2fx, determinism \
       still enforced)\n"
      cores s
  | None -> Printf.printf "\nspeedup gate skipped: no 4-domain arm in this run\n"
