(* E17 bench gate: what a racing maintenance domain costs the foreground.
   Four arms over identical seeded workloads (Experiments.Maint_contention):
   no flushing at all, the global-stack-lock baseline (foreground stalls on
   its own whole-drain flushes — the pre-maintenance-plane discipline),
   maintenance with whole-drain stack holds (flush_chunk = 0), and
   maintenance with narrowed per-chunk stack holds. Always checked, on any
   hardware: zero errors, maintenance actually ran, single-domain
   byte-identity vs Store.Default, and the headline — foreground
   throughput with a racing narrowed flush >= the global-stack-lock
   baseline. The narrow-vs-coarse racing ordering is recorded everywhere
   but only asserted when the host recommends >= 2 domains — on a 1-core
   box every chunk boundary is a forced context switch, so that ordering
   measures the scheduler's timeslicing, not this code.

   Environment:
     MAINT_BENCH_SMOKE=1   small budgets, 2 foreground domains — the CI
                           maint-smoke arm, well under a minute *)

let smoke = Sys.getenv_opt "MAINT_BENCH_SMOKE" = Some "1"
let cores = Par.default_domains ()

let () =
  Printf.printf "maint bench: foreground vs maintenance contention%s (host recommends %d domain(s))\n\n"
    (if smoke then " (smoke)" else "")
    cores;
  let domains = if smoke then 2 else 4 in
  let ops_per_domain = if smoke then 600 else 4000 in
  let repeats = if smoke then 3 else 5 in
  let r =
    Experiments.Maint_contention.run ~domains ~ops_per_domain ~repeats ~seed:1 ()
  in
  Experiments.Maint_contention.print r;
  let arm = Experiments.Maint_contention.arm r in
  let maint_stat f label =
    match (arm label).Experiments.Maint_contention.maint with
    | None -> 0.0
    | Some s -> float_of_int (f s)
  in
  let record =
    Bench_record.append ~bench:"maint" ~domains
      ~workload:
        [
          ("ops_per_domain", string_of_int r.Experiments.Maint_contention.ops_per_domain);
          ("keys", string_of_int r.Experiments.Maint_contention.keys);
          ("value_bytes", string_of_int r.Experiments.Maint_contention.value_bytes);
          ("repeats", string_of_int r.Experiments.Maint_contention.repeats);
          ("smoke", string_of_bool smoke);
        ]
      ~metrics:
        [
          ("fg_only_ops_per_sec", (arm "fg-only").Experiments.Maint_contention.ops_per_sec);
          ( "inline_coarse_ops_per_sec",
            (arm "inline-coarse").Experiments.Maint_contention.ops_per_sec );
          ( "maint_coarse_ops_per_sec",
            (arm "maint-coarse").Experiments.Maint_contention.ops_per_sec );
          ( "maint_narrow_ops_per_sec",
            (arm "maint-narrow").Experiments.Maint_contention.ops_per_sec );
          ( "narrow_vs_baseline",
            (arm "maint-narrow").Experiments.Maint_contention.ops_per_sec
            /. Float.max 1e-9 (arm "inline-coarse").Experiments.Maint_contention.ops_per_sec );
          ( "narrow_vs_coarse",
            (arm "maint-narrow").Experiments.Maint_contention.ops_per_sec
            /. Float.max 1e-9 (arm "maint-coarse").Experiments.Maint_contention.ops_per_sec );
          ( "coarse_flushes",
            maint_stat (fun s -> s.Store.Shared.Maint.flushes) "maint-coarse" );
          ( "narrow_flushes",
            maint_stat (fun s -> s.Store.Shared.Maint.flushes) "maint-narrow" );
          ( "narrow_drained",
            maint_stat (fun s -> s.Store.Shared.Maint.drained) "maint-narrow" );
          ("conformance_ok", if r.Experiments.Maint_contention.conformance_ok then 1.0 else 0.0);
        ]
      ()
  in
  Printf.printf "recorded -> %s\n" record;
  if not (Experiments.Maint_contention.ok r) then begin
    Printf.printf "\nFAIL: errors or byte-identity failure in a maintenance arm\n";
    exit 1
  end;
  if not (Experiments.Maint_contention.narrow_beats_baseline r) then begin
    Printf.printf
      "\nFAIL: racing narrowed flushes cost the foreground more than stalling on its own \
       global-stack-lock flushes\n";
    exit 1
  end;
  if cores >= 2 && not (Experiments.Maint_contention.narrow_beats_coarse r) then begin
    Printf.printf
      "\nFAIL: narrowed flushes cost the foreground more than whole-drain stack holds\n";
    exit 1
  end;
  if cores < 2 then
    Printf.printf
      "(1-core host: narrow-vs-coarse racing ordering recorded above, asserted only on \
       multi-core runners)\n";
  Printf.printf "\nmaint bench ok\n"
