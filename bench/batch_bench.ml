(* Batched request plane: put_batch (group commit) vs a sequential put
   loop, same total work per arm. Reports ops/sec per batch size plus the
   amortization counters, and the speedup over the sequential arm — the
   number recorded in EXPERIMENTS.md ("Batch throughput").

   Workload: small-object ingest (64 B values), the regime where
   per-request overhead dominates and group commit pays. Both arms run
   the same ingest-tuned maintenance cadence (index flush every 128 keys,
   compaction at 12 runs) sized to the 1024-op workload, so LSM
   maintenance — identical work in both arms — does not drown the
   request-plane cost being measured.

   Environment:
     BATCH_BENCH_SMOKE=1   tiny op budget (CI smoke job, < 30 s) *)

module S = Store.Default
module Sh = Store.Shared

let smoke = Sys.getenv_opt "BATCH_BENCH_SMOKE" = Some "1"
let ops_total = if smoke then 192 else 1024
let value_bytes = 64
let repeats = if smoke then 1 else 3

let config =
  { S.default_config with S.index_flush_threshold = 128; S.compact_threshold = 12 }

let fail_on fmt = Format.kasprintf failwith fmt

(* The workload is precomputed so the timed region measures the store, not
   sprintf: [ops] is the flat key/value list, [batches n] the same ops cut
   into groups of [n]. *)
let ops =
  Array.init ops_total (fun i ->
      ( Printf.sprintf "k-%06d" i,
        String.init value_bytes (fun j -> Char.chr (33 + ((i + j) mod 90))) ))

let batches n =
  let out = ref [] in
  let i = ref 0 in
  while !i < ops_total do
    let m = min n (ops_total - !i) in
    out := List.init m (fun j -> ops.(!i + j)) :: !out;
    i := !i + m
  done;
  List.rev !out

(* Latency histograms for the appended BENCH_batch.json record. The two
   clock reads per request are paid identically by every arm, so the
   relative throughput numbers stay honest. *)
let rec_obs = Obs.create ~scope:"batch-bench" ~trace_capacity:0 ()

(* One arm: write [ops_total] unique shards in batches of [n] (n = 1 uses
   the scalar put path), then make everything durable so each arm pays for
   the same end state. Returns (elapsed seconds, appends, ios issued). *)
let run_arm ~lat ~batch_size:n =
  let s = S.create config in
  let work = if n = 1 then [] else batches n in
  let observe t = Obs.Histogram.observe lat ((Unix.gettimeofday () -. t) *. 1e6) in
  let t0 = Unix.gettimeofday () in
  if n = 1 then
    Array.iteri
      (fun i (key, value) ->
        let t = Unix.gettimeofday () in
        match S.put s ~key ~value with
        | Ok _ -> observe t
        | Error e -> fail_on "put %d: %a" i S.pp_error e)
      ops
  else
    List.iter
      (fun batch ->
        let t = Unix.gettimeofday () in
        match S.put_batch s batch with
        | Ok { S.results; _ } ->
          observe t;
          List.iter
            (function Ok _ -> () | Error e -> fail_on "batch op: %a" S.pp_error e)
            results
        | Error e -> fail_on "put_batch: %a" S.pp_error e)
      work;
  (match S.flush_index s with Ok _ -> () | Error e -> fail_on "flush_index: %a" S.pp_error e);
  (match S.flush_superblock s with
  | Ok _ -> ()
  | Error e -> fail_on "flush_superblock: %a" S.pp_error e);
  ignore (S.pump s max_int);
  let elapsed = Unix.gettimeofday () -. t0 in
  let obs = S.obs s in
  (elapsed, Obs.counter_value obs "iosched.append", Obs.counter_value obs "iosched.io_issued")

let best_of_arm ~batch_size =
  let lat = Obs.histogram rec_obs (Printf.sprintf "batch%02d.request_us" batch_size) in
  let best = ref infinity in
  let counters = ref (0, 0) in
  for _ = 1 to repeats do
    let elapsed, appends, ios = run_arm ~lat ~batch_size in
    if elapsed < !best then begin
      best := elapsed;
      counters := (appends, ios)
    end
  done;
  let appends, ios = !counters in
  (!best, appends, ios)

(* Wire-trace capture cost: the batch-16 ingest plus a full read-back,
   through Store.Shared (the instrumented surface), once bare and once
   with a recorder attached. The recorded history is audited offline —
   a bench run doubles as a trace-validation workload — and the
   throughput delta is the price of capture. *)
let shared_capture_arm ~capture =
  let recorder =
    if capture then Some (Tracecheck.Trace.Recorder.create ~byte_budget:(8 * 1024 * 1024) ())
    else None
  in
  let sh = Sh.create ?trace:recorder config in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun batch ->
      match Sh.put_batch sh batch with
      | Ok { Sh.results } ->
        List.iter
          (function Ok () -> () | Error e -> fail_on "shared batch op: %a" S.pp_error e)
          results
      | Error e -> fail_on "shared put_batch: %a" S.pp_error e)
    (batches 16);
  (match Sh.flush sh with Ok _ -> () | Error e -> fail_on "shared flush: %a" S.pp_error e);
  Array.iter
    (fun (key, value) ->
      match Sh.get sh ~key with
      | Ok (Some v) when v = value -> ()
      | Ok _ -> fail_on "shared get %s: wrong value back" key
      | Error e -> fail_on "shared get %s: %a" key S.pp_error e)
    ops;
  (Unix.gettimeofday () -. t0, recorder)

let () =
  Printf.printf "batch throughput: %d puts of %dB values per arm%s\n" ops_total value_bytes
    (if smoke then " (smoke)" else "");
  let arms = [ 1; 4; 16; 64 ] in
  let results = List.map (fun n -> (n, best_of_arm ~batch_size:n)) arms in
  let seq_elapsed = match results with (1, (e, _, _)) :: _ -> e | _ -> assert false in
  Printf.printf "%-10s %12s %9s %9s %6s\n" "batch" "ops/sec" "appends" "ios" "vs seq";
  List.iter
    (fun (n, (elapsed, appends, ios)) ->
      Printf.printf "%-10d %12.0f %9d %9d %5.2fx\n" n
        (float_of_int ops_total /. elapsed)
        appends ios (seq_elapsed /. elapsed))
    results;
  let bare_elapsed, _ = shared_capture_arm ~capture:false in
  let cap_elapsed, cap_recorder = shared_capture_arm ~capture:true in
  let cap_recorder = Option.get cap_recorder in
  let cap_audit = Tracecheck.Audit.audit cap_recorder in
  let cap_ops = float_of_int (2 * ops_total) in
  let cap_dropped = Tracecheck.Trace.Recorder.dropped cap_recorder in
  Printf.printf
    "capture (shared b16 + read-back): %.0f ops/s bare, %.0f ops/s recording (%.2fx), audit \
     %s, %d dropped\n"
    (cap_ops /. bare_elapsed) (cap_ops /. cap_elapsed) (cap_elapsed /. bare_elapsed)
    (Tracecheck.Audit.verdict_name cap_audit.Tracecheck.Audit.verdict)
    cap_dropped;
  let record =
    Bench_record.append ~bench:"batch" ~domains:1
      ~workload:
        [
          ("ops", string_of_int ops_total);
          ("value_bytes", string_of_int value_bytes);
          ("repeats", string_of_int repeats);
          ("smoke", string_of_bool smoke);
        ]
      ~metrics:
        (List.concat_map
           (fun (n, (elapsed, _, _)) ->
             [
               (Printf.sprintf "ops_per_sec_b%d" n, float_of_int ops_total /. elapsed);
               (Printf.sprintf "speedup_b%d" n, seq_elapsed /. elapsed);
             ])
           results
        @ [
            ("ops_per_sec_b16_nocapture", cap_ops /. bare_elapsed);
            ("ops_per_sec_b16_capture", cap_ops /. cap_elapsed);
            ("capture_overhead", cap_elapsed /. bare_elapsed);
            ("trace_dropped", float_of_int cap_dropped);
          ])
      ~obs:rec_obs ()
  in
  Printf.printf "recorded -> %s\n" record;
  if not (Tracecheck.Audit.ok cap_audit) then begin
    Format.printf "FAIL: capture-arm trace audit: %a@." Tracecheck.Audit.pp_report cap_audit;
    exit 1
  end;
  let speedup_16 =
    match List.assoc_opt 16 results with
    | Some (e, _, _) -> seq_elapsed /. e
    | None -> 0.0
  in
  if (not smoke) && speedup_16 < 2.0 then begin
    Printf.printf "FAIL: batch=16 speedup %.2fx < 2x\n" speedup_16;
    exit 1
  end
