(* Benchmark harness: one Bechamel benchmark per paper table/figure family
   (the checkers this repository reproduces are themselves the paper's
   "evaluation machinery", so the benchmarks measure checker cost), followed
   by regeneration of every table the paper reports. See DESIGN.md's
   experiment index and EXPERIMENTS.md for paper-vs-measured.

   Environment:
     BENCH_QUICK=1         cut budgets (issue #10 typically not found)
     BENCH_SKIP_TABLES=1   only run the Bechamel micro-benchmarks
     BENCH_DOMAINS=N       shard seed sweeps over N domains (lib/par);
                           also accepted as a --domains N argument.
                           Table contents are byte-identical to N=1. *)

open Bechamel
open Toolkit

let quick = Sys.getenv_opt "BENCH_QUICK" = Some "1"
let skip_tables = Sys.getenv_opt "BENCH_SKIP_TABLES" = Some "1"

let domains =
  let from_argv =
    let rec find i =
      if i + 1 >= Array.length Sys.argv then None
      else if Sys.argv.(i) = "--domains" then int_of_string_opt Sys.argv.(i + 1)
      else find (i + 1)
    in
    find 1
  in
  let from_env = Option.bind (Sys.getenv_opt "BENCH_DOMAINS") int_of_string_opt in
  max 1 (Option.value (match from_argv with Some _ -> from_argv | None -> from_env) ~default:1)

(* {2 Workloads under measurement} *)

let harness_config = Lfm.Harness.default_config

let run_sequence profile seed =
  Faults.disable_all ();
  let _, outcome =
    Lfm.Harness.run_seed harness_config ~profile ~bias:Lfm.Gen.default_bias ~length:60 ~seed
  in
  match outcome with
  | Lfm.Harness.Passed -> ()
  | Lfm.Harness.Failed f ->
    Format.kasprintf failwith "baseline failure: %a" Lfm.Harness.pp_failure f

let counter = ref 0

let fresh () =
  incr counter;
  !counter

(* Fig. 5 / E1: conformance-checker throughput per property class. *)
let bench_fig5 =
  [
    Test.make ~name:"fig5/pbt-sequence-crash-free"
      (Staged.stage (fun () -> run_sequence Lfm.Gen.Crash_free (fresh ())));
    Test.make ~name:"fig5/pbt-sequence-crashing"
      (Staged.stage (fun () -> run_sequence Lfm.Gen.Crashing (fresh ())));
    Test.make ~name:"fig5/pbt-sequence-failing"
      (Staged.stage (fun () -> run_sequence Lfm.Gen.Failing (fresh ())));
    Test.make ~name:"fig5/smc-pct-100-schedules"
      (Staged.stage (fun () ->
           Faults.disable_all ();
           ignore
             (Conc.Conc_detect.check_correct
                (Smc.Pct { seed = fresh (); schedules = 100; depth = 3 })
                Faults.F14_compaction_reclaim_race)));
  ]

(* Fig. 6 / E2: the LoC scan itself. *)
let bench_fig6 =
  [ Test.make ~name:"fig6/loc-scan" (Staged.stage (fun () -> ignore (Experiments.Fig6.run ()))) ]

(* E3: find + minimize one counterexample for a cheap fault. *)
let bench_minimize =
  [
    Test.make ~name:"e3/detect+minimize-fault4"
      (Staged.stage (fun () ->
           let r =
             Lfm.Detect.detect ~max_sequences:500 ~minimize:true ~seed:(10_000 + fresh ())
               Faults.F4_disk_return_loses_shards
           in
           assert r.Lfm.Detect.found));
  ]

(* E4: crash-state granularity cost. *)
let crash_sequence mode seed =
  Faults.disable_all ();
  let rng = Util.Rng.create (Int64.of_int seed) in
  let ops =
    Lfm.Gen.sequence ~rng ~bias:Lfm.Gen.default_bias ~profile:Lfm.Gen.Crashing
      ~page_size:harness_config.Lfm.Harness.store_config.Store.Default.disk.Disk.page_size
      ~extent_count:harness_config.Lfm.Harness.store_config.Store.Default.disk.Disk.extent_count
      ~length:60
  in
  let ops =
    List.map
      (fun op ->
        match op, mode with
        | Lfm.Op.DirtyReboot r, `Coarse ->
          Lfm.Op.DirtyReboot
            {
              r with
              Lfm.Op.split_pages = false;
              persist_probability = (if r.Lfm.Op.persist_probability < 0.5 then 0.0 else 1.0);
            }
        | Lfm.Op.DirtyReboot r, `Block -> Lfm.Op.DirtyReboot { r with Lfm.Op.split_pages = true }
        | _ -> op)
      ops
  in
  ignore (Lfm.Harness.run harness_config ops)

let bench_crash_modes =
  [
    Test.make ~name:"e4/crash-sequence-coarse"
      (Staged.stage (fun () -> crash_sequence `Coarse (fresh ())));
    Test.make ~name:"e4/crash-sequence-block-level"
      (Staged.stage (fun () -> crash_sequence `Block (fresh ())));
  ]

(* E6/E7: generation cost with and without biases. *)
let gen_only bias seed =
  let rng = Util.Rng.create (Int64.of_int seed) in
  ignore
    (Lfm.Gen.sequence ~rng ~bias ~profile:Lfm.Gen.Full ~page_size:512 ~extent_count:64
       ~length:60)

let bench_generation =
  [
    Test.make ~name:"e7/generate-biased"
      (Staged.stage (fun () -> gen_only Lfm.Gen.default_bias (fresh ())));
    Test.make ~name:"e7/generate-unbiased"
      (Staged.stage (fun () -> gen_only Lfm.Gen.unbiased (fresh ())));
  ]

(* E8: one exhaustive DFS verification of a small harness. *)
let bench_smc =
  [
    Test.make ~name:"e8/dfs-exhaust-locator-harness"
      (Staged.stage (fun () ->
           Faults.disable_all ();
           let o =
             Conc.Conc_detect.check_correct (Smc.Dfs { max_schedules = 200_000 })
               Faults.F11_locator_race
           in
           assert o.Smc.exhausted));
  ]

(* Store micro-benchmarks (the substrate itself). *)
module S = Store.Default

let store_for_bench = lazy (S.create S.default_config)

let bench_store =
  [
    Test.make ~name:"store/put-4KiB"
      (Staged.stage (fun () ->
           let s = Lazy.force store_for_bench in
           match
             S.put s
               ~key:(Printf.sprintf "bench-%d" (fresh () mod 64))
               ~value:(String.make 4096 'x')
           with
           | Ok _ | Error S.No_space -> ()
           | Error e -> Format.kasprintf failwith "%a" S.pp_error e));
    Test.make ~name:"store/get-4KiB"
      (Staged.stage (fun () ->
           let s = Lazy.force store_for_bench in
           ignore (S.get s ~key:(Printf.sprintf "bench-%d" (fresh () mod 64)))));
  ]

let all_tests =
  Test.make_grouped ~name:"shardstore-lfm"
    (bench_fig5 @ bench_fig6 @ bench_minimize @ bench_crash_modes @ bench_generation
   @ bench_smc @ bench_store)

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second (if quick then 0.25 else 1.0)) () in
  let raw = Benchmark.all cfg [ instance ] all_tests in
  let results = Analyze.all ols instance raw in
  Printf.printf "%-48s %16s\n" "benchmark" "time/run";
  Printf.printf "%s\n" (String.make 66 '-');
  let rows = ref [] in
  Util.Tbl.iter_sorted (fun name ols_result -> rows := (name, ols_result) :: !rows) results;
  List.iter
    (fun (name, ols_result) ->
      let time =
        match Analyze.OLS.estimates ols_result with
        | Some (est :: _) ->
          if est > 1e9 then Printf.sprintf "%10.2f  s" (est /. 1e9)
          else if est > 1e6 then Printf.sprintf "%10.2f ms" (est /. 1e6)
          else if est > 1e3 then Printf.sprintf "%10.2f us" (est /. 1e3)
          else Printf.sprintf "%10.0f ns" est
        | _ -> "n/a"
      in
      Printf.printf "%-48s %16s\n" name time)
    (List.sort compare !rows)

(* {2 Paper tables} *)

let run_tables () =
  let sep title =
    Printf.printf "\n%s\n== %s\n%s\n" (String.make 72 '=') title (String.make 72 '=')
  in
  sep "E1 / Figure 5: issues prevented";
  Experiments.Fig5.print
    (Experiments.Fig5.run ~domains
       (if quick then Experiments.Fig5.quick_budget
        else
          {
            Experiments.Fig5.default_budget with
            Experiments.Fig5.pbt_sequences = 3_000;
            f10_sequences = 40_000;
            smc_schedules = 100_000;
          }));
  sep "E2 / Figure 6: lines of code";
  Experiments.Fig6.print (Experiments.Fig6.run ());
  sep "E3: test-case minimization";
  Experiments.Minimize_stats.print
    (Experiments.Minimize_stats.run ~samples_per_fault:(if quick then 2 else 4) ());
  sep "E4: coarse vs block-level crash states";
  Experiments.Crash_modes.print
    (Experiments.Crash_modes.run
       ~max_sequences:(if quick then 500 else 2_000)
       ~throughput_sequences:(if quick then 100 else 300)
       ());
  sep "E6: pay-as-you-go detection curves";
  Experiments.Payg.print
    (Experiments.Payg.run ~trials:(if quick then 5 else 15)
       ~max_sequences:(if quick then 500 else 1_500)
       ());
  sep "E7: argument-bias ablation";
  Experiments.Bias_ablation.print
    (Experiments.Bias_ablation.run
       ~max_sequences:(if quick then 500 else 20_000)
       ~trials:(if quick then 2 else 6)
       ());
  sep "E9: coverage blind spot (missed cache-miss bug, section 8.3)";
  Experiments.Blindspot.print
    (Experiments.Blindspot.run ~max_sequences:(if quick then 200 else 600) ());
  sep "E10: component-level vs end-to-end checking (section 8.4)";
  Experiments.Component_level.print
    (Experiments.Component_level.run ~trials:(if quick then 3 else 10) ());
  sep "E11: repair traffic after crash vs loss (section 2.2)";
  Experiments.Repair_traffic.print
    (Experiments.Repair_traffic.run ~shards:(if quick then 40 else 120) ());
  sep "E8: stateless model checking trade-off";
  Experiments.Smc_tradeoff.print
    (Experiments.Smc_tradeoff.run ~trials:(if quick then 2 else 5)
       ~schedule_budget:(if quick then 20_000 else 100_000)
       ())

(* The store micro-benchmarks above share one store; its unified registry
   doubles as a sanity report on what the benchmarks actually exercised. *)
let print_store_metrics () =
  if Lazy.is_val store_for_bench then
    Format.printf "@.store metrics after micro-benchmarks:@.%a@." Obs.pp_snapshot
      (S.obs (Lazy.force store_for_bench))

let () =
  Printf.printf "ShardStore lightweight-formal-methods benchmark harness%s%s\n\n"
    (if quick then " (quick mode)" else "")
    (if domains > 1 then Printf.sprintf " (%d domains)" domains else "");
  run_benchmarks ();
  print_store_metrics ();
  if not skip_tables then run_tables ()
