(* Range-scan plane (YCSB-E shape): short range scans over an ingested key
   space, plus the write-amplification cost of keeping that space
   scannable. Two compaction arms ingest the same workload:

     monolithic  l0_trigger = 0 — every compaction is a full merge
     levelled    l0_trigger / level_ratio defaults — partial compaction

   and report write amplification (index.run_bytes / ingested bytes; the
   levelled arm must not be worse) and scan throughput (drained cursors of
   ~[scan_span] items from random start keys). A third table runs the
   same scan mix through Store.Shared at 1/2/4 domains — the numbers
   recorded in EXPERIMENTS.md E15.

   Environment:
     SCAN_BENCH_SMOKE=1   tiny op budget (CI smoke job, < 30 s) *)

module S = Store.Default
module Sh = Store.Shared

let smoke = Sys.getenv_opt "SCAN_BENCH_SMOKE" = Some "1"
let keys_total = if smoke then 256 else 1536
let rounds = if smoke then 2 else 4
let value_bytes = 64
let scans_total = if smoke then 200 else 2000
let scan_span = 50
let domain_arms = [ 1; 2; 4 ]

let fail_on fmt = Format.kasprintf failwith fmt

let key i = Printf.sprintf "k-%06d" i

let value i = String.init value_bytes (fun j -> Char.chr (33 + ((i + j) mod 90)))

let config ~levelled =
  {
    S.default_config with
    S.disk = { Disk.extent_count = 256; pages_per_extent = 64; page_size = 512 };
    S.index_flush_threshold = 64;
    S.compact_threshold = 8;
    S.l0_trigger = (if levelled then S.default_config.S.l0_trigger else 0);
  }

(* Ingest [rounds] sequential passes over the key space — YCSB-E's
   insert/update churn, in the range-partitioned order levelled LSMs are
   built for (each flushed L0 run covers a narrow key slice, so partial
   compaction touches few deeper runs). Monolithic full merge instead
   rewrites the entire live set every [compact_threshold] runs, which is
   where its write amplification comes from. Auto flush/compact per
   [config]; returns (store, write_amplification). *)
let ingest ~levelled =
  let s = S.create (config ~levelled) in
  for i = 0 to (rounds * keys_total) - 1 do
    let k = i mod keys_total in
    match S.put s ~key:(key k) ~value:(value i) with
    | Ok _ -> ()
    | Error e -> fail_on "put %d: %a" i S.pp_error e
  done;
  (match S.flush_index s with Ok _ -> () | Error e -> fail_on "flush_index: %a" S.pp_error e);
  ignore (S.pump s max_int);
  let ingested = float_of_int (rounds * keys_total * value_bytes) in
  let run_bytes = float_of_int (Obs.counter_value (S.obs s) "index.run_bytes") in
  (s, run_bytes /. ingested)

(* One scan: drain a cursor from a random start key for up to [scan_span]
   items (abandoning a cursor early is part of the API contract). Returns
   the items seen, so the timed loop cannot be dead-code-eliminated. *)
let short_scan s ~lo ~hi =
  match S.scan s ~lo ~hi () with
  | Error e -> fail_on "scan open: %a" S.pp_error e
  | Ok cursor ->
    let rec go n =
      if n >= scan_span then n
      else
        match S.scan_next cursor with
        | Ok (Some _) -> go (n + 1)
        | Ok None -> n
        | Error e -> fail_on "scan_next: %a" S.pp_error e
    in
    go 0

let bounds rng =
  let start = Util.Rng.int rng (max 1 (keys_total - scan_span)) in
  (key start, key (start + scan_span))

let scan_arm s =
  let rng = Util.Rng.create 42L in
  let items = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to scans_total do
    let lo, hi = bounds rng in
    items := !items + short_scan s ~lo ~hi
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  (float_of_int scans_total /. elapsed, !items)

(* Shared-store scan throughput: [domains] workers share one levelled
   store, each draining its slice of the scan mix through the
   materializing Sh.scan under the shard read locks. *)
let shared_scan_arm ?trace ~domains () =
  let sh = Sh.create ~shards:8 ?trace (config ~levelled:true) in
  List.iter
    (fun i ->
      match Sh.put sh ~key:(key i) ~value:(value i) with
      | Ok () -> ()
      | Error e -> fail_on "shared put %d: %a" i S.pp_error e)
    (List.init keys_total Fun.id);
  (match Sh.flush sh with Ok _ -> () | Error e -> fail_on "shared flush: %a" S.pp_error e);
  let per_domain = scans_total / domains in
  let t0 = Unix.gettimeofday () in
  let counts =
    Conc.Domains.spawn_join ~domains (fun d ->
        let rng = Util.Rng.create (Int64.of_int (73 + d)) in
        let items = ref 0 in
        for _ = 1 to per_domain do
          let lo, hi = bounds rng in
          match Sh.scan sh ~lo ~hi () with
          | Ok pairs -> items := !items + List.length pairs
          | Error e -> fail_on "shared scan: %a" S.pp_error e
        done;
        !items)
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (float_of_int (per_domain * domains) /. elapsed, List.fold_left ( + ) 0 counts)

let () =
  Printf.printf "scan bench: %d keys of %dB x%d rounds, %d scans of <=%d items%s\n"
    keys_total value_bytes rounds scans_total scan_span
    (if smoke then " (smoke)" else "");
  let mono, mono_wa = ingest ~levelled:false in
  let lev, lev_wa = ingest ~levelled:true in
  let mono_sps, mono_items = scan_arm mono in
  let lev_sps, lev_items = scan_arm lev in
  Printf.printf "%-12s %10s %12s %9s\n" "arm" "write-amp" "scans/sec" "items";
  Printf.printf "%-12s %10.2f %12.0f %9d\n" "monolithic" mono_wa mono_sps mono_items;
  Printf.printf "%-12s %10.2f %12.0f %9d\n" "levelled" lev_wa lev_sps lev_items;
  let shared = List.map (fun d -> (d, shared_scan_arm ~domains:d ())) domain_arms in
  Printf.printf "%-12s %12s %9s\n" "shared" "scans/sec" "items";
  List.iter
    (fun (d, (sps, items)) -> Printf.printf "%d domains    %12.0f %9d\n" d sps items)
    shared;
  (* Wire-trace capture arm: the 2-domain shared mix re-run with a
     recorder attached (scan pages are the bulk of the trace, hence the
     big byte budget), audited offline after the run. *)
  let cap_recorder = Tracecheck.Trace.Recorder.create ~byte_budget:(32 * 1024 * 1024) () in
  let cap_sps, cap_items = shared_scan_arm ~trace:cap_recorder ~domains:2 () in
  let cap_audit = Tracecheck.Audit.audit cap_recorder in
  Printf.printf "2 domains    %12.0f %9d  (recording; audit %s, %d dropped)\n" cap_sps cap_items
    (Tracecheck.Audit.verdict_name cap_audit.Tracecheck.Audit.verdict)
    (Tracecheck.Trace.Recorder.dropped cap_recorder);
  let record =
    Bench_record.append ~bench:"scan"
      ~domains:(List.fold_left max 1 domain_arms)
      ~workload:
        [
          ("keys", string_of_int keys_total);
          ("rounds", string_of_int rounds);
          ("value_bytes", string_of_int value_bytes);
          ("scans", string_of_int scans_total);
          ("scan_span", string_of_int scan_span);
          ("smoke", string_of_bool smoke);
        ]
      ~metrics:
        ([
           ("write_amp_monolithic", mono_wa);
           ("write_amp_levelled", lev_wa);
           ("scans_per_sec_monolithic", mono_sps);
           ("scans_per_sec_levelled", lev_sps);
         ]
        @ List.map
            (fun (d, (sps, _)) -> (Printf.sprintf "shared_scans_per_sec_d%d" d, sps))
            shared
        @ [ ("shared_scans_per_sec_d2_capture", cap_sps) ])
      ()
  in
  Printf.printf "recorded -> %s\n" record;
  (* The recorded run must see the same data as the untraced 2-domain
     arm, and its history must pass the offline audit. *)
  (match List.assoc_opt 2 shared with
  | Some (_, d2_items) when d2_items <> cap_items ->
    Printf.printf "FAIL: capture arm item count diverges (%d vs %d)\n" cap_items d2_items;
    exit 1
  | _ -> ());
  if not (Tracecheck.Audit.ok cap_audit) then begin
    Format.printf "FAIL: capture-arm trace audit: %a@." Tracecheck.Audit.pp_report cap_audit;
    exit 1
  end;
  (* Correctness tripwires: both arms must see the same data, and the
     levelled arm must not amplify writes more than the full-merge arm. *)
  if mono_items <> lev_items then begin
    Printf.printf "FAIL: scan item counts diverge (%d vs %d)\n" mono_items lev_items;
    exit 1
  end;
  if (not smoke) && lev_wa > mono_wa +. 0.01 then begin
    Printf.printf "FAIL: levelled write-amp %.2f worse than monolithic %.2f\n" lev_wa mono_wa;
    exit 1
  end
