(* Unit tests for the in-memory disk: sequential-write discipline, reset
   epochs, read bounds, and failure injection. *)

let small = { Disk.extent_count = 4; pages_per_extent = 4; page_size = 16 }

let io_error = Alcotest.testable Disk.pp_io_error ( = )

let test_write_read () =
  let d = Disk.create small in
  Alcotest.(check (result unit io_error)) "write" (Ok ()) (Disk.write d ~extent:0 ~off:0 "hello");
  Alcotest.(check (result string io_error))
    "read back" (Ok "hello")
    (Disk.read d ~extent:0 ~off:0 ~len:5);
  Alcotest.(check int) "pointer advanced" 5 (Disk.hard_ptr d ~extent:0)

let test_sequential_discipline () =
  let d = Disk.create small in
  (match Disk.write d ~extent:0 ~off:3 "x" with
  | Error (Disk.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "non-sequential write must fail");
  Alcotest.(check (result unit io_error)) "first" (Ok ()) (Disk.write d ~extent:0 ~off:0 "abc");
  Alcotest.(check (result unit io_error)) "append" (Ok ()) (Disk.write d ~extent:0 ~off:3 "def")

let test_read_beyond_pointer () =
  let d = Disk.create small in
  ignore (Disk.write d ~extent:1 ~off:0 "data");
  match Disk.read d ~extent:1 ~off:2 ~len:10 with
  | Error (Disk.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "read beyond pointer must fail"

let test_extent_capacity () =
  let d = Disk.create small in
  let full = String.make (Disk.extent_size small) 'x' in
  Alcotest.(check (result unit io_error)) "fill" (Ok ()) (Disk.write d ~extent:0 ~off:0 full);
  match Disk.write d ~extent:0 ~off:(String.length full) "y" with
  | Error (Disk.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "write past extent end must fail"

let test_reset_epoch_and_scrub () =
  let d = Disk.create small in
  ignore (Disk.write d ~extent:2 ~off:0 "secret");
  Alcotest.(check int) "epoch 0" 0 (Disk.epoch d ~extent:2);
  Alcotest.(check (result unit io_error)) "reset" (Ok ()) (Disk.reset d ~extent:2);
  Alcotest.(check int) "epoch bumped" 1 (Disk.epoch d ~extent:2);
  Alcotest.(check int) "pointer rewound" 0 (Disk.hard_ptr d ~extent:2);
  (match Disk.read d ~extent:2 ~off:0 ~len:6 with
  | Error (Disk.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "old data unreadable after reset");
  ignore (Disk.write d ~extent:2 ~off:0 "abcdef");
  Alcotest.(check (result string io_error))
    "scrubbed" (Ok "abcdef")
    (Disk.read d ~extent:2 ~off:0 ~len:6)

let test_bad_extent () =
  let d = Disk.create small in
  match Disk.write d ~extent:99 ~off:0 "x" with
  | Error (Disk.Out_of_bounds _) -> ()
  | _ -> Alcotest.fail "bad extent must fail"

let test_fail_once () =
  let d = Disk.create small in
  Disk.fail_once d ~extent:0;
  (match Disk.write d ~extent:0 ~off:0 "x" with
  | Error Disk.Transient -> ()
  | _ -> Alcotest.fail "armed one-shot failure must fire");
  Alcotest.(check (result unit io_error))
    "retry succeeds" (Ok ())
    (Disk.write d ~extent:0 ~off:0 "x");
  Alcotest.(check int) "counted" 1 (Disk.injected_failures d)

let test_fail_permanently_and_heal () =
  let d = Disk.create small in
  ignore (Disk.write d ~extent:0 ~off:0 "x");
  Disk.fail_permanently d ~extent:0;
  (match Disk.read d ~extent:0 ~off:0 ~len:1 with
  | Error Disk.Permanent -> ()
  | _ -> Alcotest.fail "permanent failure must fire");
  (match Disk.read d ~extent:0 ~off:0 ~len:1 with
  | Error Disk.Permanent -> ()
  | _ -> Alcotest.fail "permanent failure persists");
  Disk.heal d ~extent:0;
  Alcotest.(check (result string io_error)) "healed" (Ok "x") (Disk.read d ~extent:0 ~off:0 ~len:1)

let test_faults_suspended () =
  let d = Disk.create small in
  Disk.fail_once d ~extent:0;
  Disk.with_faults_suspended d (fun () ->
      Alcotest.(check (result unit io_error))
        "suspended" (Ok ())
        (Disk.write d ~extent:0 ~off:0 "x"));
  (* Arming restored afterwards. *)
  match Disk.read d ~extent:0 ~off:0 ~len:1 with
  | Error Disk.Transient -> ()
  | _ -> Alcotest.fail "arming must be restored"

let test_consume_fault () =
  let d = Disk.create small in
  Alcotest.(check (result unit io_error)) "healthy" (Ok ()) (Disk.consume_fault d ~extent:1);
  Disk.fail_once d ~extent:1;
  (match Disk.consume_fault d ~extent:1 with
  | Error Disk.Transient -> ()
  | _ -> Alcotest.fail "consume_fault must deliver");
  Alcotest.(check (result unit io_error)) "disarmed" (Ok ()) (Disk.consume_fault d ~extent:1)

(* Drive [n] writes against fresh extents (healing after each failure so
   permanent arming doesn't mask later rolls) and record which fail. *)
let fault_trace d n =
  List.init n (fun i ->
      let extent = i mod small.Disk.extent_count in
      match Disk.write d ~extent ~off:(Disk.hard_ptr d ~extent) "x" with
      | Ok () -> false
      | Error _ ->
        Disk.heal d ~extent;
        true)

let test_random_arming_deterministic () =
  let run () =
    let d = Disk.create small in
    Disk.arm_random_faults d ~rng:(Util.Rng.create 77L) ~transient_prob:0.4
      ~permanent_prob:0.1;
    fault_trace d 40
  in
  let a = run () and b = run () in
  Alcotest.(check (list bool)) "same seed, same fault placement" a b;
  Alcotest.(check bool) "some faults fired" true (List.mem true a);
  Alcotest.(check bool) "some IO survived" true (List.mem false a)

let test_random_arming_suspended_and_copy () =
  let d = Disk.create small in
  Disk.arm_random_faults d ~rng:(Util.Rng.create 7L) ~transient_prob:1.0 ~permanent_prob:0.0;
  (match Disk.write d ~extent:0 ~off:0 "x" with
  | Error Disk.Transient -> ()
  | _ -> Alcotest.fail "armed random fault must fire");
  Disk.with_faults_suspended d (fun () ->
      Alcotest.(check (result unit io_error))
        "suspended" (Ok ())
        (Disk.write d ~extent:0 ~off:0 "x"));
  (match Disk.write d ~extent:0 ~off:1 "y" with
  | Error Disk.Transient -> ()
  | _ -> Alcotest.fail "random arming must be restored after suspension");
  (* A copy is the durable state on fresh hardware: no arming rides along. *)
  let clone = Disk.copy d in
  Alcotest.(check (result unit io_error))
    "copy unarmed" (Ok ())
    (Disk.write clone ~extent:0 ~off:(Disk.hard_ptr clone ~extent:0) "z");
  (* heal_all is the chaos campaign's "replace the hardware" step: it must
     clear random arming too, not just per-extent faults. *)
  Disk.heal_all d;
  Alcotest.(check (result unit io_error))
    "heal_all disarms" (Ok ())
    (Disk.write d ~extent:0 ~off:(Disk.hard_ptr d ~extent:0) "w")

let test_random_arming_permanent () =
  let d = Disk.create small in
  Disk.arm_random_faults d ~rng:(Util.Rng.create 3L) ~transient_prob:0.0 ~permanent_prob:1.0;
  (match Disk.write d ~extent:2 ~off:0 "x" with
  | Error Disk.Permanent -> ()
  | _ -> Alcotest.fail "permanent roll must fail the extent");
  Disk.disarm_random_faults d;
  (* The extent stays failed like fail_permanently until healed. *)
  (match Disk.write d ~extent:2 ~off:0 "x" with
  | Error Disk.Permanent -> ()
  | _ -> Alcotest.fail "permanently failed extent must persist past disarm");
  Disk.heal d ~extent:2;
  Alcotest.(check (result unit io_error))
    "healed" (Ok ())
    (Disk.write d ~extent:2 ~off:0 "x")

let test_durable_image () =
  let d = Disk.create small in
  ignore (Disk.write d ~extent:0 ~off:0 "abc");
  Alcotest.(check string) "image" "abc" (Disk.durable_image d ~extent:0);
  Alcotest.(check int) "page of offset" 1 (Disk.page_of_offset d 17)

let () =
  Alcotest.run "disk"
    [
      ( "io",
        [
          Alcotest.test_case "write/read" `Quick test_write_read;
          Alcotest.test_case "sequential discipline" `Quick test_sequential_discipline;
          Alcotest.test_case "read beyond pointer" `Quick test_read_beyond_pointer;
          Alcotest.test_case "extent capacity" `Quick test_extent_capacity;
          Alcotest.test_case "reset epoch and scrub" `Quick test_reset_epoch_and_scrub;
          Alcotest.test_case "bad extent" `Quick test_bad_extent;
          Alcotest.test_case "durable image" `Quick test_durable_image;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fail once" `Quick test_fail_once;
          Alcotest.test_case "fail permanently / heal" `Quick test_fail_permanently_and_heal;
          Alcotest.test_case "faults suspended" `Quick test_faults_suspended;
          Alcotest.test_case "consume fault" `Quick test_consume_fault;
          Alcotest.test_case "random arming deterministic" `Quick
            test_random_arming_deterministic;
          Alcotest.test_case "random arming suspended / copy / heal_all" `Quick
            test_random_arming_suspended_and_copy;
          Alcotest.test_case "random arming permanent" `Quick test_random_arming_permanent;
        ] );
    ]
