(* Tests for the reference models themselves: the hash-map model, the
   crash extension's allowed-survivor semantics, the chunk model's
   uniqueness tracking, and the model-bug fault sites #9 and #15. *)

open Util

let test_kv_model_basics () =
  let m = Model.Kv_model.create () in
  Model.Kv_model.put m ~key:"a" ~value:"1";
  Model.Kv_model.put m ~key:"b" ~value:"2";
  Model.Kv_model.put m ~key:"a" ~value:"3";
  Alcotest.(check (option string)) "overwrite" (Some "3") (Model.Kv_model.get m ~key:"a");
  Model.Kv_model.delete m ~key:"b";
  Alcotest.(check (list string)) "list" [ "a" ] (Model.Kv_model.list m);
  Alcotest.(check bool) "mem" true (Model.Kv_model.mem m ~key:"a");
  let c = Model.Kv_model.copy m in
  Model.Kv_model.put m ~key:"z" ~value:"9";
  Alcotest.(check bool) "copy isolated" false (Model.Kv_model.equal m c)

(* A dependency that reports persistent/pending as we choose, via the real
   scheduler. *)
let sched_for_deps () =
  let disk = Disk.create { Disk.extent_count = 2; pages_per_extent = 8; page_size = 16 } in
  Io_sched.create ~seed:1L disk

let staged_dep sched =
  match Io_sched.append sched ~extent:0 ~data:"x" ~input:Dep.trivial with
  | Ok d -> d
  | Error _ -> Alcotest.fail "append failed"

let test_crash_model_allowed_survivors () =
  let sched = sched_for_deps () in
  let m = Model.Crash_model.create () in
  let d1 = staged_dep sched in
  Model.Crash_model.put m ~key:"k" ~value:"v1" ~dep:d1;
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  (* v1 persistent; v2 staged but not persistent *)
  let d2 = staged_dep sched in
  Model.Crash_model.put m ~key:"k" ~value:"v2" ~dep:d2;
  let allowed = Model.Crash_model.allowed_after_crash m ~key:"k" in
  Alcotest.(check int) "two survivors" 2 (List.length allowed);
  Alcotest.(check bool) "v2 allowed" true (List.mem (Some "v2") allowed);
  Alcotest.(check bool) "v1 allowed" true (List.mem (Some "v1") allowed);
  Alcotest.(check bool) "absent not allowed" false (List.mem None allowed)

let test_crash_model_nothing_persistent () =
  let sched = sched_for_deps () in
  let m = Model.Crash_model.create () in
  let d = staged_dep sched in
  Model.Crash_model.put m ~key:"k" ~value:"v1" ~dep:d;
  let allowed = Model.Crash_model.allowed_after_crash m ~key:"k" in
  Alcotest.(check bool) "absent allowed" true (List.mem None allowed);
  Alcotest.(check bool) "v1 allowed" true (List.mem (Some "v1") allowed)

let test_crash_model_persistent_pins_survivor () =
  let sched = sched_for_deps () in
  let m = Model.Crash_model.create () in
  let d1 = staged_dep sched in
  Model.Crash_model.put m ~key:"k" ~value:"old" ~dep:d1;
  let d2 = staged_dep sched in
  Model.Crash_model.put m ~key:"k" ~value:"new" ~dep:d2;
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  (* Both persistent: only the newest survives. *)
  let allowed = Model.Crash_model.allowed_after_crash m ~key:"k" in
  Alcotest.(check bool) "only newest" true (allowed = [ Some "new" ])

let test_crash_model_reconcile () =
  let sched = sched_for_deps () in
  let m = Model.Crash_model.create () in
  let d = staged_dep sched in
  Model.Crash_model.put m ~key:"k" ~value:"v1" ~dep:d;
  (match Model.Crash_model.reconcile m ~key:"k" ~observed:None with
  | Ok () -> ()
  | Error v -> Alcotest.failf "unexpected violation: %a" Model.Crash_model.pp_violation v);
  Alcotest.(check (option string)) "baseline adopted" None (Model.Crash_model.get m ~key:"k");
  (* Observing a value that was never staged is a violation. *)
  Model.Crash_model.put m ~key:"k" ~value:"v2" ~dep:(staged_dep sched);
  match Model.Crash_model.reconcile m ~key:"k" ~observed:(Some "bogus") with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bogus survivor must be a violation"

let test_crash_model_delete_tracked () =
  let sched = sched_for_deps () in
  let m = Model.Crash_model.create () in
  let d1 = staged_dep sched in
  Model.Crash_model.put m ~key:"k" ~value:"v" ~dep:d1;
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  (match Model.Crash_model.reconcile m ~key:"k" ~observed:(Some "v") with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "v must be allowed");
  let d2 = staged_dep sched in
  Model.Crash_model.delete m ~key:"k" ~dep:d2;
  let allowed = Model.Crash_model.allowed_after_crash m ~key:"k" in
  Alcotest.(check bool) "deletion may be lost" true (List.mem (Some "v") allowed);
  Alcotest.(check bool) "deletion may have landed" true (List.mem None allowed);
  Alcotest.(check (list string)) "crash-free list hides deleted" []
    (Model.Crash_model.list m)

let test_f9_model_reconcile_bug () =
  Faults.disable_all ();
  let sched = sched_for_deps () in
  let m = Model.Crash_model.create () in
  Model.Crash_model.put m ~key:"k" ~value:"v1" ~dep:(staged_dep sched);
  Faults.enable Faults.F9_model_crash_reconcile;
  (match Model.Crash_model.reconcile m ~key:"k" ~observed:None with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "reconcile accepts");
  Faults.disable Faults.F9_model_crash_reconcile;
  (* The buggy model kept v1 even though the store observed nothing. *)
  Alcotest.(check (option string)) "model diverges" (Some "v1") (Model.Crash_model.get m ~key:"k");
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F9_model_crash_reconcile > 0)

let locator i epoch = { Chunk.Locator.extent = 4; epoch; off = i * 32; frame_len = 10 }

let test_chunk_model_tracks_and_detects_reuse () =
  let m = Model.Chunk_model.create () in
  (match Model.Chunk_model.track m ~locator:(locator 0 0) ~payload:"a" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "fresh locator");
  Alcotest.(check (option string)) "expected" (Some "a")
    (Model.Chunk_model.expected m ~locator:(locator 0 0));
  (match Model.Chunk_model.track m ~locator:(locator 0 0) ~payload:"b" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "reused locator must clash");
  Model.Chunk_model.drop m ~locator:(locator 0 0);
  Alcotest.(check (option string)) "dropped" None
    (Model.Chunk_model.expected m ~locator:(locator 0 0))

let test_chunk_model_epoch_distinguishes () =
  Faults.disable_all ();
  let m = Model.Chunk_model.create () in
  ignore (Model.Chunk_model.track m ~locator:(locator 0 0) ~payload:"old");
  (match Model.Chunk_model.track m ~locator:(locator 0 1) ~payload:"new" with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "new epoch is a fresh locator");
  Alcotest.(check (option string)) "old epoch intact" (Some "old")
    (Model.Chunk_model.expected m ~locator:(locator 0 0))

let test_f15_model_locator_reuse () =
  Faults.disable_all ();
  Faults.enable Faults.F15_model_locator_reuse;
  let m = Model.Chunk_model.create () in
  ignore (Model.Chunk_model.track m ~locator:(locator 0 0) ~payload:"old");
  ignore (Model.Chunk_model.track m ~locator:(locator 0 1) ~payload:"new");
  (* The buggy model conflated the two epochs: the old slot was clobbered. *)
  let got = Model.Chunk_model.expected m ~locator:(locator 0 0) in
  Faults.disable Faults.F15_model_locator_reuse;
  Alcotest.(check (option string)) "old epoch clobbered" (Some "new") got;
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F15_model_locator_reuse > 0)

let test_index_mock_implements_interface () =
  let disk = Disk.create { Disk.extent_count = 6; pages_per_extent = 8; page_size = 32 } in
  let sched = Io_sched.create ~seed:1L disk in
  let cache = Cache.create sched in
  let sb = Superblock.create sched ~extents:(0, 1) ~reserved:[ 0; 1; 2; 3 ] in
  let cs = Chunk.Chunk_store.create sched ~cache ~superblock:sb ~rng:(Rng.create 2L) in
  let m = Model.Index_mock.create cs ~metadata_extents:(2, 3) in
  ignore (Model.Index_mock.put m ~key:"k" ~locators:[ locator 1 0 ] ~value_dep:Dep.trivial);
  (match Model.Index_mock.get m ~key:"k" with
  | Ok (Some [ _ ]) -> ()
  | _ -> Alcotest.fail "mock get");
  Alcotest.(check bool) "keys" true (Model.Index_mock.keys m = Ok [ "k" ]);
  ignore (Model.Index_mock.delete m ~key:"k");
  match Model.Index_mock.get m ~key:"k" with
  | Ok None -> ()
  | _ -> Alcotest.fail "mock delete"

(* Model verification (paper S3.2): "the reduced complexity of the
   reference model makes it possible to verify desirable properties of the
   model itself". The paper experimented with Prusti proofs; here they are
   executable properties. *)

type model_op = MPut of string * string | MDelete of string

let model_op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun k v -> MPut (k, v)) (oneofl [ "a"; "b"; "c" ]) (string_size (0 -- 12));
        map (fun k -> MDelete k) (oneofl [ "a"; "b"; "c" ]);
      ])

(* "the model removes a key-value mapping if and only if it receives a
   delete operation for that key" — the exact property S3.2 proposes. *)
let prop_kv_mapping_iff =
  QCheck.Test.make ~name:"kv model: mapping present iff last op was a put" ~count:500
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) model_op_gen))
    (fun ops ->
      let m = Model.Kv_model.create () in
      List.iter
        (fun op ->
          match op with
          | MPut (key, value) -> Model.Kv_model.put m ~key ~value
          | MDelete key -> Model.Kv_model.delete m ~key)
        ops;
      List.for_all
        (fun key ->
          let last =
            List.fold_left
              (fun acc op ->
                match op with
                | MPut (k, v) when k = key -> Some (Some v)
                | MDelete k when k = key -> Some None
                | _ -> acc)
              None ops
          in
          match last with
          | None -> Model.Kv_model.get m ~key = None
          | Some expected -> Model.Kv_model.get m ~key = expected)
        [ "a"; "b"; "c" ])

(* Crash model validity: crash-free semantics equal the plain model, and
   the allowed-survivor list is newest-first with the current value at its
   head. *)
let prop_crash_model_refines_kv =
  QCheck.Test.make ~name:"crash model: crash-free view equals kv model" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) model_op_gen))
    (fun ops ->
      let kv = Model.Kv_model.create () in
      let cm = Model.Crash_model.create () in
      List.iter
        (fun op ->
          match op with
          | MPut (key, value) ->
            Model.Kv_model.put kv ~key ~value;
            Model.Crash_model.put cm ~key ~value ~dep:Dep.trivial
          | MDelete key ->
            Model.Kv_model.delete kv ~key;
            Model.Crash_model.delete cm ~key ~dep:Dep.trivial)
        ops;
      Model.Kv_model.list kv = Model.Crash_model.list cm
      && List.for_all
           (fun key -> Model.Kv_model.get kv ~key = Model.Crash_model.get cm ~key)
           [ "a"; "b"; "c" ])

let prop_allowed_head_is_current =
  QCheck.Test.make ~name:"crash model: allowed survivors start at current" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 20) model_op_gen))
    (fun ops ->
      let cm = Model.Crash_model.create () in
      List.iter
        (fun op ->
          match op with
          | MPut (key, value) -> Model.Crash_model.put cm ~key ~value ~dep:Dep.trivial
          | MDelete key -> Model.Crash_model.delete cm ~key ~dep:Dep.trivial)
        ops;
      List.for_all
        (fun key ->
          match Model.Crash_model.allowed_after_crash cm ~key with
          | head :: _ -> head = Model.Crash_model.get cm ~key
          | [] -> false)
        [ "a"; "b"; "c" ])

(* With trivially persistent deps nothing may be lost: the only survivor
   is the current value. *)
let prop_persistent_history_pins =
  QCheck.Test.make ~name:"crash model: persistent deps pin the survivor" ~count:300
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 1 20) model_op_gen))
    (fun ops ->
      let cm = Model.Crash_model.create () in
      List.iter
        (fun op ->
          match op with
          | MPut (key, value) -> Model.Crash_model.put cm ~key ~value ~dep:Dep.trivial
          | MDelete key -> Model.Crash_model.delete cm ~key ~dep:Dep.trivial)
        ops;
      List.for_all
        (fun key ->
          match Model.Crash_model.allowed_after_crash cm ~key with
          | [ only ] -> only = Model.Crash_model.get cm ~key
          | [] -> false
          | _ :: _ ->
            (* more than one survivor is only allowed for untouched keys *)
            Model.Crash_model.tracked_keys cm |> List.mem key |> not)
        [ "a"; "b"; "c" ])

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "model"
    [
      ("kv", [ Alcotest.test_case "basics" `Quick test_kv_model_basics ]);
      ( "crash extension",
        [
          Alcotest.test_case "allowed survivors" `Quick test_crash_model_allowed_survivors;
          Alcotest.test_case "nothing persistent" `Quick test_crash_model_nothing_persistent;
          Alcotest.test_case "persistent pins survivor" `Quick
            test_crash_model_persistent_pins_survivor;
          Alcotest.test_case "reconcile" `Quick test_crash_model_reconcile;
          Alcotest.test_case "delete tracked" `Quick test_crash_model_delete_tracked;
          Alcotest.test_case "#9 reconcile bug" `Quick test_f9_model_reconcile_bug;
        ] );
      ( "chunk model",
        [
          Alcotest.test_case "tracks and detects reuse" `Quick
            test_chunk_model_tracks_and_detects_reuse;
          Alcotest.test_case "epoch distinguishes" `Quick test_chunk_model_epoch_distinguishes;
          Alcotest.test_case "#15 locator reuse" `Quick test_f15_model_locator_reuse;
        ] );
      ( "index mock",
        [ Alcotest.test_case "implements interface" `Quick test_index_mock_implements_interface ] );
      ( "model verification (S3.2)",
        [
          QCheck_alcotest.to_alcotest prop_kv_mapping_iff;
          QCheck_alcotest.to_alcotest prop_crash_model_refines_kv;
          QCheck_alcotest.to_alcotest prop_allowed_head_is_current;
          QCheck_alcotest.to_alcotest prop_persistent_history_pins;
        ] );
    ]
