(* Tests for the LSM index: memtable/run/metadata lifecycle, durability
   promises, compaction, recovery, and reclamation callbacks. *)

open Util

let config = { Disk.extent_count = 10; pages_per_extent = 8; page_size = 32 }
let reserved = [ 0; 1; 2; 3 ]

module Chunk_store = Chunk.Chunk_store

let make () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:10L disk in
  let cache = Cache.create sched in
  let sb = Superblock.create sched ~extents:(0, 1) ~reserved in
  let rng = Rng.create 11L in
  let cs = Chunk_store.create sched ~cache ~superblock:sb ~rng in
  let index = Lsm.Index.create ~max_run_payload:120 cs ~metadata_extents:(2, 3) in
  (disk, sched, sb, cs, index)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "index error: %a" Lsm.Index.pp_error e

let loc k = { Chunk.Locator.extent = 4; epoch = 0; off = k * 32; frame_len = 10 }

let test_put_get_memtable () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  Alcotest.(check int) "memtable" 1 (Lsm.Index.memtable_size index);
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l ] -> Alcotest.(check bool) "locator" true (Chunk.Locator.equal l (loc 1))
  | _ -> Alcotest.fail "expected one locator"

let test_delete_shadows () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.delete index ~key:"a");
  Alcotest.(check bool) "deleted" true (ok (Lsm.Index.get index ~key:"a") = None)

let test_flush_then_get_from_run () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.put index ~key:"b" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  Alcotest.(check int) "memtable empty" 0 (Lsm.Index.memtable_size index);
  Alcotest.(check bool) "runs exist" true (Lsm.Index.run_count index >= 1);
  Alcotest.(check bool) "a found" true (ok (Lsm.Index.get index ~key:"a") <> None);
  Alcotest.(check bool) "b found" true (ok (Lsm.Index.get index ~key:"b") <> None)

let test_entry_dep_persists_after_full_flush () =
  let _, sched, sb, _, index = make () in
  let dep = Lsm.Index.put index ~key:"a" ~locators:[] ~value_dep:Dep.trivial in
  Alcotest.(check bool) "pending" false (Dep.is_persistent dep);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "sched flush");
  Alcotest.(check bool) "persistent" true (Dep.is_persistent dep)

let test_keys_across_memtable_and_runs () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"b" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.put index ~key:"c" ~locators:[ loc 3 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.delete index ~key:"b");
  Alcotest.(check (list string)) "keys" [ "a"; "c" ] (ok (Lsm.Index.keys index))

let test_newer_run_shadows_older () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l ] -> Alcotest.(check bool) "newest wins" true (Chunk.Locator.equal l (loc 2))
  | _ -> Alcotest.fail "expected one locator"

let test_compact_merges_runs () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.put index ~key:"b" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.delete index ~key:"a");
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  Alcotest.(check int) "three runs" 3 (Lsm.Index.run_count index);
  ignore (ok (Lsm.Index.compact index));
  Alcotest.(check int) "one run" 1 (Lsm.Index.run_count index);
  Alcotest.(check bool) "a gone" true (ok (Lsm.Index.get index ~key:"a") = None);
  Alcotest.(check bool) "b present" true (ok (Lsm.Index.get index ~key:"b") <> None)

let test_recover_after_clean_flush () =
  let _, sched, sb, _, index = make () in
  ignore (Lsm.Index.put index ~key:"x" ~locators:[ loc 7 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:true));
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  ignore (Lsm.Index.put index ~key:"volatile" ~locators:[ loc 8 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.recover index));
  Alcotest.(check bool) "flushed key survives" true (ok (Lsm.Index.get index ~key:"x") <> None);
  Alcotest.(check bool) "volatile key gone" true
    (ok (Lsm.Index.get index ~key:"volatile") = None)

let test_update_locator_in_memtable () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1; loc 2 ] ~value_dep:Dep.trivial);
  let d =
    Lsm.Index.update_locator index ~key:"a" ~old_loc:(loc 1) ~new_loc:(loc 9)
      ~new_dep:Dep.trivial
  in
  Alcotest.(check bool) "update staged" false (Dep.is_persistent d);
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l1; l2 ] ->
    Alcotest.(check bool) "replaced" true (Chunk.Locator.equal l1 (loc 9));
    Alcotest.(check bool) "kept" true (Chunk.Locator.equal l2 (loc 2))
  | _ -> Alcotest.fail "expected two locators"

let test_update_locator_in_run () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore
    (Lsm.Index.update_locator index ~key:"a" ~old_loc:(loc 1) ~new_loc:(loc 9)
       ~new_dep:Dep.trivial);
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l ] -> Alcotest.(check bool) "shadowed via memtable" true (Chunk.Locator.equal l (loc 9))
  | _ -> Alcotest.fail "expected one locator"

let test_update_locator_stale () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  let d =
    Lsm.Index.update_locator index ~key:"a" ~old_loc:(loc 5) ~new_loc:(loc 9)
      ~new_dep:Dep.trivial
  in
  Alcotest.(check bool) "no-op is trivially persistent" true (Dep.is_persistent d)

let test_relocate_run () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  match Lsm.Index.run_locators index with
  | [ (run_id, _old) ] ->
    ignore (ok (Lsm.Index.relocate_run index ~run_id ~new_loc:(loc 9) ~new_dep:Dep.trivial));
    (match Lsm.Index.run_locators index with
    | [ (_, l) ] -> Alcotest.(check bool) "moved" true (Chunk.Locator.equal l (loc 9))
    | _ -> Alcotest.fail "expected one run")
  | _ -> Alcotest.fail "expected one run"

let test_f3_shutdown_skips_metadata () =
  Faults.disable_all ();
  let _, sched, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"x" ~locators:[ loc 7 ] ~value_dep:Dep.trivial);
  Lsm.Index.note_extent_reset index;
  Faults.enable Faults.F3_shutdown_skips_metadata;
  ignore (ok (Lsm.Index.flush index ~for_shutdown:true));
  Faults.disable Faults.F3_shutdown_skips_metadata;
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  ignore (ok (Lsm.Index.recover index));
  (* The run was written but the metadata record was skipped: recovery
     cannot see it. *)
  Alcotest.(check bool) "entry lost" true (ok (Lsm.Index.get index ~key:"x") = None);
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F3_shutdown_skips_metadata > 0)

let test_big_memtable_splits_runs () =
  let _, _, _, _, index = make () in
  for i = 0 to 9 do
    ignore
      (Lsm.Index.put index
         ~key:(Printf.sprintf "key-%02d" i)
         ~locators:[ loc i ] ~value_dep:Dep.trivial)
  done;
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  Alcotest.(check bool) "multiple runs from one flush" true (Lsm.Index.run_count index > 1);
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "key-%02d found" i)
      true
      (ok (Lsm.Index.get index ~key:(Printf.sprintf "key-%02d" i)) <> None)
  done

(* Property: the index against a plain map under random put/delete/flush/
   compact/recover traffic (the Fig. 3 pattern at the component level). *)
let prop_index_matches_map =
  QCheck.Test.make ~name:"index conforms to map under maintenance" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, sched, sb, _, index = make () in
      let model : (string, Chunk.Locator.t list) Hashtbl.t = Hashtbl.create 16 in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d" |] in
      let ok = ref true in
      let check key =
        let expected = Hashtbl.find_opt model key in
        match Lsm.Index.get index ~key with
        | Ok actual ->
          if actual <> expected then ok := false
        | Error _ -> ok := false
      in
      for i = 0 to 39 do
        let key = Rng.pick rng keys in
        match Rng.int rng 7 with
        | 0 | 1 ->
          let locs = [ loc (i mod 13) ] in
          ignore (Lsm.Index.put index ~key ~locators:locs ~value_dep:Dep.trivial);
          Hashtbl.replace model key locs
        | 2 ->
          ignore (Lsm.Index.delete index ~key);
          Hashtbl.remove model key
        | 3 -> check key
        (* Extent exhaustion is legal here: this harness runs no garbage
           collection, so runs pile up until flushes are rejected. *)
        | 4 -> (
          match Lsm.Index.flush index ~for_shutdown:false with
          | Ok _ -> ()
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false)
        | 5 -> (
          match Lsm.Index.compact index with
          | Ok _ -> ()
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false)
        | _ -> (
          (* Clean reboot of the index component; a shutdown whose flush
             was rejected (disk full) is aborted, like the store's
             clean_shutdown — recovery would lose the unflushed memtable. *)
          match Lsm.Index.flush index ~for_shutdown:true with
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false
          | Ok _ ->
            (match Superblock.flush sb with Ok _ -> () | Error _ -> ok := false);
            (match Io_sched.flush sched with Ok () -> () | Error _ -> ok := false);
            (match Lsm.Index.recover index with Ok () -> () | Error _ -> ok := false))
      done;
      Array.iter check keys;
      !ok)

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "lsm"
    [
      ( "index",
        [
          Alcotest.test_case "put/get memtable" `Quick test_put_get_memtable;
          Alcotest.test_case "delete shadows" `Quick test_delete_shadows;
          Alcotest.test_case "flush then get from run" `Quick test_flush_then_get_from_run;
          Alcotest.test_case "entry dep persists after full flush" `Quick
            test_entry_dep_persists_after_full_flush;
          Alcotest.test_case "keys across memtable and runs" `Quick
            test_keys_across_memtable_and_runs;
          Alcotest.test_case "newer run shadows older" `Quick test_newer_run_shadows_older;
          Alcotest.test_case "compact merges runs" `Quick test_compact_merges_runs;
          Alcotest.test_case "recover after clean flush" `Quick test_recover_after_clean_flush;
          Alcotest.test_case "big memtable splits runs" `Quick test_big_memtable_splits_runs;
          QCheck_alcotest.to_alcotest prop_index_matches_map;
        ] );
      ( "reclamation callbacks",
        [
          Alcotest.test_case "update locator in memtable" `Quick test_update_locator_in_memtable;
          Alcotest.test_case "update locator in run" `Quick test_update_locator_in_run;
          Alcotest.test_case "update locator stale" `Quick test_update_locator_stale;
          Alcotest.test_case "relocate run" `Quick test_relocate_run;
        ] );
      ( "faults",
        [
          Alcotest.test_case "#3 shutdown skips metadata" `Quick test_f3_shutdown_skips_metadata;
        ] );
    ]
