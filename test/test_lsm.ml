(* Tests for the LSM index: memtable/run/metadata lifecycle, durability
   promises, compaction, recovery, and reclamation callbacks. *)

open Util

let config = { Disk.extent_count = 10; pages_per_extent = 8; page_size = 32 }
let reserved = [ 0; 1; 2; 3 ]

module Chunk_store = Chunk.Chunk_store

let make () =
  let disk = Disk.create config in
  let sched = Io_sched.create ~seed:10L disk in
  let cache = Cache.create sched in
  let sb = Superblock.create sched ~extents:(0, 1) ~reserved in
  let rng = Rng.create 11L in
  let cs = Chunk_store.create sched ~cache ~superblock:sb ~rng in
  let index = Lsm.Index.create ~max_run_payload:120 cs ~metadata_extents:(2, 3) in
  (disk, sched, sb, cs, index)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "index error: %a" Lsm.Index.pp_error e

let loc k = { Chunk.Locator.extent = 4; epoch = 0; off = k * 32; frame_len = 10 }

let test_put_get_memtable () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  Alcotest.(check int) "memtable" 1 (Lsm.Index.memtable_size index);
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l ] -> Alcotest.(check bool) "locator" true (Chunk.Locator.equal l (loc 1))
  | _ -> Alcotest.fail "expected one locator"

let test_delete_shadows () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.delete index ~key:"a");
  Alcotest.(check bool) "deleted" true (ok (Lsm.Index.get index ~key:"a") = None)

let test_flush_then_get_from_run () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.put index ~key:"b" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  Alcotest.(check int) "memtable empty" 0 (Lsm.Index.memtable_size index);
  Alcotest.(check bool) "runs exist" true (Lsm.Index.run_count index >= 1);
  Alcotest.(check bool) "a found" true (ok (Lsm.Index.get index ~key:"a") <> None);
  Alcotest.(check bool) "b found" true (ok (Lsm.Index.get index ~key:"b") <> None)

let test_entry_dep_persists_after_full_flush () =
  let _, sched, sb, _, index = make () in
  let dep = Lsm.Index.put index ~key:"a" ~locators:[] ~value_dep:Dep.trivial in
  Alcotest.(check bool) "pending" false (Dep.is_persistent dep);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "sched flush");
  Alcotest.(check bool) "persistent" true (Dep.is_persistent dep)

let test_keys_across_memtable_and_runs () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"b" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.put index ~key:"c" ~locators:[ loc 3 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.delete index ~key:"b");
  Alcotest.(check (list string)) "keys" [ "a"; "c" ] (ok (Lsm.Index.keys index))

let test_newer_run_shadows_older () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l ] -> Alcotest.(check bool) "newest wins" true (Chunk.Locator.equal l (loc 2))
  | _ -> Alcotest.fail "expected one locator"

let test_compact_merges_runs () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.put index ~key:"b" ~locators:[ loc 2 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore (Lsm.Index.delete index ~key:"a");
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  Alcotest.(check int) "three runs" 3 (Lsm.Index.run_count index);
  (* Levelled: each quiescent compact pushes one victim down a level; a
     few rounds converge to a single fully-compacted deep run. *)
  for _ = 1 to 4 do
    ignore (ok (Lsm.Index.compact index));
    match Lsm.Index.level_invariants index with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "level invariants: %s" msg
  done;
  Alcotest.(check int) "one run" 1 (Lsm.Index.run_count index);
  Alcotest.(check bool) "a gone" true (ok (Lsm.Index.get index ~key:"a") = None);
  Alcotest.(check bool) "b present" true (ok (Lsm.Index.get index ~key:"b") <> None)

let test_recover_after_clean_flush () =
  let _, sched, sb, _, index = make () in
  ignore (Lsm.Index.put index ~key:"x" ~locators:[ loc 7 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:true));
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  ignore (Lsm.Index.put index ~key:"volatile" ~locators:[ loc 8 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.recover index));
  Alcotest.(check bool) "flushed key survives" true (ok (Lsm.Index.get index ~key:"x") <> None);
  Alcotest.(check bool) "volatile key gone" true
    (ok (Lsm.Index.get index ~key:"volatile") = None)

let test_update_locator_in_memtable () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1; loc 2 ] ~value_dep:Dep.trivial);
  let d =
    Lsm.Index.update_locator index ~key:"a" ~old_loc:(loc 1) ~new_loc:(loc 9)
      ~new_dep:Dep.trivial
  in
  Alcotest.(check bool) "update staged" false (Dep.is_persistent d);
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l1; l2 ] ->
    Alcotest.(check bool) "replaced" true (Chunk.Locator.equal l1 (loc 9));
    Alcotest.(check bool) "kept" true (Chunk.Locator.equal l2 (loc 2))
  | _ -> Alcotest.fail "expected two locators"

let test_update_locator_in_run () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  ignore
    (Lsm.Index.update_locator index ~key:"a" ~old_loc:(loc 1) ~new_loc:(loc 9)
       ~new_dep:Dep.trivial);
  match ok (Lsm.Index.get index ~key:"a") with
  | Some [ l ] -> Alcotest.(check bool) "shadowed via memtable" true (Chunk.Locator.equal l (loc 9))
  | _ -> Alcotest.fail "expected one locator"

let test_update_locator_stale () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  let d =
    Lsm.Index.update_locator index ~key:"a" ~old_loc:(loc 5) ~new_loc:(loc 9)
      ~new_dep:Dep.trivial
  in
  Alcotest.(check bool) "no-op is trivially persistent" true (Dep.is_persistent d)

let test_relocate_run () =
  let _, _, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"a" ~locators:[ loc 1 ] ~value_dep:Dep.trivial);
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  match Lsm.Index.run_locators index with
  | [ (run_id, _old) ] ->
    ignore (ok (Lsm.Index.relocate_run index ~run_id ~new_loc:(loc 9) ~new_dep:Dep.trivial));
    (match Lsm.Index.run_locators index with
    | [ (_, l) ] -> Alcotest.(check bool) "moved" true (Chunk.Locator.equal l (loc 9))
    | _ -> Alcotest.fail "expected one run")
  | _ -> Alcotest.fail "expected one run"

let test_f3_shutdown_skips_metadata () =
  Faults.disable_all ();
  let _, sched, _, _, index = make () in
  ignore (Lsm.Index.put index ~key:"x" ~locators:[ loc 7 ] ~value_dep:Dep.trivial);
  Lsm.Index.note_extent_reset index;
  Faults.enable Faults.F3_shutdown_skips_metadata;
  ignore (ok (Lsm.Index.flush index ~for_shutdown:true));
  Faults.disable Faults.F3_shutdown_skips_metadata;
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "flush");
  ignore (ok (Lsm.Index.recover index));
  (* The run was written but the metadata record was skipped: recovery
     cannot see it. *)
  Alcotest.(check bool) "entry lost" true (ok (Lsm.Index.get index ~key:"x") = None);
  Alcotest.(check bool) "fired" true (Faults.fired Faults.F3_shutdown_skips_metadata > 0)

let test_big_memtable_splits_runs () =
  let _, _, _, _, index = make () in
  for i = 0 to 9 do
    ignore
      (Lsm.Index.put index
         ~key:(Printf.sprintf "key-%02d" i)
         ~locators:[ loc i ] ~value_dep:Dep.trivial)
  done;
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false));
  Alcotest.(check bool) "multiple runs from one flush" true (Lsm.Index.run_count index > 1);
  for i = 0 to 9 do
    Alcotest.(check bool)
      (Printf.sprintf "key-%02d found" i)
      true
      (ok (Lsm.Index.get index ~key:(Printf.sprintf "key-%02d" i)) <> None)
  done

(* {2 Levelled compaction} *)

let flush_kv index pairs =
  List.iter
    (fun (k, i) -> ignore (Lsm.Index.put index ~key:k ~locators:[ loc i ] ~value_dep:Dep.trivial))
    pairs;
  ignore (ok (Lsm.Index.flush index ~for_shutdown:false))

let check_invariants index =
  match Lsm.Index.level_invariants index with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "level invariants: %s" msg

let test_l0_trigger_threshold () =
  let _, _, _, _, index = make () in
  Lsm.Index.configure_levels index ~l0_trigger:2 ~level_ratio:2;
  flush_kv index [ ("a", 1) ];
  Alcotest.(check bool) "one L0 run: quiet" false (Lsm.Index.compaction_due index);
  flush_kv index [ ("b", 2) ];
  Alcotest.(check bool) "at trigger: due" true (Lsm.Index.compaction_due index);
  ignore (ok (Lsm.Index.compact index));
  Alcotest.(check bool) "drained" false (Lsm.Index.compaction_due index);
  check_invariants index;
  (* The drain pushed L0 victims into level 1. *)
  (match Lsm.Index.level_runs index with
  | [ _; n1 ] when n1 >= 1 -> ()
  | shape ->
    Alcotest.failf "expected a populated level 1, got [%s]"
      (String.concat ";" (List.map string_of_int shape)));
  Alcotest.(check bool) "a survives" true (ok (Lsm.Index.get index ~key:"a") <> None);
  Alcotest.(check bool) "b survives" true (ok (Lsm.Index.get index ~key:"b") <> None)

(* Overlap rejection as a maintained discipline: interleaved key ranges
   flushed into L0 overlap freely, but every compaction step re-partitions
   them so levels >= 1 stay disjoint — checked after every operation. *)
let test_level_overlap_discipline () =
  let _, _, _, _, index = make () in
  Lsm.Index.configure_levels index ~l0_trigger:2 ~level_ratio:2;
  flush_kv index [ ("a", 1); ("e", 2) ];
  flush_kv index [ ("b", 3); ("f", 4) ];
  check_invariants index;
  flush_kv index [ ("c", 5); ("d", 6) ];
  for _ = 1 to 6 do
    (* No GC in this harness, so late rounds may hit extent exhaustion;
       a rejected step must leave the discipline (and the data) intact. *)
    (match Lsm.Index.compact index with
    | Ok _ -> ()
    | Error e -> if not (Lsm.Index.error_is_no_space e) then Alcotest.failf "compact: %a" Lsm.Index.pp_error e);
    check_invariants index
  done;
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " survives") true (ok (Lsm.Index.get index ~key:k) <> None))
    [ "a"; "b"; "c"; "d"; "e"; "f" ]

(* Relocation during reclaim: moving a run's chunk must leave the level
   structure (and the recorded ranges) untouched. *)
let test_relocate_preserves_levels () =
  let _, _, _, _, index = make () in
  Lsm.Index.configure_levels index ~l0_trigger:2 ~level_ratio:2;
  flush_kv index [ ("a", 1) ];
  flush_kv index [ ("b", 2) ];
  ignore (ok (Lsm.Index.compact index));
  check_invariants index;
  let shape_before = Lsm.Index.level_runs index in
  (match Lsm.Index.run_locators index with
  | (run_id, _) :: _ ->
    ignore (ok (Lsm.Index.relocate_run index ~run_id ~new_loc:(loc 9) ~new_dep:Dep.trivial))
  | [] -> Alcotest.fail "expected runs");
  check_invariants index;
  Alcotest.(check (list int)) "level shape unchanged" shape_before (Lsm.Index.level_runs index);
  Alcotest.(check bool) "a survives" true (ok (Lsm.Index.get index ~key:"a") <> None);
  Alcotest.(check bool) "b survives" true (ok (Lsm.Index.get index ~key:"b") <> None)

(* Metadata roundtrip for the levelled tree: recovery rebuilds the level
   assignment from the skeleton record and recomputes ranges by reloading
   run contents. *)
let test_recover_levelled_tree () =
  let _, sched, sb, _, index = make () in
  Lsm.Index.configure_levels index ~l0_trigger:2 ~level_ratio:2;
  flush_kv index [ ("a", 1); ("c", 2) ];
  flush_kv index [ ("b", 3) ];
  ignore (ok (Lsm.Index.compact index));
  check_invariants index;
  let shape = Lsm.Index.level_runs index in
  let keys_before = ok (Lsm.Index.keys index) in
  (match Superblock.flush sb with Ok _ -> () | Error _ -> Alcotest.fail "sb flush");
  (match Io_sched.flush sched with Ok () -> () | Error _ -> Alcotest.fail "sched flush");
  ignore (ok (Lsm.Index.recover index));
  check_invariants index;
  Alcotest.(check (list int)) "level shape recovered" shape (Lsm.Index.level_runs index);
  Alcotest.(check (list string)) "keys recovered" keys_before (ok (Lsm.Index.keys index))

let test_scan_cursor_snapshot () =
  let _, _, _, _, index = make () in
  Lsm.Index.configure_levels index ~l0_trigger:2 ~level_ratio:2;
  flush_kv index [ ("a", 1); ("c", 2) ];
  flush_kv index [ ("d", 3) ];
  ignore (Lsm.Index.put index ~key:"b" ~locators:[ loc 4 ] ~value_dep:Dep.trivial);
  ignore (Lsm.Index.delete index ~key:"c");
  let drain c =
    let rec go acc =
      match Lsm.Index.cursor_next c with None -> List.rev acc | Some (k, _) -> go (k :: acc)
    in
    go []
  in
  let c = ok (Lsm.Index.scan index ~lo:None ~hi:None) in
  (* Mutations after open must not leak into the snapshot. *)
  ignore (Lsm.Index.put index ~key:"e" ~locators:[ loc 5 ] ~value_dep:Dep.trivial);
  Alcotest.(check (list string)) "snapshot at open" [ "a"; "b"; "d" ] (drain c);
  let c2 = ok (Lsm.Index.scan index ~lo:(Some "b") ~hi:(Some "d")) in
  Alcotest.(check (list string)) "bounded scan" [ "b"; "d" ] (drain c2)

(* Property: the levelled index against the composed per-level reference
   model — same ops, observably equal keys/scans, invariants maintained. *)
let prop_index_matches_level_model =
  QCheck.Test.make ~name:"levelled index conforms to Level_model" ~count:80
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, _, _, _, index = make () in
      Lsm.Index.configure_levels index ~l0_trigger:2 ~level_ratio:2;
      let model = Model.Level_model.create ~l0_trigger:2 ~level_ratio:2 () in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
      let ok = ref true in
      let scan_keys ~lo ~hi =
        match Lsm.Index.scan index ~lo ~hi with
        | Error _ ->
          ok := false;
          []
        | Ok c ->
          let rec go acc =
            match Lsm.Index.cursor_next c with None -> List.rev acc | Some (k, _) -> go (k :: acc)
          in
          go []
      in
      for i = 0 to 49 do
        let key = Rng.pick rng keys in
        (match Rng.int rng 8 with
        | 0 | 1 | 2 ->
          ignore (Lsm.Index.put index ~key ~locators:[ loc (i mod 13) ] ~value_dep:Dep.trivial);
          Model.Level_model.put model ~key ~value:(string_of_int i)
        | 3 ->
          ignore (Lsm.Index.delete index ~key);
          Model.Level_model.delete model ~key
        | 4 -> (
          (* Tiny geometry: extent exhaustion is legal, and on it the
             index keeps its memtable while the model must not flush. *)
          match Lsm.Index.flush index ~for_shutdown:false with
          | Ok _ -> Model.Level_model.flush model
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false)
        | 5 -> (
          match Lsm.Index.compact index with
          | Ok _ -> Model.Level_model.compact model
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false)
        | _ ->
          let lo = if Rng.int rng 3 = 0 then None else Some (Rng.pick rng keys) in
          let hi = if Rng.int rng 3 = 0 then None else Some (Rng.pick rng keys) in
          let lo, hi =
            match (lo, hi) with
            | Some l, Some h when String.compare l h > 0 -> (Some h, Some l)
            | pair -> pair
          in
          if scan_keys ~lo ~hi <> List.map fst (Model.Level_model.scan model ~lo ~hi) then
            ok := false);
        (match Lsm.Index.level_invariants index with Ok () -> () | Error _ -> ok := false)
      done;
      (match Lsm.Index.keys index with
      | Ok ks -> if ks <> Model.Level_model.keys model then ok := false
      | Error _ -> ok := false);
      !ok)

(* Property: the index against a plain map under random put/delete/flush/
   compact/recover traffic (the Fig. 3 pattern at the component level). *)
let prop_index_matches_map =
  QCheck.Test.make ~name:"index conforms to map under maintenance" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let _, sched, sb, _, index = make () in
      let model : (string, Chunk.Locator.t list) Hashtbl.t = Hashtbl.create 16 in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d" |] in
      let ok = ref true in
      let check key =
        let expected = Hashtbl.find_opt model key in
        match Lsm.Index.get index ~key with
        | Ok actual ->
          if actual <> expected then ok := false
        | Error _ -> ok := false
      in
      for i = 0 to 39 do
        let key = Rng.pick rng keys in
        match Rng.int rng 7 with
        | 0 | 1 ->
          let locs = [ loc (i mod 13) ] in
          ignore (Lsm.Index.put index ~key ~locators:locs ~value_dep:Dep.trivial);
          Hashtbl.replace model key locs
        | 2 ->
          ignore (Lsm.Index.delete index ~key);
          Hashtbl.remove model key
        | 3 -> check key
        (* Extent exhaustion is legal here: this harness runs no garbage
           collection, so runs pile up until flushes are rejected. *)
        | 4 -> (
          match Lsm.Index.flush index ~for_shutdown:false with
          | Ok _ -> ()
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false)
        | 5 -> (
          match Lsm.Index.compact index with
          | Ok _ -> ()
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false)
        | _ -> (
          (* Clean reboot of the index component; a shutdown whose flush
             was rejected (disk full) is aborted, like the store's
             clean_shutdown — recovery would lose the unflushed memtable. *)
          match Lsm.Index.flush index ~for_shutdown:true with
          | Error e -> if not (Lsm.Index.error_is_no_space e) then ok := false
          | Ok _ ->
            (match Superblock.flush sb with Ok _ -> () | Error _ -> ok := false);
            (match Io_sched.flush sched with Ok () -> () | Error _ -> ok := false);
            (match Lsm.Index.recover index with Ok () -> () | Error _ -> ok := false))
      done;
      Array.iter check keys;
      !ok)

let () =
  Faults.disable_all ();
  Faults.reset_counters ();
  Alcotest.run "lsm"
    [
      ( "index",
        [
          Alcotest.test_case "put/get memtable" `Quick test_put_get_memtable;
          Alcotest.test_case "delete shadows" `Quick test_delete_shadows;
          Alcotest.test_case "flush then get from run" `Quick test_flush_then_get_from_run;
          Alcotest.test_case "entry dep persists after full flush" `Quick
            test_entry_dep_persists_after_full_flush;
          Alcotest.test_case "keys across memtable and runs" `Quick
            test_keys_across_memtable_and_runs;
          Alcotest.test_case "newer run shadows older" `Quick test_newer_run_shadows_older;
          Alcotest.test_case "compact merges runs" `Quick test_compact_merges_runs;
          Alcotest.test_case "recover after clean flush" `Quick test_recover_after_clean_flush;
          Alcotest.test_case "big memtable splits runs" `Quick test_big_memtable_splits_runs;
          QCheck_alcotest.to_alcotest prop_index_matches_map;
        ] );
      ( "levels",
        [
          Alcotest.test_case "l0 trigger threshold" `Quick test_l0_trigger_threshold;
          Alcotest.test_case "overlap discipline" `Quick test_level_overlap_discipline;
          Alcotest.test_case "relocation preserves levels" `Quick
            test_relocate_preserves_levels;
          Alcotest.test_case "recover levelled tree" `Quick test_recover_levelled_tree;
          Alcotest.test_case "scan cursor snapshot" `Quick test_scan_cursor_snapshot;
          QCheck_alcotest.to_alcotest prop_index_matches_level_model;
        ] );
      ( "reclamation callbacks",
        [
          Alcotest.test_case "update locator in memtable" `Quick test_update_locator_in_memtable;
          Alcotest.test_case "update locator in run" `Quick test_update_locator_in_run;
          Alcotest.test_case "update locator stale" `Quick test_update_locator_stale;
          Alcotest.test_case "relocate run" `Quick test_relocate_run;
        ] );
      ( "faults",
        [
          Alcotest.test_case "#3 shutdown skips metadata" `Quick test_f3_shutdown_skips_metadata;
        ] );
    ]
