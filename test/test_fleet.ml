(* Tests for the fleet layer: placement, replication, node crash vs node
   loss, repair, and the S3-level durability property (data survives up to
   replication-1 node losses between repairs, and any number of crashes). *)

open Util

(* Roomier disks than the store's crash-corner-case geometry: the fleet
   property keeps six shards times three replicas per node, and capacity
   planning (not GC pressure) is what keeps real nodes from running full. *)
let config =
  {
    Fleet.nodes = 5;
    replication = 3;
    store =
      {
        Store.Default.test_config with
        Store.Default.disk = { Disk.extent_count = 16; pages_per_extent = 16; page_size = 64 };
      };
  }

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fleet error: %a" Fleet.pp_error e

let test_placement_deterministic_and_spread () =
  let f = Fleet.create config in
  let p = Fleet.placement f "shard-x" in
  Alcotest.(check int) "replication factor" 3 (List.length p);
  Alcotest.(check (list int)) "deterministic" p (Fleet.placement f "shard-x");
  Alcotest.(check int) "distinct nodes" 3 (List.length (List.sort_uniq compare p));
  (* different keys land on different placements eventually *)
  let placements =
    List.init 20 (fun i -> Fleet.placement f (Printf.sprintf "key-%d" i))
  in
  Alcotest.(check bool) "spread" true (List.length (List.sort_uniq compare placements) > 1)

let test_put_get_replicated () =
  let f = Fleet.create config in
  ok (Fleet.put f ~key:"s" ~value:"data");
  Alcotest.(check (option string)) "get" (Some "data") (ok (Fleet.get f ~key:"s"));
  Alcotest.(check int) "fully replicated" 3 (Fleet.replica_count f ~key:"s");
  ok (Fleet.delete f ~key:"s");
  Alcotest.(check (option string)) "deleted" None (ok (Fleet.get f ~key:"s"))

let test_put_many_replicated () =
  let f = Fleet.create config in
  let ops = List.init 6 (fun i -> (Printf.sprintf "pk%d" i, Printf.sprintf "pv%d" i)) in
  ok (Fleet.put_many f ops);
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) ("get " ^ k) (Some v) (ok (Fleet.get f ~key:k));
      Alcotest.(check int) ("replicated " ^ k) 3 (Fleet.replica_count f ~key:k))
    ops;
  Alcotest.(check int) "counted once" 1 (Obs.counter_value (Fleet.obs f) "fleet.put_many")

let test_put_many_matches_sequential () =
  let ops = List.init 8 (fun i -> (Printf.sprintf "mk%d" i, Printf.sprintf "mv%d" i)) in
  let fb = Fleet.create config in
  ok (Fleet.put_many fb ops);
  let fs = Fleet.create config in
  List.iter (fun (k, v) -> ok (Fleet.put fs ~key:k ~value:v)) ops;
  List.iter
    (fun (k, _) ->
      Alcotest.(check (option string)) ("batch = sequential for " ^ k)
        (ok (Fleet.get fs ~key:k))
        (ok (Fleet.get fb ~key:k));
      Alcotest.(check int) ("same replica count for " ^ k)
        (Fleet.replica_count fs ~key:k)
        (Fleet.replica_count fb ~key:k))
    ops

let test_node_failed_carries_store_error () =
  let f = Fleet.create config in
  (* 16 extents x 16 pages x 64 bytes = 16 KiB per node: this cannot fit. *)
  let huge = String.make 50_000 'x' in
  (match Fleet.put f ~key:"huge" ~value:huge with
  | Error (Fleet.Node_failed { node; error = Store.Default.No_space }) ->
    (* The structured payload must not have changed the rendered message. *)
    let msg =
      Format.asprintf "%a" Fleet.pp_error
        (Fleet.Node_failed { node; error = Store.Default.No_space })
    in
    Alcotest.(check string) "pp output stable"
      (Printf.sprintf "node %d failed: out of space" node)
      msg
  | Ok () -> Alcotest.fail "oversized put cannot succeed"
  | Error e -> Alcotest.failf "expected structured No_space, got %a" Fleet.pp_error e);
  match Fleet.put_many f [ ("small", "v"); ("huge2", huge) ] with
  | Error (Fleet.Node_failed { error = Store.Default.No_space; _ }) -> ()
  | Ok () -> Alcotest.fail "oversized batch cannot succeed"
  | Error e -> Alcotest.failf "expected structured No_space, got %a" Fleet.pp_error e

let test_survives_any_single_crash () =
  let f = Fleet.create config in
  ok (Fleet.put f ~key:"s" ~value:"durable");
  let rng = Rng.create 3L in
  (* crash every node once: acknowledged data is durable per replica *)
  for node = 0 to Fleet.node_count f - 1 do
    Fleet.crash_node f ~rng ~node
  done;
  Alcotest.(check (option string)) "survives crashes" (Some "durable") (ok (Fleet.get f ~key:"s"))

let test_survives_node_loss_with_repair () =
  let f = Fleet.create config in
  ok (Fleet.put f ~key:"s" ~value:"replicated");
  (match Fleet.placement f "s" with
  | victim :: _ ->
    Fleet.destroy_node f ~node:victim;
    Alcotest.(check int) "one replica lost" 2 (Fleet.replica_count f ~key:"s")
  | [] -> Alcotest.fail "no placement");
  Alcotest.(check (option string)) "still readable" (Some "replicated")
    (ok (Fleet.get f ~key:"s"));
  let report = ok (Fleet.repair f) in
  Alcotest.(check int) "one replica re-created" 1 report.Fleet.shards_repaired;
  Alcotest.(check int) "bytes moved" (String.length "replicated") report.Fleet.bytes_moved;
  Alcotest.(check int) "fully replicated again" 3 (Fleet.replica_count f ~key:"s")

let test_repair_idempotent () =
  let f = Fleet.create config in
  ok (Fleet.put f ~key:"a" ~value:"1");
  ok (Fleet.put f ~key:"b" ~value:"2");
  let r1 = ok (Fleet.repair f) in
  Alcotest.(check int) "nothing to repair" 0 r1.Fleet.shards_repaired;
  Alcotest.(check int) "scanned all" 2 r1.Fleet.shards_scanned

(* The durability property the paper's section 2.2 appeals to: acknowledged
   data survives any number of node crashes plus up to replication-1 node
   losses between repairs. *)
let prop_fleet_durability =
  QCheck.Test.make ~name:"fleet durability under crashes and bounded losses" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Fleet.create config in
      let model = Model.Kv_model.create () in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
      let losses_since_repair = ref 0 in
      let ok' = function
        | Ok v -> v
        | Error e -> QCheck.Test.fail_reportf "fleet: %a" Fleet.pp_error e
      in
      for _ = 1 to 40 do
        let key = Rng.pick rng keys in
        match Rng.int rng 8 with
        | 0 | 1 | 2 -> (
          let value = Bytes.to_string (Rng.bytes rng (Rng.int rng 100)) in
          match Fleet.put f ~key ~value with
          | Ok () -> Model.Kv_model.put model ~key ~value
          | Error _ -> () (* a full replica rejected the put: not acknowledged *))
        | 3 ->
          ok' (Fleet.delete f ~key);
          Model.Kv_model.delete model ~key
        | 4 | 5 ->
          let node = Rng.int rng (Fleet.node_count f) in
          Fleet.crash_node f ~rng ~node
        | 6 ->
          if !losses_since_repair < config.Fleet.replication - 1 then begin
            Fleet.destroy_node f ~node:(Rng.int rng (Fleet.node_count f));
            incr losses_since_repair
          end
        | _ ->
          ignore (ok' (Fleet.repair f));
          losses_since_repair := 0
      done;
      ignore (ok' (Fleet.repair f));
      Array.for_all
        (fun key ->
          match Fleet.get f ~key with
          | Ok v -> v = Model.Kv_model.get model ~key
          | Error _ -> false)
        keys)

let () =
  Faults.disable_all ();
  Alcotest.run "fleet"
    [
      ( "fleet",
        [
          Alcotest.test_case "placement" `Quick test_placement_deterministic_and_spread;
          Alcotest.test_case "put/get replicated" `Quick test_put_get_replicated;
          Alcotest.test_case "put_many replicated" `Quick test_put_many_replicated;
          Alcotest.test_case "put_many matches sequential" `Quick
            test_put_many_matches_sequential;
          Alcotest.test_case "structured node failure" `Quick
            test_node_failed_carries_store_error;
          Alcotest.test_case "survives any single crash" `Quick test_survives_any_single_crash;
          Alcotest.test_case "survives node loss with repair" `Quick
            test_survives_node_loss_with_repair;
          Alcotest.test_case "repair idempotent" `Quick test_repair_idempotent;
          QCheck_alcotest.to_alcotest prop_fleet_durability;
        ] );
    ]
