(* Tests for the fleet layer: placement, replication, the fault-tolerant
   request plane (health tracking, retry/backoff, quorum commit, failover
   reads with read-repair), node crash vs node loss, repair, and the
   S3-level durability property (data survives up to replication-1 node
   losses between repairs, and any number of crashes). *)

open Util

(* Roomier disks than the store's crash-corner-case geometry: the fleet
   property keeps six shards times three replicas per node, and capacity
   planning (not GC pressure) is what keeps real nodes from running full. *)
let config =
  {
    Fleet.nodes = 5;
    replication = 3;
    store =
      {
        Store.Default.test_config with
        Store.Default.disk = { Disk.extent_count = 16; pages_per_extent = 16; page_size = 64 };
      };
  }

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fleet error: %a" Fleet.pp_error e

(* All-replica acknowledgement: the strongest write quorum, matching the
   fleet's pre-quorum behaviour. *)
let all_replicas = { Fleet.default_ft with Fleet.write_quorum = Some config.Fleet.replication }

let test_placement_deterministic_and_spread () =
  let f = Fleet.create config in
  let p = Fleet.placement f "shard-x" in
  Alcotest.(check int) "replication factor" 3 (List.length p);
  Alcotest.(check (list int)) "deterministic" p (Fleet.placement f "shard-x");
  Alcotest.(check int) "distinct nodes" 3 (List.length (List.sort_uniq compare p));
  (* different keys land on different placements eventually *)
  let placements =
    List.init 20 (fun i -> Fleet.placement f (Printf.sprintf "key-%d" i))
  in
  Alcotest.(check bool) "spread" true (List.length (List.sort_uniq compare placements) > 1)

let test_put_get_replicated () =
  let f = Fleet.create config in
  let ack = ok (Fleet.put f ~key:"s" ~value:"data") in
  Alcotest.(check int) "all replicas acked" 3 ack.Fleet.replicas;
  Alcotest.(check (list int)) "none lagging" [] ack.Fleet.lagging;
  Alcotest.(check (option string)) "get" (Some "data") (ok (Fleet.get f ~key:"s"));
  Alcotest.(check int) "fully replicated" 3 (Fleet.replica_count f ~key:"s");
  Alcotest.(check int) "nothing dirty" 0 (Fleet.dirty_count f);
  ok (Fleet.delete f ~key:"s");
  Alcotest.(check (option string)) "deleted" None (ok (Fleet.get f ~key:"s"))

let test_put_many_replicated () =
  let f = Fleet.create config in
  let ops = List.init 6 (fun i -> (Printf.sprintf "pk%d" i, Printf.sprintf "pv%d" i)) in
  ok (Fleet.put_many f ops);
  List.iter
    (fun (k, v) ->
      Alcotest.(check (option string)) ("get " ^ k) (Some v) (ok (Fleet.get f ~key:k));
      Alcotest.(check int) ("replicated " ^ k) 3 (Fleet.replica_count f ~key:k))
    ops;
  Alcotest.(check int) "counted once" 1 (Obs.counter_value (Fleet.obs f) "fleet.put_many")

let test_put_many_matches_sequential () =
  let ops = List.init 8 (fun i -> (Printf.sprintf "mk%d" i, Printf.sprintf "mv%d" i)) in
  let fb = Fleet.create config in
  ok (Fleet.put_many fb ops);
  let fs = Fleet.create config in
  List.iter (fun (k, v) -> ignore (ok (Fleet.put fs ~key:k ~value:v))) ops;
  List.iter
    (fun (k, _) ->
      Alcotest.(check (option string)) ("batch = sequential for " ^ k)
        (ok (Fleet.get fs ~key:k))
        (ok (Fleet.get fb ~key:k));
      Alcotest.(check int) ("same replica count for " ^ k)
        (Fleet.replica_count fs ~key:k)
        (Fleet.replica_count fb ~key:k))
    ops

let test_node_failed_carries_store_error () =
  let f = Fleet.create config in
  (* 16 extents x 16 pages x 64 bytes = 16 KiB per node: this cannot fit. *)
  let huge = String.make 50_000 'x' in
  (match Fleet.put f ~key:"huge" ~value:huge with
  | Error (Fleet.Node_failed { node; error = Store.Default.No_space }) ->
    (* The structured payload must not have changed the rendered message. *)
    let msg =
      Format.asprintf "%a" Fleet.pp_error
        (Fleet.Node_failed { node; error = Store.Default.No_space })
    in
    Alcotest.(check string) "pp output stable"
      (Printf.sprintf "node %d failed: out of space" node)
      msg
  | Ok _ -> Alcotest.fail "oversized put cannot succeed"
  | Error e -> Alcotest.failf "expected structured No_space, got %a" Fleet.pp_error e);
  match Fleet.put_many f [ ("small", "v"); ("huge2", huge) ] with
  | Error (Fleet.Node_failed { error = Store.Default.No_space; _ }) -> ()
  | Ok () -> Alcotest.fail "oversized batch cannot succeed"
  | Error e -> Alcotest.failf "expected structured No_space, got %a" Fleet.pp_error e

let test_survives_any_single_crash () =
  let f = Fleet.create config in
  ignore (ok (Fleet.put f ~key:"s" ~value:"durable"));
  let rng = Rng.create 3L in
  (* crash every node once: acknowledged data is durable per replica *)
  for node = 0 to Fleet.node_count f - 1 do
    Fleet.crash_node f ~rng ~node
  done;
  Alcotest.(check (option string)) "survives crashes" (Some "durable") (ok (Fleet.get f ~key:"s"))

let test_survives_node_loss_with_repair () =
  let f = Fleet.create config in
  ignore (ok (Fleet.put f ~key:"s" ~value:"replicated"));
  (match Fleet.placement f "s" with
  | victim :: _ ->
    Fleet.destroy_node f ~node:victim;
    Alcotest.(check int) "one replica lost" 2 (Fleet.replica_count f ~key:"s")
  | [] -> Alcotest.fail "no placement");
  let report = ok (Fleet.repair f) in
  Alcotest.(check (option string)) "still readable" (Some "replicated")
    (ok (Fleet.get f ~key:"s"));
  Alcotest.(check int) "one replica re-created" 1 report.Fleet.shards_repaired;
  Alcotest.(check int) "none failed" 0 report.Fleet.shards_failed;
  Alcotest.(check int) "bytes moved" (String.length "replicated") report.Fleet.bytes_moved;
  Alcotest.(check int) "fully replicated again" 3 (Fleet.replica_count f ~key:"s")

let test_repair_idempotent () =
  let f = Fleet.create config in
  ignore (ok (Fleet.put f ~key:"a" ~value:"1"));
  ignore (ok (Fleet.put f ~key:"b" ~value:"2"));
  let r1 = ok (Fleet.repair f) in
  Alcotest.(check int) "nothing to repair" 0 r1.Fleet.shards_repaired;
  Alcotest.(check int) "scanned all" 2 r1.Fleet.shards_scanned

(* {2 Fault-tolerant request plane} *)

(* Acceptance pin: a transient fault on one replica no longer fails
   Fleet.put — the retry path absorbs it. Every extent of one placement
   node is armed to fail once, so each retry burns at most one armed
   extent; a generous retry budget guarantees the attempt eventually runs
   clean. *)
let test_transient_fault_absorbed () =
  let ft = { Fleet.default_ft with Fleet.max_retries = 40 } in
  let f = Fleet.create ~ft config in
  (match Fleet.placement f "t" with
  | victim :: _ ->
    let disk = Fleet.node_disk f ~node:victim in
    for extent = 0 to config.Fleet.store.Store.Default.disk.Disk.extent_count - 1 do
      Disk.fail_once disk ~extent
    done
  | [] -> Alcotest.fail "no placement");
  let ack = ok (Fleet.put f ~key:"t" ~value:"absorbed") in
  Alcotest.(check int) "all replicas acked despite the fault" 3 ack.Fleet.replicas;
  Alcotest.(check bool) "the retry path ran" true
    (Obs.counter_value (Fleet.obs f) "fleet.retry" > 0);
  Alcotest.(check (option string)) "readable" (Some "absorbed") (ok (Fleet.get f ~key:"t"));
  (* the absorbed fault leaves no health scar: success resets the detector *)
  List.iter
    (fun node ->
      Alcotest.(check bool) "node available" true (Fleet.node_available f ~node))
    (Fleet.placement f "t")

(* Satellite (a): the partial-failure leak. A put that loses one replica
   mid-write acknowledges at quorum, counts fleet.partial_write, records
   the key in the dirty set — and repair provably heals it back to full
   replication with the new value. *)
let test_partial_write_recorded_and_repaired () =
  let f = Fleet.create config in
  ignore (ok (Fleet.put f ~key:"p" ~value:"old"));
  let victim = List.nth (Fleet.placement f "p") 2 in
  let disk = Fleet.node_disk f ~node:victim in
  for extent = 0 to config.Fleet.store.Store.Default.disk.Disk.extent_count - 1 do
    Disk.fail_permanently disk ~extent
  done;
  (* overwrite: two replicas take the new value, the victim fails hard *)
  let ack = ok (Fleet.put f ~key:"p" ~value:"new") in
  Alcotest.(check int) "quorum acked" 2 ack.Fleet.replicas;
  Alcotest.(check (list int)) "victim lagging" [ victim ] ack.Fleet.lagging;
  Alcotest.(check bool) "partial write counted" true
    (Obs.counter_value (Fleet.obs f) "fleet.partial_write" > 0);
  Alcotest.(check bool) "quorum ack counted" true
    (Obs.counter_value (Fleet.obs f) "fleet.quorum_ack" > 0);
  Alcotest.(check bool) "breaker tripped" true
    (Obs.counter_value (Fleet.obs f) "fleet.breaker_open" > 0);
  Alcotest.(check (list string)) "key recorded dirty" [ "p" ] (Fleet.dirty_keys f);
  Alcotest.check
    (Alcotest.testable
       (fun fmt h -> Format.pp_print_string fmt (match h with
          | Fleet.Healthy -> "healthy" | Fleet.Suspect -> "suspect" | Fleet.Down -> "down"))
       ( = ))
    "victim down" Fleet.Down (Fleet.health f ~node:victim);
  (* the medium is healed; a reboot lifts the scheduler's extent
     quarantines, then repair drains the debt *)
  Disk.heal_all disk;
  Fleet.crash_node f ~rng:(Rng.create 11L) ~node:victim;
  let report = ok (Fleet.repair f) in
  Alcotest.(check int) "victim re-replicated" 1 report.Fleet.shards_repaired;
  Alcotest.(check int) "dirty set drained" 0 (Fleet.dirty_count f);
  Alcotest.(check int) "fully replicated" 3 (Fleet.replica_count f ~key:"p");
  Alcotest.(check (option string)) "victim holds the new value" (Some "new")
    (match Fleet.peek f ~node:victim ~key:"p" with
    | Ok v -> v
    | Error e -> Alcotest.failf "peek: %a" Store.Default.pp_error e);
  (* repair is the breaker's heal path: the victim is back in rotation *)
  Alcotest.(check bool) "breaker re-closed" true (Fleet.node_available f ~node:victim)

(* Below quorum the put must fail — but the replicas already written are
   recorded as dirty, not leaked. *)
let test_below_quorum_fails_but_records_debt () =
  let ft = { Fleet.default_ft with Fleet.write_quorum = Some 3 } in
  let f = Fleet.create ~ft config in
  ignore (ok (Fleet.put f ~key:"q" ~value:"old"));
  let victim = List.nth (Fleet.placement f "q") 2 in
  let disk = Fleet.node_disk f ~node:victim in
  for extent = 0 to config.Fleet.store.Store.Default.disk.Disk.extent_count - 1 do
    Disk.fail_permanently disk ~extent
  done;
  (match Fleet.put f ~key:"q" ~value:"new" with
  | Ok _ -> Alcotest.fail "all-replica quorum cannot be met with a dead node"
  | Error (Fleet.Node_failed { node; _ }) ->
    Alcotest.(check int) "failure names the victim" victim node
  | Error e -> Alcotest.failf "expected Node_failed, got %a" Fleet.pp_error e);
  Alcotest.(check (list string)) "partial replicas recorded" [ "q" ] (Fleet.dirty_keys f);
  Disk.heal_all disk;
  Fleet.crash_node f ~rng:(Rng.create 12L) ~node:victim;
  Fleet.heal_node f ~node:victim;
  ignore (ok (Fleet.repair f));
  Alcotest.(check int) "repair converged" 0 (Fleet.dirty_count f);
  Alcotest.(check int) "fully replicated" 3 (Fleet.replica_count f ~key:"q")

(* Satellite (c): the health state machine. Healthy -> Suspect on an
   exhausted transient attempt, Suspect -> Down after [down_after]
   consecutive failures, Down skipped on reads, breaker re-closed by
   heal_node. Driven with always-transient random faults so every probe
   fails deterministically. *)
let test_health_state_machine () =
  let ft =
    { Fleet.write_quorum = Some 1; max_retries = 0; down_after = 3; backoff_base = 4;
      backoff_max = 64 }
  in
  let small = { config with Fleet.nodes = 3 } in
  let f = Fleet.create ~ft small in
  ignore (ok (Fleet.put f ~key:"h" ~value:"v"));
  let victim = List.hd (Fleet.placement f "h") in
  let disk = Fleet.node_disk f ~node:victim in
  Disk.arm_random_faults disk ~rng:(Rng.create 9L) ~transient_prob:1.0 ~permanent_prob:0.0;
  let health () = Fleet.health f ~node:victim in
  let put i =
    ignore (ok (Fleet.put f ~key:"h" ~value:(Printf.sprintf "v%d" i)))
  in
  put 1;
  Alcotest.(check bool) "suspect after first failure" true (health () = Fleet.Suspect);
  Alcotest.(check bool) "backoff pending" true (Fleet.node_probe_in f ~node:victim > 0);
  (* while backed off, the node is not probed: its fault counter freezes *)
  let before = Disk.injected_failures disk in
  put 2;
  Alcotest.(check int) "not probed while backed off" before (Disk.injected_failures disk);
  (* expire the backoff and probe twice more: Suspect hardens into Down *)
  let probe i =
    while Fleet.node_probe_in f ~node:victim > 0 do Fleet.tick f done;
    put i
  in
  probe 3;
  Alcotest.(check bool) "still suspect" true (health () = Fleet.Suspect);
  probe 4;
  Alcotest.(check bool) "down after down_after failures" true (health () = Fleet.Down);
  Alcotest.(check int) "breaker counted once" 1
    (Obs.counter_value (Fleet.obs f) "fleet.breaker_open");
  (* Down is skipped on reads: the get succeeds without touching the disk *)
  let before = Disk.injected_failures disk in
  (match ok (Fleet.get f ~key:"h") with
  | Some _ -> ()
  | None -> Alcotest.fail "live replicas must serve the key");
  Alcotest.(check int) "down node skipped on read" before (Disk.injected_failures disk);
  (* heal: breaker re-closes, the node serves again *)
  Disk.disarm_random_faults disk;
  Fleet.heal_node f ~node:victim;
  Alcotest.(check bool) "healthy after heal" true (health () = Fleet.Healthy);
  ignore (ok (Fleet.repair f));
  Alcotest.(check int) "repair restored the victim" 3 (Fleet.replica_count f ~key:"h");
  ignore (ok (Fleet.put f ~key:"h" ~value:"after"));
  Alcotest.(check bool) "stays healthy on success" true (health () = Fleet.Healthy)

(* Satellite (c): backoff schedule is deterministic under a fixed seed —
   two fleets driven identically observe identical probe delays. *)
let test_backoff_deterministic () =
  let ft = { Fleet.default_ft with Fleet.max_retries = 0; down_after = 100 } in
  let run () =
    let f = Fleet.create ~ft { config with Fleet.nodes = 3 } in
    ignore (ok (Fleet.put f ~key:"b" ~value:"v"));
    let victim = List.hd (Fleet.placement f "b") in
    let disk = Fleet.node_disk f ~node:victim in
    Disk.arm_random_faults disk ~rng:(Rng.create 7L) ~transient_prob:1.0 ~permanent_prob:0.0;
    List.init 5 (fun i ->
        while Fleet.node_probe_in f ~node:victim > 0 do Fleet.tick f done;
        ignore (ok (Fleet.put f ~key:"b" ~value:(string_of_int i)));
        Fleet.node_probe_in f ~node:victim)
  in
  let a = run () and b = run () in
  Alcotest.(check (list int)) "identical probe schedule" a b;
  (* and the schedule really backs off: delays are non-decreasing up to the cap *)
  let rec non_decreasing = function
    | x :: (y :: _ as rest) -> x <= y && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "exponential backoff" true (non_decreasing a)

(* Deletes fail fast when a placement is unavailable (a partial tombstone
   would let repair resurrect the shard). *)
let test_delete_requires_all_replicas () =
  let f = Fleet.create config in
  ignore (ok (Fleet.put f ~key:"d" ~value:"v"));
  let victim = List.hd (Fleet.placement f "d") in
  let disk = Fleet.node_disk f ~node:victim in
  for extent = 0 to config.Fleet.store.Store.Default.disk.Disk.extent_count - 1 do
    Disk.fail_permanently disk ~extent
  done;
  ignore (Fleet.put f ~key:"d" ~value:"v2") (* trips the breaker on the victim *);
  (match Fleet.delete f ~key:"d" with
  | Error (Fleet.Quorum_not_met _) -> ()
  | Ok () -> Alcotest.fail "delete must not acknowledge with a replica down"
  | Error e -> Alcotest.failf "expected Quorum_not_met, got %a" Fleet.pp_error e);
  Disk.heal_all disk;
  Fleet.crash_node f ~rng:(Rng.create 13L) ~node:victim;
  Fleet.heal_node f ~node:victim;
  ok (Fleet.delete f ~key:"d");
  Alcotest.(check (option string)) "deleted" None (ok (Fleet.get f ~key:"d"))

(* Failover read with read-repair: a replica that lost the shard is
   re-replicated inline by the next get that fails over past it. *)
let test_get_failover_and_read_repair () =
  let f = Fleet.create config in
  ignore (ok (Fleet.put f ~key:"r" ~value:"v"));
  let victim = List.hd (Fleet.placement f "r") in
  Fleet.destroy_node f ~node:victim;
  Alcotest.(check int) "one replica lost" 2 (Fleet.replica_count f ~key:"r");
  Alcotest.(check (option string)) "failover read" (Some "v") (ok (Fleet.get f ~key:"r"));
  Alcotest.(check bool) "failover counted" true
    (Obs.counter_value (Fleet.obs f) "fleet.get_failover" > 0);
  Alcotest.(check bool) "read repair counted" true
    (Obs.counter_value (Fleet.obs f) "fleet.read_repair" > 0);
  Alcotest.(check int) "read repair restored the replica" 3 (Fleet.replica_count f ~key:"r")

let test_ft_config_validation () =
  let expect_invalid name ft =
    match Fleet.create ~ft config with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "zero quorum" { Fleet.default_ft with Fleet.write_quorum = Some 0 };
  expect_invalid "quorum beyond replication"
    { Fleet.default_ft with Fleet.write_quorum = Some (config.Fleet.replication + 1) };
  expect_invalid "negative retries" { Fleet.default_ft with Fleet.max_retries = -1 };
  expect_invalid "zero down_after" { Fleet.default_ft with Fleet.down_after = 0 };
  Alcotest.(check int) "majority quorum by default" 2
    (Fleet.write_quorum (Fleet.create config));
  Alcotest.(check int) "explicit quorum respected" 3
    (Fleet.write_quorum (Fleet.create ~ft:all_replicas config))

(* Satellite (b): enabling the fleet's retry path must not mask fault #5
   (reclamation forgets chunks after a transient read error) from the
   single-node conformance harness — the retries live in Fleet, above the
   store the harness drives, so the transient-read-error injection still
   surfaces there. *)
let test_f5_still_detected_with_retries () =
  Faults.reset_counters ();
  let r =
    Lfm.Detect.detect ~max_sequences:500 ~minimize:false ~seed:5
      Faults.F5_reclaim_forgets_on_read_error
  in
  Alcotest.(check bool) "#5 still detected" true r.Lfm.Detect.found

(* The durability property the paper's section 2.2 appeals to: acknowledged
   data survives any number of node crashes plus up to replication-1 node
   losses between repairs. Run at the strongest quorum (every replica acks)
   so replication-1 losses can never remove the last durable copy. *)
let prop_fleet_durability =
  QCheck.Test.make ~name:"fleet durability under crashes and bounded losses" ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Fleet.create ~ft:all_replicas config in
      let model = Model.Kv_model.create () in
      let rng = Rng.create (Int64.of_int seed) in
      let keys = [| "a"; "b"; "c"; "d"; "e"; "f" |] in
      let losses_since_repair = ref 0 in
      let ok' = function
        | Ok v -> v
        | Error e -> QCheck.Test.fail_reportf "fleet: %a" Fleet.pp_error e
      in
      for _ = 1 to 40 do
        let key = Rng.pick rng keys in
        match Rng.int rng 8 with
        | 0 | 1 | 2 -> (
          let value = Bytes.to_string (Rng.bytes rng (Rng.int rng 100)) in
          match Fleet.put f ~key ~value with
          | Ok _ -> Model.Kv_model.put model ~key ~value
          | Error _ -> () (* a full replica rejected the put: not acknowledged *))
        | 3 ->
          ok' (Fleet.delete f ~key);
          Model.Kv_model.delete model ~key
        | 4 | 5 ->
          let node = Rng.int rng (Fleet.node_count f) in
          Fleet.crash_node f ~rng ~node
        | 6 ->
          if !losses_since_repair < config.Fleet.replication - 1 then begin
            Fleet.destroy_node f ~node:(Rng.int rng (Fleet.node_count f));
            incr losses_since_repair
          end
        | _ ->
          ignore (ok' (Fleet.repair f));
          losses_since_repair := 0
      done;
      ignore (ok' (Fleet.repair f));
      Array.for_all
        (fun key ->
          match Fleet.get f ~key with
          | Ok v -> v = Model.Kv_model.get model ~key
          | Error _ -> false)
        keys)

let () =
  Faults.disable_all ();
  Alcotest.run "fleet"
    [
      ( "fleet",
        [
          Alcotest.test_case "placement" `Quick test_placement_deterministic_and_spread;
          Alcotest.test_case "put/get replicated" `Quick test_put_get_replicated;
          Alcotest.test_case "put_many replicated" `Quick test_put_many_replicated;
          Alcotest.test_case "put_many matches sequential" `Quick
            test_put_many_matches_sequential;
          Alcotest.test_case "structured node failure" `Quick
            test_node_failed_carries_store_error;
          Alcotest.test_case "survives any single crash" `Quick test_survives_any_single_crash;
          Alcotest.test_case "survives node loss with repair" `Quick
            test_survives_node_loss_with_repair;
          Alcotest.test_case "repair idempotent" `Quick test_repair_idempotent;
          QCheck_alcotest.to_alcotest prop_fleet_durability;
        ] );
      ( "request plane",
        [
          Alcotest.test_case "transient fault absorbed by retries" `Quick
            test_transient_fault_absorbed;
          Alcotest.test_case "partial write recorded and repaired" `Quick
            test_partial_write_recorded_and_repaired;
          Alcotest.test_case "below quorum fails but records debt" `Quick
            test_below_quorum_fails_but_records_debt;
          Alcotest.test_case "health state machine" `Quick test_health_state_machine;
          Alcotest.test_case "backoff deterministic" `Quick test_backoff_deterministic;
          Alcotest.test_case "delete requires all replicas" `Quick
            test_delete_requires_all_replicas;
          Alcotest.test_case "get failover and read repair" `Quick
            test_get_failover_and_read_repair;
          Alcotest.test_case "ft config validation" `Quick test_ft_config_validation;
          Alcotest.test_case "fault #5 still detected with retries" `Quick
            test_f5_still_detected_with_retries;
        ] );
    ]
